// A memcached-protocol key/value cache served by the EbbRT stack, driven by the ETC load
// generator — the paper's flagship application (§4.2) in miniature, wired together the way
// the hybrid structure intends (§2.1): the server publishes its address under a
// "service/..." key in the GlobalIdMap served by the hosted frontend, and the client
// discovers it by name instead of a hard-coded IP.
//
// Run: ./examples/kv_cache
#include <cstdio>
#include <memory>

#include "src/apps/loadgen/memcached_loadgen.h"
#include "src/apps/memcached/server.h"
#include "src/dist/global_id_map.h"
#include "src/sim/testbed.h"

namespace {

// Parses "a.b.c.d:port" (the GlobalIdMap service-record convention).
bool ParseEndpoint(const std::string& record, ebbrt::Ipv4Addr* addr, std::uint16_t* port) {
  unsigned a, b, c, d, p;
  if (std::sscanf(record.c_str(), "%u.%u.%u.%u:%u", &a, &b, &c, &d, &p) != 5 || a > 255 ||
      b > 255 || c > 255 || d > 255 || p > 65535) {
    return false;
  }
  *addr = ebbrt::Ipv4Addr::Of(a, b, c, d);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace

int main() {
  using namespace ebbrt;
  sim::Testbed bed;
  constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 4);
  // The hosted frontend inside "Linux": serves the name map the other instances share.
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  sim::TestbedNode server = bed.AddNode("server", 2, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 2, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());

  frontend.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend.runtime); });

  // The server binds, then registers itself by name.
  memcached::MemcachedServer* srv = nullptr;
  server.Spawn(0, [&] {
    srv = new memcached::MemcachedServer(*server.net, 11211);
    dist::GlobalIdMap::For(*server.runtime, kFrontendIp)
        .Set("service/memcached", server.iface->addr().ToString() + ":11211")
        .Then([](Future<void> f) {
          f.Get();
          std::printf("[server] registered service/memcached with the frontend\n");
        });
  });

  // The client knows only the service NAME; the address comes from the frontend. The first
  // lookup can race the server's registration, and a missing key surfaces as an exception
  // through the Future (§3.5) — GetWithRetry absorbs the race with bounded exponential
  // backoff, the way real service discovery behaves, and gives up with a diagnosable error
  // instead of polling forever against a frontend that will never have the name.
  std::unique_ptr<loadgen::MemcachedLoadgen> gen;
  bool done = false;
  client.Spawn(0, [&] {
    dist::GlobalIdMap::For(*client.runtime, kFrontendIp)
        .GetWithRetry("service/memcached")
        .Then([&](Future<std::string> f) {
          std::string record;
          try {
            record = f.Get();
          } catch (const std::runtime_error& e) {
            std::printf("[client] giving up: %s — is the memcached server announcing"
                        " itself to the frontend's GlobalIdMap?\n",
                        e.what());
            return;
          }
          Ipv4Addr addr;
          std::uint16_t port = 0;
          if (!ParseEndpoint(record, &addr, &port)) {
            std::printf("[client] bad service record: %s\n", record.c_str());
            return;
          }
          std::printf("[client] discovered service/memcached at %s\n", record.c_str());
          loadgen::MemcachedLoadgen::Config config;
          config.connections = 8;
          config.key_space = 500;
          config.target_qps = 50'000;
          config.warmup_ns = 5'000'000;
          config.duration_ns = 50'000'000;
          gen =
              std::make_unique<loadgen::MemcachedLoadgen>(bed, client, addr, port, config);
          gen->Run().Then([&](Future<loadgen::MemcachedLoadgen::Result> rf) {
            auto result = rf.Get();
            std::printf("ETC workload results (50 ms measured window):\n");
            std::printf("  achieved   %.0f requests/sec\n", result.achieved_qps);
            std::printf("  mean       %.1f us\n", result.mean_ns / 1000.0);
            std::printf("  p50        %.1f us\n", result.p50_ns / 1000.0);
            std::printf("  p99        %.1f us\n", result.p99_ns / 1000.0);
            std::printf("  samples    %zu\n", result.samples);
            done = true;
          });
        });
  });

  bed.world().Run();
  if (srv != nullptr) {
    std::printf("server handled %llu requests; store holds %zu items\n",
                static_cast<unsigned long long>(srv->requests()), srv->store().size());
  }
  return done ? 0 : 1;
}
