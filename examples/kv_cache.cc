// A memcached-protocol key/value cache served by the EbbRT stack, driven by the ETC load
// generator — the paper's flagship application (§4.2) in miniature.
//
// Run: ./examples/kv_cache
#include <cstdio>

#include "src/apps/loadgen/memcached_loadgen.h"
#include "src/apps/memcached/server.h"
#include "src/sim/testbed.h"

int main() {
  using namespace ebbrt;
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 2, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 2, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());

  memcached::MemcachedServer* srv = nullptr;
  server.Spawn(0, [&] { srv = new memcached::MemcachedServer(*server.net, 11211); });

  loadgen::MemcachedLoadgen::Config config;
  config.connections = 8;
  config.key_space = 500;
  config.target_qps = 50'000;
  config.warmup_ns = 5'000'000;
  config.duration_ns = 50'000'000;
  loadgen::MemcachedLoadgen gen(bed, client, Ipv4Addr::Of(10, 0, 0, 2), 11211, config);

  bool done = false;
  gen.Run().Then([&](Future<loadgen::MemcachedLoadgen::Result> f) {
    auto result = f.Get();
    std::printf("ETC workload results (50 ms measured window):\n");
    std::printf("  achieved   %.0f requests/sec\n", result.achieved_qps);
    std::printf("  mean       %.1f us\n", result.mean_ns / 1000.0);
    std::printf("  p50        %.1f us\n", result.p50_ns / 1000.0);
    std::printf("  p99        %.1f us\n", result.p99_ns / 1000.0);
    std::printf("  samples    %zu\n", result.samples);
    done = true;
  });
  bed.world().Run();
  if (srv != nullptr) {
    std::printf("server handled %llu requests; store holds %zu items\n",
                static_cast<unsigned long long>(srv->requests()), srv->store().size());
  }
  return done ? 0 : 1;
}
