// Echo server over the EbbRT network stack on the simulated testbed.
//
// Demonstrates the paper's data path: zero-copy receive handlers invoked synchronously from
// the (simulated) device interrupt, application-checked send windows, per-connection core
// affinity via RSS, and the virtual-time world that hosts it all.
//
// Run: ./examples/echo_server
#include <cstdio>

#include "src/sim/testbed.h"

int main() {
  using namespace ebbrt;
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 2, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3));

  server.Spawn(0, [&] {
    server.net->tcp().Listen(7, [](TcpPcb pcb) {
      std::printf("[server core %zu] accepted connection from %s:%u\n",
                  CurrentContext().machine_core,
                  pcb.tuple().remote_ip.ToString().c_str(), pcb.tuple().remote_port);
      auto conn = std::make_shared<TcpPcb>(std::move(pcb));
      conn->SetReceiveHandler([conn](std::unique_ptr<IOBuf> data) {
        // The very buffer the device filled, echoed straight back — no copies in the stack.
        conn->Send(std::move(data));
      });
      conn->SetCloseHandler([conn] { conn->Close(); });
    });
  });

  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, Ipv4Addr::Of(10, 0, 0, 2), 7)
        .Then([&bed](Future<TcpPcb> f) {
          auto pcb = std::make_shared<TcpPcb>(f.Get());
          auto sent_at = std::make_shared<std::uint64_t>(bed.world().Now());
          pcb->SetReceiveHandler([pcb, sent_at, &bed](std::unique_ptr<IOBuf> data) {
            std::printf("[client] echoed %zu bytes: \"%.*s\" (rtt %.1f us)\n",
                        data->Length(), static_cast<int>(data->Length()), data->Data(),
                        (bed.world().Now() - *sent_at) / 1000.0);
            pcb->Close();
          });
          std::printf("[client] connected on core %zu; sending\n", pcb->core());
          pcb->Send(IOBuf::CopyBuffer("echo through a library OS"));
        });
  });

  bed.world().Run();
  std::printf("echo example done at virtual t=%.3f ms\n", bed.world().Now() / 1e6);
  return 0;
}
