// Echo server over the EbbRT network stack on the simulated testbed.
//
// Demonstrates the paper's data path: a per-connection TcpHandler invoked synchronously from
// the (simulated) device interrupt, zero-copy receive buffers echoed straight back,
// application-checked send windows, per-connection core affinity via RSS, and the virtual-
// time world that hosts it all.
//
// Run: ./examples/echo_server
#include <cstdio>

#include "src/sim/testbed.h"

namespace {

using namespace ebbrt;

// The server side of a connection: the very buffer the device filled is echoed straight
// back — no copies anywhere in the stack.
class EchoHandler final : public TcpHandler {
 public:
  void Receive(std::unique_ptr<IOBuf> data) override { Pcb().Send(std::move(data)); }
  void Close() override { Pcb().Close(); }
};

// The client side: sends one message, prints the echo, closes.
class ClientHandler final : public TcpHandler {
 public:
  ClientHandler(sim::Testbed& bed, std::uint64_t sent_at) : bed_(bed), sent_at_(sent_at) {}

  void Receive(std::unique_ptr<IOBuf> data) override {
    std::printf("[client] echoed %zu bytes: \"%.*s\" (rtt %.1f us)\n", data->Length(),
                static_cast<int>(data->Length()), data->Data(),
                (bed_.world().Now() - sent_at_) / 1000.0);
    Pcb().Close();
  }

 private:
  sim::Testbed& bed_;
  std::uint64_t sent_at_;
};

}  // namespace

int main() {
  using namespace ebbrt;
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 2, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3));

  server.Spawn(0, [&] {
    server.net->tcp().Listen(7, [](TcpPcb pcb) {
      std::printf("[server core %zu] accepted connection from %s:%u\n",
                  CurrentContext().machine_core,
                  pcb.tuple().remote_ip.ToString().c_str(), pcb.tuple().remote_port);
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<EchoHandler>()));
    });
  });

  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, Ipv4Addr::Of(10, 0, 0, 2), 7)
        .Then([&bed](Future<TcpPcb> f) {
          TcpPcb pcb = f.Get();
          std::printf("[client] connected on core %zu; sending\n", pcb.core());
          pcb.InstallHandler(std::unique_ptr<TcpHandler>(
              std::make_unique<ClientHandler>(bed, bed.world().Now())));
          pcb.Send(IOBuf::CopyBuffer("echo through a library OS"));
        });
  });

  bed.world().Run();
  std::printf("echo example done at virtual t=%.3f ms\n", bed.world().Now() / 1e6);
  return 0;
}
