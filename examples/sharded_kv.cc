// Sharded memcached over the hybrid structure: N backend shards each serving a slice of the
// key space from their own RCU-backed store, discovered by name through the hosted
// frontend's GlobalIdMap, and a shard-router client Ebb consistent-hashing keys across them
// over the Messenger. The whole topology is wired the way a production deployment would be:
// shards announce themselves ("service/memcached/<i>"), the client knows only the service
// names, and every byte rides the corked, pooled, lock-free dispatch plane.
//
// Run: ./examples/sharded_kv
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/memcached/shard.h"
#include "src/sim/testbed.h"

int main() {
  using namespace ebbrt;
  constexpr std::size_t kShards = 2;
  constexpr std::size_t kKeys = 64;
  constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 4);

  sim::Testbed bed;
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  std::vector<sim::TestbedNode> shards;
  for (std::size_t i = 0; i < kShards; ++i) {
    shards.push_back(bed.AddNode("shard" + std::to_string(i), 1,
                                 Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
  }
  sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());

  frontend.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend.runtime); });

  // Each shard brings up its service, then publishes its record with the frontend.
  // (`node` is captured by VALUE: TestbedNode is a handle struct, and the `shards` vector
  // must not be referenced into from the closures.)
  std::vector<memcached::ShardService*> services(kShards, nullptr);
  for (std::size_t i = 0; i < kShards; ++i) {
    sim::TestbedNode node = shards[i];
    node.Spawn(0, [&services, kFrontendIp, node, i] {
      auto service = std::make_shared<memcached::ShardService>(*node.runtime, i);
      services[i] = service.get();
      node.runtime->Adopt(std::move(service));  // dies with the machine, not never
      memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
          .Then([i](Future<void> f) {
            f.Get();
            std::printf("[shard %zu] announced %s\n", i,
                        memcached::ShardRecordKey(i).c_str());
          });
    });
  }

  // The client discovers the shard set by name, builds the router, writes the key space,
  // and reads every key back through the ring.
  std::unique_ptr<memcached::ShardRouter> router;
  std::size_t verified = 0;
  bool done = false;
  client.Spawn(0, [&] {
    memcached::DiscoverShards(*client.runtime, kFrontendIp, kShards)
        .Then([&](Future<std::vector<memcached::ShardEndpoint>> f) {
          router = std::make_unique<memcached::ShardRouter>(*client.runtime, f.Get());
          std::printf("[client] discovered %zu shards\n", router->shard_count());
          // Write then read back, one key per continuation step (simple and fully
          // sequential — the bench exercises the pipelined path).
          auto step = std::make_shared<std::function<void(std::size_t, bool)>>();
          *step = [&, step](std::size_t index, bool writing) {
            if (index == kKeys) {
              if (writing) {
                (*step)(0, false);
              } else {
                done = true;
                *step = nullptr;  // break the self-capture cycle
              }
              return;
            }
            std::string key = "user:" + std::to_string(index);
            std::string value = "profile-" + std::to_string(index * 7);
            if (writing) {
              router->Set(key, value).Then([&, step, index](Future<void> sf) {
                sf.Get();
                (*step)(index + 1, true);
              });
            } else {
              router->Get(key).Then(
                  [&, step, index, value](Future<memcached::ShardRouter::GetResult> gf) {
                    memcached::ShardRouter::GetResult result = gf.Get();
                    if (result.found &&
                        dist::ChainToString(result.value.get()) == value) {
                      ++verified;
                    }
                    (*step)(index + 1, false);
                  });
            }
          };
          (*step)(0, true);
        });
  });

  bed.world().Run();

  if (!done || verified != kKeys) {
    std::printf("sharded_kv FAILED: done=%d verified=%zu/%zu\n", done, verified, kKeys);
    return 1;
  }
  std::printf("[client] verified %zu/%zu keys through the ring\n", verified, kKeys);
  for (std::size_t i = 0; i < kShards; ++i) {
    std::printf("[shard %zu] served %llu requests, store holds %zu items\n", i,
                static_cast<unsigned long long>(services[i]->requests()),
                services[i]->store().size());
  }
  std::printf("routing imbalance: %.3f\n", router->Imbalance());
  std::printf("sharded_kv example done\n");
  return 0;
}
