// The hybrid structure (paper §2.1 / §4.3): a native library-OS instance offloads filesystem
// access to a hosted frontend running inside "Linux", through the FileSystem Ebb — messages
// cross the (simulated) network, the hosted representative runs real POSIX I/O.
//
// Run: ./examples/hosted_offload
#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/dist/file_system.h"
#include "src/sim/testbed.h"

int main() {
  using namespace ebbrt;
  sim::Testbed bed;
  // The hosted frontend: a user-space EbbRT library instance in a Linux process (hosted
  // runtimes translate Ebb calls through hash tables; EbbIds still resolve identically).
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, Ipv4Addr::Of(10, 0, 0, 2),
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  // The native library OS instance where the performance-critical work would run.
  sim::TestbedNode native = bed.AddNode("native", 2, Ipv4Addr::Of(10, 0, 0, 3));

  std::string sandbox = "/tmp/ebbrt_offload_example_" + std::to_string(::getpid());

  frontend.Spawn(0, [&] {
    dist::FileSystem::ServeOn(*frontend.runtime, sandbox);
    dist::GlobalIdMap::ServeOn(*frontend.runtime);
    std::printf("[frontend] serving FileSystem (root %s) and GlobalIdMap\n",
                sandbox.c_str());
  });

  native.Spawn(0, [&] {
    auto& fs = dist::FileSystem::For(*native.runtime, Ipv4Addr::Of(10, 0, 0, 2));
    auto& ids = dist::GlobalIdMap::For(*native.runtime, Ipv4Addr::Of(10, 0, 0, 2));
    std::printf("[native] writing config through the FileSystem Ebb...\n");
    fs.WriteFile("config.txt", "threads=4\nport=11211\n").Then([&fs, &ids](Future<void> f) {
      f.Get();
      return fs.ReadFile("config.txt").Then([&fs, &ids](Future<std::string> rf) {
        std::string contents = rf.Get();
        std::printf("[native] read back %zu bytes:\n%s", contents.size(),
                    contents.c_str());
        return fs.GetFileSize("config.txt").Then([&ids](Future<std::uint64_t> sf) {
          std::printf("[native] GetFileSize -> %llu\n",
                      static_cast<unsigned long long>(sf.Get()));
          // Naming + global id allocation, also served by the frontend.
          return ids.AllocateIdBlock(128).Then([](Future<EbbId> bf) {
            std::printf("[native] got global EbbId block starting at 0x%x\n", bf.Get());
          });
        });
      });
    });
  });

  bed.world().Run();
  std::printf("hosted offload example done\n");
  return 0;
}
