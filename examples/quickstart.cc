// Quickstart: the EbbRT programming model in one file.
//
// Shows the pieces every EbbRT application touches: a machine with per-core event loops,
// spawned events, an Elastic Building Block with per-core representatives, monadic futures
// chaining work across cores, a timer, and cooperative blocking inside an event.
//
// Run: ./examples/quickstart
#include <cstdio>

#include "src/core/ebb_ref.h"
#include "src/core/multicore_ebb.h"
#include "src/event/block_on.h"
#include "src/event/thread_machine.h"
#include "src/event/timer.h"
#include "src/future/future.h"

namespace {

// An Ebb: one representative per core, invoked through EbbRef with a single predictable
// branch on the fast path. Per-core state needs no synchronization — events on a core never
// preempt each other and never migrate.
class HitCounter : public ebbrt::MulticoreEbb<HitCounter, void> {
 public:
  void Hit() { ++hits_; }
  std::uint64_t hits() const { return hits_; }

 private:
  std::uint64_t hits_ = 0;
};

constexpr ebbrt::EbbId kHitCounterId = ebbrt::kFirstStaticUserId;

}  // namespace

int main() {
  using namespace ebbrt;
  // A "machine" with 2 cores, each running the non-preemptive event loop.
  ThreadMachine machine(2);
  machine.Start();

  // 1. Events: run work on a chosen core.
  machine.RunSync(0, [] {
    std::printf("[core %zu] hello from an event\n", CurrentContext().machine_core);
  });

  // 2. Ebbs: the same EbbRef resolves to a different representative on each core.
  EbbRef<HitCounter> counter(kHitCounterId);
  machine.RunSync(0, [&] { counter->Hit(); });
  machine.RunSync(0, [&] { counter->Hit(); });
  machine.RunSync(1, [&] { counter->Hit(); });
  machine.RunSync(0, [&] {
    std::printf("[core 0] counter rep saw %llu hits\n",
                static_cast<unsigned long long>(counter->hits()));
  });
  machine.RunSync(1, [&] {
    std::printf("[core 1] counter rep saw %llu hits\n",
                static_cast<unsigned long long>(counter->hits()));
  });

  // 3. Futures: chain continuations; the final Then is the only place errors must be handled.
  machine.RunSync(0, [&] {
    Promise<int> promise;
    promise.GetFuture()
        .Then([](Future<int> f) { return f.Get() * 2; })
        .Then([](Future<int> f) {
          std::printf("[core 0] future chain produced %d\n", f.Get());
        });
    // Fulfill from the other core.
    event::Local().SpawnRemote([promise]() mutable { promise.SetValue(21); }, 1);
  });

  // 4. Timers + cooperative blocking: an event can save its context, let the core keep
  // dispatching, and resume when async work completes.
  machine.RunSync(0, [&] {
    Promise<const char*> promise;
    auto future = promise.GetFuture();
    Timer::Instance()->Start(2'000'000 /* 2ms */, [promise]() mutable {
      promise.SetValue("timer fired");
    });
    const char* msg = event::BlockOn(std::move(future));
    std::printf("[core 0] blocked event resumed: %s\n", msg);
  });

  machine.Shutdown();
  std::printf("quickstart done\n");
  return 0;
}
