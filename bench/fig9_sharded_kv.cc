// Figure 9 (extension) — sharded memcached over the lock-free distributed dispatch plane:
// throughput and per-op wire/allocation cost as the key space is consistent-hashed across
// {1, 2, 4} backend shards, swept over pipeline depth {1, 8, 32}.
//
// Topology per point: a hosted frontend serving GlobalIdMap, N single-core shard machines
// (each a ShardService over the RCU KvStore, announced under "service/memcached/<i>"), and
// one native client that discovers the shard set by name, builds a ShardRouter, and drives
// a closed loop: `depth` GETs per round, striped over the preloaded key space, waiting for
// the whole round before issuing the next.
//
// What the sweep shows:
//   * ops/s scales with shards: each shard charges kServiceNs of modeled per-request
//     service time (the deliberate backend-work knob — the real lookups run too, but fixed
//     event costs dominate them in deterministic mode), and shards execute in parallel, so
//     a depth-32 round's service time divides by N.
//   * segments/op stays collapsed: the router's fan-out corks per shard (one request
//     segment per shard per round; replies cork the same way on each shard).
//   * allocs/op stays 0.0: the Messenger path is pooled end to end.
//   * per-shard balance: the FNV-1a ring keeps max/mean - 1 within the CI gate (<= 25% at
//     4 shards) for the striped key schedule.
//
// Emits the "sharded_kv" section of BENCH_sharded_kv.json.
//
// Modes:
//   (none)    full sweep shards {1,2,4} x depth {1,8,32}; also checks the scaling
//             acceptance (4-shard ops/s >= 2.5x 1-shard at depth 32)
//   --smoke   one (4-shard, depth-32) point; exits nonzero when the sharded datapath
//             degrades (imbalance > 25%, allocs_per_op > 0.05, segments_per_op > 0.5,
//             pool off, or control locks taken during the measured window)
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/memcached/shard.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace bench {
namespace {

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr std::size_t kKeySpace = 256;
constexpr std::size_t kValueBytes = 64;
// Modeled per-request backend service time (hash-table walk, item bookkeeping, LRU/stat
// upkeep — the ~3us of CPU a real memcached core spends per op at the paper's clock).
// This is what sharding parallelizes.
constexpr std::uint64_t kServiceNs = 3000;

std::string BenchKey(std::size_t index) { return "user:" + std::to_string(index); }

struct ShardPoint {
  std::size_t shards = 0;
  std::size_t pipeline = 0;
  std::size_t requests = 0;  // measured (post-warmup) GETs
  double ops_per_sec = 0;
  std::uint64_t tx_data_segments = 0;  // client + shards, both directions, measured window
  double segments_per_op = 0;
  std::uint64_t heap_allocs = 0;
  double allocs_per_op = 0;
  double pool_hit_rate = 0;
  std::vector<std::uint64_t> shard_ops;  // per-shard GETs in the measured window
  double imbalance = 0;                  // max/mean - 1
  std::uint64_t control_locks = 0;       // Messenger control-mutex acquisitions, measured window
  std::uint64_t virtual_ns = 0;
};

ShardPoint RunShardPoint(std::size_t num_shards, std::size_t depth,
                         std::size_t total_requests) {
  sim::Testbed bed;
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  std::vector<sim::TestbedNode> shard_nodes;
  for (std::size_t i = 0; i < num_shards; ++i) {
    shard_nodes.push_back(bed.AddNode("shard" + std::to_string(i), 1,
                                      Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
  }
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp,
                                        sim::HypervisorModel::Native());

  frontend.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend.runtime); });
  for (std::size_t i = 0; i < num_shards; ++i) {
    sim::TestbedNode node = shard_nodes[i];
    node.Spawn(0, [&bed, node, i] {
      memcached::ShardService::Config config;
      config.on_request = [&bed] { bed.world().Charge(kServiceNs); };
      // Adopted by the shard machine's runtime: the service (and its &bed-capturing hook)
      // dies with the machine inside this Testbed's teardown, not never.
      node.runtime->Adopt(
          std::make_shared<memcached::ShardService>(*node.runtime, i, config));
      memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
          .Then([](Future<void> f) { f.Get(); });
    });
  }

  struct State {
    std::unique_ptr<memcached::ShardRouter> router;
    std::size_t depth = 0;
    std::size_t warmup = 0;
    std::size_t total = 0;
    std::size_t issued = 0;
    std::size_t preloaded = 0;
    bool marked = false;
    std::uint64_t t_start = 0;
    std::uint64_t t_end = 0;
    std::uint64_t seg_mark = 0;
    std::uint64_t seg_end = 0;
    std::uint64_t lock_mark = 0;
    std::uint64_t lock_end = 0;
    std::vector<std::uint64_t> ops_mark;
    std::vector<std::uint64_t> ops_end;
    bool done = false;
    std::function<void()> preload_round;
    std::function<void()> round;
  };
  auto state = std::make_shared<State>();
  state->depth = depth;
  state->warmup = 2 * depth;
  state->total = total_requests;

  auto all_data_segments = [&client, &shard_nodes] {
    std::uint64_t total = client.net->stats().tcp_tx_data_segments.load();
    for (const sim::TestbedNode& node : shard_nodes) {
      total += node.net->stats().tcp_tx_data_segments.load();
    }
    return total;
  };
  // EVERY machine's Messenger, as the documented gate promises: a shard-side reply path
  // regressing onto the control mutex must fail the smoke, not just a client-side one.
  auto all_control_locks = [&client, &frontend, &shard_nodes] {
    std::uint64_t total =
        dist::Messenger::For(*client.runtime).stats().control_locks.load() +
        dist::Messenger::For(*frontend.runtime).stats().control_locks.load();
    for (const sim::TestbedNode& node : shard_nodes) {
      total += dist::Messenger::For(*node.runtime).stats().control_locks.load();
    }
    return total;
  };

  std::weak_ptr<State> weak_state = state;
  client.Spawn(0, [&, state] {
    memcached::DiscoverShards(*client.runtime, kFrontendIp, num_shards)
        .Then([&, state](Future<std::vector<memcached::ShardEndpoint>> f) {
          state->router =
              std::make_unique<memcached::ShardRouter>(*client.runtime, f.Get());

          // Preload the key space in pipelined SET rounds, then run the measured GET loop.
          state->preload_round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::size_t batch = std::min<std::size_t>(32, kKeySpace - state->preloaded);
            std::vector<Future<void>> round;
            round.reserve(batch);
            for (std::size_t i = 0; i < batch; ++i) {
              round.push_back(state->router->Set(BenchKey(state->preloaded + i),
                                                 std::string(kValueBytes, 'v')));
            }
            state->preloaded += batch;
            WhenAll(std::move(round)).Then([&, state](Future<void> wf) {
              wf.Get();
              if (state->preloaded < kKeySpace) {
                state->preload_round();
              } else {
                state->round();
              }
            });
          };

          state->round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::vector<Future<void>> round;
            round.reserve(state->depth);
            for (std::size_t i = 0; i < state->depth; ++i) {
              // Striped schedule: request k reads key k % kKeySpace — depth-independent,
              // so every depth (and shard count) sees the same key sequence.
              round.push_back(
                  state->router->Get(BenchKey((state->issued + i) % kKeySpace))
                      .Then([](Future<memcached::ShardRouter::GetResult> gf) {
                        gf.Get();
                      }));
            }
            state->issued += state->depth;
            WhenAll(std::move(round)).Then([&, state](Future<void> wf) {
              wf.Get();
              if (!state->marked && state->issued >= state->warmup) {
                client.net->stats().MarkAllocBaseline();
                state->seg_mark = all_data_segments();
                state->lock_mark = all_control_locks();
                state->ops_mark = state->router->per_shard_ops();
                state->t_start = bed.world().Now();
                state->marked = true;
                state->issued = 0;
              }
              if (!state->marked || state->issued < state->total) {
                state->round();
                return;
              }
              state->t_end = bed.world().Now();
              state->seg_end = all_data_segments();
              state->lock_end = all_control_locks();
              state->ops_end = state->router->per_shard_ops();
              state->done = true;
            });
          };

          state->preload_round();
        });
  });

  bed.world().Run();

  ShardPoint point;
  point.shards = num_shards;
  point.pipeline = depth;
  if (!state->done) {
    return point;  // requests == 0: visible failure in the table and the smoke gate
  }
  point.requests = state->total;
  point.virtual_ns = state->t_end - state->t_start;
  point.ops_per_sec = point.virtual_ns != 0
                          ? static_cast<double>(point.requests) * 1e9 /
                                static_cast<double>(point.virtual_ns)
                          : 0.0;
  point.tx_data_segments = state->seg_end - state->seg_mark;
  point.segments_per_op =
      static_cast<double>(point.tx_data_segments) / static_cast<double>(point.requests);
  const NetworkManager::Stats& stats = client.net->stats();
  point.heap_allocs = stats.heap_allocs_since_mark();
  point.allocs_per_op = stats.allocs_per_op(point.requests);
  point.pool_hit_rate = stats.pool_hit_rate_since_mark();
  point.control_locks = state->lock_end - state->lock_mark;
  point.shard_ops.resize(num_shards);
  std::uint64_t total_ops = 0;
  std::uint64_t max_ops = 0;
  for (std::size_t i = 0; i < num_shards; ++i) {
    point.shard_ops[i] = state->ops_end[i] - state->ops_mark[i];
    total_ops += point.shard_ops[i];
    max_ops = std::max(max_ops, point.shard_ops[i]);
  }
  if (total_ops != 0) {
    double mean = static_cast<double>(total_ops) / static_cast<double>(num_shards);
    point.imbalance = static_cast<double>(max_ops) / mean - 1.0;
  }
  return point;
}

std::string ShardPointsJson(const std::vector<ShardPoint>& points) {
  std::string out = "[";
  char buf[400];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ShardPoint& p = points[i];
    std::string ops = "[";
    for (std::size_t s = 0; s < p.shard_ops.size(); ++s) {
      ops += (s == 0 ? "" : ", ") + std::to_string(p.shard_ops[s]);
    }
    ops += "]";
    std::snprintf(buf, sizeof(buf),
                  "%s{\"shards\": %zu, \"pipeline\": %zu, \"requests\": %zu, "
                  "\"ops_per_sec\": %.0f, \"tx_data_segments\": %llu, "
                  "\"segments_per_op\": %.3f, \"heap_allocs\": %llu, "
                  "\"allocs_per_op\": %.4f, \"pool_hit_rate\": %.4f, "
                  "\"shard_ops\": %s, \"imbalance\": %.4f, \"control_locks\": %llu, "
                  "\"virtual_ns\": %llu}",
                  i == 0 ? "" : ", ", p.shards, p.pipeline, p.requests, p.ops_per_sec,
                  static_cast<unsigned long long>(p.tx_data_segments), p.segments_per_op,
                  static_cast<unsigned long long>(p.heap_allocs), p.allocs_per_op,
                  p.pool_hit_rate, ops.c_str(), p.imbalance,
                  static_cast<unsigned long long>(p.control_locks),
                  static_cast<unsigned long long>(p.virtual_ns));
    out += buf;
  }
  out += "]";
  return out;
}

int GateShardPoint(const ShardPoint& p) {
  int failures = 0;
  if (p.requests == 0) {
    std::fprintf(stderr, "FAIL: sharded schedule did not complete (shards=%zu depth=%zu)\n",
                 p.shards, p.pipeline);
    return 1;
  }
  if (p.allocs_per_op > 0.05) {
    std::fprintf(stderr, "FAIL: sharded datapath mallocs (allocs_per_op %.4f > 0.05)\n",
                 p.allocs_per_op);
    failures++;
  }
  if (p.pool_hit_rate == 0.0) {
    std::fprintf(stderr, "FAIL: buffer pool silently disabled on the sharded path\n");
    failures++;
  }
  if (p.pipeline >= 32 && p.segments_per_op > 0.5) {
    std::fprintf(stderr,
                 "FAIL: fanned-out rounds not corking (segments_per_op %.3f > 0.5)\n",
                 p.segments_per_op);
    failures++;
  }
  if (p.shards >= 4 && p.imbalance > 0.25) {
    std::fprintf(stderr, "FAIL: ring imbalance %.3f > 0.25 at %zu shards\n", p.imbalance,
                 p.shards);
    failures++;
  }
  if (p.control_locks != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu Messenger control locks taken on the steady-state path\n",
                 static_cast<unsigned long long>(p.control_locks));
    failures++;
  }
  return failures == 0 ? 0 : 1;
}

void PrintPoint(const ShardPoint& p) {
  std::printf("%-8zu %-10zu %10zu %14.0f %16.3f %14.4f %14.4f %10.3f\n", p.shards,
              p.pipeline, p.requests, p.ops_per_sec, p.segments_per_op, p.allocs_per_op,
              p.pool_hit_rate, p.imbalance);
}

}  // namespace
}  // namespace bench
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    ShardPoint p = RunShardPoint(/*shards=*/4, /*depth=*/32, /*total_requests=*/256);
    std::printf("smoke: shards=4 pipeline=32 requests=%zu ops_per_sec=%.0f "
                "segments_per_op=%.3f allocs_per_op=%.4f pool_hit_rate=%.4f "
                "imbalance=%.3f control_locks=%llu\n",
                p.requests, p.ops_per_sec, p.segments_per_op, p.allocs_per_op,
                p.pool_hit_rate, p.imbalance,
                static_cast<unsigned long long>(p.control_locks));
    WriteJsonSection("BENCH_sharded_kv.json", "sharded_kv_smoke", ShardPointsJson({p}));
    return GateShardPoint(p);
  }
  std::printf("# sharded memcached sweep (consistent-hash router over GlobalIdMap-discovered"
              " shards)\n");
  std::printf("%-8s %-10s %10s %14s %16s %14s %14s %10s\n", "shards", "pipeline", "requests",
              "ops_per_sec", "segments_per_op", "allocs_per_op", "pool_hit_rate",
              "imbalance");
  std::vector<ShardPoint> points;
  int failures = 0;
  double ops_1shard_d32 = 0;
  double ops_4shard_d32 = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (std::size_t depth : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
      ShardPoint p = RunShardPoint(shards, depth, /*total_requests=*/512);
      PrintPoint(p);
      failures += GateShardPoint(p);
      if (depth == 32 && shards == 1) {
        ops_1shard_d32 = p.ops_per_sec;
      }
      if (depth == 32 && shards == 4) {
        ops_4shard_d32 = p.ops_per_sec;
      }
      points.push_back(p);
    }
  }
  // The scaling acceptance: sharding must actually buy parallel service capacity.
  if (ops_1shard_d32 <= 0 || ops_4shard_d32 < 2.5 * ops_1shard_d32) {
    std::fprintf(stderr, "FAIL: 4-shard ops/s %.0f < 2.5x 1-shard %.0f at depth 32\n",
                 ops_4shard_d32, ops_1shard_d32);
    failures++;
  } else {
    std::printf("# scaling: 4-shard / 1-shard at depth 32 = %.2fx\n",
                ops_4shard_d32 / ops_1shard_d32);
  }
  WriteJsonSection("BENCH_sharded_kv.json", "sharded_kv", ShardPointsJson(points));
  std::printf("# wrote section \"sharded_kv\" to BENCH_sharded_kv.json\n");
  return failures == 0 ? 0 : 1;
}
