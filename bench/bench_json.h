// Minimal machine-readable bench output: maintains a single top-level JSON object in a file,
// one named section per bench binary, so fig5/fig6/tab2 can each contribute their depth-sweep
// results to the same BENCH_tx_batching.json. No external JSON dependency: the file format is
// constrained to what this writer itself produces ({"name":value,...} with balanced
// braces/brackets inside values), and anything unparsable is simply rewritten from scratch.
#ifndef EBBRT_BENCH_BENCH_JSON_H_
#define EBBRT_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ebbrt {
namespace bench {

// One pipeline-depth measurement of the TX-batching story — the record format of every
// BENCH_tx_batching.json section (the CI schema validator checks these keys, so all benches
// share this single definition). The alloc_* fields carry the zero-malloc-datapath story
// alongside (emitted to BENCH_alloc_pool.json by AllocPointsJson): counters are measured
// from the bench's steady-state mark (MarkAllocBaseline at end of preload), so startup
// carving is excluded — exactly the "per request in steady state" claim.
struct DepthPoint {
  std::size_t pipeline = 0;
  std::size_t requests = 0;
  std::uint64_t tx_data_segments = 0;
  std::uint64_t sends_coalesced = 0;
  double bytes_per_segment = 0;
  double segments_per_op = 0;
  std::uint64_t virtual_ns = 0;  // virtual time to serve the whole schedule

  // --- allocation datapath (BENCH_alloc_pool.json) ---
  std::uint64_t iobuf_allocs = 0;   // IOBuf storage blocks allocated (slab or heap)
  std::uint64_t heap_allocs = 0;    // std::malloc fallbacks — the number that must be ~0
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  double allocs_per_op = 0;         // heap_allocs / requests
  double pool_hit_rate = 0;
};

// Fills a DepthPoint from a server's NetworkManager::Stats (templated to keep this header
// free of net includes). The single place the stats->record mapping lives.
template <typename Stats>
inline DepthPoint FillDepthPoint(const Stats& stats, std::size_t pipeline,
                                 std::size_t requests, std::uint64_t virtual_ns) {
  DepthPoint point;
  point.pipeline = pipeline;
  point.requests = requests;
  point.tx_data_segments = stats.tcp_tx_data_segments.load();
  point.sends_coalesced = stats.sends_coalesced.load();
  point.bytes_per_segment = stats.bytes_per_segment();
  point.segments_per_op =
      requests != 0
          ? static_cast<double>(point.tx_data_segments) / static_cast<double>(requests)
          : 0.0;
  point.virtual_ns = virtual_ns;
  point.iobuf_allocs = stats.iobuf_allocs_since_mark();
  point.heap_allocs = stats.heap_allocs_since_mark();
  point.pool_hits = stats.pool_hits_since_mark();
  point.pool_misses = stats.pool_misses_since_mark();
  point.allocs_per_op = stats.allocs_per_op(requests);
  point.pool_hit_rate = stats.pool_hit_rate_since_mark();
  return point;
}

inline std::string DepthPointsJson(const std::vector<DepthPoint>& points) {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DepthPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"pipeline\": %zu, \"requests\": %zu, \"tx_data_segments\": %llu, "
                  "\"sends_coalesced\": %llu, \"bytes_per_segment\": %.1f, "
                  "\"segments_per_op\": %.3f, \"virtual_ns\": %llu}",
                  i == 0 ? "" : ", ", p.pipeline, p.requests,
                  static_cast<unsigned long long>(p.tx_data_segments),
                  static_cast<unsigned long long>(p.sends_coalesced), p.bytes_per_segment,
                  p.segments_per_op, static_cast<unsigned long long>(p.virtual_ns));
    out += buf;
  }
  out += "]";
  return out;
}

// BENCH_alloc_pool.json record: the zero-malloc-datapath evidence per depth point.
inline std::string AllocPointsJson(const std::vector<DepthPoint>& points) {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DepthPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"pipeline\": %zu, \"requests\": %zu, \"iobuf_allocs\": %llu, "
                  "\"heap_allocs\": %llu, \"pool_hits\": %llu, \"pool_misses\": %llu, "
                  "\"allocs_per_op\": %.4f, \"pool_hit_rate\": %.4f}",
                  i == 0 ? "" : ", ", p.pipeline, p.requests,
                  static_cast<unsigned long long>(p.iobuf_allocs),
                  static_cast<unsigned long long>(p.heap_allocs),
                  static_cast<unsigned long long>(p.pool_hits),
                  static_cast<unsigned long long>(p.pool_misses), p.allocs_per_op,
                  p.pool_hit_rate);
    out += buf;
  }
  out += "]";
  return out;
}

// The shared latency-quantile JSON fragment (no surrounding braces): every bench that
// reports latency from an obs::Histogram appends these columns to its records, so the CI
// validator checks ONE schema. Templated on the snapshot (obs::Histogram::Snapshot) to keep
// this header free of src includes, like FillDepthPoint.
template <typename Snapshot>
inline std::string HistogramColumnsJson(const Snapshot& snapshot) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"samples\": %llu, \"mean_ns\": %llu, \"p50_ns\": %llu, \"p99_ns\": %llu, "
                "\"p999_ns\": %llu",
                static_cast<unsigned long long>(snapshot.count),
                static_cast<unsigned long long>(snapshot.Mean()),
                static_cast<unsigned long long>(snapshot.P50()),
                static_cast<unsigned long long>(snapshot.P99()),
                static_cast<unsigned long long>(snapshot.P999()));
  return buf;
}

inline void WriteJsonSection(const std::string& path, const std::string& name,
                             const std::string& value);

// Runs `run_point` per depth, prints the table, and contributes section `section` to
// BENCH_tx_batching.json (segments story) and BENCH_alloc_pool.json (allocation story).
inline void EmitDepthSweep(const char* section, const std::vector<std::size_t>& depths,
                           const std::function<DepthPoint(std::size_t)>& run_point) {
  std::printf("# TX-batching depth sweep (%s)\n", section);
  std::printf("%-10s %10s %18s %16s %18s %16s %14s %14s\n", "pipeline", "requests",
              "tx_data_segments", "sends_coalesced", "bytes_per_segment", "segments_per_op",
              "allocs_per_op", "pool_hit_rate");
  std::vector<DepthPoint> points;
  for (std::size_t depth : depths) {
    DepthPoint p = run_point(depth);
    std::printf("%-10zu %10zu %18llu %16llu %18.1f %16.3f %14.4f %14.4f\n", p.pipeline,
                p.requests, static_cast<unsigned long long>(p.tx_data_segments),
                static_cast<unsigned long long>(p.sends_coalesced), p.bytes_per_segment,
                p.segments_per_op, p.allocs_per_op, p.pool_hit_rate);
    points.push_back(p);
  }
  WriteJsonSection("BENCH_tx_batching.json", section, DepthPointsJson(points));
  WriteJsonSection("BENCH_alloc_pool.json", section, AllocPointsJson(points));
  std::printf("# wrote section \"%s\" to BENCH_tx_batching.json and BENCH_alloc_pool.json\n",
              section);
}

namespace json_detail {

// Splits `{"a":<raw>,"b":<raw>}` into (name, raw-value) pairs by tracking nesting depth.
// Returns false when the content is not a flat object of that shape.
inline bool ParseSections(const std::string& text,
                          std::vector<std::pair<std::string, std::string>>* out) {
  std::size_t i = text.find_first_not_of(" \t\r\n");
  if (i == std::string::npos || text[i] != '{') {
    return false;
  }
  ++i;
  for (;;) {
    i = text.find_first_not_of(" \t\r\n,", i);
    if (i == std::string::npos) {
      return false;
    }
    if (text[i] == '}') {
      return true;
    }
    if (text[i] != '"') {
      return false;
    }
    std::size_t name_end = text.find('"', i + 1);
    if (name_end == std::string::npos) {
      return false;
    }
    std::string name = text.substr(i + 1, name_end - i - 1);
    i = text.find_first_not_of(" \t\r\n", name_end + 1);
    if (i == std::string::npos || text[i] != ':') {
      return false;
    }
    ++i;
    i = text.find_first_not_of(" \t\r\n", i);
    if (i == std::string::npos) {
      return false;
    }
    // Scan the value: balanced {}/[] nesting, string-aware, until a top-level ',' or '}'.
    std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0 && c == '}') {
          break;  // object close
        }
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i >= text.size() && depth != 0) {
      return false;
    }
    std::string value = text.substr(start, i - start);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\n' ||
                              value.back() == '\r' || value.back() == '\t')) {
      value.pop_back();
    }
    out->emplace_back(std::move(name), std::move(value));
  }
}

}  // namespace json_detail

// Writes/replaces section `name` with raw JSON `value` in the object stored at `path`.
inline void WriteJsonSection(const std::string& path, const std::string& name,
                             const std::string& value) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      if (json_detail::ParseSections(buf.str(), &parsed)) {
        sections = std::move(parsed);
      }
    }
  }
  bool replaced = false;
  for (auto& section : sections) {
    if (section.first == name) {
      section.second = value;
      replaced = true;
    }
  }
  if (!replaced) {
    sections.emplace_back(name, value);
  }
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second;
    out << (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

}  // namespace bench
}  // namespace ebbrt

#endif  // EBBRT_BENCH_BENCH_JSON_H_
