// Ablation C — adaptive polling vs pure interrupt-driven receive (the §3.2 driver example).
//
// A native client blasts UDP datagrams at a single-core server whose NIC either may enter
// polling mode (adaptive) or is pinned to interrupt-per-batch operation. Polling removes
// per-wakeup interrupt-injection costs under load; the interrupt count collapses.
#include <cstdio>

#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

struct Result {
  std::uint64_t interrupts;
  std::uint64_t polled_frames;
  double virtual_ms;
};

Result RunBurst(bool adaptive, int frames) {
  sim::Testbed bed;
  sim::Nic::Config server_nic;
  server_nic.hv = sim::HypervisorModel::Kvm();
  if (!adaptive) {
    server_nic.poll_enter_threshold = 1u << 30;  // never engage polling
  }
  // Assemble the server with the custom NIC config.
  Runtime& srt = bed.world().AddMachine("server", 1);
  auto* snic = new sim::Nic(bed.world(), srt, MacAddr::FromIndex(77), bed.fabric(),
                            server_nic);
  NetworkManager& snet = NetworkManager::For(srt);
  Interface::IpConfig sip;
  sip.addr = Ipv4Addr::Of(10, 0, 0, 2);
  snet.AddInterface(*snic, sip);

  sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());
  std::uint64_t received = 0;
  SimWorld::SpawnOn(srt, 0, [&snet, &received] {
    snet.BindUdp(6000, [&received](Ipv4Addr, std::uint16_t, std::unique_ptr<IOBuf>) {
      ++received;
    });
  });
  client.Spawn(0, [&, frames] {
    for (int i = 0; i < frames; ++i) {
      client.net->SendUdp(Ipv4Addr::Of(10, 0, 0, 2), 6000, 6000,
                          IOBuf::CopyBuffer("burst frame payload 012345678901234567890123"));
    }
  });
  bed.world().Run();
  Result result;
  result.interrupts = snic->interrupts_raised();
  result.polled_frames = snic->frames_polled();
  result.virtual_ms = bed.world().Now() / 1e6;
  if (received != static_cast<std::uint64_t>(frames)) {
    std::printf("# WARNING: only %llu/%d frames delivered\n",
                static_cast<unsigned long long>(received), frames);
  }
  return result;
}

}  // namespace
}  // namespace ebbrt

int main() {
  using namespace ebbrt;
  std::printf("# Ablation: adaptive polling vs interrupt-only RX (single core, UDP burst)\n");
  std::printf("%-12s %10s %12s %14s %12s\n", "mode", "frames", "interrupts", "polled_frames",
              "virt_ms");
  for (int frames : {500, 5000}) {
    Result adaptive = RunBurst(true, frames);
    Result irq_only = RunBurst(false, frames);
    std::printf("%-12s %10d %12llu %14llu %12.3f\n", "adaptive", frames,
                static_cast<unsigned long long>(adaptive.interrupts),
                static_cast<unsigned long long>(adaptive.polled_frames),
                adaptive.virtual_ms);
    std::printf("%-12s %10d %12llu %14llu %12.3f\n", "irq-only", frames,
                static_cast<unsigned long long>(irq_only.interrupts),
                static_cast<unsigned long long>(irq_only.polled_frames),
                irq_only.virtual_ms);
  }
  return 0;
}
