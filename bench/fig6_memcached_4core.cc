// Figure 6 — Memcached multicore (4 server cores) performance. OSv is omitted from the
// paper's multicore figure (its virtio driver lacks multiqueue and performance degrades);
// our OSv model runs single-queue, so including it shows that same degradation.
#include "bench/memcached_common.h"

int main() {
  ebbrt::bench::RunFigure("Figure 6", /*server_cores=*/4);
  return 0;
}
