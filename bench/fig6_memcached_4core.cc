// Figure 6 — Memcached multicore (4 server cores) performance. OSv is omitted from the
// paper's multicore figure (its virtio driver lacks multiqueue and performance degrades);
// our OSv model runs single-queue, so including it shows that same degradation.
//
// Also emits the TX-batching depth sweep as the "memcached_4core" section of
// BENCH_tx_batching.json (see fig5 for modes).
#include <cstring>

#include "bench/memcached_common.h"

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool sweep_only = argc > 1 && std::strcmp(argv[1], "--sweep-only") == 0;
  if (!sweep_only) {
    RunFigure("Figure 6", /*server_cores=*/4);
  }
  EmitTxBatchingSweep("memcached_4core", /*server_cores=*/4, {1, 8, 32},
                      /*total_requests=*/512);
  return 0;
}
