// Table 1 — Object dispatch costs for 1000 invocations (paper §4.1.1).
//
//   Method        Paper (cycles)
//   Inline        1052
//   No Inline     4047
//   Virtual       5038
//   Inline Ebb    1448
//   (hosted Ebb ≈ 19x the native Ebb cost, discussed in text)
//
// Methodology mirrors the paper: 1000 invocations of an empty method per measurement; we
// report the minimum over many measurements (cold effects removed, like a hot server path).
// A compiler barrier inside the loop prevents the translation load from being hoisted, so the
// Ebb row pays its per-invocation representative lookup every time, as designed.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/ebb_ref.h"
#include "src/core/multicore_ebb.h"
#include "src/core/runtime.h"
#include "src/platform/clock.h"

namespace ebbrt {
namespace {

struct InlineObject {
  void Method() { ++count; }
  std::uint64_t count = 0;
};

struct NoInlineObject {
  __attribute__((noinline)) void Method();
  std::uint64_t count = 0;
};
void NoInlineObject::Method() { ++count; }

struct VirtualBase {
  virtual ~VirtualBase() = default;
  virtual void Method() = 0;
};
struct VirtualImpl : VirtualBase {
  __attribute__((noinline)) void Method() override { ++count; }
  std::uint64_t count = 0;
};

class CounterEbb : public MulticoreEbb<CounterEbb, void> {
 public:
  void Method() { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

constexpr int kInvocations = 1000;
constexpr int kMeasurements = 2000;

template <typename F>
std::uint64_t MeasureMinCycles(F&& body) {
  std::uint64_t best = ~0ull;
  for (int m = 0; m < kMeasurements; ++m) {
    std::uint64_t start = ReadCyclesSerialized();
    for (int i = 0; i < kInvocations; ++i) {
      body();
      asm volatile("" ::: "memory");
    }
    std::uint64_t cycles = ReadCyclesSerialized() - start;
    best = std::min(best, cycles);
  }
  return best;
}

}  // namespace
}  // namespace ebbrt

int main() {
  using namespace ebbrt;
  std::printf("# Table 1 reproduction: object dispatch costs for %d invocations\n",
              kInvocations);
  std::printf("# paper: Inline 1052, No Inline 4047, Virtual 5038, Inline Ebb 1448;\n");
  std::printf("#        hosted Ebb ~19x native Ebb\n");

  InlineObject inline_obj;
  std::uint64_t inline_cycles = MeasureMinCycles([&] { inline_obj.Method(); });

  NoInlineObject noinline_obj;
  std::uint64_t noinline_cycles = MeasureMinCycles([&] { noinline_obj.Method(); });

  VirtualImpl virtual_impl;
  VirtualBase* vptr = &virtual_impl;
  std::uint64_t virtual_cycles = MeasureMinCycles([&] { vptr->Method(); });

  Runtime native(RuntimeKind::kNative, "bench");
  std::size_t core = native.AddCores(1);
  std::uint64_t ebb_cycles;
  {
    ScopedContext ctx(native, core, 0, false);
    EbbRef<CounterEbb> counter(kFirstStaticUserId);
    counter->Method();  // fault in the representative
    ebb_cycles = MeasureMinCycles([&] { counter->Method(); });
  }

  Runtime hosted(RuntimeKind::kHosted, "bench-hosted");
  std::size_t hcore = hosted.AddCores(1);
  std::uint64_t hosted_cycles;
  {
    ScopedContext ctx(hosted, hcore, 0, true);
    EbbRef<CounterEbb> counter(kFirstStaticUserId + 1);
    counter->Method();
    hosted_cycles = MeasureMinCycles([&] { counter->Method(); });
  }

  std::printf("%-12s %10s\n", "Method", "Cycles");
  std::printf("%-12s %10llu\n", "Inline", static_cast<unsigned long long>(inline_cycles));
  std::printf("%-12s %10llu\n", "No Inline",
              static_cast<unsigned long long>(noinline_cycles));
  std::printf("%-12s %10llu\n", "Virtual", static_cast<unsigned long long>(virtual_cycles));
  std::printf("%-12s %10llu\n", "Inline Ebb", static_cast<unsigned long long>(ebb_cycles));
  std::printf("%-12s %10llu  (%.1fx native Ebb)\n", "Hosted Ebb",
              static_cast<unsigned long long>(hosted_cycles),
              static_cast<double>(hosted_cycles) / static_cast<double>(ebb_cycles));
  return 0;
}
