// Figure 11 (extension) — bulk RPC: zero-copy scatter-gather MultiGet across shards.
// Per-key wire/allocation/latency cost as the batch size grows, at {1, 4} shards.
//
// Topology per point (fig9's): a hosted frontend serving GlobalIdMap, N single-core shard
// machines (ShardService over the RCU KvStore, announced under "service/memcached/<i>"),
// and one native client that discovers the shard set, builds a ShardRouter, and drives a
// closed loop of MultiGet rounds: each round is ONE MultiGet of `batch` striped keys, and
// the loop waits for the whole batch future before issuing the next.
//
// What the sweep shows:
//   * segments/key COLLAPSES with batch: a batch-1 round pays a request and reply segment
//     per key; a batch-64 round pays one request and one reply segment per SHARD touched
//     (the router ships exactly one kShardOpMultiGet frame per shard, corked).
//   * ns/key drops with batch: every key still charges kServiceNs of modeled shard service
//     time (the batch is N logical requests — no discounted work), so what the batch
//     eliminates is the per-round-trip event/wire overhead, which is the honest win.
//   * allocs/key stays 0.0 and the values cross zero-copy: replies are carved into per-key
//     views of the received chain (IOBufQueue::Split), never memcpy'd.
//
// Emits the "multiget" section of BENCH_multiget.json.
//
// Modes:
//   (none)    full sweep shards {1,4} x batch {1,8,64}; asserts batch-64 strictly below
//             batch-1 on BOTH segments/key and ns/key at each shard count
//   --smoke   (4-shard, batch-1) + (4-shard, batch-64); exits nonzero when the bulk path
//             degrades (segments/key@64 > 0.5x batch-1, allocs_per_op > 0.05, pool off,
//             or control locks taken during the measured window)
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/memcached/shard.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace bench {
namespace {

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr std::size_t kKeySpace = 256;
constexpr std::size_t kValueBytes = 64;
// Modeled per-KEY backend service time (same knob as fig9; ShardService charges it once per
// key of a batch, so batching cannot fake throughput by discounting backend work).
constexpr std::uint64_t kServiceNs = 3000;

std::string BenchKey(std::size_t index) { return "user:" + std::to_string(index); }

struct MultiGetPoint {
  std::size_t shards = 0;
  std::size_t batch = 0;
  std::size_t keys = 0;  // measured (post-warmup) keys fetched
  double ops_per_sec = 0;  // keys per second
  double ns_per_key = 0;
  std::uint64_t tx_data_segments = 0;  // client + shards, both directions, measured window
  double segments_per_op = 0;          // per key
  std::uint64_t heap_allocs = 0;
  double allocs_per_op = 0;
  double pool_hit_rate = 0;
  std::size_t hits = 0;  // found results in the measured window (must equal keys)
  std::uint64_t control_locks = 0;
  std::uint64_t virtual_ns = 0;
};

MultiGetPoint RunMultiGetPoint(std::size_t num_shards, std::size_t batch,
                               std::size_t total_keys) {
  sim::Testbed bed;
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  std::vector<sim::TestbedNode> shard_nodes;
  for (std::size_t i = 0; i < num_shards; ++i) {
    shard_nodes.push_back(bed.AddNode("shard" + std::to_string(i), 1,
                                      Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
  }
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp,
                                        sim::HypervisorModel::Native());

  frontend.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend.runtime); });
  for (std::size_t i = 0; i < num_shards; ++i) {
    sim::TestbedNode node = shard_nodes[i];
    node.Spawn(0, [&bed, node, i] {
      memcached::ShardService::Config config;
      config.on_request = [&bed] { bed.world().Charge(kServiceNs); };
      node.runtime->Adopt(
          std::make_shared<memcached::ShardService>(*node.runtime, i, config));
      memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
          .Then([](Future<void> f) { f.Get(); });
    });
  }

  struct State {
    std::unique_ptr<memcached::ShardRouter> router;
    std::size_t batch = 0;
    std::size_t warmup = 0;  // keys, not rounds
    std::size_t total = 0;
    std::size_t issued = 0;
    std::size_t preloaded = 0;
    std::size_t hits = 0;
    bool marked = false;
    std::uint64_t t_start = 0;
    std::uint64_t t_end = 0;
    std::uint64_t seg_mark = 0;
    std::uint64_t seg_end = 0;
    std::uint64_t lock_mark = 0;
    std::uint64_t lock_end = 0;
    bool done = false;
    std::function<void()> preload_round;
    std::function<void()> round;
  };
  auto state = std::make_shared<State>();
  state->batch = batch;
  state->warmup = 2 * batch;
  state->total = total_keys;

  auto all_data_segments = [&client, &shard_nodes] {
    std::uint64_t total = client.net->stats().tcp_tx_data_segments.load();
    for (const sim::TestbedNode& node : shard_nodes) {
      total += node.net->stats().tcp_tx_data_segments.load();
    }
    return total;
  };
  auto all_control_locks = [&client, &frontend, &shard_nodes] {
    std::uint64_t total =
        dist::Messenger::For(*client.runtime).stats().control_locks.load() +
        dist::Messenger::For(*frontend.runtime).stats().control_locks.load();
    for (const sim::TestbedNode& node : shard_nodes) {
      total += dist::Messenger::For(*node.runtime).stats().control_locks.load();
    }
    return total;
  };

  std::weak_ptr<State> weak_state = state;
  client.Spawn(0, [&, state] {
    memcached::DiscoverShards(*client.runtime, kFrontendIp, num_shards)
        .Then([&, state](Future<std::vector<memcached::ShardEndpoint>> f) {
          state->router =
              std::make_unique<memcached::ShardRouter>(*client.runtime, f.Get());

          state->preload_round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::size_t n = std::min<std::size_t>(32, kKeySpace - state->preloaded);
            std::vector<Future<void>> round;
            round.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
              round.push_back(state->router->Set(BenchKey(state->preloaded + i),
                                                 std::string(kValueBytes, 'v')));
            }
            state->preloaded += n;
            WhenAll(std::move(round)).Then([&, state](Future<void> wf) {
              wf.Get();
              if (state->preloaded < kKeySpace) {
                state->preload_round();
              } else {
                state->round();
              }
            });
          };

          state->round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            // One MultiGet per round: `batch` striped keys in one scatter-gather batch.
            // The stripe is batch-independent — key k of the run reads key k % kKeySpace —
            // so every (batch, shards) point sees the same key sequence, and the only
            // variable is how many keys share a round trip.
            std::vector<std::string> key_storage;
            key_storage.reserve(state->batch);
            for (std::size_t i = 0; i < state->batch; ++i) {
              key_storage.push_back(BenchKey((state->issued + i) % kKeySpace));
            }
            std::vector<std::string_view> keys(key_storage.begin(), key_storage.end());
            state->issued += state->batch;
            state->router->MultiGet(keys).Then(
                [&, state, key_storage = std::move(key_storage)](
                    Future<std::vector<memcached::ShardRouter::GetResult>> bf) {
                  std::vector<memcached::ShardRouter::GetResult> results = bf.Get();
                  for (const memcached::ShardRouter::GetResult& r : results) {
                    if (r.found) {
                      state->hits++;
                    }
                  }
                  if (!state->marked && state->issued >= state->warmup) {
                    client.net->stats().MarkAllocBaseline();
                    state->seg_mark = all_data_segments();
                    state->lock_mark = all_control_locks();
                    state->t_start = bed.world().Now();
                    state->marked = true;
                    state->issued = 0;
                    state->hits = 0;
                  }
                  if (!state->marked || state->issued < state->total) {
                    state->round();
                    return;
                  }
                  state->t_end = bed.world().Now();
                  state->seg_end = all_data_segments();
                  state->lock_end = all_control_locks();
                  state->done = true;
                });
          };

          state->preload_round();
        });
  });

  bed.world().Run();

  MultiGetPoint point;
  point.shards = num_shards;
  point.batch = batch;
  if (!state->done) {
    return point;  // keys == 0: visible failure in the table and the smoke gate
  }
  point.keys = state->total;
  point.hits = state->hits;
  point.virtual_ns = state->t_end - state->t_start;
  point.ns_per_key = point.keys != 0 ? static_cast<double>(point.virtual_ns) /
                                           static_cast<double>(point.keys)
                                     : 0.0;
  point.ops_per_sec = point.virtual_ns != 0
                          ? static_cast<double>(point.keys) * 1e9 /
                                static_cast<double>(point.virtual_ns)
                          : 0.0;
  point.tx_data_segments = state->seg_end - state->seg_mark;
  point.segments_per_op =
      static_cast<double>(point.tx_data_segments) / static_cast<double>(point.keys);
  const NetworkManager::Stats& stats = client.net->stats();
  point.heap_allocs = stats.heap_allocs_since_mark();
  point.allocs_per_op = stats.allocs_per_op(point.keys);
  point.pool_hit_rate = stats.pool_hit_rate_since_mark();
  point.control_locks = state->lock_end - state->lock_mark;
  return point;
}

std::string MultiGetPointsJson(const std::vector<MultiGetPoint>& points) {
  std::string out = "[";
  char buf[400];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MultiGetPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"shards\": %zu, \"batch\": %zu, \"keys\": %zu, "
                  "\"ops_per_sec\": %.0f, \"ns_per_key\": %.1f, "
                  "\"tx_data_segments\": %llu, \"segments_per_op\": %.3f, "
                  "\"heap_allocs\": %llu, \"allocs_per_op\": %.4f, "
                  "\"pool_hit_rate\": %.4f, \"hits\": %zu, \"control_locks\": %llu, "
                  "\"virtual_ns\": %llu}",
                  i == 0 ? "" : ", ", p.shards, p.batch, p.keys, p.ops_per_sec,
                  p.ns_per_key, static_cast<unsigned long long>(p.tx_data_segments),
                  p.segments_per_op, static_cast<unsigned long long>(p.heap_allocs),
                  p.allocs_per_op, p.pool_hit_rate, p.hits,
                  static_cast<unsigned long long>(p.control_locks),
                  static_cast<unsigned long long>(p.virtual_ns));
    out += buf;
  }
  out += "]";
  return out;
}

int GatePoint(const MultiGetPoint& p) {
  int failures = 0;
  if (p.keys == 0) {
    std::fprintf(stderr, "FAIL: multiget schedule did not complete (shards=%zu batch=%zu)\n",
                 p.shards, p.batch);
    return 1;
  }
  if (p.hits != p.keys) {
    std::fprintf(stderr, "FAIL: %zu of %zu preloaded keys missed (shards=%zu batch=%zu)\n",
                 p.keys - p.hits, p.keys, p.shards, p.batch);
    failures++;
  }
  if (p.allocs_per_op > 0.05) {
    std::fprintf(stderr, "FAIL: bulk datapath mallocs (allocs_per_op %.4f > 0.05)\n",
                 p.allocs_per_op);
    failures++;
  }
  if (p.pool_hit_rate == 0.0) {
    std::fprintf(stderr, "FAIL: buffer pool silently disabled on the bulk path\n");
    failures++;
  }
  if (p.control_locks != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu Messenger control locks taken on the steady-state path\n",
                 static_cast<unsigned long long>(p.control_locks));
    failures++;
  }
  return failures == 0 ? 0 : 1;
}

void PrintPoint(const MultiGetPoint& p) {
  std::printf("%-8zu %-8zu %8zu %14.0f %12.1f %16.3f %14.4f %14.4f\n", p.shards, p.batch,
              p.keys, p.ops_per_sec, p.ns_per_key, p.segments_per_op, p.allocs_per_op,
              p.pool_hit_rate);
}

}  // namespace
}  // namespace bench
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    MultiGetPoint base = RunMultiGetPoint(/*shards=*/4, /*batch=*/1, /*total_keys=*/128);
    MultiGetPoint bulk = RunMultiGetPoint(/*shards=*/4, /*batch=*/64, /*total_keys=*/256);
    std::printf("smoke: shards=4 batch=1  segments_per_op=%.3f ns_per_key=%.1f\n",
                base.segments_per_op, base.ns_per_key);
    std::printf("smoke: shards=4 batch=64 segments_per_op=%.3f ns_per_key=%.1f "
                "allocs_per_op=%.4f pool_hit_rate=%.4f control_locks=%llu\n",
                bulk.segments_per_op, bulk.ns_per_key, bulk.allocs_per_op,
                bulk.pool_hit_rate, static_cast<unsigned long long>(bulk.control_locks));
    int failures = GatePoint(base) + GatePoint(bulk);
    // The batching acceptance: a batch-64 key must cost AT MOST half the wire segments of
    // a batch-1 key, or bulk RPC has stopped amortizing the per-round-trip overhead.
    if (base.keys != 0 && bulk.keys != 0 &&
        bulk.segments_per_op > 0.5 * base.segments_per_op) {
      std::fprintf(stderr,
                   "FAIL: batch-64 segments/key %.3f > 0.5x batch-1 %.3f\n",
                   bulk.segments_per_op, base.segments_per_op);
      failures++;
    }
    WriteJsonSection("BENCH_multiget.json", "multiget_smoke",
                     MultiGetPointsJson({base, bulk}));
    return failures == 0 ? 0 : 1;
  }
  std::printf("# bulk RPC sweep (scatter-gather MultiGet over the consistent-hash router)\n");
  std::printf("%-8s %-8s %8s %14s %12s %16s %14s %14s\n", "shards", "batch", "keys",
              "ops_per_sec", "ns_per_key", "segments_per_op", "allocs_per_op",
              "pool_hit_rate");
  std::vector<MultiGetPoint> points;
  int failures = 0;
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    MultiGetPoint batch1;
    for (std::size_t batch : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
      MultiGetPoint p = RunMultiGetPoint(shards, batch, /*total_keys=*/512);
      PrintPoint(p);
      failures += GatePoint(p);
      if (batch == 1) {
        batch1 = p;
      }
      // The headline acceptance: at batch 64 BOTH per-key wire cost and per-key latency
      // must sit strictly below the batch-1 baseline at the same shard count.
      if (batch == 64 && p.keys != 0 && batch1.keys != 0) {
        if (p.segments_per_op >= batch1.segments_per_op) {
          std::fprintf(stderr,
                       "FAIL: shards=%zu batch-64 segments/key %.3f >= batch-1 %.3f\n",
                       shards, p.segments_per_op, batch1.segments_per_op);
          failures++;
        }
        if (p.ns_per_key >= batch1.ns_per_key) {
          std::fprintf(stderr, "FAIL: shards=%zu batch-64 ns/key %.1f >= batch-1 %.1f\n",
                       shards, p.ns_per_key, batch1.ns_per_key);
          failures++;
        }
      }
      points.push_back(p);
    }
  }
  WriteJsonSection("BENCH_multiget.json", "multiget", MultiGetPointsJson(points));
  std::printf("# wrote section \"multiget\" to BENCH_multiget.json\n");
  return failures == 0 ? 0 : 1;
}
