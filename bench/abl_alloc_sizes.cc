// Ablation D — general-purpose allocator across size classes (§3.4): the compile-time-size
// path (class index constant-folds into a direct slab call, the paper's sized-malloc
// observation) vs the runtime-size path, and the slab fast path vs the large-allocation
// (buddy) path. google-benchmark fixture.
#include <benchmark/benchmark.h>

#include "src/mem/gp_allocator.h"

namespace {

struct BenchEnv {
  BenchEnv() : runtime(ebbrt::RuntimeKind::kNative, "abl-alloc") {
    runtime.AddCores(1);
    ebbrt::mem::Config config;
    config.arena_bytes = 256ull << 20;
    ebbrt::mem::Install(runtime, 1, config);
    ctx = std::make_unique<ebbrt::ScopedContext>(runtime, runtime.global_core(0), 0, false);
  }
  ebbrt::Runtime runtime;
  std::unique_ptr<ebbrt::ScopedContext> ctx;
};

BenchEnv& Env() {
  static BenchEnv env;
  return env;
}

void BM_RuntimeSize(benchmark::State& state) {
  Env();
  std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = ebbrt::mem::Alloc(size);
    benchmark::DoNotOptimize(p);
    ebbrt::mem::Free(p);
  }
}
BENCHMARK(BM_RuntimeSize)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

template <std::size_t N>
void BM_CompileTimeSize(benchmark::State& state) {
  Env();
  auto gp = ebbrt::GeneralPurposeAllocator::Instance();
  for (auto _ : state) {
    void* p = gp->AllocFor<N>();
    benchmark::DoNotOptimize(p);
    gp->Free(p);
  }
}
BENCHMARK(BM_CompileTimeSize<8>);
BENCHMARK(BM_CompileTimeSize<64>);
BENCHMARK(BM_CompileTimeSize<1024>);

void BM_LargeAllocation(benchmark::State& state) {
  Env();
  std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = ebbrt::mem::Alloc(size);
    benchmark::DoNotOptimize(p);
    ebbrt::mem::Free(p);
  }
}
BENCHMARK(BM_LargeAllocation)->Arg(8192)->Arg(65536)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
