// Figure 8 (extension) — the cost of the hybrid structure: closed-loop function-shipping
// RPCs from a native instance to the hosted frontend, swept over pipeline depth {1, 8, 32}.
//
// Each round issues `depth` RPCs inside one event — alternating GlobalIdMap::Get (naming
// lookup) and FileSystem::ReadFile (shipped POSIX read) — and waits for the whole round
// before issuing the next. Because the Messenger rides the auto-corked TCP datapath, a
// pipelined round leaves the native instance as ONE wire segment (and the frontend's replies
// come back the same way): segments/op collapses with depth exactly as the memcached sweeps
// showed for application traffic. Because it rides the pooled IOBuf datapath, steady-state
// RPCs cost no mallocs: allocs/op ~ 0.
//
// Emits the "dist_rpc" section of BENCH_dist_rpc.json.
//
// Modes:
//   (none)    full sweep {1, 8, 32}
//   --smoke   one depth-32 point; exits nonzero when the hybrid datapath degrades
//             (allocs_per_op > 0.1, pool hit rate 0, or segments_per_op >= 0.5 — i.e.
//             corking or the pool silently disabled for the dist path)
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/dist/file_system.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace bench {
namespace {

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kNativeIp = Ipv4Addr::Of(10, 0, 0, 3);

struct RpcPoint {
  std::size_t pipeline = 0;
  std::size_t requests = 0;  // measured (post-warmup) RPCs
  double rpcs_per_sec = 0;
  std::uint64_t tx_data_segments = 0;  // both directions, measured window
  double segments_per_op = 0;
  std::uint64_t heap_allocs = 0;
  double allocs_per_op = 0;
  double pool_hit_rate = 0;
  std::uint64_t virtual_ns = 0;  // measured window
};

RpcPoint RunRpcPoint(std::size_t depth, std::size_t total_requests) {
  sim::Testbed bed;
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  sim::TestbedNode native = bed.AddNode("native", 1, kNativeIp);
  std::string sandbox = "/tmp/ebbrt_fig8_dist_rpc_" + std::to_string(::getpid());

  frontend.Spawn(0, [&, sandbox] {
    dist::FileSystem::ServeOn(*frontend.runtime, sandbox);
    dist::GlobalIdMap::ServeOn(*frontend.runtime);
  });

  struct State {
    dist::FileSystem* fs = nullptr;
    dist::GlobalIdMap* ids = nullptr;
    std::size_t depth = 0;
    std::size_t warmup = 0;          // RPCs before the measured window opens
    std::size_t total = 0;           // measured RPCs
    std::size_t issued = 0;
    bool marked = false;
    std::uint64_t t_start = 0;
    std::uint64_t t_end = 0;
    std::uint64_t seg_mark = 0;      // both nodes' data segments at the mark
    std::uint64_t seg_end = 0;
    bool done = false;
    std::function<void()> round;
  };
  auto state = std::make_shared<State>();
  state->depth = depth;
  state->warmup = 2 * depth;  // fills the connection, pool, and name/file state
  state->total = total_requests;

  auto both_data_segments = [&frontend, &native] {
    return frontend.net->stats().tcp_tx_data_segments.load() +
           native.net->stats().tcp_tx_data_segments.load();
  };

  // The closure stored inside State captures only a weak_ptr to it (RunRpcPoint's `state`
  // holds the strong reference through the run) — a self-owning cycle would leak the State
  // and dangle its [&] captures past this frame.
  std::weak_ptr<State> weak_state = state;
  native.Spawn(0, [&, state] {
    state->fs = &dist::FileSystem::For(*native.runtime, kFrontendIp);
    state->ids = &dist::GlobalIdMap::For(*native.runtime, kFrontendIp);
    state->round = [&, weak_state] {
      auto state = weak_state.lock();
      if (state == nullptr) {
        return;
      }
      std::vector<Future<void>> round;
      round.reserve(state->depth);
      for (std::size_t i = 0; i < state->depth; ++i) {
        if ((state->issued + i) % 2 == 0) {
          round.push_back(state->ids->Get("service/bench").Then(
              [](Future<std::string> f) { f.Get(); }));
        } else {
          round.push_back(state->fs->ReadFile("blob.bin").Then(
              [](Future<std::string> f) { f.Get(); }));
        }
      }
      state->issued += state->depth;
      WhenAll(std::move(round)).Then([&, state](Future<void> f) {
        f.Get();
        if (!state->marked && state->issued >= state->warmup) {
          // Steady state: snapshot the allocation counters and the segment/time baselines
          // so the reported costs exclude dial/warmup work.
          native.net->stats().MarkAllocBaseline();
          state->seg_mark = both_data_segments();
          state->t_start = bed.world().Now();
          state->marked = true;
          state->issued = 0;
        }
        if (!state->marked || state->issued < state->total) {
          state->round();
          return;
        }
        state->t_end = bed.world().Now();
        state->seg_end = both_data_segments();
        state->done = true;
      });
    };
    // Seed the name and the file the measured loop reads, then start.
    state->ids->Set("service/bench", kNativeIp.ToString() + ":0").Then([state](
                                                                           Future<void> f) {
      f.Get();
      return state->fs->WriteFile("blob.bin", std::string(64, 'x'))
          .Then([state](Future<void> wf) {
            wf.Get();
            state->round();
          });
    });
  });

  bed.world().Run();

  RpcPoint point;
  point.pipeline = depth;
  if (!state->done) {
    return point;  // leaves requests == 0: visible failure in the table and the smoke gate
  }
  point.requests = state->total;
  point.virtual_ns = state->t_end - state->t_start;
  point.rpcs_per_sec = point.virtual_ns != 0
                           ? static_cast<double>(point.requests) * 1e9 /
                                 static_cast<double>(point.virtual_ns)
                           : 0.0;
  point.tx_data_segments = state->seg_end - state->seg_mark;
  point.segments_per_op =
      static_cast<double>(point.tx_data_segments) / static_cast<double>(point.requests);
  const NetworkManager::Stats& stats = native.net->stats();
  point.heap_allocs = stats.heap_allocs_since_mark();
  point.allocs_per_op = stats.allocs_per_op(point.requests);
  point.pool_hit_rate = stats.pool_hit_rate_since_mark();
  return point;
}

std::string RpcPointsJson(const std::vector<RpcPoint>& points) {
  std::string out = "[";
  char buf[320];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RpcPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"pipeline\": %zu, \"requests\": %zu, \"rpcs_per_sec\": %.0f, "
                  "\"tx_data_segments\": %llu, \"segments_per_op\": %.3f, "
                  "\"heap_allocs\": %llu, \"allocs_per_op\": %.4f, "
                  "\"pool_hit_rate\": %.4f, \"virtual_ns\": %llu}",
                  i == 0 ? "" : ", ", p.pipeline, p.requests, p.rpcs_per_sec,
                  static_cast<unsigned long long>(p.tx_data_segments), p.segments_per_op,
                  static_cast<unsigned long long>(p.heap_allocs), p.allocs_per_op,
                  p.pool_hit_rate, static_cast<unsigned long long>(p.virtual_ns));
    out += buf;
  }
  out += "]";
  return out;
}

int GateRpcPoint(const RpcPoint& p) {
  if (p.requests == 0) {
    std::fprintf(stderr, "FAIL: dist RPC schedule did not complete\n");
    return 1;
  }
  if (p.allocs_per_op > 0.1) {
    std::fprintf(stderr, "FAIL: dist RPC datapath mallocs (allocs_per_op %.4f > 0.1)\n",
                 p.allocs_per_op);
    return 1;
  }
  if (p.pool_hit_rate == 0.0) {
    std::fprintf(stderr, "FAIL: buffer pool silently disabled on the dist path\n");
    return 1;
  }
  if (p.pipeline >= 32 && p.segments_per_op >= 0.5) {
    std::fprintf(stderr,
                 "FAIL: pipelined RPCs not batching (segments_per_op %.3f >= 0.5)\n",
                 p.segments_per_op);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    RpcPoint p = RunRpcPoint(/*depth=*/32, /*total_requests=*/256);
    std::printf("smoke: pipeline=32 requests=%zu rpcs_per_sec=%.0f segments_per_op=%.3f"
                " allocs_per_op=%.4f pool_hit_rate=%.4f\n",
                p.requests, p.rpcs_per_sec, p.segments_per_op, p.allocs_per_op,
                p.pool_hit_rate);
    WriteJsonSection("BENCH_dist_rpc.json", "dist_rpc_smoke", RpcPointsJson({p}));
    return GateRpcPoint(p);
  }
  std::printf("# dist RPC depth sweep (GlobalIdMap Get + FileSystem ReadFile, closed loop)\n");
  std::printf("%-10s %10s %14s %18s %16s %14s %14s\n", "pipeline", "requests",
              "rpcs_per_sec", "tx_data_segments", "segments_per_op", "allocs_per_op",
              "pool_hit_rate");
  std::vector<RpcPoint> points;
  int failures = 0;
  for (std::size_t depth : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
    RpcPoint p = RunRpcPoint(depth, /*total_requests=*/512);
    std::printf("%-10zu %10zu %14.0f %18llu %16.3f %14.4f %14.4f\n", p.pipeline, p.requests,
                p.rpcs_per_sec, static_cast<unsigned long long>(p.tx_data_segments),
                p.segments_per_op, p.allocs_per_op, p.pool_hit_rate);
    failures += GateRpcPoint(p);
    points.push_back(p);
  }
  WriteJsonSection("BENCH_dist_rpc.json", "dist_rpc", RpcPointsJson(points));
  std::printf("# wrote section \"dist_rpc\" to BENCH_dist_rpc.json\n");
  return failures == 0 ? 0 : 1;
}
