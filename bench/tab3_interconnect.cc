// Table 3 (extension) — cross-core dispatch cost over the lock-free exchange-list mesh.
//
// The paper's thesis for per-core specialization only holds if moving work BETWEEN cores is
// cheap enough that sharding never has to be second-guessed: a cross-core dispatch should
// cost about as much as a virtual function call, not a lock handoff. This bench pins that
// claim for the interconnect (src/event/interconnect.h) at three levels:
//
//   virtual_call      the baseline: one noinline virtual call (tab1 methodology)
//   mesh_uncontended  the primitive: CAS-publish + exchange-drain + one delivery virtual
//                     call on a raw mesh, single thread (no cache-line transfer)
//   xcore_spawn       the product path: EventManager::SpawnRemote end to end under real
//                     threads — slab-carved node, push, wake-if-idle, drain, closure run
//
// plus a fan-in sweep: 1..N-1 real sender threads hammering ONE receiver list. The receiver
// detaches each pending batch with a single unconditional exchange, so its per-message drain
// cost must stay flat (within 2x of the single-sender cost) no matter how many senders
// contend on the head.
//
// Methodology: minimum over many measurements (tab1), cycles converted at the paper's
// 2.6 GHz clock. Emits the "interconnect" section of BENCH_interconnect.json.
//
// Modes:
//   (none)    full run: all rows + fan-in sweep up to min(7, hw_threads-1) senders
//   --smoke   quick run; exits nonzero when the interconnect regresses:
//             allocs_per_op >= 0.05 (the slab-carve path stopped working),
//             fan-in ns/op at max senders > 2x single-sender (drain no longer flat),
//             control_locks != 0 (a lock crept back onto the dispatch path)
#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/event/event_manager.h"
#include "src/event/interconnect.h"
#include "src/event/thread_machine.h"
#include "src/mem/gp_allocator.h"
#include "src/platform/clock.h"

namespace ebbrt {
namespace bench {
namespace {

// --- baseline: one virtual call (tab1 methodology) --------------------------------------------

struct VirtualBase {
  virtual ~VirtualBase() = default;
  virtual void Method() = 0;
};
struct VirtualImpl final : VirtualBase {
  __attribute__((noinline)) void Method() override { ++count; }
  std::uint64_t count = 0;
};

constexpr int kInvocations = 1000;
constexpr int kMeasurements = 2000;

template <typename F>
std::uint64_t MeasureMinCycles(F&& body) {
  std::uint64_t best = ~0ull;
  for (int m = 0; m < kMeasurements; ++m) {
    std::uint64_t start = ReadCyclesSerialized();
    for (int i = 0; i < kInvocations; ++i) {
      body();
      asm volatile("" ::: "memory");
    }
    std::uint64_t cycles = ReadCyclesSerialized() - start;
    best = std::min(best, cycles);
  }
  return best;
}

double VirtualCallNs() {
  VirtualImpl impl;
  VirtualBase* vptr = &impl;
  std::uint64_t cycles = MeasureMinCycles([&] { vptr->Method(); });
  return static_cast<double>(CyclesToNs(cycles)) / kInvocations;
}

// --- raw mesh: the primitive without an event loop around it ----------------------------------

// The mesh only calls WakeCore (when a push displaces the idle sentinel); receivers here
// poll, so the wake is a counter. Everything else is unreachable from Push/TakeBatch.
struct NullExecutor final : Executor {
  std::uint64_t Now() override { return 0; }
  void WakeCore(std::size_t) override { wakes.fetch_add(1, std::memory_order_relaxed); }
  void Halt(std::size_t, std::uint64_t) override {}
  bool Stopped() const override { return false; }
  std::atomic<std::uint64_t> wakes{0};
};

// Embedded bench node: both verbs just count a delivery (one virtual call, storage is the
// caller's — the same discipline as VectorEntry and the RCU epoch markers).
struct BenchNode final : InterconnectNode {
  void Fire(EventManager&) override { Count(); }
  void Discard() override { Count(); }
  __attribute__((noinline)) void Count() {
    delivered->fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t>* delivered = nullptr;
};

// Single-threaded round trip: publish one node, detach the batch, deliver it. No cache-line
// transfer, no contention — the instruction cost of the primitive itself.
double MeshUncontendedNs() {
  NullExecutor exec;
  Interconnect mesh(exec, 1);
  std::atomic<std::uint64_t> delivered{0};
  BenchNode node;
  node.delivered = &delivered;
  (void)mesh.TakeBatch(0);  // clear the born-idle sentinel, as a core's first drain would
  std::uint64_t cycles = MeasureMinCycles([&] {
    mesh.Push(0, &node);
    InterconnectNode* chain = mesh.TakeBatch(0);
    while (chain != nullptr) {
      InterconnectNode* next = chain->next();
      chain->Discard();
      chain = next;
    }
  });
  return static_cast<double>(CyclesToNs(cycles)) / kInvocations;
}

// Fan-in: `senders` real threads each publish `per_sender` pre-built nodes at ONE receiver
// list while the receiver drains. Returns the receiver-side cost per delivered message —
// the number that must stay flat as senders scale (one exchange detaches however many
// nodes the senders managed to pile up).
double FanInNsPerOp(std::size_t senders, std::size_t per_sender) {
  NullExecutor exec;
  Interconnect mesh(exec, 1);
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::vector<BenchNode>> nodes(senders);
  for (auto& batch : nodes) {
    batch.resize(per_sender);
    for (BenchNode& node : batch) {
      node.delivered = &delivered;
    }
  }
  (void)mesh.TakeBatch(0);  // clear the born-idle sentinel
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(senders);
  for (std::size_t s = 0; s < senders; ++s) {
    threads.emplace_back([&, s] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (BenchNode& node : nodes[s]) {
        mesh.Push(0, &node);
      }
    });
  }
  const std::uint64_t total = senders * per_sender;
  std::uint64_t start = ReadCyclesSerialized();
  go.store(true, std::memory_order_release);
  while (delivered.load(std::memory_order_relaxed) < total) {
    InterconnectNode* chain = mesh.TakeBatch(0);
    while (chain != nullptr) {
      InterconnectNode* next = chain->next();
      chain->Discard();
      chain = next;
    }
  }
  std::uint64_t cycles = ReadCyclesSerialized() - start;
  for (std::thread& t : threads) {
    t.join();
  }
  return static_cast<double>(CyclesToNs(cycles)) / static_cast<double>(total);
}

// --- product path: SpawnRemote end to end under real threads ----------------------------------

struct SpawnResult {
  double ns_per_spawn = 0;
  double allocs_per_op = 0;        // heap fallbacks per spawn — slab carving makes this 0.0
  std::uint64_t xcore_pushes = 0;  // receiver-core interconnect telemetry for the burst
  std::uint64_t xcore_wakeups = 0;
  std::uint64_t xcore_batched = 0;
  std::uint64_t control_locks = 0;
};

SpawnResult XcoreSpawn(std::size_t burst, int rounds) {
  ThreadMachine machine(2);
  mem::Config config;
  config.arena_bytes = 256ull << 20;
  mem::Install(machine.runtime(), 2, config);
  machine.Start();
  auto& em_root =
      machine.runtime().GetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  std::atomic<std::uint64_t> done{0};
  auto one_round = [&] {
    done.store(0, std::memory_order_relaxed);
    machine.RunSync(0, [&] {
      auto& em = event::Local();
      for (std::size_t i = 0; i < burst; ++i) {
        em.SpawnRemote([&done] { done.fetch_add(1, std::memory_order_relaxed); }, 1);
      }
    });
    while (done.load(std::memory_order_relaxed) < burst) {
    }
  };
  one_round();  // warmup: fault in slabs, fault in both loops

  EventManager::Stats stats_before = em_root.RepFor(1).stats();
  std::uint64_t heap_before = mem::stats().heap_fallback_allocs.load();
  std::uint64_t best = ~0ull;
  for (int r = 0; r < rounds; ++r) {
    std::uint64_t start = ReadCyclesSerialized();
    one_round();
    best = std::min(best, ReadCyclesSerialized() - start);
  }
  EventManager::Stats stats_after = em_root.RepFor(1).stats();
  std::uint64_t heap_after = mem::stats().heap_fallback_allocs.load();
  machine.Shutdown();

  SpawnResult result;
  result.ns_per_spawn =
      static_cast<double>(CyclesToNs(best)) / static_cast<double>(burst);
  result.allocs_per_op = static_cast<double>(heap_after - heap_before) /
                         static_cast<double>(burst * static_cast<std::size_t>(rounds));
  result.xcore_pushes = stats_after.xcore_pushes - stats_before.xcore_pushes;
  result.xcore_wakeups = stats_after.xcore_wakeups - stats_before.xcore_wakeups;
  result.xcore_batched = stats_after.xcore_batches - stats_before.xcore_batches;
  result.control_locks = stats_after.control_locks;
  return result;
}

std::string FanInJson(const std::vector<std::pair<std::size_t, double>>& points) {
  std::string out = "[";
  char buf[96];
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"senders\": %zu, \"ns_per_op\": %.1f}",
                  i == 0 ? "" : ", ", points[i].first, points[i].second);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt;
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::printf("# Table 3 extension: cross-core dispatch over the exchange-list mesh\n");
  std::printf("# claim: a cross-core dispatch costs on the order of a virtual call, stays\n");
  std::printf("#        flat under fan-in, and allocates nothing on the steady-state path\n");

  double virtual_ns = VirtualCallNs();
  double mesh_ns = MeshUncontendedNs();
  SpawnResult spawn = XcoreSpawn(/*burst=*/smoke ? 20000 : 100000, /*rounds=*/smoke ? 3 : 10);

  std::size_t hw = std::thread::hardware_concurrency();
  std::size_t max_senders = std::min<std::size_t>(smoke ? 3 : 7, hw > 1 ? hw - 1 : 1);
  std::size_t per_sender = smoke ? 50000 : 200000;
  std::vector<std::pair<std::size_t, double>> fan_in;
  for (std::size_t s = 1; s <= max_senders; ++s) {
    // Best of 3: the receiver-side drain cost per message at this contention level.
    double best = FanInNsPerOp(s, per_sender);
    for (int r = 1; r < 3; ++r) {
      best = std::min(best, FanInNsPerOp(s, per_sender));
    }
    fan_in.emplace_back(s, best);
  }

  std::printf("%-20s %12s\n", "Path", "ns/op");
  std::printf("%-20s %12.1f\n", "virtual_call", virtual_ns);
  std::printf("%-20s %12.1f\n", "mesh_uncontended", mesh_ns);
  std::printf("%-20s %12.1f   (allocs/op %.4f, wakeups %llu / pushes %llu, batched %llu)\n",
              "xcore_spawn", spawn.ns_per_spawn, spawn.allocs_per_op,
              static_cast<unsigned long long>(spawn.xcore_wakeups),
              static_cast<unsigned long long>(spawn.xcore_pushes),
              static_cast<unsigned long long>(spawn.xcore_batched));
  for (auto& point : fan_in) {
    std::printf("fan_in x%-17zu %12.1f\n", point.first, point.second);
  }

  char section[512];
  std::snprintf(
      section, sizeof(section),
      "{\"virtual_call_ns\": %.1f, \"mesh_uncontended_ns\": %.1f, "
      "\"xcore_spawn_ns\": %.1f, \"allocs_per_op\": %.4f, \"xcore_pushes\": %llu, "
      "\"xcore_wakeups\": %llu, \"xcore_batched\": %llu, \"control_locks\": %llu, "
      "\"fan_in\": %s}",
      virtual_ns, mesh_ns, spawn.ns_per_spawn, spawn.allocs_per_op,
      static_cast<unsigned long long>(spawn.xcore_pushes),
      static_cast<unsigned long long>(spawn.xcore_wakeups),
      static_cast<unsigned long long>(spawn.xcore_batched),
      static_cast<unsigned long long>(spawn.control_locks),
      FanInJson(fan_in).c_str());
  WriteJsonSection("BENCH_interconnect.json", smoke ? "interconnect_smoke" : "interconnect",
                   section);
  std::printf("# wrote section \"%s\" to BENCH_interconnect.json\n",
              smoke ? "interconnect_smoke" : "interconnect");

  if (smoke) {
    bool ok = true;
    if (spawn.allocs_per_op >= 0.05) {
      std::printf("SMOKE FAIL: allocs_per_op %.4f >= 0.05 (slab carving regressed)\n",
                  spawn.allocs_per_op);
      ok = false;
    }
    double flat_limit = 2.0 * fan_in.front().second;
    if (fan_in.back().second > flat_limit) {
      std::printf("SMOKE FAIL: fan-in ns/op %.1f at %zu senders > 2x single-sender %.1f\n",
                  fan_in.back().second, fan_in.back().first, fan_in.front().second);
      ok = false;
    }
    if (spawn.control_locks != 0) {
      std::printf("SMOKE FAIL: control_locks %llu != 0 on the dispatch path\n",
                  static_cast<unsigned long long>(spawn.control_locks));
      ok = false;
    }
    std::printf("smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
