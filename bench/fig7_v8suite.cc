// Figure 7 — V8 benchmark suite scores, EbbRT vs Linux environment (paper §4.3).
//
//   Paper: EbbRT outperforms Linux on all eight benchmarks; +13.9% on the memory-intensive
//   Splay; +4.09% overall. Explanation: aggressive memory mapping (no page faults) and no
//   timer interrupts / scheduler cache pollution.
//
// Scores are inverse runtimes normalized to the Linux environment (Linux = 1.000), geometric
// mean overall — the suite's own scoring rule. See src/apps/v8bench/ for the kernel
// re-implementations and DESIGN.md for the V8 substitution note.
#include <cmath>
#include <cstdio>

#include "src/apps/v8bench/kernels.h"
#include "src/platform/clock.h"

namespace ebbrt {
namespace {

constexpr int kRepetitions = 3;

double MeasureSeconds(const v8bench::Kernel& kernel, v8bench::Env::Kind kind) {
  double best = 1e30;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    // Fresh environment per repetition: the Linux variant must re-fault its arena each time,
    // as a freshly exec'd process would.
    v8bench::Env env(kind, kernel.arena_bytes);
    env.StartTicks();
    std::uint64_t start = WallNowNs();
    volatile std::uint64_t sink = kernel.fn(env);
    (void)sink;
    double secs = static_cast<double>(WallNowNs() - start) / 1e9;
    env.StopTicks();
    best = std::min(best, secs);
  }
  return best;
}

}  // namespace
}  // namespace ebbrt

int main() {
  using namespace ebbrt;
  std::printf("# Figure 7 reproduction: V8 suite (C++ kernel re-implementations), normalized"
              " score\n");
  std::printf("# score = linux_time / ebbrt_time (Linux = 1.000); paper: EbbRT wins all,"
              " Splay largest, +4.09%% geomean\n");
  std::printf("%-14s %12s %12s %10s\n", "benchmark", "ebbrt(ms)", "linux(ms)", "score");
  double log_sum = 0;
  int count = 0;
  for (const auto& kernel : v8bench::AllKernels()) {
    double ebbrt_secs = MeasureSeconds(kernel, v8bench::Env::Kind::kEbbRT);
    double linux_secs = MeasureSeconds(kernel, v8bench::Env::Kind::kLinux);
    double score = linux_secs / ebbrt_secs;
    log_sum += std::log(score);
    ++count;
    std::printf("%-14s %12.2f %12.2f %10.3f\n", kernel.name, ebbrt_secs * 1000,
                linux_secs * 1000, score);
  }
  std::printf("%-14s %12s %12s %10.3f  (geometric mean)\n", "Overall", "", "",
              std::exp(log_sum / count));
  return 0;
}
