// Table 4 (extension) — the cost of the always-on telemetry plane: the same sharded-KV
// workload run at each obs::Level, with the plane's own overhead measured by the plane's
// own counters.
//
// Topology per point (fig11's): a hosted frontend serving GlobalIdMap, four single-core
// shard machines, and one native client driving a closed loop of depth-32 GET rounds over a
// preloaded key space through a ShardRouter. Every machine's ObsRoot is dialed to the same
// level before the workload:
//   kOff      no recording anywhere (the baseline the overhead gate compares against)
//   kMetrics  event-plane histograms + registry counters record on every event
//   kTracing  additionally: trace ids ride every RPC frame, client/server/local span
//             records are written per hop (the "always on" default)
//
// What the gates assert:
//   * the plane is cheap: kTracing ops/s within 3% of kOff (the RpcHeader carries the trace
//     fields at every level, so the wire cost is constant — what the gate catches is the
//     plane putting modeled work, segments, or stalls on the datapath).
//   * the plane is allocation-free: steady-state allocs/op < 0.05 WITH tracing on (span
//     records land in preallocated per-core rings; histogram recording is an array index).
//   * the plane is lock-free: zero Messenger control locks across every machine during the
//     measured window at every level.
//   * the plane actually records: spans flow at kTracing (client+local on the client,
//     server spans on the shards), and NOT below it.
//
// Emits the "observability" (or "observability_smoke") section of BENCH_observability.json.
//
// Modes:
//   (none)    full run (longer schedule)
//   --smoke   shorter schedule; exits nonzero when any gate fails
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/memcached/shard.h"
#include "src/obs/metrics.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace bench {
namespace {

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr std::size_t kNumShards = 4;
constexpr std::size_t kDepth = 32;
constexpr std::size_t kKeySpace = 256;
constexpr std::size_t kValueBytes = 64;
// Modeled per-request backend service time (same knob as fig9/fig11).
constexpr std::uint64_t kServiceNs = 3000;

std::string BenchKey(std::size_t index) { return "user:" + std::to_string(index); }

const char* LevelName(obs::Level level) {
  switch (level) {
    case obs::Level::kOff: return "off";
    case obs::Level::kMetrics: return "metrics";
    case obs::Level::kTracing: return "tracing";
  }
  return "?";
}

struct ObsPoint {
  const char* level = "?";
  std::size_t ops = 0;           // measured (post-warmup) GETs completed
  std::uint64_t virtual_ns = 0;  // measured window
  double ops_per_sec = 0;
  obs::Histogram::Snapshot latency;  // per-GET latency (shared p50/p99/p999 columns)
  std::uint64_t heap_allocs = 0;     // client, since the steady-state mark
  double allocs_per_op = 0;
  std::uint64_t control_locks = 0;   // all machines, measured window
  std::uint64_t spans = 0;           // span records written, all machines, measured window
  bool done = false;
};

// Spans ever recorded across every core of every machine (relaxed counters; the ring may
// wrap but the count doesn't).
std::uint64_t AllSpans(const std::vector<Runtime*>& runtimes) {
  std::uint64_t total = 0;
  for (Runtime* runtime : runtimes) {
    obs::ObsRoot* root = obs::ObsRoot::TryFor(*runtime);
    if (root == nullptr) {
      continue;
    }
    for (std::size_t core = 0; core < root->num_cores(); ++core) {
      if (obs::MetricRegistry* rep = root->TryRep(core)) {
        total += rep->spans_recorded();
      }
    }
  }
  return total;
}

ObsPoint RunObsPoint(obs::Level level, std::size_t measured_rounds) {
  sim::Testbed bed;
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  std::vector<sim::TestbedNode> shard_nodes;
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shard_nodes.push_back(bed.AddNode("shard" + std::to_string(i), 1,
                                      Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
  }
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp,
                                        sim::HypervisorModel::Native());

  frontend.Spawn(0, [&frontend, level] {
    obs::ObsRoot::For(*frontend.runtime).SetLevel(level);
    dist::GlobalIdMap::ServeOn(*frontend.runtime);
  });
  for (std::size_t i = 0; i < kNumShards; ++i) {
    sim::TestbedNode node = shard_nodes[i];
    node.Spawn(0, [&bed, node, i, level] {
      // Force the plane into existence on the shard (RpcServer records server spans only
      // when it already exists), then dial it to the point's level.
      obs::ObsRoot::For(*node.runtime).SetLevel(level);
      memcached::ShardService::Config config;
      config.on_request = [&bed] { bed.world().Charge(kServiceNs); };
      node.runtime->Adopt(
          std::make_shared<memcached::ShardService>(*node.runtime, i, config));
      memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
          .Then([](Future<void> f) { f.Get(); });
    });
  }

  struct State {
    std::unique_ptr<memcached::ShardRouter> router;
    obs::Histogram latency;
    std::size_t rounds_left = 0;
    std::size_t issued = 0;
    std::size_t preloaded = 0;
    std::size_t ops = 0;
    bool marked = false;
    std::uint64_t t_start = 0;
    std::uint64_t t_end = 0;
    std::uint64_t lock_mark = 0;
    std::uint64_t lock_end = 0;
    std::uint64_t span_mark = 0;
    std::uint64_t span_end = 0;
    bool done = false;
    std::function<void()> preload_round;
    std::function<void()> round;
  };
  auto state = std::make_shared<State>();
  state->rounds_left = 2 + measured_rounds;  // 2 warmup rounds, then the measured window

  std::vector<Runtime*> runtimes;
  runtimes.push_back(client.runtime);
  runtimes.push_back(frontend.runtime);
  for (const sim::TestbedNode& node : shard_nodes) {
    runtimes.push_back(node.runtime);
  }
  auto all_control_locks = [runtimes] {
    std::uint64_t total = 0;
    for (Runtime* runtime : runtimes) {
      total += dist::Messenger::For(*runtime).stats().control_locks.load();
    }
    return total;
  };

  std::weak_ptr<State> weak_state = state;
  constexpr std::size_t warmup_rounds = 2;
  client.Spawn(0, [&, state, level] {
    obs::ObsRoot::For(*client.runtime).SetLevel(level);
    memcached::DiscoverShards(*client.runtime, kFrontendIp, kNumShards)
        .Then([&, state](Future<std::vector<memcached::ShardEndpoint>> f) {
          state->router =
              std::make_unique<memcached::ShardRouter>(*client.runtime, f.Get());

          state->preload_round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::size_t n = std::min<std::size_t>(32, kKeySpace - state->preloaded);
            std::vector<Future<void>> round;
            round.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
              round.push_back(state->router->Set(BenchKey(state->preloaded + i),
                                                 std::string(kValueBytes, 'v')));
            }
            state->preloaded += n;
            WhenAll(std::move(round)).Then([&, state](Future<void> wf) {
              wf.Get();
              if (state->preloaded < kKeySpace) {
                state->preload_round();
              } else {
                state->round();
              }
            });
          };

          state->round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::vector<Future<void>> round;
            round.reserve(kDepth);
            for (std::size_t i = 0; i < kDepth; ++i) {
              std::uint64_t t0 = bed.world().Now();
              round.push_back(
                  state->router->Get(BenchKey((state->issued + i) % kKeySpace))
                      .Then([&, state, t0](Future<memcached::ShardRouter::GetResult> gf) {
                        gf.Get();
                        if (state->marked) {
                          state->latency.Record(bed.world().Now() - t0);
                          state->ops++;
                        }
                      }));
            }
            state->issued += kDepth;
            WhenAll(std::move(round)).Then([&, state](Future<void> wf) {
              wf.Get();
              if (!state->marked && state->issued >= warmup_rounds * kDepth) {
                // Steady state: snapshot every baseline the gates compare against.
                client.net->stats().MarkAllocBaseline();
                state->lock_mark = all_control_locks();
                state->span_mark = AllSpans(runtimes);
                state->t_start = bed.world().Now();
                state->marked = true;
              }
              if (--state->rounds_left > 0) {
                state->round();
                return;
              }
              state->t_end = bed.world().Now();
              state->lock_end = all_control_locks();
              state->span_end = AllSpans(runtimes);
              state->done = true;
            });
          };

          state->preload_round();
        });
  });

  bed.world().Run();

  ObsPoint point;
  point.level = LevelName(level);
  if (!state->done) {
    return point;  // done == false: visible failure in the gates
  }
  point.done = true;
  point.ops = state->ops;
  point.virtual_ns = state->t_end - state->t_start;
  point.ops_per_sec = point.virtual_ns != 0
                          ? static_cast<double>(point.ops) * 1e9 /
                                static_cast<double>(point.virtual_ns)
                          : 0.0;
  point.latency = state->latency.TakeSnapshot();
  const NetworkManager::Stats& stats = client.net->stats();
  point.heap_allocs = stats.heap_allocs_since_mark();
  point.allocs_per_op = stats.allocs_per_op(point.ops);
  point.control_locks = state->lock_end - state->lock_mark;
  point.spans = state->span_end - state->span_mark;
  return point;
}

std::string ObsPointsJson(const std::vector<ObsPoint>& points) {
  std::string out = "[";
  char buf[300];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ObsPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"level\": \"%s\", \"ops\": %zu, \"ops_per_sec\": %.0f, ",
                  i == 0 ? "" : ", ", p.level, p.ops, p.ops_per_sec);
    out += buf;
    out += HistogramColumnsJson(p.latency);
    std::snprintf(buf, sizeof(buf),
                  ", \"heap_allocs\": %llu, \"allocs_per_op\": %.4f, "
                  "\"control_locks\": %llu, \"spans\": %llu, \"virtual_ns\": %llu}",
                  static_cast<unsigned long long>(p.heap_allocs), p.allocs_per_op,
                  static_cast<unsigned long long>(p.control_locks),
                  static_cast<unsigned long long>(p.spans),
                  static_cast<unsigned long long>(p.virtual_ns));
    out += buf;
  }
  out += "]";
  return out;
}

int GatePoints(const ObsPoint& off, const ObsPoint& metrics, const ObsPoint& tracing) {
  int failures = 0;
  for (const ObsPoint* p : {&off, &metrics, &tracing}) {
    if (!p->done || p->ops == 0) {
      std::fprintf(stderr, "FAIL: %s schedule did not complete\n", p->level);
      return 1;
    }
    if (p->control_locks != 0) {
      std::fprintf(stderr, "FAIL: %llu Messenger control locks at level %s\n",
                   static_cast<unsigned long long>(p->control_locks), p->level);
      failures++;
    }
  }
  // The headline: full tracing within 3% of the dark baseline. The trace fields ride the
  // RpcHeader at every level, so the wire cost is identical — a regression here means the
  // plane put modeled work or extra round trips on the datapath.
  if (tracing.ops_per_sec < 0.97 * off.ops_per_sec) {
    std::fprintf(stderr, "FAIL: tracing ops/s %.0f < 97%% of off ops/s %.0f\n",
                 tracing.ops_per_sec, off.ops_per_sec);
    failures++;
  }
  if (tracing.allocs_per_op > 0.05) {
    std::fprintf(stderr, "FAIL: tracing datapath mallocs (allocs_per_op %.4f > 0.05)\n",
                 tracing.allocs_per_op);
    failures++;
  }
  // The plane must actually record: every measured GET writes at least a local root span, a
  // client span, and a server span somewhere — and below kTracing, none at all.
  if (tracing.spans < tracing.ops) {
    std::fprintf(stderr, "FAIL: only %llu spans for %zu traced ops\n",
                 static_cast<unsigned long long>(tracing.spans), tracing.ops);
    failures++;
  }
  if (off.spans != 0 || metrics.spans != 0) {
    std::fprintf(stderr, "FAIL: spans recorded below kTracing (off=%llu metrics=%llu)\n",
                 static_cast<unsigned long long>(off.spans),
                 static_cast<unsigned long long>(metrics.spans));
    failures++;
  }
  return failures == 0 ? 0 : 1;
}

void PrintPoint(const ObsPoint& p) {
  std::printf("%-10s %8zu %14.0f %10llu %10llu %10llu %14.4f %14llu %10llu\n", p.level,
              p.ops, p.ops_per_sec, static_cast<unsigned long long>(p.latency.P50()),
              static_cast<unsigned long long>(p.latency.P99()),
              static_cast<unsigned long long>(p.latency.P999()), p.allocs_per_op,
              static_cast<unsigned long long>(p.control_locks),
              static_cast<unsigned long long>(p.spans));
}

}  // namespace
}  // namespace bench
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::size_t rounds = smoke ? 10 : 40;
  std::printf("# telemetry-plane cost: depth-%zu sharded GETs at each obs level "
              "(%zu measured rounds)\n", kDepth, rounds);
  std::printf("%-10s %8s %14s %10s %10s %10s %14s %14s %10s\n", "level", "ops",
              "ops_per_sec", "p50_ns", "p99_ns", "p999_ns", "allocs_per_op",
              "control_locks", "spans");
  ObsPoint off = RunObsPoint(ebbrt::obs::Level::kOff, rounds);
  PrintPoint(off);
  ObsPoint metrics = RunObsPoint(ebbrt::obs::Level::kMetrics, rounds);
  PrintPoint(metrics);
  ObsPoint tracing = RunObsPoint(ebbrt::obs::Level::kTracing, rounds);
  PrintPoint(tracing);
  if (off.ops_per_sec > 0) {
    std::printf("# tracing/off ops ratio: %.4f (gate: >= 0.97)\n",
                tracing.ops_per_sec / off.ops_per_sec);
  }
  WriteJsonSection("BENCH_observability.json",
                   smoke ? "observability_smoke" : "observability",
                   ObsPointsJson({off, metrics, tracing}));
  std::printf("# wrote section \"%s\" to BENCH_observability.json\n",
              smoke ? "observability_smoke" : "observability");
  return GatePoints(off, metrics, tracing);
}
