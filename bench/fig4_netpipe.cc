// Figure 4 — NetPIPE: TCP ping-pong goodput as a function of message size (paper §4.1.3).
//
//   Paper: EbbRT one-way latency 9.7us @64B vs Linux 15.9us; EbbRT reaches 4 Gbps at 64 KiB
//   messages, Linux needs 384 KiB; EbbRT's advantage comes from the short device-to-
//   application path (latency) and the absence of user/kernel copies (throughput).
//
// Both ends run the same system (as in NetPIPE): EbbRT/KVM vs baseline-Linux/KVM over the
// same simulated 10GbE + virtio cost model. Goodput = 2 * size * iters / elapsed.
#include <cstdio>
#include <functional>

#include "src/apps/http/http_server.h"  // for baseline linkage convenience (SocketStack)
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr std::uint16_t kPort = 5000;

struct RunResult {
  double one_way_us;
  double goodput_mbps;
};

// --- EbbRT ping-pong: application-managed windowing, zero-copy echo ---------------------------

class EbbRTPingPong {
 public:
  // Echo server with application-managed buffering (§3.6: the stack never buffers; an
  // application that cannot send within the advertised window queues the data itself and
  // resumes from SendReady when acknowledgments open the window). Queued chains are split
  // zero-copy at the window boundary instead of being copied into partial buffers.
  class EchoHandler final : public TcpHandler {
   public:
    void Receive(std::unique_ptr<IOBuf> data) override {
      pending_.push_back(std::move(data));
      Pump();
    }
    void SendReady() override { Pump(); }

   private:
    void Pump() {
      while (!pending_.empty()) {
        std::size_t window = Pcb().SendWindowRemaining();
        if (window == 0) {
          return;
        }
        std::unique_ptr<IOBuf>& head = pending_.front();
        std::size_t len = head->ComputeChainDataLength();
        if (len <= window) {
          Pcb().Send(std::move(head));
          pending_.pop_front();
        } else {
          std::unique_ptr<IOBuf> rest = head->Split(window);
          Pcb().Send(std::move(head));
          head = std::move(rest);
          return;
        }
      }
    }

    std::deque<std::unique_ptr<IOBuf>> pending_;
  };

  static void StartServer(TestbedNode& node) {
    node.Spawn(0, [&node] {
      node.net->tcp().Listen(kPort, [](TcpPcb pcb) {
        pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<EchoHandler>()));
      });
    });
  }

  static RunResult Run(Testbed& bed, TestbedNode& client, std::size_t size, int iters) {
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    client.Spawn(0, [&, size, iters] {
      client.net->tcp().Connect(*client.iface, kServerIp, kPort).Then([&, size, iters](
                                                                          Future<TcpPcb> f) {
        TcpPcb pcb = f.Get();
        auto handler = std::make_unique<PingHandler>(bed, size, iters, &end_ns);
        auto* raw = handler.get();
        pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::move(handler)));
        start_ns = bed.world().Now();
        raw->SendMessage();
      });
    });
    bed.world().RunUntil(60ull * 1000 * 1000 * 1000);
    double elapsed_ns = static_cast<double>(end_ns - start_ns);
    RunResult result;
    result.one_way_us = elapsed_ns / (2.0 * iters) / 1000.0;
    result.goodput_mbps =
        (2.0 * static_cast<double>(size) * iters * 8.0) / (elapsed_ns / 1e9) / 1e6;
    return result;
  }

 private:
  // Client half of the ping-pong: one message of `size` bytes bounced `iters` times, the
  // send side paced by the application against the advertised window (§3.6).
  class PingHandler final : public TcpHandler {
   public:
    PingHandler(Testbed& bed, std::size_t size, int iters, std::uint64_t* end)
        : bed_(bed),
          size_(size),
          remaining_iters_(iters),
          message_(IOBuf::Create(size)),
          end_(end) {}

    void Receive(std::unique_ptr<IOBuf> data) override {
      received_ += data->ComputeChainDataLength();
      if (received_ >= size_) {
        received_ = 0;
        if (--remaining_iters_ == 0) {
          *end_ = bed_.world().Now();
          Pcb().Close();
          return;
        }
        SendMessage();
      }
    }

    void SendReady() override { Pump(); }

    void SendMessage() {
      send_offset_ = 0;
      sending_ = true;
      Pump();
    }

   private:
    void Pump() {
      // Application-owned pacing (§3.6): send while the advertised window allows.
      while (sending_ && send_offset_ < size_) {
        std::size_t window = Pcb().SendWindowRemaining();
        if (window == 0) {
          return;
        }
        std::size_t chunk = std::min(window, size_ - send_offset_);
        Pcb().Send(IOBuf::WrapBuffer(message_->Data() + send_offset_, chunk));
        send_offset_ += chunk;
      }
      sending_ = false;
    }

    Testbed& bed_;
    std::size_t size_;
    std::size_t received_ = 0;
    std::size_t send_offset_ = 0;
    bool sending_ = false;
    int remaining_iters_;
    std::unique_ptr<IOBuf> message_;
    std::uint64_t* end_;
  };
};

// --- Baseline (socket API) ping-pong ------------------------------------------------------------

class BaselinePingPong {
 public:
  static void StartServer(Testbed& bed, TestbedNode& node) {
    node.Spawn(0, [&bed, &node] {
      auto* stack = new baseline::SocketStack(bed.world(), *node.net,
                                              baseline::SocketStack::LinuxModel());
      stack->Listen(kPort, [](std::shared_ptr<baseline::Socket> socket) {
        socket->SetDataReadyHandler([socket] {
          char buf[65536];
          for (;;) {
            std::size_t n = socket->Read(buf, sizeof(buf));
            if (n == 0) {
              break;
            }
            std::size_t written = 0;
            while (written < n) {
              written += socket->Write(buf + written, n - written);
            }
          }
        });
      });
    });
  }

  static RunResult Run(Testbed& bed, TestbedNode& client, std::size_t size, int iters) {
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    bool done = false;
    client.Spawn(0, [&, size, iters] {
      auto* stack = new baseline::SocketStack(bed.world(), *client.net,
                                              baseline::SocketStack::LinuxModel());
      stack->Connect(kServerIp, kPort).Then([&, size, iters](
                                                Future<std::shared_ptr<baseline::Socket>> f) {
        auto socket = f.Get();
        auto state = std::make_shared<State>();
        state->size = size;
        state->remaining = iters;
        state->message.resize(size, 'p');
        // Resume short writes when the kernel send buffer drains (EPOLLOUT analogue).
        socket->SetWritableHandler([socket, state] {
          if (state->send_offset < state->size) {
            SendAll(*socket, *state);
          }
        });
        socket->SetDataReadyHandler([&, socket, state] {
          char buf[65536];
          for (;;) {
            std::size_t n = socket->Read(buf, sizeof(buf));
            if (n == 0) {
              break;
            }
            state->received += n;
          }
          if (state->received >= state->size) {
            state->received = 0;
            if (--state->remaining == 0) {
              end_ns = bed.world().Now();
              done = true;
              socket->Close();
              return;
            }
            state->send_offset = 0;  // next ping
            SendAll(*socket, *state);
          }
        });
        start_ns = bed.world().Now();
        SendAll(*socket, *state);
      });
    });
    // Baseline ticks run forever; stop when done or at the horizon.
    std::uint64_t horizon = 60ull * 1000 * 1000 * 1000;
    while (!done && bed.world().RunUntil(bed.world().Now() + 100'000'000) == false) {
      if (bed.world().Now() > horizon) {
        break;
      }
    }
    double elapsed_ns = static_cast<double>(end_ns - start_ns);
    RunResult result;
    result.one_way_us = elapsed_ns / (2.0 * iters) / 1000.0;
    result.goodput_mbps =
        (2.0 * static_cast<double>(size) * iters * 8.0) / (elapsed_ns / 1e9) / 1e6;
    return result;
  }

 private:
  struct State {
    std::size_t size;
    std::size_t received = 0;
    std::size_t send_offset = 0;
    int remaining;
    std::string message;
  };

  static void SendAll(baseline::Socket& socket, State& state) {
    while (state.send_offset < state.size) {
      std::size_t n = socket.Write(state.message.data() + state.send_offset,
                                   state.size - state.send_offset);
      if (n == 0) {
        return;  // kernel buffer full; the writable handler resumes us
      }
      state.send_offset += n;
    }
    state.send_offset = state.size;
  }
};

}  // namespace
}  // namespace ebbrt

int main() {
  using namespace ebbrt;
  std::printf("# Figure 4 reproduction: NetPIPE goodput vs message size (both ends same"
              " system, KVM model)\n");
  std::printf("# paper shape: EbbRT lower latency at small sizes, reaches peak goodput at"
              " much smaller messages\n");
  std::printf("%-10s %14s %14s %12s %12s\n", "size(B)", "ebbrt(Mbps)", "linux(Mbps)",
              "ebbrt(us)", "linux(us)");

  const std::size_t kSizes[] = {64,    256,    1024,   4096,    16384,
                                65536, 131072, 262144, 524288,  1048576};
  for (std::size_t size : kSizes) {
    int iters = size <= 4096 ? 200 : (size <= 65536 ? 60 : 20);
    double ebbrt_mbps, ebbrt_us, linux_mbps, linux_us;
    {
      sim::Testbed bed;
      sim::TestbedNode server = bed.AddNode("server", 1, Ipv4Addr::Of(10, 0, 0, 2));
      sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3));
      EbbRTPingPong::StartServer(server);
      RunResult r = EbbRTPingPong::Run(bed, client, size, iters);
      ebbrt_mbps = r.goodput_mbps;
      ebbrt_us = r.one_way_us;
    }
    {
      sim::Testbed bed;
      sim::TestbedNode server = bed.AddNode("server", 1, Ipv4Addr::Of(10, 0, 0, 2));
      sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3));
      BaselinePingPong::StartServer(bed, server);
      RunResult r = BaselinePingPong::Run(bed, client, size, iters);
      linux_mbps = r.goodput_mbps;
      linux_us = r.one_way_us;
    }
    std::printf("%-10zu %14.0f %14.0f %12.1f %12.1f\n", size, ebbrt_mbps, linux_mbps,
                ebbrt_us, linux_us);
  }
  return 0;
}
