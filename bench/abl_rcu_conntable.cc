// Ablation A — RCU connection/key table vs a lock-protected table (design claim §3.6:
// lookups "proceed without any atomic operations"). Real parallel threads on this host
// hammer Find() while a writer churns; reported is aggregate lookup throughput.
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/event/thread_machine.h"
#include "src/platform/clock.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {
namespace {

constexpr int kKeys = 1024;
constexpr std::uint64_t kRunNs = 300'000'000;  // 0.3 s per variant

double RunRcu(std::size_t readers) {
  ThreadMachine machine(readers + 1);
  machine.Start();
  RcuHashTable<int, int> table(RcuManagerRoot::For(machine.runtime()), 10);
  for (int i = 0; i < kKeys; ++i) {
    table.Insert(i, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      std::uint64_t local = 0;
      std::uint64_t key = 12345;
      while (!stop.load(std::memory_order_relaxed)) {
        key = key * 6364136223846793005ull + 1;
        int* v = table.Find(static_cast<int>(key % kKeys));
        if (v != nullptr) {
          ++local;
        }
      }
      lookups.fetch_add(local);
    });
  }
  // Writer churns through the machine's event loop (RCU reclamation needs the loops).
  std::uint64_t start = WallNowNs();
  while (WallNowNs() - start < kRunNs) {
    machine.RunSync(0, [&table] {
      for (int i = 0; i < 64; ++i) {
        table.Erase(i);
        table.Insert(i, i);
      }
    });
  }
  stop = true;
  for (auto& t : threads) {
    t.join();
  }
  machine.Shutdown();
  return static_cast<double>(lookups.load()) / (kRunNs / 1e9) / 1e6;
}

double RunLocked(std::size_t readers) {
  std::mutex mu;
  std::unordered_map<int, int> table;
  for (int i = 0; i < kKeys; ++i) {
    table.emplace(i, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      std::uint64_t local = 0;
      std::uint64_t key = 12345;
      while (!stop.load(std::memory_order_relaxed)) {
        key = key * 6364136223846793005ull + 1;
        std::lock_guard<std::mutex> lock(mu);
        auto it = table.find(static_cast<int>(key % kKeys));
        if (it != table.end()) {
          ++local;
        }
      }
      lookups.fetch_add(local);
    });
  }
  std::uint64_t start = WallNowNs();
  while (WallNowNs() - start < kRunNs) {
    std::lock_guard<std::mutex> lock(mu);
    for (int i = 0; i < 64; ++i) {
      table.erase(i);
      table.emplace(i, i);
    }
  }
  stop = true;
  for (auto& t : threads) {
    t.join();
  }
  return static_cast<double>(lookups.load()) / (kRunNs / 1e9) / 1e6;
}

}  // namespace
}  // namespace ebbrt

int main() {
  using namespace ebbrt;
  std::printf("# Ablation: RCU table vs mutex-protected table, concurrent lookups under"
              " writer churn\n");
  std::printf("%-9s %16s %16s %8s\n", "readers", "rcu(Mops/s)", "locked(Mops/s)", "ratio");
  for (std::size_t readers : {1u, 2u}) {
    double rcu_mops = RunRcu(readers);
    double locked_mops = RunLocked(readers);
    std::printf("%-9zu %16.1f %16.1f %7.1fx\n", readers, rcu_mops, locked_mops,
                rcu_mops / locked_mops);
  }
  return 0;
}
