// Figure 3 — Memory allocation microbenchmark (paper §4.1.2).
//
// "Each core in parallel repeatedly measures the time to allocate and free an 8 B object ten
// times. We report the mean latency of one million measurements per-core."
//   Paper result: EbbRT scales linearly to 24 cores; glibc degrades (3.8x at 24 cores);
//   jemalloc scales but is 42% slower than EbbRT.
//
// Comparators here: the EbbRT general-purpose allocator (per-core slab caches, no atomics),
// the host glibc malloc, and a jemalloc-style thread-cache allocator (per-thread magazine
// refilled from a mutex-protected central pool) we implement below — jemalloc itself is not
// installed in this environment (substitution documented in DESIGN.md).
//
// NOTE: this host exposes 2 CPUs; thread counts above that are time-multiplexed, so absolute
// scaling beyond 2 "cores" reflects oversubscription, not parallel hardware. The per-op cost
// ordering (who is fastest, who degrades under cross-core pressure) is the reproducible shape.
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "src/mem/gp_allocator.h"
#include "src/platform/clock.h"

namespace ebbrt {
namespace {

constexpr std::size_t kObjectSize = 8;
constexpr int kOpsPerMeasure = 10;
constexpr int kMeasurements = 100000;  // per core (paper: 1M; scaled for the 2-vCPU host)

// jemalloc-style comparator: per-thread magazine + central pool behind a mutex. The fast path
// is lock-free but pays the periodic refill/flush synchronization EbbRT's design avoids.
class ThreadCacheAllocator {
 public:
  void* Alloc() {
    auto& cache = GetCache();
    if (cache.items.empty()) {
      Refill(cache);
    }
    void* p = cache.items.back();
    cache.items.pop_back();
    return p;
  }

  void Free(void* p) {
    auto& cache = GetCache();
    cache.items.push_back(p);
    if (cache.items.size() > kMagazine * 2) {
      Flush(cache);
    }
  }

 private:
  static constexpr std::size_t kMagazine = 64;
  struct Cache {
    std::vector<void*> items;
  };

  Cache& GetCache() {
    thread_local Cache cache;
    return cache;
  }

  void Refill(Cache& cache) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < kMagazine; ++i) {
      if (central_.empty()) {
        cache.items.push_back(::operator new(kObjectSize < 16 ? 16 : kObjectSize));
      } else {
        cache.items.push_back(central_.back());
        central_.pop_back();
      }
    }
  }

  void Flush(Cache& cache) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < kMagazine; ++i) {
      central_.push_back(cache.items.back());
      cache.items.pop_back();
    }
  }

  std::mutex mu_;
  std::vector<void*> central_;
};

// Runs the paper's measurement loop on `cores` threads with `alloc`/`free` callables;
// returns mean cycles per measurement (10 alloc/free pairs).
// `setup` runs on the measurement thread and returns a guard kept alive for its duration
// (the EbbRT case installs the per-core execution context).
template <typename AllocFn, typename FreeFn, typename Setup>
double RunMeasurement(std::size_t cores, Setup&& setup, AllocFn&& alloc, FreeFn&& dealloc) {
  std::vector<std::thread> threads;
  std::vector<double> means(cores);
  for (std::size_t core = 0; core < cores; ++core) {
    threads.emplace_back([&, core] {
      auto guard = setup(core);
      (void)guard;
      void* slots[kOpsPerMeasure];
      std::uint64_t total = 0;
      for (int m = 0; m < kMeasurements; ++m) {
        std::uint64_t start = ReadCycles();
        for (int i = 0; i < kOpsPerMeasure; ++i) {
          slots[i] = alloc();
        }
        for (int i = 0; i < kOpsPerMeasure; ++i) {
          dealloc(slots[i]);
        }
        total += ReadCycles() - start;
      }
      means[core] = static_cast<double>(total) / kMeasurements;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  double sum = 0;
  for (double m : means) {
    sum += m;
  }
  return sum / static_cast<double>(cores);
}

}  // namespace
}  // namespace ebbrt

int main() {
  using namespace ebbrt;
  std::printf("# Figure 3 reproduction: per-core 8B alloc+free x10, mean cycles per"
              " measurement\n");
  std::printf("# paper shape: EbbRT lowest & flat; jemalloc-style flat but slower; glibc"
              " degrades\n");
  std::printf("# host has %u hardware threads; counts beyond that are oversubscribed\n",
              std::thread::hardware_concurrency());
  std::printf("%-6s %12s %12s %12s\n", "cores", "ebbrt", "glibc", "jemalloc-like");

  const std::size_t kCoreCounts[] = {1, 2, 4, 8, 12, 24};
  for (std::size_t cores : kCoreCounts) {
    // Fresh EbbRT machine per count so slab state is comparable run to run.
    Runtime runtime(RuntimeKind::kNative, "alloc-bench");
    runtime.AddCores(cores);
    mem::Config config;
    config.arena_bytes = 512ull << 20;
    mem::Install(runtime, cores, config);
    double ebbrt_cycles = RunMeasurement(
        cores,
        [&](std::size_t core) {
          return std::make_unique<ScopedContext>(runtime, runtime.global_core(core), core,
                                                 false);
        },
        [] { return mem::Alloc(kObjectSize); }, [](void* p) { mem::Free(p); });

    auto no_setup = [](std::size_t) { return std::unique_ptr<ScopedContext>(); };
    double glibc_cycles = RunMeasurement(
        cores, no_setup, [] { return std::malloc(kObjectSize); },
        [](void* p) { std::free(p); });

    ThreadCacheAllocator jemalloc_like;
    double jemalloc_cycles = RunMeasurement(
        cores, no_setup, [&] { return jemalloc_like.Alloc(); },
        [&](void* p) { jemalloc_like.Free(p); });

    std::printf("%-6zu %12.0f %12.0f %12.0f\n", cores, ebbrt_cycles, glibc_cycles,
                jemalloc_cycles);
  }
  return 0;
}
