// Shared harness for the memcached latency-vs-throughput figures (5 and 6).
//
// Server variants reproduce the paper's four lines: EbbRT (in a KVM guest), Linux in a KVM
// guest, Linux native (no hypervisor costs), and OSv (library OS with the Linux-ABI socket
// layer and a single-queue virtio driver). The client machine plays mutilate: ETC workload,
// up to 4 pipelined requests per connection, open-loop target QPS.
#ifndef EBBRT_BENCH_MEMCACHED_COMMON_H_
#define EBBRT_BENCH_MEMCACHED_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/loadgen/memcached_loadgen.h"
#include "src/apps/memcached/server.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace bench {

enum class ServerVariant { kEbbRT, kLinuxVm, kLinuxNative, kOsv };

inline const char* VariantName(ServerVariant variant) {
  switch (variant) {
    case ServerVariant::kEbbRT:
      return "EbbRT";
    case ServerVariant::kLinuxVm:
      return "Linux";
    case ServerVariant::kLinuxNative:
      return "LinuxNative";
    case ServerVariant::kOsv:
      return "OSv";
  }
  return "?";
}

struct Point {
  double target_qps;
  double achieved_qps;
  double mean_us;
  double p99_us;
};

inline Point RunPoint(ServerVariant variant, std::size_t server_cores, double target_qps) {
  sim::Testbed bed;
  sim::HypervisorModel hv;
  switch (variant) {
    case ServerVariant::kEbbRT:
    case ServerVariant::kLinuxVm:
      hv = sim::HypervisorModel::Kvm();
      break;
    case ServerVariant::kLinuxNative:
      hv = sim::HypervisorModel::Native();
      break;
    case ServerVariant::kOsv:
      hv = sim::HypervisorModel::KvmSingleQueue();
      break;
  }
  sim::TestbedNode server =
      bed.AddNode("server", server_cores, Ipv4Addr::Of(10, 0, 0, 2), hv);
  // The client is the paper's dedicated load machine: unvirtualized, enough cores to not be
  // the bottleneck.
  sim::TestbedNode client = bed.AddNode("client", 4, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());

  server.Spawn(0, [&] {
    switch (variant) {
      case ServerVariant::kEbbRT:
        new memcached::MemcachedServer(*server.net, 11211);
        break;
      case ServerVariant::kLinuxVm:
      case ServerVariant::kLinuxNative: {
        auto* stack = new baseline::SocketStack(bed.world(), *server.net,
                                                baseline::SocketStack::LinuxModel());
        new memcached::BaselineMemcachedServer(*stack, 11211);
        break;
      }
      case ServerVariant::kOsv: {
        auto* stack = new baseline::SocketStack(bed.world(), *server.net,
                                                baseline::SocketStack::OsvModel());
        new memcached::BaselineMemcachedServer(*stack, 11211);
        break;
      }
    }
  });

  loadgen::MemcachedLoadgen::Config config;
  config.connections = 16;
  config.pipeline = 4;
  config.key_space = 2000;
  config.target_qps = target_qps;
  config.warmup_ns = 10'000'000;
  config.duration_ns = 100'000'000;  // 100 ms measured window per point
  loadgen::MemcachedLoadgen gen(bed, client, Ipv4Addr::Of(10, 0, 0, 2), 11211, config);

  loadgen::MemcachedLoadgen::Result result;
  bool have_result = false;
  gen.Run().Then([&](Future<loadgen::MemcachedLoadgen::Result> f) {
    result = f.Get();
    have_result = true;
  });
  // Baseline variants tick forever; bound the run.
  std::uint64_t horizon = 2ull * 1000 * 1000 * 1000;
  while (!have_result && bed.world().Now() < horizon) {
    if (bed.world().RunUntil(bed.world().Now() + 50'000'000)) {
      break;  // quiescent
    }
  }
  Point point;
  point.target_qps = target_qps;
  point.achieved_qps = result.achieved_qps;
  point.mean_us = result.mean_ns / 1000.0;
  point.p99_us = result.p99_ns / 1000.0;
  return point;
}

// --- TX-batching depth sweep (BENCH_tx_batching.json) -----------------------------------------
//
// The segments-per-op story: a pipelined burst client issues the same GET schedule at
// different depths against the EbbRT server; event-scoped corking turns a depth-N burst's N
// response segments into ceil(bytes/MSS). Reported per depth from the server's own
// NetworkManager stats.

inline DepthPoint RunDepthPoint(std::size_t server_cores, std::size_t depth,
                                std::size_t total_requests) {
  sim::Testbed bed;
  sim::TestbedNode server =
      bed.AddNode("server", server_cores, Ipv4Addr::Of(10, 0, 0, 2));
  // The client mirrors the server's core count: the burst client opens one connection per
  // core, and symmetric RSS steers each flow to the matching server core — the 4-core sweep
  // genuinely exercises all 4 server cores (a single flow would collapse onto one).
  sim::TestbedNode client = bed.AddNode("client", server_cores, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());
  server.Spawn(0, [&] { new memcached::MemcachedServer(*server.net, 11211); });
  loadgen::MemcachedBurstClient::Config config;
  config.depth = depth;
  config.total_requests = total_requests;
  config.key_space = 64;
  config.value_size = 100;
  config.connections = server_cores;
  // Steady state begins when the preload completes: snapshot the allocation counters there,
  // so the committed allocs-per-op excludes one-time pool/slab warmup carving.
  NetworkManager::Stats& stats = server.net->stats();
  config.on_steady = [&stats] { stats.MarkAllocBaseline(); };
  std::size_t responses = 0;
  bool done = false;
  loadgen::MemcachedBurstClient::Run(client, Ipv4Addr::Of(10, 0, 0, 2), 11211, config)
      .Then([&](Future<loadgen::MemcachedBurstClient::Result> f) {
        responses = f.Get().responses;
        done = true;
      });
  bed.world().Run();
  return FillDepthPoint(server.net->stats(), depth, done ? responses : 0,
                        bed.world().Now());
}

// Runs the sweep, prints it, and contributes a section to BENCH_tx_batching.json and
// BENCH_alloc_pool.json.
inline void EmitTxBatchingSweep(const char* section, std::size_t server_cores,
                                const std::vector<std::size_t>& depths,
                                std::size_t total_requests) {
  EmitDepthSweep(section, depths, [server_cores, total_requests](std::size_t depth) {
    return RunDepthPoint(server_cores, depth, total_requests);
  });
}

inline void RunFigure(const char* figure, std::size_t server_cores) {
  std::printf("# %s reproduction: memcached latency vs throughput, %zu server core(s)\n",
              figure, server_cores);
  std::printf("# ETC workload, 16 connections, <=4 pipelined requests/connection\n");
  std::printf("# paper shape: at a 500us 99%% SLA EbbRT sustains ~58%% more RPS than Linux"
              " in a VM,\n");
  std::printf("#              comparable to Linux native; OSv is not competitive\n");
  std::printf("%-12s %12s %12s %10s %10s\n", "variant", "target_qps", "achieved",
              "mean_us", "p99_us");
  const double kLoads[] = {25000, 50000, 100000, 150000, 200000, 250000, 300000};
  for (ServerVariant variant : {ServerVariant::kEbbRT, ServerVariant::kLinuxVm,
                                ServerVariant::kLinuxNative, ServerVariant::kOsv}) {
    for (double qps : kLoads) {
      Point p = RunPoint(variant, server_cores, qps);
      std::printf("%-12s %12.0f %12.0f %10.1f %10.1f\n", VariantName(variant), p.target_qps,
                  p.achieved_qps, p.mean_us, p.p99_us);
    }
  }
}

}  // namespace bench
}  // namespace ebbrt

#endif  // EBBRT_BENCH_MEMCACHED_COMMON_H_
