// Figure 10 (extension) — failover under shard death: error rate, tail latency, and
// throughput recovery when one of four replicated shards is killed mid-sweep and later
// revived.
//
// Topology: a hosted frontend serving GlobalIdMap (including the versioned ring record),
// four single-core shard machines, and one native client driving a closed loop of depth-32
// GET rounds over a preloaded key space through a replicated ShardRouter (R=2,
// read-one-failover, write-all preload).
//
// Timeline (virtual): preload (write-all) -> warmup -> PRE-KILL measured rounds ->
// SimWorld::KillMachine(shard0) -> FAULT rounds (reads whose primary was shard0 time out
// once, mark it suspect, fail over to the replica; later rounds route around it) ->
// ReviveMachine at +2.5ms (TCP retransmission heals the connection at the 5ms RTO) ->
// publish ring epoch 2 at +7ms (operator re-admission; clears suspicion via the RCU ring
// swap) -> RECOVERY rounds.
//
// What the gates assert:
//   * the error window is bounded: every key has a live replica, so reads NEVER fail —
//     the fault phase's error rate stays ~0 (the deadline + failover machinery is why).
//   * throughput recovers: recovery-phase ops/s >= 0.8x pre-kill ops/s.
//   * the failover machinery actually ran: failovers, suspect marks, and a ring swap all
//     observed; fault-phase p99 shows the one-deadline spike.
//   * the steady-state datapath stayed clean: pre-kill allocs/op < 0.05 and zero Messenger
//     control locks (deadline bookkeeping must not put mallocs or mutexes on the hot path).
//
// Emits the "failover" (or "failover_smoke") section of BENCH_failover.json.
//
// Modes:
//   (none)    full run (longer phases)
//   --smoke   shorter phases; exits nonzero when any failover gate fails
#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/memcached/shard.h"
#include "src/obs/histogram.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace bench {
namespace {

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr std::size_t kNumShards = 4;
constexpr std::size_t kDepth = 32;
constexpr std::size_t kKeySpace = 256;
constexpr std::size_t kValueBytes = 64;
// Modeled per-request backend service time (see fig9).
constexpr std::uint64_t kServiceNs = 3000;
// Per-read deadline: generous against a healthy round trip (~tens of us at depth 32) but
// small against the fault window, so a dead primary costs one deadline, not the outage.
constexpr std::uint64_t kReadDeadlineNs = 400'000;
// Ring watcher period and the outage length.
constexpr std::uint64_t kRingRefreshNs = 300'000;
constexpr std::uint64_t kFaultWindowNs = 2'500'000;
// Re-admission point (from the kill): epoch 2 is published only after the client's TCP
// retransmission (5ms base RTO > the 2.5ms outage) has healed the shard0 connection.
// Publishing at the revive instant would clear the suspect mark while the connection is
// still unhealed — the next read would time out and re-suspect shard0 with no later epoch
// to clear it, pinning the cluster at 3 effective shards.
constexpr std::uint64_t kReadmitNs = 7'000'000;

std::string BenchKey(std::size_t index) { return "user:" + std::to_string(index); }

struct PhaseStats {
  std::uint64_t ops = 0;
  std::uint64_t errors = 0;
  std::uint64_t virtual_ns = 0;
  double ops_per_sec = 0;
  double error_rate = 0;
  // Per-phase latency distribution (obs::Histogram): constant space, no sort, and the
  // shared p50/p99/p999 JSON columns via HistogramColumnsJson.
  obs::Histogram::Snapshot latency;
};

struct FailoverPoint {
  bool done = false;
  PhaseStats pre_kill;
  PhaseStats fault;
  PhaseStats recovery;
  std::uint64_t t_kill_ns = 0;
  std::uint64_t t_revive_ns = 0;
  // Time from the kill until the first post-revive round that reached 0.8x pre-kill
  // throughput (0 when it never did — the recovery_ratio gate catches that).
  std::uint64_t recovery_ns = 0;
  double recovery_ratio = 0;
  std::uint64_t failovers = 0;
  std::uint64_t suspects_marked = 0;
  std::uint64_t ring_swaps = 0;
  std::uint64_t write_skips = 0;
  double pre_kill_allocs_per_op = 0;
  std::uint64_t pre_kill_control_locks = 0;
};

void FinishPhase(PhaseStats* phase, obs::Histogram& lat) {
  phase->latency = lat.TakeSnapshot();
  if (phase->virtual_ns != 0) {
    phase->ops_per_sec = static_cast<double>(phase->ops) * 1e9 /
                         static_cast<double>(phase->virtual_ns);
  }
  if (phase->ops + phase->errors != 0) {
    phase->error_rate = static_cast<double>(phase->errors) /
                        static_cast<double>(phase->ops + phase->errors);
  }
}

FailoverPoint RunFailover(std::size_t pre_kill_rounds, std::size_t recovery_rounds) {
  sim::Testbed bed;
  sim::TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                          sim::HypervisorModel::Native(),
                                          RuntimeKind::kHosted);
  std::vector<sim::TestbedNode> shard_nodes;
  for (std::size_t i = 0; i < kNumShards; ++i) {
    shard_nodes.push_back(bed.AddNode("shard" + std::to_string(i), 1,
                                      Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
  }
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp,
                                        sim::HypervisorModel::Native());

  frontend.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend.runtime); });
  for (std::size_t i = 0; i < kNumShards; ++i) {
    sim::TestbedNode node = shard_nodes[i];
    node.Spawn(0, [&bed, node, i] {
      memcached::ShardService::Config config;
      config.on_request = [&bed] { bed.world().Charge(kServiceNs); };
      node.runtime->Adopt(
          std::make_shared<memcached::ShardService>(*node.runtime, i, config));
      memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
          .Then([](Future<void> f) { f.Get(); });
    });
  }

  enum class Phase { kWarmup, kPreKill, kFault, kRecovery };
  struct State {
    std::unique_ptr<memcached::ShardRouter> router;
    Phase phase = Phase::kWarmup;
    std::size_t rounds_left = 0;
    std::size_t issued = 0;
    std::size_t preloaded = 0;
    std::uint64_t phase_start = 0;
    std::uint64_t t_kill = 0;
    std::uint64_t t_revive = 0;
    bool revived = false;
    bool readmitted = false;
    std::uint64_t recovered_at = 0;   // end time of the first fast-enough recovery round
    double pre_kill_round_ops = 0;    // per-round ops/s baseline for the recovery probe
    std::uint64_t lock_mark = 0;
    std::uint64_t lock_end = 0;
    PhaseStats pre_kill, fault, recovery;
    obs::Histogram lat_pre, lat_fault, lat_recovery;
    bool done = false;
    std::function<void()> preload_round;
    std::function<void()> round;
  };
  auto state = std::make_shared<State>();
  state->rounds_left = 2;  // warmup rounds

  auto control_locks = [&client] {
    return dist::Messenger::For(*client.runtime).stats().control_locks.load();
  };

  std::weak_ptr<State> weak_state = state;
  client.Spawn(0, [&, state] {
    memcached::DiscoverShards(*client.runtime, kFrontendIp, kNumShards)
        .Then([&, state](Future<std::vector<memcached::ShardEndpoint>> f) {
          memcached::RingRecord ring;
          ring.epoch = 1;
          ring.shards = f.Get();
          // Seed the authoritative record so the watcher's polls find epoch 1 (quiet
          // no-ops) until the revive publishes epoch 2.
          memcached::PublishRing(*client.runtime, kFrontendIp, ring)
              .Then([](Future<void> pf) { pf.Get(); });
          memcached::ShardRouter::Config config;
          config.replication = 2;
          config.read_options = dist::CallOptions{
              kReadDeadlineNs, dist::RetryPolicy{/*max_attempts=*/1}};
          config.ring_refresh_ns = kRingRefreshNs;
          config.frontend = kFrontendIp;
          state->router = std::make_unique<memcached::ShardRouter>(
              *client.runtime, std::move(ring), config);

          state->preload_round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::size_t batch = std::min<std::size_t>(32, kKeySpace - state->preloaded);
            std::vector<Future<void>> round;
            round.reserve(batch);
            for (std::size_t i = 0; i < batch; ++i) {
              // Write-all preload: every key lands on BOTH its replicas, so the GET sweep
              // reads consistent data no matter which replica serves it.
              round.push_back(state->router->Set(BenchKey(state->preloaded + i),
                                                 std::string(kValueBytes, 'v')));
            }
            state->preloaded += batch;
            WhenAll(std::move(round)).Then([&, state](Future<void> wf) {
              wf.Get();
              if (state->preloaded < kKeySpace) {
                state->preload_round();
              } else {
                state->phase_start = bed.world().Now();
                state->round();
              }
            });
          };

          state->round = [&, weak_state] {
            auto state = weak_state.lock();
            if (state == nullptr) {
              return;
            }
            std::uint64_t round_start = bed.world().Now();
            Phase phase = state->phase;
            auto ops = std::make_shared<std::uint64_t>(0);
            auto errors = std::make_shared<std::uint64_t>(0);
            std::vector<Future<void>> round;
            round.reserve(kDepth);
            for (std::size_t i = 0; i < kDepth; ++i) {
              std::uint64_t t0 = bed.world().Now();
              round.push_back(
                  state->router->Get(BenchKey((state->issued + i) % kKeySpace))
                      .Then([&, state, phase, t0, ops,
                             errors](Future<memcached::ShardRouter::GetResult> gf) {
                        std::uint64_t lat = bed.world().Now() - t0;
                        try {
                          gf.Get();
                          ++*ops;
                          switch (phase) {
                            case Phase::kPreKill: state->lat_pre.Record(lat); break;
                            case Phase::kFault: state->lat_fault.Record(lat); break;
                            case Phase::kRecovery: state->lat_recovery.Record(lat); break;
                            case Phase::kWarmup: break;
                          }
                        } catch (const std::exception&) {
                          // Every replica failed for this key: a real availability error.
                          // Counted, never fatal — the gate bounds the rate.
                          ++*errors;
                        }
                      }));
            }
            state->issued += kDepth;
            WhenAll(std::move(round)).Then([&, state, round_start, ops,
                                            errors](Future<void> wf) {
              wf.Get();
              std::uint64_t now = bed.world().Now();
              PhaseStats* phase_stats = nullptr;
              switch (state->phase) {
                case Phase::kWarmup: break;
                case Phase::kPreKill: phase_stats = &state->pre_kill; break;
                case Phase::kFault: phase_stats = &state->fault; break;
                case Phase::kRecovery: phase_stats = &state->recovery; break;
              }
              if (phase_stats != nullptr) {
                phase_stats->ops += *ops;
                phase_stats->errors += *errors;
              }
              // Recovery probe: the first post-revive round back at 0.8x pre-kill
              // per-round throughput timestamps the recovery.
              if (state->phase == Phase::kRecovery && state->recovered_at == 0 &&
                  now > round_start) {
                double round_ops = static_cast<double>(*ops) * 1e9 /
                                   static_cast<double>(now - round_start);
                if (round_ops >= 0.8 * state->pre_kill_round_ops) {
                  state->recovered_at = now;
                }
              }

              switch (state->phase) {
                case Phase::kWarmup:
                  if (--state->rounds_left == 0) {
                    state->phase = Phase::kPreKill;
                    state->rounds_left = pre_kill_rounds;
                    client.net->stats().MarkAllocBaseline();
                    state->lock_mark = control_locks();
                    state->phase_start = now;
                  }
                  break;
                case Phase::kPreKill:
                  if (--state->rounds_left == 0) {
                    state->pre_kill.virtual_ns = now - state->phase_start;
                    state->pre_kill_round_ops =
                        state->pre_kill.virtual_ns != 0
                            ? static_cast<double>(state->pre_kill.ops) * 1e9 /
                                  static_cast<double>(state->pre_kill.virtual_ns)
                            : 0;
                    state->lock_end = control_locks();
                    // Kill the first shard at a round boundary. Pause semantics: its
                    // state survives for the revive; in-flight frames to it die at the
                    // fabric.
                    bed.world().KillMachine(*shard_nodes[0].runtime);
                    state->t_kill = now;
                    state->phase = Phase::kFault;
                    state->phase_start = now;
                  }
                  break;
                case Phase::kFault:
                  if (!state->revived && now >= state->t_kill + kFaultWindowNs) {
                    state->revived = true;
                    // Pause semantics: shard0 resumes with its store and TCP state
                    // intact; the client's pending retransmissions heal the connection
                    // at the 5ms RTO.
                    bed.world().ReviveMachine(*shard_nodes[0].runtime);
                    state->t_revive = now;
                  }
                  if (state->revived && !state->readmitted &&
                      now >= state->t_kill + kReadmitNs) {
                    state->readmitted = true;
                    state->fault.virtual_ns = now - state->phase_start;
                    // Epoch 2: same membership, published by the operator as the "shard0
                    // is healthy again" signal once the node is reachable. Adoption
                    // clears every suspect mark via the RCU ring swap; refresh
                    // immediately instead of waiting out the watcher.
                    memcached::RingRecord ring2;
                    ring2.epoch = 2;
                    for (std::size_t i = 0; i < kNumShards; ++i) {
                      ring2.shards.push_back(
                          {shard_nodes[i].iface->addr(),
                           memcached::kShardServiceBase + static_cast<EbbId>(i)});
                    }
                    memcached::PublishRing(*client.runtime, kFrontendIp, ring2)
                        .Then([state](Future<void> pf) {
                          pf.Get();
                          state->router->RefreshRing();
                        });
                    state->phase = Phase::kRecovery;
                    state->rounds_left = recovery_rounds;
                    state->phase_start = now;
                  }
                  break;
                case Phase::kRecovery:
                  if (--state->rounds_left == 0) {
                    state->recovery.virtual_ns = now - state->phase_start;
                    state->router->StopRingWatcher();  // let the world drain
                    state->done = true;
                    return;
                  }
                  break;
              }
              state->round();
            });
          };

          state->preload_round();
        });
  });

  bed.world().Run();

  FailoverPoint point;
  if (!state->done) {
    return point;  // done == false: visible failure in the gates
  }
  point.done = true;
  point.pre_kill = state->pre_kill;
  point.fault = state->fault;
  point.recovery = state->recovery;
  FinishPhase(&point.pre_kill, state->lat_pre);
  FinishPhase(&point.fault, state->lat_fault);
  FinishPhase(&point.recovery, state->lat_recovery);
  point.t_kill_ns = state->t_kill;
  point.t_revive_ns = state->t_revive;
  if (state->recovered_at != 0) {
    point.recovery_ns = state->recovered_at - state->t_kill;
  }
  if (point.pre_kill.ops_per_sec > 0) {
    point.recovery_ratio = point.recovery.ops_per_sec / point.pre_kill.ops_per_sec;
  }
  const memcached::ShardRouter::Stats& rstats = state->router->stats();
  point.failovers = rstats.failovers;
  point.suspects_marked = rstats.suspects_marked;
  point.ring_swaps = rstats.ring_swaps;
  point.write_skips = rstats.write_skips;
  point.pre_kill_allocs_per_op =
      client.net->stats().allocs_per_op(point.pre_kill.ops);
  point.pre_kill_control_locks = state->lock_end - state->lock_mark;
  return point;
}

std::string PhaseJson(const char* name, const PhaseStats& p) {
  char buf[300];
  std::snprintf(buf, sizeof(buf),
                "{\"phase\": \"%s\", \"ops\": %llu, \"errors\": %llu, "
                "\"error_rate\": %.4f, \"ops_per_sec\": %.0f, ",
                name, static_cast<unsigned long long>(p.ops),
                static_cast<unsigned long long>(p.errors), p.error_rate, p.ops_per_sec);
  std::string out = buf;
  out += HistogramColumnsJson(p.latency);
  std::snprintf(buf, sizeof(buf), ", \"virtual_ns\": %llu}",
                static_cast<unsigned long long>(p.virtual_ns));
  out += buf;
  return out;
}

std::string FailoverJson(const FailoverPoint& p) {
  char buf[500];
  std::string out = "[{\"phases\": [";
  out += PhaseJson("pre_kill", p.pre_kill) + ", ";
  out += PhaseJson("fault", p.fault) + ", ";
  out += PhaseJson("recovery", p.recovery);
  std::snprintf(buf, sizeof(buf),
                "], \"t_kill_ns\": %llu, \"t_revive_ns\": %llu, \"recovery_ns\": %llu, "
                "\"recovery_ratio\": %.4f, \"failovers\": %llu, "
                "\"suspects_marked\": %llu, \"ring_swaps\": %llu, \"write_skips\": %llu, "
                "\"pre_kill_allocs_per_op\": %.4f, \"pre_kill_control_locks\": %llu}]",
                static_cast<unsigned long long>(p.t_kill_ns),
                static_cast<unsigned long long>(p.t_revive_ns),
                static_cast<unsigned long long>(p.recovery_ns), p.recovery_ratio,
                static_cast<unsigned long long>(p.failovers),
                static_cast<unsigned long long>(p.suspects_marked),
                static_cast<unsigned long long>(p.ring_swaps),
                static_cast<unsigned long long>(p.write_skips),
                p.pre_kill_allocs_per_op,
                static_cast<unsigned long long>(p.pre_kill_control_locks));
  out += buf;
  return out;
}

int GateFailover(const FailoverPoint& p) {
  int failures = 0;
  if (!p.done) {
    std::fprintf(stderr, "FAIL: failover schedule did not complete\n");
    return 1;
  }
  if (p.fault.error_rate > 0.02) {
    std::fprintf(stderr, "FAIL: fault-phase error rate %.4f > 0.02 (failover is leaking "
                 "availability)\n", p.fault.error_rate);
    failures++;
  }
  if (p.recovery.error_rate > 0.02) {
    std::fprintf(stderr, "FAIL: recovery-phase error rate %.4f > 0.02\n",
                 p.recovery.error_rate);
    failures++;
  }
  if (p.recovery_ratio < 0.8) {
    std::fprintf(stderr, "FAIL: recovery ops/s only %.2fx pre-kill (< 0.8x)\n",
                 p.recovery_ratio);
    failures++;
  }
  if (p.failovers < 1 || p.suspects_marked < 1) {
    std::fprintf(stderr, "FAIL: failover machinery never engaged (failovers=%llu "
                 "suspects=%llu)\n", static_cast<unsigned long long>(p.failovers),
                 static_cast<unsigned long long>(p.suspects_marked));
    failures++;
  }
  if (p.ring_swaps < 1) {
    std::fprintf(stderr, "FAIL: ring epoch 2 never adopted\n");
    failures++;
  }
  if (p.pre_kill_allocs_per_op > 0.05) {
    std::fprintf(stderr, "FAIL: deadline bookkeeping mallocs on the steady path "
                 "(allocs_per_op %.4f > 0.05)\n", p.pre_kill_allocs_per_op);
    failures++;
  }
  if (p.pre_kill_control_locks != 0) {
    std::fprintf(stderr, "FAIL: %llu Messenger control locks on the pre-kill path\n",
                 static_cast<unsigned long long>(p.pre_kill_control_locks));
    failures++;
  }
  return failures == 0 ? 0 : 1;
}

void PrintPoint(const FailoverPoint& p) {
  std::printf("%-10s %10llu %8llu %12.4f %14.0f %10llu %10llu %10llu\n", "pre_kill",
              static_cast<unsigned long long>(p.pre_kill.ops),
              static_cast<unsigned long long>(p.pre_kill.errors), p.pre_kill.error_rate,
              p.pre_kill.ops_per_sec,
              static_cast<unsigned long long>(p.pre_kill.latency.P50()),
              static_cast<unsigned long long>(p.pre_kill.latency.P99()),
              static_cast<unsigned long long>(p.pre_kill.latency.P999()));
  std::printf("%-10s %10llu %8llu %12.4f %14.0f %10llu %10llu %10llu\n", "fault",
              static_cast<unsigned long long>(p.fault.ops),
              static_cast<unsigned long long>(p.fault.errors), p.fault.error_rate,
              p.fault.ops_per_sec, static_cast<unsigned long long>(p.fault.latency.P50()),
              static_cast<unsigned long long>(p.fault.latency.P99()),
              static_cast<unsigned long long>(p.fault.latency.P999()));
  std::printf("%-10s %10llu %8llu %12.4f %14.0f %10llu %10llu %10llu\n", "recovery",
              static_cast<unsigned long long>(p.recovery.ops),
              static_cast<unsigned long long>(p.recovery.errors), p.recovery.error_rate,
              p.recovery.ops_per_sec,
              static_cast<unsigned long long>(p.recovery.latency.P50()),
              static_cast<unsigned long long>(p.recovery.latency.P99()),
              static_cast<unsigned long long>(p.recovery.latency.P999()));
  std::printf("# recovery_ratio=%.2f recovery_ns=%llu failovers=%llu suspects=%llu "
              "ring_swaps=%llu write_skips=%llu allocs_per_op=%.4f control_locks=%llu\n",
              p.recovery_ratio, static_cast<unsigned long long>(p.recovery_ns),
              static_cast<unsigned long long>(p.failovers),
              static_cast<unsigned long long>(p.suspects_marked),
              static_cast<unsigned long long>(p.ring_swaps),
              static_cast<unsigned long long>(p.write_skips), p.pre_kill_allocs_per_op,
              static_cast<unsigned long long>(p.pre_kill_control_locks));
}

}  // namespace
}  // namespace bench
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("# failover sweep: kill 1 of %zu shards (R=2) mid-run, revive after %.1fms\n",
              kNumShards, kFaultWindowNs / 1e6);
  std::printf("%-10s %10s %8s %12s %14s %10s %10s %10s\n", "phase", "ops", "errors",
              "error_rate", "ops_per_sec", "p50_ns", "p99_ns", "p999_ns");
  FailoverPoint p = smoke ? RunFailover(/*pre_kill_rounds=*/20, /*recovery_rounds=*/20)
                          : RunFailover(/*pre_kill_rounds=*/60, /*recovery_rounds=*/60);
  PrintPoint(p);
  WriteJsonSection("BENCH_failover.json", smoke ? "failover_smoke" : "failover",
                   FailoverJson(p));
  std::printf("# wrote section \"%s\" to BENCH_failover.json\n",
              smoke ? "failover_smoke" : "failover");
  return GateFailover(p);
}
