// Figure 5 — Memcached single-core performance: mean and 99th-percentile latency as a
// function of offered throughput, for EbbRT/KVM, Linux/KVM, Linux native, and OSv.
#include "bench/memcached_common.h"

int main() {
  ebbrt::bench::RunFigure("Figure 5", /*server_cores=*/1);
  return 0;
}
