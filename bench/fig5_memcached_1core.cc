// Figure 5 — Memcached single-core performance: mean and 99th-percentile latency as a
// function of offered throughput, for EbbRT/KVM, Linux/KVM, Linux native, and OSv.
//
// Also emits the TX-batching depth sweep (pipeline {1, 8, 32}) as the "memcached_1core"
// section of BENCH_tx_batching.json — the segments-per-op evidence for event-scoped send
// aggregation.
//
// Modes:
//   (none)        full figure + depth sweep
//   --sweep-only  just the depth sweep (fast; used to regenerate BENCH_tx_batching.json and
//                 BENCH_alloc_pool.json)
//   --smoke       depth-8 points at two request counts (CI gate: fails if TX batching OR the
//                 zero-malloc alloc pool is silently disabled — pool hit rate 0, mallocs per
//                 op above threshold, or heap allocs scaling linearly with request count)
#include <cstring>

#include "bench/memcached_common.h"

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool sweep_only = argc > 1 && std::strcmp(argv[1], "--sweep-only") == 0;
  if (smoke) {
    // Two request counts: steady-state heap allocs must not grow with the schedule — the
    // "allocation cost per request collapses to ~0" claim, falsified if the counters scale.
    DepthPoint p = RunDepthPoint(/*server_cores=*/1, /*depth=*/8, /*total_requests=*/256);
    DepthPoint p2 = RunDepthPoint(/*server_cores=*/1, /*depth=*/8, /*total_requests=*/512);
    std::printf("smoke: pipeline=8 requests=%zu tx_data_segments=%llu sends_coalesced=%llu"
                " segments_per_op=%.3f allocs_per_op=%.4f pool_hit_rate=%.4f\n",
                p.requests, static_cast<unsigned long long>(p.tx_data_segments),
                static_cast<unsigned long long>(p.sends_coalesced), p.segments_per_op,
                p.allocs_per_op, p.pool_hit_rate);
    std::printf("smoke: requests=%zu heap_allocs=%llu (vs %llu at half the schedule)\n",
                p2.requests, static_cast<unsigned long long>(p2.heap_allocs),
                static_cast<unsigned long long>(p.heap_allocs));
    WriteJsonSection("BENCH_tx_batching.json", "memcached_1core_smoke",
                     DepthPointsJson({p}));
    WriteJsonSection("BENCH_alloc_pool.json", "memcached_1core_smoke",
                     AllocPointsJson({p, p2}));
    if (p.requests == 0 || p.sends_coalesced == 0) {
      std::fprintf(stderr, "FAIL: TX batching silently disabled (sends_coalesced == 0)\n");
      return 1;
    }
    if (p.pool_hit_rate == 0.0) {
      std::fprintf(stderr, "FAIL: buffer pool silently disabled (pool hit rate == 0)\n");
      return 1;
    }
    if (p.allocs_per_op > 0.05 || p2.allocs_per_op > 0.05) {
      std::fprintf(stderr, "FAIL: steady-state datapath mallocs (allocs_per_op %.4f/%.4f)\n",
                   p.allocs_per_op, p2.allocs_per_op);
      return 1;
    }
    // Linear-scaling check: doubling the schedule must not add per-request heap allocs.
    if (p2.heap_allocs > p.heap_allocs + (p2.requests - p.requests) / 20) {
      std::fprintf(stderr,
                   "FAIL: heap allocs scale with request count (%llu -> %llu)\n",
                   static_cast<unsigned long long>(p.heap_allocs),
                   static_cast<unsigned long long>(p2.heap_allocs));
      return 1;
    }
    return 0;
  }
  if (!sweep_only) {
    RunFigure("Figure 5", /*server_cores=*/1);
  }
  EmitTxBatchingSweep("memcached_1core", /*server_cores=*/1, {1, 8, 32},
                      /*total_requests=*/512);
  return 0;
}
