// Figure 5 — Memcached single-core performance: mean and 99th-percentile latency as a
// function of offered throughput, for EbbRT/KVM, Linux/KVM, Linux native, and OSv.
//
// Also emits the TX-batching depth sweep (pipeline {1, 8, 32}) as the "memcached_1core"
// section of BENCH_tx_batching.json — the segments-per-op evidence for event-scoped send
// aggregation.
//
// Modes:
//   (none)        full figure + depth sweep
//   --sweep-only  just the depth sweep (fast; used to regenerate BENCH_tx_batching.json)
//   --smoke       depth-8 single point (CI gate: fails if batching is silently disabled)
#include <cstring>

#include "bench/memcached_common.h"

int main(int argc, char** argv) {
  using namespace ebbrt::bench;
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool sweep_only = argc > 1 && std::strcmp(argv[1], "--sweep-only") == 0;
  if (smoke) {
    DepthPoint p = RunDepthPoint(/*server_cores=*/1, /*depth=*/8, /*total_requests=*/256);
    std::printf("smoke: pipeline=8 requests=%zu tx_data_segments=%llu sends_coalesced=%llu"
                " segments_per_op=%.3f\n",
                p.requests, static_cast<unsigned long long>(p.tx_data_segments),
                static_cast<unsigned long long>(p.sends_coalesced), p.segments_per_op);
    WriteJsonSection("BENCH_tx_batching.json", "memcached_1core_smoke",
                     DepthPointsJson({p}));
    if (p.requests == 0 || p.sends_coalesced == 0) {
      std::fprintf(stderr, "FAIL: TX batching silently disabled (sends_coalesced == 0)\n");
      return 1;
    }
    return 0;
  }
  if (!sweep_only) {
    RunFigure("Figure 5", /*server_cores=*/1);
  }
  EmitTxBatchingSweep("memcached_1core", /*server_cores=*/1, {1, 8, 32},
                      /*total_requests=*/512);
  return 0;
}
