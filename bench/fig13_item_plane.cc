// Figure 13 — the KV item plane under a GET/SET mix sweep: ns/op, per-op latency
// quantiles, and the generic-heap allocation rate the old gates never saw.
//
// The paper attributes its memcached win to per-core memory allocation, an RCU item table,
// and zero-copy item views (§4.2). This bench drives KvStore directly — no sockets, no
// simulated NIC — so the numbers isolate the item plane itself: hash/lookup, item-block
// carve, refcounted response pinning (MakeValueBuffer), RCU-deferred replacement.
//
// The headline column is heap_allocs_per_op, measured by the counting ::operator new hook
// (mem::stats().generic_heap_allocs — see src/mem/heap_count.cc): every mem::Stats counter
// before it only saw allocations the datapath routed through mem::, which is exactly how an
// item plane costing 3–4 hidden mallocs per SET shipped under gates that read 0.0. Here the
// counter is snapshotted around EVERY op and attributed to the op that paid it, so GET and
// SET each carry their own rate.
//
// Sweep: GET/SET mix {100/0, 90/10, 50/50} x value size {64, 1024, 8192}.
// Sections written to BENCH_item_plane.json:
//   item_plane           (default)   — the current implementation
//   item_plane_baseline  (--section) — recorded once against the pre-refactor item plane
//   item_plane_smoke     (--smoke)   — reduced op count, gated (CI)
//
// Modes:
//   (none)    full sweep -> section "item_plane"
//   --section <name>  full sweep -> named section
//   --smoke   reduced sweep -> section "item_plane_smoke"; exits nonzero when any point
//             allocates on the generic heap in steady state (get/set/overall
//             heap_allocs_per_op >= 0.05) or takes a dispatch-path control lock.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/memcached/kvstore.h"
#include "src/event/event_manager.h"
#include "src/event/thread_machine.h"
#include "src/mem/gp_allocator.h"
#include "src/obs/histogram.h"
#include "src/platform/clock.h"

namespace ebbrt {
namespace {

using bench::HistogramColumnsJson;
using bench::WriteJsonSection;

constexpr std::size_t kKeys = 2048;
constexpr std::size_t kBatchOps = 2048;  // ops per event: RCU reclamation drains between

struct MixPoint {
  int get_pct = 0;            // GET share of the mix (SET share = 100 - get_pct)
  std::size_t value_size = 0;
  std::uint64_t ops = 0;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  double ns_per_op = 0;
  obs::Histogram::Snapshot latency;
  double get_heap_allocs_per_op = 0;  // generic-heap allocs attributed to GET ops
  double set_heap_allocs_per_op = 0;  // ...and to SET ops
  double heap_allocs_per_op = 0;      // attributed total / ops
  std::uint64_t control_locks = 0;    // dispatch-path spinlock acquisitions, measured window
};

// Deterministic xorshift64* — the op/key schedule must be identical between the baseline
// and current sections or the ns/op comparison measures the schedule, not the item plane.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
};

MixPoint RunPoint(int get_pct, std::size_t value_size, std::uint64_t total_ops) {
  ThreadMachine machine(1);
  mem::Config config;
  config.arena_bytes = 256ull << 20;
  mem::Install(machine.runtime(), 1, config);
  machine.Start();

  memcached::KvStore store(RcuManagerRoot::For(machine.runtime()));
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys.push_back("item:" + std::to_string(100000 + i));
  }
  std::string value_backing(value_size, 'v');
  std::string_view value{value_backing};

  // Preload every key (inside an event: the slab path needs the machine context), then
  // warm up with the measured loop body so slabs, table nodes, and histograms are faulted
  // before the first sample.
  machine.RunSync(0, [&] {
    for (const std::string& key : keys) {
      store.Set(key, value, 0);
    }
  });

  obs::Histogram latency_hist;
  Rng rng;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t get_allocs = 0;
  std::uint64_t set_allocs = 0;
  std::uint64_t sink = 0;
  auto& heap_count = mem::stats().generic_heap_allocs;

  auto run_ops = [&](std::uint64_t count, bool measured) {
    for (std::uint64_t done = 0; done < count;) {
      std::uint64_t batch = std::min<std::uint64_t>(kBatchOps, count - done);
      machine.RunSync(0, [&] {
        std::uint64_t prev_ns = WallNowNs();
        for (std::uint64_t i = 0; i < batch; ++i) {
          std::uint64_t roll = rng.Next();
          const std::string& key = keys[roll % kKeys];
          bool is_get = static_cast<int>((roll >> 32) % 100) < get_pct;
          std::uint64_t allocs_before = heap_count.load(std::memory_order_relaxed);
          if (is_get) {
            auto item = store.Get(key);
            if (item != nullptr) {
              // The full response-pinning path: the value rides as a refcounted zero-copy
              // view whose IOBuf release drops the item reference.
              auto buf = memcached::MakeValueBuffer(std::move(item));
              sink += buf->Length();
            }
          } else {
            store.Set(key, value, 0);
          }
          std::uint64_t allocs =
              heap_count.load(std::memory_order_relaxed) - allocs_before;
          std::uint64_t now_ns = WallNowNs();
          if (measured) {
            latency_hist.Record(now_ns - prev_ns);
            if (is_get) {
              ++gets;
              get_allocs += allocs;
            } else {
              ++sets;
              set_allocs += allocs;
            }
          }
          prev_ns = now_ns;
        }
      });
      done += batch;
    }
  };

  run_ops(2 * kBatchOps, /*measured=*/false);  // warmup

  auto& em_root =
      machine.runtime().GetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  std::uint64_t locks_mark = em_root.RepFor(0).stats().control_locks;
  std::uint64_t t0 = WallNowNs();
  run_ops(total_ops, /*measured=*/true);
  std::uint64_t elapsed = WallNowNs() - t0;
  std::uint64_t locks_end = em_root.RepFor(0).stats().control_locks;

  MixPoint point;
  point.get_pct = get_pct;
  point.value_size = value_size;
  point.ops = gets + sets;
  point.gets = gets;
  point.sets = sets;
  point.ns_per_op = point.ops != 0 ? static_cast<double>(elapsed) / point.ops : 0.0;
  point.latency = latency_hist.TakeSnapshot();
  point.get_heap_allocs_per_op =
      gets != 0 ? static_cast<double>(get_allocs) / gets : 0.0;
  point.set_heap_allocs_per_op =
      sets != 0 ? static_cast<double>(set_allocs) / sets : 0.0;
  point.heap_allocs_per_op =
      point.ops != 0 ? static_cast<double>(get_allocs + set_allocs) / point.ops : 0.0;
  point.control_locks = locks_end - locks_mark;
  if (sink == 0 && get_pct > 0) {
    std::fprintf(stderr, "WARN: GET path never produced a value view\n");
  }
  machine.Shutdown();
  return point;
}

std::string PointsJson(const std::vector<MixPoint>& points) {
  std::string out = "[";
  char buf[512];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const MixPoint& p = points[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"mix_get_pct\": %d, \"value_size\": %zu, \"ops\": %llu, "
                  "\"gets\": %llu, \"sets\": %llu, \"ns_per_op\": %.1f, %s, "
                  "\"get_heap_allocs_per_op\": %.4f, \"set_heap_allocs_per_op\": %.4f, "
                  "\"heap_allocs_per_op\": %.4f, \"control_locks\": %llu}",
                  i == 0 ? "" : ", ", p.get_pct, p.value_size,
                  static_cast<unsigned long long>(p.ops),
                  static_cast<unsigned long long>(p.gets),
                  static_cast<unsigned long long>(p.sets), p.ns_per_op,
                  HistogramColumnsJson(p.latency).c_str(), p.get_heap_allocs_per_op,
                  p.set_heap_allocs_per_op, p.heap_allocs_per_op,
                  static_cast<unsigned long long>(p.control_locks));
    out += buf;
  }
  out += "]";
  return out;
}

int GatePoint(const MixPoint& p) {
  int failures = 0;
  if (p.ops == 0) {
    std::fprintf(stderr, "FAIL: point %d/%zu ran no ops\n", p.get_pct, p.value_size);
    return 1;
  }
  if (p.get_heap_allocs_per_op >= 0.05 || p.set_heap_allocs_per_op >= 0.05 ||
      p.heap_allocs_per_op >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: item plane mallocs at mix %d/%d value %zu "
                 "(get %.4f set %.4f overall %.4f allocs/op)\n",
                 p.get_pct, 100 - p.get_pct, p.value_size, p.get_heap_allocs_per_op,
                 p.set_heap_allocs_per_op, p.heap_allocs_per_op);
    failures++;
  }
  if (p.control_locks != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu dispatch-path control locks at mix %d/%d value %zu\n",
                 static_cast<unsigned long long>(p.control_locks), p.get_pct,
                 100 - p.get_pct, p.value_size);
    failures++;
  }
  return failures;
}

void PrintPoint(const MixPoint& p) {
  std::printf("%3d/%-3d %10zu %9llu %10.1f %8llu %8llu %8llu %10.4f %10.4f %10llu\n",
              p.get_pct, 100 - p.get_pct, p.value_size,
              static_cast<unsigned long long>(p.ops), p.ns_per_op,
              static_cast<unsigned long long>(p.latency.P50()),
              static_cast<unsigned long long>(p.latency.P99()),
              static_cast<unsigned long long>(p.latency.P999()),
              p.get_heap_allocs_per_op, p.set_heap_allocs_per_op,
              static_cast<unsigned long long>(p.control_locks));
}

int Run(const char* section, std::uint64_t ops_per_point, bool gate) {
  const int mixes[] = {100, 90, 50};
  const std::size_t value_sizes[] = {64, 1024, 8192};
  std::printf("# item-plane mix sweep (%s, %llu ops/point)\n", section,
              static_cast<unsigned long long>(ops_per_point));
  std::printf("%-7s %10s %9s %10s %8s %8s %8s %10s %10s %10s\n", "mix", "value_size",
              "ops", "ns_per_op", "p50_ns", "p99_ns", "p999_ns", "get_allocs",
              "set_allocs", "ctl_locks");
  std::vector<MixPoint> points;
  int failures = 0;
  for (int mix : mixes) {
    for (std::size_t vs : value_sizes) {
      MixPoint p = RunPoint(mix, vs, ops_per_point);
      PrintPoint(p);
      if (gate) {
        failures += GatePoint(p);
      }
      points.push_back(std::move(p));
    }
  }
  WriteJsonSection("BENCH_item_plane.json", section, PointsJson(points));
  std::printf("# wrote section \"%s\" to BENCH_item_plane.json\n", section);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace ebbrt

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    return ebbrt::Run("item_plane_smoke", 20000, /*gate=*/true);
  }
  const char* section = "item_plane";
  if (argc > 2 && std::strcmp(argv[1], "--section") == 0) {
    section = argv[2];
  }
  return ebbrt::Run(section, 200000, /*gate=*/false);
}
