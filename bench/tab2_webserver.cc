// Table 2 — Node.js webserver latency (paper §4.3): GET requests answered with a 148-byte
// static response under moderate load.
//
//   Paper: EbbRT mean 90.54us / 99th 123.00us; Linux mean 112.83us / 99th 199.00us
//   (Linux mean +24.6%, 99th +61.8%).
//
// The EbbRT server runs on the uv:: layer (the node.js port surface); the Linux server is the
// same logic over the baseline socket stack. Both inside the KVM model; wrk-style closed-loop
// client.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/apps/http/http_server.h"
#include "src/apps/loadgen/http_loadgen.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

struct Row {
  double mean_us;
  double p99_us;
  double rps;
};

Row RunVariant(bool ebbrt_server) {
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 1, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 2, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());
  server.Spawn(0, [&] {
    if (ebbrt_server) {
      new http::HttpServer(*server.net, 8080);
    } else {
      auto* stack = new baseline::SocketStack(bed.world(), *server.net,
                                              baseline::SocketStack::LinuxModel());
      new http::BaselineHttpServer(*stack, 8080);
    }
  });
  loadgen::HttpLoadgen::Config config;
  config.connections = 8;       // moderate load
  config.think_time_ns = 50'000;
  config.duration_ns = 200'000'000;
  loadgen::HttpLoadgen gen(bed, client, Ipv4Addr::Of(10, 0, 0, 2), 8080, config);
  loadgen::HttpLoadgen::Result result;
  bool done = false;
  gen.Run().Then([&](Future<loadgen::HttpLoadgen::Result> f) {
    result = f.Get();
    done = true;
  });
  std::uint64_t horizon = 2ull * 1000 * 1000 * 1000;
  while (!done && bed.world().Now() < horizon) {
    if (bed.world().RunUntil(bed.world().Now() + 50'000'000)) {
      break;
    }
  }
  return {result.mean_ns / 1000.0, result.p99_ns / 1000.0, result.achieved_rps};
}

// --- TX-batching depth sweep (webserver section of BENCH_tx_batching.json) ------------------
// Pipelined GET bursts against the uv-layer (node-style) EbbRT server: depth-N rounds sent
// as one chain; the auto-corked server answers each round in one chain.

bench::DepthPoint RunWebDepthPoint(std::size_t depth) {
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 1, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3),
                                        sim::HypervisorModel::Native());
  http::HttpServer* srv = nullptr;
  server.Spawn(0, [&] { srv = new http::HttpServer(*server.net, 8080); });
  loadgen::HttpLoadgen::Config config;
  config.connections = 1;
  config.pipeline = depth;
  config.think_time_ns = 10'000;
  config.warmup_ns = 5'000'000;
  config.duration_ns = 100'000'000;
  loadgen::HttpLoadgen gen(bed, client, Ipv4Addr::Of(10, 0, 0, 2), 8080, config);
  bool done = false;
  gen.Run().Then([&](Future<loadgen::HttpLoadgen::Result> f) {
    f.Get();
    done = true;
  });
  // Steady-state allocation baseline, matching fig5's end-of-preload mark: run through the
  // warmup window first so one-time pool/slab carving is excluded from the alloc fields
  // (the request denominator stays the server's total, the same approximation
  // segments_per_op makes).
  bed.world().RunUntil(bed.world().Now() + config.warmup_ns);
  server.net->stats().MarkAllocBaseline();
  std::uint64_t horizon = 2ull * 1000 * 1000 * 1000;
  while (!done && bed.world().Now() < horizon) {
    if (bed.world().RunUntil(bed.world().Now() + 50'000'000)) {
      break;
    }
  }
  return bench::FillDepthPoint(server.net->stats(), depth,
                               srv != nullptr ? srv->requests() : 0, bed.world().Now());
}

void EmitWebserverSweep(const std::vector<std::size_t>& depths) {
  bench::EmitDepthSweep("webserver", depths, RunWebDepthPoint);
}

}  // namespace
}  // namespace ebbrt

int main(int argc, char** argv) {
  using namespace ebbrt;
  bool sweep_only = argc > 1 && std::strcmp(argv[1], "--sweep-only") == 0;
  if (sweep_only) {
    EmitWebserverSweep({1, 8, 32});
    return 0;
  }
  std::printf("# Table 2 reproduction: webserver GET -> 148B static response, moderate"
              " load\n");
  std::printf("# paper: EbbRT 90.54us mean / 123us 99th; Linux 112.83us mean / 199us 99th\n");
  Row ebbrt_row = RunVariant(true);
  Row linux_row = RunVariant(false);
  std::printf("%-8s %12s %16s %12s\n", "system", "mean(us)", "99th-pct(us)", "rps");
  std::printf("%-8s %12.2f %16.2f %12.0f\n", "EbbRT", ebbrt_row.mean_us, ebbrt_row.p99_us,
              ebbrt_row.rps);
  std::printf("%-8s %12.2f %16.2f %12.0f\n", "Linux", linux_row.mean_us, linux_row.p99_us,
              linux_row.rps);
  std::printf("# Linux/EbbRT: mean %+.1f%%, 99th %+.1f%%\n",
              (linux_row.mean_us / ebbrt_row.mean_us - 1.0) * 100.0,
              (linux_row.p99_us / ebbrt_row.p99_us - 1.0) * 100.0);
  EmitWebserverSweep({1, 8, 32});
  return 0;
}
