// IOBufQueue tests: the parser-facing accumulator behind the zero-copy receive path.
//
// The key invariants: records contained in one segment are viewed in place (no copy, ever);
// records straddling 2+ segment boundaries are reassembled with exactly one bounded copy.
#include "src/iobuf/iobuf_queue.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace ebbrt {
namespace {

std::string Flatten(const IOBufQueue& q, IOBufQueue& mutable_q) {
  std::size_t len = q.ChainLength();
  std::string out(len, '\0');
  if (len > 0) {
    const std::uint8_t* p = mutable_q.EnsureContiguous(len);
    std::memcpy(out.data(), p, len);
  }
  return out;
}

TEST(IOBufQueue, AppendAccumulatesLength) {
  IOBufQueue q;
  EXPECT_TRUE(q.Empty());
  q.Append(IOBuf::CopyBuffer("abc"));
  q.Append(IOBuf::CopyBuffer("de"));
  EXPECT_EQ(q.ChainLength(), 5u);
  EXPECT_EQ(q.FrontLength(), 3u);
}

TEST(IOBufQueue, AppendChainCountsAllElements) {
  IOBufQueue q;
  auto chain = IOBuf::CopyBuffer("ab");
  chain->AppendChain(IOBuf::CopyBuffer("cd"));
  q.Append(std::move(chain));
  q.Append(IOBuf::CopyBuffer("ef"));
  EXPECT_EQ(q.ChainLength(), 6u);
  IOBufQueue& mq = q;
  EXPECT_EQ(Flatten(q, mq), "abcdef");
}

TEST(IOBufQueue, EnsureContiguousFastPathDoesNotCopy) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("0123456789"));
  const std::uint8_t* p = q.EnsureContiguous(4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "0123", 4), 0);
  EXPECT_EQ(q.coalesce_ops(), 0u);  // the zero-copy invariant
}

TEST(IOBufQueue, EnsureContiguousReturnsNullWhenShort) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("abc"));
  EXPECT_EQ(q.EnsureContiguous(4), nullptr);
  EXPECT_EQ(q.coalesce_ops(), 0u);
}

TEST(IOBufQueue, SplitRecordReassemblesAcrossTwoSegments) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("hello "));
  q.Append(IOBuf::CopyBuffer("world"));
  const std::uint8_t* p = q.EnsureContiguous(11);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "hello world", 11), 0);
  EXPECT_EQ(q.coalesce_ops(), 1u);  // exactly one copy for the straddling record
  // Subsequent peeks at the now-contiguous front are free.
  EXPECT_EQ(q.EnsureContiguous(11), p);
  EXPECT_EQ(q.coalesce_ops(), 1u);
}

TEST(IOBufQueue, SplitRecordReassemblesAcrossManySegments) {
  // A record arriving one byte per segment (worst case) still coalesces exactly once.
  IOBufQueue q;
  const std::string record = "abcdefghij";
  for (char c : record) {
    q.Append(IOBuf::CopyBuffer(&c, 1));
  }
  const std::uint8_t* p = q.EnsureContiguous(record.size());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, record.data(), record.size()), 0);
  EXPECT_EQ(q.coalesce_ops(), 1u);
  EXPECT_EQ(q.coalesced_bytes(), record.size());
}

TEST(IOBufQueue, CoalesceCoversOnlyTheNeededPrefix) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("ab"));
  q.Append(IOBuf::CopyBuffer("cd"));
  q.Append(IOBuf::CopyBuffer("tail-stays-zero-copy"));
  const std::uint8_t* p = q.EnsureContiguous(4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "abcd", 4), 0);
  // Only the two leading elements were merged; the third was not touched.
  EXPECT_EQ(q.coalesced_bytes(), 4u);
  EXPECT_EQ(q.ChainLength(), 24u);
}

TEST(IOBufQueue, TrimStartConsumesAcrossBoundaries) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("abc"));
  q.Append(IOBuf::CopyBuffer("def"));
  q.TrimStart(4);
  EXPECT_EQ(q.ChainLength(), 2u);
  const std::uint8_t* p = q.EnsureContiguous(2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "ef", 2), 0);
  q.TrimStart(2);
  EXPECT_TRUE(q.Empty());
}

TEST(IOBufQueue, InterleavedParseLoopKeepsStreamIntact) {
  // Simulates a record parser: records of varying size fed in segments whose boundaries do
  // not line up with records.
  IOBufQueue q;
  std::string stream;
  for (int i = 0; i < 50; ++i) {
    stream += std::string(1 + static_cast<std::size_t>(i) % 7, static_cast<char>('a' + i % 26));
  }
  // Feed in 9-byte segments.
  for (std::size_t off = 0; off < stream.size(); off += 9) {
    q.Append(IOBuf::CopyBuffer(stream.data() + off, std::min<std::size_t>(9, stream.size() - off)));
  }
  // Consume in 4-byte records.
  std::string out;
  while (q.ChainLength() >= 4) {
    const std::uint8_t* p = q.EnsureContiguous(4);
    ASSERT_NE(p, nullptr);
    out.append(reinterpret_cast<const char*>(p), 4);
    q.TrimStart(4);
  }
  const std::uint8_t* p = q.EnsureContiguous(q.ChainLength());
  if (p != nullptr) {
    out.append(reinterpret_cast<const char*>(p), q.ChainLength());
  }
  EXPECT_EQ(out, stream);
}

TEST(IOBufQueue, SplitCarvesOwnedChainZeroCopy) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("0123456789"));
  auto front = q.Split(4);
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->AsStringView(), "0123");
  EXPECT_EQ(q.ChainLength(), 6u);
  EXPECT_EQ(q.coalesce_ops(), 0u);  // split shares the straddled element, never copies
  const std::uint8_t* p = q.EnsureContiguous(6);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "456789", 6), 0);
}

TEST(IOBufQueue, SplitThenAppendKeepsTailValid) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("abcdef"));
  auto front = q.Split(3);
  q.Append(IOBuf::CopyBuffer("ghi"));  // exercises the re-resolved tail pointer
  EXPECT_EQ(q.ChainLength(), 6u);
  const std::uint8_t* p = q.EnsureContiguous(6);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "defghi", 6), 0);
}

TEST(IOBufQueue, MoveTakesEverything) {
  IOBufQueue q;
  q.Append(IOBuf::CopyBuffer("abc"));
  q.Append(IOBuf::CopyBuffer("def"));
  auto all = q.Move();
  EXPECT_TRUE(q.Empty());
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->ComputeChainDataLength(), 6u);
  // The queue is reusable after Move.
  q.Append(IOBuf::CopyBuffer("xyz"));
  EXPECT_EQ(q.ChainLength(), 3u);
}

TEST(IOBufQueue, ZeroLengthElementsAreSkipped) {
  IOBufQueue q;
  q.Append(IOBuf::CreateReserve(16, 0));  // empty view
  q.Append(IOBuf::CopyBuffer("data"));
  EXPECT_EQ(q.ChainLength(), 4u);
  EXPECT_EQ(q.FrontLength(), 4u);
  const std::uint8_t* p = q.EnsureContiguous(4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(std::memcmp(p, "data", 4), 0);
  EXPECT_EQ(q.coalesce_ops(), 0u);  // the empty head must not force a coalesce
}

}  // namespace
}  // namespace ebbrt
