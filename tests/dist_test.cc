// Hybrid-structure tests (§2.1, §4.3): messaging between machines, GlobalIdMap naming served
// by the hosted frontend, and the FileSystem Ebb function-shipping to real POSIX files.
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/core/ebb_allocator.h"
#include "src/dist/file_system.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kNativeIp = Ipv4Addr::Of(10, 0, 0, 3);

class DistTest : public ::testing::Test {
 protected:
  DistTest()
      : frontend_(bed_.AddNode("frontend", 1, kFrontendIp, sim::HypervisorModel::Native(),
                               RuntimeKind::kHosted)),
        native_(bed_.AddNode("native", 2, kNativeIp)) {
    root_ = "/tmp/ebbrt_fs_test_" + std::to_string(::getpid());
  }

  Testbed bed_;
  TestbedNode frontend_;
  TestbedNode native_;
  std::string root_;
};

TEST_F(DistTest, MessengerRoundTrip) {
  std::string received_at_frontend;
  std::string received_at_native;
  frontend_.Spawn(0, [&] {
    auto& messenger = dist::Messenger::For(*frontend_.runtime);
    messenger.RegisterReceiver(kFirstStaticUserId, [&](Ipv4Addr from,
                                                       std::unique_ptr<IOBuf> payload) {
      received_at_frontend = std::string(payload->AsStringView());
      messenger.Send(from, kFirstStaticUserId, IOBuf::CopyBuffer("pong from frontend"));
    });
  });
  native_.Spawn(0, [&] {
    auto& messenger = dist::Messenger::For(*native_.runtime);
    messenger.RegisterReceiver(kFirstStaticUserId,
                               [&](Ipv4Addr, std::unique_ptr<IOBuf> payload) {
                                 received_at_native = std::string(payload->AsStringView());
                               });
    messenger.Send(kFrontendIp, kFirstStaticUserId, IOBuf::CopyBuffer("ping from native"));
  });
  bed_.world().Run();
  EXPECT_EQ(received_at_frontend, "ping from native");
  EXPECT_EQ(received_at_native, "pong from frontend");
}

TEST_F(DistTest, FileSystemOffloadsToHostedPosix) {
  std::string read_back;
  std::uint64_t size = 0;
  frontend_.Spawn(0, [&] { dist::FileSystem::ServeOn(*frontend_.runtime, root_); });
  native_.Spawn(0, [&] {
    auto& fs = dist::FileSystem::For(*native_.runtime, kFrontendIp);
    fs.WriteFile("greeting.txt", "written from the native instance")
        .Then([&fs, &read_back, &size](Future<void> f) {
          f.Get();
          return fs.ReadFile("greeting.txt").Then([&fs, &read_back, &size](
                                                      Future<std::string> rf) {
            read_back = rf.Get();
            return fs.GetFileSize("greeting.txt").Then([&size](Future<std::uint64_t> sf) {
              size = sf.Get();
            });
          });
        });
  });
  bed_.world().Run();
  EXPECT_EQ(read_back, "written from the native instance");
  EXPECT_EQ(size, read_back.size());
  // The file genuinely exists on the "Linux" side.
  std::FILE* f = std::fopen((root_ + "/greeting.txt").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

TEST_F(DistTest, FileSystemReadMissingFails) {
  bool failed = false;
  frontend_.Spawn(0, [&] { dist::FileSystem::ServeOn(*frontend_.runtime, root_); });
  native_.Spawn(0, [&] {
    auto& fs = dist::FileSystem::For(*native_.runtime, kFrontendIp);
    fs.ReadFile("does-not-exist").Then([&failed](Future<std::string> f) {
      try {
        f.Get();
      } catch (const std::runtime_error&) {
        failed = true;
      }
    });
  });
  bed_.world().Run();
  EXPECT_TRUE(failed);
}

TEST_F(DistTest, GlobalIdMapNamingAndIdBlocks) {
  std::string value;
  EbbId block_a = 0;
  EbbId block_b = 0;
  frontend_.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend_.runtime); });
  native_.Spawn(0, [&] {
    auto& map = dist::GlobalIdMap::For(*native_.runtime, kFrontendIp);
    map.Set("service/memcached", "10.0.0.3:11211").Then([&](Future<void> f) {
      f.Get();
      return map.Get("service/memcached").Then([&](Future<std::string> gf) {
        value = gf.Get();
        return map.AllocateIdBlock(64).Then([&](Future<EbbId> bf) {
          block_a = bf.Get();
          return map.AllocateIdBlock(64).Then([&](Future<EbbId> bf2) {
            block_b = bf2.Get();
            // Install the block into this machine's allocator, as bring-up would.
            EbbAllocator::Instance()->SetGlobalBlock(block_b, 64);
          });
        });
      });
    });
  });
  bed_.world().Run();
  EXPECT_EQ(value, "10.0.0.3:11211");
  EXPECT_NE(block_a, 0u);
  EXPECT_EQ(block_b, block_a + 64);
}

}  // namespace
}  // namespace ebbrt
