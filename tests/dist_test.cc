// Hybrid-structure tests (§2.1, §4.3): messaging between machines, GlobalIdMap naming served
// by the hosted frontend, and the FileSystem Ebb function-shipping to real POSIX files.
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/core/ebb_allocator.h"
#include "src/dist/file_system.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kNativeIp = Ipv4Addr::Of(10, 0, 0, 3);

class DistTest : public ::testing::Test {
 protected:
  DistTest()
      : frontend_(bed_.AddNode("frontend", 1, kFrontendIp, sim::HypervisorModel::Native(),
                               RuntimeKind::kHosted)),
        native_(bed_.AddNode("native", 2, kNativeIp)) {
    root_ = "/tmp/ebbrt_fs_test_" + std::to_string(::getpid());
  }

  Testbed bed_;
  TestbedNode frontend_;
  TestbedNode native_;
  std::string root_;
};

TEST_F(DistTest, MessengerRoundTrip) {
  std::string received_at_frontend;
  std::string received_at_native;
  frontend_.Spawn(0, [&] {
    auto& messenger = dist::Messenger::For(*frontend_.runtime);
    messenger.RegisterReceiver(kFirstStaticUserId, [&](Ipv4Addr from,
                                                       std::unique_ptr<IOBuf> payload) {
      received_at_frontend = std::string(payload->AsStringView());
      messenger.Send(from, kFirstStaticUserId, IOBuf::CopyBuffer("pong from frontend"));
    });
  });
  native_.Spawn(0, [&] {
    auto& messenger = dist::Messenger::For(*native_.runtime);
    messenger.RegisterReceiver(kFirstStaticUserId,
                               [&](Ipv4Addr, std::unique_ptr<IOBuf> payload) {
                                 received_at_native = std::string(payload->AsStringView());
                               });
    messenger.Send(kFrontendIp, kFirstStaticUserId, IOBuf::CopyBuffer("ping from native"));
  });
  bed_.world().Run();
  EXPECT_EQ(received_at_frontend, "ping from native");
  EXPECT_EQ(received_at_native, "pong from frontend");
}

namespace {
// Raw TCP sender for the framing-hardening tests: connects to a Messenger port and writes
// whatever bytes it is given, bypassing the Messenger's own (well-formed) framing.
class RawFrameSender final : public TcpHandler {
 public:
  void Receive(std::unique_ptr<IOBuf>) override {}
  void Close() override {
    closed_by_peer = true;
    Pcb().Close();
  }
  bool closed_by_peer = false;
};
}  // namespace

TEST_F(DistTest, MessengerRejectsOversizeFrameAndClosesPeer) {
  // A hand-crafted header claiming a 512 MiB payload: the receiver must tick bad_frames,
  // close the connection, and keep serving well-formed peers — never assert or wedge.
  auto sender = std::make_shared<RawFrameSender>();
  std::string frontend_got;
  frontend_.Spawn(0, [&] {
    dist::Messenger::For(*frontend_.runtime)
        .RegisterReceiver(kFirstStaticUserId,
                          [&](Ipv4Addr, std::unique_ptr<IOBuf> payload) {
                            frontend_got = std::string(payload->AsStringView());
                          });
  });
  native_.Spawn(0, [&] {
    native_.net->tcp()
        .Connect(*native_.iface, kFrontendIp, dist::kMessengerPort)
        .Then([sender](Future<TcpPcb> f) {
          TcpPcb pcb = f.Get();
          pcb.InstallHandler(std::shared_ptr<TcpHandler>(sender));
          dist::MsgHeader header;
          header.length = HostToNet32(512u * 1024 * 1024);  // > kMaxMessageBytes
          header.target = HostToNet32(kFirstStaticUserId);
          auto frame = IOBuf::Create(sizeof(header));
          std::memcpy(frame->WritableData(), &header, sizeof(header));
          pcb.Send(std::move(frame));
        });
  });
  bed_.world().Run();
  const dist::Messenger::Stats& stats = dist::Messenger::For(*frontend_.runtime).stats();
  EXPECT_EQ(stats.bad_frames.load(), 1u);
  EXPECT_EQ(stats.messages_received.load(), 0u);
  EXPECT_TRUE(sender->closed_by_peer);  // the receiver dropped the unframeable connection

  // The messenger is still healthy: a well-formed peer delivers normally afterwards.
  native_.Spawn(0, [&] {
    dist::Messenger::For(*native_.runtime)
        .Send(kFrontendIp, kFirstStaticUserId, IOBuf::CopyBuffer("after the bad peer"));
  });
  bed_.world().Run();
  EXPECT_EQ(frontend_got, "after the bad peer");
  EXPECT_EQ(stats.bad_frames.load(), 1u);
}

TEST_F(DistTest, MessengerRejectsUnknownTargetFrame) {
  // A well-framed message to an EbbId nobody registered: same treatment — counted, peer
  // dropped — because the two machines disagree about what this one serves.
  frontend_.Spawn(0, [&] { dist::Messenger::For(*frontend_.runtime); });
  native_.Spawn(0, [&] {
    dist::Messenger::For(*native_.runtime)
        .Send(kFrontendIp, kFirstStaticUserId + 7, IOBuf::CopyBuffer("to nowhere"));
  });
  bed_.world().Run();
  const dist::Messenger::Stats& stats = dist::Messenger::For(*frontend_.runtime).stats();
  EXPECT_EQ(stats.bad_frames.load(), 1u);
  EXPECT_EQ(stats.messages_received.load(), 0u);
}

TEST_F(DistTest, MessengerSteadyStateFanInTakesNoControlLocks) {
  // The lock-free dispatch-plane claim, asserted: once connections exist and receivers are
  // registered, a second wave of cross-core fan-in traffic must not acquire the Messenger
  // control mutex even once — every per-message peer/receiver lookup rides the RCU read
  // side. (stats().control_locks counts every control_mu_ acquisition.)
  constexpr std::size_t kWave = 24;
  std::size_t received = 0;
  frontend_.Spawn(0, [&] {
    dist::Messenger::For(*frontend_.runtime)
        .RegisterReceiver(kFirstStaticUserId, [&](Ipv4Addr from,
                                                  std::unique_ptr<IOBuf> payload) {
          received++;
          // Reply to exercise the reverse path's peer lookup too.
          dist::Messenger::For(*frontend_.runtime)
              .Send(from, kFirstStaticUserId, std::move(payload));
        });
  });
  std::size_t replies = 0;
  native_.Spawn(0, [&] {
    dist::Messenger::For(*native_.runtime)
        .RegisterReceiver(kFirstStaticUserId,
                          [&](Ipv4Addr, std::unique_ptr<IOBuf>) { replies++; });
    // First wave: dials, accepts, registrations — the control plane is allowed to lock.
    for (std::size_t i = 0; i < kWave; ++i) {
      dist::Messenger::For(*native_.runtime)
          .Send(kFrontendIp, kFirstStaticUserId, IOBuf::CopyBuffer("warm"));
    }
  });
  bed_.world().Run();
  ASSERT_EQ(received, kWave);
  ASSERT_EQ(replies, kWave);

  const dist::Messenger::Stats& frontend_stats =
      dist::Messenger::For(*frontend_.runtime).stats();
  const dist::Messenger::Stats& native_stats =
      dist::Messenger::For(*native_.runtime).stats();
  std::uint64_t frontend_locks = frontend_stats.control_locks.load();
  std::uint64_t native_locks = native_stats.control_locks.load();

  // Second wave: steady state, fanned in from BOTH of the native machine's cores (the
  // cross-core Send forwards through the peer's owner core — still no control lock).
  for (std::size_t core = 0; core < 2; ++core) {
    native_.Spawn(core, [&] {
      for (std::size_t i = 0; i < kWave; ++i) {
        dist::Messenger::For(*native_.runtime)
            .Send(kFrontendIp, kFirstStaticUserId, IOBuf::CopyBuffer("steady"));
      }
    });
  }
  bed_.world().Run();
  EXPECT_EQ(received, 3 * kWave);
  EXPECT_EQ(replies, 3 * kWave);
  EXPECT_EQ(frontend_stats.control_locks.load(), frontend_locks);
  EXPECT_EQ(native_stats.control_locks.load(), native_locks);
  EXPECT_EQ(frontend_stats.bad_frames.load(), 0u);
  EXPECT_EQ(native_stats.bad_frames.load(), 0u);
}

TEST_F(DistTest, FileSystemOffloadsToHostedPosix) {
  std::string read_back;
  std::uint64_t size = 0;
  frontend_.Spawn(0, [&] { dist::FileSystem::ServeOn(*frontend_.runtime, root_); });
  native_.Spawn(0, [&] {
    auto& fs = dist::FileSystem::For(*native_.runtime, kFrontendIp);
    fs.WriteFile("greeting.txt", "written from the native instance")
        .Then([&fs, &read_back, &size](Future<void> f) {
          f.Get();
          return fs.ReadFile("greeting.txt").Then([&fs, &read_back, &size](
                                                      Future<std::string> rf) {
            read_back = rf.Get();
            return fs.GetFileSize("greeting.txt").Then([&size](Future<std::uint64_t> sf) {
              size = sf.Get();
            });
          });
        });
  });
  bed_.world().Run();
  EXPECT_EQ(read_back, "written from the native instance");
  EXPECT_EQ(size, read_back.size());
  // The file genuinely exists on the "Linux" side.
  std::FILE* f = std::fopen((root_ + "/greeting.txt").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

TEST_F(DistTest, FileSystemReadMissingFails) {
  bool failed = false;
  frontend_.Spawn(0, [&] { dist::FileSystem::ServeOn(*frontend_.runtime, root_); });
  native_.Spawn(0, [&] {
    auto& fs = dist::FileSystem::For(*native_.runtime, kFrontendIp);
    fs.ReadFile("does-not-exist").Then([&failed](Future<std::string> f) {
      try {
        f.Get();
      } catch (const std::runtime_error&) {
        failed = true;
      }
    });
  });
  bed_.world().Run();
  EXPECT_TRUE(failed);
}

TEST_F(DistTest, GlobalIdMapNamingAndIdBlocks) {
  std::string value;
  EbbId block_a = 0;
  EbbId block_b = 0;
  frontend_.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend_.runtime); });
  native_.Spawn(0, [&] {
    auto& map = dist::GlobalIdMap::For(*native_.runtime, kFrontendIp);
    map.Set("service/memcached", "10.0.0.3:11211").Then([&](Future<void> f) {
      f.Get();
      return map.Get("service/memcached").Then([&](Future<std::string> gf) {
        value = gf.Get();
        return map.AllocateIdBlock(64).Then([&](Future<EbbId> bf) {
          block_a = bf.Get();
          return map.AllocateIdBlock(64).Then([&](Future<EbbId> bf2) {
            block_b = bf2.Get();
            // Install the block into this machine's allocator, as bring-up would.
            EbbAllocator::Instance()->SetGlobalBlock(block_b, 64);
          });
        });
      });
    });
  });
  bed_.world().Run();
  EXPECT_EQ(value, "10.0.0.3:11211");
  EXPECT_NE(block_a, 0u);
  EXPECT_EQ(block_b, block_a + 64);
}

}  // namespace
}  // namespace ebbrt
