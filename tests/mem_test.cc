// Memory subsystem tests: buddy page allocator invariants, slab caches (per-core fast path,
// depot balancing), general-purpose allocator routing, vmem fault handling.
#include <algorithm>
#include <cstring>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/mem/gp_allocator.h"
#include "src/mem/page_allocator.h"
#include "src/mem/phys_arena.h"
#include "src/mem/slab_allocator.h"
#include "src/mem/vmem.h"

namespace ebbrt {
namespace {

class MemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<Runtime>(RuntimeKind::kNative, "memtest");
    first_core_ = runtime_->AddCores(4);
    mem::Config config;
    config.arena_bytes = 64ull << 20;  // 64 MiB
    config.numa_nodes = 2;
    mem::Install(*runtime_, 4, config);
  }

  PageAllocatorRoot& pages() {
    return runtime_->GetSubsystem<PageAllocatorRoot>(Subsystem::kPageAllocator);
  }

  std::unique_ptr<Runtime> runtime_;
  std::size_t first_core_;
};

TEST_F(MemTest, BuddyAllocAndFreeRestoresFreePages) {
  PageAllocator& node0 = pages().RepForNode(0);
  std::size_t before = node0.free_pages();
  void* a = node0.AllocPages(0);
  void* b = node0.AllocPages(3);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(node0.free_pages(), before - 1 - 8);
  node0.FreePages(a);
  node0.FreePages(b);
  EXPECT_EQ(node0.free_pages(), before);
}

TEST_F(MemTest, BuddyBlocksAreAlignedAndDisjoint) {
  PageAllocator& node0 = pages().RepForNode(0);
  std::vector<void*> blocks;
  for (std::size_t order = 0; order <= 5; ++order) {
    void* p = node0.AllocPages(order);
    ASSERT_NE(p, nullptr);
    // Natural alignment relative to the node base.
    auto off = static_cast<std::size_t>(static_cast<std::uint8_t*>(p) -
                                        pages().arena().PfnToAddr(0));
    EXPECT_EQ(off % (kPageSize << order), 0u) << "order " << order;
    blocks.push_back(p);
  }
  // Blocks must not overlap: write distinct patterns, verify.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::memset(blocks[i], static_cast<int>(i + 1), kPageSize << i);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(*static_cast<std::uint8_t*>(blocks[i]), i + 1);
  }
  for (void* p : blocks) {
    node0.FreePages(p);
  }
}

TEST_F(MemTest, BuddyCoalescingReassemblesMaxBlocks) {
  PageAllocator& node0 = pages().RepForNode(0);
  std::size_t before = node0.free_pages();
  // Fragment: take many order-0 pages, then free them all; coalescing must restore the pool
  // to the point where a max-order allocation succeeds again.
  std::vector<void*> singles;
  for (int i = 0; i < 1024; ++i) {
    void* p = node0.AllocPages(0);
    ASSERT_NE(p, nullptr);
    singles.push_back(p);
  }
  for (void* p : singles) {
    node0.FreePages(p);
  }
  EXPECT_EQ(node0.free_pages(), before);
  void* big = node0.AllocPages(kMaxOrder);
  EXPECT_NE(big, nullptr);
  node0.FreePages(big);
}

TEST_F(MemTest, BuddyExhaustionReturnsNull) {
  PageAllocator& node0 = pages().RepForNode(0);
  std::vector<void*> blocks;
  for (;;) {
    void* p = node0.AllocPages(kMaxOrder);
    if (p == nullptr) {
      break;
    }
    blocks.push_back(p);
  }
  EXPECT_LT(node0.free_pages(), std::size_t{1} << kMaxOrder);
  for (void* p : blocks) {
    node0.FreePages(p);
  }
}

TEST_F(MemTest, NodesAreIndependent) {
  PageAllocator& node0 = pages().RepForNode(0);
  PageAllocator& node1 = pages().RepForNode(1);
  std::size_t n1_before = node1.free_pages();
  void* p = node0.AllocPages(4);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(node1.free_pages(), n1_before);  // node 1 untouched
  node0.FreePages(p);
}

TEST_F(MemTest, SlabAllocDistinctObjects) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  SlabCacheRoot root(pages(), 64, kFirstStaticUserId + 20, 4);
  SlabCache& cache = root.RepFor(0);
  std::set<void*> objs;
  for (int i = 0; i < 1000; ++i) {
    void* p = cache.Alloc();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(objs.insert(p).second) << "duplicate object";
  }
  for (void* p : objs) {
    cache.Free(p);
  }
}

TEST_F(MemTest, SlabReusesFreedObjects) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  SlabCacheRoot root(pages(), 128, kFirstStaticUserId + 21, 4);
  SlabCache& cache = root.RepFor(0);
  void* a = cache.Alloc();
  cache.Free(a);
  void* b = cache.Alloc();
  EXPECT_EQ(a, b);  // LIFO freelist reuse
  cache.Free(b);
}

TEST_F(MemTest, SlabDepotBalancesAcrossCores) {
  // Core 0 allocates and frees many objects (overflowing its watermark into the node depot);
  // core 1 should then be able to allocate without carving new slabs.
  SlabCacheRoot root(pages(), 64, kFirstStaticUserId + 22, 4);
  std::vector<void*> objs;
  {
    ScopedContext ctx(*runtime_, first_core_, 0, false);
    SlabCache& c0 = root.RepFor(0);
    for (int i = 0; i < 6000; ++i) {
      objs.push_back(c0.Alloc());
    }
    std::size_t slabs_after_alloc = root.total_slabs();
    for (void* p : objs) {
      c0.Free(p);
    }
    EXPECT_EQ(root.total_slabs(), slabs_after_alloc);
  }
  std::size_t slabs_before_core1 = root.total_slabs();
  {
    ScopedContext ctx(*runtime_, first_core_ + 1, 1, false);
    SlabCache& c1 = root.RepFor(1);
    std::vector<void*> got;
    for (int i = 0; i < 2000; ++i) {
      got.push_back(c1.Alloc());
    }
    // Objects came from the depot (flushed by core 0), not fresh slabs.
    EXPECT_EQ(root.total_slabs(), slabs_before_core1);
    for (void* p : got) {
      c1.Free(p);
    }
  }
}

TEST_F(MemTest, GpAllocatorRoutesToSizeClasses) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  for (std::size_t size : {1u, 8u, 9u, 100u, 1000u, 4096u}) {
    void* p = mem::Alloc(size);
    ASSERT_NE(p, nullptr) << size;
    std::memset(p, 0xAB, size);
    mem::Free(p);
  }
}

TEST_F(MemTest, GpAllocatorLargeAllocations) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  void* p = mem::Alloc(1 << 20);  // 1 MiB
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 1 << 20);
  PageInfo& info = pages().arena().InfoForAddr(p);
  EXPECT_EQ(info.kind, PageKind::kLarge);
  mem::Free(p);
  EXPECT_EQ(pages().arena().InfoForAddr(p).kind, PageKind::kFree);
}

TEST_F(MemTest, GpAllocatorCompileTimeSizePath) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  auto gp = GeneralPurposeAllocator::Instance();
  void* a = gp->AllocFor<16>();
  void* b = gp->AllocFor<16>();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  gp->Free(a);
  gp->Free(b);
}

TEST_F(MemTest, GpAllocatorMixedSizeStress) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  std::mt19937 rng(42);
  std::vector<std::pair<void*, std::size_t>> live;
  for (int i = 0; i < 20000; ++i) {
    if (live.empty() || rng() % 2 == 0) {
      std::size_t size = 1 + rng() % 6000;
      void* p = mem::Alloc(size);
      ASSERT_NE(p, nullptr);
      std::memset(p, static_cast<int>(size & 0xff), std::min<std::size_t>(size, 64));
      live.emplace_back(p, size);
    } else {
      std::size_t idx = rng() % live.size();
      // Verify the sentinel survived (no overlap between allocations).
      auto [p, size] = live[idx];
      EXPECT_EQ(*static_cast<std::uint8_t*>(p), static_cast<std::uint8_t>(size & 0xff));
      mem::Free(p);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (auto [p, size] : live) {
    mem::Free(p);
  }
}

TEST_F(MemTest, ParallelCoresAllocateIndependently) {
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int core = 0; core < 4; ++core) {
    threads.emplace_back([&, core] {
      ScopedContext ctx(*runtime_, first_core_ + core, core, false);
      std::vector<void*> ptrs;
      for (int i = 0; i < 5000; ++i) {
        void* p = mem::Alloc(64);
        if (p == nullptr) {
          failed = true;
          return;
        }
        *static_cast<int*>(p) = core;
        ptrs.push_back(p);
      }
      for (void* p : ptrs) {
        if (*static_cast<int*>(p) != core) {
          failed = true;  // another core scribbled on our object
        }
        mem::Free(p);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
}

TEST(VMem, DemandPagingDefaultHandler) {
  // The default handler fault-arounds in 16-page clusters (as a general-purpose kernel
  // does), so touches within one cluster fault once and the next cluster faults again.
  VMemRegion& region = vmem::Allocate(64 * kPageSize);
  auto* p = static_cast<std::uint8_t*>(region.base());
  p[0] = 1;                   // fault -> maps pages 0..15
  p[5 * kPageSize] = 2;       // same cluster: no new fault
  EXPECT_EQ(region.fault_count(), 1u);
  p[20 * kPageSize] = 3;      // next cluster: one more fault
  EXPECT_EQ(region.fault_count(), 2u);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[5 * kPageSize], 2);
  EXPECT_EQ(p[20 * kPageSize], 3);
  vmem::Release(region);
}

TEST(VMem, CustomHandlerObservesAddress) {
  void* seen = nullptr;
  VMemRegion& region = vmem::Allocate(4 * kPageSize, [&seen](VMemRegion& r, void* addr) {
    seen = addr;
    r.MapPage(addr);
  });
  auto* p = static_cast<std::uint8_t*>(region.base()) + 2 * kPageSize + 17;
  *p = 9;
  EXPECT_EQ(seen, p);
  vmem::Release(region);
}

TEST(VMem, MapAllPreventsAllFaults) {
  VMemRegion& region = vmem::Allocate(64 * kPageSize);
  region.MapAll(/*touch=*/true);
  auto* p = static_cast<std::uint8_t*>(region.base());
  for (std::size_t i = 0; i < 64; ++i) {
    p[i * kPageSize] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(region.fault_count(), 0u);  // the paper's "aggressive mapping" effect
  vmem::Release(region);
}

}  // namespace
}  // namespace ebbrt
