// TcpHandler tests: the unified per-connection datapath interface (receive / window
// exhaustion / SendReady / Close / Abort) and handler lifetime management.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);

// Echoes everything; closes when the peer closes.
class EchoHandler final : public TcpHandler {
 public:
  void Receive(std::unique_ptr<IOBuf> data) override { Pcb().Send(std::move(data)); }
  void Close() override { Pcb().Close(); }
};

TEST(TcpHandler, EchoThroughHandlerSubclasses) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string echoed;
  bool closed = false;

  class ClientHandler final : public TcpHandler {
   public:
    ClientHandler(std::string& echoed, bool& closed) : echoed_(echoed), closed_(closed) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      echoed_ += std::string(data->AsStringView());
      if (echoed_.size() >= 11) {
        Pcb().Close();
      }
    }
    void Close() override { closed_ = true; }

   private:
    std::string& echoed_;
    bool& closed_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8200, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<EchoHandler>()));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8200).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<ClientHandler>(echoed, closed)));
      pcb.Send(IOBuf::CopyBuffer("hello "));
      pcb.Send(IOBuf::CopyBuffer("world"));
    });
  });
  bed.world().Run();
  EXPECT_EQ(echoed, "hello world");
}

// The full connection lifecycle on one handler: receive on the server side throttles the
// sender (application-controlled window), the sender observes window exhaustion, SendReady
// resumes it when ACKs open the window, and Close fires when the peer finishes.
TEST(TcpHandler, LifecycleReceiveWindowExhaustSendReadyClose) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  constexpr std::size_t kTotal = 200'000;  // several times the 64 KiB advertised window

  struct ServerState {
    std::size_t received = 0;
    bool closed_after_all_data = false;
  } server_state;

  // Server: consume kTotal bytes, then close its side (drives the client's Close()).
  class SinkHandler final : public TcpHandler {
   public:
    SinkHandler(ServerState& state, std::size_t expect) : state_(state), expect_(expect) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      state_.received += data->ComputeChainDataLength();
      if (state_.received >= expect_) {
        state_.closed_after_all_data = true;
        Pcb().Close();
      }
    }

   private:
    ServerState& state_;
    std::size_t expect_;
  };

  struct ClientState {
    std::size_t sent = 0;
    bool window_exhausted = false;
    int send_ready_calls = 0;
    bool peer_closed = false;
  } client_state;

  // Client: application-paced sender — pumps until the window is exhausted, resumes from
  // SendReady, and records the peer's close.
  class SourceHandler final : public TcpHandler {
   public:
    SourceHandler(ClientState& state, std::size_t total) : state_(state), total_(total) {}
    void Receive(std::unique_ptr<IOBuf>) override {}
    void SendReady() override {
      ++state_.send_ready_calls;
      Pump();
    }
    void Close() override { state_.peer_closed = true; }
    void Pump() {
      while (state_.sent < total_) {
        std::size_t window = Pcb().SendWindowRemaining();
        if (window == 0) {
          state_.window_exhausted = true;  // the contract: wait for SendReady
          return;
        }
        std::size_t chunk = std::min(window, total_ - state_.sent);
        ASSERT_TRUE(Pcb().Send(IOBuf::Create(chunk)));
        state_.sent += chunk;
      }
    }

   private:
    ClientState& state_;
    std::size_t total_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8201, [&server_state, kTotal](TcpPcb pcb) {
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(server_state, kTotal)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8201).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      auto handler = std::make_unique<SourceHandler>(client_state, kTotal);
      auto* raw = handler.get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::move(handler)));
      raw->Pump();
    });
  });
  bed.world().Run();

  EXPECT_EQ(server_state.received, kTotal);
  EXPECT_TRUE(server_state.closed_after_all_data);
  EXPECT_EQ(client_state.sent, kTotal);
  // 200'000 bytes cannot fit in the 64 KiB window, so the sender must have hit window == 0
  // at least once and resumed from SendReady.
  EXPECT_TRUE(client_state.window_exhausted);
  EXPECT_GT(client_state.send_ready_calls, 0);
  EXPECT_TRUE(client_state.peer_closed);
}

// An owned handler must be destroyed (on a fresh event) once the connection is removed —
// including when Close() is called from inside the handler's own Receive().
TEST(TcpHandler, OwnedHandlerDestroyedAfterConnectionRemoval) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  bool server_handler_destroyed = false;
  bool client_handler_destroyed = false;

  // Closes from within Receive — the teardown-under-own-frame case.
  class CloseOnReceive final : public TcpHandler {
   public:
    explicit CloseOnReceive(bool& destroyed) : destroyed_(destroyed) {}
    ~CloseOnReceive() override { destroyed_ = true; }
    void Receive(std::unique_ptr<IOBuf>) override { Pcb().Close(); }
    void Close() override { Pcb().Close(); }

   private:
    bool& destroyed_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8202, [&server_handler_destroyed](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(
          std::make_unique<CloseOnReceive>(server_handler_destroyed)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8202).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(
          std::make_unique<CloseOnReceive>(client_handler_destroyed)));
      pcb.Send(IOBuf::CopyBuffer("trigger"));
    });
  });
  bed.world().Run();
  EXPECT_TRUE(server_handler_destroyed);
  EXPECT_TRUE(client_handler_destroyed);
}

// Abort() fires (instead of Close()) when retransmission gives up against a dead peer.
TEST(TcpHandler, AbortFiresWhenPeerUnreachable) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  bool aborted = false;
  bool closed = false;

  class AbortObserver final : public TcpHandler {
   public:
    AbortObserver(bool& aborted, bool& closed) : aborted_(aborted), closed_(closed) {}
    void Receive(std::unique_ptr<IOBuf>) override {}
    void Close() override { closed_ = true; }
    void Abort() override { aborted_ = true; }

   private:
    bool& aborted_;
    bool& closed_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8203, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<EchoHandler>()));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8203).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(
          std::make_unique<AbortObserver>(aborted, closed)));
      // Cut the fabric, then send: every retransmission is lost and the stack gives up.
      bed.fabric().SetLossRate(1.0, /*seed=*/3);
      pcb.Send(IOBuf::CopyBuffer("into the void"));
    });
  });
  bed.world().RunUntil(30ull * 1000 * 1000 * 1000);
  EXPECT_TRUE(aborted);
  EXPECT_FALSE(closed);
}

// Flush-after-close hazard (regression): a PCB torn down mid-event with responses still
// corked must DROP the corked chain at the event-boundary flush — never transmit into (or
// touch) a removed connection. The handler corks a response (auto-cork), then Abort()s the
// connection within the same Receive event; the TxBatcher's flush runs after teardown.
TEST(TcpHandler, TeardownMidEventDropsCorkedChain) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  bool client_aborted = false;

  class CorkThenAbort final : public TcpHandler {
   public:
    void Receive(std::unique_ptr<IOBuf>) override {
      // Auto-cork is enabled: this Send is corked, awaiting the event-boundary flush...
      ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer("response that must never hit the wire")));
      ASSERT_GT(Pcb().CorkedBytes(), 0u);
      // ...but the connection dies first, inside the same event.
      Pcb().Abort();
    }
  };

  class AbortObserver final : public TcpHandler {
   public:
    explicit AbortObserver(bool& aborted) : aborted_(aborted) {}
    void Receive(std::unique_ptr<IOBuf>) override {
      FAIL() << "client received data from an aborted connection";
    }
    void Abort() override { aborted_ = true; }

   private:
    bool& aborted_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8204, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<CorkThenAbort>()));
      pcb.SetAutoCork(true);
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8204).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<AbortObserver>(client_aborted)));
      pcb.Send(IOBuf::CopyBuffer("trigger"));
    });
  });
  bed.world().Run();
  // The corked response was dropped, not flushed: no data segment ever left the server.
  EXPECT_EQ(server.net->stats().corked_drops.load(), 1u);
  EXPECT_EQ(server.net->stats().tcp_tx_data_segments.load(), 0u);
  EXPECT_TRUE(client_aborted);  // the RST reached the peer
  EXPECT_EQ(server.net->tcp().active_connections(), 0u);
}

}  // namespace
}  // namespace ebbrt
