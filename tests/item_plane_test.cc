// Item-plane lifetime tests: the slab-carved item block, its intrusive refcount, and the
// zero-copy response views that pin it.
//
// The contract under test (kvstore.h): an item is ONE block [header | key | value] carved
// from the per-core allocator; GET hands out a reference whose IOBuf deleter drops it
// directly; replacement/deletion via RCU never frees a block a response still points at;
// the final Unref returns the block to its carving core's allocator from wherever it runs.
#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/memcached/kvstore.h"
#include "src/event/thread_machine.h"
#include "src/mem/gp_allocator.h"
#include "src/rcu/rcu.h"

namespace ebbrt {
namespace {

using memcached::Item;
using memcached::ItemPtr;
using memcached::KvStore;
using memcached::MakeValueBuffer;

class ItemPlaneTest : public ::testing::Test {
 protected:
  ItemPlaneTest() : machine_(2) {
    mem::Config config;
    config.arena_bytes = 32ull << 20;
    mem::Install(machine_.runtime(), 2, config);
    machine_.Start();
  }
  ~ItemPlaneTest() override { machine_.Shutdown(); }

  // Drives event boundaries on both cores until pending RCU reclamations have run.
  void DrainGracePeriods() {
    for (int i = 0; i < 50; ++i) {
      machine_.RunSync(0, [] {});
      machine_.RunSync(1, [] {});
    }
  }

  ThreadMachine machine_;
};

TEST_F(ItemPlaneTest, BlockLayoutAndAccessors) {
  machine_.RunSync(0, [] {
    std::uint64_t live_before = Item::live_count();
    ItemPtr item{Item::New("key-1", "value-bytes", 42, 7)};
    EXPECT_EQ(item->key(), "key-1");
    EXPECT_EQ(item->value(), "value-bytes");
    EXPECT_EQ(item->flags(), 42u);
    EXPECT_EQ(item->cas(), 7u);
    // Key and value bytes trail the header in the SAME allocation, contiguously.
    EXPECT_EQ(item->value().data(), item->key().data() + item->key().size());
    EXPECT_EQ(reinterpret_cast<const char*>(item.get()) + sizeof(Item), item->key().data());
    EXPECT_EQ(Item::live_count(), live_before + 1);
    item = ItemPtr();  // last reference: block freed exactly once
    EXPECT_EQ(Item::live_count(), live_before);
  });
}

TEST_F(ItemPlaneTest, RefcountDropsToZeroExactlyOnce) {
  machine_.RunSync(0, [] {
    std::uint64_t live_before = Item::live_count();
    ItemPtr a{Item::New("k", "v", 0, 1)};
    ItemPtr b = a;             // copy bumps
    ItemPtr c = std::move(a);  // move transfers, no bump
    EXPECT_EQ(c->refs(), 2u);
    b = ItemPtr();
    EXPECT_EQ(Item::live_count(), live_before + 1);  // c still holds it
    c = ItemPtr();
    EXPECT_EQ(Item::live_count(), live_before);
  });
}

TEST_F(ItemPlaneTest, GetViewSurvivesConcurrentReplacement) {
  auto store = std::make_shared<KvStore>(RcuManagerRoot::For(machine_.runtime()));
  std::string observed;
  machine_.RunSync(0, [&] {
    store->Set("key", "original-value", 0);
    ItemPtr item = store->Get("key");
    ASSERT_NE(item, nullptr);
    auto view = MakeValueBuffer(std::move(item));
    // Replace the item while the view is outstanding — the old block must stay intact.
    store->Set("key", "replacement!!!", 0);
    ItemPtr fresh = store->Get("key");
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->value(), "replacement!!!");
    observed.assign(reinterpret_cast<const char*>(view->Data()), view->Length());
  });
  EXPECT_EQ(observed, "original-value");
  DrainGracePeriods();
}

TEST_F(ItemPlaneTest, ResponseViewOutlivesDeleteLikeARetransmission) {
  // A TCP retransmission can need a response's bytes long after the item was deleted and
  // its grace period elapsed: the view's embedded reference — not the table — keeps the
  // block alive until the buffer itself is released.
  auto store = std::make_shared<KvStore>(RcuManagerRoot::For(machine_.runtime()));
  std::uint64_t live_before = Item::live_count();
  std::unique_ptr<IOBuf> view;
  machine_.RunSync(0, [&] {
    store->Set("key", "retransmit-me", 0);
    ItemPtr item = store->Get("key");
    ASSERT_NE(item, nullptr);
    view = MakeValueBuffer(std::move(item));
    EXPECT_TRUE(store->Delete("key"));
  });
  DrainGracePeriods();  // the table's reference is long gone; only the view pins the block
  EXPECT_EQ(Item::live_count(), live_before + 1);
  std::string_view bytes{reinterpret_cast<const char*>(view->Data()), view->Length()};
  EXPECT_EQ(bytes, "retransmit-me");
  machine_.RunSync(0, [&] { view.reset(); });  // the "retransmission" completes
  EXPECT_EQ(Item::live_count(), live_before);
}

TEST_F(ItemPlaneTest, RemoteDropRoutesBlockHome) {
  // Carve on core 0, drop the last reference on core 1: the same-machine cross-core free
  // goes through core 1's slab rep (magazine return) — no crash, block accounted exactly
  // once. Then carve again and drop from OUTSIDE any machine context (the teardown-thread /
  // foreign-machine case): that must take the FreeAnywhere depot route, ticking
  // mem::stats().remote_frees — the discipline GET responses rely on when a connection's
  // buffers release somewhere other than the core that carved the item.
  ItemPtr item;
  machine_.RunSync(0, [&] { item = ItemPtr{Item::New("k", std::string(512, 'x'), 0, 1)}; });
  std::uint64_t live_before = Item::live_count();
  machine_.RunSync(1, [&] { item = ItemPtr(); });
  EXPECT_EQ(Item::live_count(), live_before - 1);

  machine_.RunSync(0, [&] { item = ItemPtr{Item::New("k2", std::string(512, 'y'), 0, 2)}; });
  std::uint64_t remote_before = mem::stats().remote_frees.load();
  item = ItemPtr();  // dropped from the bare test thread: no event context
  EXPECT_EQ(Item::live_count(), live_before - 1);
  EXPECT_GT(mem::stats().remote_frees.load(), remote_before);
}

TEST_F(ItemPlaneTest, StoreOperationsDoNotTouchTheGenericHeap) {
  // The tentpole's claim, pinned as a unit test (fig13 gates it at bench scale): steady
  // state GET — including the full response-pinning path — and SET perform zero generic
  // heap allocations.
  auto store = std::make_shared<KvStore>(RcuManagerRoot::For(machine_.runtime()));
  std::uint64_t get_allocs = 0;
  std::uint64_t set_allocs = 0;
  machine_.RunSync(0, [&] {
    std::string big(1024, 'v');
    for (int i = 0; i < 64; ++i) {
      store->Set("warm", big, 0);  // fault slabs, table node, CAS block
      auto warm = store->Get("warm");
    }
    auto& counter = mem::stats().generic_heap_allocs;
    std::uint64_t before = counter.load();
    for (int i = 0; i < 256; ++i) {
      store->Set("warm", big, 0);
    }
    set_allocs = counter.load() - before;
    before = counter.load();
    for (int i = 0; i < 256; ++i) {
      ItemPtr item = store->Get("warm");
      ASSERT_NE(item, nullptr);
      auto view = MakeValueBuffer(std::move(item));
      ASSERT_EQ(view->Length(), big.size());
    }
    get_allocs = counter.load() - before;
  });
  EXPECT_EQ(set_allocs, 0u);
  EXPECT_EQ(get_allocs, 0u);
  DrainGracePeriods();
}

}  // namespace
}  // namespace ebbrt
