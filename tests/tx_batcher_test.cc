// TX corking / event-scoped send aggregation tests (ISSUE 2):
//
//   * manual Cork()/Uncork() nesting merges small writes into one wire segment;
//   * auto-cork flushes exactly once per event (flush-once invariant, via stats);
//   * a window-limited flush is partial and drains via the ACK path;
//   * Close() with corked data flushes the data before the FIN;
//   * property: the received byte stream is identical corked vs uncorked;
//   * acceptance: memcached at pipeline depth 32 serves the same byte stream with >= 4x
//     fewer TX data segments than at depth 1.
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/loadgen/memcached_loadgen.h"
#include "src/apps/memcached/server.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);

// Accumulates received bytes; closes when the peer closes.
class SinkHandler final : public TcpHandler {
 public:
  explicit SinkHandler(std::string* out = nullptr) : out_(out) {}
  void Receive(std::unique_ptr<IOBuf> data) override {
    if (out_ != nullptr) {
      *out_ += std::string(data->AsStringView());
    }
  }
  void Close() override { Pcb().Close(); }

 private:
  std::string* out_;
};

TEST(TxBatcher, CorkUncorkNestingAggregatesToOneSegment) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(9300, [&received](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(&received)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 9300).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
      pcb.Cork();
      EXPECT_TRUE(pcb.Corked());
      EXPECT_TRUE(pcb.Send(IOBuf::CopyBuffer("aa")));
      pcb.Cork();  // nested
      EXPECT_TRUE(pcb.Send(IOBuf::CopyBuffer("bb")));
      pcb.Uncork();  // inner: must NOT flush
      EXPECT_EQ(pcb.CorkedBytes(), 4u);
      EXPECT_TRUE(pcb.Send(IOBuf::CopyBuffer("cc")));
      pcb.Uncork();  // outer: flushes everything as one segment
      EXPECT_EQ(pcb.CorkedBytes(), 0u);
      EXPECT_FALSE(pcb.Corked());
    });
  });
  bed.world().Run();
  EXPECT_EQ(received, "aabbcc");
  // Three Sends, one wire segment, two of them merged into an existing cork chain.
  EXPECT_EQ(client.net->stats().tcp_tx_data_segments.load(), 1u);
  EXPECT_EQ(client.net->stats().sends_coalesced.load(), 2u);
  EXPECT_EQ(client.net->stats().cork_flushes.load(), 1u);
}

TEST(TxBatcher, AutoCorkFlushesOncePerEvent) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  constexpr std::size_t kResponses = 5;

  // Answers each received chain with kResponses small writes — all inside one Receive
  // event, so auto-cork must merge them into one segment flushed once.
  class BurstResponder final : public TcpHandler {
   public:
    void Receive(std::unique_ptr<IOBuf>) override {
      for (std::size_t i = 0; i < kResponses; ++i) {
        ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer("resp" + std::to_string(i) + "|")));
      }
      // Still corked inside the event: the flush happens at the event boundary.
      EXPECT_GT(Pcb().CorkedBytes(), 0u);
    }
  };

  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(9301, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<BurstResponder>()));
      pcb.SetAutoCork(true);
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 9301).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(&received)));
      pcb.Send(IOBuf::CopyBuffer("go"));
    });
  });
  bed.world().Run();
  EXPECT_EQ(received, "resp0|resp1|resp2|resp3|resp4|");
  // Flush-once-per-event: 5 sends, 1 data segment, 1 flush, 4 coalesced.
  EXPECT_EQ(server.net->stats().tcp_tx_data_segments.load(), 1u);
  EXPECT_EQ(server.net->stats().cork_flushes.load(), 1u);
  EXPECT_EQ(server.net->stats().sends_coalesced.load(), kResponses - 1);
  EXPECT_EQ(server.net->stats().corked_drops.load(), 0u);
}

TEST(TxBatcher, WindowLimitedPartialFlushDrainsViaAcks) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  const std::string payload(2000, 'w');
  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(9302, [&received](TcpPcb pcb) {
      // Clamp the advertised window below the corked chain: the client's flush must be
      // partial, the remainder draining as ACKs open the window again.
      pcb.SetReceiveWindow(512);
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(&received)));
    });
  });
  std::size_t corked_after_uncork = 0;
  auto client_pcb = std::make_shared<TcpPcb>();
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 9302).Then([&](Future<TcpPcb> f) {
      *client_pcb = f.Get();
      client_pcb->InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
      // Cork the full 2000 bytes while the handshake window (64 KiB) still allows it...
      client_pcb->Cork();
      EXPECT_TRUE(client_pcb->Send(IOBuf::CopyBuffer(payload)));
      EXPECT_EQ(client_pcb->CorkedBytes(), payload.size());
      // ...and uncork after the server's 512-byte window update has arrived.
      Timer::Instance()->Start(5'000'000, [&] {
        client_pcb->Uncork();
        corked_after_uncork = client_pcb->CorkedBytes();
      });
    });
  });
  bed.world().Run();
  // The flush was window-limited: only 512 bytes left at uncork time; the rest drained from
  // the ACK path, preserving order and content.
  EXPECT_EQ(corked_after_uncork, payload.size() - 512);
  EXPECT_EQ(received, payload);
  EXPECT_EQ(client_pcb->CorkedBytes(), 0u);
  EXPECT_GT(client.net->stats().cork_flushes.load(), 1u);
}

TEST(TxBatcher, CloseWithCorkedDataFlushesDataBeforeFin) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);

  // Sends a farewell and closes within the same Receive event: the corked farewell must
  // reach the peer before the FIN.
  class FarewellHandler final : public TcpHandler {
   public:
    void Receive(std::unique_ptr<IOBuf>) override {
      ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer("goodbye")));
      Pcb().Close();  // data still corked: FIN must follow the flush
    }
  };

  std::string received;
  bool peer_closed = false;
  std::string received_at_close;

  class ClosureObserver final : public TcpHandler {
   public:
    ClosureObserver(std::string& received, bool& closed, std::string& at_close)
        : received_(received), closed_(closed), at_close_(at_close) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      received_ += std::string(data->AsStringView());
    }
    void Close() override {
      closed_ = true;
      at_close_ = received_;  // what had arrived by the time the FIN was honored
      Pcb().Close();
    }

   private:
    std::string& received_;
    bool& closed_;
    std::string& at_close_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(9303, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<FarewellHandler>()));
      pcb.SetAutoCork(true);
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 9303).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(
          std::make_unique<ClosureObserver>(received, peer_closed, received_at_close)));
      pcb.Send(IOBuf::CopyBuffer("hi"));
    });
  });
  bed.world().Run();
  EXPECT_EQ(received, "goodbye");
  EXPECT_TRUE(peer_closed);
  EXPECT_EQ(received_at_close, "goodbye");  // FIN ordered after the flushed data
  EXPECT_EQ(server.net->stats().corked_drops.load(), 0u);
}

// A manual Cork() opened during one event must survive the event boundary on an auto-cork
// connection: the batcher's flush honors the open cork, and nothing leaves until Uncork().
TEST(TxBatcher, ManualCorkSpansEventBoundaryOnAutoCorkConnection) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);

  class SpanningCork final : public TcpHandler {
   public:
    void Receive(std::unique_ptr<IOBuf> data) override {
      if (data->AsStringView() == "open") {
        ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer("first|")));
        Pcb().Cork();  // held across this event's boundary
        ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer("second|")));
      } else {
        // Second event: the corked bytes must still be waiting, then leave as one chain.
        EXPECT_EQ(Pcb().CorkedBytes(), 13u);
        ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer("third")));
        Pcb().Uncork();
      }
    }
  };

  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(9305, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SpanningCork>()));
      pcb.SetAutoCork(true);
    });
  });
  auto client_pcb = std::make_shared<TcpPcb>();
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 9305).Then([&](Future<TcpPcb> f) {
      *client_pcb = f.Get();
      client_pcb->InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(&received)));
      client_pcb->Send(IOBuf::CopyBuffer("open"));
      Timer::Instance()->Start(5'000'000, [&] {
        // The cork is still open across events: nothing has reached us yet.
        EXPECT_EQ(received, "");
        client_pcb->Send(IOBuf::CopyBuffer("close"));
      });
    });
  });
  bed.world().Run();
  EXPECT_EQ(received, "first|second|third");
  // Everything left in ONE segment when the cork finally lifted.
  EXPECT_EQ(server.net->stats().tcp_tx_data_segments.load(), 1u);
}

// Close() with an unmatched manual Cork() open must not strand the corked data or the FIN:
// the close terminates the cork scope and the data precedes the FIN.
TEST(TxBatcher, CloseTerminatesOpenCorkScope) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string received;
  bool server_saw_close = false;

  class RecordingSink final : public TcpHandler {
   public:
    RecordingSink(std::string& out, bool& closed) : out_(out), closed_(closed) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      out_ += std::string(data->AsStringView());
    }
    void Close() override {
      closed_ = true;
      Pcb().Close();
    }

   private:
    std::string& out_;
    bool& closed_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(9306, [&](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(
          std::make_unique<RecordingSink>(received, server_saw_close)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 9306).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
      pcb.Cork();
      ASSERT_TRUE(pcb.Send(IOBuf::CopyBuffer("last words")));
      pcb.Close();   // the close must flush the data and then FIN
      pcb.Uncork();  // symmetric/RAII-style uncork after Close: must be a safe no-op
    });
  });
  bed.world().Run();
  EXPECT_EQ(received, "last words");
  EXPECT_TRUE(server_saw_close);
  EXPECT_EQ(client.net->stats().corked_drops.load(), 0u);
}

// --- Property: corked and uncorked transmissions deliver identical byte streams -------------

class CorkedStreamEquality : public ::testing::TestWithParam<unsigned> {};

TEST_P(CorkedStreamEquality, SameBytesFewerSegments) {
  // One message schedule per seed; sent once plain, once corked in groups. The receiver
  // must observe the identical stream; the corked run must use fewer data segments.
  std::mt19937 rng(GetParam());
  std::vector<std::string> messages;
  std::size_t total = 0;
  for (int i = 0; i < 40 && total < 24'000; ++i) {
    std::size_t len = 1 + rng() % 1200;
    std::string m(len, '\0');
    for (auto& c : m) {
      c = static_cast<char>('a' + rng() % 26);
    }
    total += len;
    messages.push_back(std::move(m));
  }

  auto run = [&messages](bool corked) {
    Testbed bed;
    TestbedNode server = bed.AddNode("server", 1, kServerIp);
    TestbedNode client = bed.AddNode("client", 1, kClientIp);
    auto received = std::make_shared<std::string>();
    server.Spawn(0, [&] {
      server.net->tcp().Listen(9304, [received](TcpPcb pcb) {
        pcb.InstallHandler(
            std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(received.get())));
      });
    });
    client.Spawn(0, [&] {
      client.net->tcp().Connect(*client.iface, kServerIp, 9304).Then([&](Future<TcpPcb> f) {
        TcpPcb pcb = f.Get();
        pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
        // Corked run: groups of 8 under a cork (with one nested level for good measure).
        for (std::size_t i = 0; i < messages.size(); ++i) {
          if (corked && i % 8 == 0) {
            pcb.Cork();
          }
          ASSERT_TRUE(pcb.Send(IOBuf::CopyBuffer(messages[i])));
          if (corked && (i % 8 == 7 || i + 1 == messages.size())) {
            pcb.Uncork();
          }
        }
      });
    });
    bed.world().Run();
    return std::make_pair(*received, client.net->stats().tcp_tx_data_segments.load());
  };

  auto [plain_bytes, plain_segments] = run(false);
  auto [corked_bytes, corked_segments] = run(true);
  ASSERT_EQ(plain_bytes.size(), corked_bytes.size());
  EXPECT_EQ(plain_bytes, corked_bytes);
  EXPECT_EQ(plain_segments, messages.size());  // Nagle-free: one segment per small send
  EXPECT_LT(corked_segments, plain_segments);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorkedStreamEquality, ::testing::Values(1u, 2u, 3u, 4u));

// --- Acceptance: the segments-per-op story on the real memcached server ---------------------

struct BurstRun {
  std::string bytes;
  std::uint64_t data_segments = 0;
  std::uint64_t sends_coalesced = 0;
  double bytes_per_segment = 0;
};

BurstRun RunMemcachedBurst(std::size_t depth, std::size_t total_requests) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  server.Spawn(0, [&] { new memcached::MemcachedServer(*server.net, 11211); });
  loadgen::MemcachedBurstClient::Config config;
  config.depth = depth;
  config.total_requests = total_requests;
  BurstRun run;
  bool done = false;
  loadgen::MemcachedBurstClient::Run(client, kServerIp, 11211, config)
      .Then([&](Future<loadgen::MemcachedBurstClient::Result> f) {
        run.bytes = f.Get().response_bytes;
        done = true;
      });
  bed.world().Run();
  EXPECT_TRUE(done);
  run.data_segments = server.net->stats().tcp_tx_data_segments.load();
  run.sends_coalesced = server.net->stats().sends_coalesced.load();
  run.bytes_per_segment = server.net->stats().bytes_per_segment();
  return run;
}

TEST(TxBatcher, MemcachedDepth32CutsSegmentsPerOpAtLeast4x) {
  constexpr std::size_t kRequests = 256;
  BurstRun depth1 = RunMemcachedBurst(1, kRequests);
  BurstRun depth32 = RunMemcachedBurst(32, kRequests);
  // Same request schedule => byte-identical response stream, regardless of batching.
  ASSERT_FALSE(depth1.bytes.empty());
  EXPECT_EQ(depth1.bytes, depth32.bytes);
  // The aggregation win: >= 4x fewer TX data segments at depth 32 (ISSUE 2 acceptance).
  EXPECT_GE(depth1.data_segments, 4 * depth32.data_segments)
      << "depth1=" << depth1.data_segments << " depth32=" << depth32.data_segments;
  EXPECT_GT(depth32.sends_coalesced, 0u);
  EXPECT_GT(depth32.bytes_per_segment, depth1.bytes_per_segment);
}

}  // namespace
}  // namespace ebbrt
