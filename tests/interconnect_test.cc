// Interconnect tests — the lock-free exchange-list mesh under deterministic SimWorld time.
//
// These pin the four properties the cross-core ports rely on:
//   * delivery: an all-to-all fan-in race loses nothing and lands every node on its target
//     core (the CAS publish path, contended from every other core at once);
//   * ordering: FIFO per sender — the LIFO push + drain-time reversal must never reorder two
//     nodes from the same sender (BufferPool returns and RCU markers depend on this);
//   * wake elision: a burst at a halted core pays exactly one WakeCore — the push that
//     displaces the idle sentinel — and every other push rides for free;
//   * teardown: undelivered nodes are Discarded (not leaked, not Fired) when the machine
//     dies with work still in flight.
#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/event/event_manager.h"
#include "src/event/interconnect.h"
#include "src/event/sim_world.h"

namespace ebbrt {
namespace {

EventManagerRoot& EmRoot(Runtime& rt) {
  return rt.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
}

TEST(Interconnect, FanInAllToAllDeliversEverything) {
  SimWorld world;
  Runtime& rt = world.AddMachine("mesh", 4);
  constexpr int kCores = 4;
  constexpr int kEach = 50;  // per (sender, target) pair
  auto arrived = std::make_shared<std::array<int, kCores>>();
  arrived->fill(0);
  auto wrong_core = std::make_shared<int>(0);
  for (int c = 0; c < kCores; ++c) {
    SimWorld::SpawnOn(rt, static_cast<std::size_t>(c), [&rt, arrived, wrong_core, c] {
      (void)rt;
      for (int t = 0; t < kCores; ++t) {
        if (t == c) {
          continue;
        }
        for (int i = 0; i < kEach; ++i) {
          event::Local().SpawnRemote(
              [arrived, wrong_core, t] {
                if (static_cast<int>(CurrentContext().machine_core) != t) {
                  ++*wrong_core;
                }
                ++(*arrived)[static_cast<std::size_t>(t)];
              },
              static_cast<std::size_t>(t));
        }
      }
    });
  }
  world.Run();
  EXPECT_EQ(*wrong_core, 0);
  for (int t = 0; t < kCores; ++t) {
    EXPECT_EQ((*arrived)[static_cast<std::size_t>(t)], (kCores - 1) * kEach)
        << "target core " << t;
  }
}

TEST(Interconnect, FifoPerSenderSurvivesConcurrentSenders) {
  SimWorld world;
  Runtime& rt = world.AddMachine("fifo", 4);
  constexpr int kMsgs = 100;
  // seqs[s] = the order in which core 0 observed sender s's messages.
  auto seqs = std::make_shared<std::array<std::vector<int>, 4>>();
  for (int s = 1; s <= 3; ++s) {
    SimWorld::SpawnOn(rt, static_cast<std::size_t>(s), [seqs, s] {
      for (int i = 0; i < kMsgs; ++i) {
        event::Local().SpawnRemote(
            [seqs, s, i] { (*seqs)[static_cast<std::size_t>(s)].push_back(i); }, 0);
      }
    });
  }
  world.Run();
  for (int s = 1; s <= 3; ++s) {
    auto& seq = (*seqs)[static_cast<std::size_t>(s)];
    ASSERT_EQ(seq.size(), static_cast<std::size_t>(kMsgs)) << "sender " << s;
    for (int i = 0; i < kMsgs; ++i) {
      ASSERT_EQ(seq[static_cast<std::size_t>(i)], i)
          << "sender " << s << " reordered at position " << i;
    }
  }
}

TEST(Interconnect, BurstAtHaltedCorePaysExactlyOneWakeup) {
  SimWorld world;
  Runtime& rt = world.AddMachine("burst", 1);
  EventManager& em = EmRoot(rt).RepFor(0);
  int ran = 0;
  // The world action runs with no machine context while core 0 has never been scheduled —
  // the mesh-level equivalent of a device bursting at a halted core. Only the push that
  // displaces the idle sentinel may pay for a wake.
  world.After(100, [&rt, &ran] {
    for (int i = 0; i < 100; ++i) {
      SimWorld::SpawnOn(rt, 0, [&ran] { ++ran; });
    }
  });
  world.Run();
  EXPECT_EQ(ran, 100);
  EventManager::Stats s = em.stats();
  EXPECT_EQ(s.xcore_pushes, 100u);
  EXPECT_EQ(s.xcore_spawns, 100u);
  EXPECT_EQ(s.xcore_wakeups, 1u);          // the sentinel-displacing push
  EXPECT_EQ(s.xcore_wakeups_elided, 99u);  // everyone else rode for free
  EXPECT_EQ(s.xcore_batches, 1u);          // one exchange drained the whole burst
  EXPECT_EQ(s.control_locks, 0u);          // structurally zero: no lock exists to count
}

// A node whose whole job is to record which disposal verb ran. Storage is the caller's —
// both verbs are storage no-ops, like every embedded node (VectorEntry, RCU Marker).
struct CountingNode final : InterconnectNode {
  void Fire(EventManager&) override { ++*fired; }
  void Discard() override { ++*discarded; }
  int* fired = nullptr;
  int* discarded = nullptr;
};

TEST(Interconnect, TeardownDiscardsUndeliveredNodes) {
  int fired = 0;
  int discarded = 0;
  std::array<CountingNode, 8> nodes;
  {
    SimWorld world;
    Runtime& rt = world.AddMachine("drain", 2);
    Interconnect& ic = EmRoot(rt).interconnect();
    for (CountingNode& node : nodes) {
      node.fired = &fired;
      node.discarded = &discarded;
      ic.Push(1, &node);
    }
    // No world.Run(): the machine tears down with every node still in flight.
  }
  EXPECT_EQ(fired, 0);      // teardown must not execute undelivered work...
  EXPECT_EQ(discarded, 8);  // ...but must dispose of every node exactly once
}

TEST(Interconnect, SecondBurstAfterQuiescencePaysItsOwnWakeup) {
  SimWorld world;
  Runtime& rt = world.AddMachine("requiesce", 1);
  EventManager& em = EmRoot(rt).RepFor(0);
  int ran = 0;
  // Two bursts separated by enough virtual time that the core drains, finds nothing, and
  // re-marks itself idle in between (well past the first burst's ~500ns-per-event slice —
  // a near gap would catch the core yielded-with-wake-in-flight, which rightly elides).
  // Each burst must pay exactly one wake.
  for (std::uint64_t at : {100u, 1'000'000u}) {
    world.At(at, [&rt, &ran] {
      for (int i = 0; i < 10; ++i) {
        SimWorld::SpawnOn(rt, 0, [&ran] { ++ran; });
      }
    });
  }
  world.Run();
  EXPECT_EQ(ran, 20);
  EventManager::Stats s = em.stats();
  EXPECT_EQ(s.xcore_pushes, 20u);
  EXPECT_EQ(s.xcore_wakeups, 2u);  // one sentinel displacement per burst
  EXPECT_EQ(s.xcore_wakeups_elided, 18u);
}

}  // namespace
}  // namespace ebbrt
