// Sharded memcached tests: the consistent-hash ring's determinism and balance, GlobalIdMap
// discovery plumbing, and the end-to-end router -> shard datapath (values round-trip, keys
// land on the ring-chosen shard, misses surface as found=false).
#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/memcached/shard.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using memcached::ShardEndpoint;
using memcached::ShardHash;

TEST(ShardRecord, EncodeParseRoundTrip) {
  std::string record = memcached::EncodeShardRecord(Ipv4Addr::Of(10, 0, 0, 21),
                                                    memcached::kShardServiceBase + 1);
  ShardEndpoint endpoint;
  ASSERT_TRUE(memcached::ParseShardRecord(record, &endpoint));
  EXPECT_EQ(endpoint.addr.raw, Ipv4Addr::Of(10, 0, 0, 21).raw);
  EXPECT_EQ(endpoint.service, memcached::kShardServiceBase + 1);

  EXPECT_FALSE(memcached::ParseShardRecord("not-a-record", &endpoint));
  EXPECT_FALSE(memcached::ParseShardRecord("10.0.0.1", &endpoint));       // no service id
  EXPECT_FALSE(memcached::ParseShardRecord("999.0.0.1#40", &endpoint));   // bad octet
  EXPECT_FALSE(memcached::ParseShardRecord("10.0.0.1#0", &endpoint));     // null service
}

TEST(ShardHashTest, Fnv1aFmixIsDeterministic) {
  // The ring must place identically on every platform/stdlib — pin the function itself.
  EXPECT_EQ(ShardHash(""), 17280346270528514342ull);
  EXPECT_EQ(ShardHash("a"), 9413272369427828315ull);
  EXPECT_EQ(ShardHash("user:0"), ShardHash(std::string("user:0")));
  EXPECT_NE(ShardHash("user:0"), ShardHash("user:1"));
  // The finalizer property the ring depends on: near-identical short keys must differ in
  // the high bits, not just the low ones.
  EXPECT_NE(ShardHash("user:0") >> 48, ShardHash("user:1") >> 48);
}

class ShardWorldTest : public ::testing::Test {
 protected:
  static constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);

  // Brings up frontend + `n` shard machines with announced services, and a client node.
  void BuildWorld(std::size_t n) {
    frontend_ = std::make_unique<sim::TestbedNode>(
        bed_.AddNode("frontend", 1, kFrontendIp, sim::HypervisorModel::Native(),
                     RuntimeKind::kHosted));
    for (std::size_t i = 0; i < n; ++i) {
      shard_nodes_.push_back(bed_.AddNode("shard" + std::to_string(i), 1,
                                          Ipv4Addr::Of(10, 0, 0, 20 + (unsigned)i)));
    }
    client_ = std::make_unique<sim::TestbedNode>(
        bed_.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3),
                     sim::HypervisorModel::Native()));
    frontend_->Spawn(0, [this] { dist::GlobalIdMap::ServeOn(*frontend_->runtime); });
    services_.resize(n, nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      sim::TestbedNode node = shard_nodes_[i];
      node.Spawn(0, [this, node, i] {
        auto service = std::make_shared<memcached::ShardService>(*node.runtime, i);
        services_[i] = service.get();
        node.runtime->Adopt(std::move(service));  // dies with the machine, not never
        memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
            .Then([](Future<void> f) { f.Get(); });
      });
    }
  }

  sim::Testbed bed_;
  std::unique_ptr<sim::TestbedNode> frontend_;
  std::vector<sim::TestbedNode> shard_nodes_;
  std::unique_ptr<sim::TestbedNode> client_;
  std::vector<memcached::ShardService*> services_;
  std::vector<std::string> batch_keys_;  // stable storage for MultiGet string_views
};

TEST_F(ShardWorldTest, DiscoverRouteAndRoundTrip) {
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kKeys = 48;
  BuildWorld(kShards);
  std::unique_ptr<memcached::ShardRouter> router;
  std::size_t verified = 0;
  bool missing_found = false;
  bool done = false;
  client_->Spawn(0, [&] {
    memcached::DiscoverShards(*client_->runtime, kFrontendIp, kShards)
        .Then([&](Future<std::vector<ShardEndpoint>> f) {
          std::vector<ShardEndpoint> endpoints = f.Get();
          ASSERT_EQ(endpoints.size(), kShards);
          router = std::make_unique<memcached::ShardRouter>(*client_->runtime,
                                                            std::move(endpoints));
          auto step = std::make_shared<std::function<void(std::size_t, int)>>();
          *step = [&, step](std::size_t index, int phase) {
            if (index == kKeys) {
              if (phase == 0) {
                (*step)(0, 1);
                return;
              }
              // Phase 2: a key nobody wrote comes back found=false, not an error.
              router->Get("never-written").Then(
                  [&, step](Future<memcached::ShardRouter::GetResult> gf) {
                    memcached::ShardRouter::GetResult result = gf.Get();
                    missing_found = result.found;
                    done = true;
                    *step = nullptr;
                  });
              return;
            }
            std::string key = "k" + std::to_string(index);
            if (phase == 0) {
              router->Set(key, "v" + std::to_string(index)).Then([&, step, index](
                                                                     Future<void> sf) {
                sf.Get();
                (*step)(index + 1, 0);
              });
            } else {
              router->Get(key).Then([&, step, index](
                                        Future<memcached::ShardRouter::GetResult> gf) {
                memcached::ShardRouter::GetResult result = gf.Get();
                if (result.found &&
                    dist::ChainToString(result.value.get()) ==
                        "v" + std::to_string(index)) {
                  ++verified;
                }
                (*step)(index + 1, 1);
              });
            }
          };
          (*step)(0, 0);
        });
  });
  bed_.world().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(verified, kKeys);
  EXPECT_FALSE(missing_found);

  // Every key landed on exactly the shard the ring names, and every shard took part.
  std::map<std::size_t, std::size_t> expected_per_shard;
  for (std::size_t i = 0; i < kKeys; ++i) {
    expected_per_shard[router->ShardFor("k" + std::to_string(i))]++;
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(services_[s]->store().size(), expected_per_shard[s]) << "shard " << s;
    EXPECT_GT(services_[s]->requests(), 0u) << "shard " << s;
  }
}

TEST_F(ShardWorldTest, DiscoveryFailsCleanlyWhenShardMissing) {
  // Only 2 shards announce; asking for 3 must fail through the future (no infinite retry).
  BuildWorld(2);
  bool failed = false;
  client_->Spawn(0, [&] {
    memcached::DiscoverShards(*client_->runtime, kFrontendIp, 3)
        .Then([&](Future<std::vector<ShardEndpoint>> f) {
          try {
            f.Get();
          } catch (const std::runtime_error&) {
            failed = true;
          }
        });
  });
  bed_.world().Run();
  EXPECT_TRUE(failed);
}

TEST_F(ShardWorldTest, MultiGetSpansShardsWithMissesAndDuplicates) {
  // One batch mixing hits across every shard, a never-written key, and a duplicate: results
  // come back in request order, the miss is found=false (the batch itself succeeds), the
  // duplicate is answered per occurrence — and each shard touched saw exactly ONE RPC frame
  // for the whole batch (the scatter-gather contract).
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kKeys = 12;
  BuildWorld(kShards);
  std::unique_ptr<memcached::ShardRouter> router;
  std::vector<memcached::ShardRouter::GetResult> results;
  std::vector<std::uint64_t> frames_before(kShards, 0);
  bool done = false;
  client_->Spawn(0, [&] {
    memcached::DiscoverShards(*client_->runtime, kFrontendIp, kShards)
        .Then([&](Future<std::vector<ShardEndpoint>> f) {
          router = std::make_unique<memcached::ShardRouter>(*client_->runtime, f.Get());
          auto preload = std::make_shared<std::function<void(std::size_t)>>();
          *preload = [&, preload](std::size_t index) {
            if (index == kKeys) {
              for (std::size_t s = 0; s < kShards; ++s) {
                frames_before[s] = services_[s]->requests();
              }
              std::vector<std::string_view> keys;
              for (std::size_t i = 0; i < kKeys; ++i) {
                keys.push_back(batch_keys_[i]);
              }
              keys.push_back("never-written");
              keys.push_back(batch_keys_[0]);  // duplicate of slot 0
              router->MultiGet(keys).Then(
                  [&, preload](Future<std::vector<memcached::ShardRouter::GetResult>> bf) {
                    results = bf.Get();
                    done = true;
                    *preload = nullptr;  // break the self-capture cycle (not re-entrantly)
                  });
              return;
            }
            batch_keys_.push_back("mg" + std::to_string(index));
            router->Set(batch_keys_.back(), "val" + std::to_string(index))
                .Then([&, preload, index](Future<void> sf) {
                  sf.Get();
                  (*preload)(index + 1);
                });
          };
          (*preload)(0);
        });
  });
  bed_.world().Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(results.size(), kKeys + 2);
  for (std::size_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(results[i].found) << "key " << i;
    EXPECT_EQ(dist::ChainToString(results[i].value.get()), "val" + std::to_string(i));
  }
  EXPECT_FALSE(results[kKeys].found);           // miss, not an error
  EXPECT_EQ(results[kKeys].value, nullptr);
  ASSERT_TRUE(results[kKeys + 1].found);        // duplicate answered per occurrence
  EXPECT_EQ(dist::ChainToString(results[kKeys + 1].value.get()), "val0");
  // The schedule spans every shard (12 striped keys over 3 shards), and the batch cost each
  // touched shard exactly one frame.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(services_[s]->requests() - frames_before[s], 1u) << "shard " << s;
  }
}

TEST_F(ShardWorldTest, MultiGetAllKeysOnOneShardShipsOneRpc) {
  constexpr std::size_t kShards = 3;
  BuildWorld(kShards);
  std::unique_ptr<memcached::ShardRouter> router;
  std::vector<memcached::ShardRouter::GetResult> results;
  std::vector<std::uint64_t> frames_before(kShards, 0);
  std::size_t target_shard = 0;
  std::vector<std::string> keys_storage;
  bool empty_done = false;
  bool done = false;
  client_->Spawn(0, [&] {
    memcached::DiscoverShards(*client_->runtime, kFrontendIp, kShards)
        .Then([&](Future<std::vector<ShardEndpoint>> f) {
          router = std::make_unique<memcached::ShardRouter>(*client_->runtime, f.Get());
          // Pick keys that the ring itself maps to one shard (placement is deterministic
          // but not enumerable by hand — ask the router).
          target_shard = router->ShardFor("pin:0");
          for (std::size_t i = 0; keys_storage.size() < 5; ++i) {
            std::string key = "pin:" + std::to_string(i);
            if (router->ShardFor(key) == target_shard) {
              keys_storage.push_back(std::move(key));
            }
          }
          auto preload = std::make_shared<std::function<void(std::size_t)>>();
          *preload = [&, preload](std::size_t index) {
            if (index == keys_storage.size()) {
              // An empty batch resolves immediately with no results and no wire traffic.
              router->MultiGet({}).Then(
                  [&](Future<std::vector<memcached::ShardRouter::GetResult>> ef) {
                    empty_done = ef.Get().empty();
                  });
              for (std::size_t s = 0; s < kShards; ++s) {
                frames_before[s] = services_[s]->requests();
              }
              std::vector<std::string_view> keys(keys_storage.begin(), keys_storage.end());
              router->MultiGet(keys).Then(
                  [&, preload](Future<std::vector<memcached::ShardRouter::GetResult>> bf) {
                    results = bf.Get();
                    done = true;
                    *preload = nullptr;  // break the self-capture cycle (not re-entrantly)
                  });
              return;
            }
            router->Set(keys_storage[index], "pinned")
                .Then([&, preload, index](Future<void> sf) {
                  sf.Get();
                  (*preload)(index + 1);
                });
          };
          (*preload)(0);
        });
  });
  bed_.world().Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(empty_done);
  ASSERT_EQ(results.size(), keys_storage.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.found);
  }
  // Exactly one frame, and only on the shard the ring named.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(services_[s]->requests() - frames_before[s],
              s == target_shard ? 1u : 0u)
        << "shard " << s;
  }
}

TEST(MultiGetReply, RoundTripIsZeroCopy) {
  // The no-memcpy pin for the gather side: parse a reply whose values live in known storage
  // and assert the parsed views are the SAME bytes (same data pointers, shared storage) —
  // not copies. A second live view (the clone) makes the share count observable.
  const std::string v0(100, 'a');
  const std::string v2(1000, 'c');
  std::vector<std::unique_ptr<IOBuf>> values;
  values.push_back(IOBuf::CopyBuffer(v0));
  values.push_back(nullptr);  // miss
  values.push_back(IOBuf::CopyBuffer(v2));
  const std::uint8_t* v0_data = values[0]->Data();
  const std::uint8_t* v2_data = values[2]->Data();
  auto reply = memcached::BuildMultiGetReply(std::move(values));
  ASSERT_NE(reply, nullptr);
  auto clone = reply->Clone();  // second view of the same storage, held across the parse
  std::vector<memcached::ShardRouter::GetResult> results;
  ASSERT_TRUE(memcached::ParseMultiGetReply(std::move(reply), 3, &results));
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].found);
  ASSERT_TRUE(results[2].found);
  EXPECT_FALSE(results[1].found);
  EXPECT_EQ(results[1].value, nullptr);
  // Same bytes, not equal bytes: the parsed value views point INTO the reply's storage.
  ASSERT_NE(results[0].value, nullptr);
  ASSERT_NE(results[2].value, nullptr);
  EXPECT_EQ(results[0].value->Data(), v0_data);
  EXPECT_EQ(results[2].value->Data(), v2_data);
  EXPECT_EQ(dist::ChainToString(results[0].value.get()), v0);
  EXPECT_EQ(dist::ChainToString(results[2].value.get()), v2);
  // And the storage is shared (parsed view + clone's view at least), not re-owned.
  EXPECT_GE(results[0].value->StorageRefCount(), 2u);
  EXPECT_GE(results[2].value->StorageRefCount(), 2u);
}

TEST(MultiGetReply, MalformedRepliesRejected) {
  std::vector<memcached::ShardRouter::GetResult> results;
  // Fewer records than expected.
  {
    std::vector<std::unique_ptr<IOBuf>> values;
    values.push_back(IOBuf::CopyBuffer(std::string(8, 'x')));
    auto reply = memcached::BuildMultiGetReply(std::move(values));
    EXPECT_FALSE(memcached::ParseMultiGetReply(std::move(reply), 2, &results));
  }
  // Trailing bytes beyond the declared records.
  {
    std::vector<std::unique_ptr<IOBuf>> values;
    values.push_back(IOBuf::CopyBuffer(std::string(8, 'x')));
    auto reply = memcached::BuildMultiGetReply(std::move(values));
    reply->AppendChain(IOBuf::CopyBuffer("junk"));
    EXPECT_FALSE(memcached::ParseMultiGetReply(std::move(reply), 1, &results));
  }
  // Value bytes run short of the declared length (truncated chain).
  {
    auto word = IOBuf::CreateReserve(sizeof(std::uint32_t), 0);
    word->Append(sizeof(std::uint32_t));
    std::uint32_t w = HostToNet32(memcached::kMultiGetFoundBit | 64);
    std::memcpy(word->WritableData(), &w, sizeof(w));
    word->AppendChain(IOBuf::CopyBuffer(std::string(10, 'y')));  // 10 < declared 64
    EXPECT_FALSE(memcached::ParseMultiGetReply(std::move(word), 1, &results));
  }
  // An empty reply against a zero-key expectation parses (and exactly consumes).
  EXPECT_TRUE(memcached::ParseMultiGetReply(nullptr, 0, &results));
  EXPECT_TRUE(results.empty());
}

TEST(ShardRing, BalanceAndDeterminismWithoutAWorld) {
  // The ring is pure computation: check placement balance for the bench's key schedule at 4
  // shards (the CI gate's shape) without bringing up machines. Build a router against a
  // throwaway runtime? No — ring placement is a free function of (shards, vnodes), so
  // recompute it the way ShardRouter does and assert the distribution.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kVnodes = 128;
  constexpr std::size_t kKeys = 256;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring;
  for (std::size_t i = 0; i < kShards; ++i) {
    for (std::size_t v = 0; v < kVnodes; ++v) {
      ring.emplace_back(
          ShardHash("shard/" + std::to_string(i) + "/vnode/" + std::to_string(v)),
          static_cast<std::uint32_t>(i));
    }
  }
  std::sort(ring.begin(), ring.end());
  std::vector<std::size_t> counts(kShards, 0);
  for (std::size_t k = 0; k < kKeys; ++k) {
    std::uint64_t h = ShardHash("user:" + std::to_string(k));
    auto it = std::upper_bound(ring.begin(), ring.end(),
                               std::make_pair(h, std::uint32_t{0xffffffff}));
    if (it == ring.end()) {
      it = ring.begin();
    }
    counts[it->second]++;
  }
  std::size_t total = 0;
  std::size_t max = 0;
  for (std::size_t c : counts) {
    total += c;
    max = std::max(max, c);
    EXPECT_GT(c, 0u);  // no shard starves
  }
  EXPECT_EQ(total, kKeys);
  double imbalance = static_cast<double>(max) / (static_cast<double>(total) / kShards) - 1.0;
  // The CI smoke gate allows 25%; the pinned schedule must clear it with margin.
  EXPECT_LE(imbalance, 0.25);
}

}  // namespace
}  // namespace ebbrt
