// Tests for monadic futures (§3.5): Then chaining, synchronous fast path, flattening,
// exception flow, WhenAll.
#include "src/future/future.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ebbrt {
namespace {

TEST(Future, ReadyFutureGet) {
  auto f = MakeReadyFuture<int>(42);
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(f.Get(), 42);
}

TEST(Future, PromiseFulfillsLater) {
  Promise<std::string> p;
  auto f = p.GetFuture();
  EXPECT_FALSE(f.Ready());
  p.SetValue("hello");
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(f.Get(), "hello");
}

TEST(Future, ThenOnReadyRunsSynchronously) {
  // Figure 2: when the ARP translation is cached, the continuation runs inline.
  bool ran = false;
  MakeReadyFuture<int>(7).Then([&ran](Future<int> f) {
    EXPECT_EQ(f.Get(), 7);
    ran = true;
  });
  EXPECT_TRUE(ran);  // before Then returned
}

TEST(Future, ThenOnPendingDeferred) {
  Promise<int> p;
  bool ran = false;
  p.GetFuture().Then([&ran](Future<int> f) {
    EXPECT_EQ(f.Get(), 1);
    ran = true;
  });
  EXPECT_FALSE(ran);
  p.SetValue(1);
  EXPECT_TRUE(ran);
}

TEST(Future, ThenReturnsTransformedValue) {
  auto doubled = MakeReadyFuture<int>(21).Then([](Future<int> f) { return f.Get() * 2; });
  ASSERT_TRUE(doubled.Ready());
  EXPECT_EQ(doubled.Get(), 42);
}

TEST(Future, ChainedThens) {
  Promise<int> p;
  auto result = p.GetFuture()
                    .Then([](Future<int> f) { return f.Get() + 1; })
                    .Then([](Future<int> f) { return f.Get() * 10; })
                    .Then([](Future<int> f) { return std::to_string(f.Get()); });
  p.SetValue(3);
  ASSERT_TRUE(result.Ready());
  EXPECT_EQ(result.Get(), "40");
}

TEST(Future, MonadicFlattening) {
  // A continuation returning Future<U> yields Future<U>, not Future<Future<U>>.
  Promise<int> outer;
  Promise<std::string> inner;
  Future<std::string> flat = outer.GetFuture().Then(
      [&inner](Future<int>) { return inner.GetFuture(); });
  EXPECT_FALSE(flat.Ready());
  outer.SetValue(1);
  EXPECT_FALSE(flat.Ready());  // waits for the inner future
  inner.SetValue("deep");
  ASSERT_TRUE(flat.Ready());
  EXPECT_EQ(flat.Get(), "deep");
}

TEST(Future, ExceptionPropagatesToGet) {
  auto f = MakeFailedFuture<int>(std::make_exception_ptr(std::runtime_error("boom")));
  ASSERT_TRUE(f.Ready());
  EXPECT_THROW(f.Get(), std::runtime_error);
}

TEST(Future, ExceptionFlowsThroughIntermediateThens) {
  // Paper: "any intermediate exceptions will naturally flow to the first function which
  // attempts to catch the exception" — intermediate continuations that just Get() pass the
  // error along to the final handler.
  Promise<int> p;
  std::string caught;
  p.GetFuture()
      .Then([](Future<int> f) { return f.Get() + 1; })   // rethrows internally
      .Then([](Future<int> f) { return f.Get() * 2; })   // never produces a value
      .Then([&caught](Future<int> f) {
        try {
          f.Get();
        } catch (const std::runtime_error& e) {
          caught = e.what();
        }
      });
  p.SetException(std::make_exception_ptr(std::runtime_error("arp failed")));
  EXPECT_EQ(caught, "arp failed");
}

TEST(Future, ThrowInsideContinuationCapturedInResult) {
  auto f = MakeReadyFuture<int>(1).Then(
      [](Future<int>) -> int { throw std::logic_error("bad"); });
  ASSERT_TRUE(f.Ready());
  EXPECT_THROW(f.Get(), std::logic_error);
}

TEST(Future, VoidFutureCompletion) {
  Promise<void> p;
  bool done = false;
  p.GetFuture().Then([&done](Future<void> f) {
    f.Get();
    done = true;
  });
  p.SetValue();
  EXPECT_TRUE(done);
}

TEST(Future, VoidChainsToValue) {
  auto f = MakeReadyFuture<void>().Then([](Future<void> fv) {
    fv.Get();
    return 5;
  });
  EXPECT_EQ(f.Get(), 5);
}

TEST(Future, MoveOnlyValue) {
  Promise<std::unique_ptr<int>> p;
  auto f = p.GetFuture().Then([](Future<std::unique_ptr<int>> f) { return *f.Get(); });
  p.SetValue(std::make_unique<int>(11));
  EXPECT_EQ(f.Get(), 11);
}

TEST(Future, AsyncHelperCapturesThrow) {
  auto f = AsyncHelper([]() -> int { throw std::runtime_error("sync throw"); });
  EXPECT_THROW(f.Get(), std::runtime_error);
}

TEST(Future, AsyncHelperFlattens) {
  auto f = AsyncHelper([] { return MakeReadyFuture<int>(9); });
  static_assert(std::is_same_v<decltype(f), Future<int>>);
  EXPECT_EQ(f.Get(), 9);
}

TEST(Future, WhenAllCollectsInOrder) {
  std::vector<Promise<int>> promises(3);
  std::vector<Future<int>> futures;
  for (auto& p : promises) {
    futures.push_back(p.GetFuture());
  }
  auto all = WhenAll(std::move(futures));
  promises[2].SetValue(30);
  promises[0].SetValue(10);
  EXPECT_FALSE(all.Ready());
  promises[1].SetValue(20);
  ASSERT_TRUE(all.Ready());
  EXPECT_EQ(all.Get(), (std::vector<int>{10, 20, 30}));
}

TEST(Future, WhenAllEmptyIsReady) {
  auto all = WhenAll(std::vector<Future<int>>{});
  EXPECT_TRUE(all.Ready());
}

TEST(Future, WhenAllPropagatesFirstError) {
  std::vector<Promise<int>> promises(2);
  std::vector<Future<int>> futures;
  for (auto& p : promises) {
    futures.push_back(p.GetFuture());
  }
  auto all = WhenAll(std::move(futures));
  promises[0].SetException(std::make_exception_ptr(std::runtime_error("e0")));
  promises[1].SetValue(2);
  ASSERT_TRUE(all.Ready());
  EXPECT_THROW(all.Get(), std::runtime_error);
}

TEST(Future, WhenAllVoid) {
  std::vector<Promise<void>> promises(4);
  std::vector<Future<void>> futures;
  for (auto& p : promises) {
    futures.push_back(p.GetFuture());
  }
  auto all = WhenAll(std::move(futures));
  for (auto& p : promises) {
    p.SetValue();
  }
  ASSERT_TRUE(all.Ready());
  EXPECT_NO_THROW(all.Get());
}

TEST(Future, WhenAllVoidEmptyIsReady) {
  auto all = WhenAll(std::vector<Future<void>>{});
  ASSERT_TRUE(all.Ready());
  EXPECT_NO_THROW(all.Get());
}

TEST(Future, WhenAllAlreadyReadyMembersJoinSynchronously) {
  // A join over members that are ALL already fulfilled must itself be ready before WhenAll
  // returns — no deferred hop, the same synchronous fast path a single ready Then takes.
  std::vector<Future<int>> futures;
  futures.push_back(MakeReadyFuture<int>(1));
  futures.push_back(MakeReadyFuture<int>(2));
  futures.push_back(MakeReadyFuture<int>(3));
  auto all = WhenAll(std::move(futures));
  ASSERT_TRUE(all.Ready());
  EXPECT_EQ(all.Get(), (std::vector<int>{1, 2, 3}));

  std::vector<Future<void>> voids;
  voids.push_back(MakeReadyFuture<void>());
  voids.push_back(MakeReadyFuture<void>());
  auto all_void = WhenAll(std::move(voids));
  ASSERT_TRUE(all_void.Ready());
  EXPECT_NO_THROW(all_void.Get());
}

TEST(Future, WhenAllMixedReadyAndPending) {
  // Ready members join inline; the aggregate still waits for the stragglers.
  Promise<int> straggler;
  std::vector<Future<int>> futures;
  futures.push_back(MakeReadyFuture<int>(10));
  futures.push_back(straggler.GetFuture());
  futures.push_back(MakeReadyFuture<int>(30));
  auto all = WhenAll(std::move(futures));
  EXPECT_FALSE(all.Ready());
  straggler.SetValue(20);
  ASSERT_TRUE(all.Ready());
  EXPECT_EQ(all.Get(), (std::vector<int>{10, 20, 30}));
}

TEST(Future, WhenAllErrorDoesNotLeakOtherMembersState) {
  // One member failing must not leak the join state or the other members' values: once
  // every member completes and the aggregate fulfills (with the first error), everything
  // the join captured is released.
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> watch = sentinel;
  {
    std::vector<Promise<std::shared_ptr<int>>> promises(3);
    std::vector<Future<std::shared_ptr<int>>> futures;
    for (auto& p : promises) {
      futures.push_back(p.GetFuture());
    }
    auto all = WhenAll(std::move(futures));
    promises[1].SetException(std::make_exception_ptr(std::runtime_error("mid failed")));
    promises[0].SetValue(sentinel);
    sentinel.reset();
    EXPECT_FALSE(all.Ready());  // first-error-wins, but only after ALL members complete
    EXPECT_FALSE(watch.expired());  // straggler outstanding: the join still holds the slot
    promises[2].SetValue(nullptr);
    ASSERT_TRUE(all.Ready());
    // The failed aggregate carries the error, not the values: the gather state (and every
    // successful member's value it held) is released the moment the last member completes.
    EXPECT_TRUE(watch.expired());
    EXPECT_THROW(all.Get(), std::runtime_error);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(Future, WhenAllMoveOnlyValues) {
  std::vector<Promise<std::unique_ptr<int>>> promises(2);
  std::vector<Future<std::unique_ptr<int>>> futures;
  for (auto& p : promises) {
    futures.push_back(p.GetFuture());
  }
  auto all = WhenAll(std::move(futures));
  promises[1].SetValue(std::make_unique<int>(2));
  promises[0].SetValue(std::make_unique<int>(1));
  ASSERT_TRUE(all.Ready());
  auto values = all.Get();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(*values[0], 1);
  EXPECT_EQ(*values[1], 2);
}

TEST(Future, CrossThreadFulfillRace) {
  // SetValue and Then race from different threads; every continuation must run exactly once.
  constexpr int kIters = 2000;
  std::atomic<int> ran{0};
  for (int i = 0; i < kIters; ++i) {
    Promise<int> p;
    auto f = p.GetFuture();
    std::thread setter([&p, i] { p.SetValue(i); });
    f.Then([&ran](Future<int> f) {
      f.Get();
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    setter.join();
  }
  EXPECT_EQ(ran.load(), kIters);
}

}  // namespace
}  // namespace ebbrt
