// Tests for the Ebb model: translation, per-core representatives, roots, hosted mode.
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/ebb_allocator.h"
#include "src/core/ebb_ref.h"
#include "src/core/multicore_ebb.h"
#include "src/core/runtime.h"

namespace ebbrt {
namespace {

// A per-core counter Ebb with no root.
class Counter : public MulticoreEbb<Counter, void> {
 public:
  void Add(int n) { count_ += n; }
  int Get() const { return count_; }

 private:
  int count_ = 0;
};

// Per-core rep sharing a per-machine root that tallies rep constructions.
struct TallyRoot {
  std::atomic<int> reps_created{0};
};

class Tally : public MulticoreEbb<Tally, TallyRoot> {
 public:
  explicit Tally(TallyRoot& root) : root_(root) { root.reps_created.fetch_add(1); }
  TallyRoot& root() { return root_; }

 private:
  TallyRoot& root_;
};

// Machine-wide shared Ebb.
class Registry : public SharedEbb<Registry> {
 public:
  void Put(int v) { values_.insert(v); }
  std::size_t Size() const { return values_.size(); }

 private:
  std::set<int> values_;
};

class EbbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<Runtime>(RuntimeKind::kNative, "test");
    first_core_ = runtime_->AddCores(4);
  }

  std::unique_ptr<Runtime> runtime_;
  std::size_t first_core_;
};

TEST_F(EbbTest, RepIsPerCore) {
  EbbRef<Counter> counter(kFirstStaticUserId);
  {
    ScopedContext ctx(*runtime_, first_core_, 0, false);
    counter->Add(5);
    EXPECT_EQ(counter->Get(), 5);
  }
  {
    ScopedContext ctx(*runtime_, first_core_ + 1, 1, false);
    EXPECT_EQ(counter->Get(), 0);  // fresh rep on another core
    counter->Add(7);
    EXPECT_EQ(counter->Get(), 7);
  }
  {
    ScopedContext ctx(*runtime_, first_core_, 0, false);
    EXPECT_EQ(counter->Get(), 5);  // first core's rep persisted
  }
}

TEST_F(EbbTest, FastPathReturnsSameRep) {
  EbbRef<Counter> counter(kFirstStaticUserId + 1);
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  Counter* a = &counter.GetRep();
  Counter* b = &counter.GetRep();
  EXPECT_EQ(a, b);
}

TEST_F(EbbTest, RootSharedAcrossCores) {
  EbbRef<Tally> tally(kFirstStaticUserId + 2);
  TallyRoot* root = nullptr;
  for (int core = 0; core < 4; ++core) {
    ScopedContext ctx(*runtime_, first_core_ + core, core, false);
    TallyRoot& r = tally->root();
    if (root == nullptr) {
      root = &r;
    } else {
      EXPECT_EQ(root, &r);  // every rep sees the same machine root
    }
  }
  EXPECT_EQ(root->reps_created.load(), 4);
}

TEST_F(EbbTest, ExplicitRootInstall) {
  auto* root = new TallyRoot();
  EbbRef<Tally> tally;
  {
    ScopedContext ctx(*runtime_, first_core_, 0, false);
    tally = Tally::Create(root, kFirstStaticUserId + 3);
    tally->root();
  }
  EXPECT_EQ(root->reps_created.load(), 1);
}

TEST_F(EbbTest, SharedEbbSingleInstance) {
  EbbRef<Registry> reg(kFirstStaticUserId + 4);
  {
    ScopedContext ctx(*runtime_, first_core_, 0, false);
    reg->Put(1);
  }
  {
    ScopedContext ctx(*runtime_, first_core_ + 2, 2, false);
    reg->Put(2);
    EXPECT_EQ(reg->Size(), 2u);  // same instance seen from another core
  }
}

TEST_F(EbbTest, DistinctIdsDistinctReps) {
  EbbRef<Counter> a(kFirstStaticUserId + 5);
  EbbRef<Counter> b(kFirstStaticUserId + 6);
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  a->Add(1);
  b->Add(2);
  EXPECT_EQ(a->Get(), 1);
  EXPECT_EQ(b->Get(), 2);
}

TEST_F(EbbTest, SeparateMachinesSeparateRoots) {
  Runtime other(RuntimeKind::kNative, "other");
  std::size_t other_core = other.AddCores(1);
  EbbRef<Tally> tally(kFirstStaticUserId + 7);
  TallyRoot* root_a;
  TallyRoot* root_b;
  {
    ScopedContext ctx(*runtime_, first_core_, 0, false);
    root_a = &tally->root();
  }
  {
    ScopedContext ctx(other, other_core, 0, false);
    root_b = &tally->root();
  }
  EXPECT_NE(root_a, root_b);  // per-machine roots, same EbbId (paper's shared namespace)
}

TEST_F(EbbTest, HostedModeTranslates) {
  Runtime hosted(RuntimeKind::kHosted, "frontend");
  std::size_t hcore = hosted.AddCores(2);
  EbbRef<Counter> counter(kFirstStaticUserId + 8);
  {
    ScopedContext ctx(hosted, hcore, 0, true);
    counter->Add(3);
    EXPECT_EQ(counter->Get(), 3);  // hash-cache hit returns the same rep
  }
  {
    ScopedContext ctx(hosted, hcore + 1, 1, true);
    EXPECT_EQ(counter->Get(), 0);  // still per-core reps in hosted mode
  }
}

TEST_F(EbbTest, EbbAllocatorUniqueIds) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  auto allocator = EbbAllocator::Instance();
  std::set<EbbId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.insert(allocator->AllocateLocal());
  }
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_GE(*ids.begin(), kFirstFreeId);
}

TEST_F(EbbTest, EbbAllocatorGlobalBlock) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  auto allocator = EbbAllocator::Instance();
  allocator->SetGlobalBlock(0x1000, 4);
  EXPECT_EQ(allocator->Allocate(), 0x1000u);
  EXPECT_EQ(allocator->Allocate(), 0x1001u);
  EXPECT_EQ(allocator->Allocate(), 0x1002u);
  EXPECT_EQ(allocator->Allocate(), 0x1003u);
  // Block exhausted: falls back to machine-local ids.
  EXPECT_GE(allocator->Allocate(), kFirstFreeId);
}

TEST_F(EbbTest, GlobalBlockDoubleInstallRejectedWhileLive) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  auto allocator = EbbAllocator::Instance();
  EXPECT_TRUE(allocator->SetGlobalBlock(0x1000, 4));
  EXPECT_EQ(allocator->Allocate(), 0x1000u);
  EXPECT_EQ(allocator->Allocate(), 0x1001u);
  // Re-installing the SAME block is an idempotent no-op: the cursor does not rewind, so
  // already-issued ids are never handed out twice.
  EXPECT_TRUE(allocator->SetGlobalBlock(0x1000, 4));
  EXPECT_EQ(allocator->Allocate(), 0x1002u);
  // A DIFFERENT block while this one still has ids: rejected, allocation unaffected.
  EXPECT_FALSE(allocator->SetGlobalBlock(0x2000, 64));
  EXPECT_EQ(allocator->Allocate(), 0x1003u);
  // Drained, but overlapping the issued range: rejected — those ids are out in the world.
  EXPECT_FALSE(allocator->SetGlobalBlock(0x1000, 64));
  EXPECT_FALSE(allocator->SetGlobalBlock(0x0fff, 2));
  // Block drained: a disjoint new install is accepted and allocation continues from it.
  EXPECT_TRUE(allocator->SetGlobalBlock(0x2000, 64));
  EXPECT_EQ(allocator->Allocate(), 0x2000u);
  // The overlap check covers ALL previously installed blocks, not just the latest: after
  // draining 0x2000's block too, re-installing over the FIRST block is still rejected.
  for (int i = 0; i < 63; ++i) {
    allocator->Allocate();
  }
  EXPECT_FALSE(allocator->SetGlobalBlock(0x1000, 4));
  EXPECT_TRUE(allocator->SetGlobalBlock(0x4000 - 8, 8));
}

TEST_F(EbbTest, GlobalBlockExhaustionFallsBackToLocalIds) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  auto allocator = EbbAllocator::Instance();
  EXPECT_TRUE(allocator->SetGlobalBlock(0x1800, 2));
  EXPECT_EQ(allocator->Allocate(), 0x1800u);
  EXPECT_EQ(allocator->Allocate(), 0x1801u);
  // Exhausted: machine-local ids take over; the machine keeps working standalone.
  EbbId local = allocator->Allocate();
  EXPECT_GE(local, kFirstFreeId);
  EXPECT_LT(local, 0x1800u);
}

TEST_F(EbbTest, IdsFromInstalledBlockResolve) {
  ScopedContext ctx(*runtime_, first_core_, 0, false);
  auto allocator = EbbAllocator::Instance();
  ASSERT_TRUE(allocator->SetGlobalBlock(0x3000, 8));
  // An id from the installed global block behaves exactly like any other EbbId: reps are
  // constructed per core through the ordinary fault path and cached for the fast path.
  EbbId id = allocator->Allocate();
  ASSERT_EQ(id, 0x3000u);
  EbbRef<Counter> counter(id);
  counter->Add(11);
  EXPECT_EQ(counter->Get(), 11);
  Counter* rep = &counter.GetRep();
  EXPECT_EQ(rep, &counter.GetRep());  // cached: the fast path resolves it now
  {
    ScopedContext other(*runtime_, first_core_ + 1, 1, false);
    EXPECT_EQ(counter->Get(), 0);  // still a per-core Ebb on its new id
  }
}

TEST_F(EbbTest, ConcurrentFaultsOneRootManyReps) {
  EbbRef<Tally> tally(kFirstStaticUserId + 9);
  std::vector<std::thread> threads;
  std::atomic<TallyRoot*> seen_root{nullptr};
  std::atomic<bool> mismatch{false};
  for (int core = 0; core < 4; ++core) {
    threads.emplace_back([&, core] {
      ScopedContext ctx(*runtime_, first_core_ + core, core, false);
      TallyRoot& r = tally->root();
      TallyRoot* expected = nullptr;
      if (!seen_root.compare_exchange_strong(expected, &r)) {
        if (expected != &r) {
          mismatch = true;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(seen_root.load()->reps_created.load(), 4);
}

}  // namespace
}  // namespace ebbrt
