// Property-style parameterized suites: invariants that must hold across swept parameters.
//
//  * TCP delivers byte-exact streams for any (message size, loss rate) combination.
//  * The chain checksum equals the flat checksum for any split of a buffer.
//  * Slab caches hand out non-overlapping, correctly-sized objects for every size class.
//  * The buddy allocator conserves pages for arbitrary alloc/free interleavings.
#include <numeric>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "src/mem/gp_allocator.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

// --- TCP stream integrity across loss/size ------------------------------------------------

struct TcpSweepParam {
  std::size_t bytes;
  double loss;
  std::uint32_t seed;
};

class TcpStreamIntegrity : public ::testing::TestWithParam<TcpSweepParam> {};

// Receiver side of the sweep: accumulate bytes, close when the peer closes.
class SinkHandler final : public TcpHandler {
 public:
  explicit SinkHandler(std::string& out) : out_(out) {}
  void Receive(std::unique_ptr<IOBuf> data) override {
    out_ += std::string(data->AsStringView());
  }
  void Close() override { Pcb().Close(); }

 private:
  std::string& out_;
};

// Sender side: the application-paced pump (window check + SendReady resume).
class PumpHandler final : public TcpHandler {
 public:
  explicit PumpHandler(const std::string& payload) : payload_(payload) {}
  void Receive(std::unique_ptr<IOBuf>) override {}
  void SendReady() override { Pump(); }
  void Pump() {
    while (offset_ < payload_.size()) {
      std::size_t window = Pcb().SendWindowRemaining();
      if (window == 0) {
        return;
      }
      std::size_t chunk = std::min(window, payload_.size() - offset_);
      Pcb().Send(IOBuf::CopyBuffer(payload_.data() + offset_, chunk));
      offset_ += chunk;
    }
  }

 private:
  const std::string& payload_;
  std::size_t offset_ = 0;
};

TEST_P(TcpStreamIntegrity, ByteExactUnderLossAndSize) {
  const TcpSweepParam param = GetParam();
  sim::Testbed bed;
  if (param.loss > 0) {
    bed.fabric().SetLossRate(param.loss, param.seed);
  }
  sim::TestbedNode server = bed.AddNode("server", 2, Ipv4Addr::Of(10, 0, 0, 2));
  sim::TestbedNode client = bed.AddNode("client", 1, Ipv4Addr::Of(10, 0, 0, 3));
  std::string payload(param.bytes, '\0');
  std::mt19937 rng(param.seed);
  for (auto& c : payload) {
    c = static_cast<char>('a' + rng() % 26);
  }
  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(9100, [&received](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(received)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, Ipv4Addr::Of(10, 0, 0, 2), 9100)
        .Then([&](Future<TcpPcb> f) {
          TcpPcb pcb = f.Get();
          auto pump = std::make_unique<PumpHandler>(payload);
          auto* raw = pump.get();
          pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::move(pump)));
          raw->Pump();
        });
  });
  bed.world().RunUntil(120ull * 1000 * 1000 * 1000);
  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TcpStreamIntegrity,
    ::testing::Values(TcpSweepParam{100, 0.0, 1}, TcpSweepParam{1460, 0.0, 2},
                      TcpSweepParam{1461, 0.0, 3},  // one byte past a segment boundary
                      TcpSweepParam{30000, 0.0, 4}, TcpSweepParam{200000, 0.0, 5},
                      TcpSweepParam{5000, 0.02, 6}, TcpSweepParam{30000, 0.05, 7},
                      TcpSweepParam{20000, 0.08, 8},  // heavy loss: retransmission-dominated
                      TcpSweepParam{100000, 0.03, 9}),
    [](const ::testing::TestParamInfo<TcpSweepParam>& info) {
      return "bytes" + std::to_string(info.param.bytes) + "_losspct" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

// --- Checksum split-invariance ---------------------------------------------------------------

class ChecksumSplit : public ::testing::TestWithParam<int> {};

TEST_P(ChecksumSplit, ChainChecksumMatchesFlat) {
  std::mt19937 rng(GetParam());
  std::size_t len = 1 + rng() % 4096;
  std::string data(len, '\0');
  for (auto& c : data) {
    c = static_cast<char>(rng());
  }
  std::uint16_t flat = InternetChecksum(data.data(), data.size());
  // Split into random chain elements (odd splits exercise the byte-carry logic).
  auto chain = IOBuf::CopyBuffer(data.data(), 0);
  std::size_t off = 0;
  while (off < len) {
    std::size_t piece = 1 + rng() % 97;
    piece = std::min(piece, len - off);
    chain->AppendChain(IOBuf::CopyBuffer(data.data() + off, piece));
    off += piece;
  }
  ChecksumAccumulator acc;
  acc.AddChain(*chain);
  EXPECT_EQ(acc.Finish(), flat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumSplit, ::testing::Range(1, 17));

// --- Slab size-class invariants ----------------------------------------------------------------

class SlabSizeClasses : public ::testing::TestWithParam<std::size_t> {
 protected:
  SlabSizeClasses() : runtime_(RuntimeKind::kNative, "prop-slab") {
    runtime_.AddCores(1);
    mem::Config config;
    config.arena_bytes = 64ull << 20;
    mem::Install(runtime_, 1, config);
  }
  Runtime runtime_;
};

TEST_P(SlabSizeClasses, ObjectsDisjointAndWritable) {
  ScopedContext ctx(runtime_, runtime_.global_core(0), 0, false);
  std::size_t size = GetParam();
  constexpr int kCount = 300;
  std::vector<void*> objs;
  for (int i = 0; i < kCount; ++i) {
    void* p = mem::Alloc(size);
    ASSERT_NE(p, nullptr);
    std::memset(p, i & 0xff, size);
    objs.push_back(p);
  }
  // Disjointness: each object still carries its own fill byte at both ends.
  for (int i = 0; i < kCount; ++i) {
    auto* bytes = static_cast<std::uint8_t*>(objs[i]);
    EXPECT_EQ(bytes[0], i & 0xff);
    EXPECT_EQ(bytes[size - 1], i & 0xff);
  }
  for (void* p : objs) {
    mem::Free(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Classes, SlabSizeClasses,
                         ::testing::Values(1, 8, 9, 17, 48, 63, 100, 256, 300, 1000, 2048,
                                           4000, 4096));

// --- Buddy conservation under random interleavings ---------------------------------------------

class BuddyConservation : public ::testing::TestWithParam<unsigned> {};

TEST_P(BuddyConservation, FreePagesRestoredAfterChurn) {
  PhysArena arena(32ull << 20, 1);
  PageAllocator buddy(arena, 0);
  std::size_t before = buddy.free_pages();
  std::mt19937 rng(GetParam());
  std::vector<void*> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng() % 3 != 0) {
      void* p = buddy.AllocPages(rng() % 6);
      if (p != nullptr) {
        live.push_back(p);
      }
    } else {
      std::size_t idx = rng() % live.size();
      buddy.FreePages(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  for (void* p : live) {
    buddy.FreePages(p);
  }
  EXPECT_EQ(buddy.free_pages(), before);
  // Full coalescing: a max-order block must be allocatable again.
  void* big = buddy.AllocPages(kMaxOrder);
  EXPECT_NE(big, nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyConservation, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace ebbrt
