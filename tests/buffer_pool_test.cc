// BufferPool + slab-backed IOBuf tests: the zero-malloc datapath's allocation layer.
//
//   * one-slab-allocation IOBuf layout (embedded SharedStorage, arena-backed bytes),
//   * pool recycle-reuse round trip,
//   * cross-core free routed home over the lock-free interconnect and recycled at the event
//     boundary,
//   * pool exhaustion falling back to the slab path (pool_misses tick, no failure),
//   * refcounted Clone keeping a recycled buffer alive past the originating event.
//
// Everything runs on a deterministic SimWorld machine (mem + pool are installed by
// AddMachine), so per-core semantics are exercised for real.
#include "src/mem/buffer_pool.h"

#include <gtest/gtest.h>

#include "src/event/sim_world.h"
#include "src/mem/gp_allocator.h"

namespace ebbrt {
namespace {

struct MemDelta {
  std::uint64_t iobuf = 0, slab = 0, heap = 0, hits = 0, misses = 0, remote = 0;
  static MemDelta Snap() {
    MemDelta d;
    const mem::Stats& s = mem::stats();
    d.iobuf = s.iobuf_allocs.load();
    d.slab = s.iobuf_slab_allocs.load();
    d.heap = s.heap_fallback_allocs.load();
    d.hits = s.pool_hits.load();
    d.misses = s.pool_misses.load();
    d.remote = s.remote_frees.load();
    return d;
  }
};

TEST(BufferPool, SlabBackedIOBufIsOneEmbeddedAllocation) {
  SimWorld world;
  Runtime& rt = world.AddMachine("layout", 1);
  bool checked = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    MemDelta before = MemDelta::Snap();
    auto buf = IOBuf::Create(200);
    MemDelta after = MemDelta::Snap();
    // Exactly ONE storage allocation, served by the slab (no heap fallback), with the
    // control block embedded in front of the bytes — the one-slab-allocation layout.
    EXPECT_EQ(after.iobuf - before.iobuf, 1u);
    EXPECT_EQ(after.slab - before.slab, 1u);
    EXPECT_EQ(after.heap - before.heap, 0u);
    EXPECT_TRUE(buf->StorageEmbedded());
    EXPECT_NE(mem::FindOwningRoot(buf->Data()), nullptr);
    // The compile-time path behaves identically.
    auto sized = IOBuf::CreateReserveFor<96>(16);
    EXPECT_TRUE(sized->StorageEmbedded());
    EXPECT_EQ(sized->Headroom(), 16u);
    EXPECT_NE(mem::FindOwningRoot(sized->Data()), nullptr);
    checked = true;
  });
  world.Run();
  EXPECT_TRUE(checked);
}

TEST(BufferPool, RecycleReuseRoundTrip) {
  SimWorld world;
  Runtime& rt = world.AddMachine("recycle", 1);
  bool checked = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    BufferPool* pool = BufferPool::Local();
    ASSERT_NE(pool, nullptr);
    auto a = pool->Alloc();
    const std::uint8_t* block = a->Data();
    EXPECT_GT(a->Headroom(), 0u);   // headroom pre-reserved
    EXPECT_EQ(a->Length(), 0u);     // empty view (CreateReserve semantics)
    a.reset();                      // same-core free: lock-free recycle
    MemDelta before = MemDelta::Snap();
    auto b = pool->Alloc();
    MemDelta after = MemDelta::Snap();
    EXPECT_EQ(b->Data(), block);    // the very same block came back
    EXPECT_EQ(after.hits - before.hits, 1u);
    EXPECT_EQ(after.misses - before.misses, 0u);
    checked = true;
  });
  world.Run();
  EXPECT_TRUE(checked);
}

TEST(BufferPool, CrossCoreFreeRidesTheInterconnectHome) {
  SimWorld world;
  Runtime& rt = world.AddMachine("xcore", 2);
  auto stash = std::make_shared<std::unique_ptr<IOBuf>>();
  auto block = std::make_shared<const std::uint8_t*>(nullptr);
  bool verified = false;
  SimWorld::SpawnOn(rt, 0, [&, stash, block] {
    BufferPool* pool = BufferPool::Local();
    ASSERT_NE(pool, nullptr);
    *stash = pool->Alloc();
    *block = (*stash)->Data();
    // Hand the frame to core 1, which releases it there (a response retained by another
    // core's connection, in miniature).
    event::Local().SpawnRemote(
        [&, stash, block] {
          MemDelta before = MemDelta::Snap();
          // Frees on core 1; owner is core 0: the dead block becomes an interconnect node
          // and is CAS-published onto core 0's exchange list (remote_frees keeps the exact
          // meaning it had under the old magazine — a free routed home cross-core).
          stash->reset();
          MemDelta after = MemDelta::Snap();
          EXPECT_EQ(after.remote - before.remote, 1u);
          // Back on the owner core: this spawn and the block ride the same sender's list,
          // so FIFO-per-sender delivers the block BEFORE this event runs — the next alloc
          // reuses it.
          event::Local().SpawnRemote(
              [&, block] {
                BufferPool* owner_pool = BufferPool::Local();
                MemDelta b2 = MemDelta::Snap();
                auto buf = owner_pool->Alloc();
                MemDelta a2 = MemDelta::Snap();
                EXPECT_EQ(buf->Data(), *block);
                EXPECT_EQ(a2.hits - b2.hits, 1u);
                verified = true;
              },
              0);
        },
        1);
  });
  world.Run();
  EXPECT_TRUE(verified);
}

TEST(BufferPool, ExhaustionFallsBackToSlabWithoutFailure) {
  SimWorld world;
  Runtime& rt = world.AddMachine("exhaust", 1);
  // Re-install a tiny pool over the default one: two recycled blocks per core, so the third
  // concurrent alloc must fall back.
  BufferPoolRoot::Config tiny;
  tiny.per_core_cap = 2;
  BufferPoolRoot::Install(rt, 1, tiny);
  bool checked = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    BufferPool* pool = BufferPool::Local();
    ASSERT_NE(pool, nullptr);
    MemDelta before = MemDelta::Snap();
    auto a = pool->Alloc();
    auto b = pool->Alloc();
    auto c = pool->Alloc();  // beyond the cap: ordinary slab-backed buffer, not a failure
    MemDelta after = MemDelta::Snap();
    ASSERT_NE(c, nullptr);
    EXPECT_GT(c->Tailroom(), 1500u);  // still MTU-class and usable
    EXPECT_EQ(after.misses - before.misses, 3u);  // cold carves + the fallback all count
    EXPECT_EQ(after.heap - before.heap, 0u);      // ...but none of them touched malloc
    // All three release cleanly; the two pooled blocks recycle.
    const std::uint8_t* block_b = b->Data();
    a.reset();
    b.reset();
    c.reset();
    MemDelta b2 = MemDelta::Snap();
    auto again = pool->Alloc();
    MemDelta a2 = MemDelta::Snap();
    EXPECT_EQ(a2.hits - b2.hits, 1u);
    EXPECT_EQ(again->Data(), block_b);  // LIFO recycle
    checked = true;
  });
  world.Run();
  EXPECT_TRUE(checked);
}

TEST(BufferPool, OccupancyTelemetryTracksCheckedOutBlocks) {
  SimWorld world;
  Runtime& rt = world.AddMachine("occupancy", 1);
  bool checked = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    BufferPool* pool = BufferPool::Local();
    ASSERT_NE(pool, nullptr);
    // Fresh machine: nothing checked out yet, high-water untouched.
    EXPECT_EQ(pool->in_use(), 0u);
    EXPECT_EQ(pool->in_use_hwm(), 0u);
    std::uint64_t global_base = mem::stats().pool_in_use.load();
    auto a = pool->Alloc();
    auto b = pool->Alloc();
    auto c = pool->Alloc();
    EXPECT_EQ(pool->in_use(), 3u);
    EXPECT_EQ(pool->in_use_hwm(), 3u);
    EXPECT_EQ(mem::stats().pool_in_use.load(), global_base + 3);
    EXPECT_GE(mem::stats().pool_in_use_hwm.load(), global_base + 3);
    // Releases bring occupancy down; the high-water mark stays at the burst's peak.
    a.reset();
    b.reset();
    EXPECT_EQ(pool->in_use(), 1u);
    EXPECT_EQ(pool->in_use_hwm(), 3u);
    EXPECT_EQ(mem::stats().pool_in_use.load(), global_base + 1);
    // A recycled re-alloc counts as checked out again but does not move the peak.
    auto d = pool->Alloc();
    EXPECT_EQ(pool->in_use(), 2u);
    EXPECT_EQ(pool->in_use_hwm(), 3u);
    c.reset();
    d.reset();
    EXPECT_EQ(pool->in_use(), 0u);
    EXPECT_EQ(mem::stats().pool_in_use.load(), global_base);
    // The at-cap slab fallback is NOT a pooled block and must not count as occupancy.
    BufferPoolRoot::Config tiny;
    tiny.per_core_cap = 1;
    BufferPoolRoot::Install(rt, 1, tiny);
    BufferPool* small = BufferPool::Local();
    auto e = small->Alloc();  // the one pooled block
    auto f = small->Alloc();  // beyond the cap: slab fallback
    EXPECT_EQ(small->in_use(), 1u);
    EXPECT_EQ(small->in_use_hwm(), 1u);
    e.reset();
    f.reset();
    EXPECT_EQ(small->in_use(), 0u);
    checked = true;
  });
  world.Run();
  EXPECT_TRUE(checked);
}

TEST(BufferPool, AdaptiveCapGrowsUnderPressureAndDecaysWhenIdle) {
  // The adaptive-cap policy (ROADMAP "descriptor-cache sizing"): sustained at-cap misses
  // grow the effective per-core cap toward demand; pressure-free event boundaries decay it
  // back to the floor and return surplus blocks to the slab.
  SimWorld world;
  Runtime& rt = world.AddMachine("adaptive", 1);
  BufferPoolRoot::Config cfg;
  cfg.per_core_cap = 2;        // floor
  cfg.per_core_cap_max = 8;    // ceiling
  cfg.grow_miss_streak = 3;    // grow after 3 consecutive at-cap misses
  cfg.decay_quiet_events = 2;  // decay after 2 pressure-free event boundaries
  BufferPoolRoot::Install(rt, 1, cfg);
  bool grew = false;
  bool decayed = false;
  bool done = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    BufferPool* pool = BufferPool::Local();
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->cap(), 2u);
    std::uint64_t grows_before = mem::stats().pool_cap_grows.load();

    // Event 1: demand far above the cap. The first 2 allocs carve; the next ones are
    // at-cap misses — after `grow_miss_streak` of them the cap must grow (geometric:
    // max(2*cap, hwm) = 4), letting subsequent allocs carve again.
    std::vector<std::unique_ptr<IOBuf>> burst;
    for (int i = 0; i < 7; ++i) {
      burst.push_back(pool->Alloc());
    }
    EXPECT_GT(pool->cap(), 2u);
    EXPECT_EQ(pool->cap(), 4u);  // one grow step: 3 misses -> cap 2*2
    EXPECT_GT(mem::stats().pool_cap_grows.load(), grows_before);
    grew = true;
    burst.clear();  // everything recycles (freelist_ holds up to cap_ blocks)

    // Quiet events: each does one in-cap alloc (queues the boundary hook) and no at-cap
    // miss. After `decay_quiet_events` boundaries the cap halves its excess toward the
    // floor, and surplus recycled blocks go back to the slab.
    std::uint64_t decays_before = mem::stats().pool_cap_decays.load();
    auto quiet = std::make_shared<std::function<void(int)>>();
    *quiet = [&, quiet](int remaining) {
      BufferPool* p = BufferPool::Local();
      auto buf = p->Alloc();  // pool hit: no pressure, but arms the end-of-event hook
      buf.reset();
      if (remaining > 0) {
        event::Local().Spawn([&, quiet, remaining] { (*quiet)(remaining - 1); });
        return;
      }
      EXPECT_EQ(p->cap(), 2u);  // 4 -> 3 -> 2 over two decay steps
      EXPECT_GE(mem::stats().pool_cap_decays.load(), decays_before + 2);
      EXPECT_LE(p->free_blocks(), p->cap());
      EXPECT_LE(p->outstanding(), p->cap());  // trim returned the surplus to the slab
      decayed = true;
      done = true;
      *quiet = nullptr;
    };
    (*quiet)(6);
  });
  world.Run();
  EXPECT_TRUE(grew);
  EXPECT_TRUE(decayed);
  EXPECT_TRUE(done);
}

TEST(BufferPool, CloneKeepsRecycledBufferAlivePastOriginatingEvent) {
  SimWorld world;
  Runtime& rt = world.AddMachine("clone", 1);
  auto clone = std::make_shared<std::unique_ptr<IOBuf>>();
  auto block = std::make_shared<const std::uint8_t*>(nullptr);
  bool verified = false;
  SimWorld::SpawnOn(rt, 0, [&, clone, block] {
    BufferPool* pool = BufferPool::Local();
    ASSERT_NE(pool, nullptr);
    auto frame = pool->Alloc();
    std::memcpy(frame->WritableTail(), "pooled-payload", 14);
    frame->Append(14);
    *block = frame->Data();
    *clone = frame->Clone();  // second view, refcounted
    frame.reset();            // original dies with the event — block must NOT recycle yet
    event::Local().Spawn([&, clone, block] {
      // A later event still reads the clone's bytes intact.
      EXPECT_EQ((*clone)->AsStringView(), "pooled-payload");
      BufferPool* p = BufferPool::Local();
      auto other = p->Alloc();
      EXPECT_NE(other->Data(), *block);  // the shared block was not handed out
      other.reset();
      clone->reset();  // last view: NOW it returns to the pool
      event::Local().Spawn([&, block] {
        auto reused = BufferPool::Local()->Alloc();
        EXPECT_EQ(reused->Data(), *block);
        verified = true;
      });
    });
  });
  world.Run();
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace ebbrt
