// Application-level integration tests: memcached (both stacks), HTTP servers, the baseline
// socket layer, and V8-suite kernel result invariance across environments.
#include <gtest/gtest.h>

#include "src/apps/http/http_server.h"
#include "src/apps/loadgen/memcached_loadgen.h"
#include "src/apps/memcached/server.h"
#include "src/apps/v8bench/kernels.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);

std::unique_ptr<IOBuf> BuildSetRequest(std::string_view key, std::string_view value) {
  using namespace memcached;
  std::size_t body = sizeof(SetExtras) + key.size() + value.size();
  auto buf = IOBuf::Create(sizeof(BinaryHeader) + body, true);
  auto& hdr = buf->Get<BinaryHeader>();
  hdr.magic = kMagicRequest;
  hdr.opcode = static_cast<std::uint8_t>(Opcode::kSet);
  hdr.key_length = HostToNet16(static_cast<std::uint16_t>(key.size()));
  hdr.extras_length = sizeof(SetExtras);
  hdr.total_body = HostToNet32(static_cast<std::uint32_t>(body));
  auto* p = buf->WritableData() + sizeof(BinaryHeader) + sizeof(SetExtras);
  std::memcpy(p, key.data(), key.size());
  std::memcpy(p + key.size(), value.data(), value.size());
  return buf;
}

std::unique_ptr<IOBuf> BuildGetRequest(std::string_view key) {
  using namespace memcached;
  auto buf = IOBuf::Create(sizeof(BinaryHeader) + key.size(), true);
  auto& hdr = buf->Get<BinaryHeader>();
  hdr.magic = kMagicRequest;
  hdr.opcode = static_cast<std::uint8_t>(Opcode::kGet);
  hdr.key_length = HostToNet16(static_cast<std::uint16_t>(key.size()));
  hdr.total_body = HostToNet32(static_cast<std::uint32_t>(key.size()));
  std::memcpy(buf->WritableData() + sizeof(BinaryHeader), key.data(), key.size());
  return buf;
}

// `declared_count` is normally keys.size(); tests lie to exercise the malformed-batch path
// (a count promising more keys than the body packs).
std::unique_ptr<IOBuf> BuildMultiGetRequest(const std::vector<std::string_view>& keys,
                                            std::size_t declared_count) {
  using namespace memcached;
  std::size_t packed = 0;
  for (std::string_view k : keys) {
    packed += sizeof(std::uint16_t) + k.size();
  }
  std::size_t body = sizeof(MultiGetExtras) + packed;
  auto buf = IOBuf::Create(sizeof(BinaryHeader) + body, true);
  auto& hdr = buf->Get<BinaryHeader>();
  hdr.magic = kMagicRequest;
  hdr.opcode = static_cast<std::uint8_t>(Opcode::kMultiGet);
  hdr.extras_length = sizeof(MultiGetExtras);
  hdr.total_body = HostToNet32(static_cast<std::uint32_t>(body));
  buf->Get<MultiGetExtras>(sizeof(BinaryHeader)).key_count =
      HostToNet32(static_cast<std::uint32_t>(declared_count));
  auto* p = buf->WritableData() + sizeof(BinaryHeader) + sizeof(MultiGetExtras);
  for (std::string_view k : keys) {
    std::uint16_t klen = HostToNet16(static_cast<std::uint16_t>(k.size()));
    std::memcpy(p, &klen, sizeof(klen));
    p += sizeof(klen);
    std::memcpy(p, k.data(), k.size());
    p += k.size();
  }
  return buf;
}

// Unpacks a MULTIGET response's value section (count x [MultiGetEntry][value if hit]).
struct MultiGetResult {
  memcached::Status status;
  std::string value;
};
std::vector<MultiGetResult> ParseMultiGetResponseBody(const std::string& body,
                                                      std::size_t count) {
  using memcached::MultiGetEntry;
  std::vector<MultiGetResult> out;
  std::size_t off = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (off + sizeof(MultiGetEntry) > body.size()) {
      ADD_FAILURE() << "response truncated at entry " << i;
      return out;
    }
    MultiGetEntry entry;
    std::memcpy(&entry, body.data() + off, sizeof(entry));
    off += sizeof(entry);
    MultiGetResult r;
    r.status = static_cast<memcached::Status>(NetToHost16(entry.status));
    std::uint32_t len = NetToHost32(entry.value_length);
    if (off + len > body.size()) {
      ADD_FAILURE() << "value truncated at entry " << i;
      return out;
    }
    r.value = body.substr(off, len);
    off += len;
    out.push_back(std::move(r));
  }
  EXPECT_EQ(off, body.size()) << "trailing bytes after the declared entries";
  return out;
}

struct ClientState {
  memcached::RequestParser parser;
  std::vector<std::pair<memcached::Status, std::string>> responses;
};

// Client-side connection handler: parses responses into the shared ClientState.
class ResponseCollector final : public TcpHandler {
 public:
  explicit ResponseCollector(std::shared_ptr<ClientState> state) : state_(std::move(state)) {}
  void Receive(std::unique_ptr<IOBuf> data) override {
    auto& state = *state_;
    state.parser.Feed(std::move(data), [&state](const memcached::RequestParser::Request& r) {
      state.responses.emplace_back(
          static_cast<memcached::Status>(NetToHost16(r.header.status_vbucket)),
          std::string(r.value));
    });
  }

 private:
  std::shared_ptr<ClientState> state_;
};

// Accumulates raw received bytes (the HTTP clients' side).
class StringSink final : public TcpHandler {
 public:
  explicit StringSink(std::string& out) : out_(out) {}
  void Receive(std::unique_ptr<IOBuf> data) override {
    out_ += std::string(data->AsStringView());
  }

 private:
  std::string& out_;
};

void RunMemcachedExchange(TcpPcb pcb, std::shared_ptr<ClientState> state) {
  pcb.InstallHandler(
      std::unique_ptr<TcpHandler>(std::make_unique<ResponseCollector>(std::move(state))));
  pcb.Send(BuildSetRequest("answer", "forty-two"));
  pcb.Send(BuildGetRequest("answer"));
  pcb.Send(BuildGetRequest("missing"));
}

TEST(Apps, MemcachedEbbRTSetGet) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 2, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto state = std::make_shared<ClientState>();
  memcached::MemcachedServer* srv = nullptr;
  server.Spawn(0, [&] { srv = new memcached::MemcachedServer(*server.net, 11211); });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 11211).Then([&, state](
                                                                        Future<TcpPcb> f) {
      RunMemcachedExchange(f.Get(), state);
    });
  });
  bed.world().Run();
  ASSERT_EQ(state->responses.size(), 3u);
  EXPECT_EQ(state->responses[0].first, memcached::Status::kOk);          // SET
  EXPECT_EQ(state->responses[1].first, memcached::Status::kOk);          // GET hit
  EXPECT_EQ(state->responses[1].second, "forty-two");
  EXPECT_EQ(state->responses[2].first, memcached::Status::kKeyNotFound); // GET miss
  EXPECT_EQ(srv->requests(), 3u);
}

TEST(Apps, BurstClientSpreadsFlowsAcrossAllServerCores) {
  // The fig6 requirement: one connection per client core, each with a distinct flow hash,
  // so symmetric RSS puts work on EVERY server core (a single flow collapses onto one).
  constexpr std::size_t kCores = 4;
  Testbed bed;
  TestbedNode server = bed.AddNode("server", kCores, kServerIp);
  TestbedNode client = bed.AddNode("client", kCores, kClientIp,
                                   sim::HypervisorModel::Native());
  server.Spawn(0, [&] { new memcached::MemcachedServer(*server.net, 11211); });
  loadgen::MemcachedBurstClient::Config config;
  config.depth = 8;
  config.total_requests = 128;
  config.key_space = 32;
  config.connections = kCores;
  std::size_t responses = 0;
  loadgen::MemcachedBurstClient::Run(client, kServerIp, 11211, config)
      .Then([&](Future<loadgen::MemcachedBurstClient::Result> f) {
        responses = f.Get().responses;
      });
  bed.world().Run();
  EXPECT_EQ(responses, config.total_requests);
  auto& em = server.runtime->GetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  for (std::size_t core = 0; core < kCores; ++core) {
    EXPECT_GT(em.RepFor(core).interrupts_dispatched(), 0u)
        << "server core " << core << " received no device events";
  }
}

TEST(Apps, MemcachedBaselineSetGet) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 2, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto state = std::make_shared<ClientState>();
  baseline::SocketStack* stack = nullptr;
  memcached::BaselineMemcachedServer* srv = nullptr;
  server.Spawn(0, [&] {
    stack = new baseline::SocketStack(bed.world(), *server.net,
                                      baseline::SocketStack::LinuxModel());
    srv = new memcached::BaselineMemcachedServer(*stack, 11211);
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 11211).Then([&, state](
                                                                        Future<TcpPcb> f) {
      RunMemcachedExchange(f.Get(), state);
    });
  });
  // The baseline runs scheduler ticks forever; run to a bounded horizon.
  bed.world().RunUntil(2ull * 1000 * 1000 * 1000);
  ASSERT_EQ(state->responses.size(), 3u);
  EXPECT_EQ(state->responses[1].second, "forty-two");
  EXPECT_EQ(srv->requests(), 3u);
}

TEST(Apps, MemcachedValueSurvivesReplacementRace) {
  // A GET response referencing an item zero-copy must survive the item being replaced before
  // the response drains (the ItemRef anchor in MakeValueBuffer).
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto state = std::make_shared<ClientState>();
  server.Spawn(0, [&] { new memcached::MemcachedServer(*server.net, 11211); });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 11211).Then([state](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<ResponseCollector>(state)));
      pcb.Send(BuildSetRequest("k", std::string(900, 'A')));
      pcb.Send(BuildGetRequest("k"));
      pcb.Send(BuildSetRequest("k", std::string(900, 'B')));  // replaces while GET in flight
      pcb.Send(BuildGetRequest("k"));
    });
  });
  bed.world().Run();
  ASSERT_EQ(state->responses.size(), 4u);
  EXPECT_EQ(state->responses[1].second, std::string(900, 'A'));
  EXPECT_EQ(state->responses[3].second, std::string(900, 'B'));
}

TEST(Apps, MemcachedMultiGetBatchWithHitsMissesAndDuplicates) {
  // One MULTIGET frame answering four lookups (two hits, a miss, a duplicate) under a
  // single response header, entries in request order.
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto state = std::make_shared<ClientState>();
  memcached::MemcachedServer* srv = nullptr;
  server.Spawn(0, [&] { srv = new memcached::MemcachedServer(*server.net, 11211); });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 11211).Then([state](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<ResponseCollector>(state)));
      pcb.Send(BuildSetRequest("alpha", "first"));
      pcb.Send(BuildSetRequest("beta", std::string(500, 'B')));
      pcb.Send(BuildMultiGetRequest({"alpha", "missing", "beta", "alpha"}, 4));
    });
  });
  bed.world().Run();
  ASSERT_EQ(state->responses.size(), 3u);  // SET, SET, one MULTIGET response
  EXPECT_EQ(state->responses[2].first, memcached::Status::kOk);
  auto results = ParseMultiGetResponseBody(state->responses[2].second, 4);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, memcached::Status::kOk);
  EXPECT_EQ(results[0].value, "first");
  EXPECT_EQ(results[1].status, memcached::Status::kKeyNotFound);
  EXPECT_EQ(results[1].value, "");
  EXPECT_EQ(results[2].status, memcached::Status::kOk);
  EXPECT_EQ(results[2].value, std::string(500, 'B'));
  EXPECT_EQ(results[3].status, memcached::Status::kOk);  // duplicate answered again
  EXPECT_EQ(results[3].value, "first");
  EXPECT_EQ(srv->bad_frames(), 0u);
}

TEST(Apps, MemcachedMultiGetTruncatedBatchRejectedWithoutWedging) {
  // A batch whose count promises more keys than the body packs is malformed-but-framed:
  // the server must answer kInvalidArguments, tick bad_frames, and keep serving the SAME
  // connection (the bad_frames discipline — reject, never assert, never wedge).
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto state = std::make_shared<ClientState>();
  memcached::MemcachedServer* srv = nullptr;
  server.Spawn(0, [&] { srv = new memcached::MemcachedServer(*server.net, 11211); });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 11211).Then([state](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<ResponseCollector>(state)));
      pcb.Send(BuildSetRequest("still-here", "yes"));
      pcb.Send(BuildMultiGetRequest({"only-one"}, /*declared_count=*/3));  // truncated
      pcb.Send(BuildGetRequest("still-here"));  // same connection must still answer
    });
  });
  bed.world().Run();
  ASSERT_EQ(state->responses.size(), 3u);
  EXPECT_EQ(state->responses[0].first, memcached::Status::kOk);
  EXPECT_EQ(state->responses[1].first, memcached::Status::kInvalidArguments);
  EXPECT_EQ(state->responses[2].first, memcached::Status::kOk);
  EXPECT_EQ(state->responses[2].second, "yes");
  EXPECT_EQ(srv->bad_frames(), 1u);
}

TEST(Apps, MemcachedOversizedKeyRejectedWithoutWedging) {
  // A SET whose key exceeds kMaxKeyLen is framed correctly but violates the per-item
  // bounds: the server must answer kInvalidArguments, tick bad_frames, never carve an item
  // for it, and keep serving the same connection.
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto state = std::make_shared<ClientState>();
  memcached::MemcachedServer* srv = nullptr;
  server.Spawn(0, [&] { srv = new memcached::MemcachedServer(*server.net, 11211); });
  std::string long_key(memcached::kMaxKeyLen + 1, 'K');
  client.Spawn(0, [&, state] {
    client.net->tcp().Connect(*client.iface, kServerIp, 11211).Then([state, &long_key](
                                                                        Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<ResponseCollector>(state)));
      pcb.Send(BuildSetRequest(long_key, "rejected"));
      pcb.Send(BuildSetRequest("fits", "stored"));  // same connection must still serve
      pcb.Send(BuildGetRequest("fits"));
    });
  });
  bed.world().Run();
  ASSERT_EQ(state->responses.size(), 3u);
  EXPECT_EQ(state->responses[0].first, memcached::Status::kInvalidArguments);
  EXPECT_EQ(state->responses[1].first, memcached::Status::kOk);
  EXPECT_EQ(state->responses[2].first, memcached::Status::kOk);
  EXPECT_EQ(state->responses[2].second, "stored");
  EXPECT_EQ(srv->bad_frames(), 1u);
  EXPECT_EQ(srv->store().size(), 1u);  // the oversized item was never stored
}

TEST(Apps, MemcachedParserSkipsOversizedValueWithoutBuffering) {
  // A SET declaring a value above kMaxValueLen must be rejected from the HEADER alone: the
  // request is delivered immediately (oversized flag, empty views) and the body bytes are
  // discarded as they stream in — pending_bytes stays at zero, nothing is coalesced, and
  // the stream resynchronizes at the next request.
  using memcached::BinaryHeader;
  using memcached::RequestParser;
  constexpr std::size_t kHugeValue = 2 * 1024 * 1024;  // > kMaxValueLen, < kMaxRequestBody
  auto request = IOBuf::Create(sizeof(BinaryHeader), true);
  auto& hdr = request->Get<BinaryHeader>();
  hdr.magic = memcached::kMagicRequest;
  hdr.opcode = static_cast<std::uint8_t>(memcached::Opcode::kSet);
  hdr.key_length = HostToNet16(1);
  hdr.extras_length = sizeof(memcached::SetExtras);
  hdr.total_body = HostToNet32(
      static_cast<std::uint32_t>(sizeof(memcached::SetExtras) + 1 + kHugeValue));
  std::size_t body_len = sizeof(memcached::SetExtras) + 1 + kHugeValue;

  RequestParser parser;
  std::size_t delivered = 0;
  std::size_t oversized = 0;
  auto sink = [&](const RequestParser::Request& req) {
    ++delivered;
    if (req.oversized) {
      ++oversized;
      EXPECT_TRUE(req.key.empty());
      EXPECT_TRUE(req.value.empty());
    }
  };
  // Header alone: rejected immediately, before one body byte exists.
  parser.Feed(std::move(request), sink);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(oversized, 1u);
  EXPECT_FALSE(parser.poisoned());
  EXPECT_EQ(parser.pending_bytes(), 0u);
  // Body streams in: discarded chunk by chunk, never buffered, never coalesced.
  std::string chunk(64 * 1024, 'x');
  std::size_t sent = 0;
  while (sent < body_len) {
    std::size_t n = std::min(chunk.size(), body_len - sent);
    parser.FeedBytes(chunk.data(), n, sink);
    sent += n;
    EXPECT_EQ(parser.pending_bytes(), 0u);
  }
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(parser.coalesce_ops(), 0u);
  // The stream resynchronizes: the next well-formed request parses normally.
  parser.Feed(BuildGetRequest("after"), sink);
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(oversized, 1u);
}

TEST(Apps, MemcachedParserPoisonedByContradictoryHeader) {
  // A header whose declared sections exceed its declared body is framing corruption, not a
  // request: the parser must stop (poisoned), deliver nothing, and drop what it buffered —
  // every subsequent byte boundary would be a guess.
  using memcached::RequestParser;
  RequestParser parser;
  auto bad = BuildGetRequest("some-key");
  auto& hdr = bad->Get<memcached::BinaryHeader>();
  hdr.total_body = HostToNet32(2);  // < key_length: self-contradictory
  std::size_t parsed = 0;
  parser.Feed(std::move(bad), [&](const RequestParser::Request&) { ++parsed; });
  EXPECT_EQ(parsed, 0u);
  EXPECT_TRUE(parser.poisoned());
  EXPECT_EQ(parser.pending_bytes(), 0u);
  // Poison is sticky: later (well-formed) bytes are not delivered either.
  parser.Feed(BuildGetRequest("fine"), [&](const RequestParser::Request&) { ++parsed; });
  EXPECT_EQ(parsed, 0u);
}

TEST(Apps, HttpServerServes148ByteResponse) {
  EXPECT_EQ(http::StaticResponse().size(), 148u);
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string response;
  server.Spawn(0, [&] { new http::HttpServer(*server.net, 8080); });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8080).Then([&response](
                                                                       Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<StringSink>(response)));
      pcb.Send(IOBuf::CopyBuffer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
      pcb.Send(IOBuf::CopyBuffer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));  // keep-alive
    });
  });
  bed.world().Run();
  EXPECT_EQ(response.size(), 2 * 148u);
  EXPECT_EQ(response.substr(0, 15), "HTTP/1.1 200 OK");
}

TEST(Apps, BaselineHttpServerServes) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string response;
  server.Spawn(0, [&] {
    auto* stack = new baseline::SocketStack(bed.world(), *server.net,
                                            baseline::SocketStack::LinuxModel());
    new http::BaselineHttpServer(*stack, 8080);
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8080).Then([&response](
                                                                       Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<StringSink>(response)));
      pcb.Send(IOBuf::CopyBuffer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
    });
  });
  bed.world().RunUntil(2ull * 1000 * 1000 * 1000);
  EXPECT_EQ(response.size(), 148u);
}

TEST(Apps, MemcachedParserSingleSegmentIsZeroCopy) {
  // A request fully contained in one segment must be parsed in place: the views handed to
  // the callback point into the fed buffer itself, and no coalesce (the IOBufQueue successor
  // to the old `pending_` string copy) may occur.
  using memcached::RequestParser;
  RequestParser parser;
  auto request = BuildSetRequest("key1", "value-bytes");
  const std::uint8_t* base = request->Data();
  std::size_t parsed = 0;
  parser.Feed(std::move(request), [&](const RequestParser::Request& req) {
    ++parsed;
    EXPECT_EQ(req.key, "key1");
    EXPECT_EQ(req.value, "value-bytes");
    // Zero-copy: the key view aliases the original segment's storage.
    EXPECT_EQ(static_cast<const void*>(req.key.data()),
              static_cast<const void*>(base + sizeof(memcached::BinaryHeader) +
                                       sizeof(memcached::SetExtras)));
  });
  EXPECT_EQ(parsed, 1u);
  EXPECT_EQ(parser.coalesce_ops(), 0u);
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(Apps, MemcachedParserSplitRequestCoalescesExactlyOnce) {
  using memcached::RequestParser;
  RequestParser parser;
  auto request = BuildSetRequest("split-key", std::string(300, 'v'));
  std::size_t total = request->Length();
  // Feed the one request as five segments (worse than any real MSS split for this size).
  std::size_t parsed = 0;
  auto on_request = [&](const RequestParser::Request& req) {
    ++parsed;
    EXPECT_EQ(req.key, "split-key");
    EXPECT_EQ(req.value, std::string(300, 'v'));
  };
  std::size_t chunk = total / 5 + 1;
  for (std::size_t off = 0; off < total; off += chunk) {
    std::size_t n = std::min(chunk, total - off);
    parser.Feed(IOBuf::CopyBuffer(request->Data() + off, n), on_request);
  }
  EXPECT_EQ(parsed, 1u);
  // The old string accumulator appended on EVERY feed; the queue reassembles exactly once.
  EXPECT_EQ(parser.coalesce_ops(), 1u);
}

TEST(Apps, MemcachedParserStraddledHeaderStillCoalescesOnce) {
  // Even when the 24-byte header itself is split across segments (10-byte chunks), the
  // header is peeked chain-aware and only the completed request is coalesced — once.
  using memcached::RequestParser;
  RequestParser parser;
  auto request = BuildSetRequest("hdr-split-key", std::string(100, 'w'));
  std::size_t total = request->Length();
  std::size_t parsed = 0;
  auto on_request = [&](const RequestParser::Request& req) {
    ++parsed;
    EXPECT_EQ(req.key, "hdr-split-key");
    EXPECT_EQ(req.value, std::string(100, 'w'));
  };
  for (std::size_t off = 0; off < total; off += 10) {
    parser.Feed(IOBuf::CopyBuffer(request->Data() + off, std::min<std::size_t>(10, total - off)),
                on_request);
  }
  EXPECT_EQ(parsed, 1u);
  EXPECT_EQ(parser.coalesce_ops(), 1u);
}

TEST(Apps, MemcachedParserPipelinedBatchStaysZeroCopy) {
  // Several requests arriving in one segment (the loadgen's pipelining) parse in place too.
  using memcached::RequestParser;
  RequestParser parser;
  auto batch = BuildSetRequest("a", "1");
  batch->AppendChain(BuildGetRequest("a"));
  batch->AppendChain(BuildGetRequest("b"));
  batch->Coalesce();  // one wire segment carrying three requests
  std::size_t parsed = 0;
  parser.Feed(std::move(batch), [&](const RequestParser::Request&) { ++parsed; });
  EXPECT_EQ(parsed, 3u);
  EXPECT_EQ(parser.coalesce_ops(), 0u);
}

TEST(Apps, MemcachedParserRvalueCallableFedRepeatedly) {
  // Regression for the forwarding bug: an rvalue callable fed through Feed/FeedBytes must
  // not be re-forwarded (moved-from) inside the parse loop. A move-sensitive functor parsing
  // multiple requests per feed exercises exactly that path.
  using memcached::RequestParser;
  struct MoveSensitiveCounter {
    std::shared_ptr<std::size_t> count = std::make_shared<std::size_t>(0);
    void operator()(const RequestParser::Request&) {
      ASSERT_NE(count, nullptr) << "callable invoked after being moved from";
      ++*count;
    }
  };
  RequestParser parser;
  auto batch = BuildSetRequest("k", "v");
  batch->AppendChain(BuildGetRequest("k"));
  batch->Coalesce();
  MoveSensitiveCounter counter;
  auto count = counter.count;
  parser.Feed(std::move(batch), std::move(counter));
  EXPECT_EQ(*count, 2u);
}

// The environment must never change kernel *results* — only timing.
class V8KernelChecksums : public ::testing::TestWithParam<std::size_t> {};

TEST_P(V8KernelChecksums, SameAcrossEnvironments) {
  const auto& kernel = v8bench::AllKernels()[GetParam()];
  std::uint64_t ebbrt_sum;
  std::uint64_t linux_sum;
  {
    v8bench::Env env(v8bench::Env::Kind::kEbbRT, kernel.arena_bytes);
    ebbrt_sum = kernel.fn(env);
    EXPECT_EQ(env.page_faults(), 0u) << "EbbRT env must not fault";
  }
  {
    v8bench::Env env(v8bench::Env::Kind::kLinux, kernel.arena_bytes);
    linux_sum = kernel.fn(env);
  }
  EXPECT_EQ(ebbrt_sum, linux_sum) << kernel.name;
  EXPECT_NE(ebbrt_sum, 0u) << kernel.name << ": degenerate checksum";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, V8KernelChecksums,
                         ::testing::Range<std::size_t>(0, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return v8bench::AllKernels()[info.param].name;
                         });

}  // namespace
}  // namespace ebbrt
