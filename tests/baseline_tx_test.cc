// Baseline TX accounting symmetry (ROADMAP item): the "Linux" socket stack's send path —
// kernel buffering, Nagle, ACK-driven pumping — must be charged through exactly the same
// TransmitSegment/tcp_tx_* accounting and the same per-frame NIC costs as the EbbRT
// zero-copy path, or the fig5/fig6 comparison would hand one stack free wire segments.
//
// Both stacks share TcpManager::TransmitSegment (baseline::Socket sends through a TcpPcb),
// so the audit is expressible as invariants over the shared stats:
//   * the same byte stream costs the same tcp_tx_data_segments / payload bytes on either
//     stack (Nagle changes WHEN segments leave, not how many MSS-bounded segments a bulk
//     stream needs),
//   * every TCP segment (data and ACK alike) is one NIC frame — per-frame tx_frame_ns is
//     charged identically because it is charged in one place, Nic::Transmit.
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "src/baseline/socket.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

constexpr auto kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr auto kClientIp = Ipv4Addr::Of(10, 0, 0, 3);

// Receive-side sink: counts delivered payload bytes.
struct ByteSink final : public TcpHandler {
  std::size_t bytes = 0;
  void Receive(std::unique_ptr<IOBuf> data) override {
    bytes += data->ComputeChainDataLength();
  }
};

struct TxAccount {
  std::uint64_t data_segments;
  std::uint64_t payload_bytes;
  std::uint64_t segments;
  std::uint64_t nic_frames;
};

// Streams `len` bytes from client to server over the baseline socket API; returns the
// client (sender) side's accounting.
TxAccount RunBaselineSender(std::size_t len) {
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 1, kServerIp);
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto sink = std::make_shared<ByteSink>();
  server.Spawn(0, [&] {
    server.net->tcp().Listen(7000, [sink](TcpPcb pcb) {
      pcb.InstallHandler(std::shared_ptr<TcpHandler>(sink));
    });
  });
  auto socket_keeper = std::make_shared<std::shared_ptr<baseline::Socket>>();
  client.Spawn(0, [&, socket_keeper] {
    auto* stack = new baseline::SocketStack(bed.world(), *client.net,
                                            baseline::SocketStack::LinuxModel());
    stack->Connect(kServerIp, 7000).Then([len, socket_keeper](
                                             Future<std::shared_ptr<baseline::Socket>> f) {
      std::shared_ptr<baseline::Socket> socket = f.Get();
      *socket_keeper = socket;
      std::string payload(len, 'b');
      // One big write: the kernel buffer accepts it all and paces it out (window + Nagle).
      ASSERT_EQ(socket->Write(payload.data(), payload.size()), payload.size());
    });
  });
  // Baseline scheduler ticks run forever; bound the run.
  bed.world().RunUntil(500'000'000);
  EXPECT_EQ(sink->bytes, len);
  const NetworkManager::Stats& s = client.net->stats();
  return {s.tcp_tx_data_segments.load(), s.tcp_tx_payload_bytes.load(),
          s.tcp_tx_segments.load(), client.nic->frames_transmitted()};
}

// The same byte stream pushed through the EbbRT path (direct TcpPcb::Send, no kernel
// buffer); returns the client side's accounting.
TxAccount RunEbbrtSender(std::size_t len) {
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 1, kServerIp);
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto sink = std::make_shared<ByteSink>();
  server.Spawn(0, [&] {
    server.net->tcp().Listen(7000, [sink](TcpPcb pcb) {
      pcb.InstallHandler(std::shared_ptr<TcpHandler>(sink));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 7000).Then([len](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      auto payload = IOBuf::Create(len);
      std::memset(payload->WritableData(), 'b', len);
      ASSERT_TRUE(pcb.Send(std::move(payload)));
    });
  });
  bed.world().Run();
  EXPECT_EQ(sink->bytes, len);
  const NetworkManager::Stats& s = client.net->stats();
  return {s.tcp_tx_data_segments.load(), s.tcp_tx_payload_bytes.load(),
          s.tcp_tx_segments.load(), client.nic->frames_transmitted()};
}

TEST(BaselineTxAccounting, BulkStreamCostsTheSameSegmentsOnBothStacks) {
  constexpr std::size_t kLen = 8000;  // 5 full MSS segments + a Nagle-held tail
  TxAccount baseline = RunBaselineSender(kLen);
  TxAccount ebbrt = RunEbbrtSender(kLen);
  // Same payload, same MSS slicing, same counters — the comparison charges both stacks
  // identically per data segment.
  EXPECT_EQ(baseline.payload_bytes, kLen);
  EXPECT_EQ(ebbrt.payload_bytes, kLen);
  EXPECT_EQ(baseline.data_segments, ebbrt.data_segments);
  EXPECT_EQ(baseline.data_segments, (kLen + kTcpMss - 1) / kTcpMss);
}

TEST(BaselineTxAccounting, EveryTcpSegmentIsOneChargedNicFrame) {
  // tx_frame_ns is charged in Nic::Transmit — once per frame, for both stacks. A stack
  // could only dodge per-frame cost if it put segments on the wire without a NIC frame;
  // assert the books balance: frames == TCP segments + the (tiny) ARP exchange.
  TxAccount baseline = RunBaselineSender(4000);
  TxAccount ebbrt = RunEbbrtSender(4000);
  for (const TxAccount& account : {baseline, ebbrt}) {
    EXPECT_GE(account.nic_frames, account.segments);
    EXPECT_LE(account.nic_frames - account.segments, 2u);  // ARP request (+ retry slack)
  }
}

TEST(BaselineTxAccounting, NagleAggregatesButNeverChangesPayloadAccounting) {
  // Ten sub-MSS writes: Nagle may merge them into fewer segments, but every payload byte
  // and every emitted segment still flows through the shared stats.
  sim::Testbed bed;
  sim::TestbedNode server = bed.AddNode("server", 1, kServerIp);
  sim::TestbedNode client = bed.AddNode("client", 1, kClientIp);
  auto sink = std::make_shared<ByteSink>();
  server.Spawn(0, [&] {
    server.net->tcp().Listen(7000, [sink](TcpPcb pcb) {
      pcb.InstallHandler(std::shared_ptr<TcpHandler>(sink));
    });
  });
  auto socket_keeper = std::make_shared<std::shared_ptr<baseline::Socket>>();
  client.Spawn(0, [&, socket_keeper] {
    auto* stack = new baseline::SocketStack(bed.world(), *client.net,
                                            baseline::SocketStack::LinuxModel());
    stack->Connect(kServerIp, 7000).Then([socket_keeper](
                                             Future<std::shared_ptr<baseline::Socket>> f) {
      std::shared_ptr<baseline::Socket> socket = f.Get();
      *socket_keeper = socket;
      char chunk[100];
      std::memset(chunk, 'n', sizeof(chunk));
      for (int i = 0; i < 10; ++i) {
        ASSERT_EQ(socket->Write(chunk, sizeof(chunk)), sizeof(chunk));
      }
    });
  });
  bed.world().RunUntil(500'000'000);
  EXPECT_EQ(sink->bytes, 1000u);
  const NetworkManager::Stats& s = client.net->stats();
  EXPECT_EQ(s.tcp_tx_payload_bytes.load(), 1000u);
  // Nagle: first write leaves immediately, the rest coalesce behind the in-flight data —
  // strictly fewer data segments than writes, never more.
  EXPECT_LT(s.tcp_tx_data_segments.load(), 10u);
  EXPECT_GE(s.tcp_tx_data_segments.load(), 2u);
}

}  // namespace
}  // namespace ebbrt
