// Network stack integration tests on the simulated testbed: ARP, UDP, DHCP, TCP handshake /
// data transfer / windowing / close, loss recovery, core affinity, adaptive polling.
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);

// Shared TcpHandler shapes for the TCP suites (everything subclasses TcpHandler — the
// legacy callback shim is gone).

// Echoes every received chain back; closes when the peer closes.
class EchoHandler final : public TcpHandler {
 public:
  void Receive(std::unique_ptr<IOBuf> data) override { Pcb().Send(std::move(data)); }
  void Close() override { Pcb().Close(); }
};

// Accumulates received bytes into an external string; closes when the peer closes.
class SinkHandler final : public TcpHandler {
 public:
  explicit SinkHandler(std::string* out = nullptr) : out_(out) {}
  void Receive(std::unique_ptr<IOBuf> data) override {
    if (out_ != nullptr) {
      *out_ += std::string(data->AsStringView());
    }
  }
  void Close() override { Pcb().Close(); }

 private:
  std::string* out_;
};

// Application-paced sender (the paper's pump loop): sends as much of `payload` as the window
// allows, resumes from SendReady, optionally closes when done.
class PumpHandler final : public TcpHandler {
 public:
  PumpHandler(const std::string& payload, bool close_when_done, std::size_t max_chunk = 0)
      : payload_(payload), close_when_done_(close_when_done), max_chunk_(max_chunk) {}
  void Receive(std::unique_ptr<IOBuf>) override {}
  void SendReady() override { Pump(); }
  void Pump() {
    while (offset_ < payload_.size()) {
      std::size_t window = Pcb().SendWindowRemaining();
      if (window == 0) {
        return;  // SendReady re-enters
      }
      std::size_t chunk = std::min(window, payload_.size() - offset_);
      if (max_chunk_ != 0) {
        chunk = std::min(chunk, max_chunk_);
      }
      ASSERT_TRUE(Pcb().Send(IOBuf::CopyBuffer(payload_.data() + offset_, chunk)));
      offset_ += chunk;
    }
    if (close_when_done_) {
      Pcb().Close();
    }
  }

 private:
  const std::string& payload_;
  std::size_t offset_ = 0;
  bool close_when_done_;
  std::size_t max_chunk_;
};

TEST(Net, ArpResolvesAcrossMachines) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  MacAddr resolved{};
  bool done = false;
  client.Spawn(0, [&] {
    client.iface->ArpFind(kServerIp).Then([&](Future<MacAddr> f) {
      resolved = f.Get();
      done = true;
    });
  });
  bed.world().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(resolved, server.nic->mac());
}

TEST(Net, ArpCacheHitIsSynchronous) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  bool second_was_sync = false;
  client.Spawn(0, [&] {
    client.iface->ArpFind(kServerIp).Then([&](Future<MacAddr>) {
      // Figure 2's cached case: the continuation fires before ArpFind returns.
      bool flag = false;
      client.iface->ArpFind(kServerIp).Then([&flag](Future<MacAddr>) { flag = true; });
      second_was_sync = flag;
    });
  });
  bed.world().Run();
  EXPECT_TRUE(second_was_sync);
}

TEST(Net, UdpRoundTrip) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string received_at_server;
  std::string received_at_client;
  server.Spawn(0, [&] {
    server.net->BindUdp(7000, [&](Ipv4Addr src, std::uint16_t sport,
                                  std::unique_ptr<IOBuf> data) {
      received_at_server = std::string(data->AsStringView());
      server.net->SendUdp(src, 7000, sport, IOBuf::CopyBuffer("pong!"));
    });
  });
  client.Spawn(0, [&] {
    client.net->BindUdp(7001, [&](Ipv4Addr, std::uint16_t, std::unique_ptr<IOBuf> data) {
      received_at_client = std::string(data->AsStringView());
    });
    client.net->SendUdp(kServerIp, 7001, 7000, IOBuf::CopyBuffer("ping?"));
  });
  bed.world().Run();
  EXPECT_EQ(received_at_server, "ping?");
  EXPECT_EQ(received_at_client, "pong!");
}

TEST(Net, UdpUnboundPortDropsAndCounts) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  client.Spawn(0, [&] {
    client.net->SendUdp(kServerIp, 9999, 4242, IOBuf::CopyBuffer("nobody home"));
  });
  bed.world().Run();
  EXPECT_EQ(server.net->stats().udp_dropped.load(), 1u);
}

TEST(Net, DhcpAcquiresLease) {
  Testbed bed;
  TestbedNode server = bed.AddNode("dhcp-server", 1, Ipv4Addr::Of(10, 0, 0, 1));
  TestbedNode client = bed.AddNode("booting", 1, Ipv4Addr::Any());
  DhcpServer dhcpd(*server.net, Ipv4Addr::Of(10, 0, 0, 100), 16,
                   Ipv4Addr::Of(255, 255, 255, 0), Ipv4Addr::Of(10, 0, 0, 1));
  Interface::IpConfig got;
  bool done = false;
  client.Spawn(0, [&] {
    dhcp::Acquire(*client.net, *client.iface).Then([&](Future<Interface::IpConfig> f) {
      got = f.Get();
      done = true;
    });
  });
  bed.world().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(got.addr, Ipv4Addr::Of(10, 0, 0, 100));
  EXPECT_EQ(got.gateway, Ipv4Addr::Of(10, 0, 0, 1));
  EXPECT_EQ(client.iface->addr(), got.addr);
  EXPECT_EQ(dhcpd.leases(), 1u);
}

TEST(Net, TcpConnectAndEcho) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string echoed;
  bool closed = false;

  class EchoClient final : public TcpHandler {
   public:
    EchoClient(std::string& echoed, bool& closed) : echoed_(echoed), closed_(closed) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      echoed_ += std::string(data->AsStringView());
      if (echoed_.size() >= 11) {
        Pcb().Close();
      }
    }
    void Close() override { closed_ = true; }

   private:
    std::string& echoed_;
    bool& closed_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8000, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<EchoHandler>()));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8000).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<EchoClient>(echoed, closed)));
      pcb.Send(IOBuf::CopyBuffer("hello "));
      pcb.Send(IOBuf::CopyBuffer("world"));
    });
  });
  bed.world().Run();
  EXPECT_EQ(echoed, "hello world");
}

TEST(Net, TcpLargeTransferSegmentsAndReassembles) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  constexpr std::size_t kTotal = 50'000;  // crosses MSS and window boundaries
  std::string payload(kTotal, 'x');
  for (std::size_t i = 0; i < kTotal; ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(8001, [&received](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(&received)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8001).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      // The application-owned pacing loop the paper prescribes: send as much as the window
      // allows, continue when ACKs open it again.
      auto pump = std::make_unique<PumpHandler>(payload, /*close_when_done=*/true);
      auto* raw = pump.get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::move(pump)));
      raw->Pump();
    });
  });
  bed.world().Run();
  EXPECT_EQ(received.size(), kTotal);
  EXPECT_EQ(received, payload);
}

TEST(Net, TcpSendBeyondWindowRefused) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  bool refused = false;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(8002, [](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8002).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
      // 100 KiB exceeds the peer's 64 KiB advertised window: the stack must refuse rather
      // than buffer (the paper's no-stack-buffering contract).
      auto big = IOBuf::Create(100'000);
      refused = !pcb.Send(std::move(big));
    });
  });
  bed.world().Run();
  EXPECT_TRUE(refused);
}

TEST(Net, TcpApplicationControlsReceiveWindow) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::size_t window_seen = 0;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(8003, [](TcpPcb pcb) {
      pcb.SetReceiveWindow(1024);  // the application throttles the peer
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8003).Then([&](Future<TcpPcb> f) {
      auto pcb = std::make_shared<TcpPcb>(f.Get());
      pcb->InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>()));
      // Give the window update a round trip, then observe the clamped send window.
      Timer::Instance()->Start(2'000'000, [pcb, &window_seen] {
        window_seen = pcb->SendWindowRemaining();
      });
      pcb->Send(IOBuf::CopyBuffer("x"));
    });
  });
  bed.world().Run();
  EXPECT_LE(window_seen, 1024u);
  EXPECT_GT(window_seen, 0u);
}

TEST(Net, TcpRecoversFromPacketLoss) {
  Testbed bed;
  bed.fabric().SetLossRate(0.05, /*seed=*/7);  // 5% deterministic loss
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  constexpr std::size_t kTotal = 20'000;
  std::string payload(kTotal, '?');
  for (std::size_t i = 0; i < kTotal; ++i) {
    payload[i] = static_cast<char>('0' + i % 10);
  }
  std::string received;
  server.Spawn(0, [&] {
    server.net->tcp().Listen(8004, [&received](TcpPcb pcb) {
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<SinkHandler>(&received)));
    });
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8004).Then([&](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      auto pump = std::make_unique<PumpHandler>(payload, /*close_when_done=*/false,
                                                /*max_chunk=*/kTcpMss);
      auto* raw = pump.get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::move(pump)));
      raw->Pump();
    });
  });
  // Loss recovery needs retransmission timeouts: run with a generous virtual horizon.
  bed.world().RunUntil(30ull * 1000 * 1000 * 1000);
  EXPECT_EQ(received, payload) << "loss recovery failed: got " << received.size() << "/"
                               << kTotal;
  EXPECT_GT(bed.fabric().frames_dropped(), 0u);  // the test actually exercised loss
}

TEST(Net, TcpConnectionStateLivesOnRssCore) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 4, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::vector<std::size_t> accept_cores;
  std::vector<std::size_t> rx_cores;

  class CoreRecordingEcho final : public TcpHandler {
   public:
    explicit CoreRecordingEcho(std::vector<std::size_t>& rx_cores) : rx_cores_(rx_cores) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      rx_cores_.push_back(CurrentContext().machine_core);
      Pcb().Send(std::move(data));
    }

   private:
    std::vector<std::size_t>& rx_cores_;
  };

  class CountingClient final : public TcpHandler {
   public:
    explicit CountingClient(int& done) : done_(done) {}
    void Receive(std::unique_ptr<IOBuf>) override { ++done_; }

   private:
    int& done_;
  };

  server.Spawn(0, [&] {
    server.net->tcp().Listen(8005, [&](TcpPcb pcb) {
      accept_cores.push_back(CurrentContext().machine_core);
      pcb.InstallHandler(
          std::unique_ptr<TcpHandler>(std::make_unique<CoreRecordingEcho>(rx_cores)));
    });
  });
  constexpr int kConns = 8;
  int done = 0;
  client.Spawn(0, [&] {
    for (int i = 0; i < kConns; ++i) {
      client.net->tcp().Connect(*client.iface, kServerIp, 8005).Then([&](Future<TcpPcb> f) {
        TcpPcb pcb = f.Get();
        pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<CountingClient>(done)));
        pcb.Send(IOBuf::CopyBuffer("affinity"));
      });
    }
  });
  bed.world().Run();
  EXPECT_EQ(done, kConns);
  ASSERT_EQ(accept_cores.size(), rx_cores.size());
  // Every receive ran on the same core that accepted its connection (RSS affinity), and the
  // 8 connections actually spread over multiple server cores.
  for (std::size_t i = 0; i < accept_cores.size(); ++i) {
    EXPECT_EQ(accept_cores[i], rx_cores[i]);
  }
  std::set<std::size_t> distinct(accept_cores.begin(), accept_cores.end());
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Net, AdaptivePollingEngagesUnderLoad) {
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  // Unvirtualized client (like the paper's load generator): no per-packet virtio kick, so it
  // can blast at wire rate and actually overwhelm the server's interrupt path.
  TestbedNode client = bed.AddNode("client", 1, kClientIp, sim::HypervisorModel::Native());
  std::uint64_t received = 0;
  server.Spawn(0, [&] {
    server.net->BindUdp(6000, [&received](Ipv4Addr, std::uint16_t, std::unique_ptr<IOBuf>) {
      ++received;
    });
  });
  // Blast datagrams so a burst lands behind one interrupt, engaging the polling mode.
  constexpr int kBurst = 400;
  client.Spawn(0, [&] {
    for (int i = 0; i < kBurst; ++i) {
      client.net->SendUdp(kServerIp, 6000, 6000, IOBuf::CopyBuffer("burst"));
    }
  });
  bed.world().Run();
  EXPECT_EQ(received, static_cast<std::uint64_t>(kBurst));
  EXPECT_GT(server.nic->frames_polled(), 0u) << "polling mode never engaged";
  // Far fewer interrupts than frames: the driver batched via polling.
  EXPECT_LT(server.nic->interrupts_raised(), static_cast<std::uint64_t>(kBurst) / 4);
}

}  // namespace
}  // namespace ebbrt
