// RCU tests: grace-period semantics on both executors, hash table correctness under
// concurrent readers/writers, deferred reclamation safety.
#include <atomic>
#include <string>

#include <gtest/gtest.h>

#include "src/event/sim_world.h"
#include "src/event/thread_machine.h"
#include "src/rcu/rcu.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {
namespace {

TEST(Rcu, CallbackRunsAfterAllCoresQuiesce) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 4);
  std::atomic<bool> reclaimed{false};
  std::atomic<int> readers_done{0};
  SimWorld::SpawnOn(m, 0, [&] {
    // Queue "reader" events on every core, then CallRcu: the callback must run only after
    // every core has dispatched past its pending events' boundaries.
    auto& em = event::Local();
    for (std::size_t c = 0; c < 4; ++c) {
      em.SpawnRemote([&readers_done] { readers_done.fetch_add(1); }, c);
    }
    rcu::Call([&] {
      reclaimed = true;
      // Every core already passed at least one boundary; pre-existing events are finished.
      EXPECT_EQ(readers_done.load(), 4);
    });
  });
  world.Run();
  EXPECT_TRUE(reclaimed.load());
}

TEST(Rcu, CallbacksRunInThreadMachineToo) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<bool> ran{false};
  machine.RunSync(0, [&] { rcu::Call([&ran] { ran = true; }); });
  for (int i = 0; i < 200 && !ran.load(); ++i) {
    machine.RunSync(1, [] {});
  }
  EXPECT_TRUE(ran.load());
  machine.Shutdown();
}

TEST(Rcu, ImmediateWhenNoEventLoops) {
  Runtime rt(RuntimeKind::kNative, "bare");
  rt.AddCores(1);
  bool ran = false;
  RcuManagerRoot::For(rt).CallRcu([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

class RcuTableTest : public ::testing::Test {
 protected:
  RcuTableTest() : machine_(4) { machine_.Start(); }
  ~RcuTableTest() override { machine_.Shutdown(); }
  ThreadMachine machine_;
};

TEST_F(RcuTableTest, InsertFindErase) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, std::string> table(RcuManagerRoot::For(machine_.runtime()), 4);
    EXPECT_TRUE(table.Insert(1, "one"));
    EXPECT_TRUE(table.Insert(2, "two"));
    EXPECT_FALSE(table.Insert(1, "uno"));  // duplicate
    ASSERT_NE(table.Find(1), nullptr);
    EXPECT_EQ(*table.Find(1), "one");
    EXPECT_EQ(table.Find(3), nullptr);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_TRUE(table.Erase(1));
    EXPECT_FALSE(table.Erase(1));
    EXPECT_EQ(table.Find(1), nullptr);
    EXPECT_EQ(table.size(), 1u);
  });
}

TEST_F(RcuTableTest, InsertOrReplaceSwapsValue) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 4);
    table.InsertOrReplace(7, 70);
    EXPECT_EQ(*table.Find(7), 70);
    table.InsertOrReplace(7, 71);
    EXPECT_EQ(*table.Find(7), 71);
    EXPECT_EQ(table.size(), 1u);
  });
}

TEST_F(RcuTableTest, CollidingKeysShareBucket) {
  machine_.RunSync(0, [&] {
    // 2^0 = 1 bucket: every key collides; chain traversal must still be correct.
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 0);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(table.Insert(i, i * 10));
    }
    for (int i = 0; i < 100; ++i) {
      ASSERT_NE(table.Find(i), nullptr);
      EXPECT_EQ(*table.Find(i), i * 10);
    }
    for (int i = 0; i < 100; i += 2) {
      EXPECT_TRUE(table.Erase(i));
    }
    for (int i = 0; i < 100; ++i) {
      if (i % 2 == 0) {
        EXPECT_EQ(table.Find(i), nullptr);
      } else {
        ASSERT_NE(table.Find(i), nullptr);
      }
    }
  });
}

TEST_F(RcuTableTest, ForEachVisitsAll) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 3);
    for (int i = 0; i < 50; ++i) {
      table.Insert(i, i);
    }
    int sum = 0;
    table.ForEach([&sum](const int& k, const int& v) { sum += v; });
    EXPECT_EQ(sum, 49 * 50 / 2);
  });
}

TEST_F(RcuTableTest, ConcurrentReadersDuringWrites) {
  // Readers on three cores hammer Find while core 0 churns insert/erase. RCU must keep every
  // observed pointer valid (we copy the value immediately — validity within the event).
  auto table = std::make_shared<RcuHashTable<int, int>>(
      RcuManagerRoot::For(machine_.runtime()), 6);
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    table->Insert(i, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::atomic<int> reads{0};

  // Reader events re-spawn themselves until stopped.
  for (std::size_t core = 1; core < 4; ++core) {
    machine_.Spawn(core, [table, &stop, &bad, &reads] {
      struct Reader {
        static void Run(std::shared_ptr<RcuHashTable<int, int>> t, std::atomic<bool>* stop,
                        std::atomic<int>* bad, std::atomic<int>* reads) {
          for (int i = 0; i < kKeys; ++i) {
            int* v = t->Find(i);
            if (v != nullptr && *v != i) {
              bad->fetch_add(1);
            }
          }
          reads->fetch_add(1);
          if (!stop->load(std::memory_order_relaxed)) {
            event::Local().Spawn(
                [t, stop, bad, reads] { Run(t, stop, bad, reads); });
          }
        }
      };
      Reader::Run(table, &stop, &bad, &reads);
    });
  }
  // Writer: churn on core 0.
  for (int round = 0; round < 200; ++round) {
    machine_.RunSync(0, [table] {
      for (int i = 0; i < kKeys; i += 3) {
        table->Erase(i);
        table->Insert(i, i);
      }
    });
  }
  stop = true;
  for (int i = 0; i < 100 && reads.load() == 0; ++i) {
    machine_.RunSync(1, [] {});
  }
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace ebbrt
