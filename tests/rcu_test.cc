// RCU tests: grace-period semantics on both executors, hash table correctness under
// concurrent readers/writers, deferred reclamation safety.
#include <atomic>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "src/event/sim_world.h"
#include "src/event/thread_machine.h"
#include "src/rcu/rcu.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {
namespace {

TEST(Rcu, CallbackRunsAfterAllCoresQuiesce) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 4);
  std::atomic<bool> reclaimed{false};
  std::atomic<int> readers_done{0};
  SimWorld::SpawnOn(m, 0, [&] {
    // Queue "reader" events on every core, then CallRcu: the callback must run only after
    // every core has dispatched past its pending events' boundaries.
    auto& em = event::Local();
    for (std::size_t c = 0; c < 4; ++c) {
      em.SpawnRemote([&readers_done] { readers_done.fetch_add(1); }, c);
    }
    rcu::Call([&] {
      reclaimed = true;
      // Every core already passed at least one boundary; pre-existing events are finished.
      EXPECT_EQ(readers_done.load(), 4);
    });
  });
  world.Run();
  EXPECT_TRUE(reclaimed.load());
}

TEST(Rcu, CallbacksIssuedInOneEventShareOneEpoch) {
  // Coalescing (interconnect PR): K CallRcu's inside one event must flush as ONE epoch —
  // one marker broadcast per (core, event boundary), not per callback — and every callback
  // still runs after the grace period, in FIFO order.
  SimWorld world;
  Runtime& m = world.AddMachine("coalesce", 4);
  constexpr int kCallbacks = 16;
  std::atomic<int> ran{0};
  std::vector<int> order;
  SimWorld::SpawnOn(m, 0, [&] {
    auto& rcu_root = RcuManagerRoot::For(CurrentRuntime());
    std::uint64_t epochs_before = rcu_root.epochs_started();
    std::uint64_t coalesced_before = rcu_root.callbacks_coalesced();
    for (int i = 0; i < kCallbacks; ++i) {
      rcu::Call([&, i] {
        ran.fetch_add(1);
        order.push_back(i);
      });
    }
    // Nothing flushed mid-event: the batch waits for this event's boundary.
    EXPECT_EQ(rcu_root.epochs_started(), epochs_before);
    EXPECT_EQ(rcu_root.callbacks_coalesced(), coalesced_before + kCallbacks - 1);
    event::Local().QueueEndOfEvent([&, epochs_before] {
      // Runs at the same boundary, after the RCU flush hook (FIFO hook order): exactly one
      // epoch was opened for the whole batch.
      EXPECT_EQ(RcuManagerRoot::For(CurrentRuntime()).epochs_started(),
                epochs_before + 1);
    });
  });
  world.Run();
  EXPECT_EQ(ran.load(), kCallbacks);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCallbacks));
  for (int i = 0; i < kCallbacks; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);  // batch preserves issue order
  }
}

TEST(Rcu, CallbacksRunInThreadMachineToo) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<bool> ran{false};
  machine.RunSync(0, [&] { rcu::Call([&ran] { ran = true; }); });
  for (int i = 0; i < 200 && !ran.load(); ++i) {
    machine.RunSync(1, [] {});
  }
  EXPECT_TRUE(ran.load());
  machine.Shutdown();
}

TEST(Rcu, ImmediateWhenNoEventLoops) {
  Runtime rt(RuntimeKind::kNative, "bare");
  rt.AddCores(1);
  bool ran = false;
  RcuManagerRoot::For(rt).CallRcu([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

class RcuTableTest : public ::testing::Test {
 protected:
  RcuTableTest() : machine_(4) { machine_.Start(); }
  ~RcuTableTest() override { machine_.Shutdown(); }
  ThreadMachine machine_;
};

TEST_F(RcuTableTest, InsertFindErase) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, std::string> table(RcuManagerRoot::For(machine_.runtime()), 4);
    EXPECT_TRUE(table.Insert(1, "one"));
    EXPECT_TRUE(table.Insert(2, "two"));
    EXPECT_FALSE(table.Insert(1, "uno"));  // duplicate
    ASSERT_NE(table.Find(1), nullptr);
    EXPECT_EQ(*table.Find(1), "one");
    EXPECT_EQ(table.Find(3), nullptr);
    EXPECT_EQ(table.size(), 2u);
    EXPECT_TRUE(table.Erase(1));
    EXPECT_FALSE(table.Erase(1));
    EXPECT_EQ(table.Find(1), nullptr);
    EXPECT_EQ(table.size(), 1u);
  });
}

TEST_F(RcuTableTest, InsertOrReplaceSwapsValue) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 4);
    table.InsertOrReplace(7, 70);
    EXPECT_EQ(*table.Find(7), 70);
    table.InsertOrReplace(7, 71);
    EXPECT_EQ(*table.Find(7), 71);
    EXPECT_EQ(table.size(), 1u);
  });
}

TEST_F(RcuTableTest, ReplaceIfPresentRequiresTheKey) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 4);
    // Absent key: REPLACE must fail and must not insert.
    EXPECT_FALSE(table.ReplaceIfPresent(7, 70));
    EXPECT_EQ(table.Find(7), nullptr);
    EXPECT_EQ(table.size(), 0u);
    // Present key: swaps the value in place, size unchanged.
    EXPECT_TRUE(table.Insert(7, 70));
    EXPECT_TRUE(table.ReplaceIfPresent(7, 71));
    ASSERT_NE(table.Find(7), nullptr);
    EXPECT_EQ(*table.Find(7), 71);
    EXPECT_EQ(table.size(), 1u);
    // Deleted key stays deleted: REPLACE after Erase must not resurrect it.
    EXPECT_TRUE(table.Erase(7));
    EXPECT_FALSE(table.ReplaceIfPresent(7, 72));
    EXPECT_EQ(table.Find(7), nullptr);
  });
}

TEST_F(RcuTableTest, ReplaceIfPresentNeverResurrectsUnderChurn) {
  // The TOCTOU this API closes: the old store implemented REPLACE as Get-then-Set, so a
  // Delete between the two resurrected the key. Here cores race Delete against
  // ReplaceIfPresent on one key; after every round settles, the key must exist iff some
  // replace legitimately beat the delete — and once a round ends with the key deleted and
  // no writer in flight, a late ReplaceIfPresent must keep failing.
  auto table = std::make_shared<RcuHashTable<int, int>>(
      RcuManagerRoot::For(machine_.runtime()), 2);
  for (int round = 0; round < 200; ++round) {
    machine_.RunSync(0, [table] { table->InsertOrReplace(1, 10); });
    std::atomic<bool> replaced{false};
    std::atomic<bool> erased{false};
    machine_.Spawn(1, [table, &replaced] { replaced = table->ReplaceIfPresent(1, 11); });
    machine_.Spawn(2, [table, &erased] { erased = table->Erase(1); });
    machine_.RunSync(1, [] {});
    machine_.RunSync(2, [] {});
    EXPECT_TRUE(erased.load());  // the key existed at round start; exactly one erase wins
    machine_.RunSync(0, [table, &replaced] {
      if (replaced.load()) {
        // Replace won the race, then the erase removed the replacement: key gone either way.
      }
      EXPECT_EQ(table->Find(1), nullptr);
      // The key is now deleted with no writer in flight: replace must not resurrect it.
      EXPECT_FALSE(table->ReplaceIfPresent(1, 12));
      EXPECT_EQ(table->Find(1), nullptr);
    });
  }
  EXPECT_EQ(table->size(), 0u);
}

TEST_F(RcuTableTest, HeterogeneousFindNeedsNoKeyMaterialization) {
  machine_.RunSync(0, [&] {
    // string-keyed table probed with a string_view: the transparent Hash/Eq pair resolves
    // the lookup without constructing a std::string.
    struct TransparentHash {
      using is_transparent = void;
      std::size_t operator()(std::string_view s) const {
        return std::hash<std::string_view>{}(s);
      }
    };
    RcuHashTable<std::string, int, TransparentHash> table(
        RcuManagerRoot::For(machine_.runtime()), 4);
    EXPECT_TRUE(table.Insert("alpha", 1));
    EXPECT_TRUE(table.Insert("beta", 2));
    std::string_view probe{"alpha"};
    ASSERT_NE(table.Find(probe), nullptr);
    EXPECT_EQ(*table.Find(probe), 1);
    EXPECT_EQ(table.Find(std::string_view{"gamma"}), nullptr);
  });
}

TEST_F(RcuTableTest, CollidingKeysShareBucket) {
  machine_.RunSync(0, [&] {
    // 2^0 = 1 bucket: every key collides; chain traversal must still be correct.
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 0);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(table.Insert(i, i * 10));
    }
    for (int i = 0; i < 100; ++i) {
      ASSERT_NE(table.Find(i), nullptr);
      EXPECT_EQ(*table.Find(i), i * 10);
    }
    for (int i = 0; i < 100; i += 2) {
      EXPECT_TRUE(table.Erase(i));
    }
    for (int i = 0; i < 100; ++i) {
      if (i % 2 == 0) {
        EXPECT_EQ(table.Find(i), nullptr);
      } else {
        ASSERT_NE(table.Find(i), nullptr);
      }
    }
  });
}

TEST_F(RcuTableTest, ForEachVisitsAll) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, int> table(RcuManagerRoot::For(machine_.runtime()), 3);
    for (int i = 0; i < 50; ++i) {
      table.Insert(i, i);
    }
    int sum = 0;
    table.ForEach([&sum](const int& /*key*/, const int& v) { sum += v; });
    EXPECT_EQ(sum, 49 * 50 / 2);
  });
}

TEST_F(RcuTableTest, ExtractClaimsValueExactlyOnce) {
  machine_.RunSync(0, [&] {
    RcuHashTable<int, std::shared_ptr<int>> table(RcuManagerRoot::For(machine_.runtime()),
                                                  4);
    table.Insert(5, std::make_shared<int>(50));
    std::shared_ptr<int> claimed;
    EXPECT_TRUE(table.Extract(5, &claimed));
    ASSERT_NE(claimed, nullptr);
    EXPECT_EQ(*claimed, 50);
    EXPECT_EQ(table.Find(5), nullptr);
    EXPECT_EQ(table.size(), 0u);
    // Second extract (a duplicate response, in RPC terms) finds nothing.
    std::shared_ptr<int> second;
    EXPECT_FALSE(table.Extract(5, &second));
    EXPECT_EQ(second, nullptr);
  });
}

TEST(RcuSim, EraseDefersReclamationPastTheReadersEvent) {
  // The epoch-reclamation ordering contract: a pointer obtained by Find stays valid for the
  // remainder of the observing event even when the node is erased underneath it, and the
  // node's storage is reclaimed only after every core passes an event boundary.
  SimWorld world;
  Runtime& m = world.AddMachine("epoch", 4);
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> alive = sentinel;
  auto table = std::make_shared<RcuHashTable<int, std::shared_ptr<int>>>(
      RcuManagerRoot::For(m), 4);
  table->Insert(1, std::move(sentinel));
  bool checked_in_event = false;
  bool checked_after_grace = false;
  SimWorld::SpawnOn(m, 0, [&] {
    std::shared_ptr<int>* p = table->Find(1);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(table->Erase(1));
    // Still inside the read-side section (this event): the erased node — and the value the
    // earlier Find returned — must be intact. The table no longer serves the key, but the
    // in-hand pointer does.
    EXPECT_EQ(table->Find(1), nullptr);
    EXPECT_FALSE(alive.expired());
    EXPECT_EQ(**p, 7);
    checked_in_event = true;
    // Order the post-grace check behind the erase's own reclamation: a second CallRcu's
    // markers queue behind the first's on every core, so by the time this callback runs,
    // the erased node has been deleted.
    rcu::Call([&] {
      EXPECT_TRUE(alive.expired());
      checked_after_grace = true;
    });
  });
  world.Run();
  EXPECT_TRUE(checked_in_event);
  EXPECT_TRUE(checked_after_grace);
}

TEST(RcuSim, StressReadersOnEveryCoreRaceInsertErase) {
  // Deterministic SimWorld stress: reader events on cores 1..3 scan the whole key range and
  // re-spawn themselves; core 0 churns erase/insert (and InsertOrReplace) between their
  // events. Invariants: a found value always matches its key (no torn node is ever visible),
  // and every deferred reclamation eventually runs (tracked via shared_ptr use counts).
  SimWorld world;
  Runtime& m = world.AddMachine("stress", 4);
  auto table = std::make_shared<RcuHashTable<int, std::shared_ptr<int>>>(
      RcuManagerRoot::For(m), 3);  // 8 buckets for 48 keys: heavy chains on purpose
  constexpr int kKeys = 48;
  constexpr int kWriterRounds = 40;
  auto live_values = std::make_shared<std::vector<std::weak_ptr<int>>>();
  for (int i = 0; i < kKeys; ++i) {
    auto value = std::make_shared<int>(i);
    live_values->push_back(value);
    table->Insert(i, std::move(value));
  }
  auto bad = std::make_shared<std::atomic<int>>(0);
  auto reads = std::make_shared<std::atomic<int>>(0);
  auto writer_done = std::make_shared<bool>(false);

  struct Reader {
    static void Run(std::shared_ptr<RcuHashTable<int, std::shared_ptr<int>>> t,
                    std::shared_ptr<std::atomic<int>> bad,
                    std::shared_ptr<std::atomic<int>> reads,
                    std::shared_ptr<bool> writer_done) {
      for (int i = 0; i < kKeys; ++i) {
        std::shared_ptr<int>* v = t->Find(i);
        if (v != nullptr && **v % kKeys != i) {
          bad->fetch_add(1);
        }
      }
      reads->fetch_add(1);
      if (!*writer_done) {
        event::Local().Spawn([t, bad, reads, writer_done] {
          Run(t, bad, reads, writer_done);
        });
      }
    }
  };
  for (std::size_t core = 1; core < 4; ++core) {
    SimWorld::SpawnOn(m, core, [table, bad, reads, writer_done] {
      Reader::Run(table, bad, reads, writer_done);
    });
  }

  struct Writer {
    static void Run(int round, std::shared_ptr<RcuHashTable<int, std::shared_ptr<int>>> t,
                    std::shared_ptr<std::vector<std::weak_ptr<int>>> live,
                    std::shared_ptr<bool> done) {
      if (round == kWriterRounds) {
        *done = true;
        return;
      }
      for (int i = round % 3; i < kKeys; i += 3) {
        t->Erase(i);
        auto value = std::make_shared<int>(i + kKeys * (round + 1));  // % kKeys == i
        live->push_back(value);
        t->Insert(i, std::move(value));
      }
      for (int i = (round + 1) % 5; i < kKeys; i += 5) {
        auto value = std::make_shared<int>(i + kKeys * (round + 7));
        live->push_back(value);
        t->InsertOrReplace(i, std::move(value));
      }
      event::Local().Spawn([round, t, live, done] { Run(round + 1, t, live, done); });
    }
  };
  SimWorld::SpawnOn(m, 0, [table, live_values, writer_done] {
    Writer::Run(0, table, live_values, writer_done);
  });

  world.Run();
  EXPECT_EQ(bad->load(), 0);
  EXPECT_GT(reads->load(), kWriterRounds);  // readers genuinely interleaved with the churn
  EXPECT_EQ(table->size(), static_cast<std::size_t>(kKeys));
  // Epoch-reclamation accounting: when the world quiesces, every value ever displaced by
  // Erase/InsertOrReplace has been reclaimed (its node deleted after a grace period); only
  // the final table contents survive.
  std::size_t alive = 0;
  for (const std::weak_ptr<int>& w : *live_values) {
    if (!w.expired()) {
      ++alive;
    }
  }
  EXPECT_EQ(alive, static_cast<std::size_t>(kKeys));
}

TEST_F(RcuTableTest, ConcurrentReadersDuringWrites) {
  // Readers on three cores hammer Find while core 0 churns insert/erase. RCU must keep every
  // observed pointer valid (we copy the value immediately — validity within the event).
  auto table = std::make_shared<RcuHashTable<int, int>>(
      RcuManagerRoot::For(machine_.runtime()), 6);
  constexpr int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    table->Insert(i, i);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::atomic<int> reads{0};

  // Reader events re-spawn themselves until stopped.
  for (std::size_t core = 1; core < 4; ++core) {
    machine_.Spawn(core, [table, &stop, &bad, &reads] {
      struct Reader {
        static void Run(std::shared_ptr<RcuHashTable<int, int>> t, std::atomic<bool>* stop,
                        std::atomic<int>* bad, std::atomic<int>* reads) {
          for (int i = 0; i < kKeys; ++i) {
            int* v = t->Find(i);
            if (v != nullptr && *v != i) {
              bad->fetch_add(1);
            }
          }
          reads->fetch_add(1);
          if (!stop->load(std::memory_order_relaxed)) {
            event::Local().Spawn(
                [t, stop, bad, reads] { Run(t, stop, bad, reads); });
          }
        }
      };
      Reader::Run(table, &stop, &bad, &reads);
    });
  }
  // Writer: churn on core 0.
  for (int round = 0; round < 200; ++round) {
    machine_.RunSync(0, [table] {
      for (int i = 0; i < kKeys; i += 3) {
        table->Erase(i);
        table->Insert(i, i);
      }
    });
  }
  stop = true;
  for (int i = 0; i < 100 && reads.load() == 0; ++i) {
    machine_.RunSync(1, [] {});
  }
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace ebbrt
