#include "src/platform/move_function.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace ebbrt {
namespace {

TEST(MoveFunction, EmptyIsFalsy) {
  MoveFunction<void()> fn;
  EXPECT_FALSE(fn);
}

TEST(MoveFunction, InvokesLambda) {
  int x = 0;
  MoveFunction<void()> fn = [&x] { x = 42; };
  fn();
  EXPECT_EQ(x, 42);
}

TEST(MoveFunction, ReturnsValue) {
  MoveFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(MoveFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(7);
  MoveFunction<int()> fn = [p = std::move(p)] { return *p; };
  EXPECT_EQ(fn(), 7);
}

TEST(MoveFunction, MoveTransfersOwnership) {
  auto p = std::make_unique<int>(9);
  MoveFunction<int()> a = [p = std::move(p)] { return *p; };
  MoveFunction<int()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is documented empty
  EXPECT_TRUE(b);
  EXPECT_EQ(b(), 9);
}

TEST(MoveFunction, LargeCaptureGoesToHeap) {
  // Capture larger than the inline buffer must still work (heap path).
  std::string big(1024, 'x');
  int arr[64] = {0};
  arr[13] = 5;
  MoveFunction<std::size_t()> fn = [big, arr] { return big.size() + arr[13]; };
  EXPECT_EQ(fn(), 1029u);
}

TEST(MoveFunction, MoveAssignReplacesTarget) {
  int destroyed = 0;
  struct Probe {
    int* counter;
    ~Probe() {
      if (counter != nullptr) {
        ++*counter;
      }
    }
    Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    Probe(const Probe&) = delete;
  };
  {
    MoveFunction<void()> a = [p = Probe(&destroyed)] {};
    MoveFunction<void()> b = [] {};
    a = std::move(b);
    EXPECT_EQ(destroyed, 1);  // old callable destroyed on assignment
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(MoveFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    MoveFunction<void()> fn = [counter] { ++*counter; };
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(MoveFunction, MutableLambdaKeepsState) {
  MoveFunction<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

}  // namespace
}  // namespace ebbrt
