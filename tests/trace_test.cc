// Distributed-tracing tests: trace ids survive RPC retries under fresh request ids, and a
// MultiGet that crosses a shard failover yields exactly the span tree the design promises —
// one local root, one client span per frame issued (the dead primary's marked kTimeout),
// and server spans on the survivors parented on the client spans that reached them.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/memcached/shard.h"
#include "src/dist/rpc.h"
#include "src/event/timer.h"
#include "src/obs/metrics.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);
constexpr EbbId kEchoService = kFirstStaticUserId + 34;

class EchoServer final : public dist::RpcServer {
 public:
  EchoServer(Runtime& runtime, EbbId service) : dist::RpcServer(runtime, service) {}

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t /*opcode*/,
                  std::uint32_t aux, std::unique_ptr<IOBuf> body) override {
    Reply(from, request_id, aux, std::move(body));
  }
};

TEST(Tracing, TraceIdSurvivesRetryUnderFreshRequestId) {
  // Attempt 1 expires through a delayed link; the healed re-send (a FRESH request id)
  // completes. One logical call -> ONE client span with attempts == 2, and BOTH server-side
  // executions carry the same trace id, parented on that one client span — the re-send
  // re-sent the trace identity, not just the payload.
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::shared_ptr<EchoServer> echo;
  server.Spawn(0, [&] {
    obs::ObsRoot::For(*server.runtime);  // tracing is the default level
    echo = std::make_shared<EchoServer>(*server.runtime, kEchoService);
    server.runtime->Adopt(echo);
  });
  std::shared_ptr<dist::RpcClient> rpc;
  bool succeeded = false;
  client.Spawn(0, [&] {
    obs::ObsRoot::For(*client.runtime);
    rpc = std::make_shared<dist::RpcClient>(*client.runtime, kEchoService, kServerIp);
    // Warm call first so the dial doesn't ride the faulted link (fault_test's recipe).
    rpc->Call(1, 0, IOBuf::CopyBuffer("warm"), dist::CallOptions{})
        .Then([&](Future<dist::RpcClient::Response> wf) {
          wf.Get();
          obs::ObsRoot::For(*client.runtime).ClearSpans();
          obs::ObsRoot::For(*server.runtime).ClearSpans();
          bed.fabric().SetLinkFault(server.nic->port(),
                                    {.drop_rate = 0, .extra_delay_ns = 1'000'000});
          Timer::Instance()->Start(
              1'200'000, [&] { bed.fabric().ClearLinkFault(server.nic->port()); });
          dist::CallOptions options{
              /*deadline_ns=*/400'000,
              dist::RetryPolicy{/*max_attempts=*/3, /*initial_backoff_ns=*/2'000'000,
                                /*max_backoff_ns=*/8'000'000}};
          rpc->Call(1, 0, IOBuf::CopyBuffer("traced"), options)
              .Then([&](Future<dist::RpcClient::Response> f) {
                f.Get();
                succeeded = true;
              });
        });
  });
  bed.world().Run();
  ASSERT_TRUE(succeeded);

  std::vector<obs::SpanRecord> client_spans = obs::ObsRoot::For(*client.runtime).Spans();
  ASSERT_EQ(client_spans.size(), 1u);  // one LOGICAL call, one span, despite two sends
  const obs::SpanRecord& call_span = client_spans[0];
  EXPECT_EQ(call_span.kind, obs::SpanKind::kClient);
  EXPECT_EQ(call_span.status, obs::SpanStatus::kOk);
  EXPECT_EQ(call_span.attempts, 2u);
  EXPECT_EQ(call_span.service, kEchoService);
  EXPECT_NE(call_span.trace_id, 0u);
  EXPECT_GT(call_span.end_ns, call_span.start_ns);

  std::vector<obs::SpanRecord> server_spans = obs::ObsRoot::For(*server.runtime).Spans();
  ASSERT_EQ(server_spans.size(), 2u);  // both attempts executed (attempt 1's reply was late)
  for (const obs::SpanRecord& span : server_spans) {
    EXPECT_EQ(span.kind, obs::SpanKind::kServer);
    EXPECT_EQ(span.trace_id, call_span.trace_id);
    EXPECT_EQ(span.parent_span, call_span.span_id);
  }
}

TEST(Tracing, MultiGetAcrossFailoverYieldsExactSpanTree) {
  // Two shards, R=2, write-all preload, then kill the primary of half the keys and issue
  // ONE MultiGet. The promised tree:
  //   1 kLocal root (opcode kShardOpMultiGet, parent 0)
  //   3 kClient children of the root: the two-shard scatter (one frame each) plus the one
  //     failover re-issue; exactly the dead primary's span is kTimeout
  //   2 kServer spans on the SURVIVOR (original + re-issued slots), each parented on the
  //     client span that carried its frame; the corpse records nothing
  Testbed bed;
  TestbedNode frontend = bed.AddNode("frontend", 1, kFrontendIp,
                                     sim::HypervisorModel::Native(), RuntimeKind::kHosted);
  std::vector<TestbedNode> shards;
  for (std::size_t i = 0; i < 2; ++i) {
    shards.push_back(bed.AddNode("shard" + std::to_string(i), 1,
                                 Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
  }
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  frontend.Spawn(0, [&] { dist::GlobalIdMap::ServeOn(*frontend.runtime); });
  for (std::size_t i = 0; i < shards.size(); ++i) {
    TestbedNode node = shards[i];
    node.Spawn(0, [node, i] {
      obs::ObsRoot::For(*node.runtime);
      node.runtime->Adopt(std::make_shared<memcached::ShardService>(*node.runtime, i));
      memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
          .Then([](Future<void> f) { f.Get(); });
    });
  }

  auto router = std::make_shared<std::unique_ptr<memcached::ShardRouter>>();
  auto keys = std::make_shared<std::vector<std::string>>();
  std::size_t primary = 0;
  std::size_t found = 0;
  bool done = false;
  client.Spawn(0, [&, router, keys] {
    memcached::DiscoverShards(*client.runtime, kFrontendIp, shards.size())
        .Then([&, router, keys](Future<std::vector<memcached::ShardEndpoint>> f) {
          memcached::RingRecord ring;
          ring.epoch = 1;
          ring.shards = f.Get();
          memcached::ShardRouter::Config config;
          config.replication = 2;
          config.read_options =
              dist::CallOptions{/*deadline_ns=*/500'000, dist::RetryPolicy{1}};
          config.write_options =
              dist::CallOptions{/*deadline_ns=*/500'000, dist::RetryPolicy{1}};
          *router = std::make_unique<memcached::ShardRouter>(*client.runtime,
                                                             std::move(ring), config);
          // Pick keys whose primaries cover BOTH shards, so the scatter is two frames and
          // the kill leaves a survivor holding replicated copies of the lost slots.
          for (std::size_t i = 0; keys->size() < 4; ++i) {
            std::string key = "key" + std::to_string(i);
            std::size_t shard = (*router)->ShardFor(key);
            std::size_t have = 0;
            for (const std::string& k : *keys) {
              if ((*router)->ShardFor(k) == shard) {
                have++;
              }
            }
            if (have < 2) {
              keys->push_back(key);
            }
          }
          primary = (*router)->ShardFor((*keys)[0]);
          std::vector<Future<void>> preload;
          for (const std::string& key : *keys) {
            preload.push_back((*router)->Set(key, "value-of-" + key));
          }
          WhenAll(std::move(preload)).Then([&, router, keys](Future<void> pf) {
            pf.Get();  // every key on BOTH replicas
            obs::ObsRoot::For(*client.runtime).ClearSpans();
            for (TestbedNode& node : shards) {
              obs::ObsRoot::For(*node.runtime).ClearSpans();
            }
            bed.world().KillMachine(*shards[primary].runtime);
            std::vector<std::string_view> views(keys->begin(), keys->end());
            (*router)->MultiGet(views).Then(
                [&](Future<std::vector<memcached::ShardRouter::GetResult>> mf) {
                  for (const memcached::ShardRouter::GetResult& r : mf.Get()) {
                    if (r.found) {
                      found++;
                    }
                  }
                  done = true;
                });
          });
        });
  });
  bed.world().Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(found, keys->size());  // the failover answered every key

  // --- The client's half of the tree: 1 root + 3 client spans, one trace id throughout.
  std::vector<obs::SpanRecord> client_spans = obs::ObsRoot::For(*client.runtime).Spans();
  std::vector<obs::SpanRecord> roots, rpcs;
  for (const obs::SpanRecord& span : client_spans) {
    if (span.kind == obs::SpanKind::kLocal) {
      roots.push_back(span);
    } else if (span.kind == obs::SpanKind::kClient) {
      rpcs.push_back(span);
    }
  }
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanRecord& root = roots[0];
  EXPECT_EQ(root.parent_span, 0u);  // a genuine trace root
  EXPECT_EQ(root.opcode, memcached::kShardOpMultiGet);
  EXPECT_EQ(root.status, obs::SpanStatus::kOk);
  ASSERT_NE(root.trace_id, 0u);

  ASSERT_EQ(rpcs.size(), 3u);  // two-shard scatter + one failover re-issue
  std::set<std::uint32_t> ok_rpc_ids;
  std::size_t timeouts = 0;
  for (const obs::SpanRecord& span : rpcs) {
    EXPECT_EQ(span.trace_id, root.trace_id);
    EXPECT_EQ(span.parent_span, root.span_id);
    EXPECT_EQ(span.opcode, memcached::kShardOpMultiGet);
    if (span.status == obs::SpanStatus::kTimeout) {
      timeouts++;
      // The frame that died with the primary: addressed to the dead shard's service.
      EXPECT_EQ(span.service,
                memcached::kShardServiceBase + static_cast<EbbId>(primary));
    } else {
      EXPECT_EQ(span.status, obs::SpanStatus::kOk);
      ok_rpc_ids.insert(span.span_id);
    }
  }
  EXPECT_EQ(timeouts, 1u);

  // --- The shards' half: the corpse recorded nothing; the survivor served both frames.
  std::vector<obs::SpanRecord> dead_spans =
      obs::ObsRoot::For(*shards[primary].runtime).Spans();
  EXPECT_TRUE(dead_spans.empty());
  std::vector<obs::SpanRecord> survivor_spans =
      obs::ObsRoot::For(*shards[1 - primary].runtime).Spans();
  ASSERT_EQ(survivor_spans.size(), 2u);
  for (const obs::SpanRecord& span : survivor_spans) {
    EXPECT_EQ(span.kind, obs::SpanKind::kServer);
    EXPECT_EQ(span.trace_id, root.trace_id);
    EXPECT_EQ(ok_rpc_ids.count(span.parent_span), 1u);
  }
}

}  // namespace
}  // namespace ebbrt
