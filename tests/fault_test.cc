// Fault-plane tests: RPC deadlines/retries/teardown resolve exactly once, fault injection
// (link faults, machine kill/revive, TCP sever) behaves deterministically, and the
// replicated ShardRouter fails over, skips suspects, and only trusts well-formed newer
// ring records.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/memcached/shard.h"
#include "src/dist/rpc.h"
#include "src/event/timer.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);
constexpr EbbId kEchoService = kFirstStaticUserId + 40;

// Echo RPC server with a mute switch: `silent` swallows requests (the deliberately
// unresponsive peer every deadline test needs — TCP stays healthy, the service does not).
class EchoServer final : public dist::RpcServer {
 public:
  EchoServer(Runtime& runtime, EbbId service) : dist::RpcServer(runtime, service) {}

  bool silent = false;
  std::size_t requests = 0;

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t /*opcode*/,
                  std::uint32_t aux, std::unique_ptr<IOBuf> body) override {
    requests++;
    if (silent) {
      return;
    }
    Reply(from, request_id, aux, std::move(body));
  }
};

class FaultTest : public ::testing::Test {
 protected:
  FaultTest()
      : server_(bed_.AddNode("server", 1, kServerIp)),
        client_(bed_.AddNode("client", 1, kClientIp)) {}

  Testbed bed_;
  TestbedNode server_;
  TestbedNode client_;
};

TEST_F(FaultTest, DeadlineExpiryFailsExactlyOnce) {
  // A mute server: the call must fail with RpcTimeout after exactly one attempt (no retry
  // budget), and the pending table must be empty afterwards — nothing leaks, nothing
  // resolves twice (a double-resolve would abort in Promise).
  std::shared_ptr<EchoServer> echo;
  server_.Spawn(0, [&] {
    echo = std::make_shared<EchoServer>(*server_.runtime, kEchoService);
    echo->silent = true;
    server_.runtime->Adopt(echo);
  });
  std::shared_ptr<dist::RpcClient> client;
  bool resolved = false;
  bool timed_out = false;
  client_.Spawn(0, [&] {
    client = std::make_shared<dist::RpcClient>(*client_.runtime, kEchoService, kServerIp);
    dist::CallOptions options{/*deadline_ns=*/1'000'000,
                              dist::RetryPolicy{/*max_attempts=*/1}};
    client->Call(1, 0, IOBuf::CopyBuffer("ping"), options)
        .Then([&](Future<dist::RpcClient::Response> f) {
          resolved = true;
          try {
            f.Get();
          } catch (const dist::RpcTimeout&) {
            timed_out = true;
          }
        });
  });
  bed_.world().Run();
  EXPECT_TRUE(resolved);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(echo->requests, 1u);  // delivered, deliberately unanswered
  EXPECT_EQ(client->pending_calls(), 0u);
  EXPECT_EQ(client->stats().timeouts.load(), 1u);
  EXPECT_EQ(client->stats().retries.load(), 0u);
}

TEST_F(FaultTest, LateReplyAfterTimeoutIsDroppedNotDoubleResolved) {
  // A 2ms link delay pushes the echo's round trip far past a 500us deadline: the call
  // times out first, then the genuine reply arrives and must find its id already claimed
  // (late_drops), never a second resolution.
  std::shared_ptr<EchoServer> echo;
  server_.Spawn(0, [&] {
    echo = std::make_shared<EchoServer>(*server_.runtime, kEchoService);
    server_.runtime->Adopt(echo);
  });
  bed_.fabric().SetLinkFault(server_.nic->port(),
                             {.drop_rate = 0, .extra_delay_ns = 2'000'000});
  std::shared_ptr<dist::RpcClient> client;
  bool timed_out = false;
  client_.Spawn(0, [&] {
    client = std::make_shared<dist::RpcClient>(*client_.runtime, kEchoService, kServerIp);
    dist::CallOptions options{/*deadline_ns=*/500'000,
                              dist::RetryPolicy{/*max_attempts=*/1}};
    client->Call(1, 0, IOBuf::CopyBuffer("slow"), options)
        .Then([&](Future<dist::RpcClient::Response> f) {
          try {
            f.Get();
          } catch (const dist::RpcTimeout&) {
            timed_out = true;
          }
        });
  });
  bed_.world().Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(echo->requests, 1u);
  EXPECT_EQ(client->stats().timeouts.load(), 1u);
  EXPECT_EQ(client->stats().late_drops.load(), 1u);
  EXPECT_EQ(client->pending_calls(), 0u);
}

TEST_F(FaultTest, RetryAfterLinkHealSucceeds) {
  // Attempt 1 round-trips through a 1ms-delayed link and expires; the fault clears during
  // the backoff window, so the re-sent attempt (fresh id) completes fast — and attempt 1's
  // straggling reply is dropped as late, not double-resolved.
  std::shared_ptr<EchoServer> echo;
  server_.Spawn(0, [&] {
    echo = std::make_shared<EchoServer>(*server_.runtime, kEchoService);
    server_.runtime->Adopt(echo);
  });
  std::shared_ptr<dist::RpcClient> client;
  bool succeeded = false;
  std::string payload;
  client_.Spawn(0, [&] {
    client = std::make_shared<dist::RpcClient>(*client_.runtime, kEchoService, kServerIp);
    // Warm call first: the TCP dial must not ride the faulted link, or the handshake
    // itself eats the first deadline and skews the attempt accounting.
    client->Call(1, 0, IOBuf::CopyBuffer("warm"), dist::CallOptions{})
        .Then([&](Future<dist::RpcClient::Response> wf) {
          wf.Get();
          bed_.fabric().SetLinkFault(server_.nic->port(),
                                     {.drop_rate = 0, .extra_delay_ns = 1'000'000});
          std::uint64_t heal_at = 1'200'000;
          Timer::Instance()->Start(
              heal_at, [&] { bed_.fabric().ClearLinkFault(server_.nic->port()); });
          // Backoff chosen past the faulted round trip (~2ms): TCP delivers in sequence
          // order, so a retry issued while attempt 1's delayed reply is still in flight
          // would have ITS reply parked behind that straggler and expire too.
          dist::CallOptions options{
              /*deadline_ns=*/400'000,
              dist::RetryPolicy{/*max_attempts=*/3, /*initial_backoff_ns=*/2'000'000,
                                /*max_backoff_ns=*/8'000'000}};
          client->Call(1, 0, IOBuf::CopyBuffer("again"), options)
              .Then([&](Future<dist::RpcClient::Response> f) {
                dist::RpcClient::Response response = f.Get();  // throws -> test fails
                payload = dist::ChainToString(response.body.get());
                succeeded = true;
              });
        });
  });
  bed_.world().Run();
  EXPECT_TRUE(succeeded);
  EXPECT_EQ(payload, "again");
  EXPECT_EQ(client->stats().timeouts.load(), 1u);   // attempt 1 expired
  EXPECT_EQ(client->stats().retries.load(), 1u);    // one re-send won
  EXPECT_EQ(client->stats().late_drops.load(), 1u); // attempt 1's reply arrived late
  EXPECT_EQ(echo->requests, 3u);                    // warm + both attempts
  EXPECT_EQ(client->pending_calls(), 0u);
}

TEST_F(FaultTest, SeverPeerFailsEveryPendingCallExactlyOnce) {
  // Calls with deadline 0 (no expiry) against a mute server: severing the client's TCP
  // connections to the peer must reject every pending promise with RpcPeerLost — the
  // "connection died under outstanding calls" regression a pending-table leak hides.
  std::shared_ptr<EchoServer> echo;
  server_.Spawn(0, [&] {
    echo = std::make_shared<EchoServer>(*server_.runtime, kEchoService);
    echo->silent = true;
    server_.runtime->Adopt(echo);
  });
  std::shared_ptr<dist::RpcClient> client;
  std::size_t resolved = 0;
  std::size_t peer_lost = 0;
  std::size_t severed = 0;
  client_.Spawn(0, [&] {
    client = std::make_shared<dist::RpcClient>(*client_.runtime, kEchoService, kServerIp);
    dist::CallOptions options{/*deadline_ns=*/0, dist::RetryPolicy{/*max_attempts=*/1}};
    for (int i = 0; i < 3; ++i) {
      client->Call(1, 0, IOBuf::CopyBuffer("stuck"), options)
          .Then([&](Future<dist::RpcClient::Response> f) {
            resolved++;
            try {
              f.Get();
            } catch (const dist::RpcPeerLost&) {
              peer_lost++;
            }
          });
    }
    Timer::Instance()->Start(1'000'000,
                             [&] { severed = client_.net->tcp().SeverPeer(kServerIp); });
  });
  bed_.world().Run();
  EXPECT_EQ(severed, 1u);
  EXPECT_EQ(resolved, 3u);
  EXPECT_EQ(peer_lost, 3u);
  EXPECT_EQ(client->pending_calls(), 0u);
  EXPECT_EQ(client->stats().peer_failures.load(), 3u);
}

TEST_F(FaultTest, ClientTeardownRejectsOutstandingCalls) {
  // Destroying the client with a no-deadline call outstanding must resolve it (RpcPeerLost)
  // rather than leaking the promise — the fourth leg of "nothing pending forever".
  std::shared_ptr<EchoServer> echo;
  server_.Spawn(0, [&] {
    echo = std::make_shared<EchoServer>(*server_.runtime, kEchoService);
    echo->silent = true;
    server_.runtime->Adopt(echo);
  });
  std::shared_ptr<dist::RpcClient> client;
  bool resolved = false;
  bool peer_lost = false;
  client_.Spawn(0, [&] {
    client = std::make_shared<dist::RpcClient>(*client_.runtime, kEchoService, kServerIp);
    dist::CallOptions options{/*deadline_ns=*/0, dist::RetryPolicy{/*max_attempts=*/1}};
    client->Call(1, 0, IOBuf::CopyBuffer("orphan"), options)
        .Then([&](Future<dist::RpcClient::Response> f) {
          resolved = true;
          try {
            f.Get();
          } catch (const dist::RpcPeerLost&) {
            peer_lost = true;
          }
        });
    Timer::Instance()->Start(1'000'000, [&] { client.reset(); });
  });
  bed_.world().Run();
  EXPECT_TRUE(resolved);
  EXPECT_TRUE(peer_lost);
}

TEST_F(FaultTest, FrameDropPlanRecoversThroughRetransmission) {
  // A lossy (but not partitioned) link: TCP retransmission must carry every echo through,
  // and the switch must account each injected drop.
  std::shared_ptr<EchoServer> echo;
  server_.Spawn(0, [&] {
    echo = std::make_shared<EchoServer>(*server_.runtime, kEchoService);
    server_.runtime->Adopt(echo);
  });
  bed_.fabric().SetLinkFault(server_.nic->port(),
                             {.drop_rate = 0.15, .extra_delay_ns = 0, .blackhole = false,
                              .seed = 7});
  constexpr std::size_t kCalls = 20;
  std::shared_ptr<dist::RpcClient> client;
  std::size_t completed = 0;
  auto issue = std::make_shared<std::function<void()>>();
  client_.Spawn(0, [&, issue] {
    client = std::make_shared<dist::RpcClient>(*client_.runtime, kEchoService, kServerIp);
    *issue = [&, issue] {
      client->Call(1, 0, IOBuf::CopyBuffer("lossy"), dist::CallOptions{})
          .Then([&, issue](Future<dist::RpcClient::Response> f) {
            f.Get();
            if (++completed < kCalls) {
              (*issue)();
            }
          });
    };
    (*issue)();
  });
  bed_.world().Run();
  EXPECT_EQ(completed, kCalls);
  EXPECT_EQ(echo->requests, kCalls);
  EXPECT_GE(bed_.fabric().faults_injected(), 1u);
  EXPECT_EQ(client->pending_calls(), 0u);
}

TEST(KillReviveTest, PauseAndResumeIsDeterministic) {
  // Kill/revive is pause semantics: a periodic ticker on the victim stalls while killed
  // (its wakes dropped and counted), resumes after revive, and the whole schedule replays
  // bit-identically across runs.
  struct Outcome {
    int ticks = 0;
    std::uint64_t last_tick_at = 0;
    std::uint64_t dropped = 0;
    std::uint64_t kills = 0;
    std::uint64_t revives = 0;
  };
  auto run_once = [] {
    Testbed bed;
    TestbedNode victim = bed.AddNode("victim", 1, Ipv4Addr::Of(10, 0, 0, 2));
    TestbedNode operator_node = bed.AddNode("operator", 1, Ipv4Addr::Of(10, 0, 0, 3));
    auto outcome = std::make_shared<Outcome>();
    victim.Spawn(0, [&bed, outcome] {
      auto handle = std::make_shared<std::uint64_t>(0);
      *handle = Timer::Instance()->Start(
          100'000,
          [&bed, outcome, handle] {
            outcome->ticks++;
            outcome->last_tick_at = bed.world().Now();
            if (outcome->ticks == 30) {
              Timer::Instance()->Stop(*handle);
            }
          },
          /*periodic=*/true);
    });
    operator_node.Spawn(0, [&bed, victim] {
      Timer::Instance()->Start(500'000,
                               [&bed, victim] { bed.world().KillMachine(*victim.runtime); });
      Timer::Instance()->Start(
          2'000'000, [&bed, victim] { bed.world().ReviveMachine(*victim.runtime); });
    });
    bed.world().Run();
    outcome->dropped = bed.world().world_stats().entries_dropped_killed;
    outcome->kills = bed.world().world_stats().kills;
    outcome->revives = bed.world().world_stats().revives;
    return *outcome;
  };
  Outcome first = run_once();
  Outcome second = run_once();
  EXPECT_EQ(first.ticks, 30);
  EXPECT_EQ(first.kills, 1u);
  EXPECT_EQ(first.revives, 1u);
  EXPECT_GE(first.dropped, 1u);  // the tick wake that landed inside the kill window
  // The ticker lost its 0.5ms..2ms window, so the 30th tick lands after the revive.
  EXPECT_GT(first.last_tick_at, 2'000'000u);
  EXPECT_EQ(first.ticks, second.ticks);
  EXPECT_EQ(first.last_tick_at, second.last_tick_at);
  EXPECT_EQ(first.dropped, second.dropped);
}

// --- Replicated ShardRouter failover --------------------------------------------------------

constexpr Ipv4Addr kFrontendIp = Ipv4Addr::Of(10, 0, 0, 10);

class ShardFaultTest : public ::testing::Test {
 protected:
  ShardFaultTest()
      : frontend_(bed_.AddNode("frontend", 1, kFrontendIp, sim::HypervisorModel::Native(),
                               RuntimeKind::kHosted)) {
    for (std::size_t i = 0; i < 2; ++i) {
      shards_.push_back(bed_.AddNode("shard" + std::to_string(i), 1,
                                     Ipv4Addr::Of(10, 0, 0, 20 + static_cast<unsigned>(i))));
    }
    client_ = std::make_unique<TestbedNode>(bed_.AddNode("client", 1, kClientIp));
    frontend_.Spawn(0, [this] { dist::GlobalIdMap::ServeOn(*frontend_.runtime); });
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      TestbedNode node = shards_[i];
      node.Spawn(0, [node, i] {
        node.runtime->Adopt(std::make_shared<memcached::ShardService>(*node.runtime, i));
        memcached::AnnounceShard(*node.runtime, kFrontendIp, i, node.iface->addr())
            .Then([](Future<void> f) { f.Get(); });
      });
    }
  }

  Testbed bed_;
  TestbedNode frontend_;
  std::vector<TestbedNode> shards_;
  std::unique_ptr<TestbedNode> client_;
};

TEST_F(ShardFaultTest, GetFailsOverAndSetSkipsSuspect) {
  // R=2 over two shards: every key is replicated on both. Kill the key's primary after a
  // write-all preload — the read must time out once, mark the primary suspect, fail over
  // to the replica, and return the value; the next write must skip the suspect (not hang
  // on the corpse) and a newer ring epoch must clear the suspicion.
  auto state = std::make_shared<std::unique_ptr<memcached::ShardRouter>>();
  bool got_found = false;
  std::string got_value;
  bool set_ok = false;
  bool adopted = false;
  bool stale_adopted = true;
  std::size_t primary = 0;
  client_->Spawn(0, [&, state] {
    memcached::DiscoverShards(*client_->runtime, kFrontendIp, shards_.size())
        .Then([&, state](Future<std::vector<memcached::ShardEndpoint>> f) {
          memcached::RingRecord ring;
          ring.epoch = 1;
          ring.shards = f.Get();
          memcached::ShardRouter::Config config;
          config.replication = 2;
          config.read_options =
              dist::CallOptions{/*deadline_ns=*/500'000, dist::RetryPolicy{1}};
          config.write_options =
              dist::CallOptions{/*deadline_ns=*/500'000, dist::RetryPolicy{1}};
          memcached::RingRecord ring2 = ring;
          *state = std::make_unique<memcached::ShardRouter>(*client_->runtime,
                                                            std::move(ring), config);
          memcached::ShardRouter& router = **state;
          primary = router.ShardFor("k1");
          router.Set("k1", "v1").Then([&, state, ring2](Future<void> sf) {
            sf.Get();  // preload reached BOTH replicas
            bed_.world().KillMachine(*shards_[primary].runtime);
            (*state)->Get("k1").Then([&, state, ring2](
                                         Future<memcached::ShardRouter::GetResult> gf) {
              memcached::ShardRouter::GetResult result = gf.Get();
              got_found = result.found;
              got_value = dist::ChainToString(result.value.get());
              (*state)->Set("k1", "v2").Then([&, state, ring2](Future<void> wf) {
                wf.Get();
                set_ok = true;
                memcached::RingRecord next = ring2;
                next.epoch = 2;
                adopted = (*state)->AdoptRing(next);
                memcached::RingRecord stale = ring2;
                stale.epoch = 1;
                stale_adopted = (*state)->AdoptRing(stale);
              });
            });
          });
        });
  });
  bed_.world().Run();
  EXPECT_TRUE(got_found);
  EXPECT_EQ(got_value, "v1");
  EXPECT_TRUE(set_ok);
  const memcached::ShardRouter::Stats& stats = (*state)->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.suspects_marked, 1u);
  EXPECT_GE(stats.write_skips, 1u);
  EXPECT_GE(bed_.fabric().killed_drops(), 1u);  // frames to the corpse died at the fabric
  // The epoch-2 swap cleared the suspicion; the stale epoch-1 record was rejected.
  EXPECT_TRUE(adopted);
  EXPECT_FALSE(stale_adopted);
  EXPECT_EQ((*state)->ring_epoch(), 2u);
  EXPECT_FALSE((*state)->suspect(primary));
  EXPECT_EQ(stats.stale_rings, 1u);
  EXPECT_EQ(stats.ring_swaps, 1u);
}

// --- Ring record encoding -------------------------------------------------------------------

TEST(RingRecordTest, EncodeParseRoundTrip) {
  memcached::RingRecord record;
  record.epoch = 42;
  record.shards = {{Ipv4Addr::Of(10, 0, 0, 20), memcached::kShardServiceBase},
                   {Ipv4Addr::Of(10, 0, 0, 21), memcached::kShardServiceBase + 1}};
  memcached::RingRecord parsed;
  ASSERT_TRUE(memcached::ParseRingRecord(memcached::EncodeRingRecord(record), &parsed));
  EXPECT_EQ(parsed.epoch, 42u);
  ASSERT_EQ(parsed.shards.size(), 2u);
  EXPECT_EQ(parsed.shards[0].addr, record.shards[0].addr);
  EXPECT_EQ(parsed.shards[0].service, record.shards[0].service);
  EXPECT_EQ(parsed.shards[1].addr, record.shards[1].addr);
  EXPECT_EQ(parsed.shards[1].service, record.shards[1].service);
}

TEST(RingRecordTest, MalformedRecordsRejected) {
  memcached::RingRecord out;
  EXPECT_FALSE(memcached::ParseRingRecord("", &out));
  EXPECT_FALSE(memcached::ParseRingRecord("garbage", &out));
  EXPECT_FALSE(memcached::ParseRingRecord("5|", &out));                   // empty shard list
  EXPECT_FALSE(memcached::ParseRingRecord("x|10.0.0.20#100", &out));      // bad epoch
  EXPECT_FALSE(memcached::ParseRingRecord("|10.0.0.20#100", &out));       // missing epoch
  EXPECT_FALSE(memcached::ParseRingRecord("5|10.0.0.20", &out));          // bad endpoint
  EXPECT_FALSE(memcached::ParseRingRecord("5|10.0.0.20#100,", &out));     // trailing comma
  EXPECT_FALSE(memcached::ParseRingRecord("99999999999999999999|10.0.0.20#100", &out));
}

}  // namespace
}  // namespace ebbrt
