// Telemetry-plane tests: obs::Histogram bucket math and quantile error bound, the per-core
// MetricRegistry with cross-core snapshots (sync and interconnect-riding async), and the
// two exposition surfaces — GET /metrics over sim TCP and the StatsService RPC scrape.
#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/http/http_server.h"
#include "src/dist/messenger.h"
#include "src/obs/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/stats_service.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace {

using sim::Testbed;
using sim::TestbedNode;

constexpr Ipv4Addr kServerIp = Ipv4Addr::Of(10, 0, 0, 2);
constexpr Ipv4Addr kClientIp = Ipv4Addr::Of(10, 0, 0, 3);

// --- Histogram bucket math -------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Values below kSub get exact unit buckets.
  for (std::uint64_t v = 0; v < obs::Histogram::kSub; ++v) {
    EXPECT_EQ(obs::Histogram::Index(v), v);
    EXPECT_EQ(obs::Histogram::LowerBound(v), v);
    EXPECT_EQ(obs::Histogram::UpperBound(v), v);
  }
  // Every value lands in a bucket whose [lower, upper] range contains it, and the log-linear
  // width bound holds: upper <= lower * (1 + 1/kSub) for every non-unit bucket.
  const std::uint64_t probes[] = {8,    9,     15,   16,        17,       255,
                                  256,  1000,  4095, 4096,      99999,    1u << 20,
                                  (1u << 20) + 1,   (1ull << 40) + 12345, ~0ull >> 1};
  for (std::uint64_t v : probes) {
    std::size_t i = obs::Histogram::Index(v);
    ASSERT_LT(i, obs::Histogram::kBuckets) << v;
    EXPECT_LE(obs::Histogram::LowerBound(i), v) << v;
    EXPECT_GE(obs::Histogram::UpperBound(i), v) << v;
  }
  // Buckets tile the axis: each upper bound is exactly the next lower bound minus one.
  for (std::size_t i = 0; i + 1 < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::UpperBound(i) + 1, obs::Histogram::LowerBound(i + 1)) << i;
  }
}

TEST(Histogram, QuantileWithinDocumentedErrorBound) {
  // The documented contract: estimate >= exact and <= exact * (1 + 1/kSub) + 1. Checked
  // against an exact sort over a deterministic mixed-scale sample.
  std::mt19937_64 rng(42);
  obs::Histogram hist;
  std::vector<std::uint64_t> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform-ish: scale spans 2^0 .. 2^30.
    std::uint64_t scale = 1ull << (rng() % 31);
    std::uint64_t v = rng() % (scale + 1);
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  obs::Histogram::Snapshot snapshot = hist.TakeSnapshot();
  EXPECT_EQ(snapshot.count, values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(values.size()));
    if (rank < 1) {
      rank = 1;
    }
    std::uint64_t exact = values[rank - 1];
    std::uint64_t estimate = snapshot.Quantile(q);
    EXPECT_GE(estimate, exact) << "q=" << q;
    double bound = static_cast<double>(exact) *
                       (1.0 + 1.0 / static_cast<double>(obs::Histogram::kSub)) + 1.0;
    EXPECT_LE(static_cast<double>(estimate), bound) << "q=" << q;
  }
}

TEST(Histogram, SnapshotMergeIsSampleUnion) {
  // Merging per-core snapshots must behave as if every sample landed in one histogram —
  // the cross-core aggregation contract.
  obs::Histogram a, b;
  for (std::uint64_t v = 0; v < 100; ++v) {
    a.Record(v);
  }
  for (std::uint64_t v = 1000; v < 1100; ++v) {
    b.Record(v);
  }
  obs::Histogram::Snapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  obs::Histogram both;
  for (std::uint64_t v = 0; v < 100; ++v) {
    both.Record(v);
  }
  for (std::uint64_t v = 1000; v < 1100; ++v) {
    both.Record(v);
  }
  obs::Histogram::Snapshot expected = both.TakeSnapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  for (double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(merged.Quantile(q), expected.Quantile(q)) << q;
  }
}

// --- MetricRegistry --------------------------------------------------------------------------

TEST(MetricRegistry, CrossCoreSnapshotSumsEveryRep) {
  // Two cores record into their own reps; SnapshotNow must sum counters and merge
  // histograms across both, and gauges stay per-core labeled series.
  Testbed bed;
  TestbedNode node = bed.AddNode("node", 2, kServerIp);
  obs::MetricId counter = 0, gauge = 0, histogram = 0;
  double counter_sum = -1;
  std::uint64_t hist_count = 0;
  std::vector<std::string> gauge_series;
  node.Spawn(0, [&] {
    obs::ObsRoot& root = obs::ObsRoot::For(*node.runtime);
    counter = root.RegisterCounter("test_ops");
    gauge = root.RegisterGauge("test_depth");
    histogram = root.RegisterHistogram("test_latency_ns");
    root.RepFor(0).Add(counter, 3);
    root.RepFor(0).SetGauge(gauge, 7);
    root.RepFor(0).RecordHist(histogram, 100);
    node.Spawn(1, [&] {
      obs::ObsRoot& root1 = obs::ObsRoot::For(*node.runtime);
      root1.RepFor(1).Add(counter, 4);
      root1.RepFor(1).SetGauge(gauge, 9);
      root1.RepFor(1).RecordHist(histogram, 200);
      node.Spawn(0, [&] {
        obs::ObsRoot::MetricsSnapshot snapshot = obs::ObsRoot::For(*node.runtime).SnapshotNow();
        for (const auto& sample : snapshot.samples) {
          if (sample.first == "test_ops") {
            counter_sum = sample.second;
          }
          if (sample.first.rfind("test_depth", 0) == 0) {
            gauge_series.push_back(sample.first);
          }
        }
        for (const auto& hist : snapshot.hists) {
          if (hist.first == "test_latency_ns") {
            hist_count = hist.second.count;
          }
        }
      });
    });
  });
  bed.world().Run();
  EXPECT_EQ(counter_sum, 7.0);
  EXPECT_EQ(hist_count, 2u);
  ASSERT_EQ(gauge_series.size(), 2u);
  EXPECT_EQ(gauge_series[0], "test_depth{core=\"0\"}");
  EXPECT_EQ(gauge_series[1], "test_depth{core=\"1\"}");
}

TEST(MetricRegistry, SnapshotAsyncMatchesSyncAndTakesNoLocks) {
  // The interconnect-riding snapshot must agree with the direct-read one, and the plane's
  // own event_control_locks counter must not move between two async snapshots — the
  // aggregation path itself is lock-free.
  Testbed bed;
  TestbedNode node = bed.AddNode("node", 4, kServerIp);
  double async_sum = -1;
  double sync_sum = -2;
  double locks_first = -1, locks_second = -1;
  auto find = [](const obs::ObsRoot::MetricsSnapshot& snapshot, const std::string& name) {
    for (const auto& sample : snapshot.samples) {
      if (sample.first == name) {
        return sample.second;
      }
    }
    return -1.0;
  };
  auto recorded = std::make_shared<std::size_t>(0);
  node.Spawn(0, [&, recorded] {
    obs::ObsRoot& root = obs::ObsRoot::For(*node.runtime);
    obs::MetricId counter = root.RegisterCounter("async_ops");
    for (std::size_t core = 0; core < 4; ++core) {
      node.Spawn(core, [&, recorded, counter, core] {
        obs::ObsRoot::For(*node.runtime).RepFor(core).Add(counter, core + 1);
        if (++*recorded < 4) {
          return;
        }
        node.Spawn(0, [&] {
          obs::ObsRoot::For(*node.runtime)
              .SnapshotAsync([&](obs::ObsRoot::MetricsSnapshot snapshot) {
                async_sum = find(snapshot, "async_ops");
                locks_first = find(snapshot, "event_control_locks");
                obs::ObsRoot::For(*node.runtime)
                    .SnapshotAsync([&](obs::ObsRoot::MetricsSnapshot second) {
                      locks_second = find(second, "event_control_locks");
                      sync_sum =
                          find(obs::ObsRoot::For(*node.runtime).SnapshotNow(), "async_ops");
                    });
              });
        });
      });
    }
  });
  bed.world().Run();
  EXPECT_EQ(async_sum, 1.0 + 2 + 3 + 4);
  EXPECT_EQ(sync_sum, async_sum);
  ASSERT_GE(locks_first, 0.0);
  EXPECT_EQ(locks_second, locks_first);  // snapshotting itself took no event-plane locks
}

// --- Exposition surfaces ---------------------------------------------------------------------

// Accumulates raw received bytes (the HTTP client's side).
class StringSink final : public TcpHandler {
 public:
  explicit StringSink(std::string& out) : out_(out) {}
  void Receive(std::unique_ptr<IOBuf> data) override {
    out_ += std::string(data->AsStringView());
  }

 private:
  std::string& out_;
};

TEST(Exposition, MetricsEndpointServesEveryDefaultFamily) {
  // GET /metrics over sim TCP: the response must carry the re-homed legacy stats families
  // (event, mem, net, messenger), the plane's own meta-metrics, and histogram quantile
  // samples — and a plain GET / on the same keep-alive connection still gets the static
  // 148-byte response.
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::string response;
  server.Spawn(0, [&] {
    // The messenger family appears once the subsystem exists (collectors sample lazily).
    dist::Messenger::For(*server.runtime);
    new http::HttpServer(*server.net, 8080);
  });
  client.Spawn(0, [&] {
    client.net->tcp().Connect(*client.iface, kServerIp, 8080).Then([&response](
                                                                       Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<StringSink>(response)));
      pcb.Send(IOBuf::CopyBuffer("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
      pcb.Send(IOBuf::CopyBuffer("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
    });
  });
  bed.world().Run();
  // First response: the static page, byte-for-byte.
  ASSERT_GE(response.size(), 148u);
  EXPECT_EQ(response.substr(0, 15), "HTTP/1.1 200 OK");
  std::string metrics = response.substr(148);
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  for (const char* family :
       {"event_interrupts", "event_control_locks", "event_handler_latency_ns_count",
        "event_handler_latency_ns{q=\"0.99\"}", "interconnect_batch_size_count",
        "mem_iobuf_allocs", "mem_pool_hits", "net_tcp_rx", "net_tcp_tx_segments",
        "messenger_bad_frames", "obs_spans_recorded", "obs_level",
        "event_run_queue_depth{core=\"0\"}"}) {
    EXPECT_NE(metrics.find(family), std::string::npos) << family;
  }
}

TEST(Exposition, StatsServiceScrapesRemoteMachine) {
  // The RPC scrape surface: a client machine pulls the server machine's rendered metrics
  // text with one Call and sees the server's registered families.
  Testbed bed;
  TestbedNode server = bed.AddNode("server", 1, kServerIp);
  TestbedNode client = bed.AddNode("client", 1, kClientIp);
  std::shared_ptr<obs::StatsService> service;
  std::shared_ptr<obs::StatsClient> scraper;
  std::string text;
  server.Spawn(0, [&] {
    obs::ObsRoot& root = obs::ObsRoot::For(*server.runtime);
    obs::MetricId counter = root.RegisterCounter("server_private_ops");
    root.RepFor(0).Add(counter, 11);
    service = std::make_shared<obs::StatsService>(*server.runtime);
    server.runtime->Adopt(service);
  });
  client.Spawn(0, [&] {
    scraper = std::make_shared<obs::StatsClient>(*client.runtime, kServerIp);
    scraper->Scrape().Then([&](Future<std::string> f) { text = f.Get(); });
  });
  bed.world().Run();
  EXPECT_NE(text.find("server_private_ops 11"), std::string::npos);
  EXPECT_NE(text.find("event_interrupts"), std::string::npos);
  EXPECT_EQ(service->scrapes(), 1u);
}

}  // namespace
}  // namespace ebbrt
