// SimWorld (discrete-event executor) tests: virtual time, determinism, multi-machine
// interleaving, timers in virtual time, device actions, charges.
#include "src/event/sim_world.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/event/block_on.h"
#include "src/event/timer.h"

namespace ebbrt {
namespace {

TEST(SimWorld, RunsSpawnedEvents) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 1);
  int ran = 0;
  SimWorld::SpawnOn(m, 0, [&ran] { ++ran; });
  world.Run();
  EXPECT_EQ(ran, 1);
}

TEST(SimWorld, FixedCostModeAdvancesVirtualTime) {
  SimWorld world(SimWorld::CostMode::kFixed, 500);
  Runtime& m = world.AddMachine("m", 1);
  std::uint64_t t_after = 0;
  SimWorld::SpawnOn(m, 0, [&] { t_after = world.Now(); });
  world.Run();
  // The handler observes time during its own slice; charges land on completion, so the
  // in-handler observation is the slice start. What matters: world time advanced afterwards.
  SimWorld::SpawnOn(m, 0, [&] { t_after = world.Now(); });
  world.Run();
  EXPECT_GE(t_after, 500u);  // at least one fixed event charge accumulated
}

TEST(SimWorld, WorldActionsRunAtScheduledTime) {
  SimWorld world;
  std::vector<std::uint64_t> times;
  world.At(1000, [&] { times.push_back(world.Now()); });
  world.At(500, [&] { times.push_back(world.Now()); });
  world.At(1500, [&] { times.push_back(world.Now()); });
  world.Run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 500u);
  EXPECT_EQ(times[1], 1000u);
  EXPECT_EQ(times[2], 1500u);
}

TEST(SimWorld, TimerFiresInVirtualTime) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 1);
  std::uint64_t fired_at = 0;
  SimWorld::SpawnOn(m, 0, [&] {
    Timer::Instance()->Start(1'000'000, [&] { fired_at = world.Now(); });
  });
  world.Run();
  EXPECT_GE(fired_at, 1'000'000u);
  EXPECT_LT(fired_at, 1'100'000u);  // fixed-cost mode: tight bound, no real-time noise
}

TEST(SimWorld, PeriodicTimerDeterministicTicks) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 1);
  int ticks = 0;
  SimWorld::SpawnOn(m, 0, [&] {
    std::uint64_t handle = Timer::Instance()->Start(
        100'000, [&ticks] { ++ticks; }, /*periodic=*/true);
    Timer::Instance()->Start(1'050'000, [handle] { Timer::Instance()->Stop(handle); });
  });
  world.Run();
  EXPECT_EQ(ticks, 10);  // fires at 100k..1000k, stopped at 1050k
}

TEST(SimWorld, CrossMachineSpawnOrdering) {
  SimWorld world;
  Runtime& a = world.AddMachine("a", 1);
  Runtime& b = world.AddMachine("b", 1);
  std::vector<int> order;
  SimWorld::SpawnOn(a, 0, [&] { order.push_back(1); });
  SimWorld::SpawnOn(b, 0, [&] { order.push_back(2); });
  SimWorld::SpawnOn(a, 0, [&] { order.push_back(3); });
  world.Run();
  // Same-time wakes dispatch in schedule order (seq tiebreak); machine a drains both its
  // events in its first slice.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 2);
}

TEST(SimWorld, SpawnRemoteAcrossSimCores) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 4);
  std::vector<std::size_t> cores_seen;
  SimWorld::SpawnOn(m, 0, [&] {
    auto& em = event::Local();
    for (std::size_t c = 1; c < 4; ++c) {
      em.SpawnRemote([&cores_seen] { cores_seen.push_back(CurrentContext().machine_core); },
                     c);
    }
  });
  world.Run();
  ASSERT_EQ(cores_seen.size(), 3u);
  EXPECT_EQ(cores_seen[0], 1u);
  EXPECT_EQ(cores_seen[1], 2u);
  EXPECT_EQ(cores_seen[2], 3u);
}

TEST(SimWorld, ChargeAddsModeledCost) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 1);
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  SimWorld::SpawnOn(m, 0, [&] {
    t0 = world.Now();
    world.Charge(12'345);
    t1 = world.Now();
  });
  world.Run();
  EXPECT_EQ(t1 - t0, 12'345u);
}

TEST(SimWorld, DeterministicRepeatRuns) {
  // Two identical fixed-cost runs produce identical event timestamps.
  auto run_once = [] {
    SimWorld world(SimWorld::CostMode::kFixed, 700);
    Runtime& m = world.AddMachine("m", 2);
    std::vector<std::uint64_t> stamps;
    SimWorld::SpawnOn(m, 0, [&world, &stamps] {
      auto& em = event::Local();
      for (int i = 0; i < 5; ++i) {
        em.SpawnRemote([&world, &stamps] { stamps.push_back(world.Now()); }, 1);
      }
      Timer::Instance()->Start(50'000, [&world, &stamps] { stamps.push_back(world.Now()); });
    });
    world.Run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimWorld, BlockOnAcrossSimCores) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 2);
  int result = 0;
  SimWorld::SpawnOn(m, 0, [&result] {
    Promise<int> p;
    auto f = p.GetFuture();
    event::Local().SpawnRemote([p]() mutable { p.SetValue(99); }, 1);
    result = event::BlockOn(std::move(f));
  });
  world.Run();
  EXPECT_EQ(result, 99);
}

TEST(SimWorld, RunUntilStopsAtBoundary) {
  SimWorld world;
  bool early = false;
  bool late = false;
  world.At(1'000, [&early] { early = true; });
  world.At(10'000, [&late] { late = true; });
  bool quiescent = world.RunUntil(5'000);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_FALSE(quiescent);
  world.Run();
  EXPECT_TRUE(late);
}

TEST(SimWorld, IdleCallbackPollsUntilStopped) {
  SimWorld world;
  Runtime& m = world.AddMachine("m", 1);
  int polls = 0;
  SimWorld::SpawnOn(m, 0, [&polls] {
    auto& em = event::Local();
    struct Holder {
      std::unique_ptr<EventManager::IdleCallback> cb;
      int count = 0;
    };
    auto* h = new Holder();  // leaked intentionally; outlives the spawning event
    h->cb = std::make_unique<EventManager::IdleCallback>(em, [h, &polls] {
      ++polls;
      if (++h->count >= 5) {
        h->cb->Stop();
      }
    });
    h->cb->Start();
  });
  world.Run();
  EXPECT_EQ(polls, 5);
}

TEST(SimWorld, ShutdownUnwindsParkedCores) {
  auto world = std::make_unique<SimWorld>();
  Runtime& m = world->AddMachine("m", 2);
  SimWorld::SpawnOn(m, 0, [] {});
  world->Run();
  world->Shutdown();
  world.reset();  // no crash, no leaked running fibers
  SUCCEED();
}

}  // namespace
}  // namespace ebbrt
