// EventManager tests on the thread-per-core executor: spawning, interrupts, idle callbacks,
// the dispatch-priority protocol, blocking via SaveContext/ActivateContext, timers.
#include <atomic>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

// Spins RunSync barriers until `cond` holds or a generous wall-clock deadline passes. The
// executor runs real threads, so "how many barriers until X happens" is load-dependent —
// iteration-count loops are flaky on fast idle machines.
#define RUN_SYNC_UNTIL(machine, core, cond)                                        \
  do {                                                                             \
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);    \
    while (!(cond) && std::chrono::steady_clock::now() < deadline) {               \
      (machine).RunSync((core), [] {});                                            \
    }                                                                              \
  } while (0)

#include "src/event/block_on.h"
#include "src/event/event_manager.h"
#include "src/event/thread_machine.h"
#include "src/event/timer.h"

namespace ebbrt {
namespace {

TEST(ThreadMachine, SpawnRunsOnTargetCore) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<int> core0{-1};
  std::atomic<int> core1{-1};
  machine.RunSync(0, [&] { core0 = static_cast<int>(CurrentContext().machine_core); });
  machine.RunSync(1, [&] { core1 = static_cast<int>(CurrentContext().machine_core); });
  EXPECT_EQ(core0.load(), 0);
  EXPECT_EQ(core1.load(), 1);
  machine.Shutdown();
}

TEST(ThreadMachine, SpawnedEventsRunExactlyOnce) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    machine.Spawn(0, [&count] { count.fetch_add(1); });
  }
  machine.RunSync(0, [] {});  // barrier: FIFO queue drains earlier spawns first
  EXPECT_EQ(count.load(), 100);
  machine.Shutdown();
}

TEST(ThreadMachine, SpawnRemoteCrossCore) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<int> where{-1};
  machine.RunSync(0, [&] {
    event::Local().SpawnRemote(
        [&where] { where = static_cast<int>(CurrentContext().machine_core); }, 1);
  });
  machine.RunSync(1, [] {});  // barrier on core 1
  EXPECT_EQ(where.load(), 1);
  machine.Shutdown();
}

TEST(ThreadMachine, InterruptVectorDispatch) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> fired{0};
  std::uint32_t vector = 0;
  machine.RunSync(0, [&] {
    vector = event::Local().AllocateVector([&fired] { fired.fetch_add(1); });
  });
  // Devices raise vectors from arbitrary threads.
  auto& em = machine.runtime()
                 .GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
                 .RepFor(0);
  em.RaiseVector(vector);
  em.RaiseVector(vector);
  RUN_SYNC_UNTIL(machine, 0, fired.load() >= 2);
  EXPECT_EQ(fired.load(), 2);
  machine.Shutdown();
}

TEST(ThreadMachine, IdleCallbackRunsWhenIdleAndStops) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> polls{0};
  machine.RunSync(0, [&] {
    auto& em = event::Local();
    // Self-stopping idle callback: polls the "device" 5 times then disables itself,
    // mirroring the adaptive-polling driver pattern from §3.2.
    auto* cb = new EventManager::IdleCallback(em, [&polls, &em] {
      if (polls.fetch_add(1) + 1 >= 5) {
        // Look up our own registration through a spawned stop to keep lifetime simple.
      }
    });
    cb->Start();
    // Stop it from a timer-ish spawned event after it has had a chance to run.
    em.Spawn([cb, &polls, &em] {
      while (polls.load() < 5) {
        // Busy spin inside an event is normally forbidden; here the idle callback cannot run
        // until we yield, so instead re-spawn ourselves until the count is reached.
        break;
      }
    });
  });
  // Give the idle loop some real time to run.
  for (int i = 0; i < 100 && polls.load() < 5; ++i) {
    machine.RunSync(0, [] {});
  }
  EXPECT_GE(polls.load(), 5);
  machine.Shutdown();
}

TEST(ThreadMachine, SyntheticEventsHavePriorityOverIdle) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> idle_runs{0};
  std::atomic<int> events_run{0};
  std::vector<int> order;
  machine.RunSync(0, [&] {
    auto& em = event::Local();
    auto* cb = new EventManager::IdleCallback(em, [&idle_runs] { idle_runs.fetch_add(1); });
    cb->Start();
    // Queue several synthetic events; each pass dispatches one synthetic event and only
    // reaches idle callbacks when no synthetic work ran. (RunSync barriers ride the
    // remote-spawn mailbox, which drains before synthetic events — so barrier completion
    // does not imply the synthetic queue drained; spin until it has.)
    for (int i = 0; i < 10; ++i) {
      em.Spawn([&events_run] { events_run.fetch_add(1); });
    }
  });
  RUN_SYNC_UNTIL(machine, 0, events_run.load() >= 10);
  EXPECT_EQ(events_run.load(), 10);
  machine.Shutdown();
}

TEST(ThreadMachine, SaveAndActivateContext) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<bool> resumed{false};
  std::atomic<int> progress{0};
  machine.RunSync(0, [&] {
    auto& em = event::Local();
    em.Spawn([&] {
      progress = 1;
      EventContext ctx;
      // Hand the context to core 1, which activates it back on core 0.
      em.Spawn([&em, &ctx] { em.ActivateContext(std::move(ctx)); });
      em.SaveContext(ctx);
      progress = 2;
      resumed = true;
    });
  });
  for (int i = 0; i < 100 && !resumed.load(); ++i) {
    machine.RunSync(0, [] {});
  }
  EXPECT_TRUE(resumed.load());
  EXPECT_EQ(progress.load(), 2);
  machine.Shutdown();
}

TEST(ThreadMachine, EventsContinueWhileContextBlocked) {
  // A blocked event must not block the core: later events run while it is frozen.
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> side_events{0};
  std::atomic<bool> resumed{false};
  machine.RunSync(0, [&] {
    auto& em = event::Local();
    auto ctx = std::make_shared<EventContext>();
    em.Spawn([&, ctx] {
      em.SaveContext(*ctx);  // freeze immediately
      resumed = true;
    });
    for (int i = 0; i < 5; ++i) {
      em.Spawn([&side_events] { side_events.fetch_add(1); });
    }
    // Resume the frozen event after the side events.
    em.Spawn([ctx, &em, &side_events] {
      EXPECT_EQ(side_events.load(), 5);
      em.ActivateContext(std::move(*ctx));
    });
  });
  for (int i = 0; i < 100 && !resumed.load(); ++i) {
    machine.RunSync(0, [] {});
  }
  EXPECT_TRUE(resumed.load());
  EXPECT_EQ(side_events.load(), 5);
  machine.Shutdown();
}

TEST(ThreadMachine, BlockOnFutureCrossCore) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<int> result{0};
  machine.RunSync(0, [&] {
    auto& em = event::Local();
    em.Spawn([&result, &em] {
      Promise<int> p;
      auto f = p.GetFuture();
      // Fulfill from core 1 while core 0's event blocks.
      em.SpawnRemote([p]() mutable { p.SetValue(77); }, 1);
      result = event::BlockOn(std::move(f));
    });
  });
  for (int i = 0; i < 200 && result.load() == 0; ++i) {
    machine.RunSync(0, [] {});
  }
  EXPECT_EQ(result.load(), 77);
  machine.Shutdown();
}

TEST(ThreadMachine, BlockOnReadyFutureFastPath) {
  ThreadMachine machine(1);
  machine.Start();
  int result = 0;
  machine.RunSync(0, [&] { result = event::BlockOn(MakeReadyFuture<int>(5)); });
  EXPECT_EQ(result, 5);
  machine.Shutdown();
}

TEST(ThreadMachine, TimerFires) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<bool> fired{false};
  machine.RunSync(0, [&] {
    Timer::Instance()->Start(1'000'000 /* 1ms */, [&fired] { fired = true; });
  });
  RUN_SYNC_UNTIL(machine, 0, fired.load());
  EXPECT_TRUE(fired.load());
  machine.Shutdown();
}

TEST(ThreadMachine, PeriodicTimerRepeatsUntilStopped) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> ticks{0};
  std::atomic<std::uint64_t> handle{0};
  machine.RunSync(0, [&] {
    handle = Timer::Instance()->Start(
        200'000 /* 0.2ms */,
        [&ticks] { ticks.fetch_add(1); },
        /*periodic=*/true);
  });
  RUN_SYNC_UNTIL(machine, 0, ticks.load() >= 3);
  EXPECT_GE(ticks.load(), 3);
  machine.RunSync(0, [&] { Timer::Instance()->Stop(handle.load()); });
  int at_stop = ticks.load();
  machine.RunSync(0, [] {});
  // Allow at most one in-flight tick after Stop.
  EXPECT_LE(ticks.load(), at_stop + 1);
  machine.Shutdown();
}

TEST(ThreadMachine, StoppedTimerNeverFires) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<bool> fired{false};
  machine.RunSync(0, [&] {
    auto handle = Timer::Instance()->Start(500'000, [&fired] { fired = true; });
    Timer::Instance()->Stop(handle);
  });
  for (int i = 0; i < 50; ++i) {
    machine.RunSync(0, [] {});
  }
  EXPECT_FALSE(fired.load());
  machine.Shutdown();
}

TEST(ThreadMachine, ManyCrossCoreSpawnsAllArrive) {
  ThreadMachine machine(2);
  machine.Start();
  constexpr int kCount = 5000;
  std::atomic<int> received{0};
  machine.RunSync(0, [&] {
    auto& em = event::Local();
    for (int i = 0; i < kCount; ++i) {
      em.SpawnRemote([&received] { received.fetch_add(1, std::memory_order_relaxed); }, 1);
    }
  });
  for (int i = 0; i < 1000 && received.load() < kCount; ++i) {
    machine.RunSync(1, [] {});
  }
  EXPECT_EQ(received.load(), kCount);
  machine.Shutdown();
}

}  // namespace
}  // namespace ebbrt
