// EventManager tests.
//
// The thread-per-core executor (ThreadMachine) keeps only a minimal real-threads smoke
// section: cross-thread spawn targeting and the remote mailbox — the properties that
// genuinely require threads. Everything that used to spin against wall-clock deadlines
// (interrupt dispatch, dispatch priority, timers, SaveContext blocking, mass cross-core
// spawns) runs on the discrete-event SimWorld instead, where the same EventManager code
// executes under virtual time and every assertion is deterministic (ROADMAP flaky-test
// item).
#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "src/event/block_on.h"
#include "src/event/event_manager.h"
#include "src/event/sim_world.h"
#include "src/event/thread_machine.h"
#include "src/event/timer.h"

namespace ebbrt {
namespace {

// --- Real-threads smoke (the executor's reason to exist) --------------------------------------

TEST(ThreadMachine, SpawnRunsOnTargetCore) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<int> core0{-1};
  std::atomic<int> core1{-1};
  machine.RunSync(0, [&] { core0 = static_cast<int>(CurrentContext().machine_core); });
  machine.RunSync(1, [&] { core1 = static_cast<int>(CurrentContext().machine_core); });
  EXPECT_EQ(core0.load(), 0);
  EXPECT_EQ(core1.load(), 1);
  machine.Shutdown();
}

TEST(ThreadMachine, SpawnedEventsRunExactlyOnce) {
  ThreadMachine machine(1);
  machine.Start();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    machine.Spawn(0, [&count] { count.fetch_add(1); });
  }
  machine.RunSync(0, [] {});  // barrier: FIFO queue drains earlier spawns first
  EXPECT_EQ(count.load(), 100);
  machine.Shutdown();
}

TEST(ThreadMachine, SpawnRemoteCrossCore) {
  ThreadMachine machine(2);
  machine.Start();
  std::atomic<int> where{-1};
  machine.RunSync(0, [&] {
    event::Local().SpawnRemote(
        [&where] { where = static_cast<int>(CurrentContext().machine_core); }, 1);
  });
  machine.RunSync(1, [] {});  // barrier on core 1
  EXPECT_EQ(where.load(), 1);
  machine.Shutdown();
}

TEST(ThreadMachine, BlockOnReadyFutureFastPath) {
  ThreadMachine machine(1);
  machine.Start();
  int result = 0;
  machine.RunSync(0, [&] { result = event::BlockOn(MakeReadyFuture<int>(5)); });
  EXPECT_EQ(result, 5);
  machine.Shutdown();
}

// --- Deterministic ports (discrete-event SimWorld, virtual time) ------------------------------

TEST(SimEvents, InterruptVectorDispatch) {
  SimWorld world;
  Runtime& rt = world.AddMachine("irq", 1);
  int fired = 0;
  std::uint32_t vector = 0;
  EventManager& em = rt.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager).RepFor(0);
  SimWorld::SpawnOn(rt, 0, [&] {
    vector = event::Local().AllocateVector([&fired] { ++fired; });
  });
  // Devices raise vectors from device/world context (the NIC does exactly this).
  world.After(1000, [&] { em.RaiseVector(vector); });
  world.After(2000, [&] { em.RaiseVector(vector); });
  world.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEvents, SyntheticEventsHavePriorityOverIdle) {
  SimWorld world;
  Runtime& rt = world.AddMachine("prio", 1);
  int idle_runs_during_events = -1;
  int events_run = 0;
  auto idle_runs = std::make_shared<int>(0);
  auto cb_holder = std::make_shared<std::unique_ptr<EventManager::IdleCallback>>();
  SimWorld::SpawnOn(rt, 0, [&, idle_runs, cb_holder] {
    auto& em = event::Local();
    *cb_holder = std::make_unique<EventManager::IdleCallback>(em, [idle_runs, cb_holder] {
      if (++*idle_runs >= 3) {
        (*cb_holder)->Stop();  // self-stopping poller, so the world can quiesce
      }
    });
    (*cb_holder)->Start();
    // Each dispatch pass runs ONE synthetic event and only reaches idle callbacks when no
    // synthetic work ran: when the last event executes, the idle callback must not have
    // run at all.
    for (int i = 0; i < 10; ++i) {
      em.Spawn([&, idle_runs] {
        ++events_run;
        if (events_run == 10) {
          idle_runs_during_events = *idle_runs;
        }
      });
    }
  });
  world.Run();
  EXPECT_EQ(events_run, 10);
  EXPECT_EQ(idle_runs_during_events, 0);  // idle never preempted pending synthetic events
  cb_holder->reset();  // break the callback<->holder reference cycle
}

TEST(SimEvents, SaveAndActivateContext) {
  SimWorld world;
  Runtime& rt = world.AddMachine("ctx", 1);
  bool resumed = false;
  int progress = 0;
  SimWorld::SpawnOn(rt, 0, [&] {
    auto& em = event::Local();
    em.Spawn([&] {
      progress = 1;
      EventContext ctx;
      // A sibling event re-activates the frozen context on this core.
      em.Spawn([&em, &ctx] { em.ActivateContext(std::move(ctx)); });
      em.SaveContext(ctx);
      progress = 2;
      resumed = true;
    });
  });
  world.Run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(progress, 2);
}

TEST(SimEvents, EventsContinueWhileContextBlocked) {
  // A blocked event must not block the core: later events run while it is frozen, and the
  // exact interleaving is deterministic under the DES.
  SimWorld world;
  Runtime& rt = world.AddMachine("blocked", 1);
  int side_events = 0;
  int side_events_at_resume = -1;
  bool resumed = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    auto& em = event::Local();
    auto ctx = std::make_shared<EventContext>();
    em.Spawn([&, ctx] {
      em.SaveContext(*ctx);  // freeze immediately
      side_events_at_resume = side_events;
      resumed = true;
    });
    for (int i = 0; i < 5; ++i) {
      em.Spawn([&side_events] { ++side_events; });
    }
    em.Spawn([ctx, &em] { em.ActivateContext(std::move(*ctx)); });
  });
  world.Run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(side_events_at_resume, 5);  // every earlier event ran before the resume
}

TEST(SimEvents, BlockOnFutureCrossCore) {
  SimWorld world;
  Runtime& rt = world.AddMachine("blockon", 2);
  int result = 0;
  SimWorld::SpawnOn(rt, 0, [&] {
    auto& em = event::Local();
    Promise<int> p;
    auto f = p.GetFuture();
    // Fulfill from core 1 while core 0's event blocks.
    em.SpawnRemote([p]() mutable { p.SetValue(77); }, 1);
    result = event::BlockOn(std::move(f));
  });
  world.Run();
  EXPECT_EQ(result, 77);
}

TEST(SimEvents, StoppedTimerNeverFires) {
  SimWorld world;
  Runtime& rt = world.AddMachine("timer", 1);
  bool fired = false;
  SimWorld::SpawnOn(rt, 0, [&] {
    auto handle = Timer::Instance()->Start(500'000, [&fired] { fired = true; });
    Timer::Instance()->Stop(handle);
  });
  world.Run();  // quiesces past the would-be deadline
  EXPECT_FALSE(fired);
}

TEST(SimEvents, PeriodicTimerStopsAfterStop) {
  SimWorld world;
  Runtime& rt = world.AddMachine("periodic", 1);
  int ticks = 0;
  std::uint64_t handle = 0;
  SimWorld::SpawnOn(rt, 0, [&] {
    handle = Timer::Instance()->Start(
        200'000, [&ticks] { ++ticks; }, /*periodic=*/true);
    // Stop deterministically after the third tick's deadline has passed.
    Timer::Instance()->Start(650'000, [&] { Timer::Instance()->Stop(handle); });
  });
  world.Run();
  EXPECT_EQ(ticks, 3);  // exactly three periods fit before the stop — no slack needed
}

TEST(SimEvents, IdleCallbackStopFromTheMiddleIsExact) {
  // Regression for the O(n) Stop erase: with many registered callbacks, stopping one from
  // the MIDDLE swap-and-pops the tail into its slot. The displaced tail must keep running
  // and the stopped callback must never run again — in any later pass.
  SimWorld world;
  Runtime& rt = world.AddMachine("idlestop", 1);
  constexpr int kCallbacks = 32;
  auto runs = std::make_shared<std::array<int, kCallbacks>>();
  runs->fill(0);
  auto passes = std::make_shared<int>(0);
  auto cbs =
      std::make_shared<std::vector<std::unique_ptr<EventManager::IdleCallback>>>();
  SimWorld::SpawnOn(rt, 0, [runs, passes, cbs] {
    auto& em = event::Local();
    // Callback 0 is the controller: it counts whole idle passes and drives the stops.
    cbs->push_back(std::make_unique<EventManager::IdleCallback>(em, [runs, passes, cbs] {
      ++(*runs)[0];
      int pass = ++*passes;
      if (pass == 1) {
        // Stop every even-indexed callback (except the controller) — all interior slots,
        // so each Stop displaces whatever currently sits at the tail.
        for (int i = 2; i < kCallbacks; i += 2) {
          (*cbs)[static_cast<std::size_t>(i)]->Stop();
        }
      } else if (pass == 3) {
        for (auto& cb : *cbs) {
          cb->Stop();  // quiesce the world
        }
      }
    }));
    for (int i = 1; i < kCallbacks; ++i) {
      cbs->push_back(std::make_unique<EventManager::IdleCallback>(
          em, [runs, i] { ++(*runs)[static_cast<std::size_t>(i)]; }));
    }
    for (auto& cb : *cbs) {
      cb->Start();
    }
  });
  world.Run();
  EXPECT_EQ(*passes, 3);
  for (int i = 1; i < kCallbacks; ++i) {
    // The controller sits at snapshot position 0 and runs first each pass, so a Stop takes
    // effect within the same pass (DispatchIdle skips anything no longer started). Evens
    // are stopped before their very first turn and never run; odds run in passes 1 and 2
    // and are skipped in pass 3 after the controller stops everyone.
    int expected = (i % 2 == 0) ? 0 : 2;
    EXPECT_EQ((*runs)[static_cast<std::size_t>(i)], expected) << "callback " << i;
  }
  EXPECT_EQ((*runs)[0], 3);
  cbs->clear();  // break the callback<->holder reference cycle
}

TEST(SimEvents, ManyCrossCoreSpawnsAllArrive) {
  SimWorld world;
  Runtime& rt = world.AddMachine("mass", 2);
  constexpr int kCount = 5000;
  int received = 0;
  SimWorld::SpawnOn(rt, 0, [&] {
    auto& em = event::Local();
    for (int i = 0; i < kCount; ++i) {
      em.SpawnRemote([&received] { ++received; }, 1);
    }
  });
  world.Run();
  EXPECT_EQ(received, kCount);
}

}  // namespace
}  // namespace ebbrt
