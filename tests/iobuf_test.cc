// Tests for the IOBuf zero-copy primitive (§3.6): views, chains, cursors.
#include "src/iobuf/iobuf.h"

#include <cstring>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

namespace ebbrt {
namespace {

TEST(IOBuf, CreateFullView) {
  auto buf = IOBuf::Create(128);
  EXPECT_EQ(buf->Length(), 128u);
  EXPECT_EQ(buf->Capacity(), 128u);
  EXPECT_EQ(buf->Headroom(), 0u);
  EXPECT_EQ(buf->Tailroom(), 0u);
}

TEST(IOBuf, CreateZeroed) {
  auto buf = IOBuf::Create(64, /*zero=*/true);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(buf->Data()[i], 0u);
  }
}

TEST(IOBuf, ReserveEmptyViewWithHeadroom) {
  auto buf = IOBuf::CreateReserve(256, 64);
  EXPECT_EQ(buf->Length(), 0u);
  EXPECT_EQ(buf->Headroom(), 64u);
  EXPECT_EQ(buf->Tailroom(), 192u);
}

TEST(IOBuf, AdvanceRetreatSymmetry) {
  auto buf = IOBuf::Create(100);
  buf->Advance(40);
  EXPECT_EQ(buf->Length(), 60u);
  EXPECT_EQ(buf->Headroom(), 40u);
  buf->Retreat(40);
  EXPECT_EQ(buf->Length(), 100u);
  EXPECT_EQ(buf->Headroom(), 0u);
}

TEST(IOBuf, HeaderPrependViaRetreat) {
  // The send path reserves headroom, writes payload, then each layer Retreat()s to prepend
  // its header in place — no copies.
  auto buf = IOBuf::CreateReserve(64, 16);
  std::memcpy(buf->WritableTail(), "payload", 7);
  buf->Append(7);
  buf->Retreat(4);
  std::memcpy(buf->WritableData(), "HDR:", 4);
  EXPECT_EQ(buf->AsStringView(), "HDR:payload");
}

TEST(IOBuf, GetTyped) {
  struct Header {
    std::uint16_t a;
    std::uint16_t b;
  };
  auto buf = IOBuf::Create(sizeof(Header));
  auto& h = buf->Get<Header>();
  h.a = 0x1234;
  h.b = 0x5678;
  const auto& ch = static_cast<const IOBuf&>(*buf).Get<Header>();
  EXPECT_EQ(ch.a, 0x1234);
  EXPECT_EQ(ch.b, 0x5678);
}

TEST(IOBuf, CopyBufferCopies) {
  std::string src = "abcdef";
  auto buf = IOBuf::CopyBuffer(src);
  src[0] = 'z';
  EXPECT_EQ(buf->AsStringView(), "abcdef");
}

TEST(IOBuf, WrapBufferAliases) {
  char storage[8] = "wrapme!";
  auto buf = IOBuf::WrapBuffer(storage, 7);
  storage[0] = 'W';
  EXPECT_EQ(buf->AsStringView(), "Wrapme!");
}

TEST(IOBuf, TakeOwnershipCallsFree) {
  static int freed = 0;
  freed = 0;
  auto* raw = static_cast<std::uint8_t*>(std::malloc(16));
  {
    auto buf = IOBuf::TakeOwnership(
        raw, 16, 16, [](void* p, void*) { std::free(p); ++freed; }, nullptr);
    EXPECT_EQ(buf->Length(), 16u);
  }
  EXPECT_EQ(freed, 1);
}

TEST(IOBuf, ChainAppendAndCount) {
  auto a = IOBuf::CopyBuffer("aa", 2);
  a->AppendChain(IOBuf::CopyBuffer("bbb"));
  a->AppendChain(IOBuf::CopyBuffer("c"));
  EXPECT_EQ(a->CountChainElements(), 3u);
  EXPECT_EQ(a->ComputeChainDataLength(), 6u);
}

TEST(IOBuf, PopDetachesRest) {
  auto a = IOBuf::CopyBuffer("head");
  a->AppendChain(IOBuf::CopyBuffer("tail"));
  auto rest = a->Pop();
  EXPECT_FALSE(a->IsChained());
  EXPECT_EQ(rest->AsStringView(), "tail");
}

TEST(IOBuf, CoalesceChainFlattens) {
  auto a = IOBuf::CopyBuffer("one-");
  a->AppendChain(IOBuf::CopyBuffer("two-"));
  a->AppendChain(IOBuf::CopyBuffer("three"));
  a->CoalesceChain();
  EXPECT_FALSE(a->IsChained());
  EXPECT_EQ(a->AsStringView(), "one-two-three");
}

TEST(IOBuf, CopyOutAcrossChain) {
  auto a = IOBuf::CopyBuffer("0123");
  a->AppendChain(IOBuf::CopyBuffer("4567"));
  a->AppendChain(IOBuf::CopyBuffer("89"));
  char out[10];
  a->CopyOut(out, 10);
  EXPECT_EQ(std::string(out, 10), "0123456789");
  char mid[4];
  a->CopyOut(mid, 4, 3);  // offset crossing the first boundary
  EXPECT_EQ(std::string(mid, 4), "3456");
}

TEST(IOBuf, CloneDeepCopies) {
  auto a = IOBuf::CopyBuffer("xy");
  a->AppendChain(IOBuf::CopyBuffer("z"));
  auto clone = a->Clone();
  EXPECT_EQ(clone->AsStringView(), "xyz");
  a->WritableData()[0] = 'Q';
  EXPECT_EQ(clone->AsStringView(), "xyz");  // independent storage
}

TEST(IOBuf, LongChainDestructionIsIterative) {
  // Build a 100k-element chain; destruction must not recurse (event stacks are small).
  auto head = IOBuf::Create(1);
  for (int i = 0; i < 100000; ++i) {
    head->AppendChain(IOBuf::Create(1));
    if (i > 0 && i % 10000 == 0) {
      // AppendChain walks the chain; rebuild from the tail occasionally to keep this test
      // fast: prepend instead by swapping.
      break;
    }
  }
  // Extend quickly by chaining at the head.
  for (int i = 0; i < 100000; ++i) {
    auto next = IOBuf::Create(1);
    next->AppendChain(std::move(head));
    head = std::move(next);
  }
  EXPECT_GE(head->CountChainElements(), 100000u);
  head.reset();  // must not overflow the stack
}

TEST(DataPointer, GetAcrossElements) {
  auto a = IOBuf::CopyBuffer("\x01\x02", 2);
  a->AppendChain(IOBuf::CopyBuffer("\x03\x04", 2));
  DataPointer dp(a.get());
  EXPECT_EQ(dp.Get<std::uint8_t>(), 1);
  EXPECT_EQ(dp.Get<std::uint8_t>(), 2);
  EXPECT_EQ(dp.Get<std::uint8_t>(), 3);  // crossed the element boundary
  EXPECT_EQ(dp.Remaining(), 1u);
}

TEST(DataPointer, CopyOutDoesNotAdvance) {
  auto a = IOBuf::CopyBuffer("abcd");
  a->AppendChain(IOBuf::CopyBuffer("efgh"));
  DataPointer dp(a.get());
  dp.Advance(2);
  char out[4];
  dp.CopyOut(out, 4);
  EXPECT_EQ(std::string(out, 4), "cdef");
  EXPECT_EQ(dp.Remaining(), 6u);
}

TEST(DataPointer, RemainingTracksChain) {
  auto a = IOBuf::CopyBuffer("abc");
  a->AppendChain(IOBuf::CopyBuffer("de"));
  DataPointer dp(a.get());
  EXPECT_EQ(dp.Remaining(), 5u);
  dp.Advance(4);
  EXPECT_EQ(dp.Remaining(), 1u);
}

}  // namespace
}  // namespace ebbrt
