// Tests for the IOBuf zero-copy primitive (§3.6): views, chains, cursors.
#include "src/iobuf/iobuf.h"

#include <cstring>
#include <numeric>
#include <string>

#include <gtest/gtest.h>

namespace ebbrt {
namespace {

TEST(IOBuf, CreateFullView) {
  auto buf = IOBuf::Create(128);
  EXPECT_EQ(buf->Length(), 128u);
  EXPECT_EQ(buf->Capacity(), 128u);
  EXPECT_EQ(buf->Headroom(), 0u);
  EXPECT_EQ(buf->Tailroom(), 0u);
}

TEST(IOBuf, CreateZeroed) {
  auto buf = IOBuf::Create(64, /*zero=*/true);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(buf->Data()[i], 0u);
  }
}

TEST(IOBuf, ReserveEmptyViewWithHeadroom) {
  auto buf = IOBuf::CreateReserve(256, 64);
  EXPECT_EQ(buf->Length(), 0u);
  EXPECT_EQ(buf->Headroom(), 64u);
  EXPECT_EQ(buf->Tailroom(), 192u);
}

TEST(IOBuf, AdvanceRetreatSymmetry) {
  auto buf = IOBuf::Create(100);
  buf->Advance(40);
  EXPECT_EQ(buf->Length(), 60u);
  EXPECT_EQ(buf->Headroom(), 40u);
  buf->Retreat(40);
  EXPECT_EQ(buf->Length(), 100u);
  EXPECT_EQ(buf->Headroom(), 0u);
}

TEST(IOBuf, HeaderPrependViaRetreat) {
  // The send path reserves headroom, writes payload, then each layer Retreat()s to prepend
  // its header in place — no copies.
  auto buf = IOBuf::CreateReserve(64, 16);
  std::memcpy(buf->WritableTail(), "payload", 7);
  buf->Append(7);
  buf->Retreat(4);
  std::memcpy(buf->WritableData(), "HDR:", 4);
  EXPECT_EQ(buf->AsStringView(), "HDR:payload");
}

TEST(IOBuf, GetTyped) {
  struct Header {
    std::uint16_t a;
    std::uint16_t b;
  };
  auto buf = IOBuf::Create(sizeof(Header));
  auto& h = buf->Get<Header>();
  h.a = 0x1234;
  h.b = 0x5678;
  const auto& ch = static_cast<const IOBuf&>(*buf).Get<Header>();
  EXPECT_EQ(ch.a, 0x1234);
  EXPECT_EQ(ch.b, 0x5678);
}

TEST(IOBuf, CopyBufferCopies) {
  std::string src = "abcdef";
  auto buf = IOBuf::CopyBuffer(src);
  src[0] = 'z';
  EXPECT_EQ(buf->AsStringView(), "abcdef");
}

TEST(IOBuf, WrapBufferAliases) {
  char storage[8] = "wrapme!";
  auto buf = IOBuf::WrapBuffer(storage, 7);
  storage[0] = 'W';
  EXPECT_EQ(buf->AsStringView(), "Wrapme!");
}

TEST(IOBuf, TakeOwnershipCallsFree) {
  static int freed = 0;
  freed = 0;
  auto* raw = static_cast<std::uint8_t*>(std::malloc(16));
  {
    auto buf = IOBuf::TakeOwnership(
        raw, 16, 16, [](void* p, void*) { std::free(p); ++freed; }, nullptr);
    EXPECT_EQ(buf->Length(), 16u);
  }
  EXPECT_EQ(freed, 1);
}

TEST(IOBuf, ChainAppendAndCount) {
  auto a = IOBuf::CopyBuffer("aa", 2);
  a->AppendChain(IOBuf::CopyBuffer("bbb"));
  a->AppendChain(IOBuf::CopyBuffer("c"));
  EXPECT_EQ(a->CountChainElements(), 3u);
  EXPECT_EQ(a->ComputeChainDataLength(), 6u);
}

TEST(IOBuf, PopDetachesRest) {
  auto a = IOBuf::CopyBuffer("head");
  a->AppendChain(IOBuf::CopyBuffer("tail"));
  auto rest = a->Pop();
  EXPECT_FALSE(a->IsChained());
  EXPECT_EQ(rest->AsStringView(), "tail");
}

TEST(IOBuf, CoalesceFlattens) {
  auto a = IOBuf::CopyBuffer("one-");
  a->AppendChain(IOBuf::CopyBuffer("two-"));
  a->AppendChain(IOBuf::CopyBuffer("three"));
  a->Coalesce();
  EXPECT_FALSE(a->IsChained());
  EXPECT_EQ(a->AsStringView(), "one-two-three");
}

TEST(IOBuf, CoalesceSingleElementIsNoop) {
  auto a = IOBuf::CopyBuffer("solo");
  const std::uint8_t* before = a->Data();
  a->Coalesce();
  EXPECT_EQ(a->Data(), before);  // no reallocation, no copy
  EXPECT_EQ(a->AsStringView(), "solo");
}

TEST(IOBuf, CopyOutAcrossChain) {
  auto a = IOBuf::CopyBuffer("0123");
  a->AppendChain(IOBuf::CopyBuffer("4567"));
  a->AppendChain(IOBuf::CopyBuffer("89"));
  char out[10];
  a->CopyOut(out, 10);
  EXPECT_EQ(std::string(out, 10), "0123456789");
  char mid[4];
  a->CopyOut(mid, 4, 3);  // offset crossing the first boundary
  EXPECT_EQ(std::string(mid, 4), "3456");
}

TEST(IOBuf, CloneSharesStorage) {
  auto a = IOBuf::CopyBuffer("xy");
  a->AppendChain(IOBuf::CopyBuffer("z"));
  auto clone = a->Clone();
  EXPECT_EQ(clone->CountChainElements(), 2u);
  EXPECT_EQ(clone->Data(), a->Data());  // zero-copy: same underlying bytes
  EXPECT_TRUE(a->Shared());
  EXPECT_TRUE(clone->Shared());
  // Shared semantics: writes through one view are visible through the other.
  a->WritableData()[0] = 'Q';
  EXPECT_EQ(clone->AsStringView(), "Qy");
  clone.reset();
  EXPECT_FALSE(a->Shared());  // last view standing owns the storage alone
  EXPECT_EQ(a->AsStringView(), "Qy");  // storage not freed under us
}

TEST(IOBuf, CloneViewsAreIndependent) {
  // The *views* are independent even though the storage is shared: advancing the clone does
  // not move the original (how TCP keeps retransmit views while the app consumes its copy).
  auto a = IOBuf::CopyBuffer("abcdef");
  auto clone = a->Clone();
  clone->Advance(3);
  EXPECT_EQ(a->AsStringView(), "abcdef");
  EXPECT_EQ(clone->AsStringView(), "def");
}

TEST(IOBuf, CloneOfWrapBufferStaysNonOwning) {
  char storage[8] = "wrapped";
  auto a = IOBuf::WrapBuffer(storage, 7);
  auto clone = a->Clone();
  a.reset();
  EXPECT_EQ(clone->AsStringView(), "wrapped");  // external memory untouched
  EXPECT_FALSE(clone->Shared());                // no control block to share
}

TEST(IOBuf, CloneReleasesOwnedStorageExactlyOnce) {
  static int freed = 0;
  freed = 0;
  auto* raw = static_cast<std::uint8_t*>(std::malloc(16));
  auto a = IOBuf::TakeOwnership(
      raw, 16, 16, [](void* p, void*) { std::free(p); ++freed; }, nullptr);
  auto c1 = a->Clone();
  auto c2 = c1->Clone();
  a.reset();
  c1.reset();
  EXPECT_EQ(freed, 0);  // a view is still alive
  c2.reset();
  EXPECT_EQ(freed, 1);
}

TEST(IOBuf, DeepCloneCopies) {
  auto a = IOBuf::CopyBuffer("xy");
  a->AppendChain(IOBuf::CopyBuffer("z"));
  auto clone = a->DeepClone();
  EXPECT_EQ(clone->AsStringView(), "xyz");
  a->WritableData()[0] = 'Q';
  EXPECT_EQ(clone->AsStringView(), "xyz");  // independent storage
}

TEST(IOBuf, SplitAtElementBoundary) {
  auto a = IOBuf::CopyBuffer("0123");
  a->AppendChain(IOBuf::CopyBuffer("4567"));
  auto rest = a->Split(4);
  EXPECT_EQ(a->ComputeChainDataLength(), 4u);
  EXPECT_EQ(a->AsStringView(), "0123");
  ASSERT_NE(rest, nullptr);
  EXPECT_EQ(rest->AsStringView(), "4567");
}

TEST(IOBuf, SplitMidElementSharesNotCopies) {
  auto a = IOBuf::CopyBuffer("0123456789");
  const std::uint8_t* base = a->Data();
  auto rest = a->Split(3);
  EXPECT_EQ(a->AsStringView(), "012");
  ASSERT_NE(rest, nullptr);
  EXPECT_EQ(rest->AsStringView(), "3456789");
  EXPECT_EQ(rest->Data(), base + 3);  // a view into the same storage, not a copy
  EXPECT_TRUE(a->Shared());
}

TEST(IOBuf, SplitWholeChainReturnsNull) {
  auto a = IOBuf::CopyBuffer("abc");
  a->AppendChain(IOBuf::CopyBuffer("de"));
  auto rest = a->Split(5);
  EXPECT_EQ(rest, nullptr);
  EXPECT_EQ(a->ComputeChainDataLength(), 5u);
}

TEST(IOBuf, SplitAcrossMultipleElements) {
  auto a = IOBuf::CopyBuffer("aa");
  a->AppendChain(IOBuf::CopyBuffer("bb"));
  a->AppendChain(IOBuf::CopyBuffer("cc"));
  auto rest = a->Split(3);  // boundary inside the second element
  EXPECT_EQ(a->CountChainElements(), 2u);
  char head[3];
  a->CopyOut(head, 3);
  EXPECT_EQ(std::string(head, 3), "aab");
  char tail[3];
  ASSERT_NE(rest, nullptr);
  rest->CopyOut(tail, 3);
  EXPECT_EQ(std::string(tail, 3), "bcc");
}

TEST(IOBuf, LongChainDestructionIsIterative) {
  // Build a 100k-element chain; destruction must not recurse (event stacks are small).
  auto head = IOBuf::Create(1);
  for (int i = 0; i < 100000; ++i) {
    head->AppendChain(IOBuf::Create(1));
    if (i > 0 && i % 10000 == 0) {
      // AppendChain walks the chain; rebuild from the tail occasionally to keep this test
      // fast: prepend instead by swapping.
      break;
    }
  }
  // Extend quickly by chaining at the head.
  for (int i = 0; i < 100000; ++i) {
    auto next = IOBuf::Create(1);
    next->AppendChain(std::move(head));
    head = std::move(next);
  }
  EXPECT_GE(head->CountChainElements(), 100000u);
  head.reset();  // must not overflow the stack
}

TEST(DataPointer, GetAcrossElements) {
  auto a = IOBuf::CopyBuffer("\x01\x02", 2);
  a->AppendChain(IOBuf::CopyBuffer("\x03\x04", 2));
  DataPointer dp(a.get());
  EXPECT_EQ(dp.Get<std::uint8_t>(), 1);
  EXPECT_EQ(dp.Get<std::uint8_t>(), 2);
  EXPECT_EQ(dp.Get<std::uint8_t>(), 3);  // crossed the element boundary
  EXPECT_EQ(dp.Remaining(), 1u);
}

TEST(DataPointer, CopyOutDoesNotAdvance) {
  auto a = IOBuf::CopyBuffer("abcd");
  a->AppendChain(IOBuf::CopyBuffer("efgh"));
  DataPointer dp(a.get());
  dp.Advance(2);
  char out[4];
  dp.CopyOut(out, 4);
  EXPECT_EQ(std::string(out, 4), "cdef");
  EXPECT_EQ(dp.Remaining(), 6u);
}

TEST(DataPointer, RemainingTracksChain) {
  auto a = IOBuf::CopyBuffer("abc");
  a->AppendChain(IOBuf::CopyBuffer("de"));
  DataPointer dp(a.get());
  EXPECT_EQ(dp.Remaining(), 5u);
  dp.Advance(4);
  EXPECT_EQ(dp.Remaining(), 1u);
}

TEST(IOBuf, OwnedStorageEmbedsControlBlock) {
  // One-allocation layout: the SharedStorage header and the bytes are one block — for the
  // heap-fallback path here, and (asserted in buffer_pool_test with a machine installed)
  // for the slab path identically.
  EXPECT_TRUE(IOBuf::Create(128)->StorageEmbedded());
  EXPECT_TRUE(IOBuf::CreateReserve(256, 64)->StorageEmbedded());
  EXPECT_TRUE(IOBuf::CopyBuffer("payload")->StorageEmbedded());
  auto coalesced = IOBuf::CopyBuffer("one-");
  coalesced->AppendChain(IOBuf::CopyBuffer("two"));
  coalesced->Coalesce();
  EXPECT_TRUE(coalesced->StorageEmbedded());
  // Views over memory the IOBuf does not own carry no embedded block.
  char external[8] = "outside";
  EXPECT_FALSE(IOBuf::WrapBuffer(external, 7)->StorageEmbedded());
  auto owned = IOBuf::TakeOwnership(
      std::malloc(16), 16, 16, [](void* p, void*) { std::free(p); }, nullptr);
  EXPECT_FALSE(owned->StorageEmbedded());
}

}  // namespace
}  // namespace ebbrt
