#!/usr/bin/env python3
"""Schema + regression-gate validation for the committed BENCH_*.json artifacts.

One validator per artifact, all in one place (they used to live as seven inline
heredocs in .github/workflows/ci.yml). Each checks two things:

  * schema — every section carries the keys its bench promises, so a silently
    dropped column fails CI rather than producing an artifact nobody can plot;
  * gates  — the claims the committed numbers are supposed to evidence (zero
    steady-state mallocs, zero control locks, corking engaged, failover bounded,
    telemetry-plane overhead <= 3%, ...) hold for the numbers actually committed.

Usage: validate_bench_json.py [file ...]     (default: every known artifact
present in the current directory; a known artifact that is MISSING is an error
only when named explicitly).
"""
import json
import os
import sys

# Shared latency-quantile columns (bench_json.h HistogramColumnsJson): every record that
# reports latency from an obs::Histogram carries exactly these.
HIST_KEYS = ('samples', 'mean_ns', 'p50_ns', 'p99_ns', 'p999_ns')


def require(point, keys, where):
    for key in keys:
        assert key in point, f'{where}: missing {key}'


def validate_interconnect(data):
    required = ('virtual_call_ns', 'mesh_uncontended_ns', 'xcore_spawn_ns',
                'allocs_per_op', 'xcore_pushes', 'xcore_wakeups', 'xcore_batched',
                'control_locks', 'fan_in')
    for section, p in data.items():
        assert isinstance(p, dict), f'{section}: section must be an object'
        require(p, required, section)
        assert isinstance(p['fan_in'], list) and p['fan_in'], f'{section}: empty fan_in'
        for point in p['fan_in']:
            require(point, ('senders', 'ns_per_op'), f'{section}: fan_in point')
        if p['allocs_per_op'] >= 0.05:
            sys.exit(f'{section}: steady-state spawns malloc '
                     f'(allocs_per_op {p["allocs_per_op"]})')
        if p['control_locks'] != 0:
            sys.exit(f'{section}: {p["control_locks"]} spinlock acquisitions on the '
                     f'dispatch path')
        if p['xcore_pushes'] > 0 and p['xcore_wakeups'] > p['xcore_pushes'] // 2:
            sys.exit(f'{section}: wake elision broken — {p["xcore_wakeups"]} wakeups '
                     f'for {p["xcore_pushes"]} pushes')


def validate_sharded_kv(data):
    required = ('shards', 'pipeline', 'requests', 'ops_per_sec', 'tx_data_segments',
                'segments_per_op', 'heap_allocs', 'allocs_per_op', 'pool_hit_rate',
                'shard_ops', 'imbalance', 'control_locks')
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        for p in points:
            require(p, required, section)
            assert len(p['shard_ops']) == p['shards'], f'{section}: shard_ops shape'
            if p['shards'] >= 4 and p['imbalance'] > 0.25:
                sys.exit(f'{section}: ring imbalance {p["imbalance"]} > 0.25 '
                         f'at {p["shards"]} shards')
            if p['allocs_per_op'] > 0.05:
                sys.exit(f'{section}: sharded datapath mallocs '
                         f'(allocs_per_op {p["allocs_per_op"]})')
            if p['pipeline'] >= 32 and p['segments_per_op'] > 0.5:
                sys.exit(f'{section}: fanned-out rounds not corking '
                         f'(segments_per_op {p["segments_per_op"]})')
            if p['control_locks'] != 0:
                sys.exit(f'{section}: {p["control_locks"]} control locks on the '
                         f'steady-state path')


def validate_failover(data):
    point_keys = ('phases', 't_kill_ns', 't_revive_ns', 'recovery_ns',
                  'recovery_ratio', 'failovers', 'suspects_marked', 'ring_swaps',
                  'write_skips', 'pre_kill_allocs_per_op', 'pre_kill_control_locks')
    phase_keys = ('phase', 'ops', 'errors', 'error_rate', 'ops_per_sec',
                  'virtual_ns') + HIST_KEYS
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        for p in points:
            require(p, point_keys, section)
            names = [ph['phase'] for ph in p['phases']]
            assert names == ['pre_kill', 'fault', 'recovery'], \
                f'{section}: phase list {names}'
            for ph in p['phases']:
                require(ph, phase_keys, f'{section}: phase {ph.get("phase")}')
                if ph['phase'] != 'pre_kill' and ph['error_rate'] > 0.02:
                    sys.exit(f'{section}: {ph["phase"]} error rate {ph["error_rate"]} '
                             f'> 0.02 — failover is leaking availability')
            if p['recovery_ratio'] < 0.8:
                sys.exit(f'{section}: recovery throughput only '
                         f'{p["recovery_ratio"]}x pre-kill (< 0.8x)')
            if p['failovers'] < 1 or p['suspects_marked'] < 1 or p['ring_swaps'] < 1:
                sys.exit(f'{section}: failover machinery never engaged')
            if p['pre_kill_allocs_per_op'] > 0.05:
                sys.exit(f'{section}: deadline bookkeeping mallocs on the steady path '
                         f'(allocs_per_op {p["pre_kill_allocs_per_op"]})')
            if p['pre_kill_control_locks'] != 0:
                sys.exit(f'{section}: {p["pre_kill_control_locks"]} control locks on '
                         f'the pre-kill path')


def validate_multiget(data):
    required = ('shards', 'batch', 'keys', 'ops_per_sec', 'ns_per_key',
                'tx_data_segments', 'segments_per_op', 'heap_allocs',
                'allocs_per_op', 'pool_hit_rate', 'hits', 'control_locks',
                'virtual_ns')
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        base = {}  # shards -> batch-1 segments_per_op
        for p in points:
            require(p, required, section)
            if p['hits'] != p['keys']:
                sys.exit(f'{section}: {p["keys"] - p["hits"]} preloaded keys missed')
            if p['allocs_per_op'] > 0.05:
                sys.exit(f'{section}: bulk datapath mallocs '
                         f'(allocs_per_op {p["allocs_per_op"]})')
            if p['control_locks'] != 0:
                sys.exit(f'{section}: {p["control_locks"]} control locks on the '
                         f'steady-state path')
            if p['batch'] == 1:
                base[p['shards']] = p['segments_per_op']
        for p in points:
            if p['batch'] >= 64 and p['shards'] in base:
                if p['segments_per_op'] > 0.5 * base[p['shards']]:
                    sys.exit(f'{section}: batch-64 segments/key {p["segments_per_op"]} '
                             f'> 0.5x batch-1 {base[p["shards"]]} at '
                             f'{p["shards"]} shard(s)')


def validate_dist_rpc(data):
    required = ('pipeline', 'requests', 'rpcs_per_sec', 'tx_data_segments',
                'segments_per_op', 'heap_allocs', 'allocs_per_op', 'pool_hit_rate')
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        for p in points:
            require(p, required, section)
            if p['pipeline'] >= 32 and p['segments_per_op'] >= 0.5:
                sys.exit(f'{section}: pipelined RPCs not batching '
                         f'(segments_per_op {p["segments_per_op"]})')
            if p['allocs_per_op'] > 0.1:
                sys.exit(f'{section}: dist RPC datapath mallocs '
                         f'(allocs_per_op {p["allocs_per_op"]})')


def validate_tx_batching(data):
    required = ('pipeline', 'requests', 'tx_data_segments', 'sends_coalesced',
                'bytes_per_segment', 'segments_per_op')
    total_coalesced = 0
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        for p in points:
            require(p, required, section)
            total_coalesced += p['sends_coalesced']
    if total_coalesced == 0:
        sys.exit('TX batching silently disabled: sends_coalesced == 0 everywhere')


def validate_alloc_pool(data):
    required = ('pipeline', 'requests', 'iobuf_allocs', 'heap_allocs',
                'pool_hits', 'pool_misses', 'allocs_per_op', 'pool_hit_rate')
    worst_allocs = 0.0
    best_hit_rate = 0.0
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        for p in points:
            require(p, required, section)
            if p['pipeline'] >= 8:
                worst_allocs = max(worst_allocs, p['allocs_per_op'])
            best_hit_rate = max(best_hit_rate, p['pool_hit_rate'])
    if best_hit_rate == 0.0:
        sys.exit('buffer pool silently disabled: pool_hit_rate == 0 everywhere')
    if worst_allocs > 0.05:
        sys.exit(f'steady-state datapath mallocs: allocs_per_op {worst_allocs}')


def validate_observability(data):
    required = ('level', 'ops', 'ops_per_sec', 'heap_allocs', 'allocs_per_op',
                'control_locks', 'spans', 'virtual_ns') + HIST_KEYS
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        by_level = {}
        for p in points:
            require(p, required, section)
            by_level[p['level']] = p
            if p['ops'] == 0:
                sys.exit(f'{section}: level {p["level"]} schedule did not complete')
            if p['control_locks'] != 0:
                sys.exit(f'{section}: {p["control_locks"]} control locks at level '
                         f'{p["level"]}')
            if p['allocs_per_op'] > 0.05:
                sys.exit(f'{section}: telemetry plane mallocs at level {p["level"]} '
                         f'(allocs_per_op {p["allocs_per_op"]})')
        assert set(by_level) == {'off', 'metrics', 'tracing'}, \
            f'{section}: levels {sorted(by_level)}'
        off, tracing = by_level['off'], by_level['tracing']
        # The headline gate: full tracing within 3% of the dark baseline.
        if tracing['ops_per_sec'] < 0.97 * off['ops_per_sec']:
            sys.exit(f'{section}: tracing ops/s {tracing["ops_per_sec"]} < 97% of '
                     f'off {off["ops_per_sec"]}')
        if tracing['spans'] < tracing['ops']:
            sys.exit(f'{section}: only {tracing["spans"]} spans for '
                     f'{tracing["ops"]} traced ops')
        if off['spans'] != 0 or by_level['metrics']['spans'] != 0:
            sys.exit(f'{section}: spans recorded below kTracing')


def validate_item_plane(data):
    required = ('mix_get_pct', 'value_size', 'ops', 'gets', 'sets', 'ns_per_op',
                'get_heap_allocs_per_op', 'set_heap_allocs_per_op',
                'heap_allocs_per_op', 'control_locks') + HIST_KEYS
    for section, points in data.items():
        assert isinstance(points, list) and points, f'{section}: empty section'
        for p in points:
            require(p, required, section)
            if p['ops'] == 0:
                sys.exit(f'{section}: mix {p["mix_get_pct"]} value {p["value_size"]} '
                         f'ran no ops')
    # The tentpole gates apply to the CURRENT implementation's sections, not the
    # committed pre-refactor baseline (schema-checked above, exempt below).
    for section, points in data.items():
        if section.endswith('_baseline'):
            continue
        # Smoke runs (CI, reduced op count) tolerate < 0.05; the committed full-run
        # section must measure exactly zero — the item plane's whole claim.
        limit = 0.05 if section.endswith('_smoke') else 0.0
        for p in points:
            where = f'{section}: mix {p["mix_get_pct"]} value {p["value_size"]}'
            exceeded = (p['get_heap_allocs_per_op'] > limit or
                        p['set_heap_allocs_per_op'] > limit)
            if exceeded:
                sys.exit(f'{where}: item plane mallocs in steady state '
                         f'(get {p["get_heap_allocs_per_op"]} '
                         f'set {p["set_heap_allocs_per_op"]}, limit {limit})')
            if p['control_locks'] != 0:
                sys.exit(f'{where}: {p["control_locks"]} control locks on the '
                         f'item path')
    # Perf gate: committed current 50/50 ns/op must beat the committed baseline at the
    # same value size (the mix where the refactor's SET-side win shows).
    current = data.get('item_plane')
    baseline = data.get('item_plane_baseline')
    if current and baseline:
        base_5050 = {p['value_size']: p['ns_per_op'] for p in baseline
                     if p['mix_get_pct'] == 50}
        for p in current:
            if p['mix_get_pct'] != 50 or p['value_size'] not in base_5050:
                continue
            if p['ns_per_op'] >= base_5050[p['value_size']]:
                sys.exit(f'item_plane: 50/50 ns/op {p["ns_per_op"]} did not improve '
                         f'on baseline {base_5050[p["value_size"]]} at value size '
                         f'{p["value_size"]}')


VALIDATORS = {
    'BENCH_interconnect.json': validate_interconnect,
    'BENCH_item_plane.json': validate_item_plane,
    'BENCH_sharded_kv.json': validate_sharded_kv,
    'BENCH_failover.json': validate_failover,
    'BENCH_multiget.json': validate_multiget,
    'BENCH_dist_rpc.json': validate_dist_rpc,
    'BENCH_tx_batching.json': validate_tx_batching,
    'BENCH_alloc_pool.json': validate_alloc_pool,
    'BENCH_observability.json': validate_observability,
}


def main(argv):
    paths = argv[1:] or [name for name in VALIDATORS if os.path.exists(name)]
    if not paths:
        sys.exit('no BENCH_*.json artifacts found (run from the repo root)')
    for path in paths:
        name = os.path.basename(path)
        if name not in VALIDATORS:
            sys.exit(f'{path}: no validator for this artifact')
        with open(path) as f:
            data = json.load(f)
        assert isinstance(data, dict) and data, \
            f'{name}: top level must be a non-empty object'
        VALIDATORS[name](data)
        print(f'OK: {name} ({len(data)} section(s))')


if __name__ == '__main__':
    main(sys.argv)
