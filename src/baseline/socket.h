// baseline:: — the general-purpose-OS comparator stack ("Linux" / "OSv" in the paper's
// evaluation), built over the same simulated NIC and the same TCP protocol machinery as the
// EbbRT stack. What differs is everything the paper says differs:
//
//   * a socket API with KERNEL BUFFERING on both sides (fixed-size socket buffers pace
//     connections instead of the application),
//   * copy-in/copy-out at the API boundary — Write() genuinely memcpys into a kernel buffer
//     and Read() genuinely memcpys out (the copies Figure 4's throughput gap comes from),
//   * per-syscall cost and a softirq + thread-wakeup indirection on receive, instead of
//     running the application directly from the device interrupt,
//   * Nagle's algorithm on small writes (on by default, as in a stock kernel),
//   * periodic scheduler ticks charging preemption/cache-pollution cost to every core.
//
// Parameterisations (see sim::GeneralPurposeOsModel and the factory functions below):
//   LinuxVm     — all of the above + KVM hypervisor model on the NIC
//   LinuxNative — all of the above, bare-metal NIC model
//   Osv         — library OS: no syscall crossing, but the Linux-ABI socket layer (buffering +
//                 copies + Nagle) remains, and the NIC is single-queue (the missing multiqueue
//                 support the paper calls out) with an extra per-packet driver overhead.
#ifndef EBBRT_SRC_BASELINE_SOCKET_H_
#define EBBRT_SRC_BASELINE_SOCKET_H_

#include <deque>
#include <functional>
#include <memory>

#include "src/event/sim_world.h"
#include "src/event/timer.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"
#include "src/sim/cost_model.h"

namespace ebbrt {
namespace baseline {

class SocketStack;

// A connected stream socket. All methods must be called on the socket's core.
class Socket {
 public:
  using DataReadyFn = std::function<void()>;
  using ClosedFn = std::function<void()>;

  Socket(SocketStack& stack, TcpPcb pcb);

  // epoll-style readiness: invoked (as a separate event, after the kernel's softirq and
  // wakeup path) when the receive buffer has data.
  void SetDataReadyHandler(DataReadyFn fn) { data_ready_ = std::move(fn); }
  void SetClosedHandler(ClosedFn fn) { closed_ = std::move(fn); }
  // EPOLLOUT analogue: invoked when kernel send-buffer space frees up after a short write.
  void SetWritableHandler(DataReadyFn fn) { writable_ = std::move(fn); }

  // Copies up to `len` bytes out of the kernel receive buffer (syscall + copy_to_user).
  // Returns bytes read; 0 when the buffer is empty (EWOULDBLOCK).
  std::size_t Read(void* buf, std::size_t len);

  // Copies `len` bytes into the kernel send buffer (syscall + copy_from_user) and lets the
  // kernel pace them onto the wire (window + Nagle). Returns bytes accepted; fewer when the
  // send buffer is full.
  std::size_t Write(const void* buf, std::size_t len);

  std::size_t rx_available() const { return rx_buffer_bytes_; }
  std::size_t core() const { return pcb_.core(); }
  void Close();

 private:
  friend class SocketStack;

  // The kernel half of the socket: the connection's TcpHandler. Receives segments and window
  // openings from the unified datapath and feeds the socket buffers — the buffering/copy
  // indirection a socket API imposes, expressed over the same handler abstraction the
  // zero-copy applications use. Holds a shared reference so the socket lives as long as its
  // connection even if the application drops its handle early.
  class KernelSide final : public TcpHandler {
   public:
    explicit KernelSide(std::shared_ptr<Socket> socket) : socket_(std::move(socket)) {}
    void Receive(std::unique_ptr<IOBuf> data) override {
      socket_->OnSegment(std::move(data));
    }
    void SendReady() override { socket_->OnAcked(); }
    void Close() override { socket_->OnPeerClosed(); }

   private:
    std::shared_ptr<Socket> socket_;
  };

  void OnSegment(std::unique_ptr<IOBuf> data);  // kernel-side rx
  void OnAcked();                               // window opened: pump tx
  void OnPeerClosed();                          // FIN/RST from the peer
  void PumpTx();                                // send from the kernel buffer as allowed
  void MaybeUpdateWindow();

  SocketStack& stack_;
  TcpPcb pcb_;
  DataReadyFn data_ready_;
  ClosedFn closed_;
  DataReadyFn writable_;

  // Kernel receive buffer: IOBuf segments queued until the app Read()s them out.
  std::deque<std::unique_ptr<IOBuf>> rx_buffer_;
  std::size_t rx_buffer_bytes_ = 0;
  std::size_t rx_read_offset_ = 0;  // partially-consumed head segment
  bool wakeup_scheduled_ = false;
  std::size_t window_consumed_ = 0;  // bytes read since the last window update we advertised

  // Kernel send buffer (flat ring of copied user data).
  std::deque<std::uint8_t> tx_buffer_;
  bool peer_closed_ = false;
};

class SocketStack {
 public:
  SocketStack(SimWorld& world, NetworkManager& net, sim::GeneralPurposeOsModel model);
  ~SocketStack();

  using AcceptFn = std::function<void(std::shared_ptr<Socket>)>;
  void Listen(std::uint16_t port, AcceptFn accept);
  Future<std::shared_ptr<Socket>> Connect(Ipv4Addr dst, std::uint16_t port);

  const sim::GeneralPurposeOsModel& model() const { return model_; }
  SimWorld& world() { return world_; }
  NetworkManager& net() { return net_; }

  // Cost charging helpers (no-ops when the model zeroes them).
  void ChargeSyscall() { world_.Charge(model_.syscall_ns); }
  void ChargeCopy(std::size_t bytes) {
    world_.Charge(static_cast<std::uint64_t>(model_.copy_ns_per_byte *
                                             static_cast<double>(bytes)));
  }

  static sim::GeneralPurposeOsModel LinuxModel() { return sim::GeneralPurposeOsModel{}; }
  static sim::GeneralPurposeOsModel OsvModel() {
    sim::GeneralPurposeOsModel m;
    m.syscall_ns = 0;           // library OS: the "syscall" is a function call
    m.context_switch_ns = 800;  // cheaper wakeup, same address space
    m.timer_tick_cost_ns = 1000;
    // The paper measured OSv as "not competitive with either Linux or EbbRT" on a single
    // core (§4.2); consistent with their unoptimized virtio-net driver and younger stack,
    // modeled as extra per-packet receive-path cost on top of the Linux-ABI socket layer.
    m.softirq_schedule_ns = 3500;
    return m;
  }

 private:
  void StartTicks();

  SimWorld& world_;
  NetworkManager& net_;
  sim::GeneralPurposeOsModel model_;
  bool ticks_started_ = false;
};

}  // namespace baseline
}  // namespace ebbrt

#endif  // EBBRT_SRC_BASELINE_SOCKET_H_
