#include "src/baseline/socket.h"

#include <cstring>

#include "src/event/event_manager.h"

namespace ebbrt {
namespace baseline {

SocketStack::SocketStack(SimWorld& world, NetworkManager& net,
                         sim::GeneralPurposeOsModel model)
    : world_(world), net_(net), model_(model) {
  StartTicks();
}

SocketStack::~SocketStack() = default;

void SocketStack::StartTicks() {
  if (ticks_started_ || model_.timer_tick_period_ns == 0) {
    return;
  }
  ticks_started_ = true;
  // The scheduler tick: periodic interrupt + runqueue processing + cache pollution on every
  // core — the preemption noise a non-preemptive library OS simply does not have.
  for (std::size_t core = 0; core < net_.runtime().num_cores(); ++core) {
    SimWorld::SpawnOn(net_.runtime(), core, [this] {
      Timer::Instance()->Start(
          model_.timer_tick_period_ns,
          [this] { world_.Charge(model_.timer_tick_cost_ns); },
          /*periodic=*/true);
    });
  }
}

void SocketStack::Listen(std::uint16_t port, AcceptFn accept) {
  net_.tcp().Listen(port, [this, accept](TcpPcb pcb) {
    auto socket = std::make_shared<Socket>(*this, std::move(pcb));
    // Wire the kernel side onto the connection while still in the accept event.
    socket->pcb_.InstallHandler(
        std::unique_ptr<TcpHandler>(std::make_unique<Socket::KernelSide>(socket)));
    accept(std::move(socket));
  });
}

Future<std::shared_ptr<Socket>> SocketStack::Connect(Ipv4Addr dst, std::uint16_t port) {
  ChargeSyscall();  // connect(2)
  return net_.tcp().Connect(net_.interface(), dst, port).Then([this](Future<TcpPcb> f) {
    auto socket = std::make_shared<Socket>(*this, f.Get());
    socket->pcb_.InstallHandler(
        std::unique_ptr<TcpHandler>(std::make_unique<Socket::KernelSide>(socket)));
    return socket;
  });
}

Socket::Socket(SocketStack& stack, TcpPcb pcb) : stack_(stack), pcb_(std::move(pcb)) {}

void Socket::OnPeerClosed() {
  peer_closed_ = true;
  if (closed_) {
    closed_();
  }
}

void Socket::OnSegment(std::unique_ptr<IOBuf> data) {
  // Kernel receive path: softirq processing, then queue into the socket buffer and wake the
  // reader. The application does NOT run here — that is precisely the indirection EbbRT
  // removes.
  stack_.world().Charge(stack_.model().softirq_schedule_ns);
  rx_buffer_bytes_ += data->ComputeChainDataLength();
  rx_buffer_.push_back(std::move(data));
  if (!wakeup_scheduled_ && data_ready_) {
    wakeup_scheduled_ = true;
    // Thread wakeup + schedule-in: delivered as a separate event with its cost charged.
    auto self = this;
    event::Local().Spawn([self] {
      self->wakeup_scheduled_ = false;
      self->stack_.world().Charge(self->stack_.model().context_switch_ns);
      if (self->data_ready_) {
        self->data_ready_();
      }
    });
  }
}

std::size_t Socket::Read(void* buf, std::size_t len) {
  stack_.ChargeSyscall();  // read(2)/recv(2)
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t copied = 0;
  while (copied < len && !rx_buffer_.empty()) {
    IOBuf& head = *rx_buffer_.front();
    std::size_t avail = head.Length() - rx_read_offset_;
    std::size_t take = std::min(avail, len - copied);
    std::memcpy(out + copied, head.Data() + rx_read_offset_, take);  // copy_to_user
    copied += take;
    rx_read_offset_ += take;
    if (rx_read_offset_ == head.Length()) {
      rx_buffer_.pop_front();
      rx_read_offset_ = 0;
    }
  }
  stack_.ChargeCopy(copied);
  rx_buffer_bytes_ -= copied;
  window_consumed_ += copied;
  MaybeUpdateWindow();
  return copied;
}

void Socket::MaybeUpdateWindow() {
  // The kernel advertises window as free socket-buffer space; update the peer when a quarter
  // of the buffer has been drained (receive-window moderation).
  std::size_t sock_buf = stack_.model().socket_buffer_bytes;
  if (window_consumed_ >= sock_buf / 4 || rx_buffer_bytes_ == 0) {
    window_consumed_ = 0;
    std::size_t free_space = sock_buf > rx_buffer_bytes_ ? sock_buf - rx_buffer_bytes_ : 0;
    pcb_.SetReceiveWindow(
        static_cast<std::uint16_t>(std::min<std::size_t>(free_space, 65535)));
  }
}

std::size_t Socket::Write(const void* buf, std::size_t len) {
  stack_.ChargeSyscall();  // write(2)/send(2)
  std::size_t sock_buf = stack_.model().socket_buffer_bytes;
  std::size_t room = sock_buf > tx_buffer_.size() ? sock_buf - tx_buffer_.size() : 0;
  std::size_t accepted = std::min(room, len);
  auto* in = static_cast<const std::uint8_t*>(buf);
  tx_buffer_.insert(tx_buffer_.end(), in, in + accepted);  // copy_from_user
  stack_.ChargeCopy(accepted);
  PumpTx();
  return accepted;
}

void Socket::PumpTx() {
  // Kernel send pacing: transmit from the socket buffer while the peer's window allows;
  // Nagle holds back sub-MSS tails while data is in flight.
  for (;;) {
    if (tx_buffer_.empty()) {
      return;
    }
    std::size_t window = pcb_.SendWindowRemaining();
    if (window == 0) {
      return;
    }
    std::size_t chunk = std::min({tx_buffer_.size(), window, kTcpMss});
    if (stack_.model().nagle && chunk < kTcpMss && pcb_.BytesInFlight() > 0) {
      return;  // Nagle: hold the sub-MSS tail until the in-flight data is acknowledged
    }
    auto payload = IOBuf::Create(chunk);
    std::copy(tx_buffer_.begin(), tx_buffer_.begin() + static_cast<long>(chunk),
              payload->WritableData());
    tx_buffer_.erase(tx_buffer_.begin(), tx_buffer_.begin() + static_cast<long>(chunk));
    if (!pcb_.Send(std::move(payload))) {
      return;
    }
  }
}

void Socket::OnAcked() {
  PumpTx();
  if (writable_ && tx_buffer_.size() < stack_.model().socket_buffer_bytes) {
    writable_();
  }
}

void Socket::Close() {
  stack_.ChargeSyscall();
  PumpTx();
  pcb_.Close();
}

}  // namespace baseline
}  // namespace ebbrt
