// Node-style static webserver (§4.3's final experiment): "The webserver uses the builtin http
// module and responds to each GET request with a small static response, totaling 148 bytes."
//
// HttpServer runs on the uv:: layer over EbbRT — the request handler fires directly from the
// device event, no context switch, no preemption (the paper's explanation for Table 2).
// BaselineHttpServer is the same server over the general-purpose-OS socket stack.
#ifndef EBBRT_SRC_APPS_HTTP_HTTP_SERVER_H_
#define EBBRT_SRC_APPS_HTTP_HTTP_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/socket.h"
#include "src/uv/uv.h"

namespace ebbrt {
namespace http {

// The exact 148-byte response (status line + headers + body).
std::string StaticResponse();

// Minimal HTTP/1.1 request accumulator: detects end-of-headers, supports keep-alive GETs.
// A streaming state machine — it scans IOBuf chains element by element in place; the only
// bytes it retains are each request's FIRST line (method + path, bounded at kMaxLine), so
// the server can route by path without ever buffering bodies or header blocks.
class RequestAccumulator {
 public:
  // Bound on the retained request line; a longer one is truncated (its path simply won't
  // match any route and falls through to the static response).
  static constexpr std::size_t kMaxLine = 256;

  // Feeds bytes; returns the number of complete requests now available.
  std::size_t Feed(const char* data, std::size_t len);
  // Chain-aware feed: scans every element of the received chain in place.
  std::size_t Feed(const IOBuf& chain);
  // Paths of the requests Feed has completed, arrival order; consuming (callers that don't
  // route — the baseline server — still drain it so nothing accumulates).
  std::vector<std::string> TakePaths();

 private:
  // Scans for "\r\n\r\n" across feeds with a 3-byte carry.
  std::size_t match_ = 0;
  bool line_done_ = false;  // saw the end of the current request's first line
  std::string line_;        // the first line so far (bounded at kMaxLine)
  std::vector<std::string> paths_;
};

class HttpServer {
 public:
  HttpServer(NetworkManager& network, std::uint16_t port);
  std::uint64_t requests() const { return requests_; }

 private:
  Runtime& runtime_;
  uv::TcpServer server_;
  std::uint64_t requests_ = 0;
};

class BaselineHttpServer {
 public:
  BaselineHttpServer(baseline::SocketStack& stack, std::uint16_t port);
  std::uint64_t requests() const { return requests_; }

 private:
  baseline::SocketStack& stack_;
  std::uint64_t requests_ = 0;
};

}  // namespace http
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_HTTP_HTTP_SERVER_H_
