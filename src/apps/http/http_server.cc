#include "src/apps/http/http_server.h"

namespace ebbrt {
namespace http {

std::string StaticResponse() {
  // Sized so the whole response is exactly 148 bytes, matching the paper's workload.
  std::string body = "<html>hello from ebbrt reproduction</html>\n";
  std::string response = "HTTP/1.1 200 OK\r\n"
                         "Content-Type: text/html\r\n"
                         "Connection: keep-alive\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  if (response.size() < 148) {
    // Pad with a header-safe comment inside the body (keeps Content-Length honest by
    // padding *before* building; recompute instead).
    std::size_t missing = 148 - response.size();
    body.insert(body.size() - 1, std::string(missing, '.'));
    response = "HTTP/1.1 200 OK\r\n"
               "Content-Type: text/html\r\n"
               "Connection: keep-alive\r\n"
               "Content-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
  }
  return response;
}

std::size_t RequestAccumulator::Feed(const char* data, std::size_t len) {
  static constexpr char kDelim[] = "\r\n\r\n";
  std::size_t complete = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] == kDelim[match_]) {
      if (++match_ == 4) {
        ++complete;
        match_ = 0;
      }
    } else {
      match_ = data[i] == '\r' ? 1 : 0;
    }
  }
  return complete;
}

std::size_t RequestAccumulator::Feed(const IOBuf& chain) {
  std::size_t complete = 0;
  for (const IOBuf* seg = &chain; seg != nullptr; seg = seg->Next()) {
    complete += Feed(reinterpret_cast<const char*>(seg->Data()), seg->Length());
  }
  return complete;
}

HttpServer::HttpServer(NetworkManager& network, std::uint16_t port) : server_(network) {
  server_.Listen(port, [this](std::shared_ptr<uv::TcpStream> stream) {
    auto acc = std::make_shared<RequestAccumulator>();
    // Event-scoped TX batching: all responses written while handling one device event
    // (a pipelined request burst) leave as one chain at the event boundary.
    stream->SetAutoCork(true);
    stream->ReadStart([this, stream, acc](std::unique_ptr<IOBuf> data) {
      // The stream handler fires straight from the device event; the accumulator scans the
      // received chain in place — no copies on any path.
      std::size_t requests = acc->Feed(*data);
      // Respond synchronously from the device event — one static buffer per request.
      static const std::string kResponse = StaticResponse();
      for (std::size_t i = 0; i < requests; ++i) {
        ++requests_;
        stream->Write(IOBuf::WrapBuffer(kResponse.data(), kResponse.size()));
      }
    });
    stream->OnClose([stream] { stream->Shutdown(); });
  });
}

BaselineHttpServer::BaselineHttpServer(baseline::SocketStack& stack, std::uint16_t port)
    : stack_(stack) {
  stack_.Listen(port, [this](std::shared_ptr<baseline::Socket> socket) {
    auto acc = std::make_shared<RequestAccumulator>();
    socket->SetDataReadyHandler([this, socket, acc] {
      char buf[8192];
      static const std::string kResponse = StaticResponse();
      for (;;) {
        std::size_t n = socket->Read(buf, sizeof(buf));
        if (n == 0) {
          break;
        }
        std::size_t requests = acc->Feed(buf, n);
        for (std::size_t i = 0; i < requests; ++i) {
          ++requests_;
          socket->Write(kResponse.data(), kResponse.size());
        }
      }
    });
  });
}

}  // namespace http
}  // namespace ebbrt
