#include "src/apps/http/http_server.h"

#include "src/obs/metrics.h"

namespace ebbrt {
namespace http {

namespace {

// Extracts the path token from a request line ("GET /metrics HTTP/1.1" -> "/metrics").
std::string PathOfLine(const std::string& line) {
  std::size_t first = line.find(' ');
  if (first == std::string::npos) {
    return "/";
  }
  std::size_t start = first + 1;
  std::size_t end = line.find(' ', start);
  if (end == std::string::npos) {
    end = line.size();
  }
  return start < end ? line.substr(start, end - start) : "/";
}

}  // namespace

std::string StaticResponse() {
  // Sized so the whole response is exactly 148 bytes, matching the paper's workload.
  std::string body = "<html>hello from ebbrt reproduction</html>\n";
  std::string response = "HTTP/1.1 200 OK\r\n"
                         "Content-Type: text/html\r\n"
                         "Connection: keep-alive\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body;
  if (response.size() < 148) {
    // Pad with a header-safe comment inside the body (keeps Content-Length honest by
    // padding *before* building; recompute instead).
    std::size_t missing = 148 - response.size();
    body.insert(body.size() - 1, std::string(missing, '.'));
    response = "HTTP/1.1 200 OK\r\n"
               "Content-Type: text/html\r\n"
               "Connection: keep-alive\r\n"
               "Content-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
  }
  return response;
}

std::size_t RequestAccumulator::Feed(const char* data, std::size_t len) {
  static constexpr char kDelim[] = "\r\n\r\n";
  std::size_t complete = 0;
  for (std::size_t i = 0; i < len; ++i) {
    char c = data[i];
    if (!line_done_) {
      if (c == '\r' || c == '\n') {
        line_done_ = true;
      } else if (line_.size() < kMaxLine) {
        line_.push_back(c);
      }
    }
    if (c == kDelim[match_]) {
      if (++match_ == 4) {
        ++complete;
        match_ = 0;
        paths_.push_back(PathOfLine(line_));
        line_.clear();
        line_done_ = false;
      }
    } else {
      match_ = c == '\r' ? 1 : 0;
    }
  }
  return complete;
}

std::size_t RequestAccumulator::Feed(const IOBuf& chain) {
  std::size_t complete = 0;
  for (const IOBuf* seg = &chain; seg != nullptr; seg = seg->Next()) {
    complete += Feed(reinterpret_cast<const char*>(seg->Data()), seg->Length());
  }
  return complete;
}

std::vector<std::string> RequestAccumulator::TakePaths() {
  std::vector<std::string> out = std::move(paths_);
  paths_.clear();
  return out;
}

HttpServer::HttpServer(NetworkManager& network, std::uint16_t port)
    : runtime_(network.runtime()), server_(network) {
  server_.Listen(port, [this](std::shared_ptr<uv::TcpStream> stream) {
    auto acc = std::make_shared<RequestAccumulator>();
    // Event-scoped TX batching: all responses written while handling one device event
    // (a pipelined request burst) leave as one chain at the event boundary.
    stream->SetAutoCork(true);
    stream->ReadStart([this, stream, acc](std::unique_ptr<IOBuf> data) {
      // The stream handler fires straight from the device event; the accumulator scans the
      // received chain in place — no copies on any path (the retained request LINE is the
      // routing exception, bounded at kMaxLine).
      std::size_t requests = acc->Feed(*data);
      std::vector<std::string> paths = acc->TakePaths();
      // Respond synchronously from the device event — one static buffer per request.
      static const std::string kResponse = StaticResponse();
      for (std::size_t i = 0; i < requests; ++i) {
        ++requests_;
        if (i < paths.size() && paths[i] == "/metrics") {
          // The exposition surface: a full registry snapshot (per-core slots summed,
          // collectors sampled) rendered as Prometheus-flavored text. Scrape cost is the
          // scraper's problem, not the datapath's — this path copies freely.
          std::string text =
              obs::ObsRoot::RenderText(obs::ObsRoot::For(runtime_).SnapshotNow());
          std::string response = "HTTP/1.1 200 OK\r\n"
                                 "Content-Type: text/plain; version=0.0.4\r\n"
                                 "Connection: keep-alive\r\n"
                                 "Content-Length: " +
                                 std::to_string(text.size()) + "\r\n\r\n" + text;
          stream->Write(IOBuf::CopyBuffer(response));
          continue;
        }
        stream->Write(IOBuf::WrapBuffer(kResponse.data(), kResponse.size()));
      }
    });
    stream->OnClose([stream] { stream->Shutdown(); });
  });
}

BaselineHttpServer::BaselineHttpServer(baseline::SocketStack& stack, std::uint16_t port)
    : stack_(stack) {
  stack_.Listen(port, [this](std::shared_ptr<baseline::Socket> socket) {
    auto acc = std::make_shared<RequestAccumulator>();
    socket->SetDataReadyHandler([this, socket, acc] {
      char buf[8192];
      static const std::string kResponse = StaticResponse();
      for (;;) {
        std::size_t n = socket->Read(buf, sizeof(buf));
        if (n == 0) {
          break;
        }
        std::size_t requests = acc->Feed(buf, n);
        acc->TakePaths();  // baseline doesn't route; drain so nothing accumulates
        for (std::size_t i = 0; i < requests; ++i) {
          ++requests_;
          socket->Write(kResponse.data(), kResponse.size());
        }
      }
    });
  });
}

}  // namespace http
}  // namespace ebbrt
