#include "src/apps/loadgen/memcached_loadgen.h"

#include <algorithm>

#include "src/event/timer.h"

namespace ebbrt {
namespace loadgen {

using memcached::BinaryHeader;
using memcached::kMagicRequest;
using memcached::Opcode;
using memcached::RequestParser;
using memcached::SetExtras;

namespace {

std::unique_ptr<IOBuf> BuildGet(std::string_view key, std::uint32_t opaque) {
  auto buf = IOBuf::Create(sizeof(BinaryHeader) + key.size(), /*zero=*/true);
  auto& hdr = buf->Get<BinaryHeader>();
  hdr.magic = kMagicRequest;
  hdr.opcode = static_cast<std::uint8_t>(Opcode::kGet);
  hdr.key_length = HostToNet16(static_cast<std::uint16_t>(key.size()));
  hdr.total_body = HostToNet32(static_cast<std::uint32_t>(key.size()));
  hdr.opaque = opaque;
  std::memcpy(buf->WritableData() + sizeof(BinaryHeader), key.data(), key.size());
  return buf;
}

std::unique_ptr<IOBuf> BuildSet(std::string_view key, std::size_t value_size,
                                std::uint32_t opaque) {
  std::size_t body = sizeof(SetExtras) + key.size() + value_size;
  auto buf = IOBuf::Create(sizeof(BinaryHeader) + body, /*zero=*/true);
  auto& hdr = buf->Get<BinaryHeader>();
  hdr.magic = kMagicRequest;
  hdr.opcode = static_cast<std::uint8_t>(Opcode::kSet);
  hdr.key_length = HostToNet16(static_cast<std::uint16_t>(key.size()));
  hdr.extras_length = sizeof(SetExtras);
  hdr.total_body = HostToNet32(static_cast<std::uint32_t>(body));
  hdr.opaque = opaque;
  auto* p = buf->WritableData() + sizeof(BinaryHeader) + sizeof(SetExtras);
  std::memcpy(p, key.data(), key.size());
  std::memset(p + key.size(), 'v', value_size);
  return buf;
}

}  // namespace

// Measurement connection: the loadgen's half of the unified datapath. Responses are parsed
// and accounted synchronously from the device event on the connection's core.
struct MemcachedLoadgen::Conn final : public TcpHandler {
  RequestParser parser;       // responses share the request wire format
  std::deque<std::uint64_t> issue_times;
  std::unique_ptr<EtcWorkload> workload;
  MemcachedLoadgen* gen = nullptr;
  std::size_t core = 0;
  double rate_per_ns = 0;
  bool stopped = false;

  void Receive(std::unique_ptr<IOBuf> data) override {
    parser.Feed(std::move(data), [this](const RequestParser::Request&) {
      if (issue_times.empty()) {
        return;  // response to a request issued outside accounting (shouldn't happen)
      }
      std::uint64_t issued = issue_times.front();
      issue_times.pop_front();
      std::uint64_t now = gen->bed_.world().Now();
      if (issued >= gen->measure_start_ && issued < gen->measure_end_) {
        gen->latencies_.Record(now - issued);
        ++gen->completed_in_window_;
      }
    });
  }
};

// Preloads the keyspace over one connection, pipelining SETs in windows of 32 to keep it
// fast but bounded; kicks off the measurement connections when the last batch is acked.
struct MemcachedLoadgen::Preloader final : public TcpHandler {
  explicit Preloader(MemcachedLoadgen& g) : gen(g) {}

  MemcachedLoadgen& gen;
  RequestParser parser;
  std::size_t next_key = 0;
  std::size_t remaining = 0;

  void Receive(std::unique_ptr<IOBuf> data) override {
    std::size_t done = 0;
    parser.Feed(std::move(data), [&done](const RequestParser::Request&) { ++done; });
    remaining -= done;
    if (remaining == 0) {
      SendNextBatch();
    }
  }

  void SendNextBatch() {
    if (next_key >= gen.config_.key_space) {
      Pcb().Close();
      gen.StartConnections();
      return;
    }
    std::size_t batch = std::min<std::size_t>(32, gen.config_.key_space - next_key);
    remaining = batch;
    for (std::size_t i = 0; i < batch; ++i) {
      std::size_t idx = next_key + i;
      Pcb().Send(BuildSet(gen.preload_workload_->Key(idx),
                          gen.preload_workload_->ValueSize(idx),
                          static_cast<std::uint32_t>(idx)));
    }
    next_key += batch;
  }
};

Future<MemcachedLoadgen::Result> MemcachedLoadgen::Run() {
  Future<Result> result = done_.GetFuture();
  preload_workload_ = std::make_unique<EtcWorkload>(config_.seed, config_.key_space);
  client_.Spawn(0, [this] {
    client_.net->tcp().Connect(*client_.iface, server_, port_).Then([this](Future<TcpPcb> f) {
      TcpPcb pcb = f.Get();
      auto preloader = std::make_unique<Preloader>(*this);
      auto* raw = preloader.get();
      pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::move(preloader)));
      raw->SendNextBatch();
    });
  });
  return result;
}

void MemcachedLoadgen::StartConnections() {
  std::size_t client_cores = client_.runtime->num_cores();
  measure_start_ = bed_.world().Now() + config_.warmup_ns;
  measure_end_ = measure_start_ + config_.duration_ns;
  for (std::size_t i = 0; i < config_.connections; ++i) {
    std::size_t core = i % client_cores;
    client_.Spawn(core, [this, i, core] {
      client_.net->tcp().Connect(*client_.iface, server_, port_).Then([this, i, core](
                                                                          Future<TcpPcb> f) {
        TcpPcb pcb = f.Get();
        auto conn = std::make_shared<Conn>();
        conn->workload = std::make_unique<EtcWorkload>(config_.seed + 17 * (i + 1),
                                                       config_.key_space);
        conn->gen = this;
        conn->core = core;
        conn->rate_per_ns =
            config_.target_qps / static_cast<double>(config_.connections) / 1e9;
        conns_.push_back(conn);
        pcb.InstallHandler(std::shared_ptr<TcpHandler>(conn));
        IssueTick(conn);
        if (++conns_ready_ == config_.connections) {
          // Arm the finish line on core 0 of the client.
          std::uint64_t horizon = measure_end_ + 20'000'000;  // drain tail
          std::uint64_t now = bed_.world().Now();
          client_.Spawn(0, [this, horizon, now] {
            Timer::Instance()->Start(horizon - now, [this] { Finish(); });
          });
        }
      });
    });
  }
}

void MemcachedLoadgen::IssueTick(std::shared_ptr<Conn> conn) {
  if (conn->stopped || finished_) {
    return;
  }
  std::uint64_t now = bed_.world().Now();
  if (now >= measure_end_) {
    conn->stopped = true;
    return;
  }
  // Open-loop issue: send unless the pipeline cap is reached (then this arrival is shed and
  // shows up as achieved < offered, exactly how a closed connection limit behaves).
  if (conn->issue_times.size() < config_.pipeline) {
    IssueRequest(*conn);
  }
  std::uint64_t delay = std::max<std::uint64_t>(
      conn->workload->InterarrivalNs(conn->rate_per_ns), 100);
  Timer::Instance()->Start(delay, [this, conn] { IssueTick(conn); });
}

void MemcachedLoadgen::IssueRequest(Conn& conn) {
  std::size_t idx = conn.workload->KeyIndex();
  std::string key = conn.workload->Key(idx);
  std::unique_ptr<IOBuf> req;
  if (conn.workload->IsGet(config_.get_ratio)) {
    req = BuildGet(key, static_cast<std::uint32_t>(idx));
  } else {
    req = BuildSet(key, conn.workload->ValueSize(idx), static_cast<std::uint32_t>(idx));
  }
  if (req->ComputeChainDataLength() <= conn.Pcb().SendWindowRemaining()) {
    conn.issue_times.push_back(bed_.world().Now());
    conn.Pcb().Send(std::move(req));
  }
}

void MemcachedLoadgen::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (auto& conn : conns_) {
    conn->stopped = true;
    conn->Pcb().Close();
  }
  Result result;
  obs::Histogram::Snapshot snapshot = latencies_.TakeSnapshot();
  result.samples = static_cast<std::size_t>(snapshot.count);
  if (snapshot.count != 0) {
    result.mean_ns = snapshot.Mean();
    result.p50_ns = snapshot.P50();
    result.p95_ns = snapshot.P95();
    result.p99_ns = snapshot.P99();
    result.p999_ns = snapshot.P999();
  }
  result.achieved_qps = static_cast<double>(completed_in_window_) * 1e9 /
                        static_cast<double>(config_.duration_ns);
  done_.SetValue(result);
}

// --- MemcachedBurstClient ---------------------------------------------------------------------

Future<MemcachedBurstClient::Result> MemcachedBurstClient::Run(sim::TestbedNode& client,
                                                               Ipv4Addr server,
                                                               std::uint16_t port,
                                                               Config config) {
  Kassert(config.connections >= 1, "MemcachedBurstClient: need at least one connection");
  auto fleet = std::make_shared<Fleet>();
  fleet->config = std::move(config);
  fleet->node = client;  // plain pointer bundle, safe to copy into closures
  fleet->server = server;
  fleet->port = port;
  Future<Result> result = fleet->done.GetFuture();
  std::size_t cores = client.runtime->num_cores();
  for (std::size_t i = 0; i < fleet->config.connections; ++i) {
    auto conn = std::shared_ptr<MemcachedBurstClient>(new MemcachedBurstClient(fleet, i));
    fleet->conns.push_back(conn);
    // Connection i opens from client core i % cores; Connect picks a source port whose flow
    // hash lands there, and symmetric RSS steers the server side to the matching core —
    // `connections` distinct flows, one per core pair.
    client.Spawn(i % cores, [fleet, conn]() mutable {
      fleet->node.net->tcp()
          .Connect(*fleet->node.iface, fleet->server, fleet->port)
          .Then([conn](Future<TcpPcb> f) {
            TcpPcb pcb = f.Get();
            pcb.InstallHandler(std::shared_ptr<TcpHandler>(conn));
            if (conn->index_ == 0) {
              conn->SendPreload();  // one connection preloads the shared key space
            } else if (conn->fleet_->preloaded) {
              conn->preloading_ = false;
              conn->SendNextRound();  // late connect: preload already done
            }
          });
    });
  }
  return result;
}

std::size_t MemcachedBurstClient::TotalForThisConnection() const {
  const Config& cfg = fleet_->config;
  // Request k belongs to connection k % connections.
  if (index_ >= cfg.total_requests) {
    return 0;
  }
  return (cfg.total_requests - index_ - 1) / cfg.connections + 1;
}

void MemcachedBurstClient::SendPreload() {
  const Config& cfg = fleet_->config;
  // All SETs as one chain: the preload is identical across depths, so it contributes the
  // same segment counts to every run of a sweep.
  std::unique_ptr<IOBuf> chain;
  for (std::size_t i = 0; i < cfg.key_space; ++i) {
    auto req = BuildSet("bk" + std::to_string(i), cfg.value_size,
                        static_cast<std::uint32_t>(i));
    if (chain == nullptr) {
      chain = std::move(req);
    } else {
      chain->AppendChain(std::move(req));
    }
  }
  preload_pending_ = cfg.key_space;
  std::size_t bytes = chain->ComputeChainDataLength();
  Kbugon(!Pcb().Send(std::move(chain)),
         "MemcachedBurstClient: preload chain (%zu B) exceeds the send window — shrink "
         "key_space/value_size",
         bytes);
}

void MemcachedBurstClient::SendNextRound() {
  const Config& cfg = fleet_->config;
  std::size_t total = TotalForThisConnection();
  if (issued_ >= total) {
    FinishConnection();
    return;
  }
  std::size_t n = std::min(cfg.depth, total - issued_);
  std::unique_ptr<IOBuf> chain;
  for (std::size_t i = 0; i < n; ++i) {
    // This connection's (issued_ + i)-th request is global request index_ + k*connections.
    std::size_t global = index_ + (issued_ + i) * cfg.connections;
    std::size_t idx = global % cfg.key_space;
    auto req = BuildGet("bk" + std::to_string(idx), static_cast<std::uint32_t>(global));
    if (chain == nullptr) {
      chain = std::move(req);
    } else {
      chain->AppendChain(std::move(req));
    }
  }
  issued_ += n;
  round_pending_ = n;
  std::size_t bytes = chain->ComputeChainDataLength();
  Kbugon(!Pcb().Send(std::move(chain)),
         "MemcachedBurstClient: round chain (%zu B, depth %zu) exceeds the send window — "
         "shrink depth",
         bytes, n);
}

void MemcachedBurstClient::FinishConnection() {
  if (finished_) {
    return;
  }
  finished_ = true;
  Pcb().Close();
  Fleet& fleet = *fleet_;
  if (++fleet.finished == fleet.config.connections) {
    Result result;
    result.responses = fleet.responses;
    for (auto& conn : fleet.conns) {
      if (result.response_bytes.empty()) {
        result.response_bytes = std::move(conn->response_bytes_);
      } else {
        result.response_bytes += conn->response_bytes_;
      }
      conn->response_bytes_.clear();
    }
    fleet.done.SetValue(std::move(result));
    // Break the fleet<->connection shared_ptr cycle (each connection stays alive through
    // its TcpEntry's handler anchor until the close sequence removes the entry).
    fleet.conns.clear();
  }
}

void MemcachedBurstClient::Receive(std::unique_ptr<IOBuf> data) {
  if (!preloading_) {
    // Raw byte-stream capture: a connection's rounds never overlap (closed loop), so its
    // GET-phase stream is exactly the concatenation of these chains.
    for (const IOBuf* seg = data.get(); seg != nullptr; seg = seg->Next()) {
      response_bytes_.append(reinterpret_cast<const char*>(seg->Data()), seg->Length());
    }
  }
  std::size_t completed = 0;
  parser_.Feed(std::move(data), [&completed](const RequestParser::Request&) { ++completed; });
  if (preloading_) {
    preload_pending_ -= completed;
    if (preload_pending_ == 0) {
      preloading_ = false;
      Fleet& fleet = *fleet_;
      fleet.preloaded = true;
      // Steady state begins here: let benches snapshot their baselines, then unleash every
      // connected sibling on its own core (Send must run on the connection's owner core).
      if (fleet.config.on_steady) {
        fleet.config.on_steady();
      }
      std::size_t cores = fleet.node.runtime->num_cores();
      for (std::size_t i = 1; i < fleet.conns.size(); ++i) {
        std::shared_ptr<MemcachedBurstClient> sibling = fleet.conns[i];
        if (!sibling->Pcb().valid()) {
          continue;  // still connecting: the connect continuation starts it
        }
        fleet.node.Spawn(i % cores, [sibling] {
          sibling->preloading_ = false;
          sibling->SendNextRound();
        });
      }
      SendNextRound();
    }
    return;
  }
  fleet_->responses += completed;
  round_pending_ -= completed;
  if (round_pending_ == 0) {
    SendNextRound();
  }
}

}  // namespace loadgen
}  // namespace ebbrt
