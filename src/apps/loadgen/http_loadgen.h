// wrk-style HTTP load generator (§4.3, Table 2): keep-alive connections issuing GETs in a
// closed loop ("moderate load"), recording per-request latency.
#ifndef EBBRT_SRC_APPS_LOADGEN_HTTP_LOADGEN_H_
#define EBBRT_SRC_APPS_LOADGEN_HTTP_LOADGEN_H_

#include <memory>
#include <vector>

#include "src/obs/histogram.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace loadgen {

class HttpLoadgen {
 public:
  struct Config {
    std::size_t connections = 4;
    std::uint64_t warmup_ns = 10'000'000;
    std::uint64_t duration_ns = 300'000'000;
    std::size_t expected_response_bytes = 148;
    std::uint64_t think_time_ns = 20'000;  // pacing between a response and the next request
    // Requests sent back-to-back as one chain per round (closed loop per round). Depth > 1
    // exercises the server's event-scoped response batching; latency is per round.
    std::size_t pipeline = 1;
  };
  struct Result {
    double achieved_rps = 0;
    std::uint64_t mean_ns = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::size_t samples = 0;
  };

  HttpLoadgen(sim::Testbed& bed, sim::TestbedNode& client, Ipv4Addr server,
              std::uint16_t port, Config config)
      : bed_(bed), client_(client), server_(server), port_(port), config_(config) {}

  Future<Result> Run();

 private:
  struct Conn;
  void IssueRequest(std::shared_ptr<Conn> conn);
  void Finish();

  sim::Testbed& bed_;
  sim::TestbedNode& client_;
  Ipv4Addr server_;
  std::uint16_t port_;
  Config config_;
  Promise<Result> done_;
  std::vector<std::shared_ptr<Conn>> conns_;
  // Shared percentile machinery (obs::Histogram): constant space, no sort at Finish; the
  // quantile is the sample's bucket upper bound (<= 12.5% above exact, see histogram.h).
  obs::Histogram latencies_;
  std::uint64_t measure_start_ = 0;
  std::uint64_t measure_end_ = 0;
  std::uint64_t completed_ = 0;
  bool finished_ = false;
};

}  // namespace loadgen
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_LOADGEN_HTTP_LOADGEN_H_
