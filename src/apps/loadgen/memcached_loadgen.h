// Mutilate-style memcached load generator (§4.2): open-loop Poisson arrivals at a target
// aggregate QPS over N connections, each pipelining up to 4 requests (the paper's client
// configuration), with the Facebook ETC workload shape: 20-70 B keys, values mostly 1 B-1 KiB
// (generalized-Pareto body, per Atikoglu et al.), ~90% GETs.
//
// The generator runs on a client testbed node using the EbbRT stack (identical measurement
// path for every server variant) and reports mean/percentile latency plus achieved QPS.
#ifndef EBBRT_SRC_APPS_LOADGEN_MEMCACHED_LOADGEN_H_
#define EBBRT_SRC_APPS_LOADGEN_MEMCACHED_LOADGEN_H_

#include <deque>
#include <memory>
#include <random>
#include <vector>

#include "src/apps/memcached/protocol.h"
#include "src/apps/memcached/server.h"
#include "src/obs/histogram.h"
#include "src/sim/testbed.h"

namespace ebbrt {
namespace loadgen {

// ETC-like samplers (deterministic per seed).
class EtcWorkload {
 public:
  explicit EtcWorkload(unsigned seed, std::size_t key_space)
      : rng_(seed), key_space_(key_space) {}

  std::size_t KeyIndex() {
    return std::uniform_int_distribution<std::size_t>(0, key_space_ - 1)(rng_);
  }

  // Keys 20-70 B (normal body around ~31 B, clamped — the ETC key-size shape).
  std::string Key(std::size_t index) {
    std::normal_distribution<double> d(30.7, 8.2);
    // Size is a deterministic function of the index so GETs match preloaded SETs.
    std::mt19937 krng(static_cast<unsigned>(index) * 2654435761u + 1);
    int size = static_cast<int>(d(krng));
    size = std::max(20, std::min(70, size));
    std::string key = "k" + std::to_string(index);
    key.resize(static_cast<std::size_t>(size), 'K');
    return key;
  }

  // Values: generalized Pareto (sigma=214, k=0.35), clamped to [1, 1024] — "most values
  // sized between 1B-1024B" with a small-value-heavy body (median ~130 B).
  std::size_t ValueSize(std::size_t index) {
    std::mt19937 vrng(static_cast<unsigned>(index) * 0x9E3779B9u + 7);
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(vrng);
    double k = 0.348;
    double sigma = 214.48;
    double x = sigma / k * (std::pow(1.0 - u, -k) - 1.0);
    return static_cast<std::size_t>(std::max(1.0, std::min(1024.0, x)));
  }

  bool IsGet(double get_ratio) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < get_ratio;
  }

  std::uint64_t InterarrivalNs(double rate_per_ns) {
    std::exponential_distribution<double> d(rate_per_ns);
    return static_cast<std::uint64_t>(d(rng_));
  }

 private:
  std::mt19937 rng_;
  std::size_t key_space_;
};

class MemcachedLoadgen {
 public:
  struct Config {
    std::size_t connections = 8;
    std::size_t pipeline = 4;          // paper: up to four pipelined requests per connection
    double get_ratio = 0.9;
    std::size_t key_space = 4000;
    double target_qps = 100000;
    std::uint64_t warmup_ns = 20'000'000;     // 20 ms
    std::uint64_t duration_ns = 200'000'000;  // 200 ms measured
    unsigned seed = 1;
  };

  struct Result {
    double achieved_qps = 0;
    std::uint64_t mean_ns = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::size_t samples = 0;
  };

  MemcachedLoadgen(sim::Testbed& bed, sim::TestbedNode& client, Ipv4Addr server,
                   std::uint16_t port, Config config)
      : bed_(bed), client_(client), server_(server), port_(port), config_(config) {}

  // Preloads the keyspace, runs warmup + measurement, fulfills the returned future with the
  // aggregate result. Drive bed.world().Run() after calling.
  Future<Result> Run();

 private:
  struct Conn;        // measurement connection: a TcpHandler (defined in the .cc)
  struct Preloader;   // keyspace preloader: a TcpHandler driving pipelined SET batches
  void StartConnections();
  void IssueTick(std::shared_ptr<Conn> conn);
  void IssueRequest(Conn& conn);
  void Finish();

  sim::Testbed& bed_;
  sim::TestbedNode& client_;
  Ipv4Addr server_;
  std::uint16_t port_;
  Config config_;
  Promise<Result> done_;
  std::unique_ptr<EtcWorkload> preload_workload_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::uint64_t measure_start_ = 0;
  std::uint64_t measure_end_ = 0;
  // Shared percentile machinery (obs::Histogram): constant space, no sort at Finish; the
  // quantile is the sample's bucket upper bound (<= 12.5% above exact, see histogram.h).
  obs::Histogram latencies_;
  std::uint64_t completed_in_window_ = 0;
  bool finished_ = false;
  std::size_t conns_ready_ = 0;
};

// Closed-loop pipelined burst client — the measurement harness for the segments-per-op and
// allocs-per-op stories. Preloads a small keyspace, then issues `total_requests` GETs over
// `connections` connections in rounds of `depth` per connection, each round sent as ONE
// chain (one wire segment when it fits, exactly how a pipelining client batches), waiting
// for the whole round's responses before issuing the next. The request *schedule* (request
// k goes to connection k % connections, keys striped over the key space) depends only on
// total_requests and connections, never on depth, so two runs differing only in depth must
// elicit byte-identical response streams — the invariant the corked-vs-uncorked property
// test asserts, while the depth sweep reads the server's segments_tx/sends_coalesced deltas.
//
// Multicore: connection i is opened from client core i % cores; with symmetric RSS and
// matching queue counts the same flow hash steers the server side to the same core index,
// so `connections >= server_cores` distinct flows put work on EVERY server core (the fig6
// requirement — a single flow would collapse the 4-core sweep onto one core).
class MemcachedBurstClient final : public TcpHandler {
 public:
  struct Config {
    std::size_t depth = 1;            // requests pipelined per round, per connection
    std::size_t total_requests = 64;  // GETs issued across all rounds and connections
    std::size_t key_space = 16;       // keys preloaded (fixed-size values, all GETs hit)
    std::size_t value_size = 32;
    std::size_t connections = 1;      // parallel connections (distinct RSS flows)
    // Invoked once, on the client, when the preload phase completes and the measured GET
    // phase begins — benches snapshot steady-state baselines (MarkAllocBaseline) here.
    std::function<void()> on_steady;
  };

  struct Result {
    // Concatenated GET-phase response streams, per connection in connection order (for
    // connections == 1 this is exactly the wire byte stream — the property-test invariant).
    std::string response_bytes;
    std::size_t responses = 0;
  };

  // Connects from `client` (connection i on core i % cores) and fulfills the returned
  // future when the whole schedule completes (drive the world afterwards).
  static Future<Result> Run(sim::TestbedNode& client, Ipv4Addr server, std::uint16_t port,
                            Config config);

  void Receive(std::unique_ptr<IOBuf> data) override;

 private:
  // Shared fleet state: schedule bookkeeping and result aggregation across connections.
  struct Fleet {
    Config config;
    sim::TestbedNode node;
    Ipv4Addr server;
    std::uint16_t port = 0;
    Promise<Result> done;
    std::vector<std::shared_ptr<MemcachedBurstClient>> conns;
    bool preloaded = false;
    std::size_t finished = 0;
    std::size_t responses = 0;
  };

  MemcachedBurstClient(std::shared_ptr<Fleet> fleet, std::size_t index)
      : fleet_(std::move(fleet)), index_(index) {}

  void SendPreload();
  void SendNextRound();
  void FinishConnection();
  std::size_t TotalForThisConnection() const;

  std::shared_ptr<Fleet> fleet_;
  std::size_t index_ = 0;            // this connection's slot (request k iff k % conns == index)
  memcached::RequestParser parser_;
  std::string response_bytes_;       // this connection's GET-phase stream
  bool preloading_ = true;           // only connection 0 actually preloads
  std::size_t preload_pending_ = 0;
  std::size_t issued_ = 0;           // requests this connection has issued
  std::size_t round_pending_ = 0;
  bool finished_ = false;
};

}  // namespace loadgen
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_LOADGEN_MEMCACHED_LOADGEN_H_
