#include "src/apps/loadgen/http_loadgen.h"

#include <algorithm>

#include "src/event/timer.h"

namespace ebbrt {
namespace loadgen {

namespace {
constexpr std::string_view kRequest =
    "GET / HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n";
}  // namespace

// A closed-loop keep-alive connection: a TcpHandler that counts response bytes in place
// (no copies — only chain lengths are inspected) and issues the next request after a think
// pause.
struct HttpLoadgen::Conn final : public TcpHandler,
                                 public std::enable_shared_from_this<Conn> {
  HttpLoadgen* gen = nullptr;
  std::size_t bytes_pending = 0;  // of the current response
  std::uint64_t issued_at = 0;
  bool stopped = false;

  void Receive(std::unique_ptr<IOBuf> data) override {
    std::size_t len = data->ComputeChainDataLength();
    if (len < bytes_pending) {
      bytes_pending -= len;
      return;
    }
    bytes_pending = 0;
    std::uint64_t now = gen->bed_.world().Now();
    if (issued_at >= gen->measure_start_ && issued_at < gen->measure_end_) {
      gen->latencies_.Record(now - issued_at);  // per round (== per request at depth 1)
      gen->completed_ += std::max<std::size_t>(gen->config_.pipeline, 1);
    }
    if (!stopped && now < gen->measure_end_) {
      // Closed loop with light think time ("moderate load").
      HttpLoadgen* g = gen;
      auto self = shared_from_this();
      Timer::Instance()->Start(g->config_.think_time_ns,
                               [g, self] { g->IssueRequest(self); });
    }
  }
};

Future<HttpLoadgen::Result> HttpLoadgen::Run() {
  Future<Result> result = done_.GetFuture();
  measure_start_ = bed_.world().Now() + config_.warmup_ns;
  measure_end_ = measure_start_ + config_.duration_ns;
  std::size_t cores = client_.runtime->num_cores();
  auto ready = std::make_shared<std::size_t>(0);
  for (std::size_t i = 0; i < config_.connections; ++i) {
    std::size_t core = i % cores;
    client_.Spawn(core, [this, ready] {
      client_.net->tcp().Connect(*client_.iface, server_, port_).Then([this, ready](
                                                                          Future<TcpPcb> f) {
        TcpPcb pcb = f.Get();
        auto conn = std::make_shared<Conn>();
        conn->gen = this;
        conns_.push_back(conn);
        pcb.InstallHandler(std::shared_ptr<TcpHandler>(conn));
        IssueRequest(conn);
        if (++*ready == config_.connections) {
          std::uint64_t horizon = measure_end_ + 20'000'000;
          std::uint64_t now = bed_.world().Now();
          client_.Spawn(0, [this, horizon, now] {
            Timer::Instance()->Start(horizon - now, [this] { Finish(); });
          });
        }
      });
    });
  }
  return result;
}

void HttpLoadgen::IssueRequest(std::shared_ptr<Conn> conn) {
  if (conn->stopped || finished_ || bed_.world().Now() >= measure_end_) {
    conn->stopped = true;
    return;
  }
  conn->issued_at = bed_.world().Now();
  std::size_t depth = std::max<std::size_t>(config_.pipeline, 1);
  conn->bytes_pending = depth * config_.expected_response_bytes;
  // The whole round goes out as one chain — one wire segment when it fits — so the server
  // sees the burst in one event (and, with auto-cork, answers it in one).
  auto chain = IOBuf::CopyBuffer(kRequest);
  for (std::size_t i = 1; i < depth; ++i) {
    chain->AppendChain(IOBuf::CopyBuffer(kRequest));
  }
  conn->Pcb().Send(std::move(chain));
}

void HttpLoadgen::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (auto& conn : conns_) {
    conn->stopped = true;
    conn->Pcb().Close();
  }
  Result result;
  obs::Histogram::Snapshot snapshot = latencies_.TakeSnapshot();
  result.samples = static_cast<std::size_t>(snapshot.count);
  if (snapshot.count != 0) {
    result.mean_ns = snapshot.Mean();
    result.p50_ns = snapshot.P50();
    result.p99_ns = snapshot.P99();
    result.p999_ns = snapshot.P999();
  }
  result.achieved_rps =
      static_cast<double>(completed_) * 1e9 / static_cast<double>(config_.duration_ns);
  done_.SetValue(result);
}

}  // namespace loadgen
}  // namespace ebbrt
