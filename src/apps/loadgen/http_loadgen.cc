#include "src/apps/loadgen/http_loadgen.h"

#include <algorithm>

#include "src/event/timer.h"

namespace ebbrt {
namespace loadgen {

namespace {
constexpr std::string_view kRequest =
    "GET / HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n";
}  // namespace

struct HttpLoadgen::Conn {
  std::shared_ptr<TcpPcb> pcb;
  std::size_t bytes_pending = 0;  // of the current response
  std::uint64_t issued_at = 0;
  bool stopped = false;
};

Future<HttpLoadgen::Result> HttpLoadgen::Run() {
  Future<Result> result = done_.GetFuture();
  measure_start_ = bed_.world().Now() + config_.warmup_ns;
  measure_end_ = measure_start_ + config_.duration_ns;
  latencies_.reserve(1 << 14);
  std::size_t cores = client_.runtime->num_cores();
  auto ready = std::make_shared<std::size_t>(0);
  for (std::size_t i = 0; i < config_.connections; ++i) {
    std::size_t core = i % cores;
    client_.Spawn(core, [this, ready] {
      client_.net->tcp().Connect(*client_.iface, server_, port_).Then([this, ready](
                                                                          Future<TcpPcb> f) {
        auto conn = std::make_shared<Conn>();
        conn->pcb = std::make_shared<TcpPcb>(f.Get());
        conns_.push_back(conn);
        auto self = this;
        conn->pcb->SetReceiveHandler([self, conn](std::unique_ptr<IOBuf> data) {
          std::size_t len = data->ComputeChainDataLength();
          if (len >= conn->bytes_pending) {
            conn->bytes_pending = 0;
            std::uint64_t now = self->bed_.world().Now();
            if (conn->issued_at >= self->measure_start_ &&
                conn->issued_at < self->measure_end_) {
              self->latencies_.push_back(now - conn->issued_at);
              ++self->completed_;
            }
            if (!conn->stopped && now < self->measure_end_) {
              // Closed loop with light think time ("moderate load").
              Timer::Instance()->Start(self->config_.think_time_ns, [self, conn] {
                self->IssueRequest(conn);
              });
            }
          } else {
            conn->bytes_pending -= len;
          }
        });
        IssueRequest(conn);
        if (++*ready == config_.connections) {
          std::uint64_t horizon = measure_end_ + 20'000'000;
          std::uint64_t now = bed_.world().Now();
          client_.Spawn(0, [this, horizon, now] {
            Timer::Instance()->Start(horizon - now, [this] { Finish(); });
          });
        }
      });
    });
  }
  return result;
}

void HttpLoadgen::IssueRequest(std::shared_ptr<Conn> conn) {
  if (conn->stopped || finished_ || bed_.world().Now() >= measure_end_) {
    conn->stopped = true;
    return;
  }
  conn->issued_at = bed_.world().Now();
  conn->bytes_pending = config_.expected_response_bytes;
  conn->pcb->Send(IOBuf::CopyBuffer(kRequest));
}

void HttpLoadgen::Finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (auto& conn : conns_) {
    conn->stopped = true;
    conn->pcb->Close();
  }
  Result result;
  result.samples = latencies_.size();
  if (!latencies_.empty()) {
    std::sort(latencies_.begin(), latencies_.end());
    std::uint64_t sum = 0;
    for (auto v : latencies_) {
      sum += v;
    }
    result.mean_ns = sum / latencies_.size();
    auto pct = [this](double p) {
      std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(latencies_.size()));
      return latencies_[std::min(idx, latencies_.size() - 1)];
    };
    result.p50_ns = pct(0.50);
    result.p99_ns = pct(0.99);
  }
  result.achieved_rps =
      static_cast<double>(completed_) * 1e9 / static_cast<double>(config_.duration_ns);
  done_.SetValue(result);
}

}  // namespace loadgen
}  // namespace ebbrt
