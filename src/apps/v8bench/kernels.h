// The eight V8-benchmark-suite workloads (version 7), re-implemented in C++ (Figure 7).
//
// We cannot run Google V8 here (see DESIGN.md), so each kernel is a compact, faithful-in-
// character C++ re-implementation of the suite's member: same algorithmic skeleton and
// memory-allocation behaviour, scaled to run in tens of milliseconds. All data structures
// allocate through Env so the memory-mapping policy (EbbRT pre-map vs Linux demand-fault) and
// the preemption model are what differentiates environments, exactly as the paper argues.
// One documented substitution: EarleyBoyer (a Scheme parser+prover pair) is represented by
// its Earley-parser half.
//
// Each kernel returns a checksum (verified across environments by the tests: the environment
// may change *time*, never *results*).
#ifndef EBBRT_SRC_APPS_V8BENCH_KERNELS_H_
#define EBBRT_SRC_APPS_V8BENCH_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/v8bench/env.h"

namespace ebbrt {
namespace v8bench {

std::uint64_t RunRichards(Env& env);      // OS task-scheduler simulation
std::uint64_t RunDeltaBlue(Env& env);     // one-way constraint solver
std::uint64_t RunCrypto(Env& env);        // bignum modular exponentiation
std::uint64_t RunRayTrace(Env& env);      // small sphere-scene ray tracer
std::uint64_t RunEarley(Env& env);        // Earley chart parser (EarleyBoyer's parser half)
std::uint64_t RunRegExp(Env& env);        // backtracking regular-expression engine
std::uint64_t RunSplay(Env& env);         // splay-tree churn (memory intensive)
std::uint64_t RunNavierStokes(Env& env);  // 2D incompressible fluid solver

struct Kernel {
  const char* name;
  std::uint64_t (*fn)(Env&);
  std::size_t arena_bytes;
};

inline const std::vector<Kernel>& AllKernels() {
  static const std::vector<Kernel> kernels = {
      {"Crypto", &RunCrypto, 8u << 20},
      {"DeltaBlue", &RunDeltaBlue, 24u << 20},
      {"EarleyBoyer", &RunEarley, 48u << 20},
      {"NavierStokes", &RunNavierStokes, 16u << 20},
      {"RayTrace", &RunRayTrace, 24u << 20},
      {"RegExp", &RunRegExp, 16u << 20},
      {"Richards", &RunRichards, 8u << 20},
      {"Splay", &RunSplay, 96u << 20},
  };
  return kernels;
}

}  // namespace v8bench
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_V8BENCH_KERNELS_H_
