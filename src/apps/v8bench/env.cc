#include "src/apps/v8bench/env.h"

#include <signal.h>
#include <sys/time.h>

#include <atomic>
#include <cstring>

namespace ebbrt {
namespace v8bench {

namespace {
// The tick handler's cache pollution: walk a buffer comparable to a scheduler pass touching
// runqueues, cgroup accounting, and timer wheels.
constexpr std::size_t kPollutionBytes = 256 * 1024;
std::uint8_t pollution_buffer[kPollutionBytes];
std::atomic<std::uint64_t> tick_count{0};

void TickHandler(int) {
  tick_count.fetch_add(1, std::memory_order_relaxed);
  volatile std::uint8_t sink = 0;
  for (std::size_t i = 0; i < kPollutionBytes; i += 64) {
    sink = sink + pollution_buffer[i];
    pollution_buffer[i] = static_cast<std::uint8_t>(sink + 1);
  }
}
}  // namespace

Env::Env(Kind kind, std::size_t arena_bytes) : kind_(kind) {
  region_ = &vmem::Allocate(arena_bytes);
  base_ = static_cast<std::uint8_t*>(region_->base());
  size_ = region_->size();
  if (kind_ == Kind::kEbbRT) {
    // The paper's "aggressive mapping": the whole heap is resident before the benchmark runs.
    region_->MapAll(/*touch=*/true);
  }
}

Env::~Env() {
  StopTicks();
  vmem::Release(*region_);
}

std::uint64_t Env::page_faults() const { return region_->fault_count(); }

void Env::StartTicks() {
  if (kind_ != Kind::kLinux || ticks_on_) {
    return;
  }
  ticks_on_ = true;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &TickHandler;
  sa.sa_flags = SA_RESTART;
  sigaction(SIGALRM, &sa, nullptr);
  itimerval timer;
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = 4000;  // CONFIG_HZ=250
  timer.it_value = timer.it_interval;
  setitimer(ITIMER_REAL, &timer, nullptr);
}

void Env::StopTicks() {
  if (!ticks_on_) {
    return;
  }
  ticks_on_ = false;
  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_REAL, &timer, nullptr);
}

}  // namespace v8bench
}  // namespace ebbrt
