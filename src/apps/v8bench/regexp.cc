// RegExp — a backtracking regular-expression engine run over synthetic log lines (the suite's
// member replays regexes from popular sites; the character is NFA backtracking over strings).
// Supported syntax: literals, '.', character classes [a-z0-9], '*', '+', '?', alternation '|'
// and grouping '(...)'.
#include "src/apps/v8bench/kernels.h"

#include <cstring>

namespace ebbrt {
namespace v8bench {
namespace {

enum class NodeType : std::uint8_t {
  kChar,
  kAny,
  kClass,
  kConcat,
  kAlt,
  kStar,   // also Plus/Quest via min/max
  kEnd,
};

struct ReNode {
  NodeType type;
  char ch = 0;
  bool char_class[128] = {};
  ReNode* left = nullptr;
  ReNode* right = nullptr;
  int min = 0;  // repetition
  int max = 0;  // -1 = unbounded
};

class Parser {
 public:
  Parser(Env& env, const char* pattern) : env_(env), p_(pattern) {}

  ReNode* Parse() { return ParseAlt(); }

 private:
  ReNode* New(NodeType type) {
    auto* node = env_.New<ReNode>();
    node->type = type;
    return node;
  }

  ReNode* ParseAlt() {
    ReNode* left = ParseConcat();
    while (*p_ == '|') {
      ++p_;
      ReNode* node = New(NodeType::kAlt);
      node->left = left;
      node->right = ParseConcat();
      left = node;
    }
    return left;
  }

  ReNode* ParseConcat() {
    ReNode* left = nullptr;
    while (*p_ != 0 && *p_ != '|' && *p_ != ')') {
      ReNode* atom = ParseRepeat();
      if (left == nullptr) {
        left = atom;
      } else {
        ReNode* node = New(NodeType::kConcat);
        node->left = left;
        node->right = atom;
        left = node;
      }
    }
    return left != nullptr ? left : New(NodeType::kEnd);
  }

  ReNode* ParseRepeat() {
    ReNode* atom = ParseAtom();
    while (*p_ == '*' || *p_ == '+' || *p_ == '?') {
      ReNode* node = New(NodeType::kStar);
      node->left = atom;
      node->min = *p_ == '+' ? 1 : 0;
      node->max = *p_ == '?' ? 1 : -1;
      ++p_;
      atom = node;
    }
    return atom;
  }

  ReNode* ParseAtom() {
    if (*p_ == '(') {
      ++p_;
      ReNode* inner = ParseAlt();
      if (*p_ == ')') {
        ++p_;
      }
      return inner;
    }
    if (*p_ == '[') {
      ++p_;
      ReNode* node = New(NodeType::kClass);
      while (*p_ != 0 && *p_ != ']') {
        char lo = *p_++;
        char hi = lo;
        if (*p_ == '-' && p_[1] != ']' && p_[1] != 0) {
          ++p_;
          hi = *p_++;
        }
        for (char c = lo; c <= hi; ++c) {
          node->char_class[static_cast<unsigned char>(c) & 127] = true;
        }
      }
      if (*p_ == ']') {
        ++p_;
      }
      return node;
    }
    if (*p_ == '.') {
      ++p_;
      return New(NodeType::kAny);
    }
    ReNode* node = New(NodeType::kChar);
    node->ch = *p_++;
    return node;
  }

  Env& env_;
  const char* p_;
};

// Backtracking matcher: Match(node, s, k) tries node against s and calls k(rest).
using Cont = bool (*)(const char* s, void* ctx);

bool MatchNode(const ReNode* node, const char* s, Cont k, void* ctx);

struct ConcatCtx {
  const ReNode* right;
  Cont k;
  void* ctx;
};
bool ConcatCont(const char* s, void* raw) {
  auto* c = static_cast<ConcatCtx*>(raw);
  return MatchNode(c->right, s, c->k, c->ctx);
}

struct StarCtx {
  const ReNode* node;
  int count;
  Cont k;
  void* ctx;
};
bool StarCont(const char* s, void* raw);

bool MatchStar(const ReNode* node, const char* s, int count, Cont k, void* ctx) {
  // Greedy: try one more repetition first (bounded by max), then fall back to continuing.
  if (node->max < 0 || count < node->max) {
    StarCtx next{node, count + 1, k, ctx};
    if (MatchNode(node->left, s, &StarCont, &next)) {
      return true;
    }
  }
  if (count >= node->min) {
    return k(s, ctx);
  }
  return false;
}

bool StarCont(const char* s, void* raw) {
  auto* c = static_cast<StarCtx*>(raw);
  return MatchStar(c->node, s, c->count, c->k, c->ctx);
}

bool MatchNode(const ReNode* node, const char* s, Cont k, void* ctx) {
  switch (node->type) {
    case NodeType::kChar:
      return *s == node->ch && k(s + 1, ctx);
    case NodeType::kAny:
      return *s != 0 && k(s + 1, ctx);
    case NodeType::kClass:
      return *s != 0 && node->char_class[static_cast<unsigned char>(*s) & 127] &&
             k(s + 1, ctx);
    case NodeType::kConcat: {
      ConcatCtx c{node->right, k, ctx};
      return MatchNode(node->left, s, &ConcatCont, &c);
    }
    case NodeType::kAlt:
      return MatchNode(node->left, s, k, ctx) || MatchNode(node->right, s, k, ctx);
    case NodeType::kStar:
      return MatchStar(node, s, 0, k, ctx);
    case NodeType::kEnd:
      return k(s, ctx);
  }
  return false;
}

bool Accept(const char* s, void*) { return true; }  // unanchored tail

bool Search(const ReNode* re, const char* s) {
  for (const char* p = s; *p != 0; ++p) {
    if (MatchNode(re, p, &Accept, nullptr)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t RunRegExp(Env& env) {
  const char* patterns[] = {
      "[a-z]+@[a-z]+.(com|org|net)",
      "GET /([a-z0-9/]+)?(index|home).(html|php)",
      "([0-9]+.){3}[0-9]+",
      "err(or|)[: ]+[a-z ]*fail",
      "(ab|ba)*(aab|abb)+c?d",
  };
  ReNode* compiled[5];
  for (int i = 0; i < 5; ++i) {
    compiled[i] = Parser(env, patterns[i]).Parse();
  }
  // Synthetic corpus: log-ish lines, deterministic.
  std::uint64_t rng = 0xC0FFEE;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  const char* fragments[] = {"alice@example.com ",  "GET /docs/index.html ",
                             "10.0.0.2 ",           "error: connection fail ",
                             "abbaabbaabbaabbacd ", "the quick brown fox ",
                             "12.34.56 ",           "bob at example dot org "};
  std::uint64_t checksum = 0;
  for (int iter = 0; iter < 6000; ++iter) {
    char line[256];
    std::size_t len = 0;
    for (int f = 0; f < 4; ++f) {
      const char* frag = fragments[next() % 8];
      std::size_t flen = std::strlen(frag);
      if (len + flen < sizeof(line) - 1) {
        std::memcpy(line + len, frag, flen);
        len += flen;
      }
    }
    line[len] = 0;
    for (int i = 0; i < 5; ++i) {
      checksum = checksum * 3 + (Search(compiled[i], line) ? 1 : 0);
    }
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
