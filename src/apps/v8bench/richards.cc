// Richards — Martin Richards' OS task-scheduler simulation (the V8 suite's port of the BCPL
// original): an idle task, two device tasks, two handler tasks and a worker exchange packets
// through a priority scheduler. Exercises virtual dispatch and pointer-heavy control flow.
#include "src/apps/v8bench/kernels.h"

#include "src/platform/debug.h"

namespace ebbrt {
namespace v8bench {
namespace {

constexpr int kIdIdle = 0;
constexpr int kIdWorker = 1;
constexpr int kIdHandlerA = 2;
constexpr int kIdHandlerB = 3;
constexpr int kIdDevA = 4;
constexpr int kIdDevB = 5;
constexpr int kNumTasks = 6;

constexpr int kKindDevice = 0;
constexpr int kKindWork = 1;

struct Packet {
  Packet* link = nullptr;
  int id = 0;
  int kind = 0;
  int a1 = 0;
  int a2[4] = {};
};

Packet* Append(Packet* packet, Packet* queue) {
  packet->link = nullptr;
  if (queue == nullptr) {
    return packet;
  }
  Packet* tail = queue;
  while (tail->link != nullptr) {
    tail = tail->link;
  }
  tail->link = packet;
  return queue;
}

class Scheduler;

class Task {
 public:
  virtual ~Task() = default;
  virtual Task* Run(Packet* packet) = 0;

  Packet* queue = nullptr;
  int priority = 0;
  bool task_holding = false;
  bool task_waiting = false;
  int id = 0;
};

class Scheduler {
 public:
  Task* tasks[kNumTasks] = {};
  Task* current = nullptr;
  int current_id = 0;
  std::uint64_t queue_count = 0;
  std::uint64_t hold_count = 0;

  void AddTask(int id, Task* task) {
    task->id = id;
    tasks[id] = task;
  }

  void Schedule() {
    // Highest priority runnable task runs; "running" here is one Run() step.
    for (;;) {
      Task* best = nullptr;
      for (Task* task : tasks) {
        if (task != nullptr && !task->task_holding &&
            (!task->task_waiting || task->queue != nullptr)) {
          if (best == nullptr || task->priority > best->priority) {
            best = task;
          }
        }
      }
      if (best == nullptr) {
        return;
      }
      current = best;
      current_id = best->id;
      Packet* packet = nullptr;
      if (best->task_waiting && best->queue != nullptr) {
        packet = best->queue;
        best->queue = packet->link;
        best->task_waiting = false;
      }
      Task* next = best->Run(packet);
      if (next == nullptr) {
        return;  // idle task exhausted: simulation over
      }
    }
  }

  Task* QueuePacket(Packet* packet) {
    Task* target = tasks[packet->id];
    if (target == nullptr) {
      return nullptr;
    }
    ++queue_count;
    packet->link = nullptr;
    packet->id = current_id;
    target->queue = Append(packet, target->queue);
    return target;
  }

  Task* HoldSelf() {
    ++hold_count;
    current->task_holding = true;
    return current;
  }

  Task* WaitSelf() {
    current->task_waiting = true;
    return current;
  }

  Task* Release(int id) {
    Task* task = tasks[id];
    if (task == nullptr) {
      return nullptr;
    }
    task->task_holding = false;
    return task;
  }
};

class IdleTask : public Task {
 public:
  IdleTask(Scheduler& s, int count) : sched(s), remaining(count) {}
  Task* Run(Packet*) override {
    if (--remaining == 0) {
      return nullptr;
    }
    if ((control & 1) == 0) {
      control >>= 1;
      return sched.Release(kIdDevA);
    }
    control = (control >> 1) ^ 0xD008;
    return sched.Release(kIdDevB);
  }
  Scheduler& sched;
  int remaining;
  std::uint32_t control = 1;
};

class DeviceTask : public Task {
 public:
  explicit DeviceTask(Scheduler& s) : sched(s) {}
  Task* Run(Packet* packet) override {
    if (packet == nullptr) {
      if (pending == nullptr) {
        return sched.WaitSelf();
      }
      Packet* p = pending;
      pending = nullptr;
      return sched.QueuePacket(p);
    }
    pending = packet;
    return sched.HoldSelf();
  }
  Scheduler& sched;
  Packet* pending = nullptr;
};

class HandlerTask : public Task {
 public:
  HandlerTask(Scheduler& s, int device_id) : sched(s), device(device_id) {}
  Task* Run(Packet* packet) override {
    if (packet != nullptr) {
      if (packet->kind == kKindWork) {
        work_queue = Append(packet, work_queue);
      } else {
        device_queue = Append(packet, device_queue);
      }
    }
    if (work_queue != nullptr) {
      Packet* work = work_queue;
      if (work->a1 < 4) {
        if (device_queue != nullptr) {
          Packet* dev = device_queue;
          device_queue = dev->link;
          dev->a1 = work->a2[work->a1];
          work->a1 += 1;
          dev->id = device;
          return sched.QueuePacket(dev);
        }
      } else {
        work_queue = work->link;
        work->id = kIdWorker;
        return sched.QueuePacket(work);
      }
    }
    return sched.WaitSelf();
  }
  Scheduler& sched;
  int device;
  Packet* work_queue = nullptr;
  Packet* device_queue = nullptr;
};

class WorkerTask : public Task {
 public:
  explicit WorkerTask(Scheduler& s) : sched(s) {}
  Task* Run(Packet* packet) override {
    if (packet == nullptr) {
      return sched.WaitSelf();
    }
    destination = destination == kIdHandlerA ? kIdHandlerB : kIdHandlerA;
    packet->id = destination;
    packet->a1 = 0;
    for (int i = 0; i < 4; ++i) {
      seed = (seed * 1664525 + 1013904223) & 0xffff;
      packet->a2[i] = static_cast<int>(seed & 0xff);
    }
    return sched.QueuePacket(packet);
  }
  Scheduler& sched;
  int destination = kIdHandlerA;
  std::uint32_t seed = 17;
};

}  // namespace

std::uint64_t RunRichards(Env& env) {
  std::uint64_t checksum = 0;
  for (int iteration = 0; iteration < 40; ++iteration) {
    env.Reset();
    Scheduler sched;
    auto* idle = env.New<IdleTask>(sched, 4000);
    idle->priority = 0;
    sched.AddTask(kIdIdle, idle);

    auto* worker = env.New<WorkerTask>(sched);
    worker->priority = 1000;
    worker->task_waiting = true;
    sched.AddTask(kIdWorker, worker);
    Packet* wp = env.New<Packet>();
    wp->id = kIdWorker;
    wp->kind = kKindWork;
    worker->queue = Append(wp, worker->queue);
    Packet* wp2 = env.New<Packet>();
    wp2->id = kIdWorker;
    wp2->kind = kKindWork;
    worker->queue = Append(wp2, worker->queue);

    for (int h = 0; h < 2; ++h) {
      int id = h == 0 ? kIdHandlerA : kIdHandlerB;
      int dev = h == 0 ? kIdDevA : kIdDevB;
      auto* handler = env.New<HandlerTask>(sched, dev);
      handler->priority = 2000 + h;
      handler->task_waiting = true;
      sched.AddTask(id, handler);
      for (int p = 0; p < 3; ++p) {
        Packet* dp = env.New<Packet>();
        dp->id = id;
        dp->kind = kKindDevice;
        handler->queue = Append(dp, handler->queue);
      }
      auto* device = env.New<DeviceTask>(sched);
      device->priority = 4000 + h;
      device->task_waiting = true;
      sched.AddTask(dev, device);
    }

    sched.Schedule();
    checksum += sched.queue_count * 3 + sched.hold_count;
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
