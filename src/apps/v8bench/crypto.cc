// Crypto — RSA-flavoured bignum arithmetic: 256-bit modular exponentiation with schoolbook
// multiplication and shift-subtract reduction (the suite's Crypto member is a JS bignum RSA;
// the character is wide-integer multiply/reduce loops).
#include "src/apps/v8bench/kernels.h"

#include <cstring>

namespace ebbrt {
namespace v8bench {
namespace {

constexpr int kWords = 4;  // 256-bit

struct Big {
  std::uint64_t w[kWords] = {};
};

struct Big2 {
  std::uint64_t w[kWords * 2] = {};
};

// Word i of (m << (shift_words*64 + shift_bits)) within a 512-bit frame.
std::uint64_t ShiftedWord(const Big& m, int i, int shift_words, int shift_bits) {
  std::uint64_t mw = 0;
  int src = i - shift_words;
  if (src >= 0 && src < kWords) {
    mw = m.w[src] << shift_bits;
    if (shift_bits != 0 && src - 1 >= 0) {
      mw |= m.w[src - 1] >> (64 - shift_bits);
    }
  } else if (shift_bits != 0 && src == kWords) {
    mw = m.w[kWords - 1] >> (64 - shift_bits);
  }
  return mw;
}

int CompareShifted(const Big2& a, const Big& m, int shift_words, int shift_bits) {
  for (int i = kWords * 2 - 1; i >= 0; --i) {
    std::uint64_t mw = ShiftedWord(m, i, shift_words, shift_bits);
    if (a.w[i] != mw) {
      return a.w[i] < mw ? -1 : 1;
    }
  }
  return 0;
}

void SubShifted(Big2& a, const Big& m, int shift_words, int shift_bits) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < kWords * 2; ++i) {
    __uint128_t sub =
        static_cast<__uint128_t>(ShiftedWord(m, i, shift_words, shift_bits)) + borrow;
    __uint128_t have = a.w[i];
    if (have >= sub) {
      a.w[i] = static_cast<std::uint64_t>(have - sub);
      borrow = 0;
    } else {
      a.w[i] = static_cast<std::uint64_t>((have + (static_cast<__uint128_t>(1) << 64)) - sub);
      borrow = 1;
    }
  }
}

int TopBit(const Big2& a) {
  for (int i = kWords * 2 - 1; i >= 0; --i) {
    if (a.w[i] != 0) {
      return i * 64 + 63 - __builtin_clzll(a.w[i]);
    }
  }
  return -1;
}

int TopBit(const Big& a) {
  for (int i = kWords - 1; i >= 0; --i) {
    if (a.w[i] != 0) {
      return i * 64 + 63 - __builtin_clzll(a.w[i]);
    }
  }
  return -1;
}

// r = a mod m (shift-subtract).
Big Mod(Big2 a, const Big& m) {
  int mb = TopBit(m);
  for (;;) {
    int ab = TopBit(a);
    if (ab < mb) {
      break;
    }
    int shift = ab - mb;
    int sw = shift / 64;
    int sb = shift % 64;
    if (CompareShifted(a, m, sw, sb) < 0) {
      if (shift == 0) {
        break;
      }
      --shift;
      sw = shift / 64;
      sb = shift % 64;
    }
    SubShifted(a, m, sw, sb);
  }
  Big r;
  for (int i = 0; i < kWords; ++i) {
    r.w[i] = a.w[i];
  }
  return r;
}

Big2 Mul(const Big& a, const Big& b) {
  Big2 r;
  for (int i = 0; i < kWords; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < kWords; ++j) {
      __uint128_t cur = static_cast<__uint128_t>(a.w[i]) * b.w[j] + r.w[i + j] + carry;
      r.w[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    r.w[i + kWords] += carry;
  }
  return r;
}

Big ModMul(const Big& a, const Big& b, const Big& m) { return Mod(Mul(a, b), m); }

Big ModExp(Big base, const Big& exp, const Big& m) {
  Big result;
  result.w[0] = 1;
  for (int bit = 0; bit <= TopBit(exp); ++bit) {
    if ((exp.w[bit / 64] >> (bit % 64)) & 1) {
      result = ModMul(result, base, m);
    }
    base = ModMul(base, base, m);
  }
  return result;
}

}  // namespace

std::uint64_t RunCrypto(Env& env) {
  (void)env;  // pure compute: allocation-free by design, like the JS original's hot loop
  // A fixed 256-bit odd modulus and generator; "encrypt" a rolling message block.
  Big m;
  m.w[0] = 0xFFFFFFFFFFFFFC5Full;
  m.w[1] = 0xFFFFFFFFFFFFFFFEull;
  m.w[2] = 0xBAAEDCE6AF48A03Bull;
  m.w[3] = 0x8FFFFFFFFFFFFFFFull;
  Big e;
  e.w[0] = 0x10001;  // 65537
  std::uint64_t checksum = 0;
  Big msg;
  msg.w[0] = 0x243F6A8885A308D3ull;
  msg.w[1] = 0x13198A2E03707344ull;
  msg.w[2] = 0xA4093822299F31D0ull;
  msg.w[3] = 0x082EFA98EC4E6C89ull;
  for (int i = 0; i < 48; ++i) {
    Big c = ModExp(msg, e, m);
    checksum ^= c.w[0] + c.w[3];
    msg = c;  // chain
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
