// NavierStokes — Jos Stam's stable-fluid solver on a 2D grid (the suite's member is Oliver
// Hunt's JS port of the same algorithm): diffusion, advection and a Gauss-Seidel projection.
#include "src/apps/v8bench/kernels.h"

#include <cstring>

namespace ebbrt {
namespace v8bench {
namespace {

constexpr int kN = 128;          // interior cells per side
constexpr int kSize = (kN + 2) * (kN + 2);

inline int Ix(int i, int j) { return i + (kN + 2) * j; }

void SetBoundary(int b, double* x) {
  for (int i = 1; i <= kN; ++i) {
    x[Ix(0, i)] = b == 1 ? -x[Ix(1, i)] : x[Ix(1, i)];
    x[Ix(kN + 1, i)] = b == 1 ? -x[Ix(kN, i)] : x[Ix(kN, i)];
    x[Ix(i, 0)] = b == 2 ? -x[Ix(i, 1)] : x[Ix(i, 1)];
    x[Ix(i, kN + 1)] = b == 2 ? -x[Ix(i, kN)] : x[Ix(i, kN)];
  }
  x[Ix(0, 0)] = 0.5 * (x[Ix(1, 0)] + x[Ix(0, 1)]);
  x[Ix(0, kN + 1)] = 0.5 * (x[Ix(1, kN + 1)] + x[Ix(0, kN)]);
  x[Ix(kN + 1, 0)] = 0.5 * (x[Ix(kN, 0)] + x[Ix(kN + 1, 1)]);
  x[Ix(kN + 1, kN + 1)] = 0.5 * (x[Ix(kN, kN + 1)] + x[Ix(kN + 1, kN)]);
}

void LinSolve(int b, double* x, const double* x0, double a, double c) {
  for (int k = 0; k < 20; ++k) {
    for (int j = 1; j <= kN; ++j) {
      for (int i = 1; i <= kN; ++i) {
        x[Ix(i, j)] = (x0[Ix(i, j)] + a * (x[Ix(i - 1, j)] + x[Ix(i + 1, j)] +
                                           x[Ix(i, j - 1)] + x[Ix(i, j + 1)])) /
                      c;
      }
    }
    SetBoundary(b, x);
  }
}

void Diffuse(int b, double* x, const double* x0, double diff, double dt) {
  double a = dt * diff * kN * kN;
  LinSolve(b, x, x0, a, 1 + 4 * a);
}

void Advect(int b, double* d, const double* d0, const double* u, const double* v, double dt) {
  double dt0 = dt * kN;
  for (int j = 1; j <= kN; ++j) {
    for (int i = 1; i <= kN; ++i) {
      double x = i - dt0 * u[Ix(i, j)];
      double y = j - dt0 * v[Ix(i, j)];
      x = x < 0.5 ? 0.5 : (x > kN + 0.5 ? kN + 0.5 : x);
      y = y < 0.5 ? 0.5 : (y > kN + 0.5 ? kN + 0.5 : y);
      int i0 = static_cast<int>(x);
      int j0 = static_cast<int>(y);
      double s1 = x - i0;
      double t1 = y - j0;
      d[Ix(i, j)] = (1 - s1) * ((1 - t1) * d0[Ix(i0, j0)] + t1 * d0[Ix(i0, j0 + 1)]) +
                    s1 * ((1 - t1) * d0[Ix(i0 + 1, j0)] + t1 * d0[Ix(i0 + 1, j0 + 1)]);
    }
  }
  SetBoundary(b, d);
}

void Project(double* u, double* v, double* p, double* div) {
  for (int j = 1; j <= kN; ++j) {
    for (int i = 1; i <= kN; ++i) {
      div[Ix(i, j)] = -0.5 * (u[Ix(i + 1, j)] - u[Ix(i - 1, j)] + v[Ix(i, j + 1)] -
                              v[Ix(i, j - 1)]) /
                      kN;
      p[Ix(i, j)] = 0;
    }
  }
  SetBoundary(0, div);
  SetBoundary(0, p);
  LinSolve(0, p, div, 1, 4);
  for (int j = 1; j <= kN; ++j) {
    for (int i = 1; i <= kN; ++i) {
      u[Ix(i, j)] -= 0.5 * kN * (p[Ix(i + 1, j)] - p[Ix(i - 1, j)]);
      v[Ix(i, j)] -= 0.5 * kN * (p[Ix(i, j + 1)] - p[Ix(i, j - 1)]);
    }
  }
  SetBoundary(1, u);
  SetBoundary(2, v);
}

}  // namespace

std::uint64_t RunNavierStokes(Env& env) {
  auto alloc_field = [&env] {
    auto* f = static_cast<double*>(env.Alloc(sizeof(double) * kSize));
    std::memset(f, 0, sizeof(double) * kSize);
    return f;
  };
  double* u = alloc_field();
  double* v = alloc_field();
  double* u0 = alloc_field();
  double* v0 = alloc_field();
  double* dens = alloc_field();
  double* dens0 = alloc_field();
  double* p = alloc_field();
  double* div = alloc_field();

  constexpr double kDt = 0.1;
  constexpr double kDiff = 0.0;
  std::uint64_t checksum = 0;
  for (int step = 0; step < 12; ++step) {
    // Sources injected directly into the live fields: density blob + opposing swirl.
    dens[Ix(kN / 2, kN / 2)] += 100.0;
    u[Ix(kN / 4, kN / 2)] += 4.0;
    v[Ix(3 * kN / 4, kN / 2)] -= 4.0;

    // Velocity step (Stam): diffuse into the scratch fields, project, advect back, project.
    Diffuse(1, u0, u, kDiff, kDt);
    Diffuse(2, v0, v, kDiff, kDt);
    Project(u0, v0, p, div);
    Advect(1, u, u0, u0, v0, kDt);
    Advect(2, v, v0, u0, v0, kDt);
    Project(u, v, p, div);

    // Density step: diffuse into scratch, advect along the velocity field.
    Diffuse(0, dens0, dens, kDiff, kDt);
    Advect(0, dens, dens0, u, v, kDt);

    checksum += static_cast<std::uint64_t>(dens[Ix(kN / 2, kN / 2 + step % 8)] * 1000.0);
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
