// RayTrace — sphere scene with a checkered ground plane, point light, shadows and one level
// of reflection (the suite's member is Flanagan's JS ray tracer; same structure, fixed FP).
#include "src/apps/v8bench/kernels.h"

#include <cmath>

namespace ebbrt {
namespace v8bench {
namespace {

struct Vec {
  double x = 0, y = 0, z = 0;
  Vec operator+(Vec o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec operator-(Vec o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec operator*(double s) const { return {x * s, y * s, z * s}; }
  double Dot(Vec o) const { return x * o.x + y * o.y + z * o.z; }
  Vec Norm() const {
    double len = std::sqrt(Dot(*this));
    return {x / len, y / len, z / len};
  }
};

struct Sphere {
  Vec center;
  double radius;
  Vec color;
  double reflect;
};

struct Scene {
  Sphere* spheres;
  int num_spheres;
  Vec light;
};

bool HitSphere(const Sphere& s, Vec origin, Vec dir, double* t) {
  Vec oc = origin - s.center;
  double b = 2.0 * oc.Dot(dir);
  double c = oc.Dot(oc) - s.radius * s.radius;
  double disc = b * b - 4 * c;
  if (disc < 0) {
    return false;
  }
  double root = (-b - std::sqrt(disc)) / 2;
  if (root < 1e-4) {
    root = (-b + std::sqrt(disc)) / 2;
  }
  if (root < 1e-4) {
    return false;
  }
  *t = root;
  return true;
}

Vec Trace(const Scene& scene, Vec origin, Vec dir, int depth) {
  double best_t = 1e30;
  const Sphere* hit = nullptr;
  for (int i = 0; i < scene.num_spheres; ++i) {
    double t;
    if (HitSphere(scene.spheres[i], origin, dir, &t) && t < best_t) {
      best_t = t;
      hit = &scene.spheres[i];
    }
  }
  // Ground plane y = -2 with a checkerboard.
  double plane_t = dir.y < -1e-6 ? (-2.0 - origin.y) / dir.y : 1e30;
  if (hit == nullptr && plane_t >= 1e30) {
    return {0.1, 0.1, 0.2};  // sky
  }
  if (hit == nullptr || plane_t < best_t) {
    Vec p = origin + dir * plane_t;
    int check = (static_cast<int>(std::floor(p.x)) + static_cast<int>(std::floor(p.z))) & 1;
    Vec base = check ? Vec{0.9, 0.9, 0.9} : Vec{0.1, 0.1, 0.1};
    // Shadow ray.
    Vec to_light = (scene.light - p).Norm();
    for (int i = 0; i < scene.num_spheres; ++i) {
      double t;
      if (HitSphere(scene.spheres[i], p, to_light, &t)) {
        return base * 0.3;
      }
    }
    return base;
  }
  Vec p = origin + dir * best_t;
  Vec n = (p - hit->center).Norm();
  Vec to_light = (scene.light - p).Norm();
  double diffuse = std::max(0.0, n.Dot(to_light));
  for (int i = 0; i < scene.num_spheres; ++i) {
    double t;
    if (&scene.spheres[i] != hit && HitSphere(scene.spheres[i], p, to_light, &t)) {
      diffuse = 0;
      break;
    }
  }
  Vec color = hit->color * (0.15 + 0.85 * diffuse);
  if (depth > 0 && hit->reflect > 0) {
    Vec r = dir - n * (2 * dir.Dot(n));
    Vec reflected = Trace(scene, p, r.Norm(), depth - 1);
    color = color * (1 - hit->reflect) + reflected * hit->reflect;
  }
  return color;
}

}  // namespace

std::uint64_t RunRayTrace(Env& env) {
  constexpr int kWidth = 192;
  constexpr int kHeight = 144;
  constexpr int kSpheres = 6;
  auto* spheres = static_cast<Sphere*>(env.Alloc(sizeof(Sphere) * kSpheres));
  for (int i = 0; i < kSpheres; ++i) {
    double a = i * 1.047;
    spheres[i] = {{2.5 * std::cos(a), -1.0 + 0.4 * i, 6.0 + 2.0 * std::sin(a)},
                  0.8,
                  {0.2 + 0.13 * i, 0.9 - 0.12 * i, 0.5},
                  i % 2 ? 0.5 : 0.1};
  }
  Scene scene{spheres, kSpheres, {5, 8, 0}};
  auto* image = static_cast<float*>(env.Alloc(sizeof(float) * kWidth * kHeight * 3));
  std::uint64_t checksum = 0;
  for (int frame = 0; frame < 3; ++frame) {
    scene.light.x = 5 - 3 * frame;
    for (int y = 0; y < kHeight; ++y) {
      for (int x = 0; x < kWidth; ++x) {
        Vec dir = Vec{(x - kWidth / 2.0) / kWidth, (kHeight / 2.0 - y) / kHeight, 1.0}.Norm();
        Vec c = Trace(scene, {0, 0, 0}, dir, 2);
        float* px = image + (y * kWidth + x) * 3;
        px[0] = static_cast<float>(c.x);
        px[1] = static_cast<float>(c.y);
        px[2] = static_cast<float>(c.z);
        checksum += static_cast<std::uint64_t>(c.x * 255) +
                    static_cast<std::uint64_t>(c.y * 255) +
                    static_cast<std::uint64_t>(c.z * 255);
      }
    }
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
