// EarleyBoyer (parser half) — an Earley chart parser over an ambiguous expression grammar.
// The V8 suite runs a Scheme-to-JS translation of Earley parsing + the Boyer theorem prover;
// we reproduce the Earley half, which dominates allocation behaviour (chart items are created
// in large numbers per input symbol). Documented as a substitution in DESIGN.md.
#include "src/apps/v8bench/kernels.h"

#include <cstring>

namespace ebbrt {
namespace v8bench {
namespace {

// Grammar (deliberately ambiguous so charts grow):
//   E -> E + E | E * E | ( E ) | n
enum Symbol : std::uint8_t { kE, kPlus, kTimes, kLparen, kRparen, kNum, kNumSymbols };

struct Production {
  Symbol lhs;
  Symbol rhs[3];
  int rhs_len;
};

const Production kGrammar[] = {
    {kE, {kE, kPlus, kE}, 3},
    {kE, {kE, kTimes, kE}, 3},
    {kE, {kLparen, kE, kRparen}, 3},
    {kE, {kNum, kNum, kNum}, 1},  // rhs_len=1: only first element used
};
constexpr int kNumProductions = 4;

struct Item {
  std::uint8_t production;
  std::uint8_t dot;
  std::uint16_t origin;
  Item* next = nullptr;  // chain within the chart set
};

struct ChartSet {
  Item* head = nullptr;
  int count = 0;
};

bool Contains(const ChartSet& set, std::uint8_t production, std::uint8_t dot,
              std::uint16_t origin) {
  for (Item* item = set.head; item != nullptr; item = item->next) {
    if (item->production == production && item->dot == dot && item->origin == origin) {
      return true;
    }
  }
  return false;
}

void Add(Env& env, ChartSet& set, std::uint8_t production, std::uint8_t dot,
         std::uint16_t origin) {
  if (Contains(set, production, dot, origin)) {
    return;
  }
  auto* item = env.New<Item>();
  item->production = production;
  item->dot = dot;
  item->origin = origin;
  item->next = set.head;
  set.head = item;
  ++set.count;
}

// Parses `input` (array of Symbols) and returns total chart items (the work measure).
std::uint64_t Parse(Env& env, const Symbol* input, int len) {
  auto* chart = static_cast<ChartSet*>(env.Alloc(sizeof(ChartSet) * (len + 1)));
  for (int i = 0; i <= len; ++i) {
    chart[i] = ChartSet{};
  }
  // Seed: all E productions at position 0.
  for (int p = 0; p < kNumProductions; ++p) {
    Add(env, chart[0], static_cast<std::uint8_t>(p), 0, 0);
  }
  for (int pos = 0; pos <= len; ++pos) {
    // Worklist processing: iterate until closure (items prepend, so rescan).
    bool changed = true;
    while (changed) {
      changed = false;
      for (Item* item = chart[pos].head; item != nullptr; item = item->next) {
        const Production& prod = kGrammar[item->production];
        if (item->dot < prod.rhs_len) {
          Symbol next_sym = prod.rhs[item->dot];
          if (next_sym == kE) {
            // Predict.
            int before = chart[pos].count;
            for (int p = 0; p < kNumProductions; ++p) {
              Add(env, chart[pos], static_cast<std::uint8_t>(p), 0,
                  static_cast<std::uint16_t>(pos));
            }
            changed |= chart[pos].count != before;
          } else if (pos < len && input[pos] == next_sym) {
            // Scan.
            int before = chart[pos + 1].count;
            Add(env, chart[pos + 1], item->production,
                static_cast<std::uint8_t>(item->dot + 1), item->origin);
            changed |= chart[pos + 1].count != before;
          }
        } else {
          // Complete: advance items in the origin set waiting on E.
          int before = chart[pos].count;
          for (Item* waiting = chart[item->origin].head; waiting != nullptr;
               waiting = waiting->next) {
            const Production& wprod = kGrammar[waiting->production];
            if (waiting->dot < wprod.rhs_len && wprod.rhs[waiting->dot] == kE) {
              Add(env, chart[pos], waiting->production,
                  static_cast<std::uint8_t>(waiting->dot + 1), waiting->origin);
            }
          }
          changed |= chart[pos].count != before;
        }
      }
    }
  }
  std::uint64_t total = 0;
  for (int i = 0; i <= len; ++i) {
    total += static_cast<std::uint64_t>(chart[i].count);
  }
  return total;
}

}  // namespace

std::uint64_t RunEarley(Env& env) {
  // Inputs: alternating n + n * n ... with parenthesized clusters; ambiguity makes chart
  // sizes superlinear in length.
  std::uint64_t checksum = 0;
  for (int round = 0; round < 12; ++round) {
    env.Reset();
    Symbol input[64];
    int len = 0;
    int terms = 8 + round;
    for (int t = 0; t < terms && len < 60; ++t) {
      if (t > 0) {
        input[len++] = (t % 2) ? kPlus : kTimes;
      }
      if (t % 3 == 2) {
        input[len++] = kLparen;
        input[len++] = kNum;
        input[len++] = kPlus;
        input[len++] = kNum;
        input[len++] = kRparen;
      } else {
        input[len++] = kNum;
      }
    }
    checksum += Parse(env, input, len);
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
