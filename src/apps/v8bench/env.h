// v8bench::Env — the execution-environment model for the V8-suite reproduction (Figure 7).
//
// The paper attributes EbbRT's win on pure-JavaScript benchmarks to two environmental
// differences, not to any change in V8 itself: "EbbRT aggressively maps in memory allocated
// by V8 and therefore suffers no page faults. Additionally our non-preemptive execution
// environment prevents unnecessary timer interrupts and cache pollution due to OS execution."
//
// Env reproduces exactly those two knobs around our C++ kernel re-implementations:
//   kEbbRT — heap arena pre-mapped and pre-touched (zero faults), no timer signal.
//   kLinux — heap arena demand-faulted page by page (real SIGSEGV + mprotect cost per page),
//            plus a periodic SIGALRM "scheduler tick" whose handler pollutes the cache.
#ifndef EBBRT_SRC_APPS_V8BENCH_ENV_H_
#define EBBRT_SRC_APPS_V8BENCH_ENV_H_

#include <cstddef>
#include <cstdint>

#include "src/mem/vmem.h"

namespace ebbrt {
namespace v8bench {

class Env {
 public:
  enum class Kind { kEbbRT, kLinux };

  Env(Kind kind, std::size_t arena_bytes);
  ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  Kind kind() const { return kind_; }

  // Bump allocation from the managed heap arena (kernels allocate all data through this, so
  // the mapping policy difference is what the benchmark actually feels).
  void* Alloc(std::size_t bytes) {
    std::size_t aligned = (bytes + 15) & ~std::size_t{15};
    if (offset_ + aligned > size_) {
      offset_ = 0;  // wrap: benchmarks size their arenas to avoid live-data reuse
    }
    void* p = base_ + offset_;
    offset_ += aligned;
    return p;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    return new (Alloc(sizeof(T))) T(std::forward<Args>(args)...);
  }

  void Reset() { offset_ = 0; }
  std::uint64_t page_faults() const;

  // Starts/stops the periodic tick (kLinux only; no-op under kEbbRT).
  void StartTicks();
  void StopTicks();

 private:
  Kind kind_;
  VMemRegion* region_;
  std::uint8_t* base_;
  std::size_t size_;
  std::size_t offset_ = 0;
  bool ticks_on_ = false;
};

}  // namespace v8bench
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_V8BENCH_ENV_H_
