// DeltaBlue — the classic one-way incremental constraint solver (Sannella's planner), as in
// the V8 suite: a chain of equality constraints and a projection battery of scale constraints
// are planned, perturbed and replanned. Exercises virtual dispatch + object graphs.
#include "src/apps/v8bench/kernels.h"

#include <vector>

#include "src/platform/debug.h"

namespace ebbrt {
namespace v8bench {
namespace {

enum Strength {
  kRequired = 0,
  kStrongPreferred = 1,
  kPreferred = 2,
  kStrongDefault = 3,
  kNormal = 4,
  kWeakDefault = 5,
  kWeakest = 6,
};

inline bool Stronger(int a, int b) { return a < b; }

class Constraint;

struct Variable {
  int value = 0;
  Constraint* determined_by = nullptr;
  int walk_strength = kWeakest;
  std::uint64_t mark = 0;
  bool stay = true;
  // Arena-friendly fixed fan-out (no heap-owning members: the arena never runs destructors).
  Constraint* constraints[4] = {};
  int num_constraints = 0;
  void AddConstraintRef(Constraint* c) {
    Kbugon(num_constraints >= 4, "DeltaBlue: variable fan-out exceeded");
    constraints[num_constraints++] = c;
  }
};

class Planner;

class Constraint {
 public:
  explicit Constraint(int strength) : strength_(strength) {}
  virtual ~Constraint() = default;

  virtual void AddToGraph() = 0;
  virtual void RemoveFromGraph() = 0;
  virtual bool IsSatisfied() const = 0;
  virtual void ChooseMethod(std::uint64_t mark) = 0;
  virtual Variable* Output() const = 0;
  virtual void MarkInputs(std::uint64_t mark) = 0;
  virtual bool InputsKnown(std::uint64_t mark) const = 0;
  virtual void Execute() = 0;
  virtual void Recalculate() = 0;
  virtual void MarkUnsatisfied() = 0;

  int strength() const { return strength_; }

  void AddConstraint(Planner& planner);
  Constraint* Satisfy(std::uint64_t mark, Planner& planner);

 protected:
  int strength_;
};

class Planner {
 public:
  std::uint64_t next_mark_ = 0;
  std::uint64_t NewMark() { return ++next_mark_; }

  void IncrementalAdd(Constraint* c) {
    std::uint64_t mark = NewMark();
    for (Constraint* overridden = c->Satisfy(mark, *this); overridden != nullptr;
         overridden = overridden->Satisfy(mark, *this)) {
    }
  }

  // Extracts a plan (ordered constraint executions) from the sources.
  std::vector<Constraint*> ExtractPlan(const std::vector<Constraint*>& sources) {
    std::vector<Constraint*> plan;
    std::vector<Constraint*> todo = sources;
    std::uint64_t mark = NewMark();
    while (!todo.empty()) {
      Constraint* c = todo.back();
      todo.pop_back();
      Variable* out = c->Output();
      if (out->mark != mark && c->InputsKnown(mark)) {
        plan.push_back(c);
        out->mark = mark;
        // Propagate to downstream constraints of `out`.
        for (int i = 0; i < out->num_constraints; ++i) {
          Constraint* next = out->constraints[i];
          if (next != c && next->IsSatisfied()) {
            todo.push_back(next);
          }
        }
      }
    }
    return plan;
  }

  std::vector<Constraint*> MakePlan(std::vector<Constraint*> sources) {
    return ExtractPlan(sources);
  }
};

void Constraint::AddConstraint(Planner& planner) {
  AddToGraph();
  planner.IncrementalAdd(this);
}

Constraint* Constraint::Satisfy(std::uint64_t mark, Planner& planner) {
  ChooseMethod(mark);
  if (!IsSatisfied()) {
    Kbugon(strength_ == kRequired, "DeltaBlue: required constraint unsatisfiable");
    return nullptr;
  }
  MarkInputs(mark);
  Variable* out = Output();
  Constraint* overridden = out->determined_by;
  if (overridden != nullptr) {
    overridden->MarkUnsatisfied();
  }
  out->determined_by = this;
  out->mark = mark;
  Recalculate();
  return overridden;
}

// --- Unary constraints -------------------------------------------------------------------

class UnaryConstraint : public Constraint {
 public:
  UnaryConstraint(Variable* v, int strength) : Constraint(strength), var_(v) {}

  void AddToGraph() override { var_->AddConstraintRef(this); }
  void RemoveFromGraph() override { satisfied_ = false; }
  void ChooseMethod(std::uint64_t mark) override {
    satisfied_ = var_->mark != mark && Stronger(strength_, var_->walk_strength);
  }
  bool IsSatisfied() const override { return satisfied_; }
  Variable* Output() const override { return var_; }
  void MarkInputs(std::uint64_t) override {}
  bool InputsKnown(std::uint64_t) const override { return true; }
  void Recalculate() override {
    var_->walk_strength = strength_;
    var_->stay = !IsInput();
    if (var_->stay) {
      Execute();
    }
  }
  void MarkUnsatisfied() override { satisfied_ = false; }
  virtual bool IsInput() const { return false; }

 protected:
  Variable* var_;
  bool satisfied_ = false;
};

class StayConstraint : public UnaryConstraint {
 public:
  using UnaryConstraint::UnaryConstraint;
  void Execute() override {}
};

class EditConstraint : public UnaryConstraint {
 public:
  using UnaryConstraint::UnaryConstraint;
  void Execute() override {}
  bool IsInput() const override { return true; }
};

// --- Binary constraints ------------------------------------------------------------------

class BinaryConstraint : public Constraint {
 public:
  BinaryConstraint(Variable* a, Variable* b, int strength)
      : Constraint(strength), v1_(a), v2_(b) {}

  void AddToGraph() override {
    v1_->AddConstraintRef(this);
    v2_->AddConstraintRef(this);
  }
  void RemoveFromGraph() override { direction_ = 0; }
  void ChooseMethod(std::uint64_t mark) override {
    if (v1_->mark == mark) {
      direction_ = (v2_->mark != mark && Stronger(strength_, v2_->walk_strength)) ? 2 : 0;
    } else if (v2_->mark == mark) {
      direction_ = (v1_->mark != mark && Stronger(strength_, v1_->walk_strength)) ? 1 : 0;
    } else if (Stronger(v1_->walk_strength, v2_->walk_strength)) {
      direction_ = Stronger(strength_, v2_->walk_strength) ? 2 : 0;
    } else {
      direction_ = Stronger(strength_, v1_->walk_strength) ? 1 : 0;
    }
  }
  bool IsSatisfied() const override { return direction_ != 0; }
  Variable* Output() const override { return direction_ == 2 ? v2_ : v1_; }
  Variable* Input() const { return direction_ == 2 ? v1_ : v2_; }
  void MarkInputs(std::uint64_t mark) override { Input()->mark = mark; }
  bool InputsKnown(std::uint64_t mark) const override {
    Variable* in = Input();
    return in->mark == mark || in->stay || in->determined_by == nullptr;
  }
  void Recalculate() override {
    Variable* in = Input();
    Variable* out = Output();
    out->walk_strength = Stronger(strength_, in->walk_strength) ? in->walk_strength
                                                                : strength_;
    out->stay = in->stay;
    if (out->stay) {
      Execute();
    }
  }
  void MarkUnsatisfied() override { direction_ = 0; }

 protected:
  Variable* v1_;
  Variable* v2_;
  int direction_ = 0;  // 0 none, 1 -> v1, 2 -> v2
};

class EqualityConstraint : public BinaryConstraint {
 public:
  using BinaryConstraint::BinaryConstraint;
  void Execute() override { Output()->value = Input()->value; }
};

class ScaleConstraint : public BinaryConstraint {
 public:
  ScaleConstraint(Variable* src, Variable* scale, Variable* offset, Variable* dst,
                  int strength)
      : BinaryConstraint(src, dst, strength), scale_(scale), offset_(offset) {}
  void Execute() override {
    if (direction_ == 2) {
      v2_->value = v1_->value * scale_->value + offset_->value;
    } else {
      v1_->value = (v2_->value - offset_->value) / scale_->value;
    }
  }

 private:
  Variable* scale_;
  Variable* offset_;
};

std::uint64_t RunPlan(const std::vector<Constraint*>& plan) {
  std::uint64_t sum = 0;
  for (Constraint* c : plan) {
    c->Execute();
    sum += static_cast<std::uint64_t>(c->Output()->value & 0xff);
  }
  return sum;
}

// Chain test: a chain of equality constraints with an edit at the head.
std::uint64_t ChainTest(Env& env, int n) {
  Planner planner;
  std::vector<Variable*> vars;
  for (int i = 0; i <= n; ++i) {
    vars.push_back(env.New<Variable>());
  }
  for (int i = 0; i < n; ++i) {
    env.New<EqualityConstraint>(vars[i], vars[i + 1], kRequired)->AddConstraint(planner);
  }
  env.New<StayConstraint>(vars[n], kStrongDefault)->AddConstraint(planner);
  auto* edit = env.New<EditConstraint>(vars[0], kPreferred);
  edit->AddConstraint(planner);
  std::vector<Constraint*> sources{edit};
  auto plan = planner.MakePlan(sources);
  std::uint64_t checksum = 0;
  for (int v = 0; v < 40; ++v) {
    vars[0]->value = v;
    checksum += RunPlan(plan);
    checksum += static_cast<std::uint64_t>(vars[n]->value);
  }
  return checksum;
}

// Projection test: src -(scale)-> dst battery; edit src, replan, edit dst, replan.
std::uint64_t ProjectionTest(Env& env, int n) {
  Planner planner;
  auto* scale = env.New<Variable>();
  scale->value = 10;
  auto* offset = env.New<Variable>();
  offset->value = 1000;
  std::vector<Variable*> dests;
  Variable* src = nullptr;
  Variable* dst = nullptr;
  for (int i = 0; i < n; ++i) {
    src = env.New<Variable>();
    src->value = i;
    dst = env.New<Variable>();
    dst->value = i;
    dests.push_back(dst);
    env.New<StayConstraint>(src, kNormal)->AddConstraint(planner);
    env.New<ScaleConstraint>(src, scale, offset, dst, kRequired)->AddConstraint(planner);
  }
  auto* edit = env.New<EditConstraint>(src, kPreferred);
  edit->AddConstraint(planner);
  std::vector<Constraint*> sources{edit};
  auto plan = planner.MakePlan(sources);
  std::uint64_t checksum = 0;
  for (int v = 0; v < 30; ++v) {
    src->value = v;
    checksum += RunPlan(plan);
    checksum += static_cast<std::uint64_t>(dst->value);
  }
  return checksum;
}

}  // namespace

std::uint64_t RunDeltaBlue(Env& env) {
  std::uint64_t checksum = 0;
  for (int round = 0; round < 30; ++round) {
    env.Reset();
    checksum += ChainTest(env, 1000);
    checksum += ProjectionTest(env, 1000);
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
