// Splay — the suite's memory-system stress: a splay tree under insert/lookup/delete churn
// with payload-carrying nodes. This is the benchmark the paper highlights (+13.9% on EbbRT)
// because its working set grows continuously — demand faults and tick-driven cache pollution
// hit it hardest.
#include "src/apps/v8bench/kernels.h"

#include <cstring>

namespace ebbrt {
namespace v8bench {
namespace {

struct SplayNode {
  std::uint64_t key;
  SplayNode* left = nullptr;
  SplayNode* right = nullptr;
  // The V8 version stores a string + array payload per node; we keep a comparable footprint.
  char payload[112];
};

// Top-down splay (Sleator & Tarjan).
SplayNode* Splay(SplayNode* root, std::uint64_t key) {
  if (root == nullptr) {
    return nullptr;
  }
  SplayNode header;
  header.left = header.right = nullptr;
  SplayNode* left_tree = &header;
  SplayNode* right_tree = &header;
  SplayNode* t = root;
  for (;;) {
    if (key < t->key) {
      if (t->left == nullptr) {
        break;
      }
      if (key < t->left->key) {
        SplayNode* y = t->left;  // rotate right
        t->left = y->right;
        y->right = t;
        t = y;
        if (t->left == nullptr) {
          break;
        }
      }
      right_tree->left = t;  // link right
      right_tree = t;
      t = t->left;
    } else if (key > t->key) {
      if (t->right == nullptr) {
        break;
      }
      if (key > t->right->key) {
        SplayNode* y = t->right;  // rotate left
        t->right = y->left;
        y->left = t;
        t = y;
        if (t->right == nullptr) {
          break;
        }
      }
      left_tree->right = t;  // link left
      left_tree = t;
      t = t->right;
    } else {
      break;
    }
  }
  left_tree->right = t->left;
  right_tree->left = t->right;
  t->left = header.right;
  t->right = header.left;
  return t;
}

SplayNode* Insert(Env& env, SplayNode* root, std::uint64_t key) {
  auto* node = env.New<SplayNode>();
  node->key = key;
  std::memset(node->payload, static_cast<int>(key & 0xff), sizeof(node->payload));
  if (root == nullptr) {
    return node;
  }
  root = Splay(root, key);
  if (key == root->key) {
    return root;  // already present
  }
  if (key < root->key) {
    node->left = root->left;
    node->right = root;
    root->left = nullptr;
  } else {
    node->right = root->right;
    node->left = root;
    root->right = nullptr;
  }
  return node;
}

SplayNode* Remove(SplayNode* root, std::uint64_t key) {
  if (root == nullptr) {
    return nullptr;
  }
  root = Splay(root, key);
  if (root->key != key) {
    return root;
  }
  if (root->left == nullptr) {
    return root->right;
  }
  SplayNode* new_root = Splay(root->left, key);
  new_root->right = root->right;
  return new_root;
}

}  // namespace

std::uint64_t RunSplay(Env& env) {
  // The V8 benchmark builds an 8000-node tree then churns insert+delete pairs, generating
  // garbage continuously. Our arena wraps instead of collecting; the allocation *pattern*
  // (fresh pages forever) is what matters for the environment comparison.
  constexpr int kTreeSize = 8000;
  constexpr int kChurn = 200000;
  std::uint64_t rng = 49734321;
  auto next_key = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 16;
  };
  SplayNode* root = nullptr;
  for (int i = 0; i < kTreeSize; ++i) {
    root = Insert(env, root, next_key());
  }
  std::uint64_t checksum = 0;
  for (int i = 0; i < kChurn; ++i) {
    std::uint64_t key = next_key();
    root = Insert(env, root, key);
    // Remove a pseudo-random older key to hold the tree near its target size.
    root = Splay(root, key ^ (key >> 7));
    checksum += root->key & 0xff;
    root = Remove(root, root->key);
  }
  return checksum;
}

}  // namespace v8bench
}  // namespace ebbrt
