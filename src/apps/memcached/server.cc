#include "src/apps/memcached/server.h"

namespace ebbrt {
namespace memcached {

std::unique_ptr<IOBuf> BuildResponseHeader(const BinaryHeader& req, Status status,
                                           std::size_t extras_len, std::size_t key_len,
                                           std::size_t value_len) {
  auto buf = IOBuf::Create(sizeof(BinaryHeader) + extras_len, /*zero=*/true);
  auto& hdr = buf->Get<BinaryHeader>();
  hdr.magic = kMagicResponse;
  hdr.opcode = req.opcode;
  hdr.key_length = HostToNet16(static_cast<std::uint16_t>(key_len));
  hdr.extras_length = static_cast<std::uint8_t>(extras_len);
  hdr.status_vbucket = HostToNet16(static_cast<std::uint16_t>(status));
  hdr.total_body =
      HostToNet32(static_cast<std::uint32_t>(extras_len + key_len + value_len));
  hdr.opaque = req.opaque;
  hdr.cas = req.cas;
  return buf;
}

// --- EbbRT-native server ----------------------------------------------------------------------

MemcachedServer::MemcachedServer(NetworkManager& network, std::uint16_t port)
    : network_(network), store_(network.rcu()) {
  network_.tcp().Listen(port, [this](TcpPcb pcb) {
    pcb.InstallHandler(std::unique_ptr<TcpHandler>(std::make_unique<Connection>(*this)));
    // Event-scoped TX batching (§5: application-level aggregation): every response produced
    // while parsing one device event's worth of requests goes out as one chain — a pipelined
    // GET burst costs one wire segment instead of one per response.
    pcb.SetAutoCork(true);
  });
}

// SET/ADD/REPLACE client flags, when the request carried SetExtras (0 otherwise).
static std::uint32_t RequestFlags(const RequestParser::Request& req) {
  if (req.extras.size() < sizeof(SetExtras)) {
    return 0;
  }
  SetExtras extras;
  std::memcpy(&extras, req.extras.data(), sizeof(extras));
  return NetToHost32(extras.flags);
}

void MemcachedServer::HandleRequest(Connection& conn, const RequestParser::Request& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (req.oversized) {
    // Framed but beyond the per-item bounds: the parser already dropped the body without
    // buffering it; answer and keep serving (the bad_frames discipline).
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    conn.Pcb().Send(BuildResponseHeader(req.header, Status::kInvalidArguments, 0, 0, 0));
    return;
  }
  switch (static_cast<Opcode>(req.header.opcode)) {
    case Opcode::kGet:
    case Opcode::kGetK: {
      bool with_key = static_cast<Opcode>(req.header.opcode) == Opcode::kGetK;
      ItemPtr item = store_.Get(req.key);
      if (item == nullptr) {
        conn.Pcb().Send(BuildResponseHeader(req.header, Status::kKeyNotFound, 0, 0, 0));
        return;
      }
      std::size_t key_len = with_key ? req.key.size() : 0;
      auto response = BuildResponseHeader(req.header, Status::kOk, sizeof(GetExtras),
                                          key_len, item->value().size());
      // Extras live in the header buffer; append key (copied — tiny) and the value as a
      // zero-copy reference-counted view of the stored item block.
      auto& extras = response->Get<GetExtras>(sizeof(BinaryHeader));
      extras.flags = HostToNet32(item->flags());
      response->Get<BinaryHeader>().cas = item->cas();
      if (with_key) {
        response->AppendChain(IOBuf::CopyBuffer(req.key));
      }
      response->AppendChain(MakeValueBuffer(std::move(item)));
      conn.Pcb().Send(std::move(response));
      return;
    }
    case Opcode::kSet: {
      store_.Set(req.key, req.value, RequestFlags(req));
      conn.Pcb().Send(BuildResponseHeader(req.header, Status::kOk, 0, 0, 0));
      return;
    }
    case Opcode::kAdd: {
      bool ok = store_.Add(req.key, req.value, RequestFlags(req));
      conn.Pcb().Send(BuildResponseHeader(
          req.header, ok ? Status::kOk : Status::kKeyExists, 0, 0, 0));
      return;
    }
    case Opcode::kReplace: {
      bool ok = store_.Replace(req.key, req.value, RequestFlags(req));
      conn.Pcb().Send(BuildResponseHeader(
          req.header, ok ? Status::kOk : Status::kItemNotStored, 0, 0, 0));
      return;
    }
    case Opcode::kDelete: {
      bool ok = store_.Delete(req.key);
      conn.Pcb().Send(BuildResponseHeader(
          req.header, ok ? Status::kOk : Status::kKeyNotFound, 0, 0, 0));
      return;
    }
    case Opcode::kMultiGet: {
      HandleMultiGet(conn, req);
      return;
    }
    case Opcode::kNoop:
    case Opcode::kVersion: {
      conn.Pcb().Send(BuildResponseHeader(req.header, Status::kOk, 0, 0, 0));
      return;
    }
    case Opcode::kQuit: {
      conn.Pcb().Close();
      return;
    }
    default:
      conn.Pcb().Send(BuildResponseHeader(req.header, Status::kUnknownCommand, 0, 0, 0));
  }
}

// MULTIGET k1..kN: one request frame, one response frame, one response-header's worth of
// overhead for the whole batch. The batch body is remote input and is validated like the
// Messenger validates its framing: the declared key_count is bounded BEFORE it sizes
// anything, each packed key must fit the bytes that actually arrived, and the keys must
// consume the body exactly. A bad batch costs one kInvalidArguments response and a
// bad_frames tick; the outer BinaryHeader framing is still sound, so the connection keeps
// serving (no wedge, no assert).
void MemcachedServer::HandleMultiGet(Connection& conn, const RequestParser::Request& req) {
  const char* p = req.value.data();
  std::size_t remaining = req.value.size();
  std::uint32_t count = 0;
  bool ok = req.header.KeyLength() == 0 && req.extras.size() == sizeof(MultiGetExtras);
  if (ok) {
    MultiGetExtras extras;
    std::memcpy(&extras, req.extras.data(), sizeof(extras));
    count = NetToHost32(extras.key_count);
    ok = count <= kMaxMultiGetKeys;
  }
  // Per key: [MultiGetEntry][value view] — entry words are tiny slab buffers, values are
  // refcounted views of the stored items (the single-GET zero-copy path, N times under one
  // header). Parts are spliced once at the end (JoinChains: no quadratic tail walks).
  std::vector<std::unique_ptr<IOBuf>> parts;
  parts.reserve(ok ? 1 + 2 * count : 1);
  parts.push_back(nullptr);  // response header placeholder, built once sizes are known
  std::size_t value_section = 0;
  for (std::uint32_t i = 0; ok && i < count; ++i) {
    std::uint16_t klen = 0;
    if (remaining < sizeof(klen)) {
      ok = false;
      break;
    }
    std::memcpy(&klen, p, sizeof(klen));
    klen = NetToHost16(klen);
    p += sizeof(klen);
    remaining -= sizeof(klen);
    if (remaining < klen) {
      ok = false;  // truncated batch: fewer key bytes than the count promised
      break;
    }
    if (klen > kMaxKeyLen) {
      ok = false;  // per-item key bound applies inside a batch too
      break;
    }
    std::string_view key{p, klen};
    p += klen;
    remaining -= klen;
    auto entry_buf = IOBuf::CreateReserveFor<sizeof(MultiGetEntry)>(0);
    entry_buf->Append(sizeof(MultiGetEntry));
    auto& entry = entry_buf->Get<MultiGetEntry>();
    ItemPtr item = store_.Get(key);
    if (item == nullptr) {
      entry.status = HostToNet16(static_cast<std::uint16_t>(Status::kKeyNotFound));
      entry.value_length = 0;
      value_section += sizeof(MultiGetEntry);
      parts.push_back(std::move(entry_buf));
      continue;
    }
    entry.status = HostToNet16(static_cast<std::uint16_t>(Status::kOk));
    entry.value_length = HostToNet32(static_cast<std::uint32_t>(item->value().size()));
    value_section += sizeof(MultiGetEntry) + item->value().size();
    parts.push_back(std::move(entry_buf));
    parts.push_back(MakeValueBuffer(std::move(item)));
  }
  if (!ok || remaining != 0) {  // exact consumption: trailing bytes are malformed too
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    conn.Pcb().Send(BuildResponseHeader(req.header, Status::kInvalidArguments, 0, 0, 0));
    return;
  }
  auto header = BuildResponseHeader(req.header, Status::kOk, sizeof(MultiGetExtras), 0,
                                    value_section);
  header->Get<MultiGetExtras>(sizeof(BinaryHeader)).key_count = HostToNet32(count);
  parts[0] = std::move(header);
  conn.Pcb().Send(IOBuf::JoinChains(std::move(parts)));
}

// --- Baseline (socket API) server ---------------------------------------------------------------

BaselineMemcachedServer::BaselineMemcachedServer(baseline::SocketStack& stack,
                                                 std::uint16_t port)
    : stack_(stack), store_(stack.net().rcu()) {
  stack_.Listen(port, [this](std::shared_ptr<baseline::Socket> socket) {
    auto conn = std::make_shared<Connection>();
    conn->socket = std::move(socket);
    conn->server = this;
    conn->socket->SetDataReadyHandler([this, conn] { OnReadable(conn); });
  });
}

void BaselineMemcachedServer::OnReadable(std::shared_ptr<Connection> conn) {
  char buf[16384];
  for (;;) {
    std::size_t n = conn->socket->Read(buf, sizeof(buf));
    if (n == 0) {
      break;
    }
    conn->out.clear();
    conn->parser.FeedBytes(buf, n, [&conn](const RequestParser::Request& req) {
      conn->server->HandleRequest(*conn, req);
    });
    if (!conn->out.empty()) {
      conn->socket->Write(conn->out.data(), conn->out.size());
    }
  }
}

void BaselineMemcachedServer::HandleRequest(Connection& conn,
                                            const RequestParser::Request& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  auto append_response = [&conn](const BinaryHeader& hdr, Status status,
                                 std::string_view extras, std::string_view key,
                                 std::string_view value) {
    BinaryHeader out;
    std::memset(&out, 0, sizeof(out));
    out.magic = kMagicResponse;
    out.opcode = hdr.opcode;
    out.key_length = HostToNet16(static_cast<std::uint16_t>(key.size()));
    out.extras_length = static_cast<std::uint8_t>(extras.size());
    out.status_vbucket = HostToNet16(static_cast<std::uint16_t>(status));
    out.total_body =
        HostToNet32(static_cast<std::uint32_t>(extras.size() + key.size() + value.size()));
    out.opaque = hdr.opaque;
    // Staged into a user-space buffer, then write(2) copies it into the kernel — the copy
    // chain a socket API imposes.
    conn.out.append(reinterpret_cast<const char*>(&out), sizeof(out));
    conn.out.append(extras.data(), extras.size());
    conn.out.append(key.data(), key.size());
    conn.out.append(value.data(), value.size());
  };

  if (req.oversized) {
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    append_response(req.header, Status::kInvalidArguments, {}, {}, {});
    return;
  }
  switch (static_cast<Opcode>(req.header.opcode)) {
    case Opcode::kGet: {
      ItemPtr item = store_.Get(req.key);
      if (item == nullptr) {
        append_response(req.header, Status::kKeyNotFound, {}, {}, {});
        return;
      }
      GetExtras extras;
      extras.flags = HostToNet32(item->flags());
      append_response(req.header, Status::kOk,
                      {reinterpret_cast<const char*>(&extras), sizeof(extras)}, {},
                      item->value());
      return;
    }
    case Opcode::kSet: {
      store_.Set(req.key, req.value, 0);
      append_response(req.header, Status::kOk, {}, {}, {});
      return;
    }
    case Opcode::kDelete: {
      bool ok = store_.Delete(req.key);
      append_response(req.header, ok ? Status::kOk : Status::kKeyNotFound, {}, {}, {});
      return;
    }
    case Opcode::kNoop:
    case Opcode::kVersion: {
      append_response(req.header, Status::kOk, {}, {}, {});
      return;
    }
    default:
      append_response(req.header, Status::kUnknownCommand, {}, {}, {});
  }
}

}  // namespace memcached
}  // namespace ebbrt
