#include "src/apps/memcached/shard.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/rcu/rcu.h"

namespace ebbrt {
namespace memcached {

std::string ShardRecordKey(std::size_t shard_index) {
  return "service/memcached/" + std::to_string(shard_index);
}

std::string EncodeShardRecord(Ipv4Addr addr, EbbId service) {
  return addr.ToString() + "#" + std::to_string(service);
}

bool ParseShardRecord(const std::string& record, ShardEndpoint* out) {
  unsigned a, b, c, d;
  unsigned long service = 0;
  if (std::sscanf(record.c_str(), "%u.%u.%u.%u#%lu", &a, &b, &c, &d, &service) != 5 ||
      a > 255 || b > 255 || c > 255 || d > 255 || service == 0 ||
      service > 0xffffffffull) {
    return false;
  }
  out->addr = Ipv4Addr::Of(a, b, c, d);
  out->service = static_cast<EbbId>(service);
  return true;
}

// --- ShardService -----------------------------------------------------------------------------

ShardService::ShardService(Runtime& runtime, std::size_t shard_index, Config config)
    : dist::RpcServer(runtime, kShardServiceBase + static_cast<EbbId>(shard_index)),
      shard_index_(shard_index), config_(std::move(config)),
      store_(RcuManagerRoot::For(runtime)) {
  Kassert(shard_index < kMaxShards, "ShardService: shard index out of range");
}

void ShardService::HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                              std::uint32_t /*aux*/, std::unique_ptr<IOBuf> body) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (config_.on_request) {
    config_.on_request();
  }
  switch (opcode) {
    case kShardOpGet: {
      std::string key = dist::ChainToString(body.get());
      ItemRef item = store_.Get(key);
      if (item == nullptr) {
        Reply(from, request_id, /*aux=*/0, nullptr);
        return;
      }
      // The reply body is a refcounted view of the stored item — no copy between the
      // store and the wire, exactly like the single-node GET path.
      Reply(from, request_id, /*aux=*/1, MakeValueBuffer(std::move(item)));
      return;
    }
    case kShardOpSet: {
      std::string key;
      std::string value;
      if (!dist::ParseLenPrefixedBody(dist::ChainToString(body.get()), &key, &value)) {
        ReplyError(from, request_id, "shard: malformed SET body");
        return;
      }
      store_.Set(key, std::move(value), 0);
      Reply(from, request_id, /*aux=*/1, nullptr);
      return;
    }
  }
  ReplyError(from, request_id, "shard: unknown opcode");
}

// --- Discovery --------------------------------------------------------------------------------

Future<void> AnnounceShard(Runtime& runtime, Ipv4Addr frontend, std::size_t shard_index,
                           Ipv4Addr self) {
  EbbId service = kShardServiceBase + static_cast<EbbId>(shard_index);
  return dist::GlobalIdMap::For(runtime, frontend)
      .Set(ShardRecordKey(shard_index), EncodeShardRecord(self, service));
}

Future<std::vector<ShardEndpoint>> DiscoverShards(Runtime& runtime, Ipv4Addr frontend,
                                                  std::size_t num_shards) {
  // Shards announce concurrently with clients discovering, so a missing record is the
  // normal bring-up race: GetWithRetry absorbs it with bounded backoff (a shard that never
  // announces surfaces as a clean error through the future). A record that exists but
  // fails to parse never heals, so it fails immediately.
  struct Discovery {
    dist::GlobalIdMap* map = nullptr;
    std::size_t num_shards = 0;
    std::vector<ShardEndpoint> endpoints;
    Promise<std::vector<ShardEndpoint>> done;
    std::function<void(std::size_t)> next;
  };
  auto state = std::make_shared<Discovery>();
  state->map = &dist::GlobalIdMap::For(runtime, frontend);
  state->num_shards = num_shards;
  state->endpoints.resize(num_shards);
  Future<std::vector<ShardEndpoint>> result = state->done.GetFuture();
  // Resolve sequentially (N is small and this runs once at bring-up).
  state->next = [state](std::size_t index) {
    if (index == state->num_shards) {
      state->done.SetValue(std::move(state->endpoints));
      state->next = nullptr;  // break the self-capture cycle
      return;
    }
    dist::GlobalIdMap::RetryPolicy policy;
    policy.initial_backoff_ns = 100'000;  // announces land within a handful of RTTs
    policy.max_backoff_ns = 4'000'000;
    state->map->GetWithRetry(ShardRecordKey(index), policy)
        .Then([state, index](Future<std::string> f) {
          std::string record;
          try {
            record = f.Get();
            if (!ParseShardRecord(record, &state->endpoints[index])) {
              throw std::runtime_error("DiscoverShards: malformed record for " +
                                       ShardRecordKey(index) + ": " + record);
            }
          } catch (...) {
            state->done.SetException(std::current_exception());
            state->next = nullptr;
            return;
          }
          state->next(index + 1);
        });
  };
  state->next(0);
  return result;
}

// --- ShardRouter ------------------------------------------------------------------------------

ShardRouter::ShardRouter(Runtime& runtime, std::vector<ShardEndpoint> shards,
                         std::size_t vnodes_per_shard)
    : shards_(std::move(shards)), per_shard_ops_(shards_.size(), 0) {
  Kassert(!shards_.empty(), "ShardRouter: no shards");
  clients_.reserve(shards_.size());
  ring_.reserve(shards_.size() * vnodes_per_shard);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    clients_.push_back(std::make_unique<dist::RpcClient>(runtime, shards_[i].service,
                                                         shards_[i].addr));
    for (std::size_t v = 0; v < vnodes_per_shard; ++v) {
      // Ring points are named by shard INDEX, not address: the same shard count always
      // yields the same placement, so rebuilding a router (or a second client machine
      // building its own) routes identically.
      std::uint64_t point =
          ShardHash("shard/" + std::to_string(i) + "/vnode/" + std::to_string(v));
      ring_.emplace_back(point, static_cast<std::uint32_t>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::ShardFor(std::string_view key) const {
  std::uint64_t h = ShardHash(key);
  // First ring point clockwise from the key's hash (wrapping past the top).
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, std::uint32_t{0xffffffff}));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

Future<ShardRouter::GetResult> ShardRouter::Get(std::string_view key) {
  std::size_t shard = ShardFor(key);
  per_shard_ops_[shard]++;
  return clients_[shard]
      ->Call(kShardOpGet, 0, IOBuf::CopyBuffer(key))
      .Then([](Future<dist::RpcClient::Response> f) {
        dist::RpcClient::Response response = f.Get();
        GetResult result;
        result.found = response.aux != 0;
        result.value = std::move(response.body);
        return result;
      });
}

Future<void> ShardRouter::Set(std::string_view key, std::string_view value) {
  std::size_t shard = ShardFor(key);
  per_shard_ops_[shard]++;
  return clients_[shard]
      ->Call(kShardOpSet, 0, dist::BuildLenPrefixedBody(key, value))
      .Then([](Future<dist::RpcClient::Response> f) { f.Get(); });
}

double ShardRouter::Imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t ops : per_shard_ops_) {
    total += ops;
    max = std::max(max, ops);
  }
  if (total == 0) {
    return 0.0;
  }
  double mean = static_cast<double>(total) / static_cast<double>(per_shard_ops_.size());
  return static_cast<double>(max) / mean - 1.0;
}

}  // namespace memcached
}  // namespace ebbrt
