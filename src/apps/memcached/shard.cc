#include "src/apps/memcached/shard.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/apps/memcached/protocol.h"
#include "src/event/timer.h"
#include "src/rcu/rcu.h"

namespace ebbrt {
namespace memcached {

std::string ShardRecordKey(std::size_t shard_index) {
  return "service/memcached/" + std::to_string(shard_index);
}

std::string EncodeShardRecord(Ipv4Addr addr, EbbId service) {
  return addr.ToString() + "#" + std::to_string(service);
}

bool ParseShardRecord(const std::string& record, ShardEndpoint* out) {
  unsigned a, b, c, d;
  unsigned long service = 0;
  if (std::sscanf(record.c_str(), "%u.%u.%u.%u#%lu", &a, &b, &c, &d, &service) != 5 ||
      a > 255 || b > 255 || c > 255 || d > 255 || service == 0 ||
      service > 0xffffffffull) {
    return false;
  }
  out->addr = Ipv4Addr::Of(a, b, c, d);
  out->service = static_cast<EbbId>(service);
  return true;
}

// --- ShardService -----------------------------------------------------------------------------

ShardService::ShardService(Runtime& runtime, std::size_t shard_index, Config config)
    : dist::RpcServer(runtime, kShardServiceBase + static_cast<EbbId>(shard_index)),
      shard_index_(shard_index), config_(std::move(config)),
      store_(RcuManagerRoot::For(runtime)) {
  Kassert(shard_index < kMaxShards, "ShardService: shard index out of range");
}

void ShardService::HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                              std::uint32_t /*aux*/, std::unique_ptr<IOBuf> body) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (config_.on_request) {
    config_.on_request();
  }
  switch (opcode) {
    case kShardOpGet: {
      std::size_t body_len = body != nullptr ? body->ComputeChainDataLength() : 0;
      if (body_len > kMaxKeyLen) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        ReplyError(from, request_id, "shard: oversized key");
        return;
      }
      // A single-segment body (the common case) is looked up as a view straight over the
      // wire buffer; only a key that straddled segments pays the flatten.
      std::string key_storage;
      std::string_view key;
      if (body != nullptr && body->Next() == nullptr) {
        key = {reinterpret_cast<const char*>(body->Data()), body->Length()};
      } else {
        key_storage = dist::ChainToString(body.get());
        key = key_storage;
      }
      ItemPtr item = store_.Get(key);
      if (item == nullptr) {
        Reply(from, request_id, /*aux=*/0, nullptr);
        return;
      }
      // The reply body is a refcounted view of the stored item — no copy between the
      // store and the wire, exactly like the single-node GET path.
      Reply(from, request_id, /*aux=*/1, MakeValueBuffer(std::move(item)));
      return;
    }
    case kShardOpSet: {
      // Bounds come straight off the wire lengths ([u32 klen][key][value]) before any byte
      // of the body is flattened: an oversized item is rejected without sizing a buffer.
      std::size_t body_len = body != nullptr ? body->ComputeChainDataLength() : 0;
      std::uint32_t klen_net = 0;
      if (body_len >= sizeof(klen_net)) {
        std::uint8_t* dst = reinterpret_cast<std::uint8_t*>(&klen_net);
        std::size_t need = sizeof(klen_net);
        for (const IOBuf* b = body.get(); b != nullptr && need > 0; b = b->Next()) {
          std::size_t take = std::min(need, b->Length());
          std::memcpy(dst, b->Data(), take);
          dst += take;
          need -= take;
        }
      }
      std::size_t klen = NetToHost32(klen_net);
      if (body_len >= sizeof(klen_net) && sizeof(klen_net) + klen <= body_len &&
          (klen > kMaxKeyLen || body_len - sizeof(klen_net) - klen > kMaxValueLen)) {
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        ReplyError(from, request_id, "shard: oversized item");
        return;
      }
      std::string key;
      std::string value;
      if (!dist::ParseLenPrefixedBody(dist::ChainToString(body.get()), &key, &value)) {
        ReplyError(from, request_id, "shard: malformed SET body");
        return;
      }
      store_.Set(key, value, 0);
      Reply(from, request_id, /*aux=*/1, nullptr);
      return;
    }
    case kShardOpMultiGet: {
      std::vector<std::string> keys;
      if (!dist::ParseKeyVectorBody(body.get(), &keys)) {
        // Malformed batch body: reject through the normal RPC error path (the caller's
        // whole-batch future fails), never assert — the frame itself was sound.
        ReplyError(from, request_id, "shard: malformed MULTIGET body");
        return;
      }
      std::vector<std::unique_ptr<IOBuf>> values;
      values.reserve(keys.size());
      std::uint32_t hits = 0;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        // The batch is N logical requests under one frame: charge modeled service time per
        // KEY, not per frame (the top-of-function on_request covered key 0) — the bulk win
        // measured by benches is header/dispatch amortization, not discounted work.
        if (i > 0 && config_.on_request) {
          config_.on_request();
        }
        if (keys[i].size() > kMaxKeyLen) {
          // Per-item bound inside a batch: an oversized key can't be stored, so it simply
          // misses — but it is counted, since a conforming client never sends one.
          bad_frames_.fetch_add(1, std::memory_order_relaxed);
          values.push_back(nullptr);
          continue;
        }
        ItemPtr item = store_.Get(keys[i]);
        if (item == nullptr) {
          values.push_back(nullptr);
          continue;
        }
        hits++;
        values.push_back(MakeValueBuffer(std::move(item)));
      }
      Reply(from, request_id, /*aux=*/hits, BuildMultiGetReply(std::move(values)));
      return;
    }
  }
  ReplyError(from, request_id, "shard: unknown opcode");
}

// --- kShardOpMultiGet reply marshaling --------------------------------------------------------

std::unique_ptr<IOBuf> BuildMultiGetReply(std::vector<std::unique_ptr<IOBuf>> values) {
  // Per entry: one 4-byte status-word buffer, then the value chain itself (spliced, not
  // copied). JoinChains splices the whole record list in one O(elements) pass.
  std::vector<std::unique_ptr<IOBuf>> parts;
  parts.reserve(values.size() * 2);
  for (auto& value : values) {
    auto word_buf = IOBuf::CreateReserveFor<sizeof(std::uint32_t)>(0);
    word_buf->Append(sizeof(std::uint32_t));
    std::uint32_t word = 0;
    if (value != nullptr) {
      word = HostToNet32(kMultiGetFoundBit |
                         static_cast<std::uint32_t>(value->ComputeChainDataLength()));
    }
    std::memcpy(word_buf->WritableData(), &word, sizeof(word));
    parts.push_back(std::move(word_buf));
    if (value != nullptr) {
      parts.push_back(std::move(value));
    }
  }
  return IOBuf::JoinChains(std::move(parts));
}

bool ParseMultiGetReply(std::unique_ptr<IOBuf> body, std::size_t expected,
                        std::vector<ShardRouter::GetResult>* out) {
  out->clear();
  out->reserve(expected);
  dist::ChainSplitter splitter(std::move(body));
  for (std::size_t i = 0; i < expected; ++i) {
    std::uint32_t word = 0;
    if (!splitter.ReadU32(&word)) {
      return false;  // fewer records than the request had keys
    }
    ShardRouter::GetResult result;
    result.found = (word & kMultiGetFoundBit) != 0;
    std::uint32_t len = word & ~kMultiGetFoundBit;
    if (result.found && len != 0) {
      // Zero-copy: the value is split off as a shared view of the reply chain's storage.
      result.value = splitter.SplitBytes(len);
      if (result.value == nullptr) {
        return false;  // value bytes ran short of the declared length
      }
    }
    out->push_back(std::move(result));
  }
  return splitter.Remaining() == 0;  // exact consumption: trailing bytes are malformed
}

// --- Discovery --------------------------------------------------------------------------------

Future<void> AnnounceShard(Runtime& runtime, Ipv4Addr frontend, std::size_t shard_index,
                           Ipv4Addr self) {
  EbbId service = kShardServiceBase + static_cast<EbbId>(shard_index);
  return dist::GlobalIdMap::For(runtime, frontend)
      .Set(ShardRecordKey(shard_index), EncodeShardRecord(self, service));
}

Future<std::vector<ShardEndpoint>> DiscoverShards(Runtime& runtime, Ipv4Addr frontend,
                                                  std::size_t num_shards) {
  // Shards announce concurrently with clients discovering, so a missing record is the
  // normal bring-up race: GetWithRetry absorbs it with bounded backoff (a shard that never
  // announces surfaces as a clean error through the future). A record that exists but
  // fails to parse never heals, so it fails immediately.
  struct Discovery {
    dist::GlobalIdMap* map = nullptr;
    std::size_t num_shards = 0;
    std::vector<ShardEndpoint> endpoints;
    Promise<std::vector<ShardEndpoint>> done;
    std::function<void(std::size_t)> next;
  };
  auto state = std::make_shared<Discovery>();
  state->map = &dist::GlobalIdMap::For(runtime, frontend);
  state->num_shards = num_shards;
  state->endpoints.resize(num_shards);
  Future<std::vector<ShardEndpoint>> result = state->done.GetFuture();
  // Resolve sequentially (N is small and this runs once at bring-up).
  state->next = [state](std::size_t index) {
    if (index == state->num_shards) {
      state->done.SetValue(std::move(state->endpoints));
      state->next = nullptr;  // break the self-capture cycle
      return;
    }
    dist::GlobalIdMap::RetryPolicy policy;
    policy.initial_backoff_ns = 100'000;  // announces land within a handful of RTTs
    policy.max_backoff_ns = 4'000'000;
    state->map->GetWithRetry(ShardRecordKey(index), policy)
        .Then([state, index](Future<std::string> f) {
          std::string record;
          try {
            record = f.Get();
            if (!ParseShardRecord(record, &state->endpoints[index])) {
              throw std::runtime_error("DiscoverShards: malformed record for " +
                                       ShardRecordKey(index) + ": " + record);
            }
          } catch (...) {
            state->done.SetException(std::current_exception());
            state->next = nullptr;
            return;
          }
          state->next(index + 1);
        });
  };
  state->next(0);
  return result;
}

// --- Versioned ring record --------------------------------------------------------------------

std::string EncodeRingRecord(const RingRecord& record) {
  std::string out = std::to_string(record.epoch) + "|";
  for (std::size_t i = 0; i < record.shards.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += EncodeShardRecord(record.shards[i].addr, record.shards[i].service);
  }
  return out;
}

bool ParseRingRecord(const std::string& record, RingRecord* out) {
  std::size_t bar = record.find('|');
  if (bar == std::string::npos || bar == 0) {
    return false;
  }
  std::uint64_t epoch = 0;
  for (std::size_t i = 0; i < bar; ++i) {
    char c = record[i];
    if (c < '0' || c > '9') {
      return false;
    }
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (epoch > (~std::uint64_t{0} - digit) / 10) {
      return false;  // epoch overflows u64: nonsense record
    }
    epoch = epoch * 10 + digit;
  }
  std::vector<ShardEndpoint> shards;
  std::size_t pos = bar + 1;
  while (pos <= record.size()) {
    std::size_t comma = record.find(',', pos);
    std::size_t end = (comma == std::string::npos) ? record.size() : comma;
    ShardEndpoint endpoint;
    if (end == pos || !ParseShardRecord(record.substr(pos, end - pos), &endpoint)) {
      return false;  // empty or malformed endpoint entry
    }
    shards.push_back(endpoint);
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (shards.empty()) {
    return false;  // an empty shard list can never be routed to
  }
  out->epoch = epoch;
  out->shards = std::move(shards);
  return true;
}

Future<void> PublishRing(Runtime& runtime, Ipv4Addr frontend, const RingRecord& record) {
  return dist::GlobalIdMap::For(runtime, frontend)
      .Set(kRingRecordKey, EncodeRingRecord(record));
}

Future<RingRecord> FetchRing(Runtime& runtime, Ipv4Addr frontend) {
  return dist::GlobalIdMap::For(runtime, frontend)
      .GetWithRetry(kRingRecordKey)
      .Then([](Future<std::string> f) {
        std::string raw = f.Get();
        RingRecord record;
        if (!ParseRingRecord(raw, &record)) {
          throw std::runtime_error("FetchRing: malformed ring record: " + raw);
        }
        return record;
      });
}

// --- ShardRouter ------------------------------------------------------------------------------

ShardRouter::ShardRouter(Runtime& runtime, std::vector<ShardEndpoint> shards,
                         std::size_t vnodes_per_shard)
    : ShardRouter(runtime, RingRecord{/*epoch=*/0, std::move(shards)},
                  Config{vnodes_per_shard, /*replication=*/1, dist::CallOptions{},
                         dist::CallOptions{}, /*ring_refresh_ns=*/0, Ipv4Addr::Any()}) {}

ShardRouter::ShardRouter(Runtime& runtime, RingRecord ring, Config config)
    : runtime_(runtime), config_(std::move(config)) {
  Kassert(!ring.shards.empty(), "ShardRouter: no shards");
  Kassert(config_.replication >= 1, "ShardRouter: replication must be >= 1");
  ring_ = BuildRing(ring, config_.vnodes_per_shard);
  suspect_.assign(ring_->shards.size(), 0);
  per_shard_ops_.assign(ring_->shards.size(), 0);
  // Dial every shard up front (the pre-ring behavior); later epochs dial lazily on first
  // routed op.
  for (const ShardEndpoint& endpoint : ring_->shards) {
    ClientFor(endpoint);
  }
  StartRingWatcher();  // no-op unless Config asked for a periodic refresh
  // Join the machine's telemetry plane: the router's failover state machine and its RPC
  // clients' fault counters become registry metrics, sampled only at snapshot time. The
  // router is per-core client state, so samples are a benign racy read of plain counters.
  obs_collector_ = obs::ObsRoot::For(runtime_).AddCollector(
      [this](std::vector<obs::ObsRoot::Sample>& out) {
        out.emplace_back("router_failovers", static_cast<double>(stats_.failovers));
        out.emplace_back("router_suspects_marked",
                         static_cast<double>(stats_.suspects_marked));
        out.emplace_back("router_ring_swaps", static_cast<double>(stats_.ring_swaps));
        out.emplace_back("router_stale_rings", static_cast<double>(stats_.stale_rings));
        out.emplace_back("router_malformed_rings",
                         static_cast<double>(stats_.malformed_rings));
        out.emplace_back("router_refresh_failures",
                         static_cast<double>(stats_.refresh_failures));
        out.emplace_back("router_write_skips", static_cast<double>(stats_.write_skips));
        out.emplace_back("router_ring_epoch", static_cast<double>(ring_->epoch));
        std::uint64_t timeouts = 0, retries = 0, late_drops = 0, peer_failures = 0,
                      pending = 0;
        for (const auto& entry : clients_) {
          const dist::RpcClient::Stats& s = entry.second->stats();
          timeouts += s.timeouts.load(std::memory_order_relaxed);
          retries += s.retries.load(std::memory_order_relaxed);
          late_drops += s.late_drops.load(std::memory_order_relaxed);
          peer_failures += s.peer_failures.load(std::memory_order_relaxed);
          pending += entry.second->pending_calls();
        }
        out.emplace_back("rpc_timeouts", static_cast<double>(timeouts));
        out.emplace_back("rpc_retries", static_cast<double>(retries));
        out.emplace_back("rpc_late_drops", static_cast<double>(late_drops));
        out.emplace_back("rpc_peer_failures", static_cast<double>(peer_failures));
        out.emplace_back("rpc_pending_calls", static_cast<double>(pending));
      });
}

ShardRouter::~ShardRouter() {
  StopRingWatcher();
  if (obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_)) {
    obs_root->RemoveCollector(obs_collector_);
  }
}

std::shared_ptr<const ShardRouter::Ring> ShardRouter::BuildRing(
    const RingRecord& record, std::size_t vnodes_per_shard) {
  auto ring = std::make_shared<Ring>();
  ring->epoch = record.epoch;
  ring->shards = record.shards;
  ring->points.reserve(record.shards.size() * vnodes_per_shard);
  for (std::size_t i = 0; i < record.shards.size(); ++i) {
    for (std::size_t v = 0; v < vnodes_per_shard; ++v) {
      // Ring points are named by shard INDEX, not address: the same shard count always
      // yields the same placement, so rebuilding a router (or a second client machine
      // building its own) routes identically.
      std::uint64_t point =
          ShardHash("shard/" + std::to_string(i) + "/vnode/" + std::to_string(v));
      ring->points.emplace_back(point, static_cast<std::uint32_t>(i));
    }
  }
  std::sort(ring->points.begin(), ring->points.end());
  return ring;
}

std::vector<std::uint32_t> ShardRouter::Ring::ReplicasFor(std::uint64_t hash,
                                                          std::size_t r) const {
  r = std::min(r, shards.size());
  std::vector<std::uint32_t> replicas;
  replicas.reserve(r);
  // First ring point clockwise from the key's hash (wrapping past the top), then keep
  // walking clockwise collecting DISTINCT shards until R are found.
  auto it = std::upper_bound(points.begin(), points.end(),
                             std::make_pair(hash, std::uint32_t{0xffffffff}));
  for (std::size_t walked = 0; walked < points.size() && replicas.size() < r; ++walked) {
    if (it == points.end()) {
      it = points.begin();
    }
    std::uint32_t shard = it->second;
    if (std::find(replicas.begin(), replicas.end(), shard) == replicas.end()) {
      replicas.push_back(shard);
    }
    ++it;
  }
  return replicas;
}

std::size_t ShardRouter::ShardFor(std::string_view key) const {
  return ring_->ReplicasFor(ShardHash(key), 1).front();
}

std::vector<std::uint32_t> ShardRouter::ReadOrder(const Ring& ring, std::string_view key) {
  std::vector<std::uint32_t> replicas =
      ring.ReplicasFor(ShardHash(key), config_.replication);
  // Healthy replicas first, ring order preserved within each class: a suspect primary stops
  // eating a timeout per read, but stays reachable as the last resort.
  std::stable_partition(replicas.begin(), replicas.end(),
                        [this](std::uint32_t shard) { return suspect_[shard] == 0; });
  return replicas;
}

dist::RpcClient* ShardRouter::ClientFor(const ShardEndpoint& endpoint) {
  auto it = clients_.find(endpoint.service);
  if (it != clients_.end()) {
    if (it->second->server() == endpoint.addr) {
      return it->second.get();
    }
    // The service moved machines across an epoch: re-dial. Calls pending on the old client
    // fail with RpcPeerLost through its teardown — they were addressed to a dead home.
    clients_.erase(it);
  }
  auto client =
      std::make_unique<dist::RpcClient>(runtime_, endpoint.service, endpoint.addr);
  dist::RpcClient* raw = client.get();
  clients_.emplace(endpoint.service, std::move(client));
  return raw;
}

void ShardRouter::MarkSuspect(const std::shared_ptr<const Ring>& ring,
                              std::uint32_t shard) {
  if (ring != ring_) {
    return;  // stale snapshot: the swap that replaced it already cleared suspicion
  }
  if (suspect_[shard] == 0) {
    suspect_[shard] = 1;
    ++stats_.suspects_marked;
  }
  // A transport failure is the best hint that membership moved: poll the ring now instead
  // of waiting out the watcher period.
  RefreshRing();
}

ShardRouter::OpTrace ShardRouter::BeginOpTrace() {
  OpTrace trace;
  obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_);
  if (obs_root == nullptr || !obs_root->tracing_on()) {
    return trace;
  }
  // The op's root span: adopt the core's ambient trace (a traced handler driving the
  // router) or start a fresh one. Every shard RPC the op issues — including failover
  // re-issues rounds later — parents into this span.
  obs::MetricRegistry& rep = obs_root->RepFor(CurrentContext().machine_core);
  obs::MetricRegistry::TraceContext ctx = rep.current();
  trace.trace_id = ctx.trace_id != 0 ? ctx.trace_id : rep.NewTraceId();
  trace.parent_span = ctx.trace_id != 0 ? ctx.span_id : 0;
  trace.span_id = rep.NewSpanId();
  trace.start_ns = obs_root->NowNs();
  return trace;
}

void ShardRouter::FinishOpTrace(const OpTrace& trace, std::uint16_t opcode,
                                obs::SpanStatus status) {
  if (trace.trace_id == 0) {
    return;
  }
  obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_);
  if (obs_root == nullptr) {
    return;
  }
  std::size_t core = CurrentContext().machine_core;
  obs::SpanRecord span;
  span.trace_id = trace.trace_id;
  span.span_id = trace.span_id;
  span.parent_span = trace.parent_span;
  span.service = kNullEbbId;  // logical router op, not a wire service
  span.opcode = opcode;
  span.kind = obs::SpanKind::kLocal;
  span.status = status;
  span.start_ns = trace.start_ns;
  span.end_ns = obs_root->NowNs();
  span.attempts = 1;
  span.core = static_cast<std::uint32_t>(core);
  obs_root->RepFor(core).RecordSpan(span);
}

Future<ShardRouter::GetResult> ShardRouter::Get(std::string_view key) {
  std::shared_ptr<const Ring> ring = ring_;  // op-wide snapshot (RCU read side)
  std::vector<std::uint32_t> replicas = ReadOrder(*ring, key);
  OpTrace trace = BeginOpTrace();
  Future<GetResult> result =
      TryGet(std::move(ring), std::string(key), std::move(replicas), 0, trace);
  if (trace.trace_id == 0) {
    return result;
  }
  return result.Then([this, trace](Future<GetResult> f) -> GetResult {
    try {
      GetResult r = f.Get();
      FinishOpTrace(trace, kShardOpGet, obs::SpanStatus::kOk);
      return r;
    } catch (...) {
      FinishOpTrace(trace, kShardOpGet, obs::SpanStatus::kError);
      throw;
    }
  });
}

Future<ShardRouter::GetResult> ShardRouter::TryGet(std::shared_ptr<const Ring> ring,
                                                   std::string key,
                                                   std::vector<std::uint32_t> replicas,
                                                   std::size_t index, OpTrace trace) {
  std::uint32_t shard = replicas[index];
  if (shard < per_shard_ops_.size()) {
    per_shard_ops_[shard]++;
  }
  // The shard RPC is issued under the op's root span as ambient context, so the client span
  // it records parents correctly — on the first attempt AND on failover re-issues.
  std::optional<obs::ObsRoot::TraceScope> scope;
  if (trace.trace_id != 0) {
    if (obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_)) {
      scope.emplace(*obs_root, trace.trace_id, trace.span_id);
    }
  }
  return ClientFor(ring->shards[shard])
      ->Call(kShardOpGet, 0, IOBuf::CopyBuffer(key), config_.read_options)
      .Then([this, ring = std::move(ring), key = std::move(key),
             replicas = std::move(replicas), index,
             trace](Future<dist::RpcClient::Response> f) mutable -> Future<GetResult> {
        try {
          dist::RpcClient::Response response = f.Get();
          GetResult result;
          result.found = response.aux != 0;
          result.value = std::move(response.body);
          return MakeReadyFuture<GetResult>(std::move(result));
        } catch (const dist::RpcTransportError&) {
          // No response will ever come from this replica: suspect it and try the key's
          // next one. Application errors (server threw) fall through untouched.
          MarkSuspect(ring, replicas[index]);
          if (index + 1 < replicas.size()) {
            ++stats_.failovers;
            return TryGet(std::move(ring), std::move(key), std::move(replicas), index + 1,
                          trace);
          }
          throw;  // every replica failed: surface the last transport error
        }
      });
}

Future<void> ShardRouter::Set(std::string_view key, std::string_view value) {
  std::shared_ptr<const Ring> ring = ring_;
  std::vector<std::uint32_t> replicas =
      ring->ReplicasFor(ShardHash(key), config_.replication);
  bool all_suspect = true;
  for (std::uint32_t shard : replicas) {
    if (suspect_[shard] == 0) {
      all_suspect = false;
      break;
    }
  }
  OpTrace trace = BeginOpTrace();
  std::optional<obs::ObsRoot::TraceScope> scope;
  if (trace.trace_id != 0) {
    if (obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_)) {
      scope.emplace(*obs_root, trace.trace_id, trace.span_id);
    }
  }
  std::vector<Future<void>> pending;
  pending.reserve(replicas.size());
  for (std::uint32_t shard : replicas) {
    if (!all_suspect && suspect_[shard] != 0) {
      ++stats_.write_skips;  // don't burn a deadline on a replica believed dead
      continue;
    }
    per_shard_ops_[shard]++;
    pending.push_back(
        ClientFor(ring->shards[shard])
            ->Call(kShardOpSet, 0, dist::BuildLenPrefixedBody(key, value),
                   config_.write_options)
            .Then([this, ring, shard](Future<dist::RpcClient::Response> f) {
              try {
                f.Get();
              } catch (const dist::RpcTransportError&) {
                MarkSuspect(ring, shard);
                throw;
              }
            }));
  }
  Future<void> joined = WhenAll(std::move(pending)).Then([](Future<void> f) { f.Get(); });
  if (trace.trace_id == 0) {
    return joined;
  }
  return joined.Then([this, trace](Future<void> f) {
    try {
      f.Get();
      FinishOpTrace(trace, kShardOpSet, obs::SpanStatus::kOk);
    } catch (...) {
      FinishOpTrace(trace, kShardOpSet, obs::SpanStatus::kError);
      throw;
    }
  });
}

Future<std::vector<ShardRouter::GetResult>> ShardRouter::MultiGet(
    const std::vector<std::string_view>& keys) {
  if (keys.empty()) {
    return MakeReadyFuture<std::vector<GetResult>>(std::vector<GetResult>{});
  }
  // Keys are copied once into the shared batch state: a group re-issued after a replica
  // failure runs long after the caller's string_views died.
  auto state = std::make_shared<MgState>();
  state->ring = ring_;
  state->keys.assign(keys.begin(), keys.end());
  state->results.resize(keys.size());
  state->trace = BeginOpTrace();
  std::vector<std::size_t> slots(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    slots[i] = i;
  }
  // Shards that already failed THIS BATCH: a re-issued group must not bounce back to the
  // replica that just timed out (suspect_ alone can't guarantee that — a ring swap between
  // rounds clears it).
  auto excluded = std::make_shared<std::vector<char>>(state->ring->shards.size(), 0);
  return MultiGetSlots(state, std::move(slots), excluded)
      .Then([this, state](Future<void> f) {
        try {
          f.Get();
        } catch (...) {
          FinishOpTrace(state->trace, kShardOpMultiGet, obs::SpanStatus::kError);
          throw;
        }
        FinishOpTrace(state->trace, kShardOpMultiGet, obs::SpanStatus::kOk);
        return std::move(state->results);
      });
}

Future<void> ShardRouter::MultiGetSlots(std::shared_ptr<MgState> state,
                                        std::vector<std::size_t> slots,
                                        std::shared_ptr<std::vector<char>> excluded) {
  // Scatter: each key goes to its first replica that hasn't failed this batch, preferring
  // non-suspect ones. slots group by chosen shard so the gather can write results straight
  // into request-order slots (duplicate keys simply occupy two slots of a sub-batch).
  constexpr std::uint32_t kNoShard = 0xffffffffu;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> groups;
  for (std::size_t slot : slots) {
    std::vector<std::uint32_t> replicas =
        state->ring->ReplicasFor(ShardHash(state->keys[slot]), config_.replication);
    std::uint32_t chosen = kNoShard;
    for (std::uint32_t shard : replicas) {
      if ((*excluded)[shard] == 0 && suspect_[shard] == 0) {
        chosen = shard;
        break;
      }
    }
    if (chosen == kNoShard) {
      for (std::uint32_t shard : replicas) {
        if ((*excluded)[shard] == 0) {
          chosen = shard;
          break;
        }
      }
    }
    if (chosen == kNoShard) {
      return MakeFailedFuture<void>(std::make_exception_ptr(dist::RpcPeerLost(
          "shard: every replica of '" + state->keys[slot] + "' failed")));
    }
    groups[chosen].push_back(slot);
  }
  // Scatter under the batch's root span: every per-shard RPC — first round or a failover
  // re-issue rounds later — records its client span as a child of the same root.
  std::optional<obs::ObsRoot::TraceScope> scope;
  if (state->trace.trace_id != 0) {
    if (obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_)) {
      scope.emplace(*obs_root, state->trace.trace_id, state->trace.span_id);
    }
  }
  std::vector<Future<void>> pending;
  pending.reserve(groups.size());
  for (auto& group : groups) {
    std::uint32_t shard = group.first;
    std::vector<std::size_t> group_slots = std::move(group.second);
    std::size_t count = group_slots.size();
    if (shard < per_shard_ops_.size()) {
      per_shard_ops_[shard] += count;
    }
    std::vector<std::string_view> group_keys;
    group_keys.reserve(count);
    for (std::size_t slot : group_slots) {
      group_keys.push_back(state->keys[slot]);
    }
    // ONE RPC per shard touched: the whole sub-batch rides a single kShardOpMultiGet frame
    // (and, via the Messenger's auto-cork, the whole fan-out leaves this event as at most
    // one wire segment per shard).
    pending.push_back(
        ClientFor(state->ring->shards[shard])
            ->Call(kShardOpMultiGet, static_cast<std::uint32_t>(count),
                   dist::BuildKeyVectorBody(group_keys), config_.read_options)
            .Then([this, state, excluded, shard, group_slots = std::move(group_slots),
                   count](Future<dist::RpcClient::Response> f) mutable -> Future<void> {
              try {
                dist::RpcClient::Response response = f.Get();
                std::vector<GetResult> partial;
                if (!ParseMultiGetReply(std::move(response.body), count, &partial)) {
                  throw std::runtime_error("shard: malformed MULTIGET reply");
                }
                for (std::size_t j = 0; j < count; ++j) {
                  state->results[group_slots[j]] = std::move(partial[j]);
                }
                return MakeReadyFuture<void>();
              } catch (const dist::RpcTransportError&) {
                // Exactly this group's keys re-scatter to their next replicas; groups that
                // answered keep their results (the batch fails only when some key exhausts
                // its replica set). Application errors propagate through WhenAll untouched.
                MarkSuspect(state->ring, shard);
                (*excluded)[shard] = 1;
                ++stats_.failovers;
                return MultiGetSlots(state, std::move(group_slots), excluded);
              }
            }));
  }
  return WhenAll(std::move(pending)).Then([](Future<void> f) { f.Get(); });
}

bool ShardRouter::AdoptRing(const RingRecord& record) {
  if (record.shards.empty()) {
    return false;  // never adopt an unroutable ring (ParseRingRecord rejects these anyway)
  }
  if (record.epoch < ring_->epoch) {
    ++stats_.stale_rings;
    std::fprintf(stderr,
                 "ShardRouter: stale ring record (epoch %llu < installed %llu), keeping "
                 "last good ring\n",
                 static_cast<unsigned long long>(record.epoch),
                 static_cast<unsigned long long>(ring_->epoch));
    return false;
  }
  if (record.epoch == ring_->epoch) {
    return false;  // the watcher re-reading the installed epoch: the quiet steady state
  }
  bool same_shards = record.shards.size() == ring_->shards.size();
  for (std::size_t i = 0; same_shards && i < record.shards.size(); ++i) {
    same_shards = record.shards[i].addr == ring_->shards[i].addr &&
                  record.shards[i].service == ring_->shards[i].service;
  }
  // The swap: in-flight ops drain against the snapshot they captured; everything issued
  // after this line routes on the new epoch with a clean slate of suspicion.
  ring_ = BuildRing(record, config_.vnodes_per_shard);
  suspect_.assign(ring_->shards.size(), 0);
  if (!same_shards) {
    per_shard_ops_.assign(ring_->shards.size(), 0);
  }
  ++stats_.ring_swaps;
  return true;
}

void ShardRouter::RefreshRing() {
  if (config_.frontend.IsAny() || refresh_inflight_) {
    return;
  }
  refresh_inflight_ = true;
  // Plain Get, no retry ladder: the watcher (or the next suspect mark) IS the retry.
  dist::GlobalIdMap::For(runtime_, config_.frontend)
      .Get(kRingRecordKey)
      .Then([this](Future<std::string> f) {
        refresh_inflight_ = false;
        std::string raw;
        try {
          raw = f.Get();
        } catch (...) {
          ++stats_.refresh_failures;  // no record / frontend unreachable: keep last good
          return;
        }
        RingRecord record;
        if (!ParseRingRecord(raw, &record)) {
          ++stats_.malformed_rings;
          std::fprintf(stderr,
                       "ShardRouter: malformed ring record '%s', keeping last good ring "
                       "(epoch %llu)\n",
                       raw.c_str(), static_cast<unsigned long long>(ring_->epoch));
          return;
        }
        AdoptRing(record);
      });
}

void ShardRouter::StartRingWatcher() {
  if (watcher_timer_ != 0 || config_.ring_refresh_ns == 0 || config_.frontend.IsAny()) {
    return;
  }
  watcher_timer_ = Timer::Instance()->Start(
      config_.ring_refresh_ns, [this] { RefreshRing(); }, /*periodic=*/true);
}

void ShardRouter::StopRingWatcher() {
  if (watcher_timer_ == 0) {
    return;
  }
  Timer::Instance()->Stop(watcher_timer_);
  watcher_timer_ = 0;
}

double ShardRouter::Imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t ops : per_shard_ops_) {
    total += ops;
    max = std::max(max, ops);
  }
  if (total == 0) {
    return 0.0;
  }
  double mean = static_cast<double>(total) / static_cast<double>(per_shard_ops_.size());
  return static_cast<double>(max) / mean - 1.0;
}

}  // namespace memcached
}  // namespace ebbrt
