#include "src/apps/memcached/shard.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/rcu/rcu.h"

namespace ebbrt {
namespace memcached {

std::string ShardRecordKey(std::size_t shard_index) {
  return "service/memcached/" + std::to_string(shard_index);
}

std::string EncodeShardRecord(Ipv4Addr addr, EbbId service) {
  return addr.ToString() + "#" + std::to_string(service);
}

bool ParseShardRecord(const std::string& record, ShardEndpoint* out) {
  unsigned a, b, c, d;
  unsigned long service = 0;
  if (std::sscanf(record.c_str(), "%u.%u.%u.%u#%lu", &a, &b, &c, &d, &service) != 5 ||
      a > 255 || b > 255 || c > 255 || d > 255 || service == 0 ||
      service > 0xffffffffull) {
    return false;
  }
  out->addr = Ipv4Addr::Of(a, b, c, d);
  out->service = static_cast<EbbId>(service);
  return true;
}

// --- ShardService -----------------------------------------------------------------------------

ShardService::ShardService(Runtime& runtime, std::size_t shard_index, Config config)
    : dist::RpcServer(runtime, kShardServiceBase + static_cast<EbbId>(shard_index)),
      shard_index_(shard_index), config_(std::move(config)),
      store_(RcuManagerRoot::For(runtime)) {
  Kassert(shard_index < kMaxShards, "ShardService: shard index out of range");
}

void ShardService::HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                              std::uint32_t /*aux*/, std::unique_ptr<IOBuf> body) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (config_.on_request) {
    config_.on_request();
  }
  switch (opcode) {
    case kShardOpGet: {
      std::string key = dist::ChainToString(body.get());
      ItemRef item = store_.Get(key);
      if (item == nullptr) {
        Reply(from, request_id, /*aux=*/0, nullptr);
        return;
      }
      // The reply body is a refcounted view of the stored item — no copy between the
      // store and the wire, exactly like the single-node GET path.
      Reply(from, request_id, /*aux=*/1, MakeValueBuffer(std::move(item)));
      return;
    }
    case kShardOpSet: {
      std::string key;
      std::string value;
      if (!dist::ParseLenPrefixedBody(dist::ChainToString(body.get()), &key, &value)) {
        ReplyError(from, request_id, "shard: malformed SET body");
        return;
      }
      store_.Set(key, std::move(value), 0);
      Reply(from, request_id, /*aux=*/1, nullptr);
      return;
    }
    case kShardOpMultiGet: {
      std::vector<std::string> keys;
      if (!dist::ParseKeyVectorBody(body.get(), &keys)) {
        // Malformed batch body: reject through the normal RPC error path (the caller's
        // whole-batch future fails), never assert — the frame itself was sound.
        ReplyError(from, request_id, "shard: malformed MULTIGET body");
        return;
      }
      std::vector<std::unique_ptr<IOBuf>> values;
      values.reserve(keys.size());
      std::uint32_t hits = 0;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        // The batch is N logical requests under one frame: charge modeled service time per
        // KEY, not per frame (the top-of-function on_request covered key 0) — the bulk win
        // measured by benches is header/dispatch amortization, not discounted work.
        if (i > 0 && config_.on_request) {
          config_.on_request();
        }
        ItemRef item = store_.Get(keys[i]);
        if (item == nullptr) {
          values.push_back(nullptr);
          continue;
        }
        hits++;
        values.push_back(MakeValueBuffer(std::move(item)));
      }
      Reply(from, request_id, /*aux=*/hits, BuildMultiGetReply(std::move(values)));
      return;
    }
  }
  ReplyError(from, request_id, "shard: unknown opcode");
}

// --- kShardOpMultiGet reply marshaling --------------------------------------------------------

std::unique_ptr<IOBuf> BuildMultiGetReply(std::vector<std::unique_ptr<IOBuf>> values) {
  // Per entry: one 4-byte status-word buffer, then the value chain itself (spliced, not
  // copied). JoinChains splices the whole record list in one O(elements) pass.
  std::vector<std::unique_ptr<IOBuf>> parts;
  parts.reserve(values.size() * 2);
  for (auto& value : values) {
    auto word_buf = IOBuf::CreateReserveFor<sizeof(std::uint32_t)>(0);
    word_buf->Append(sizeof(std::uint32_t));
    std::uint32_t word = 0;
    if (value != nullptr) {
      word = HostToNet32(kMultiGetFoundBit |
                         static_cast<std::uint32_t>(value->ComputeChainDataLength()));
    }
    std::memcpy(word_buf->WritableData(), &word, sizeof(word));
    parts.push_back(std::move(word_buf));
    if (value != nullptr) {
      parts.push_back(std::move(value));
    }
  }
  return IOBuf::JoinChains(std::move(parts));
}

bool ParseMultiGetReply(std::unique_ptr<IOBuf> body, std::size_t expected,
                        std::vector<ShardRouter::GetResult>* out) {
  out->clear();
  out->reserve(expected);
  dist::ChainSplitter splitter(std::move(body));
  for (std::size_t i = 0; i < expected; ++i) {
    std::uint32_t word = 0;
    if (!splitter.ReadU32(&word)) {
      return false;  // fewer records than the request had keys
    }
    ShardRouter::GetResult result;
    result.found = (word & kMultiGetFoundBit) != 0;
    std::uint32_t len = word & ~kMultiGetFoundBit;
    if (result.found && len != 0) {
      // Zero-copy: the value is split off as a shared view of the reply chain's storage.
      result.value = splitter.SplitBytes(len);
      if (result.value == nullptr) {
        return false;  // value bytes ran short of the declared length
      }
    }
    out->push_back(std::move(result));
  }
  return splitter.Remaining() == 0;  // exact consumption: trailing bytes are malformed
}

// --- Discovery --------------------------------------------------------------------------------

Future<void> AnnounceShard(Runtime& runtime, Ipv4Addr frontend, std::size_t shard_index,
                           Ipv4Addr self) {
  EbbId service = kShardServiceBase + static_cast<EbbId>(shard_index);
  return dist::GlobalIdMap::For(runtime, frontend)
      .Set(ShardRecordKey(shard_index), EncodeShardRecord(self, service));
}

Future<std::vector<ShardEndpoint>> DiscoverShards(Runtime& runtime, Ipv4Addr frontend,
                                                  std::size_t num_shards) {
  // Shards announce concurrently with clients discovering, so a missing record is the
  // normal bring-up race: GetWithRetry absorbs it with bounded backoff (a shard that never
  // announces surfaces as a clean error through the future). A record that exists but
  // fails to parse never heals, so it fails immediately.
  struct Discovery {
    dist::GlobalIdMap* map = nullptr;
    std::size_t num_shards = 0;
    std::vector<ShardEndpoint> endpoints;
    Promise<std::vector<ShardEndpoint>> done;
    std::function<void(std::size_t)> next;
  };
  auto state = std::make_shared<Discovery>();
  state->map = &dist::GlobalIdMap::For(runtime, frontend);
  state->num_shards = num_shards;
  state->endpoints.resize(num_shards);
  Future<std::vector<ShardEndpoint>> result = state->done.GetFuture();
  // Resolve sequentially (N is small and this runs once at bring-up).
  state->next = [state](std::size_t index) {
    if (index == state->num_shards) {
      state->done.SetValue(std::move(state->endpoints));
      state->next = nullptr;  // break the self-capture cycle
      return;
    }
    dist::GlobalIdMap::RetryPolicy policy;
    policy.initial_backoff_ns = 100'000;  // announces land within a handful of RTTs
    policy.max_backoff_ns = 4'000'000;
    state->map->GetWithRetry(ShardRecordKey(index), policy)
        .Then([state, index](Future<std::string> f) {
          std::string record;
          try {
            record = f.Get();
            if (!ParseShardRecord(record, &state->endpoints[index])) {
              throw std::runtime_error("DiscoverShards: malformed record for " +
                                       ShardRecordKey(index) + ": " + record);
            }
          } catch (...) {
            state->done.SetException(std::current_exception());
            state->next = nullptr;
            return;
          }
          state->next(index + 1);
        });
  };
  state->next(0);
  return result;
}

// --- ShardRouter ------------------------------------------------------------------------------

ShardRouter::ShardRouter(Runtime& runtime, std::vector<ShardEndpoint> shards,
                         std::size_t vnodes_per_shard)
    : shards_(std::move(shards)), per_shard_ops_(shards_.size(), 0) {
  Kassert(!shards_.empty(), "ShardRouter: no shards");
  clients_.reserve(shards_.size());
  ring_.reserve(shards_.size() * vnodes_per_shard);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    clients_.push_back(std::make_unique<dist::RpcClient>(runtime, shards_[i].service,
                                                         shards_[i].addr));
    for (std::size_t v = 0; v < vnodes_per_shard; ++v) {
      // Ring points are named by shard INDEX, not address: the same shard count always
      // yields the same placement, so rebuilding a router (or a second client machine
      // building its own) routes identically.
      std::uint64_t point =
          ShardHash("shard/" + std::to_string(i) + "/vnode/" + std::to_string(v));
      ring_.emplace_back(point, static_cast<std::uint32_t>(i));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::ShardFor(std::string_view key) const {
  std::uint64_t h = ShardHash(key);
  // First ring point clockwise from the key's hash (wrapping past the top).
  auto it = std::upper_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, std::uint32_t{0xffffffff}));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

Future<ShardRouter::GetResult> ShardRouter::Get(std::string_view key) {
  std::size_t shard = ShardFor(key);
  per_shard_ops_[shard]++;
  return clients_[shard]
      ->Call(kShardOpGet, 0, IOBuf::CopyBuffer(key))
      .Then([](Future<dist::RpcClient::Response> f) {
        dist::RpcClient::Response response = f.Get();
        GetResult result;
        result.found = response.aux != 0;
        result.value = std::move(response.body);
        return result;
      });
}

Future<void> ShardRouter::Set(std::string_view key, std::string_view value) {
  std::size_t shard = ShardFor(key);
  per_shard_ops_[shard]++;
  return clients_[shard]
      ->Call(kShardOpSet, 0, dist::BuildLenPrefixedBody(key, value))
      .Then([](Future<dist::RpcClient::Response> f) { f.Get(); });
}

Future<std::vector<ShardRouter::GetResult>> ShardRouter::MultiGet(
    const std::vector<std::string_view>& keys) {
  if (keys.empty()) {
    return MakeReadyFuture<std::vector<GetResult>>(std::vector<GetResult>{});
  }
  // Scatter: partition the batch per shard on the ring. slots[s][j] remembers which
  // request-order slot shard s's j-th key answers, so the gather can write results straight
  // into place (duplicate keys simply occupy two slots of the same shard's sub-batch).
  std::vector<std::vector<std::string_view>> shard_keys(shards_.size());
  std::vector<std::vector<std::size_t>> slots(shards_.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::size_t shard = ShardFor(keys[i]);
    per_shard_ops_[shard]++;
    shard_keys[shard].push_back(keys[i]);
    slots[shard].push_back(i);
  }
  // Gather state shared by the per-shard continuations: each writes only its own slots.
  struct Join {
    std::vector<GetResult> results;
  };
  auto join = std::make_shared<Join>();
  join->results.resize(keys.size());
  std::vector<Future<void>> pending;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_keys[s].empty()) {
      continue;
    }
    std::size_t count = shard_keys[s].size();
    // ONE RPC per shard touched: the whole sub-batch rides a single kShardOpMultiGet frame
    // (and, via the Messenger's auto-cork, the whole fan-out leaves this event as at most
    // one wire segment per shard).
    pending.push_back(
        clients_[s]
            ->Call(kShardOpMultiGet, static_cast<std::uint32_t>(count),
                   dist::BuildKeyVectorBody(shard_keys[s]))
            .Then([join, shard_slots = std::move(slots[s]),
                   count](Future<dist::RpcClient::Response> f) {
              // f.Get() rethrows transport/remote errors; WhenAll's join forwards the first
              // one to the whole-batch future after every shard has answered.
              dist::RpcClient::Response response = f.Get();
              std::vector<GetResult> partial;
              if (!ParseMultiGetReply(std::move(response.body), count, &partial)) {
                throw std::runtime_error("shard: malformed MULTIGET reply");
              }
              for (std::size_t j = 0; j < count; ++j) {
                join->results[shard_slots[j]] = std::move(partial[j]);
              }
            }));
  }
  return WhenAll(std::move(pending)).Then([join](Future<void> f) {
    f.Get();
    return std::move(join->results);
  });
}

double ShardRouter::Imbalance() const {
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t ops : per_shard_ops_) {
    total += ops;
    max = std::max(max, ops);
  }
  if (total == 0) {
    return 0.0;
  }
  double mean = static_cast<double>(total) / static_cast<double>(per_shard_ops_.size());
  return static_cast<double>(max) / mean - 1.0;
}

}  // namespace memcached
}  // namespace ebbrt
