// KvStore — the RCU-backed key/value store behind the memcached servers (§4.2: "Key-value
// pairs are stored in an RCU hash table to alleviate lock contention which is a common cause
// for poor scalability in memcached").
//
// The item plane is zero-alloc on the generic heap. An item is ONE block carved from the
// per-core slab allocator:
//
//   [ refs | flags | cas | klen | vlen |  key bytes  |  value bytes ]
//   '---------- 24-byte header --------'
//
// SET copies the wire bytes into the block exactly once; the table's node reads the key
// back out of the block (KeyOf policy), so there is no separate key string, no shared_ptr
// control block, and no per-item std::string. Items are immutable after construction and
// intrusively reference-counted: GET handlers build zero-copy response views over the value
// bytes (see MakeValueBuffer) whose IOBuf deleter drops the reference directly — a
// concurrent SET replacing the item cannot free it while a response or retransmission still
// points at it. The final Unref routes the block home to its carving core's allocator, from
// whichever core (or teardown thread) drops it.
#ifndef EBBRT_SRC_APPS_MEMCACHED_KVSTORE_H_
#define EBBRT_SRC_APPS_MEMCACHED_KVSTORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string_view>
#include <utility>

#include "src/iobuf/iobuf.h"
#include "src/mem/gp_allocator.h"
#include "src/platform/context.h"
#include "src/platform/spinlock.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {
namespace memcached {

// Immutable, intrusively refcounted item block. Construct only through New; the key and
// value bytes trail the header in the same allocation.
class Item {
 public:
  static Item* New(std::string_view key, std::string_view value, std::uint32_t flags,
                   std::uint64_t cas) {
    void* p = mem::AllocRouted(sizeof(Item) + key.size() + value.size());
    Item* item = new (p) Item(flags, cas, static_cast<std::uint32_t>(key.size()),
                              static_cast<std::uint32_t>(value.size()));
    char* bytes = const_cast<char*>(item->bytes());
    std::memcpy(bytes, key.data(), key.size());
    std::memcpy(bytes + key.size(), value.data(), value.size());
    live_.fetch_add(1, std::memory_order_relaxed);
    return item;
  }

  void Ref() const { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() const {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      live_.fetch_sub(1, std::memory_order_relaxed);
      Item* self = const_cast<Item*>(this);
      self->~Item();
      mem::FreeRouted(self);
    }
  }

  std::string_view key() const { return {bytes(), klen_}; }
  std::string_view value() const { return {bytes() + klen_, vlen_}; }
  std::uint32_t flags() const { return flags_; }
  std::uint64_t cas() const { return cas_; }
  std::uint32_t refs() const { return refs_.load(std::memory_order_relaxed); }

  // Item blocks alive process-wide — the leak/double-free canary the lifetime tests pin.
  static std::uint64_t live_count() { return live_.load(std::memory_order_relaxed); }

 private:
  Item(std::uint32_t flags, std::uint64_t cas, std::uint32_t klen, std::uint32_t vlen)
      : flags_(flags), cas_(cas), klen_(klen), vlen_(vlen) {}
  ~Item() = default;

  const char* bytes() const { return reinterpret_cast<const char*>(this + 1); }

  mutable std::atomic<std::uint32_t> refs_{1};  // New hands the caller the first reference
  std::uint32_t flags_;
  std::uint64_t cas_;
  std::uint32_t klen_;
  std::uint32_t vlen_;

  inline static std::atomic<std::uint64_t> live_{0};
};
static_assert(sizeof(Item) == 24, "item header is 24 bytes; key/value bytes trail it");

// Intrusive smart pointer over Item. Construction from a raw pointer ADOPTS the reference
// (Item::New already handed us one); copies bump the count, destruction drops it.
class ItemPtr {
 public:
  ItemPtr() = default;
  explicit ItemPtr(const Item* item) : item_(item) {}
  ItemPtr(const ItemPtr& other) : item_(other.item_) {
    if (item_ != nullptr) {
      item_->Ref();
    }
  }
  ItemPtr(ItemPtr&& other) noexcept : item_(other.item_) { other.item_ = nullptr; }
  ItemPtr& operator=(const ItemPtr& other) {
    ItemPtr(other).Swap(*this);
    return *this;
  }
  ItemPtr& operator=(ItemPtr&& other) noexcept {
    ItemPtr(std::move(other)).Swap(*this);
    return *this;
  }
  ~ItemPtr() {
    if (item_ != nullptr) {
      item_->Unref();
    }
  }

  const Item* get() const { return item_; }
  const Item* operator->() const { return item_; }
  const Item& operator*() const { return *item_; }
  explicit operator bool() const { return item_ != nullptr; }

  // Transfers the reference out (e.g. into an IOBuf deleter) without touching the count.
  const Item* Release() {
    const Item* item = item_;
    item_ = nullptr;
    return item;
  }

  void Swap(ItemPtr& other) { std::swap(item_, other.item_); }

  friend bool operator==(const ItemPtr& p, std::nullptr_t) { return p.item_ == nullptr; }
  friend bool operator!=(const ItemPtr& p, std::nullptr_t) { return p.item_ != nullptr; }
  friend bool operator==(std::nullptr_t, const ItemPtr& p) { return p.item_ == nullptr; }
  friend bool operator!=(std::nullptr_t, const ItemPtr& p) { return p.item_ != nullptr; }

 private:
  const Item* item_ = nullptr;
};

// Table policies: the item block owns the key bytes (KeyOf reads them back), and lookups
// hash string_views directly — Find(wire_key) never materializes a std::string.
struct ItemKeyOf {
  std::string_view operator()(const ItemPtr& item) const { return item->key(); }
};
struct KeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view key) const {
    return std::hash<std::string_view>{}(key);
  }
};

class KvStore {
 public:
  explicit KvStore(RcuManagerRoot& rcu, std::size_t bucket_bits = 14)
      : table_(rcu, bucket_bits) {}

  // Lock-free read; the returned reference keeps the item alive past replacement. The copy
  // out of the table node is taken inside the RCU read-side section (this event), where the
  // node — and therefore its reference — cannot yet have been reclaimed.
  ItemPtr Get(std::string_view key) {
    ItemPtr* found = table_.Find(key);
    return found != nullptr ? *found : ItemPtr();
  }

  void Set(std::string_view key, std::string_view value, std::uint32_t flags) {
    table_.InsertOrReplace(key, ItemPtr(Item::New(key, value, flags, NextCas())));
  }

  bool Add(std::string_view key, std::string_view value, std::uint32_t flags) {
    return table_.Insert(key, ItemPtr(Item::New(key, value, flags, NextCas())));
  }

  // Succeeds only if the key is present — checked and swapped under one bucket-lock hold
  // (RcuHashTable::ReplaceIfPresent), so a concurrent Delete cannot slip between the check
  // and the write and let REPLACE resurrect a deleted key.
  bool Replace(std::string_view key, std::string_view value, std::uint32_t flags) {
    return table_.ReplaceIfPresent(key, ItemPtr(Item::New(key, value, flags, NextCas())));
  }

  bool Delete(std::string_view key) { return table_.Erase(key); }

  std::size_t size() const { return table_.size(); }

 private:
  // CAS identifiers are drawn from per-core blocks refilled in batches from one shared
  // counter — the shared atomic is touched once per kCasBatch SETs instead of once per SET,
  // so the store's last cross-core contended cache line leaves the write path. IDs are
  // unique and per-core monotonic, which is all memcached CAS semantics need.
  static constexpr std::uint64_t kCasBatch = 64;
  struct alignas(kCacheLineSize) CasBlock {
    std::uint64_t next = 0;
    std::uint64_t limit = 0;
  };

  std::uint64_t NextCas() {
    if (HaveContext()) {
      std::size_t core = CurrentContext().machine_core;
      if (core < kMaxCores) {
        CasBlock& block = cas_blocks_[core];
        if (block.next == block.limit) {
          block.next = cas_source_.fetch_add(kCasBatch, std::memory_order_relaxed);
          block.limit = block.next + kCasBatch;
        }
        return block.next++;
      }
    }
    return cas_source_.fetch_add(1, std::memory_order_relaxed);
  }

  RcuHashTable<std::string_view, ItemPtr, KeyHash, std::equal_to<>, ItemKeyOf> table_;
  std::array<CasBlock, kMaxCores> cas_blocks_{};
  std::atomic<std::uint64_t> cas_source_{1};
};

// Zero-copy view of an item's value whose lifetime is pinned by the IOBuf itself: the
// caller's reference transfers INTO the buffer's deleter (no heap-allocated anchor object),
// and release of the last buffer clone drops it.
inline std::unique_ptr<IOBuf> MakeValueBuffer(ItemPtr item) {
  const Item* raw = item.Release();
  std::string_view value = raw->value();
  return IOBuf::TakeOwnership(
      const_cast<char*>(value.data()), value.size(), value.size(),
      [](void*, void* arg) { static_cast<const Item*>(arg)->Unref(); },
      const_cast<Item*>(raw));
}

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_KVSTORE_H_
