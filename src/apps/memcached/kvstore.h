// KvStore — the RCU-backed key/value store behind the memcached servers (§4.2: "Key-value
// pairs are stored in an RCU hash table to alleviate lock contention which is a common cause
// for poor scalability in memcached").
//
// Items are immutable and reference-counted: GET handlers build zero-copy response views over
// the item's bytes (see MakeValueBuffer), with the IOBuf's deleter holding a reference so a
// concurrent SET replacing the item cannot free it while a response or retransmission still
// points at it.
#ifndef EBBRT_SRC_APPS_MEMCACHED_KVSTORE_H_
#define EBBRT_SRC_APPS_MEMCACHED_KVSTORE_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/iobuf/iobuf.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {
namespace memcached {

struct Item {
  std::string value;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
};

using ItemRef = std::shared_ptr<const Item>;

class KvStore {
 public:
  explicit KvStore(RcuManagerRoot& rcu, std::size_t bucket_bits = 14)
      : table_(rcu, bucket_bits) {}

  // Lock-free read; the returned reference keeps the item alive past replacement.
  ItemRef Get(std::string_view key) {
    ItemRef* found = table_.Find(std::string(key));
    return found != nullptr ? *found : nullptr;
  }

  void Set(std::string_view key, std::string value, std::uint32_t flags) {
    auto item = std::make_shared<Item>();
    item->value = std::move(value);
    item->flags = flags;
    item->cas = next_cas_.fetch_add(1, std::memory_order_relaxed);
    table_.InsertOrReplace(std::string(key), std::move(item));
  }

  bool Add(std::string_view key, std::string value, std::uint32_t flags) {
    auto item = std::make_shared<Item>();
    item->value = std::move(value);
    item->flags = flags;
    item->cas = next_cas_.fetch_add(1, std::memory_order_relaxed);
    return table_.Insert(std::string(key), std::move(item));
  }

  bool Replace(std::string_view key, std::string value, std::uint32_t flags) {
    if (Get(key) == nullptr) {
      return false;
    }
    Set(key, std::move(value), flags);
    return true;
  }

  bool Delete(std::string_view key) { return table_.Erase(std::string(key)); }

  std::size_t size() const { return table_.size(); }

 private:
  RcuHashTable<std::string, ItemRef> table_;
  std::atomic<std::uint64_t> next_cas_{1};
};

// Zero-copy view of an item's value whose lifetime is pinned by the IOBuf itself.
inline std::unique_ptr<IOBuf> MakeValueBuffer(ItemRef item) {
  const void* data = item->value.data();
  std::size_t len = item->value.size();
  auto* anchor = new ItemRef(std::move(item));
  return IOBuf::TakeOwnership(
      const_cast<void*>(data), len, len,
      [](void*, void* arg) { delete static_cast<ItemRef*>(arg); }, anchor);
}

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_KVSTORE_H_
