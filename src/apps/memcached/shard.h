// Sharded memcached over the hybrid structure (paper §2.1 scaled out).
//
// One memcached instance per machine is where the paper stops; the natural next step for a
// production deployment is to consistent-hash the key space across N backend shards and let
// clients route per key. Everything here rides the distributed dispatch plane:
//
//   * ShardService — a backend shard: an RpcServer wrapping the same RCU-backed KvStore the
//     single-node server uses. GET replies reference stored bytes zero-copy
//     (MakeValueBuffer), so a shard's response chain is views over its store, shipped
//     through the Messenger's corked, pooled TCP datapath.
//   * ShardRouter — the client-side router Ebb: a consistent-hash ring over the shard set
//     and one RpcClient per shard. Each shard has its OWN service id (kShardServiceBase +
//     index), so concurrent responses from different shards demultiplex through distinct
//     RCU demux entries and per-core pending tables — fan-IN from N shards never meets a
//     shared lock.
//   * Discovery — shard i registers itself in the hosted frontend's GlobalIdMap under
//     "service/memcached/<i>" (AnnounceShard); routers resolve the records by name
//     (DiscoverShards), exactly how kv_cache discovers its single server.
//
// The ring hashes with FNV-1a (implemented here, NOT std::hash) so shard placement is
// deterministic across standard libraries — the per-shard balance gates in CI depend on it.
#ifndef EBBRT_SRC_APPS_MEMCACHED_SHARD_H_
#define EBBRT_SRC_APPS_MEMCACHED_SHARD_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/apps/memcached/kvstore.h"
#include "src/dist/global_id_map.h"
#include "src/dist/rpc.h"
#include "src/obs/metrics.h"

namespace ebbrt {
namespace memcached {

// One service id per shard: responses from different shards resolve through different
// demux entries (see header comment). 24 shard slots above the test/example static range.
inline constexpr EbbId kShardServiceBase = kFirstStaticUserId + 8;
inline constexpr std::size_t kMaxShards = 24;

// Shard RPC opcodes; `aux` carries the found flag on GET responses.
inline constexpr std::uint16_t kShardOpGet = 1;
inline constexpr std::uint16_t kShardOpSet = 2;
// Bulk GET: one RPC carries a whole key batch to a shard — the 16-byte RpcHeader, the
// pending-table entry, and the per-frame dispatch are paid once per SHARD instead of once
// per KEY. Request body is dist::BuildKeyVectorBody's packed key vector (aux = key count);
// the reply is one IOBuf chain of per-key records in request order (aux = hit count), each
// [u32 status word][value bytes if found] — see BuildMultiGetReply/ParseMultiGetReply.
inline constexpr std::uint16_t kShardOpMultiGet = 3;

// Per-key reply status word: top bit = found, low 31 bits = value length. A miss is a bare
// word (no value bytes follow) — distinguishing "key absent from a healthy shard" from a
// transport error, which crosses as an RPC error frame and fails the whole batch future.
inline constexpr std::uint32_t kMultiGetFoundBit = 0x80000000u;

// FNV-1a 64-bit with a murmur-style finalizer: small and deterministic everywhere. The
// finalizer matters — raw FNV-1a of short strings differing only in their final digits
// ("user:0", "user:1", ...) leaves the HIGH bits nearly untouched, which collapses a
// consistent-hash ring (keyed on full 64-bit order) into one arc. fmix64 avalanches every
// input bit across the word.
inline std::uint64_t ShardHash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

struct ShardEndpoint {
  Ipv4Addr addr;
  EbbId service = kNullEbbId;
};

// GlobalIdMap record plumbing: key "service/memcached/<i>", value "<a.b.c.d>#<service-id>".
std::string ShardRecordKey(std::size_t shard_index);
std::string EncodeShardRecord(Ipv4Addr addr, EbbId service);
bool ParseShardRecord(const std::string& record, ShardEndpoint* out);

class ShardService final : public dist::RpcServer {
 public:
  struct Config {
    // Invoked once per request before it executes — benches charge modeled per-op service
    // time here (the store lookup itself is real work but simulated time only under
    // measured-cost mode). Leave empty for none.
    std::function<void()> on_request;
  };

  ShardService(Runtime& runtime, std::size_t shard_index, Config config = {});

  KvStore& store() { return store_; }
  std::size_t shard_index() const { return shard_index_; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  // Well-framed RPCs rejected for violating per-item bounds (kMaxKeyLen / kMaxValueLen) —
  // checked from the wire lengths BEFORE any key/value is materialized, so an oversized
  // request never sizes an allocation. Same discipline as the TCP servers: count, reply an
  // error, keep serving.
  std::uint64_t bad_frames() const { return bad_frames_.load(std::memory_order_relaxed); }

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                  std::uint32_t aux, std::unique_ptr<IOBuf> body) override;

  std::size_t shard_index_;
  Config config_;
  KvStore store_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
};

// Publishes this machine's shard under its GlobalIdMap record (the frontend at `frontend`
// must be serving GlobalIdMap). The future resolves when the name is durable.
Future<void> AnnounceShard(Runtime& runtime, Ipv4Addr frontend, std::size_t shard_index,
                           Ipv4Addr self);

// Resolves shard records 0..num_shards-1 from the frontend. Fails (through the future) if
// any record is missing or malformed — discovery is all-or-nothing.
Future<std::vector<ShardEndpoint>> DiscoverShards(Runtime& runtime, Ipv4Addr frontend,
                                                  std::size_t num_shards);

// --- Versioned ring ---------------------------------------------------------------------------
//
// The per-shard records above bootstrap a FIXED shard set. The versioned ring makes
// membership dynamic: whoever operates the cluster publishes the authoritative shard list
// under ONE GlobalIdMap record ("service/memcached/ring") with a monotonically increasing
// epoch. Routers poll it (or are told to refresh) and RCU-swap their routing state; shards
// announce/retire at runtime by appearing in / vanishing from the next epoch's record.

inline constexpr const char* kRingRecordKey = "service/memcached/ring";

struct RingRecord {
  std::uint64_t epoch = 0;
  std::vector<ShardEndpoint> shards;
};

// Wire format: "<epoch>|a.b.c.d#svc,a.b.c.d#svc,...". ParseRingRecord returns false on any
// malformation (non-numeric epoch, bad endpoint, empty shard list) — a router NEVER adopts
// a record it can't fully parse (keep-last-good discipline, see ShardRouter::RefreshRing).
std::string EncodeRingRecord(const RingRecord& record);
bool ParseRingRecord(const std::string& record, RingRecord* out);

// Publishes / resolves the authoritative ring record through the frontend's GlobalIdMap.
Future<void> PublishRing(Runtime& runtime, Ipv4Addr frontend, const RingRecord& record);
Future<RingRecord> FetchRing(Runtime& runtime, Ipv4Addr frontend);

class ShardRouter {
 public:
  struct GetResult {
    bool found = false;
    std::unique_ptr<IOBuf> value;  // zero-copy chain straight off the wire
  };

  struct Config {
    // Virtual points per shard smooth the ring (more points, better balance, slower build —
    // lookups stay O(log points)).
    std::size_t vnodes_per_shard = 128;
    // R-way replication: each key maps to the first R DISTINCT shards clockwise from its
    // hash. Reads go to one replica and fail over along the set on transport errors; writes
    // go to every non-suspect replica (write-all / read-one).
    std::size_t replication = 2;
    // Per-op RPC deadline/retry contracts. Reads default to a single attempt — the router's
    // failover IS the retry, and re-sending to a dead replica only delays it.
    dist::CallOptions read_options{dist::kDefaultRpcDeadlineNs,
                                   dist::RetryPolicy{/*max_attempts=*/1}};
    dist::CallOptions write_options{};
    // Ring watcher period (virtual ns); 0 disables the periodic refresh (the router still
    // refreshes opportunistically whenever it marks a replica suspect).
    std::uint64_t ring_refresh_ns = 0;
    // Frontend serving GlobalIdMap; Any() (the default) disables ring refresh entirely.
    Ipv4Addr frontend = Ipv4Addr::Any();
  };

  // Failover/refresh observability. The router is per-core client state (one issuing core),
  // so these are plain counters.
  struct Stats {
    std::uint64_t failovers = 0;        // ops re-routed to another replica
    std::uint64_t suspects_marked = 0;  // replica transitions healthy -> suspect
    std::uint64_t ring_swaps = 0;       // epochs adopted
    std::uint64_t stale_rings = 0;      // fetched records with epoch <= current (ignored)
    std::uint64_t malformed_rings = 0;  // fetched records that failed to parse (kept last good)
    std::uint64_t refresh_failures = 0; // ring fetches that errored (kept last good)
    std::uint64_t write_skips = 0;      // replica writes skipped because the target was suspect
  };

  // Static single-replica router over a fixed shard set (epoch 0) — the pre-ring behavior,
  // used by balance tests and benches that don't exercise failover.
  ShardRouter(Runtime& runtime, std::vector<ShardEndpoint> shards,
              std::size_t vnodes_per_shard = 128);
  // Replicated router over a versioned ring.
  ShardRouter(Runtime& runtime, RingRecord ring, Config config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Key-routed operations: hash the key onto the ring, ship the op to that shard's service
  // over the Messenger. Ops issued inside one event cork per shard (a fanned-out round
  // leaves as at most one wire segment per shard touched).
  //
  // Miss vs. failure, both ops: a key absent from a healthy shard resolves found=false —
  // only a transport/shard error (connection lost, malformed reply, remote exception)
  // surfaces through the future as an exception. Transport errors (RpcTimeout /
  // RpcPeerLost) additionally drive the failover state machine: the replica is marked
  // suspect, reads fail over to the key's next replica, and the read's future only fails
  // when EVERY replica has failed. Application-level errors from a shard propagate
  // untouched — a shard that answers wrongly is not a dead shard.
  Future<GetResult> Get(std::string_view key);
  // Write-all: the value goes to every non-suspect replica of the key (all of them when
  // every replica is suspect — total blindness must not wedge writes); skipped replicas
  // tick stats().write_skips. A transport failure marks the replica suspect and fails the
  // future (the caller decides whether a partially applied write is worth retrying).
  Future<void> Set(std::string_view key, std::string_view value);

  // Bulk scatter-gather GET. Partitions `keys` per shard on the ring, ships EXACTLY ONE
  // kShardOpMultiGet RPC per shard touched (requests issued in one event cork per shard:
  // the whole fan-out leaves as at most one wire segment per shard), and joins the partial
  // replies zero-copy — each per-key value is a shared view carved out of its shard's
  // reply chain (IOBufQueue::Split), never memcpy'd — into request order via WhenAll.
  // Duplicate keys are answered per occurrence. Partial-failure policy: per-key misses are
  // found=false results; a shard group's transport error marks that replica suspect and
  // RE-ISSUES exactly that group's keys against their next replicas (the batch only fails
  // when some key runs out of replicas); application errors fail the whole batch (WhenAll's
  // first-error-wins join).
  Future<std::vector<GetResult>> MultiGet(const std::vector<std::string_view>& keys);

  // Adopts `record` if its epoch is newer than the installed ring's: routing state is
  // RCU-swapped (in-flight ops drain against the ring snapshot they captured) and every
  // suspect mark is cleared — the new epoch is the operator's word on who's alive. Stale
  // (epoch <= current) and malformed records are rejected with a stat, keeping the last
  // good ring. Returns whether the ring was swapped.
  bool AdoptRing(const RingRecord& record);
  // Fetches the ring record from the frontend and AdoptRing()s it. Failures (absent key,
  // transport error, malformed record) leave the last good ring serving and tick stats.
  // At most one fetch is in flight at a time. No-op without a configured frontend.
  void RefreshRing();
  // Periodic RefreshRing driver (needs Config{ring_refresh_ns > 0, frontend}). The watcher
  // must be stopped — from the router's core — before a simulated world can drain; the
  // destructor also stops it.
  void StartRingWatcher();
  void StopRingWatcher();

  std::uint64_t ring_epoch() const { return ring_->epoch; }
  bool suspect(std::size_t shard) const { return suspect_[shard] != 0; }

  // Primary replica (first ring point clockwise). Reads may be served by any replica.
  std::size_t ShardFor(std::string_view key) const;
  std::size_t shard_count() const { return ring_->shards.size(); }

  const Stats& stats() const { return stats_; }

  // Per-shard request counters (routing balance), indexed into the CURRENT ring's shard
  // list (reset when a swap changes the shard set). The router is per-core client state
  // like the rest of the dispatch plane: one core issues through one router, so these are
  // plain counters — give each issuing core its own router to fan out from many cores.
  const std::vector<std::uint64_t>& per_shard_ops() const { return per_shard_ops_; }
  // max/mean - 1 over per_shard_ops (0 == perfectly balanced).
  double Imbalance() const;

 private:
  // One immutable routing snapshot per epoch, RCU-published through `ring_`: ops capture
  // the shared_ptr once and use that snapshot end-to-end, so a concurrent AdoptRing never
  // yanks state out from under an in-flight failover chain (the old Ring lives until its
  // last op drains — the read-side discipline, with shared_ptr as the grace period).
  struct Ring {
    std::uint64_t epoch = 0;
    std::vector<ShardEndpoint> shards;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> points;  // (point, shard), sorted

    // The key's replica set: first `r` DISTINCT shards clockwise from `hash`.
    std::vector<std::uint32_t> ReplicasFor(std::uint64_t hash, std::size_t r) const;
  };

  // Trace identity of one routed operation's ROOT span (the kLocal span every shard RPC of
  // the op parents into). Zero trace_id = the op runs untraced. Failover re-issues thread
  // this through, so a key's second replica still stitches into the same tree.
  struct OpTrace {
    std::uint64_t trace_id = 0;
    std::uint32_t span_id = 0;
    std::uint32_t parent_span = 0;
    std::uint64_t start_ns = 0;
  };
  // Starts a root span for one op (all-zero when tracing is off / the plane is absent).
  OpTrace BeginOpTrace();
  // Records the op's kLocal root span (no-op for an untraced OpTrace).
  void FinishOpTrace(const OpTrace& trace, std::uint16_t opcode, obs::SpanStatus status);

  // Shared MultiGet state: owned key copies (retried groups outlive the caller's views)
  // and the request-order result slots.
  struct MgState {
    std::shared_ptr<const Ring> ring;
    std::vector<std::string> keys;
    std::vector<GetResult> results;
    OpTrace trace;
  };

  static std::shared_ptr<const Ring> BuildRing(const RingRecord& record,
                                               std::size_t vnodes_per_shard);
  // The key's replicas ordered for a read: ring order, non-suspect first.
  std::vector<std::uint32_t> ReadOrder(const Ring& ring, std::string_view key);
  dist::RpcClient* ClientFor(const ShardEndpoint& endpoint);
  void MarkSuspect(const std::shared_ptr<const Ring>& ring, std::uint32_t shard);
  Future<GetResult> TryGet(std::shared_ptr<const Ring> ring, std::string key,
                           std::vector<std::uint32_t> replicas, std::size_t index,
                           OpTrace trace);
  Future<void> MultiGetSlots(std::shared_ptr<MgState> state, std::vector<std::size_t> slots,
                             std::shared_ptr<std::vector<char>> excluded);

  Runtime& runtime_;
  Config config_;
  std::shared_ptr<const Ring> ring_;
  // Suspect flags parallel to ring_->shards (plain bytes: single issuing core). Cleared
  // whole on every ring swap.
  std::vector<char> suspect_;
  // Clients persist across ring swaps keyed by service id (a shard that stays through an
  // epoch change keeps its connection and pending calls).
  std::unordered_map<EbbId, std::unique_ptr<dist::RpcClient>> clients_;
  std::vector<std::uint64_t> per_shard_ops_;
  Stats stats_;
  std::uint64_t watcher_timer_ = 0;
  bool refresh_inflight_ = false;
  // Re-homes the router's failover stats and its RpcClients' fault counters (timeouts,
  // retries, late drops, peer failures) into the machine's metric registry as a pull-style
  // collector — sampled at snapshot time only, removed in the destructor.
  std::uint64_t obs_collector_ = 0;
};

// --- kShardOpMultiGet reply marshaling --------------------------------------------------------
// Exposed (rather than buried in the service/router) so both ends and the zero-copy tests
// share one wire definition.

// Builds the reply chain: per entry one status word, then the value chain when non-null
// (null = miss). Values are spliced in as-is — for the service these are MakeValueBuffer
// views of stored items, so the reply references the store's bytes without copying. O(total
// chain elements) via IOBuf::JoinChains.
std::unique_ptr<IOBuf> BuildMultiGetReply(std::vector<std::unique_ptr<IOBuf>> values);

// Parses a received reply chain into `expected` results (request key order). Zero-copy:
// status words are chain-copied out (scalars), value bytes are Split off as shared views of
// the reply chain's storage. False on a truncated/malformed reply (wrong record count,
// short value, trailing bytes).
bool ParseMultiGetReply(std::unique_ptr<IOBuf> body, std::size_t expected,
                        std::vector<ShardRouter::GetResult>* out);

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_SHARD_H_
