// Sharded memcached over the hybrid structure (paper §2.1 scaled out).
//
// One memcached instance per machine is where the paper stops; the natural next step for a
// production deployment is to consistent-hash the key space across N backend shards and let
// clients route per key. Everything here rides the distributed dispatch plane:
//
//   * ShardService — a backend shard: an RpcServer wrapping the same RCU-backed KvStore the
//     single-node server uses. GET replies reference stored bytes zero-copy
//     (MakeValueBuffer), so a shard's response chain is views over its store, shipped
//     through the Messenger's corked, pooled TCP datapath.
//   * ShardRouter — the client-side router Ebb: a consistent-hash ring over the shard set
//     and one RpcClient per shard. Each shard has its OWN service id (kShardServiceBase +
//     index), so concurrent responses from different shards demultiplex through distinct
//     RCU demux entries and per-core pending tables — fan-IN from N shards never meets a
//     shared lock.
//   * Discovery — shard i registers itself in the hosted frontend's GlobalIdMap under
//     "service/memcached/<i>" (AnnounceShard); routers resolve the records by name
//     (DiscoverShards), exactly how kv_cache discovers its single server.
//
// The ring hashes with FNV-1a (implemented here, NOT std::hash) so shard placement is
// deterministic across standard libraries — the per-shard balance gates in CI depend on it.
#ifndef EBBRT_SRC_APPS_MEMCACHED_SHARD_H_
#define EBBRT_SRC_APPS_MEMCACHED_SHARD_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/memcached/kvstore.h"
#include "src/dist/global_id_map.h"
#include "src/dist/rpc.h"

namespace ebbrt {
namespace memcached {

// One service id per shard: responses from different shards resolve through different
// demux entries (see header comment). 24 shard slots above the test/example static range.
inline constexpr EbbId kShardServiceBase = kFirstStaticUserId + 8;
inline constexpr std::size_t kMaxShards = 24;

// Shard RPC opcodes; `aux` carries the found flag on GET responses.
inline constexpr std::uint16_t kShardOpGet = 1;
inline constexpr std::uint16_t kShardOpSet = 2;
// Bulk GET: one RPC carries a whole key batch to a shard — the 16-byte RpcHeader, the
// pending-table entry, and the per-frame dispatch are paid once per SHARD instead of once
// per KEY. Request body is dist::BuildKeyVectorBody's packed key vector (aux = key count);
// the reply is one IOBuf chain of per-key records in request order (aux = hit count), each
// [u32 status word][value bytes if found] — see BuildMultiGetReply/ParseMultiGetReply.
inline constexpr std::uint16_t kShardOpMultiGet = 3;

// Per-key reply status word: top bit = found, low 31 bits = value length. A miss is a bare
// word (no value bytes follow) — distinguishing "key absent from a healthy shard" from a
// transport error, which crosses as an RPC error frame and fails the whole batch future.
inline constexpr std::uint32_t kMultiGetFoundBit = 0x80000000u;

// FNV-1a 64-bit with a murmur-style finalizer: small and deterministic everywhere. The
// finalizer matters — raw FNV-1a of short strings differing only in their final digits
// ("user:0", "user:1", ...) leaves the HIGH bits nearly untouched, which collapses a
// consistent-hash ring (keyed on full 64-bit order) into one arc. fmix64 avalanches every
// input bit across the word.
inline std::uint64_t ShardHash(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

struct ShardEndpoint {
  Ipv4Addr addr;
  EbbId service = kNullEbbId;
};

// GlobalIdMap record plumbing: key "service/memcached/<i>", value "<a.b.c.d>#<service-id>".
std::string ShardRecordKey(std::size_t shard_index);
std::string EncodeShardRecord(Ipv4Addr addr, EbbId service);
bool ParseShardRecord(const std::string& record, ShardEndpoint* out);

class ShardService final : public dist::RpcServer {
 public:
  struct Config {
    // Invoked once per request before it executes — benches charge modeled per-op service
    // time here (the store lookup itself is real work but simulated time only under
    // measured-cost mode). Leave empty for none.
    std::function<void()> on_request;
  };

  ShardService(Runtime& runtime, std::size_t shard_index, Config config = {});

  KvStore& store() { return store_; }
  std::size_t shard_index() const { return shard_index_; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                  std::uint32_t aux, std::unique_ptr<IOBuf> body) override;

  std::size_t shard_index_;
  Config config_;
  KvStore store_;
  std::atomic<std::uint64_t> requests_{0};
};

// Publishes this machine's shard under its GlobalIdMap record (the frontend at `frontend`
// must be serving GlobalIdMap). The future resolves when the name is durable.
Future<void> AnnounceShard(Runtime& runtime, Ipv4Addr frontend, std::size_t shard_index,
                           Ipv4Addr self);

// Resolves shard records 0..num_shards-1 from the frontend. Fails (through the future) if
// any record is missing or malformed — discovery is all-or-nothing.
Future<std::vector<ShardEndpoint>> DiscoverShards(Runtime& runtime, Ipv4Addr frontend,
                                                  std::size_t num_shards);

class ShardRouter {
 public:
  struct GetResult {
    bool found = false;
    std::unique_ptr<IOBuf> value;  // zero-copy chain straight off the wire
  };

  // `vnodes_per_shard` virtual points per shard smooth the ring (more points, better
  // balance, slower build — lookups stay O(log points)).
  ShardRouter(Runtime& runtime, std::vector<ShardEndpoint> shards,
              std::size_t vnodes_per_shard = 128);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Key-routed operations: hash the key onto the ring, ship the op to that shard's service
  // over the Messenger. Ops issued inside one event cork per shard (a fanned-out round
  // leaves as at most one wire segment per shard touched).
  //
  // Miss vs. failure, both ops: a key absent from a healthy shard resolves found=false —
  // only a transport/shard error (connection lost, malformed reply, remote exception)
  // surfaces through the future as an exception.
  Future<GetResult> Get(std::string_view key);
  Future<void> Set(std::string_view key, std::string_view value);

  // Bulk scatter-gather GET. Partitions `keys` per shard on the ring, ships EXACTLY ONE
  // kShardOpMultiGet RPC per shard touched (requests issued in one event cork per shard:
  // the whole fan-out leaves as at most one wire segment per shard), and joins the partial
  // replies zero-copy — each per-key value is a shared view carved out of its shard's
  // reply chain (IOBufQueue::Split), never memcpy'd — into request order via WhenAll.
  // Duplicate keys are answered per occurrence. Partial-failure policy: per-key misses are
  // found=false results; any shard's transport error fails the WHOLE batch future with
  // that error, after every shard has answered (WhenAll's first-error-wins join).
  Future<std::vector<GetResult>> MultiGet(const std::vector<std::string_view>& keys);

  std::size_t ShardFor(std::string_view key) const;
  std::size_t shard_count() const { return shards_.size(); }

  // Per-shard request counters (routing balance). The router is per-core client state like
  // the rest of the dispatch plane: one core issues through one router, so these are plain
  // counters — give each issuing core its own router to fan out from many cores.
  const std::vector<std::uint64_t>& per_shard_ops() const { return per_shard_ops_; }
  // max/mean - 1 over per_shard_ops (0 == perfectly balanced).
  double Imbalance() const;

 private:
  std::vector<ShardEndpoint> shards_;
  std::vector<std::unique_ptr<dist::RpcClient>> clients_;  // one per shard
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // (point, shard), sorted
  std::vector<std::uint64_t> per_shard_ops_;
};

// --- kShardOpMultiGet reply marshaling --------------------------------------------------------
// Exposed (rather than buried in the service/router) so both ends and the zero-copy tests
// share one wire definition.

// Builds the reply chain: per entry one status word, then the value chain when non-null
// (null = miss). Values are spliced in as-is — for the service these are MakeValueBuffer
// views of stored items, so the reply references the store's bytes without copying. O(total
// chain elements) via IOBuf::JoinChains.
std::unique_ptr<IOBuf> BuildMultiGetReply(std::vector<std::unique_ptr<IOBuf>> values);

// Parses a received reply chain into `expected` results (request key order). Zero-copy:
// status words are chain-copied out (scalars), value bytes are Split off as shared views of
// the reply chain's storage. False on a truncated/malformed reply (wrong record count,
// short value, trailing bytes).
bool ParseMultiGetReply(std::unique_ptr<IOBuf> body, std::size_t expected,
                        std::vector<ShardRouter::GetResult>* out);

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_SHARD_H_
