// Memcached servers for both stacks.
//
// MemcachedServer (EbbRT): the paper's §4.2 structure — "receives TCP data synchronously from
// the network card. It is then passed through the network stack and parsed in the application
// in order to construct a response, which is then sent out synchronously." Request handling
// runs to completion on the connection's core, straight from the device event; GET responses
// reference item bytes zero-copy.
//
// BaselineMemcachedServer: the same protocol and store, but written the way a general-purpose
// OS forces: epoll-style readiness callbacks, read(2) into a connection buffer, responses
// assembled into a contiguous buffer and write(2)-copied into the kernel.
#ifndef EBBRT_SRC_APPS_MEMCACHED_SERVER_H_
#define EBBRT_SRC_APPS_MEMCACHED_SERVER_H_

#include <memory>
#include <string>

#include "src/apps/memcached/kvstore.h"
#include "src/apps/memcached/protocol.h"
#include "src/baseline/socket.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"

namespace ebbrt {
namespace memcached {

// Accumulates a TCP byte stream and yields complete binary-protocol requests. When a request
// is fully contained in one segment it is parsed in place (no copy); only requests split
// across segments are reassembled into the pending buffer.
class RequestParser {
 public:
  struct Request {
    BinaryHeader header;        // host-copied
    std::string_view key;       // views into segment or pending buffer
    std::string_view extras;
    std::string_view value;
  };

  // Feeds `data` and invokes `fn(request)` for each complete request.
  template <typename F>
  void Feed(std::unique_ptr<IOBuf> data, F&& fn) {
    for (IOBuf* seg = data.get(); seg != nullptr; seg = seg->Next()) {
      FeedBytes(reinterpret_cast<const char*>(seg->Data()), seg->Length(),
                std::forward<F>(fn));
    }
  }

  template <typename F>
  void FeedBytes(const char* bytes, std::size_t len, F&& fn) {
    if (pending_.empty()) {
      std::size_t consumed = ParseFrom(bytes, len, std::forward<F>(fn));
      if (consumed < len) {
        pending_.assign(bytes + consumed, len - consumed);
      }
      return;
    }
    pending_.append(bytes, len);
    std::size_t consumed = ParseFrom(pending_.data(), pending_.size(), std::forward<F>(fn));
    pending_.erase(0, consumed);
  }

 private:
  template <typename F>
  std::size_t ParseFrom(const char* base, std::size_t len, F&& fn) {
    std::size_t off = 0;
    while (len - off >= sizeof(BinaryHeader)) {
      BinaryHeader header;
      std::memcpy(&header, base + off, sizeof(header));
      std::uint32_t body = header.TotalBody();
      if (len - off < sizeof(header) + body) {
        break;  // incomplete request
      }
      Request req;
      req.header = header;
      const char* p = base + off + sizeof(header);
      req.extras = {p, header.extras_length};
      req.key = {p + header.extras_length, header.KeyLength()};
      req.value = {p + header.extras_length + header.KeyLength(), header.ValueLength()};
      fn(req);
      off += sizeof(header) + body;
    }
    return off;
  }

  std::string pending_;
};

// Builds the response header (+extras) buffer with room for an appended value chain.
std::unique_ptr<IOBuf> BuildResponseHeader(const BinaryHeader& req, Status status,
                                           std::size_t extras_len, std::size_t key_len,
                                           std::size_t value_len);

class MemcachedServer {
 public:
  MemcachedServer(NetworkManager& network, std::uint16_t port);

  KvStore& store() { return store_; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    TcpPcb pcb;
    RequestParser parser;
    MemcachedServer* server;
  };

  void HandleRequest(Connection& conn, const RequestParser::Request& req);

  NetworkManager& network_;
  KvStore store_;
  std::atomic<std::uint64_t> requests_{0};
};

class BaselineMemcachedServer {
 public:
  BaselineMemcachedServer(baseline::SocketStack& stack, std::uint16_t port);

  KvStore& store() { return store_; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    std::shared_ptr<baseline::Socket> socket;
    RequestParser parser;
    BaselineMemcachedServer* server;
    std::string out;  // response staging buffer (written with one write(2) per batch)
  };

  void OnReadable(std::shared_ptr<Connection> conn);
  void HandleRequest(Connection& conn, const RequestParser::Request& req);

  baseline::SocketStack& stack_;
  KvStore store_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_SERVER_H_
