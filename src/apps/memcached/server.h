// Memcached servers for both stacks.
//
// MemcachedServer (EbbRT): the paper's §4.2 structure — "receives TCP data synchronously from
// the network card. It is then passed through the network stack and parsed in the application
// in order to construct a response, which is then sent out synchronously." Each connection is
// a TcpHandler: request handling runs to completion on the connection's core, straight from
// the device event; GET responses reference item bytes zero-copy.
//
// BaselineMemcachedServer: the same protocol and store, but written the way a general-purpose
// OS forces: epoll-style readiness callbacks, read(2) into a connection buffer, responses
// assembled into a contiguous buffer and write(2)-copied into the kernel.
#ifndef EBBRT_SRC_APPS_MEMCACHED_SERVER_H_
#define EBBRT_SRC_APPS_MEMCACHED_SERVER_H_

#include <memory>
#include <string>

#include "src/apps/memcached/kvstore.h"
#include "src/apps/memcached/protocol.h"
#include "src/baseline/socket.h"
#include "src/iobuf/iobuf_queue.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"

namespace ebbrt {
namespace memcached {

// Accumulates the TCP byte stream in an IOBufQueue and yields complete binary-protocol
// requests. A request fully contained in one segment is parsed in place — the views handed to
// the callback point into the very buffer the (simulated) DMA engine filled. Only a request
// that straddles segment boundaries is reassembled, with exactly one bounded copy
// (IOBufQueue::EnsureContiguous), instead of the copy-per-feed a string accumulator costs.
class RequestParser {
 public:
  struct Request {
    BinaryHeader header;        // host-copied
    std::string_view key;       // views into the segment (or the one-time coalesce buffer)
    std::string_view extras;
    std::string_view value;
    // Framed correctly but key/value exceed the protocol's per-item bounds (kMaxKeyLen /
    // kMaxValueLen). The views above are EMPTY: the parser never buffered, coalesced, or
    // copied the oversized body — it streams past it — so a hostile 16 MB SET costs the
    // server zero allocations. Handlers answer kInvalidArguments and keep the connection.
    bool oversized = false;
  };

  // Feeds `data` and invokes `fn(request)` for each complete request. The views in `request`
  // are valid only during the callback.
  template <typename F>
  void Feed(std::unique_ptr<IOBuf> data, F&& fn) {
    queue_.Append(std::move(data));
    Drain(fn);  // deliberately by lvalue reference: `fn` is invoked repeatedly
  }

  // Byte-oriented entry point for consumers without an IOBuf in hand (the baseline socket
  // server, whose read(2) already copied into a flat buffer).
  template <typename F>
  void FeedBytes(const char* bytes, std::size_t len, F&& fn) {
    queue_.Append(IOBuf::CopyBuffer(bytes, len));
    Drain(fn);
  }

  // Bytes buffered awaiting a complete request.
  std::size_t pending_bytes() const { return queue_.ChainLength(); }
  // Number of cross-segment reassemblies performed (0 == every request parsed in place),
  // and the bytes they copied.
  std::size_t coalesce_ops() const { return queue_.coalesce_ops(); }
  std::size_t coalesced_bytes() const { return queue_.coalesced_bytes(); }
  // True once an unframeable header was seen (lengths that contradict each other, or a
  // total_body above kMaxRequestBody). The byte stream can no longer be resynchronized, so
  // the parser stops delivering and drops what it buffered; the owning connection checks
  // this after every feed and closes (the Messenger's FailFraming discipline — count at the
  // owner, never assert).
  bool poisoned() const { return poisoned_; }

 private:
  // Takes `fn` by reference: a forwarded rvalue callable must not be re-forwarded inside a
  // loop (use-after-move); only the top-level entry points accept forwarding references.
  template <typename F>
  void Drain(F& fn) {
    while (!poisoned_) {
      // Discard phase of an oversized request: body bytes are dropped segment by segment
      // as they arrive, bounded by what the TCP window lets in — never reassembled.
      if (skip_remaining_ > 0) {
        std::size_t drop = std::min(skip_remaining_, queue_.ChainLength());
        queue_.TrimStart(drop);
        skip_remaining_ -= drop;
        if (skip_remaining_ > 0) {
          return;
        }
        continue;
      }
      if (queue_.ChainLength() < sizeof(BinaryHeader)) {
        return;
      }
      // Chain-aware peek of the fixed-size header (host-copied regardless): learns the
      // record length without forcing a coalesce when the header itself straddles segments.
      BinaryHeader header;
      queue_.Peek(&header, sizeof(header));
      // Header self-consistency before any length is trusted: the declared sections must
      // fit the declared body, and the body must fit the protocol's ceiling. A header
      // failing either is not a request — it is framing corruption, and every subsequent
      // byte boundary would be a guess.
      if (header.TotalBody() > kMaxRequestBody ||
          static_cast<std::size_t>(header.extras_length) + header.KeyLength() >
              header.TotalBody()) {
        poisoned_ = true;
        queue_ = IOBufQueue{};  // drop the unframeable tail
        return;
      }
      // Per-item bounds before any buffering is sized by the remote lengths: a framed
      // request whose key or value exceeds the protocol maxima is answered immediately
      // (empty-bodied, oversized flag set) and its body is streamed to the bit bucket.
      if (header.KeyLength() > kMaxKeyLen || header.ValueLength() > kMaxValueLen) {
        queue_.TrimStart(sizeof(header));
        skip_remaining_ = header.TotalBody();
        Request req;
        req.header = header;
        req.oversized = true;
        fn(req);
        continue;
      }
      std::size_t total = sizeof(header) + header.TotalBody();
      if (queue_.ChainLength() < total) {
        return;  // incomplete request: wait for more segments, no copies yet
      }
      const char* base = reinterpret_cast<const char*>(queue_.EnsureContiguous(total));
      Request req;
      req.header = header;
      const char* p = base + sizeof(header);
      req.extras = {p, header.extras_length};
      req.key = {p + header.extras_length, header.KeyLength()};
      req.value = {p + header.extras_length + header.KeyLength(), header.ValueLength()};
      fn(req);
      queue_.TrimStart(total);
    }
  }

  IOBufQueue queue_;
  std::size_t skip_remaining_ = 0;  // oversized-request body bytes still to discard
  bool poisoned_ = false;
};

// Builds the response header (+extras) buffer with room for an appended value chain.
std::unique_ptr<IOBuf> BuildResponseHeader(const BinaryHeader& req, Status status,
                                           std::size_t extras_len, std::size_t key_len,
                                           std::size_t value_len);

class MemcachedServer {
 public:
  MemcachedServer(NetworkManager& network, std::uint16_t port);

  KvStore& store() { return store_; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  // Malformed-but-framed requests rejected (today: MULTIGET batches whose packed keys
  // disagree with the declared count). The bad_frames discipline: count, answer
  // kInvalidArguments, keep the connection parsing — never an assert, never a wedge.
  std::uint64_t bad_frames() const { return bad_frames_.load(std::memory_order_relaxed); }

 private:
  // One per connection, owned by the connection itself; all four datapath edges (receive,
  // close, abort, send-ready) land here from the device event.
  class Connection final : public TcpHandler {
   public:
    explicit Connection(MemcachedServer& server) : server_(server) {}

    void Receive(std::unique_ptr<IOBuf> data) override {
      // Parsed and answered synchronously, on this core, within the device event. Responses
      // are corked (SetAutoCork at accept) and flushed once at the event boundary.
      parser_.Feed(std::move(data), [this](const RequestParser::Request& req) {
        server_.HandleRequest(*this, req);
      });
      if (parser_.poisoned()) {
        // Unframeable byte stream: count it (once) and drop the connection —
        // resynchronizing is impossible and an assert would let one bad client kill the
        // server.
        if (!poison_reported_) {
          poison_reported_ = true;
          server_.bad_frames_.fetch_add(1, std::memory_order_relaxed);
          Pcb().Close();
        }
        return;
      }
      // Surface the parser's reassembly counters (the receive-side zero-copy hit rate)
      // through the machine-wide stats benches read.
      std::size_t ops = parser_.coalesce_ops();
      if (ops != reported_coalesce_ops_) {
        auto& stats = server_.network_.stats();
        stats.rx_coalesce_ops.fetch_add(ops - reported_coalesce_ops_,
                                        std::memory_order_relaxed);
        stats.rx_coalesced_bytes.fetch_add(
            parser_.coalesced_bytes() - reported_coalesced_bytes_,
            std::memory_order_relaxed);
        reported_coalesce_ops_ = ops;
        reported_coalesced_bytes_ = parser_.coalesced_bytes();
      }
    }
    void Close() override { Pcb().Close(); }

   private:
    MemcachedServer& server_;
    RequestParser parser_;
    bool poison_reported_ = false;
    std::size_t reported_coalesce_ops_ = 0;
    std::size_t reported_coalesced_bytes_ = 0;
  };

  void HandleRequest(Connection& conn, const RequestParser::Request& req);
  void HandleMultiGet(Connection& conn, const RequestParser::Request& req);

  NetworkManager& network_;
  KvStore store_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
};

class BaselineMemcachedServer {
 public:
  BaselineMemcachedServer(baseline::SocketStack& stack, std::uint16_t port);

  KvStore& store() { return store_; }
  std::uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  std::uint64_t bad_frames() const { return bad_frames_.load(std::memory_order_relaxed); }

 private:
  struct Connection {
    std::shared_ptr<baseline::Socket> socket;
    RequestParser parser;
    BaselineMemcachedServer* server;
    std::string out;  // response staging buffer (written with one write(2) per batch)
  };

  void OnReadable(std::shared_ptr<Connection> conn);
  void HandleRequest(Connection& conn, const RequestParser::Request& req);

  baseline::SocketStack& stack_;
  KvStore store_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
};

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_SERVER_H_
