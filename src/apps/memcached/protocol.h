// memcached binary protocol (the subset the paper's evaluation exercises; §4.2: "supports the
// standard memcached binary protocol", requests issued as separate GET/SET over TCP).
#ifndef EBBRT_SRC_APPS_MEMCACHED_PROTOCOL_H_
#define EBBRT_SRC_APPS_MEMCACHED_PROTOCOL_H_

#include <cstdint>

#include "src/net/net_types.h"

namespace ebbrt {
namespace memcached {

inline constexpr std::uint8_t kMagicRequest = 0x80;
inline constexpr std::uint8_t kMagicResponse = 0x81;

enum class Opcode : std::uint8_t {
  kGet = 0x00,
  kSet = 0x01,
  kAdd = 0x02,
  kReplace = 0x03,
  kDelete = 0x04,
  kQuit = 0x07,
  kNoop = 0x0a,
  kVersion = 0x0b,
  kGetK = 0x0c,
  kStat = 0x10,
  // Bulk GET (protocol extension): one request frame carries N keys, one response frame
  // carries N per-key results — the per-request header and dispatch are paid once per
  // batch instead of once per key. Wire format below (MultiGetExtras / MultiGetEntry).
  kMultiGet = 0x30,
};

enum class Status : std::uint16_t {
  kOk = 0x0000,
  kKeyNotFound = 0x0001,
  kKeyExists = 0x0002,
  kInvalidArguments = 0x0004,
  kItemNotStored = 0x0005,
  kUnknownCommand = 0x0081,
};

struct BinaryHeader {
  std::uint8_t magic;
  std::uint8_t opcode;
  std::uint16_t key_length;       // network order
  std::uint8_t extras_length;
  std::uint8_t data_type;
  std::uint16_t status_vbucket;   // network order: status (response) / vbucket (request)
  std::uint32_t total_body;       // network order: extras + key + value
  std::uint32_t opaque;           // echoed verbatim
  std::uint64_t cas;

  std::uint16_t KeyLength() const { return NetToHost16(key_length); }
  std::uint32_t TotalBody() const { return NetToHost32(total_body); }
  std::uint32_t ValueLength() const {
    return TotalBody() - KeyLength() - extras_length;
  }
} __attribute__((packed));
static_assert(sizeof(BinaryHeader) == 24);

// SET/ADD/REPLACE request extras.
struct SetExtras {
  std::uint32_t flags;   // network order
  std::uint32_t expiry;  // network order
} __attribute__((packed));

// GET response extras.
struct GetExtras {
  std::uint32_t flags;  // network order
} __attribute__((packed));

// --- MULTIGET (bulk GET) wire format ----------------------------------------------------------
//
// Request:  extras = MultiGetExtras{key_count}, key_length = 0, body after extras is
//           key_count x [u16 klen][key bytes] (network order), consumed EXACTLY — a batch
//           whose packed keys run short of (truncated) or past (trailing garbage) the
//           declared count is malformed. The outer BinaryHeader framing stays intact for a
//           malformed batch, so the server answers kInvalidArguments, ticks bad_frames, and
//           the connection keeps parsing subsequent requests (the Messenger's bad_frames
//           discipline: count and reject, never assert, never wedge).
// Response: extras = MultiGetExtras{key_count}, value section is key_count x
//           [MultiGetEntry][value bytes if hit], in request key order (duplicates answered
//           per occurrence). Values are zero-copy views of the stored items.
struct MultiGetExtras {
  std::uint32_t key_count;  // network order
} __attribute__((packed));

// Per-key result word in a MULTIGET response body.
struct MultiGetEntry {
  std::uint16_t status;      // network order: Status::kOk (hit) / kKeyNotFound (miss)
  std::uint32_t value_length;  // network order; 0 on miss
} __attribute__((packed));
static_assert(sizeof(MultiGetEntry) == 6);

// A batch above this is malformed by definition: bound the remote-supplied count before
// trusting it (a hostile key_count must not size any allocation or loop).
inline constexpr std::size_t kMaxMultiGetKeys = 1024;

// Hard ceiling on one request's total_body. The length words are remote input: without a
// bound, a corrupt or hostile client could park the parser reassembling gigabytes that
// never come (the Messenger's kMaxMessageBytes rule, applied to this protocol's framing).
inline constexpr std::size_t kMaxRequestBody = 16 * 1024 * 1024;

// Per-item bounds (memcached's classic limits: 250-byte keys, 1 MiB values). Enforced at
// every ingress that would otherwise carve an item block — the TCP servers and the shard
// RPC service — BEFORE any allocation is sized by the remote length: an oversized request
// costs one kInvalidArguments response and a bad_frames tick, never a 16 MB item.
inline constexpr std::size_t kMaxKeyLen = 250;
inline constexpr std::size_t kMaxValueLen = 1024 * 1024;

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_PROTOCOL_H_
