// memcached binary protocol (the subset the paper's evaluation exercises; §4.2: "supports the
// standard memcached binary protocol", requests issued as separate GET/SET over TCP).
#ifndef EBBRT_SRC_APPS_MEMCACHED_PROTOCOL_H_
#define EBBRT_SRC_APPS_MEMCACHED_PROTOCOL_H_

#include <cstdint>

#include "src/net/net_types.h"

namespace ebbrt {
namespace memcached {

inline constexpr std::uint8_t kMagicRequest = 0x80;
inline constexpr std::uint8_t kMagicResponse = 0x81;

enum class Opcode : std::uint8_t {
  kGet = 0x00,
  kSet = 0x01,
  kAdd = 0x02,
  kReplace = 0x03,
  kDelete = 0x04,
  kQuit = 0x07,
  kNoop = 0x0a,
  kVersion = 0x0b,
  kGetK = 0x0c,
  kStat = 0x10,
};

enum class Status : std::uint16_t {
  kOk = 0x0000,
  kKeyNotFound = 0x0001,
  kKeyExists = 0x0002,
  kItemNotStored = 0x0005,
  kUnknownCommand = 0x0081,
};

struct BinaryHeader {
  std::uint8_t magic;
  std::uint8_t opcode;
  std::uint16_t key_length;       // network order
  std::uint8_t extras_length;
  std::uint8_t data_type;
  std::uint16_t status_vbucket;   // network order: status (response) / vbucket (request)
  std::uint32_t total_body;       // network order: extras + key + value
  std::uint32_t opaque;           // echoed verbatim
  std::uint64_t cas;

  std::uint16_t KeyLength() const { return NetToHost16(key_length); }
  std::uint32_t TotalBody() const { return NetToHost32(total_body); }
  std::uint32_t ValueLength() const {
    return TotalBody() - KeyLength() - extras_length;
  }
} __attribute__((packed));
static_assert(sizeof(BinaryHeader) == 24);

// SET/ADD/REPLACE request extras.
struct SetExtras {
  std::uint32_t flags;   // network order
  std::uint32_t expiry;  // network order
} __attribute__((packed));

// GET response extras.
struct GetExtras {
  std::uint32_t flags;  // network order
} __attribute__((packed));

}  // namespace memcached
}  // namespace ebbrt

#endif  // EBBRT_SRC_APPS_MEMCACHED_PROTOCOL_H_
