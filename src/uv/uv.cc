#include "src/uv/uv.h"

namespace ebbrt {
namespace uv {

void TimerHandle::Start(std::uint64_t timeout_ns, std::uint64_t repeat_ns, Callback cb) {
  Stop();
  cb_ = std::move(cb);
  repeat_ = repeat_ns;
  if (repeat_ns != 0 && timeout_ns == repeat_ns) {
    handle_ = Timer::Instance()->Start(repeat_ns, [this] { cb_(); }, /*periodic=*/true);
    return;
  }
  handle_ = Timer::Instance()->Start(timeout_ns, [this] {
    handle_ = 0;
    cb_();
    if (repeat_ != 0) {
      handle_ = Timer::Instance()->Start(repeat_, [this] { cb_(); }, /*periodic=*/true);
    }
  });
}

void TimerHandle::Stop() {
  if (handle_ != 0) {
    Timer::Instance()->Stop(handle_);
    handle_ = 0;
  }
}

std::size_t TcpStream::SendWindowRemaining() const {
  return Pcb().SendWindowRemaining();
}

void TcpStream::Close() {
  // Detach the data/drain callbacks first: they commonly capture this stream, and dropping
  // them here breaks the reference cycle once the connection releases its anchor.
  on_read_ = nullptr;
  on_drain_ = nullptr;
  CloseCallback cb = std::move(on_close_);
  on_close_ = nullptr;
  if (cb) {
    cb();
  }
}

void TcpStream::Shutdown() {
  Pcb().Close();
  on_read_ = nullptr;
  on_drain_ = nullptr;
  on_close_ = nullptr;
}

std::shared_ptr<TcpStream> TcpServer::MakeStream(TcpPcb pcb) {
  auto stream = std::make_shared<TcpStream>();
  // The stream is the connection's handler; the connection anchors it until teardown.
  pcb.InstallHandler(std::shared_ptr<TcpHandler>(stream));
  return stream;
}

void TcpServer::Listen(std::uint16_t port, ConnectionCallback on_connection) {
  network_.tcp().Listen(port, [on_connection = std::move(on_connection)](TcpPcb pcb) {
    on_connection(MakeStream(std::move(pcb)));
  });
}

Future<std::shared_ptr<TcpStream>> TcpServer::Connect(Ipv4Addr dst, std::uint16_t port) {
  return network_.tcp().Connect(network_.interface(), dst, port).Then([](Future<TcpPcb> f) {
    return MakeStream(f.Get());
  });
}

}  // namespace uv
}  // namespace ebbrt
