#include "src/uv/uv.h"

namespace ebbrt {
namespace uv {

void TimerHandle::Start(std::uint64_t timeout_ns, std::uint64_t repeat_ns, Callback cb) {
  Stop();
  cb_ = std::move(cb);
  repeat_ = repeat_ns;
  if (repeat_ns != 0 && timeout_ns == repeat_ns) {
    handle_ = Timer::Instance()->Start(repeat_ns, [this] { cb_(); }, /*periodic=*/true);
    return;
  }
  handle_ = Timer::Instance()->Start(timeout_ns, [this] {
    handle_ = 0;
    cb_();
    if (repeat_ != 0) {
      handle_ = Timer::Instance()->Start(repeat_, [this] { cb_(); }, /*periodic=*/true);
    }
  });
}

void TimerHandle::Stop() {
  if (handle_ != 0) {
    Timer::Instance()->Stop(handle_);
    handle_ = 0;
  }
}

void TcpStream::ReadStart(ReadCallback on_read) {
  auto self = shared_from_this();
  pcb_.SetReceiveHandler([self, on_read = std::move(on_read)](std::unique_ptr<IOBuf> data) {
    on_read(std::move(data));
  });
}

void TcpStream::ReadStop() {
  pcb_.SetReceiveHandler([](std::unique_ptr<IOBuf>) {});
}

void TcpStream::OnClose(CloseCallback on_close) {
  auto self = shared_from_this();
  pcb_.SetCloseHandler([self, on_close = std::move(on_close)] { on_close(); });
}

void TcpServer::Listen(std::uint16_t port, ConnectionCallback on_connection) {
  network_.tcp().Listen(port, [on_connection = std::move(on_connection)](TcpPcb pcb) {
    on_connection(std::make_shared<TcpStream>(std::move(pcb)));
  });
}

Future<std::shared_ptr<TcpStream>> TcpServer::Connect(Ipv4Addr dst, std::uint16_t port) {
  return network_.tcp().Connect(network_.interface(), dst, port).Then([](Future<TcpPcb> f) {
    return std::make_shared<TcpStream>(f.Get());
  });
}

}  // namespace uv
}  // namespace ebbrt
