// uv:: — a libuv-shaped callback API implemented over EbbRT events (§4.3).
//
// The paper's node.js port maps libuv's loop/handle/callback model onto EbbRT's per-core
// event loops: "Our approach allows the libuv callbacks to be invoked directly from the
// hardware interrupt in the same way that the memcached application was able to." This module
// is that mapping — the surface node-style applications (our webserver) program against.
// There is no uv_run(): the EbbRT event loop is already the loop; handles simply register
// callbacks that fire from device events and timers.
#ifndef EBBRT_SRC_UV_UV_H_
#define EBBRT_SRC_UV_UV_H_

#include <functional>
#include <memory>
#include <string>

#include "src/event/event_manager.h"
#include "src/event/timer.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"

namespace ebbrt {
namespace uv {

// uv_timer_t analogue.
class TimerHandle {
 public:
  using Callback = std::function<void()>;

  // Fires `cb` after `timeout_ns`, then every `repeat_ns` (0 = one-shot).
  void Start(std::uint64_t timeout_ns, std::uint64_t repeat_ns, Callback cb);
  void Stop();
  ~TimerHandle() { Stop(); }

 private:
  std::uint64_t handle_ = 0;
  std::uint64_t repeat_ = 0;
  Callback cb_;
};

// uv_stream_t/uv_tcp_t analogue bound to an EbbRT TCP connection.
class TcpStream : public std::enable_shared_from_this<TcpStream> {
 public:
  using ReadCallback = std::function<void(std::unique_ptr<IOBuf>)>;
  using CloseCallback = std::function<void()>;

  explicit TcpStream(TcpPcb pcb) : pcb_(std::move(pcb)) {}

  // uv_read_start: data callbacks fire directly from the driver's event.
  void ReadStart(ReadCallback on_read);
  void ReadStop();
  void OnClose(CloseCallback on_close);

  // uv_write (the callback-less common case). Returns false when the peer's window forbids
  // writing `data` right now — callers at this scale (small responses) treat that as fatal.
  bool Write(std::unique_ptr<IOBuf> data) { return pcb_.Send(std::move(data)); }
  bool Write(std::string_view s) { return Write(IOBuf::CopyBuffer(s)); }

  void Close() { pcb_.Close(); }
  TcpPcb& pcb() { return pcb_; }

 private:
  TcpPcb pcb_;
};

// uv_tcp_t server side.
class TcpServer {
 public:
  using ConnectionCallback = std::function<void(std::shared_ptr<TcpStream>)>;

  TcpServer(NetworkManager& network) : network_(network) {}

  void Listen(std::uint16_t port, ConnectionCallback on_connection);
  Future<std::shared_ptr<TcpStream>> Connect(Ipv4Addr dst, std::uint16_t port);

 private:
  NetworkManager& network_;
};

}  // namespace uv
}  // namespace ebbrt

#endif  // EBBRT_SRC_UV_UV_H_
