// uv:: — a libuv-shaped callback API implemented over EbbRT events (§4.3).
//
// The paper's node.js port maps libuv's loop/handle/callback model onto EbbRT's per-core
// event loops: "Our approach allows the libuv callbacks to be invoked directly from the
// hardware interrupt in the same way that the memcached application was able to." This module
// is that mapping — the surface node-style applications (our webserver) program against.
// There is no uv_run(): the EbbRT event loop is already the loop; handles simply register
// callbacks that fire from device events and timers.
//
// A TcpStream IS a TcpHandler: the stream object itself is installed on the connection, so
// uv callbacks dispatch through the unified zero-copy datapath with no intermediate
// std::function forwarding layer.
#ifndef EBBRT_SRC_UV_UV_H_
#define EBBRT_SRC_UV_UV_H_

#include <functional>
#include <memory>
#include <string>

#include "src/event/event_manager.h"
#include "src/event/timer.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"

namespace ebbrt {
namespace uv {

// uv_timer_t analogue.
class TimerHandle {
 public:
  using Callback = std::function<void()>;

  // Fires `cb` after `timeout_ns`, then every `repeat_ns` (0 = one-shot).
  void Start(std::uint64_t timeout_ns, std::uint64_t repeat_ns, Callback cb);
  void Stop();
  ~TimerHandle() { Stop(); }

 private:
  std::uint64_t handle_ = 0;
  std::uint64_t repeat_ = 0;
  Callback cb_;
};

// uv_stream_t/uv_tcp_t analogue bound to an EbbRT TCP connection. The stream is the
// connection's TcpHandler; the connection anchors a shared reference until teardown, so a
// stream stays alive as long as its connection even if the application drops its handle.
class TcpStream final : public TcpHandler,
                        public std::enable_shared_from_this<TcpStream> {
 public:
  using ReadCallback = std::function<void(std::unique_ptr<IOBuf>)>;
  using CloseCallback = std::function<void()>;
  using DrainCallback = std::function<void()>;

  // uv_read_start: data callbacks fire directly from the driver's event.
  void ReadStart(ReadCallback on_read) { on_read_ = std::move(on_read); }
  void ReadStop() { on_read_ = nullptr; }
  // Fires when the peer closes or the connection aborts.
  void OnClose(CloseCallback on_close) { on_close_ = std::move(on_close); }
  // Fires when previously-exhausted send window reopens (uv_write_cb analogue for the
  // application-paced send path).
  void OnDrain(DrainCallback on_drain) { on_drain_ = std::move(on_drain); }

  // uv_write (the callback-less common case). Returns false when the peer's window forbids
  // writing `data` right now — callers at this scale (small responses) treat that as fatal.
  bool Write(std::unique_ptr<IOBuf> data) { return Pcb().Send(std::move(data)); }
  bool Write(std::string_view s) { return Write(IOBuf::CopyBuffer(s)); }

  // The inverse of uv_tcp_nodelay: opt the stream into event-scoped TX batching — all
  // Writes issued while handling one event leave as a single chain at the event boundary
  // (merged into as few wire segments as the window allows). Explicit Cork()/Uncork()
  // batches a specific span instead.
  void SetAutoCork(bool enabled) { Pcb().SetAutoCork(enabled); }
  void Cork() { Pcb().Cork(); }
  void Uncork() { Pcb().Uncork(); }

  // uv_shutdown analogue: closes our side of the connection. The stack never calls the
  // handler back on an application-initiated close, so the callbacks (which typically
  // capture this stream) are dropped here to break the reference cycle.
  void Shutdown();

  std::size_t SendWindowRemaining() const;

 private:
  // --- TcpHandler (invoked by the stack, through the base interface, from the device
  // event). Private so application code cannot call the peer-close notification by mistake
  // where it means "close the connection" — that is Shutdown().
  void Receive(std::unique_ptr<IOBuf> data) override {
    if (on_read_) {
      on_read_(std::move(data));
    }
  }
  void Close() override;
  void SendReady() override {
    if (on_drain_) {
      on_drain_();
    }
  }

  ReadCallback on_read_;
  CloseCallback on_close_;
  DrainCallback on_drain_;
};

// uv_tcp_t server side.
class TcpServer {
 public:
  using ConnectionCallback = std::function<void(std::shared_ptr<TcpStream>)>;

  TcpServer(NetworkManager& network) : network_(network) {}

  void Listen(std::uint16_t port, ConnectionCallback on_connection);
  Future<std::shared_ptr<TcpStream>> Connect(Ipv4Addr dst, std::uint16_t port);

 private:
  static std::shared_ptr<TcpStream> MakeStream(TcpPcb pcb);

  NetworkManager& network_;
};

}  // namespace uv
}  // namespace ebbrt

#endif  // EBBRT_SRC_UV_UV_H_
