#include "src/dist/rpc.h"

#include <map>
#include <stdexcept>
#include <utility>

namespace ebbrt {
namespace dist {

namespace {

// A machine may run the client half, the server half, or both for one service id, but the
// Messenger has one receiver slot per id. This registry is the demultiplexer: the receiver
// routes response frames to the client and request frames to the server.
struct Endpoint {
  RpcClient* client = nullptr;
  RpcServer* server = nullptr;
};

std::mutex endpoint_mu;
std::map<std::pair<const Runtime*, EbbId>, Endpoint>& Endpoints() {
  static std::map<std::pair<const Runtime*, EbbId>, Endpoint> endpoints;
  return endpoints;
}

// Splits a received message into (header, body chain). The header may straddle chain
// elements (a message that crossed segment boundaries), so it is chain-copied out.
bool ParseFrame(std::unique_ptr<IOBuf> message, RpcHeader* header,
                std::unique_ptr<IOBuf>* body) {
  IOBufQueue queue;
  queue.Append(std::move(message));
  if (queue.ChainLength() < sizeof(RpcHeader)) {
    return false;
  }
  queue.Peek(header, sizeof(RpcHeader));
  queue.TrimStart(sizeof(RpcHeader));
  *body = queue.Move();
  header->request_id = NetToHost64(header->request_id);
  header->opcode = NetToHost16(header->opcode);
  header->aux = NetToHost32(header->aux);
  return true;
}

void InstallEndpoint(Runtime& runtime, EbbId service, RpcClient* client, RpcServer* server);
void RemoveEndpoint(Runtime& runtime, EbbId service, RpcClient* client, RpcServer* server);

void DispatchFrame(Runtime* runtime, EbbId service, Ipv4Addr from,
                   std::unique_ptr<IOBuf> message);

void InstallEndpoint(Runtime& runtime, EbbId service, RpcClient* client, RpcServer* server) {
  bool first;
  {
    std::lock_guard<std::mutex> lock(endpoint_mu);
    Endpoint& endpoint = Endpoints()[{&runtime, service}];
    first = endpoint.client == nullptr && endpoint.server == nullptr;
    if (client != nullptr) {
      Kassert(endpoint.client == nullptr, "RpcClient: service already has a client here");
      endpoint.client = client;
    }
    if (server != nullptr) {
      Kassert(endpoint.server == nullptr, "RpcServer: service already has a server here");
      endpoint.server = server;
    }
  }
  if (first) {
    Runtime* rt = &runtime;
    Messenger::For(runtime).RegisterReceiver(
        service, [rt, service](Ipv4Addr from, std::unique_ptr<IOBuf> message) {
          DispatchFrame(rt, service, from, std::move(message));
        });
  }
}

void RemoveEndpoint(Runtime& runtime, EbbId service, RpcClient* client, RpcServer* server) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(endpoint_mu);
    auto it = Endpoints().find({&runtime, service});
    if (it == Endpoints().end()) {
      return;
    }
    if (client != nullptr && it->second.client == client) {
      it->second.client = nullptr;
    }
    if (server != nullptr && it->second.server == server) {
      it->second.server = nullptr;
    }
    if (it->second.client == nullptr && it->second.server == nullptr) {
      Endpoints().erase(it);
      last = true;
    }
  }
  if (last) {
    auto* messenger = runtime.TryGetSubsystem<Messenger>(Subsystem::kMessenger);
    if (messenger != nullptr) {
      messenger->UnregisterReceiver(service);
    }
  }
}

}  // namespace

std::unique_ptr<IOBuf> BuildRpcFrame(std::uint64_t request_id, std::uint16_t opcode,
                                     std::uint8_t flags, std::uint32_t aux,
                                     std::unique_ptr<IOBuf> body) {
  auto frame = IOBuf::CreateReserveFor<sizeof(RpcHeader)>(0);
  frame->Append(sizeof(RpcHeader));
  auto& header = frame->Get<RpcHeader>();
  header.request_id = HostToNet64(request_id);
  header.opcode = HostToNet16(opcode);
  header.flags = flags;
  header.reserved = 0;
  header.aux = HostToNet32(aux);
  if (body != nullptr) {
    frame->AppendChain(std::move(body));
  }
  return frame;
}

std::string ChainToString(const IOBuf* chain) {
  std::string out;
  if (chain == nullptr) {
    return out;
  }
  out.reserve(chain->ComputeChainDataLength());
  for (const IOBuf* buf = chain; buf != nullptr; buf = buf->Next()) {
    out.append(reinterpret_cast<const char*>(buf->Data()), buf->Length());
  }
  return out;
}

std::unique_ptr<IOBuf> BuildLenPrefixedBody(std::string_view head, std::string_view rest) {
  std::uint32_t head_len = HostToNet32(static_cast<std::uint32_t>(head.size()));
  auto body = IOBuf::Create(sizeof(head_len) + head.size());
  std::uint8_t* p = body->WritableData();
  std::memcpy(p, &head_len, sizeof(head_len));
  std::memcpy(p + sizeof(head_len), head.data(), head.size());
  if (!rest.empty()) {
    body->AppendChain(IOBuf::CopyBuffer(rest));
  }
  return body;
}

bool ParseLenPrefixedBody(const std::string& raw, std::string* head, std::string* rest) {
  std::uint32_t head_len = 0;
  if (raw.size() < sizeof(head_len)) {
    return false;
  }
  std::memcpy(&head_len, raw.data(), sizeof(head_len));
  head_len = NetToHost32(head_len);
  if (raw.size() - sizeof(head_len) < head_len) {
    return false;
  }
  *head = raw.substr(sizeof(head_len), head_len);
  *rest = raw.substr(sizeof(head_len) + head_len);
  return true;
}

// --- RpcClient --------------------------------------------------------------------------------

RpcClient::RpcClient(Runtime& runtime, EbbId service, Ipv4Addr server)
    : messenger_(Messenger::For(runtime)), service_(service), server_(server) {
  InstallEndpoint(runtime, service, this, nullptr);
}

RpcClient::~RpcClient() {
  RemoveEndpoint(messenger_.runtime(), service_, this, nullptr);
  std::unordered_map<std::uint64_t, Promise<Response>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphaned = std::move(pending_);
    pending_.clear();
  }
  for (auto& [id, promise] : orphaned) {
    promise.SetException(
        std::make_exception_ptr(std::runtime_error("rpc: client torn down")));
  }
}

std::size_t RpcClient::pending_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

Future<RpcClient::Response> RpcClient::Call(std::uint16_t opcode, std::uint32_t aux,
                                            std::unique_ptr<IOBuf> body) {
  std::uint64_t request_id;
  Promise<Response> promise;
  Future<Response> result = promise.GetFuture();
  {
    std::lock_guard<std::mutex> lock(mu_);
    request_id = next_request_++;
    pending_.emplace(request_id, std::move(promise));
  }
  messenger_.Send(server_, service_,
                  BuildRpcFrame(request_id, opcode, /*flags=*/0, aux, std::move(body)));
  return result;
}

void RpcClient::HandleFrame(Ipv4Addr, std::unique_ptr<IOBuf> message) {
  RpcHeader header;
  std::unique_ptr<IOBuf> body;
  if (!ParseFrame(std::move(message), &header, &body)) {
    return;  // runt frame: drop (transport corruption cannot happen in-sim; belt and braces)
  }
  Promise<Response> promise;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(header.request_id);
    if (it == pending_.end()) {
      return;  // duplicate or stale response
    }
    promise = std::move(it->second);
    pending_.erase(it);
  }
  if (header.flags & kRpcError) {
    promise.SetException(
        std::make_exception_ptr(std::runtime_error(ChainToString(body.get()))));
    return;
  }
  Response response;
  response.aux = header.aux;
  response.body = std::move(body);
  promise.SetValue(std::move(response));
}

// --- RpcServer --------------------------------------------------------------------------------

RpcServer::RpcServer(Runtime& runtime, EbbId service)
    : messenger_(Messenger::For(runtime)), service_(service) {
  InstallEndpoint(runtime, service, nullptr, this);
}

RpcServer::~RpcServer() { RemoveEndpoint(messenger_.runtime(), service_, nullptr, this); }

void RpcServer::Reply(Ipv4Addr to, std::uint64_t request_id, std::uint32_t aux,
                      std::unique_ptr<IOBuf> body) {
  messenger_.Send(to, service_,
                  BuildRpcFrame(request_id, /*opcode=*/0, kRpcResponse, aux, std::move(body)));
}

void RpcServer::ReplyError(Ipv4Addr to, std::uint64_t request_id, std::string_view message) {
  messenger_.Send(to, service_,
                  BuildRpcFrame(request_id, /*opcode=*/0, kRpcResponse | kRpcError,
                                /*aux=*/0, IOBuf::CopyBuffer(message)));
}

void RpcServer::HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message) {
  RpcHeader header;
  std::unique_ptr<IOBuf> body;
  if (!ParseFrame(std::move(message), &header, &body)) {
    return;
  }
  HandleCall(from, header.request_id, header.opcode, header.aux, std::move(body));
}

// Named (friended) trampoline: the anonymous-namespace dispatcher cannot befriend the
// classes directly.
struct RpcDispatch {
  static void ToClient(RpcClient* client, Ipv4Addr from, std::unique_ptr<IOBuf> message) {
    client->HandleFrame(from, std::move(message));
  }
  static void ToServer(RpcServer* server, Ipv4Addr from, std::unique_ptr<IOBuf> message) {
    server->HandleFrame(from, std::move(message));
  }
};

namespace {
void DispatchFrame(Runtime* runtime, EbbId service, Ipv4Addr from,
                   std::unique_ptr<IOBuf> message) {
  // Peek the flags byte (chain-aware: offset 10 can straddle) to pick a direction, then
  // hand the whole frame to that half.
  RpcHeader header;
  if (message == nullptr || message->ComputeChainDataLength() < sizeof(RpcHeader)) {
    return;
  }
  message->CopyOut(&header, sizeof(header));
  RpcClient* client = nullptr;
  RpcServer* server = nullptr;
  {
    std::lock_guard<std::mutex> lock(endpoint_mu);
    auto it = Endpoints().find({runtime, service});
    if (it == Endpoints().end()) {
      return;
    }
    client = it->second.client;
    server = it->second.server;
  }
  if (header.flags & kRpcResponse) {
    if (client != nullptr) {
      RpcDispatch::ToClient(client, from, std::move(message));
    }
  } else if (server != nullptr) {
    RpcDispatch::ToServer(server, from, std::move(message));
  }
}
}  // namespace

}  // namespace dist
}  // namespace ebbrt
