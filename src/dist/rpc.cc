#include "src/dist/rpc.h"

#include <stdexcept>
#include <utility>

#include "src/platform/context.h"
#include "src/rcu/rcu.h"

namespace ebbrt {
namespace dist {

namespace {

// Splits a received message into (header, body chain). The header may straddle chain
// elements (a message that crossed segment boundaries), so it is chain-copied out.
bool ParseFrame(std::unique_ptr<IOBuf> message, RpcHeader* header,
                std::unique_ptr<IOBuf>* body) {
  IOBufQueue queue;
  queue.Append(std::move(message));
  if (queue.ChainLength() < sizeof(RpcHeader)) {
    return false;
  }
  queue.Peek(header, sizeof(RpcHeader));
  queue.TrimStart(sizeof(RpcHeader));
  *body = queue.Move();
  header->request_id = NetToHost64(header->request_id);
  header->opcode = NetToHost16(header->opcode);
  header->aux = NetToHost32(header->aux);
  return true;
}

}  // namespace

std::unique_ptr<IOBuf> BuildRpcFrame(std::uint64_t request_id, std::uint16_t opcode,
                                     std::uint8_t flags, std::uint32_t aux,
                                     std::unique_ptr<IOBuf> body) {
  auto frame = IOBuf::CreateReserveFor<sizeof(RpcHeader)>(0);
  frame->Append(sizeof(RpcHeader));
  auto& header = frame->Get<RpcHeader>();
  header.request_id = HostToNet64(request_id);
  header.opcode = HostToNet16(opcode);
  header.flags = flags;
  header.reserved = 0;
  header.aux = HostToNet32(aux);
  if (body != nullptr) {
    frame->AppendChain(std::move(body));
  }
  return frame;
}

std::string ChainToString(const IOBuf* chain) {
  std::string out;
  if (chain == nullptr) {
    return out;
  }
  out.reserve(chain->ComputeChainDataLength());
  for (const IOBuf* buf = chain; buf != nullptr; buf = buf->Next()) {
    out.append(reinterpret_cast<const char*>(buf->Data()), buf->Length());
  }
  return out;
}

std::unique_ptr<IOBuf> BuildLenPrefixedBody(std::string_view head, std::string_view rest) {
  std::uint32_t head_len = HostToNet32(static_cast<std::uint32_t>(head.size()));
  auto body = IOBuf::Create(sizeof(head_len) + head.size());
  std::uint8_t* p = body->WritableData();
  std::memcpy(p, &head_len, sizeof(head_len));
  std::memcpy(p + sizeof(head_len), head.data(), head.size());
  if (!rest.empty()) {
    body->AppendChain(IOBuf::CopyBuffer(rest));
  }
  return body;
}

std::unique_ptr<IOBuf> BuildKeyVectorBody(const std::vector<std::string_view>& keys) {
  Kassert(keys.size() <= kMaxVectorKeys, "BuildKeyVectorBody: too many keys");
  std::size_t total = sizeof(std::uint32_t);
  for (std::string_view key : keys) {
    Kassert(key.size() <= 0xffff, "BuildKeyVectorBody: key too long");
    total += sizeof(std::uint16_t) + key.size();
  }
  auto body = IOBuf::Create(total);
  std::uint8_t* p = body->WritableData();
  std::uint32_t count = HostToNet32(static_cast<std::uint32_t>(keys.size()));
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (std::string_view key : keys) {
    std::uint16_t klen = HostToNet16(static_cast<std::uint16_t>(key.size()));
    std::memcpy(p, &klen, sizeof(klen));
    p += sizeof(klen);
    std::memcpy(p, key.data(), key.size());
    p += key.size();
  }
  return body;
}

bool ParseKeyVectorBody(const IOBuf* chain, std::vector<std::string>* keys) {
  keys->clear();
  if (chain == nullptr) {
    return false;
  }
  std::size_t remaining = chain->ComputeChainDataLength();
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (remaining < sizeof(count)) {
    return false;
  }
  chain->CopyOut(&count, sizeof(count), offset);
  count = NetToHost32(count);
  offset += sizeof(count);
  remaining -= sizeof(count);
  if (count > kMaxVectorKeys) {
    return false;
  }
  keys->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint16_t klen = 0;
    if (remaining < sizeof(klen)) {
      return false;
    }
    chain->CopyOut(&klen, sizeof(klen), offset);
    klen = NetToHost16(klen);
    offset += sizeof(klen);
    remaining -= sizeof(klen);
    if (remaining < klen) {
      return false;
    }
    std::string key(klen, '\0');
    if (klen != 0) {
      chain->CopyOut(key.data(), klen, offset);
    }
    offset += klen;
    remaining -= klen;
    keys->push_back(std::move(key));
  }
  return remaining == 0;  // exact consumption: trailing bytes are malformed
}

bool ParseLenPrefixedBody(const std::string& raw, std::string* head, std::string* rest) {
  std::uint32_t head_len = 0;
  if (raw.size() < sizeof(head_len)) {
    return false;
  }
  std::memcpy(&head_len, raw.data(), sizeof(head_len));
  head_len = NetToHost32(head_len);
  if (raw.size() - sizeof(head_len) < head_len) {
    return false;
  }
  *head = raw.substr(sizeof(head_len), head_len);
  *rest = raw.substr(sizeof(head_len) + head_len);
  return true;
}

// --- RpcDemuxRoot -----------------------------------------------------------------------------

RpcDemuxRoot& RpcDemuxRoot::For(Runtime& runtime) {
  auto* root = runtime.TryGetSubsystem<RpcDemuxRoot>(Subsystem::kRpcDemux);
  if (root == nullptr) {
    auto owned = std::make_shared<RpcDemuxRoot>(runtime);
    root = owned.get();
    runtime.SetSubsystem(Subsystem::kRpcDemux, root);
    runtime.Adopt(std::move(owned));
  }
  return *root;
}

RpcDemuxRoot::RpcDemuxRoot(Runtime& runtime)
    : runtime_(runtime), services_(RcuManagerRoot::For(runtime), /*bucket_bits=*/5) {}

void RpcDemuxRoot::Install(EbbId service, RpcClient* client, RpcServer* server) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    Endpoint endpoint;
    if (Endpoint* existing = services_.Find(service)) {
      endpoint = *existing;  // writers serialize on control_mu_: this read is current
    } else {
      first = true;
    }
    if (client != nullptr) {
      Kassert(endpoint.client == nullptr, "RpcClient: service already has a client here");
      endpoint.client = client;
    }
    if (server != nullptr) {
      Kassert(endpoint.server == nullptr, "RpcServer: service already has a server here");
      endpoint.server = server;
    }
    services_.InsertOrReplace(service, endpoint);
  }
  if (first) {
    RpcDemuxRoot* self = this;
    Messenger::For(runtime_).RegisterReceiver(
        service, [self, service](Ipv4Addr from, std::unique_ptr<IOBuf> message) {
          self->DispatchFrame(service, from, std::move(message));
        });
  }
}

void RpcDemuxRoot::Remove(EbbId service, RpcClient* client, RpcServer* server) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    Endpoint* existing = services_.Find(service);
    if (existing == nullptr) {
      return;
    }
    Endpoint endpoint = *existing;
    if (client != nullptr && endpoint.client == client) {
      endpoint.client = nullptr;
    }
    if (server != nullptr && endpoint.server == server) {
      endpoint.server = nullptr;
    }
    if (endpoint.client == nullptr && endpoint.server == nullptr) {
      services_.Erase(service);
      last = true;
    } else {
      services_.InsertOrReplace(service, endpoint);
    }
  }
  if (last) {
    auto* messenger = runtime_.TryGetSubsystem<Messenger>(Subsystem::kMessenger);
    if (messenger != nullptr) {
      messenger->UnregisterReceiver(service);
    }
  }
}

void RpcDemuxRoot::DispatchFrame(EbbId service, Ipv4Addr from,
                                 std::unique_ptr<IOBuf> message) {
  // Peek the flags byte (chain-aware: offset 10 can straddle) to pick a direction, then
  // hand the whole frame to that half. The endpoint lookup is the lock-free read side:
  // frames fanning in on every core resolve their (client, server) pair concurrently, and
  // the Endpoint NODE observed here stays allocated for the rest of this event even
  // against a racing Remove (epoch-deferred reclamation). The pointed-to client/server
  // OBJECTS are the owner's concern, exactly as before this table existed: destroying one
  // while its machine's event loops may still be dispatching frames to it is a
  // use-after-free — tear endpoints down only from quiesced machines (every current
  // caller does; SimWorld teardown runs after Shutdown).
  RpcHeader header;
  if (message == nullptr || message->ComputeChainDataLength() < sizeof(RpcHeader)) {
    return;
  }
  message->CopyOut(&header, sizeof(header));
  Endpoint* endpoint = services_.Find(service);
  if (endpoint == nullptr) {
    return;
  }
  if (header.flags & kRpcResponse) {
    if (endpoint->client != nullptr) {
      endpoint->client->HandleFrame(from, std::move(message));
    }
  } else if (endpoint->server != nullptr) {
    endpoint->server->HandleFrame(from, std::move(message));
  }
}

// --- RpcClient --------------------------------------------------------------------------------

RpcClient::RpcClient(Runtime& runtime, EbbId service, Ipv4Addr server)
    : messenger_(Messenger::For(runtime)), service_(service), server_(server),
      cores_(std::max<std::size_t>(1, runtime.num_cores())) {
  RcuManagerRoot& rcu = RcuManagerRoot::For(runtime);
  for (CoreState& core : cores_) {
    // Per-core pending windows are small (a pipeline's worth); 32 buckets keeps chains
    // short without bloating per-client footprint across many services.
    core.pending = std::make_unique<RcuHashTable<std::uint64_t, std::shared_ptr<PendingCall>>>(
        rcu, /*bucket_bits=*/5);
  }
  RpcDemuxRoot::For(runtime).Install(service, this, nullptr);
}

RpcClient::~RpcClient() {
  RpcDemuxRoot::For(messenger_.runtime()).Remove(service_, this, nullptr);
  // Orphan every still-pending call. Collect first (ForEach is read-side iteration), then
  // fail the promises; the tables and their nodes die with this object — no deferred
  // erases are needed because no NEW dispatch can resolve this client after Remove (and
  // destruction on a machine whose loops are still dispatching was never legal; see
  // DispatchFrame's lifetime note).
  std::vector<std::shared_ptr<PendingCall>> orphaned;
  for (CoreState& core : cores_) {
    core.pending->ForEach([&orphaned](const std::uint64_t&,
                                      const std::shared_ptr<PendingCall>& call) {
      orphaned.push_back(call);
    });
  }
  for (auto& call : orphaned) {
    call->promise.SetException(
        std::make_exception_ptr(std::runtime_error("rpc: client torn down")));
  }
}

std::size_t RpcClient::pending_calls() const {
  std::size_t total = 0;
  for (const CoreState& core : cores_) {
    total += core.pending->size();
  }
  return total;
}

Future<RpcClient::Response> RpcClient::Call(std::uint16_t opcode, std::uint32_t aux,
                                            std::unique_ptr<IOBuf> body) {
  // The pending entry lives in the ISSUING core's table, and the request id carries the
  // core so the response (arriving on whichever core owns the server connection) can find
  // it. Same-core issue/complete is the steady state — symmetric RSS brings the reply back
  // to the dialing core — so the bucket spinlocks below are uncontended in practice.
  std::size_t core = CurrentContext().machine_core;
  CoreState& state = cores_[core];
  std::uint64_t request_id =
      (static_cast<std::uint64_t>(core) << kCoreShift) | state.next_seq++;
  auto call = std::make_shared<PendingCall>();
  Future<Response> result = call->promise.GetFuture();
  state.pending->Insert(request_id, std::move(call));
  messenger_.Send(server_, service_,
                  BuildRpcFrame(request_id, opcode, /*flags=*/0, aux, std::move(body)));
  return result;
}

void RpcClient::HandleFrame(Ipv4Addr, std::unique_ptr<IOBuf> message) {
  RpcHeader header;
  std::unique_ptr<IOBuf> body;
  if (!ParseFrame(std::move(message), &header, &body)) {
    return;  // runt frame: drop (transport corruption cannot happen in-sim; belt and braces)
  }
  std::size_t core = static_cast<std::size_t>(header.request_id >> kCoreShift);
  if (core >= cores_.size()) {
    return;  // id from a core this client never had: stale or corrupt
  }
  // Extract claims the promise exactly once: a duplicate or stale response finds the entry
  // already gone and is dropped here.
  std::shared_ptr<PendingCall> call;
  if (!cores_[core].pending->Extract(header.request_id, &call)) {
    return;
  }
  if (header.flags & kRpcError) {
    call->promise.SetException(
        std::make_exception_ptr(std::runtime_error(ChainToString(body.get()))));
    return;
  }
  Response response;
  response.aux = header.aux;
  response.body = std::move(body);
  call->promise.SetValue(std::move(response));
}

// --- RpcServer --------------------------------------------------------------------------------

RpcServer::RpcServer(Runtime& runtime, EbbId service)
    : messenger_(Messenger::For(runtime)), service_(service) {
  RpcDemuxRoot::For(runtime).Install(service, nullptr, this);
}

RpcServer::~RpcServer() {
  RpcDemuxRoot::For(messenger_.runtime()).Remove(service_, nullptr, this);
}

void RpcServer::Reply(Ipv4Addr to, std::uint64_t request_id, std::uint32_t aux,
                      std::unique_ptr<IOBuf> body) {
  messenger_.Send(to, service_,
                  BuildRpcFrame(request_id, /*opcode=*/0, kRpcResponse, aux, std::move(body)));
}

void RpcServer::ReplyError(Ipv4Addr to, std::uint64_t request_id, std::string_view message) {
  messenger_.Send(to, service_,
                  BuildRpcFrame(request_id, /*opcode=*/0, kRpcResponse | kRpcError,
                                /*aux=*/0, IOBuf::CopyBuffer(message)));
}

void RpcServer::HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message) {
  RpcHeader header;
  std::unique_ptr<IOBuf> body;
  if (!ParseFrame(std::move(message), &header, &body)) {
    return;
  }
  HandleCall(from, header.request_id, header.opcode, header.aux, std::move(body));
}

}  // namespace dist
}  // namespace ebbrt
