#include "src/dist/rpc.h"

#include <stdexcept>
#include <utility>

#include "src/event/timer.h"
#include "src/obs/metrics.h"
#include "src/platform/context.h"
#include "src/rcu/rcu.h"

namespace ebbrt {
namespace dist {

namespace {

// Splits a received message into (header, body chain). The header may straddle chain
// elements (a message that crossed segment boundaries), so it is chain-copied out.
bool ParseFrame(std::unique_ptr<IOBuf> message, RpcHeader* header,
                std::unique_ptr<IOBuf>* body) {
  IOBufQueue queue;
  queue.Append(std::move(message));
  if (queue.ChainLength() < sizeof(RpcHeader)) {
    return false;
  }
  queue.Peek(header, sizeof(RpcHeader));
  queue.TrimStart(sizeof(RpcHeader));
  *body = queue.Move();
  header->request_id = NetToHost64(header->request_id);
  header->opcode = NetToHost16(header->opcode);
  header->aux = NetToHost32(header->aux);
  header->trace_id = NetToHost64(header->trace_id);
  header->span_id = NetToHost32(header->span_id);
  header->parent_span = NetToHost32(header->parent_span);
  return true;
}

}  // namespace

std::unique_ptr<IOBuf> BuildRpcFrame(std::uint64_t request_id, std::uint16_t opcode,
                                     std::uint8_t flags, std::uint32_t aux,
                                     std::unique_ptr<IOBuf> body, const RpcTrace& trace) {
  auto frame = IOBuf::CreateReserveFor<sizeof(RpcHeader)>(0);
  frame->Append(sizeof(RpcHeader));
  auto& header = frame->Get<RpcHeader>();
  header.request_id = HostToNet64(request_id);
  header.opcode = HostToNet16(opcode);
  header.flags = flags;
  header.reserved = 0;
  header.aux = HostToNet32(aux);
  header.trace_id = HostToNet64(trace.trace_id);
  header.span_id = HostToNet32(trace.span_id);
  header.parent_span = HostToNet32(trace.parent_span);
  if (body != nullptr) {
    frame->AppendChain(std::move(body));
  }
  return frame;
}

std::string ChainToString(const IOBuf* chain) {
  std::string out;
  if (chain == nullptr) {
    return out;
  }
  out.reserve(chain->ComputeChainDataLength());
  for (const IOBuf* buf = chain; buf != nullptr; buf = buf->Next()) {
    out.append(reinterpret_cast<const char*>(buf->Data()), buf->Length());
  }
  return out;
}

std::unique_ptr<IOBuf> BuildLenPrefixedBody(std::string_view head, std::string_view rest) {
  std::uint32_t head_len = HostToNet32(static_cast<std::uint32_t>(head.size()));
  auto body = IOBuf::Create(sizeof(head_len) + head.size());
  std::uint8_t* p = body->WritableData();
  std::memcpy(p, &head_len, sizeof(head_len));
  std::memcpy(p + sizeof(head_len), head.data(), head.size());
  if (!rest.empty()) {
    body->AppendChain(IOBuf::CopyBuffer(rest));
  }
  return body;
}

std::unique_ptr<IOBuf> BuildKeyVectorBody(const std::vector<std::string_view>& keys) {
  Kassert(keys.size() <= kMaxVectorKeys, "BuildKeyVectorBody: too many keys");
  std::size_t total = sizeof(std::uint32_t);
  for (std::string_view key : keys) {
    Kassert(key.size() <= 0xffff, "BuildKeyVectorBody: key too long");
    total += sizeof(std::uint16_t) + key.size();
  }
  auto body = IOBuf::Create(total);
  std::uint8_t* p = body->WritableData();
  std::uint32_t count = HostToNet32(static_cast<std::uint32_t>(keys.size()));
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (std::string_view key : keys) {
    std::uint16_t klen = HostToNet16(static_cast<std::uint16_t>(key.size()));
    std::memcpy(p, &klen, sizeof(klen));
    p += sizeof(klen);
    std::memcpy(p, key.data(), key.size());
    p += key.size();
  }
  return body;
}

bool ParseKeyVectorBody(const IOBuf* chain, std::vector<std::string>* keys) {
  keys->clear();
  if (chain == nullptr) {
    return false;
  }
  std::size_t remaining = chain->ComputeChainDataLength();
  std::size_t offset = 0;
  std::uint32_t count = 0;
  if (remaining < sizeof(count)) {
    return false;
  }
  chain->CopyOut(&count, sizeof(count), offset);
  count = NetToHost32(count);
  offset += sizeof(count);
  remaining -= sizeof(count);
  if (count > kMaxVectorKeys) {
    return false;
  }
  keys->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint16_t klen = 0;
    if (remaining < sizeof(klen)) {
      return false;
    }
    chain->CopyOut(&klen, sizeof(klen), offset);
    klen = NetToHost16(klen);
    offset += sizeof(klen);
    remaining -= sizeof(klen);
    if (remaining < klen) {
      return false;
    }
    std::string key(klen, '\0');
    if (klen != 0) {
      chain->CopyOut(key.data(), klen, offset);
    }
    offset += klen;
    remaining -= klen;
    keys->push_back(std::move(key));
  }
  return remaining == 0;  // exact consumption: trailing bytes are malformed
}

bool ParseLenPrefixedBody(const std::string& raw, std::string* head, std::string* rest) {
  std::uint32_t head_len = 0;
  if (raw.size() < sizeof(head_len)) {
    return false;
  }
  std::memcpy(&head_len, raw.data(), sizeof(head_len));
  head_len = NetToHost32(head_len);
  if (raw.size() - sizeof(head_len) < head_len) {
    return false;
  }
  *head = raw.substr(sizeof(head_len), head_len);
  *rest = raw.substr(sizeof(head_len) + head_len);
  return true;
}

// --- RpcDemuxRoot -----------------------------------------------------------------------------

RpcDemuxRoot& RpcDemuxRoot::For(Runtime& runtime) {
  auto* root = runtime.TryGetSubsystem<RpcDemuxRoot>(Subsystem::kRpcDemux);
  if (root == nullptr) {
    auto owned = std::make_shared<RpcDemuxRoot>(runtime);
    root = owned.get();
    runtime.SetSubsystem(Subsystem::kRpcDemux, root);
    runtime.Adopt(std::move(owned));
  }
  return *root;
}

RpcDemuxRoot::RpcDemuxRoot(Runtime& runtime)
    : runtime_(runtime), services_(RcuManagerRoot::For(runtime), /*bucket_bits=*/5) {}

void RpcDemuxRoot::Install(EbbId service, RpcClient* client, RpcServer* server) {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    Endpoint endpoint;
    if (Endpoint* existing = services_.Find(service)) {
      endpoint = *existing;  // writers serialize on control_mu_: this read is current
    } else {
      first = true;
    }
    if (client != nullptr) {
      Kassert(endpoint.client == nullptr, "RpcClient: service already has a client here");
      endpoint.client = client;
    }
    if (server != nullptr) {
      Kassert(endpoint.server == nullptr, "RpcServer: service already has a server here");
      endpoint.server = server;
    }
    services_.InsertOrReplace(service, endpoint);
  }
  if (first) {
    RpcDemuxRoot* self = this;
    Messenger::For(runtime_).RegisterReceiver(
        service, [self, service](Ipv4Addr from, std::unique_ptr<IOBuf> message) {
          self->DispatchFrame(service, from, std::move(message));
        });
  }
}

void RpcDemuxRoot::Remove(EbbId service, RpcClient* client, RpcServer* server) {
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    Endpoint* existing = services_.Find(service);
    if (existing == nullptr) {
      return;
    }
    Endpoint endpoint = *existing;
    if (client != nullptr && endpoint.client == client) {
      endpoint.client = nullptr;
    }
    if (server != nullptr && endpoint.server == server) {
      endpoint.server = nullptr;
    }
    if (endpoint.client == nullptr && endpoint.server == nullptr) {
      services_.Erase(service);
      last = true;
    } else {
      services_.InsertOrReplace(service, endpoint);
    }
  }
  if (last) {
    auto* messenger = runtime_.TryGetSubsystem<Messenger>(Subsystem::kMessenger);
    if (messenger != nullptr) {
      messenger->UnregisterReceiver(service);
    }
  }
}

void RpcDemuxRoot::DispatchFrame(EbbId service, Ipv4Addr from,
                                 std::unique_ptr<IOBuf> message) {
  // Peek the flags byte (chain-aware: offset 10 can straddle) to pick a direction, then
  // hand the whole frame to that half. The endpoint lookup is the lock-free read side:
  // frames fanning in on every core resolve their (client, server) pair concurrently, and
  // the Endpoint NODE observed here stays allocated for the rest of this event even
  // against a racing Remove (epoch-deferred reclamation). The pointed-to client/server
  // OBJECTS are the owner's concern, exactly as before this table existed: destroying one
  // while its machine's event loops may still be dispatching frames to it is a
  // use-after-free — tear endpoints down only from quiesced machines (every current
  // caller does; SimWorld teardown runs after Shutdown).
  RpcHeader header;
  if (message == nullptr || message->ComputeChainDataLength() < sizeof(RpcHeader)) {
    return;
  }
  message->CopyOut(&header, sizeof(header));
  Endpoint* endpoint = services_.Find(service);
  if (endpoint == nullptr) {
    return;
  }
  if (header.flags & kRpcResponse) {
    if (endpoint->client != nullptr) {
      endpoint->client->HandleFrame(from, std::move(message));
    }
  } else if (endpoint->server != nullptr) {
    endpoint->server->HandleFrame(from, std::move(message));
  }
}

// --- RpcClient --------------------------------------------------------------------------------

RpcClient::RpcClient(Runtime& runtime, EbbId service, Ipv4Addr server)
    : runtime_(runtime), messenger_(Messenger::For(runtime)), service_(service),
      server_(server), cores_(std::max<std::size_t>(1, runtime.num_cores())) {
  RcuManagerRoot& rcu = RcuManagerRoot::For(runtime);
  for (std::shared_ptr<CoreLane>& lane : cores_) {
    lane = std::make_shared<CoreLane>();
    // Per-core pending windows are small (a pipeline's worth); 32 buckets keeps chains
    // short without bloating per-client footprint across many services.
    lane->pending =
        std::make_unique<RcuHashTable<std::uint64_t, std::shared_ptr<PendingCall>>>(
            rcu, /*bucket_bits=*/5);
  }
  RpcDemuxRoot::For(runtime).Install(service, this, nullptr);
  // Peer death fails everything in flight to that peer: no call waits out a deadline for a
  // response whose connection is already gone (and calls WITHOUT a deadline still resolve).
  RpcClient* self = this;
  peer_observer_ = messenger_.AddPeerObserver([self](Ipv4Addr peer) {
    if (peer == self->server_) {
      self->OnPeerDown();
    }
  });
}

RpcClient::~RpcClient() {
  // Unhook the resolution sources first — observer fan-out and frame dispatch must not see
  // a half-dead client — then orphan whatever is still unresolved.
  messenger_.RemovePeerObserver(peer_observer_);
  RpcDemuxRoot::For(messenger_.runtime()).Remove(service_, this, nullptr);
  // Claim every still-pending call through Extract (the same exactly-once gate the
  // response/timeout/peer-down paths use), then fail the promises. Calls parked between
  // retry attempts live outside the table; they are drained from `parked` and flagged
  // abandoned so a backoff timer that fires later does nothing. Destruction on a machine
  // whose loops are still dispatching was never legal (see DispatchFrame's lifetime note);
  // armed sweep timers outlive us harmlessly — they hold weak lane references.
  std::vector<std::shared_ptr<PendingCall>> orphaned;
  for (std::shared_ptr<CoreLane>& lane : cores_) {
    std::vector<std::uint64_t> ids;
    lane->pending->ForEach(
        [&ids](const std::uint64_t& id, const std::shared_ptr<PendingCall>&) {
          ids.push_back(id);
        });
    for (std::uint64_t id : ids) {
      std::shared_ptr<PendingCall> call;
      if (lane->pending->Extract(id, &call)) {
        orphaned.push_back(std::move(call));
      }
    }
    for (auto& call : lane->parked) {
      call->abandoned = true;
      orphaned.push_back(call);
    }
    lane->parked.clear();
  }
  for (auto& call : orphaned) {
    call->promise.SetException(
        std::make_exception_ptr(RpcPeerLost("rpc: client torn down")));
  }
}

std::size_t RpcClient::pending_calls() const {
  std::size_t total = 0;
  for (const std::shared_ptr<CoreLane>& lane : cores_) {
    total += lane->pending->size() + lane->parked.size();
  }
  return total;
}

std::uint64_t RpcClient::NowNs() const {
  return runtime_.GetSubsystem<TimerRoot>(Subsystem::kTimer).executor().Now();
}

Future<RpcClient::Response> RpcClient::Call(std::uint16_t opcode, std::uint32_t aux,
                                            std::unique_ptr<IOBuf> body,
                                            const CallOptions& options) {
  // The pending entry lives in the ISSUING core's table, and the request id carries the
  // core so the response (arriving on whichever core owns the server connection) can find
  // it. Same-core issue/complete is the steady state — symmetric RSS brings the reply back
  // to the dialing core — so the bucket spinlocks below are uncontended in practice.
  std::size_t core = CurrentContext().machine_core;
  CoreLane& lane = *cores_[core];
  std::uint64_t request_id =
      (static_cast<std::uint64_t>(core) << kCoreShift) | lane.next_seq++;
  auto call = std::make_shared<PendingCall>();
  call->opcode = opcode;
  call->aux = aux;
  call->options = options;
  call->backoff_ns = options.retry.initial_backoff_ns;
  if (options.deadline_ns != 0 && options.retry.max_attempts > 1 && body != nullptr) {
    // Keep a master copy for re-sends: Clone is a refcounted view of the same storage, so
    // this is descriptor cost, not a byte copy.
    call->retry_body = body->Clone();
  }
  obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_);
  if (obs_root != nullptr && obs_root->tracing_on()) {
    // Adopt the core's ambient trace (a router fan-out, a traced handler) or start a fresh
    // one. These ids name the LOGICAL call for its whole life: every retry re-sends them,
    // so the server's spans parent into the same tree no matter how many attempts it took.
    obs::MetricRegistry& rep = obs_root->RepFor(core);
    obs::MetricRegistry::TraceContext ctx = rep.current();
    call->trace.trace_id = ctx.trace_id != 0 ? ctx.trace_id : rep.NewTraceId();
    call->trace.parent_span = ctx.trace_id != 0 ? ctx.span_id : 0;
    call->trace.span_id = rep.NewSpanId();
    call->span_start_ns = NowNs();
  }
  RpcTrace trace = call->trace;
  Future<Response> result = call->promise.GetFuture();
  lane.pending->Insert(request_id, std::move(call));
  if (options.deadline_ns != 0) {
    std::uint64_t now = NowNs();
    ScheduleExpiry(core, request_id, now + options.deadline_ns, now);
  }
  messenger_.Send(server_, service_,
                  BuildRpcFrame(request_id, opcode, /*flags=*/0, aux, std::move(body), trace));
  return result;
}

void RpcClient::ScheduleExpiry(std::size_t core, std::uint64_t request_id,
                               std::uint64_t deadline, std::uint64_t now) {
  CoreLane& lane = *cores_[core];
  lane.expiries.push(Expiry{deadline, request_id});
  // One armed sweep covers every deadline at or after it; with a uniform deadline_ns calls
  // expire in issue order, so this arms roughly once per deadline WINDOW (the sweep
  // re-arms itself while work remains), not once per call.
  if (deadline < lane.armed_until) {
    ArmSweep(core, deadline, now);
  }
}

void RpcClient::ArmSweep(std::size_t core, std::uint64_t deadline, std::uint64_t now) {
  CoreLane& lane = *cores_[core];
  lane.armed_until = deadline;
  std::weak_ptr<CoreLane> weak = cores_[core];
  RpcClient* self = this;
  Timer::Instance()->Start(deadline > now ? deadline - now : 0, [self, weak, core] {
    if (weak.lock() == nullptr) {
      return;  // client torn down; its teardown already resolved everything
    }
    self->Sweep(core);
  });
}

void RpcClient::Sweep(std::size_t core) {
  CoreLane& lane = *cores_[core];
  lane.armed_until = kNoSweep;
  std::uint64_t now = NowNs();
  while (!lane.expiries.empty() && lane.expiries.top().deadline <= now) {
    std::uint64_t request_id = lane.expiries.top().request_id;
    lane.expiries.pop();
    std::shared_ptr<PendingCall> call;
    if (!lane.pending->Extract(request_id, &call)) {
      continue;  // completed (or otherwise claimed) before its deadline: lazy heap entry
    }
    stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    if (call->attempts < call->options.retry.max_attempts) {
      // Park for the backoff, then re-send under a FRESH id: a straggler response to this
      // attempt must find nothing (late_drops), not the retry's entry.
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t delay = call->backoff_ns;
      call->backoff_ns = call->options.retry.NextBackoff(call->backoff_ns);
      call->attempts++;
      lane.parked.push_back(call);
      std::weak_ptr<CoreLane> weak = cores_[core];
      RpcClient* self = this;
      Timer::Instance()->Start(delay, [self, weak, core, call] {
        if (weak.lock() == nullptr || call->abandoned) {
          return;
        }
        self->Resend(core, call);
      });
    } else {
      RecordClientSpan(*call, obs::SpanStatus::kTimeout);
      call->promise.SetException(std::make_exception_ptr(RpcTimeout(
          "rpc: deadline expired (service " + std::to_string(service_) + ", opcode " +
          std::to_string(call->opcode) + ", " + std::to_string(call->attempts) +
          " attempt(s))")));
    }
  }
  if (!lane.expiries.empty()) {
    ArmSweep(core, lane.expiries.top().deadline, now);
  }
}

void RpcClient::Resend(std::size_t core, const std::shared_ptr<PendingCall>& call) {
  CoreLane& lane = *cores_[core];
  for (auto it = lane.parked.begin(); it != lane.parked.end(); ++it) {
    if (it->get() == call.get()) {
      lane.parked.erase(it);
      break;
    }
  }
  std::uint64_t request_id =
      (static_cast<std::uint64_t>(core) << kCoreShift) | lane.next_seq++;
  lane.pending->Insert(request_id, call);
  std::uint64_t now = NowNs();
  ScheduleExpiry(core, request_id, now + call->options.deadline_ns, now);
  std::unique_ptr<IOBuf> body =
      call->retry_body != nullptr ? call->retry_body->Clone() : nullptr;
  // Fresh request id, SAME trace ids: the retry is the same logical call on the wire.
  messenger_.Send(server_, service_,
                  BuildRpcFrame(request_id, call->opcode, /*flags=*/0, call->aux,
                                std::move(body), call->trace));
}

void RpcClient::OnPeerDown() {
  // The connection carrying every outstanding call just died: no response is coming. Claim
  // each entry through Extract — concurrent sweeps/responses on other cores race safely,
  // exactly one path wins each id. Calls parked for a retry backoff are left alone: their
  // re-send dials a fresh connection, which is the desired recovery.
  std::vector<std::shared_ptr<PendingCall>> lost;
  for (std::shared_ptr<CoreLane>& lane : cores_) {
    std::vector<std::uint64_t> ids;
    lane->pending->ForEach(
        [&ids](const std::uint64_t& id, const std::shared_ptr<PendingCall>&) {
          ids.push_back(id);
        });
    for (std::uint64_t id : ids) {
      std::shared_ptr<PendingCall> call;
      if (lane->pending->Extract(id, &call)) {
        lost.push_back(std::move(call));
      }
    }
  }
  stats_.peer_failures.fetch_add(lost.size(), std::memory_order_relaxed);
  for (auto& call : lost) {
    RecordClientSpan(*call, obs::SpanStatus::kPeerLost);
    call->promise.SetException(std::make_exception_ptr(
        RpcPeerLost("rpc: connection to " + server_.ToString() + " lost (service " +
                    std::to_string(service_) + ")")));
  }
}

void RpcClient::HandleFrame(Ipv4Addr, std::unique_ptr<IOBuf> message) {
  RpcHeader header;
  std::unique_ptr<IOBuf> body;
  if (!ParseFrame(std::move(message), &header, &body)) {
    return;  // runt frame: drop (transport corruption cannot happen in-sim; belt and braces)
  }
  std::size_t core = static_cast<std::size_t>(header.request_id >> kCoreShift);
  if (core >= cores_.size()) {
    return;  // id from a core this client never had: stale or corrupt
  }
  // Extract claims the promise exactly once: a duplicate response — or a straggler whose
  // attempt already timed out, failed over, or was re-sent under a fresh id — finds the
  // entry gone and is dropped WITH A STAT, never double-resolved.
  std::shared_ptr<PendingCall> call;
  if (!cores_[core]->pending->Extract(header.request_id, &call)) {
    stats_.late_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (header.flags & kRpcError) {
    RecordClientSpan(*call, obs::SpanStatus::kError);
    call->promise.SetException(
        std::make_exception_ptr(std::runtime_error(ChainToString(body.get()))));
    return;
  }
  RecordClientSpan(*call, obs::SpanStatus::kOk);
  Response response;
  response.aux = header.aux;
  response.body = std::move(body);
  call->promise.SetValue(std::move(response));
}

void RpcClient::RecordClientSpan(const PendingCall& call, obs::SpanStatus status) {
  if (call.trace.trace_id == 0) {
    return;  // issued untraced (tracing off, or the plane didn't exist yet)
  }
  obs::ObsRoot* obs_root = obs::ObsRoot::TryFor(runtime_);
  if (obs_root == nullptr) {
    return;
  }
  std::size_t core = CurrentContext().machine_core;
  obs::SpanRecord span;
  span.trace_id = call.trace.trace_id;
  span.span_id = call.trace.span_id;
  span.parent_span = call.trace.parent_span;
  span.service = service_;
  span.opcode = call.opcode;
  span.kind = obs::SpanKind::kClient;
  span.status = status;
  span.start_ns = call.span_start_ns;
  span.end_ns = NowNs();
  span.attempts = static_cast<std::uint32_t>(call.attempts);
  span.core = static_cast<std::uint32_t>(core);
  obs_root->RepFor(core).RecordSpan(span);
}

// --- RpcServer --------------------------------------------------------------------------------

RpcServer::RpcServer(Runtime& runtime, EbbId service)
    : messenger_(Messenger::For(runtime)), service_(service) {
  RpcDemuxRoot::For(runtime).Install(service, nullptr, this);
}

RpcServer::~RpcServer() {
  RpcDemuxRoot::For(messenger_.runtime()).Remove(service_, nullptr, this);
}

void RpcServer::Reply(Ipv4Addr to, std::uint64_t request_id, std::uint32_t aux,
                      std::unique_ptr<IOBuf> body) {
  messenger_.Send(to, service_,
                  BuildRpcFrame(request_id, /*opcode=*/0, kRpcResponse, aux, std::move(body)));
}

void RpcServer::ReplyError(Ipv4Addr to, std::uint64_t request_id, std::string_view message) {
  messenger_.Send(to, service_,
                  BuildRpcFrame(request_id, /*opcode=*/0, kRpcResponse | kRpcError,
                                /*aux=*/0, IOBuf::CopyBuffer(message)));
}

void RpcServer::HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message) {
  RpcHeader header;
  std::unique_ptr<IOBuf> body;
  if (!ParseFrame(std::move(message), &header, &body)) {
    return;
  }
  obs::ObsRoot* obs_root =
      header.trace_id != 0 ? obs::ObsRoot::TryFor(messenger_.runtime()) : nullptr;
  if (obs_root == nullptr || !obs_root->tracing_on()) {
    HandleCall(from, header.request_id, header.opcode, header.aux, std::move(body));
    return;
  }
  // Traced request: this hop gets its own span, parented on the caller's (the span id the
  // frame carried), and the handler runs under it as the ambient context — so any RPC the
  // handler issues in turn stitches into the same trace.
  std::size_t core = CurrentContext().machine_core;
  obs::MetricRegistry& rep = obs_root->RepFor(core);
  obs::SpanRecord span;
  span.trace_id = header.trace_id;
  span.span_id = rep.NewSpanId();
  span.parent_span = header.span_id;
  span.service = service_;
  span.opcode = header.opcode;
  span.kind = obs::SpanKind::kServer;
  span.status = obs::SpanStatus::kOk;
  span.start_ns = obs_root->NowNs();
  span.attempts = 1;
  span.core = static_cast<std::uint32_t>(core);
  {
    obs::ObsRoot::TraceScope scope(*obs_root, span.trace_id, span.span_id);
    HandleCall(from, header.request_id, header.opcode, header.aux, std::move(body));
  }
  // The span closes when the handler returns (every in-tree handler replies synchronously;
  // an async handler's span would cover dispatch, not the eventual reply).
  span.end_ns = obs_root->NowNs();
  rep.RecordSpan(span);
}

}  // namespace dist
}  // namespace ebbrt
