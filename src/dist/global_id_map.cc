#include "src/dist/global_id_map.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/event/timer.h"

namespace ebbrt {
namespace dist {

namespace {

// The hosted representative: the map and the id-block authority.
class GlobalIdMapServer final : public RpcServer {
 public:
  explicit GlobalIdMapServer(Runtime& runtime) : RpcServer(runtime, kGlobalIdMapId) {}

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                  std::uint32_t aux, std::unique_ptr<IOBuf> body) override {
    switch (static_cast<GlobalIdMap::Opcode>(opcode)) {
      case GlobalIdMap::kSet: {
        std::string key;
        std::string value;
        if (!ParseLenPrefixedBody(ChainToString(body.get()), &key, &value)) {
          ReplyError(from, request_id, "GlobalIdMap::Set: malformed request");
          return;
        }
        {
          // HandleCall runs on whichever core owns the inbound connection; two clients'
          // connections RSS-steer to different frontend cores, so the authority state is
          // locked (a name lookup is not a datapath).
          std::lock_guard<std::mutex> lock(mu_);
          map_[std::move(key)] = std::move(value);
        }
        Reply(from, request_id, 0, nullptr);
        return;
      }
      case GlobalIdMap::kGet: {
        std::string key = ChainToString(body.get());
        bool found = false;
        std::string value;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = map_.find(key);
          if (it != map_.end()) {
            found = true;
            value = it->second;
          }
        }
        if (!found) {
          ReplyError(from, request_id, "GlobalIdMap::Get: no such key: " + key);
          return;
        }
        Reply(from, request_id, 0, IOBuf::CopyBuffer(value));
        return;
      }
      case GlobalIdMap::kAllocateIdBlock: {
        EbbId count = aux;
        if (count == 0) {
          ReplyError(from, request_id, "GlobalIdMap::AllocateIdBlock: zero count");
          return;
        }
        EbbId first;
        {
          std::lock_guard<std::mutex> lock(mu_);
          // Blocks must stay below the fast-path translation bound (the promise in the
          // header): a block crossing kMaxFastEbbIds would install ids the per-core flat
          // tables cannot hold, aborting the installing machine on first use. `count` is
          // a remote input — bound it, don't trust it.
          if (count > kMaxFastEbbIds - next_block_) {
            first = kNullEbbId;
          } else {
            first = next_block_;
            next_block_ += count;
          }
        }
        if (first == kNullEbbId) {
          ReplyError(from, request_id,
                     "GlobalIdMap::AllocateIdBlock: global id space exhausted");
          return;
        }
        Reply(from, request_id, first, nullptr);
        return;
      }
    }
    ReplyError(from, request_id, "GlobalIdMap: unknown opcode");
  }

  std::mutex mu_;  // serializes the authority state across the frontend's cores
  std::unordered_map<std::string, std::string> map_;
  EbbId next_block_ = kGlobalIdBlockBase;
};

}  // namespace

GlobalIdMap::GlobalIdMap(Runtime& runtime, Ipv4Addr frontend)
    : client_(runtime, kGlobalIdMapId, frontend) {}

GlobalIdMap& GlobalIdMap::For(Runtime& runtime, Ipv4Addr frontend) {
  auto* map = runtime.TryGetSubsystem<GlobalIdMap>(Subsystem::kGlobalIdMap);
  if (map == nullptr) {
    auto owned = std::make_shared<GlobalIdMap>(runtime, frontend);
    map = owned.get();
    runtime.SetSubsystem(Subsystem::kGlobalIdMap, map);
    runtime.InstallRoot(kGlobalIdMapId, map);
    runtime.Adopt(std::move(owned));
  }
  // The frontend binding is fixed at first use; a different address later would silently
  // resolve names against the wrong authority — fail fast instead.
  Kassert(map->client_.server() == frontend, "GlobalIdMap::For: frontend already bound");
  return *map;
}

void GlobalIdMap::ServeOn(Runtime& runtime) {
  Kassert(runtime.hosted(),
          "GlobalIdMap::ServeOn: the naming authority runs on the hosted frontend");
  runtime.Adopt(std::make_shared<GlobalIdMapServer>(runtime));
}

Future<void> GlobalIdMap::Set(std::string key, std::string value) {
  return client_.Call(kSet, 0, BuildLenPrefixedBody(key, value))
      .Then([](Future<RpcClient::Response> f) { f.Get(); });
}

Future<std::string> GlobalIdMap::Get(std::string key) {
  return client_.Call(kGet, 0, IOBuf::CopyBuffer(key))
      .Then([](Future<RpcClient::Response> f) { return ChainToString(f.Get().body.get()); });
}

Future<std::string> GlobalIdMap::GetWithRetry(std::string key, RetryPolicy policy) {
  struct Retry {
    GlobalIdMap* map = nullptr;
    std::string key;
    RetryPolicy policy;
    Promise<std::string> done;
    std::function<void(int, std::uint64_t)> attempt_fn;
  };
  auto state = std::make_shared<Retry>();
  state->map = this;
  state->key = std::move(key);
  state->policy = policy;
  Future<std::string> result = state->done.GetFuture();
  state->attempt_fn = [state](int attempt, std::uint64_t backoff_ns) {
    state->map->Get(state->key).Then([state, attempt, backoff_ns](Future<std::string> f) {
      std::string value;
      try {
        value = f.Get();
      } catch (const std::runtime_error& e) {
        // Retry ONLY the lookup-miss error, and only while event machinery exists. Any
        // other failure — notably "rpc: client torn down", which the client destructor
        // raises INLINE through this continuation during machine teardown — must
        // propagate immediately: arming a Timer from a dying machine (or for an error
        // that will never heal) would crash or spin instead of failing cleanly.
        bool missing_key = std::string_view(e.what()).find("no such key") !=
                           std::string_view::npos;
        if (!missing_key || !HaveContext() || attempt >= state->policy.max_attempts) {
          state->done.SetException(
              !missing_key
                  ? std::current_exception()
                  : std::make_exception_ptr(std::runtime_error(
                        "GlobalIdMap::GetWithRetry: " + state->key +
                        " not registered after " + std::to_string(attempt) +
                        " lookups (last error: " + e.what() + ")")));
          state->attempt_fn = nullptr;  // break the self-capture cycle
          return;
        }
        std::uint64_t next_backoff = state->policy.NextBackoff(backoff_ns);
        Timer::Instance()->Start(backoff_ns, [state, attempt, next_backoff] {
          state->attempt_fn(attempt + 1, next_backoff);
        });
        return;
      }
      state->done.SetValue(std::move(value));
      state->attempt_fn = nullptr;
    });
  };
  state->attempt_fn(1, policy.initial_backoff_ns);
  return result;
}

Future<EbbId> GlobalIdMap::AllocateIdBlock(EbbId count) {
  return client_.Call(kAllocateIdBlock, count, nullptr)
      .Then([](Future<RpcClient::Response> f) { return f.Get().aux; });
}

}  // namespace dist
}  // namespace ebbrt
