// Messenger — typed inter-machine messaging for the hybrid structure (paper §2.1, §4.3).
//
// The paper's distinguishing claim is that a native library-OS instance stays lean by
// offloading generality (naming, POSIX I/O, global id allocation) to a hosted EbbRT frontend
// inside Linux, through *distributed Ebbs* whose per-machine representatives message each
// other. The Messenger is the transport those representatives share: one per-machine Ebb
// (static id kMessengerId) that ships length-prefixed, EbbId-addressed messages over the
// existing zero-copy TCP datapath.
//
// Properties, all inherited from the datapath rather than re-invented here:
//
//   * Zero-copy end-to-end: a payload is an IOBuf chain. Send prepends one 8-byte framing
//     header buffer and scatter/gathers the chain into TCP (no flattening); Receive carves
//     each message back out of the segment stream with IOBufQueue::Split, so a message that
//     fits one segment is delivered as a view of the very buffer the (simulated) DMA engine
//     filled.
//   * Event-scoped batching: connections run with SetAutoCork(true), so a burst of Sends
//     issued inside one event — e.g. a pipelined window of RPCs — leaves as a single wire
//     segment (the PR 2 corking machinery, now exercised by a second real protocol).
//   * Lazy connection management: one cached connection per peer pair. The first Send to a
//     peer dials it (messages queue while the handshake runs); an inbound connection is
//     cached under the peer's address so replies reuse it instead of dialing back. A closed
//     or aborted connection is dropped from the cache and the next Send re-dials.
//   * Flow control: sends beyond the TCP window are queued per-peer and drained from
//     SendReady (the stack never buffers; the Messenger is the application here and does its
//     own pacing, exactly as §3.6 prescribes).
//   * Lock-free dispatch plane: the per-message lookups — peer connection on Send, receiver
//     on Dispatch — read RcuHashTables, the same structure (and the same read-side rules) as
//     the TCP connection table (§3.6). Every core demultiplexes concurrently without a
//     single atomic on the steady-state path; only control-plane transitions
//     (connect/accept/register/drop) serialize, on `control_mu_`, and retired entries are
//     reclaimed after an epoch grace period (every core past an event boundary).
//
// Delivery is at-most-once and unordered across peers (ordered per peer, as TCP is); RPC
// semantics (request ids, response matching, error propagation) live one layer up in
// dist::rpc.
#ifndef EBBRT_SRC_DIST_MESSENGER_H_
#define EBBRT_SRC_DIST_MESSENGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/runtime.h"
#include "src/iobuf/iobuf.h"
#include "src/iobuf/iobuf_queue.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {
namespace dist {

// The well-known port every machine's Messenger listens on (0xebb, naturally).
inline constexpr std::uint16_t kMessengerPort = 0x0ebb;

// Hard ceiling on one message's payload. The length word is remote input: without a bound, a
// corrupt or hostile peer could park the receiver waiting for gigabytes that never come (and
// pin the reassembly queue while it waits). A frame claiming more is invalid by definition —
// the connection's framing can no longer be trusted, so the peer is dropped.
inline constexpr std::size_t kMaxMessageBytes = 16 * 1024 * 1024;

// Wire framing: one header per message, network byte order, payload chained behind.
struct MsgHeader {
  std::uint32_t length;  // payload bytes following this header
  std::uint32_t target;  // destination Ebb id on the receiving machine
} __attribute__((packed));
static_assert(sizeof(MsgHeader) == 8);

class Messenger {
 public:
  // Invoked on the receiving machine with the sender's address and the payload chain
  // (ownership transferred). Runs on the core the connection's RSS steering chose, from the
  // device event — run-to-completion rules apply.
  using Receiver = std::function<void(Ipv4Addr from, std::unique_ptr<IOBuf> payload)>;

  // The per-machine instance (Subsystem::kMessenger slot, root registered under
  // kMessengerId), created on first use: brings up the listen socket on kMessengerPort.
  // Must first be called from one of `runtime`'s cores.
  static Messenger& For(Runtime& runtime);

  explicit Messenger(Runtime& runtime);
  ~Messenger();

  Messenger(const Messenger&) = delete;
  Messenger& operator=(const Messenger&) = delete;

  // Routes messages addressed to `target` (one receiver per id per machine; registering
  // replaces). Distributed Ebbs register their rep's dispatch here during construction.
  void RegisterReceiver(EbbId target, Receiver receiver);
  void UnregisterReceiver(EbbId target);

  // Ships `payload` to `target` on the machine at `dst`. Fire-and-forget: undeliverable
  // messages (connect failure, connection torn down with data queued) are counted and
  // dropped — reliability above delivery order is the RPC layer's job. May be called from
  // any of this machine's cores; the message is forwarded to the peer connection's owner
  // core when needed.
  void Send(Ipv4Addr dst, EbbId target, std::unique_ptr<IOBuf> payload);

  // Peer-death notification. Observers run whenever the cached connection to a peer dies —
  // close, abort, framing failure, or dial failure — AFTER the cache entry is gone (so an
  // observer that re-sends dials fresh). Invoked on the core that owned the dying
  // connection; observers must tolerate any core. This is how the RPC layer fails pending
  // calls routed through a dead peer instead of leaking them (rpc.h's RpcPeerLost).
  using PeerObserver = std::function<void(Ipv4Addr peer)>;
  std::uint64_t AddPeerObserver(PeerObserver observer);
  void RemovePeerObserver(std::uint64_t handle);

  Runtime& runtime() { return runtime_; }

  // Counters are atomics: Deliver/teardown tick them from whichever core owns a peer's
  // connection, concurrently with control-path updates and lock-free readers.
  struct Stats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
    std::atomic<std::uint64_t> payload_bytes_sent{0};
    std::atomic<std::uint64_t> payload_bytes_received{0};
    std::atomic<std::uint64_t> dials{0};       // outbound connections initiated
    std::atomic<std::uint64_t> accepts{0};     // inbound connections cached
    std::atomic<std::uint64_t> reconnects{0};  // cache drops after an established conn died
    std::atomic<std::uint64_t> peer_down_notifications{0};  // observer fan-outs (per peer death)
    std::atomic<std::uint64_t> dropped{0};     // undeliverable messages (see Send)
    // Frames failing header validation: length above kMaxMessageBytes, or a target EbbId
    // with no registered receiver. Both tick here and drop the offending peer connection
    // (an unframeable stream cannot be resynchronized; an unknown target means the two
    // sides disagree about what this machine serves).
    std::atomic<std::uint64_t> bad_frames{0};
    // Control-plane mutex acquisitions (connect/accept/register/drop). The steady-state
    // receive and send paths take ZERO locks — tests pin that by asserting this counter
    // stays flat while message counters climb.
    std::atomic<std::uint64_t> control_locks{0};
  };
  const Stats& stats() const { return stats_; }

  // Per-peer bad-frame attribution (control plane, for the obs registry's
  // messenger_bad_frames{peer="..."} series): which remote machine keeps sending frames
  // that fail validation. Entries survive the peer's connection teardown — the signal IS
  // the history of misbehavior.
  std::vector<std::pair<Ipv4Addr, std::uint64_t>> BadFramesByPeer();

 private:
  // One cached connection to a peer machine. A Peer IS the TcpHandler for its connection;
  // it owns the RX reassembly queue and the not-yet-sendable TX backlog. All Peer state is
  // touched only on `core` (the dialing core, or the RSS core for accepted connections).
  class Peer final : public TcpHandler {
   public:
    Peer(Messenger& messenger, Ipv4Addr addr, std::size_t core)
        : messenger_(messenger), addr_(addr), core_(core) {}

    // TcpHandler edges (connection's owner core, from the device event).
    void Receive(std::unique_ptr<IOBuf> buf) override;
    void Close() override;
    void SendReady() override;
    void Abort() override;

    // Frames and sends (or queues) one message. Owner core only.
    void Deliver(EbbId target, std::unique_ptr<IOBuf> payload);
    // Dial completion: attach the established pcb and drain everything queued.
    void Established(TcpPcb pcb);
    void DialFailed();

    Ipv4Addr addr() const { return addr_; }
    std::size_t core() const { return core_; }

   private:
    void Drain();          // push backlog into the window
    void DropBacklog();    // teardown: count undelivered (incl. partially-sent) messages
    // Invalid frame: drop this peer (bad_frames already ticked by the caller). The
    // connection closes, the cache entry is erased, and the next Send re-dials fresh.
    void FailFraming();

    Messenger& messenger_;
    Ipv4Addr addr_;
    std::size_t core_;
    bool established_ = false;
    bool dead_ = false;
    IOBufQueue rx_;       // inbound byte stream awaiting complete messages
    IOBufQueue backlog_;  // framed messages awaiting connection / send window
    // Frame lengths of the backlog's messages, popped as Drain's byte stream crosses each
    // boundary — so teardown counts only messages that never fully reached TCP as dropped.
    std::deque<std::size_t> backlog_lens_;
    std::size_t front_sent_ = 0;  // bytes of backlog_lens_.front() already sent
  };

  // Returns (creating + dialing if absent) the cached peer for `addr`.
  std::shared_ptr<Peer> PeerFor(Ipv4Addr addr);
  void DropPeer(Peer& peer, bool was_established);
  // Delivers one received message to its registered receiver. Returns false when `target`
  // has no receiver — the caller treats the frame as invalid.
  bool Dispatch(Ipv4Addr from, EbbId target, std::unique_ptr<IOBuf> payload);

  Runtime& runtime_;
  NetworkManager& net_;

  // The dispatch plane. Per-message lookups (PeerFor's fast path, Dispatch) are lock-free
  // RcuHashTable::Find on every core; an entry observed by a reader stays valid until that
  // reader's event ends (epoch reclamation, shared with the TCP connection table). Writers
  // — dial/accept inserts, teardown erases, receiver (un)registration — serialize on
  // `control_mu_` so compound read-modify-write transitions (e.g. "erase only if the cached
  // peer is still me") stay atomic; each acquisition ticks stats_.control_locks.
  std::mutex control_mu_;
  RcuHashTable<std::uint32_t, std::shared_ptr<Peer>> peers_;
  RcuHashTable<EbbId, std::shared_ptr<Receiver>> receivers_;
  // Peer-death observers (control plane: registration at endpoint construction, fan-out at
  // connection teardown — never on the per-message path). Guarded by control_mu_; DropPeer
  // snapshots the table and invokes outside the lock so observers may Send/dial freely.
  std::uint64_t next_peer_observer_ = 1;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<PeerObserver>>> peer_observers_;

  // Ticks stats_.bad_frames and the per-peer ledger. Bad frames are a connection-fatal
  // event (the peer is about to be dropped), so taking control_mu_ here is the same
  // control-plane cost the teardown already pays — never a steady-state lock.
  void NoteBadFrame(Ipv4Addr peer);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> bad_frames_by_peer_;  // addr.raw -> count

  Stats stats_;
};

}  // namespace dist
}  // namespace ebbrt

#endif  // EBBRT_SRC_DIST_MESSENGER_H_
