#include "src/dist/file_system.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace ebbrt {
namespace dist {

namespace {

// WriteFile request body: the shared [u32 path_len][path][contents...] marshal
// (BuildLenPrefixedBody). Read/size request body: the path itself. GetFileSize response
// body: u64 size, network order.

// Rejects paths that could escape the sandbox root: absolute, empty, any ".." component,
// or an embedded NUL (which would truncate at the C-string boundary and sidestep the
// component check). (The frontend is the trusted side; this guards against native-side
// bugs.)
bool SafeRelativePath(const std::string& path) {
  if (path.empty() || path.front() == '/' || path.find('\0') != std::string::npos) {
    return false;
  }
  std::size_t i = 0;
  while (i < path.size()) {
    std::size_t next = path.find('/', i);
    std::string_view component(path.data() + i, (next == std::string::npos ? path.size() : next) - i);
    if (component == "..") {
      return false;
    }
    i = next == std::string::npos ? path.size() : next + 1;
  }
  return true;
}

class FileSystemServer final : public RpcServer {
 public:
  FileSystemServer(Runtime& runtime, std::string root)
      : RpcServer(runtime, kFileSystemId), root_(std::move(root)) {
    ::mkdir(root_.c_str(), 0755);  // EEXIST is fine: reuse the sandbox
  }

 private:
  void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                  std::uint32_t /*aux*/, std::unique_ptr<IOBuf> body) override {
    switch (static_cast<FileSystem::Opcode>(opcode)) {
      case FileSystem::kWriteFile:
        HandleWrite(from, request_id, std::move(body));
        return;
      case FileSystem::kReadFile:
        HandleRead(from, request_id, ChainToString(body.get()));
        return;
      case FileSystem::kGetFileSize:
        HandleSize(from, request_id, ChainToString(body.get()));
        return;
    }
    ReplyError(from, request_id, "FileSystem: unknown opcode");
  }

  // Resolves a shipped path against the sandbox; empty result means rejection.
  std::string Resolve(const std::string& path) const {
    if (!SafeRelativePath(path)) {
      return {};
    }
    return root_ + "/" + path;
  }

  void HandleWrite(Ipv4Addr from, std::uint64_t request_id, std::unique_ptr<IOBuf> body) {
    std::string path;
    std::string contents;
    if (!ParseLenPrefixedBody(ChainToString(body.get()), &path, &contents)) {
      ReplyError(from, request_id, "FileSystem::WriteFile: malformed request");
      return;
    }
    std::string full = Resolve(path);
    if (full.empty()) {
      ReplyError(from, request_id, "FileSystem::WriteFile: rejected path: " + path);
      return;
    }
    std::FILE* f = std::fopen(full.c_str(), "wb");
    if (f == nullptr) {
      ReplyError(from, request_id,
                 "FileSystem::WriteFile: cannot open " + path + ": " + std::strerror(errno));
      return;
    }
    bool ok = contents.empty() ||
              std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
      ReplyError(from, request_id, "FileSystem::WriteFile: short write: " + path);
      return;
    }
    Reply(from, request_id, 0, nullptr);
  }

  void HandleRead(Ipv4Addr from, std::uint64_t request_id, const std::string& path) {
    std::string full = Resolve(path);
    if (full.empty()) {
      ReplyError(from, request_id, "FileSystem::ReadFile: rejected path: " + path);
      return;
    }
    std::FILE* f = std::fopen(full.c_str(), "rb");
    if (f == nullptr) {
      ReplyError(from, request_id, "FileSystem::ReadFile: no such file: " + path);
      return;
    }
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.append(buf, n);
    }
    bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
      ReplyError(from, request_id, "FileSystem::ReadFile: read error: " + path);
      return;
    }
    Reply(from, request_id, 0,
          contents.empty() ? nullptr : IOBuf::CopyBuffer(contents));
  }

  void HandleSize(Ipv4Addr from, std::uint64_t request_id, const std::string& path) {
    std::string full = Resolve(path);
    struct ::stat st;
    if (full.empty() || ::stat(full.c_str(), &st) != 0) {
      ReplyError(from, request_id, "FileSystem::GetFileSize: no such file: " + path);
      return;
    }
    std::uint64_t size = HostToNet64(static_cast<std::uint64_t>(st.st_size));
    auto body = IOBuf::Create(sizeof(size));
    std::memcpy(body->WritableData(), &size, sizeof(size));
    Reply(from, request_id, 0, std::move(body));
  }

  std::string root_;
};

}  // namespace

FileSystem::FileSystem(Runtime& runtime, Ipv4Addr frontend)
    : client_(runtime, kFileSystemId, frontend) {}

FileSystem& FileSystem::For(Runtime& runtime, Ipv4Addr frontend) {
  auto* fs = static_cast<FileSystem*>(runtime.FindRoot(kFileSystemId));
  if (fs == nullptr) {
    auto owned = std::make_shared<FileSystem>(runtime, frontend);
    fs = owned.get();
    runtime.InstallRoot(kFileSystemId, fs);
    runtime.Adopt(std::move(owned));
  }
  // The frontend binding is fixed at first use; a different address later would silently
  // ship calls to the wrong machine — fail fast instead.
  Kassert(fs->client_.server() == frontend, "FileSystem::For: frontend already bound");
  return *fs;
}

void FileSystem::ServeOn(Runtime& runtime, std::string root) {
  Kassert(runtime.hosted(),
          "FileSystem::ServeOn: POSIX I/O runs on the hosted frontend");
  runtime.Adopt(std::make_shared<FileSystemServer>(runtime, std::move(root)));
}

Future<void> FileSystem::WriteFile(std::string path, std::string contents) {
  return client_.Call(kWriteFile, 0, BuildLenPrefixedBody(path, contents))
      .Then([](Future<RpcClient::Response> f) { f.Get(); });
}

Future<std::string> FileSystem::ReadFile(std::string path) {
  return client_.Call(kReadFile, 0, IOBuf::CopyBuffer(path))
      .Then([](Future<RpcClient::Response> f) { return ChainToString(f.Get().body.get()); });
}

Future<std::uint64_t> FileSystem::GetFileSize(std::string path) {
  return client_.Call(kGetFileSize, 0, IOBuf::CopyBuffer(path))
      .Then([](Future<RpcClient::Response> f) {
        RpcClient::Response response = f.Get();
        std::uint64_t size = 0;
        if (response.body != nullptr &&
            response.body->ComputeChainDataLength() >= sizeof(size)) {
          response.body->CopyOut(&size, sizeof(size));
        }
        return NetToHost64(size);
      });
}

}  // namespace dist
}  // namespace ebbrt
