// GlobalIdMap — distributed naming and global EbbId allocation, served by the hosted
// frontend (paper §2.1, §4.3).
//
// The hybrid structure keeps the native library OS lean by letting the hosted EbbRT instance
// inside Linux own the application's *global* coordination state:
//
//   * a key -> value name service (service discovery: "service/memcached" -> "10.0.0.2:11211"),
//   * the authority for system-wide-unique EbbId blocks. A machine asks for a block once at
//     bring-up and installs it into its EbbAllocator (SetGlobalBlock), after which ids that
//     must resolve on every machine are allocated locally with no further round trips.
//
// The native representative is an RpcClient that ships each call to the frontend; the hosted
// representative (ServeOn) executes against an in-memory map. All results come back through
// Futures, so lookup chains compose with the rest of the runtime (§3.5) and remote failures
// surface as exceptions in the final continuation.
#ifndef EBBRT_SRC_DIST_GLOBAL_ID_MAP_H_
#define EBBRT_SRC_DIST_GLOBAL_ID_MAP_H_

#include <string>

#include "src/dist/retry.h"
#include "src/dist/rpc.h"

namespace ebbrt {
namespace dist {

// First id the frontend hands out in blocks. Global ids live above every machine's local
// range (kFirstFreeId upward) and below the fast-path translation bound, so an installed
// block's ids still resolve through the flat per-core tables.
inline constexpr EbbId kGlobalIdBlockBase = 0x2000;

class GlobalIdMap {
 public:
  enum Opcode : std::uint16_t {
    kSet = 1,
    kGet = 2,
    kAllocateIdBlock = 3,
  };

  // The machine's client representative, created on first use (Subsystem::kGlobalIdMap);
  // calls are shipped to the frontend at `frontend`. Later calls return the same rep (the
  // frontend address is fixed at first use).
  static GlobalIdMap& For(Runtime& runtime, Ipv4Addr frontend);

  // Brings up the hosted representative that executes the calls. `runtime` must be a hosted
  // instance — this is exactly the generality the native library OS offloads.
  static void ServeOn(Runtime& runtime);

  // Naming. Get fails (std::runtime_error through the Future) for an absent key.
  Future<void> Set(std::string key, std::string value);
  Future<std::string> Get(std::string key);

  // Get with the bounded-backoff retry every discovery consumer wants: an absent key is
  // the normal bring-up race (the service has not announced yet), so it is retried with
  // exponentially-doubling delays; after max_attempts the future fails with a diagnosable
  // error naming the key and attempt count — never an infinite poll. The schedule is the
  // dist-plane-wide dist::RetryPolicy (retry.h) — the same type RpcClient::CallOptions
  // takes, so one backoff implementation serves both layers.
  using RetryPolicy = dist::RetryPolicy;
  Future<std::string> GetWithRetry(std::string key, RetryPolicy policy);
  Future<std::string> GetWithRetry(std::string key) {
    return GetWithRetry(std::move(key), RetryPolicy());
  }

  // Allocates a [first, first+count) block of globally-unique EbbIds; install the result
  // into the machine's EbbAllocator with SetGlobalBlock.
  Future<EbbId> AllocateIdBlock(EbbId count);

  GlobalIdMap(Runtime& runtime, Ipv4Addr frontend);

 private:
  RpcClient client_;
};

}  // namespace dist
}  // namespace ebbrt

#endif  // EBBRT_SRC_DIST_GLOBAL_ID_MAP_H_
