// FileSystem — the function-shipping file I/O Ebb of the hybrid structure (paper §2.1, §4.3).
//
// A native EbbRT instance has no POSIX filesystem (and wants none: that generality is what
// it sheds for performance). When an application on the native instance needs file access —
// configuration, logs, a model checkpoint — it invokes this Ebb like any local object; the
// native representative marshals the call into a Messenger RPC and ships it to the hosted
// frontend, whose representative executes *real* POSIX I/O inside Linux under a sandbox root
// and ships the result back. "The generality lives in the general-purpose OS; the native
// instance keeps only the fast path."
//
// Failure semantics: remote errors (missing file, I/O failure, path escape attempts) travel
// back as flagged RPC responses and re-throw as std::runtime_error from Future::Get in the
// caller's continuation — the §3.5 property that only the final Then of a chain needs a
// try/catch, even when the failing step ran on another machine.
#ifndef EBBRT_SRC_DIST_FILE_SYSTEM_H_
#define EBBRT_SRC_DIST_FILE_SYSTEM_H_

#include <cstdint>
#include <string>

#include "src/dist/global_id_map.h"
#include "src/dist/rpc.h"

namespace ebbrt {
namespace dist {

class FileSystem {
 public:
  enum Opcode : std::uint16_t {
    kWriteFile = 1,
    kReadFile = 2,
    kGetFileSize = 3,
  };

  // The machine's client representative (root-registered under kFileSystemId), created on
  // first use; calls ship to the frontend at `frontend`.
  static FileSystem& For(Runtime& runtime, Ipv4Addr frontend);

  // Brings up the hosted representative: real POSIX I/O confined to the directory `root`
  // (created if absent). `runtime` must be a hosted instance.
  static void ServeOn(Runtime& runtime, std::string root);

  // Paths are relative to the frontend's sandbox root; absolute paths and ".." components
  // are rejected by the server.
  Future<void> WriteFile(std::string path, std::string contents);
  Future<std::string> ReadFile(std::string path);
  Future<std::uint64_t> GetFileSize(std::string path);

  FileSystem(Runtime& runtime, Ipv4Addr frontend);

 private:
  RpcClient client_;
};

}  // namespace dist
}  // namespace ebbrt

#endif  // EBBRT_SRC_DIST_FILE_SYSTEM_H_
