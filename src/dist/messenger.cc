#include "src/dist/messenger.h"

#include <utility>

#include "src/event/event_manager.h"
#include "src/platform/context.h"

namespace ebbrt {
namespace dist {

Messenger& Messenger::For(Runtime& runtime) {
  auto* messenger = runtime.TryGetSubsystem<Messenger>(Subsystem::kMessenger);
  if (messenger == nullptr) {
    auto owned = std::make_shared<Messenger>(runtime);
    messenger = owned.get();
    runtime.SetSubsystem(Subsystem::kMessenger, messenger);
    runtime.InstallRoot(kMessengerId, messenger);
    runtime.Adopt(std::move(owned));
  }
  return *messenger;
}

Messenger::Messenger(Runtime& runtime)
    : runtime_(runtime), net_(NetworkManager::For(runtime)) {
  // Inbound connections: the peer object is the connection's handler, owned by the
  // connection (shared anchor), and cached under the peer's address so replies ride the
  // same connection instead of dialing back.
  net_.tcp().Listen(kMessengerPort, [this](TcpPcb pcb) {
    Ipv4Addr addr = pcb.tuple().remote_ip;
    auto peer = std::make_shared<Peer>(*this, addr, CurrentContext().machine_core);
    pcb.InstallHandler(std::shared_ptr<TcpHandler>(peer));
    pcb.SetAutoCork(true);
    peer->Established(pcb);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.accepts++;
    // Simultaneous open: if a dialed connection already owns the cache slot, keep it for
    // sending — this accepted connection still receives until the remote closes it.
    peers_.emplace(addr.raw, std::move(peer));
  });
}

// No Unlisten here: the Messenger is adopted by its Runtime and destroyed during machine
// teardown, after the event loops (and the RCU machinery a listener erase would ride) are
// already gone. The listen socket dies with the machine's network stack.
Messenger::~Messenger() = default;

void Messenger::RegisterReceiver(EbbId target, Receiver receiver) {
  std::lock_guard<std::mutex> lock(mu_);
  receivers_[target] = std::make_shared<Receiver>(std::move(receiver));
}

void Messenger::UnregisterReceiver(EbbId target) {
  std::lock_guard<std::mutex> lock(mu_);
  receivers_.erase(target);
}

void Messenger::Send(Ipv4Addr dst, EbbId target, std::unique_ptr<IOBuf> payload) {
  std::shared_ptr<Peer> peer = PeerFor(dst);
  if (CurrentContext().machine_core == peer->core()) {
    peer->Deliver(target, std::move(payload));
    return;
  }
  // The connection's state lives on its owner core; forward the message there.
  event::Local().SpawnRemote(
      [peer, target, payload = std::move(payload)]() mutable {
        peer->Deliver(target, std::move(payload));
      },
      peer->core());
}

std::shared_ptr<Messenger::Peer> Messenger::PeerFor(Ipv4Addr addr) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = peers_.find(addr.raw);
    if (it != peers_.end()) {
      return it->second;
    }
  }
  // Lazily dial from this core; messages queue on the peer until the handshake completes.
  auto peer = std::make_shared<Peer>(*this, addr, CurrentContext().machine_core);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = peers_.emplace(addr.raw, peer);
    if (!inserted) {
      return it->second;  // another core raced the dial; use theirs
    }
    stats_.dials++;
  }
  net_.tcp().Connect(net_.interface(), addr, kMessengerPort).Then([peer](Future<TcpPcb> f) {
    try {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::shared_ptr<TcpHandler>(peer));
      pcb.SetAutoCork(true);
      peer->Established(pcb);
    } catch (...) {
      peer->DialFailed();
    }
  });
  return peer;
}

void Messenger::DropPeer(Peer& peer, bool was_established) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.find(peer.addr().raw);
  if (it != peers_.end() && it->second.get() == &peer) {
    peers_.erase(it);
    if (was_established) {
      stats_.reconnects++;  // the next Send to this address re-dials
    }
  }
}

void Messenger::Dispatch(Ipv4Addr from, EbbId target, std::unique_ptr<IOBuf> payload) {
  stats_.messages_received++;
  stats_.payload_bytes_received += payload->ComputeChainDataLength();
  std::shared_ptr<Receiver> receiver;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = receivers_.find(target);
    if (it != receivers_.end()) {
      receiver = it->second;
    }
  }
  if (receiver) {
    (*receiver)(from, std::move(payload));
  } else {
    stats_.dropped++;
  }
}

// --- Peer -------------------------------------------------------------------------------------

void Messenger::Peer::Deliver(EbbId target, std::unique_ptr<IOBuf> payload) {
  if (dead_) {
    messenger_.stats_.dropped++;
    return;
  }
  std::size_t len = payload != nullptr ? payload->ComputeChainDataLength() : 0;
  auto frame = IOBuf::CreateReserveFor<sizeof(MsgHeader)>(0);
  frame->Append(sizeof(MsgHeader));
  auto& header = frame->Get<MsgHeader>();
  header.length = HostToNet32(static_cast<std::uint32_t>(len));
  header.target = HostToNet32(target);
  if (len != 0) {
    frame->AppendChain(std::move(payload));
  }
  messenger_.stats_.messages_sent++;
  messenger_.stats_.payload_bytes_sent += len;
  backlog_lens_.push_back(sizeof(MsgHeader) + len);
  backlog_.Append(std::move(frame));
  Drain();
}

void Messenger::Peer::Drain() {
  if (!established_ || dead_) {
    return;
  }
  while (!backlog_.Empty()) {
    // Sendability is checked BEFORE splitting bytes out of the backlog: Send() consumes
    // its chain even when it refuses, so a split-then-fail would silently drop bytes from
    // the middle of the length-prefixed stream and desynchronize the peer's framing.
    TcpState state = Pcb().state();
    if (state != TcpState::kEstablished && state != TcpState::kCloseWait) {
      return;  // teardown in progress: the Close/Abort edge drops the backlog intact
    }
    std::size_t window = Pcb().SendWindowRemaining();
    if (window == 0) {
      return;  // SendReady resumes when ACKs open the window
    }
    std::size_t n = std::min(window, backlog_.ChainLength());
    bool sent = Pcb().Send(backlog_.Split(n));
    // With the state verified, !dead_ (so our side never closed first), and n bounded by
    // the window, Send cannot refuse — anything else would lose the split bytes.
    Kassert(sent, "Messenger::Peer::Drain: Send refused after state/window check");
    // Advance the per-message ledger past every message boundary the sent bytes crossed,
    // so only messages that never fully reached TCP count as dropped on teardown.
    while (n > 0) {
      std::size_t need = backlog_lens_.front() - front_sent_;
      if (n < need) {
        front_sent_ += n;
        break;
      }
      n -= need;
      front_sent_ = 0;
      backlog_lens_.pop_front();
    }
  }
}

void Messenger::Peer::Established(TcpPcb) {
  established_ = true;
  Drain();
}

void Messenger::Peer::DropBacklog() {
  // A partially-sent front message counts as dropped too: the peer cannot reassemble it.
  messenger_.stats_.dropped += backlog_lens_.size();
  backlog_ = IOBufQueue();
  backlog_lens_.clear();
  front_sent_ = 0;
}

void Messenger::Peer::DialFailed() {
  dead_ = true;
  DropBacklog();
  messenger_.DropPeer(*this, /*was_established=*/false);
}

void Messenger::Peer::Receive(std::unique_ptr<IOBuf> buf) {
  rx_.Append(std::move(buf));
  for (;;) {
    MsgHeader header;
    if (!rx_.Peek(&header, sizeof(header))) {
      return;  // incomplete header
    }
    std::size_t len = NetToHost32(header.length);
    if (rx_.ChainLength() < sizeof(header) + len) {
      return;  // incomplete payload: wait for more segments
    }
    rx_.TrimStart(sizeof(header));
    std::unique_ptr<IOBuf> payload =
        len != 0 ? rx_.Split(len) : IOBuf::Create(0);
    messenger_.Dispatch(addr_, NetToHost32(header.target), std::move(payload));
  }
}

void Messenger::Peer::Close() {
  messenger_.DropPeer(*this, established_);
  dead_ = true;
  DropBacklog();
  Pcb().Close();
}

void Messenger::Peer::SendReady() { Drain(); }

void Messenger::Peer::Abort() {
  messenger_.DropPeer(*this, established_);
  dead_ = true;
  DropBacklog();
}

}  // namespace dist
}  // namespace ebbrt
