#include "src/dist/messenger.h"

#include <utility>

#include "src/event/event_manager.h"
#include "src/platform/context.h"
#include "src/rcu/rcu.h"

namespace ebbrt {
namespace dist {

Messenger& Messenger::For(Runtime& runtime) {
  auto* messenger = runtime.TryGetSubsystem<Messenger>(Subsystem::kMessenger);
  if (messenger == nullptr) {
    auto owned = std::make_shared<Messenger>(runtime);
    messenger = owned.get();
    runtime.SetSubsystem(Subsystem::kMessenger, messenger);
    runtime.InstallRoot(kMessengerId, messenger);
    runtime.Adopt(std::move(owned));
  }
  return *messenger;
}

Messenger::Messenger(Runtime& runtime)
    : runtime_(runtime), net_(NetworkManager::For(runtime)),
      peers_(RcuManagerRoot::For(runtime), /*bucket_bits=*/6),
      receivers_(RcuManagerRoot::For(runtime), /*bucket_bits=*/6) {
  // Inbound connections: the peer object is the connection's handler, owned by the
  // connection (shared anchor), and cached under the peer's address so replies ride the
  // same connection instead of dialing back.
  net_.tcp().Listen(kMessengerPort, [this](TcpPcb pcb) {
    Ipv4Addr addr = pcb.tuple().remote_ip;
    auto peer = std::make_shared<Peer>(*this, addr, CurrentContext().machine_core);
    pcb.InstallHandler(std::shared_ptr<TcpHandler>(peer));
    pcb.SetAutoCork(true);
    peer->Established(pcb);
    std::lock_guard<std::mutex> lock(control_mu_);
    stats_.control_locks++;
    stats_.accepts++;
    // Simultaneous open: if a dialed connection already owns the cache slot, Insert keeps
    // it for sending — this accepted connection still receives until the remote closes it.
    peers_.Insert(addr.raw, std::move(peer));
  });
}

// No Unlisten here: the Messenger is adopted by its Runtime and destroyed during machine
// teardown, after the event loops (and the RCU machinery a listener erase would ride) are
// already gone. The listen socket dies with the machine's network stack, and the two RCU
// tables free their remaining nodes directly (their destructors never defer — by teardown
// there are no event-borne readers left to wait for).
Messenger::~Messenger() = default;

void Messenger::RegisterReceiver(EbbId target, Receiver receiver) {
  std::lock_guard<std::mutex> lock(control_mu_);
  stats_.control_locks++;
  receivers_.InsertOrReplace(target, std::make_shared<Receiver>(std::move(receiver)));
}

void Messenger::UnregisterReceiver(EbbId target) {
  std::lock_guard<std::mutex> lock(control_mu_);
  stats_.control_locks++;
  receivers_.Erase(target);
}

std::uint64_t Messenger::AddPeerObserver(PeerObserver observer) {
  std::lock_guard<std::mutex> lock(control_mu_);
  stats_.control_locks++;
  std::uint64_t handle = next_peer_observer_++;
  peer_observers_.emplace_back(handle, std::make_shared<PeerObserver>(std::move(observer)));
  return handle;
}

void Messenger::RemovePeerObserver(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(control_mu_);
  stats_.control_locks++;
  for (auto it = peer_observers_.begin(); it != peer_observers_.end(); ++it) {
    if (it->first == handle) {
      peer_observers_.erase(it);
      return;
    }
  }
}

void Messenger::Send(Ipv4Addr dst, EbbId target, std::unique_ptr<IOBuf> payload) {
  std::shared_ptr<Peer> peer = PeerFor(dst);
  if (CurrentContext().machine_core == peer->core()) {
    peer->Deliver(target, std::move(payload));
    return;
  }
  // The connection's state lives on its owner core; forward the message there. SpawnRemote
  // rides the lock-free interconnect: one slab-carved continuation node, one CAS onto the
  // owner core's exchange list, and a WakeCore only if that core had actually halted — the
  // per-message forward takes no lock anywhere.
  event::Local().SpawnRemote(
      [peer, target, payload = std::move(payload)]() mutable {
        peer->Deliver(target, std::move(payload));
      },
      peer->core());
}

std::shared_ptr<Messenger::Peer> Messenger::PeerFor(Ipv4Addr addr) {
  // Steady state: one lock-free table read per message. The shared_ptr copy is safe against
  // a concurrent erase — the node a reader observes is not reclaimed until every core
  // passes an event boundary, and this whole function runs inside one event.
  if (std::shared_ptr<Peer>* cached = peers_.Find(addr.raw)) {
    return *cached;
  }
  // Slow path: create the peer under the control mutex (the insert must be paired with the
  // dial exactly once). The dial itself happens after the lock is released — Connect can
  // run a fair amount of stack synchronously and must not nest under control_mu_.
  auto peer = std::make_shared<Peer>(*this, addr, CurrentContext().machine_core);
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    stats_.control_locks++;
    if (std::shared_ptr<Peer>* raced = peers_.Find(addr.raw)) {
      return *raced;  // another core raced the dial; use theirs
    }
    peers_.Insert(addr.raw, peer);
    stats_.dials++;
  }
  net_.tcp().Connect(net_.interface(), addr, kMessengerPort).Then([peer](Future<TcpPcb> f) {
    try {
      TcpPcb pcb = f.Get();
      pcb.InstallHandler(std::shared_ptr<TcpHandler>(peer));
      pcb.SetAutoCork(true);
      peer->Established(pcb);
    } catch (...) {
      peer->DialFailed();
    }
  });
  return peer;
}

void Messenger::DropPeer(Peer& peer, bool was_established) {
  bool erased = false;
  std::vector<std::shared_ptr<PeerObserver>> observers;
  {
    std::lock_guard<std::mutex> lock(control_mu_);
    stats_.control_locks++;
    std::shared_ptr<Peer>* cached = peers_.Find(peer.addr().raw);
    if (cached != nullptr && cached->get() == &peer) {
      peers_.Erase(peer.addr().raw);
      erased = true;
      if (was_established) {
        stats_.reconnects++;  // the next Send to this address re-dials
      }
      observers.reserve(peer_observers_.size());
      for (auto& entry : peer_observers_) {
        observers.push_back(entry.second);
      }
    }
  }
  // Only the CANONICAL connection's death notifies: a stale peer dying while a newer
  // connection owns the cache slot (simultaneous-open losers, superseded dials) changes
  // nothing for senders. Observers run outside control_mu_ — failing a pending call may
  // re-enter Send/PeerFor inline.
  if (erased && !observers.empty()) {
    stats_.peer_down_notifications++;
    Ipv4Addr addr = peer.addr();
    for (auto& observer : observers) {
      (*observer)(addr);
    }
  }
}

void Messenger::NoteBadFrame(Ipv4Addr peer) {
  stats_.bad_frames++;
  std::lock_guard<std::mutex> lock(control_mu_);
  stats_.control_locks++;
  for (auto& entry : bad_frames_by_peer_) {
    if (entry.first == peer.raw) {
      entry.second++;
      return;
    }
  }
  bad_frames_by_peer_.emplace_back(peer.raw, 1);
}

std::vector<std::pair<Ipv4Addr, std::uint64_t>> Messenger::BadFramesByPeer() {
  std::lock_guard<std::mutex> lock(control_mu_);
  stats_.control_locks++;
  std::vector<std::pair<Ipv4Addr, std::uint64_t>> out;
  out.reserve(bad_frames_by_peer_.size());
  for (const auto& entry : bad_frames_by_peer_) {
    out.emplace_back(Ipv4Addr{entry.first}, entry.second);
  }
  return out;
}

bool Messenger::Dispatch(Ipv4Addr from, EbbId target, std::unique_ptr<IOBuf> payload) {
  // Lock-free receiver lookup: the hot half of the receive path. The copied shared_ptr
  // keeps the receiver alive through the callback even against a concurrent Unregister.
  std::shared_ptr<Receiver> receiver;
  if (std::shared_ptr<Receiver>* found = receivers_.Find(target)) {
    receiver = *found;
  }
  if (receiver == nullptr) {
    return false;  // unregistered target: the caller counts it and drops the peer
  }
  stats_.messages_received++;
  stats_.payload_bytes_received += payload->ComputeChainDataLength();
  (*receiver)(from, std::move(payload));
  return true;
}

// --- Peer -------------------------------------------------------------------------------------

void Messenger::Peer::Deliver(EbbId target, std::unique_ptr<IOBuf> payload) {
  if (dead_) {
    messenger_.stats_.dropped++;
    return;
  }
  std::size_t len = payload != nullptr ? payload->ComputeChainDataLength() : 0;
  auto frame = IOBuf::CreateReserveFor<sizeof(MsgHeader)>(0);
  frame->Append(sizeof(MsgHeader));
  auto& header = frame->Get<MsgHeader>();
  header.length = HostToNet32(static_cast<std::uint32_t>(len));
  header.target = HostToNet32(target);
  if (len != 0) {
    frame->AppendChain(std::move(payload));
  }
  messenger_.stats_.messages_sent++;
  messenger_.stats_.payload_bytes_sent += len;
  backlog_lens_.push_back(sizeof(MsgHeader) + len);
  backlog_.Append(std::move(frame));
  Drain();
}

void Messenger::Peer::Drain() {
  if (!established_ || dead_) {
    return;
  }
  while (!backlog_.Empty()) {
    // Sendability is checked BEFORE splitting bytes out of the backlog: Send() consumes
    // its chain even when it refuses, so a split-then-fail would silently drop bytes from
    // the middle of the length-prefixed stream and desynchronize the peer's framing.
    TcpState state = Pcb().state();
    if (state != TcpState::kEstablished && state != TcpState::kCloseWait) {
      return;  // teardown in progress: the Close/Abort edge drops the backlog intact
    }
    std::size_t window = Pcb().SendWindowRemaining();
    if (window == 0) {
      return;  // SendReady resumes when ACKs open the window
    }
    std::size_t n = std::min(window, backlog_.ChainLength());
    bool sent = Pcb().Send(backlog_.Split(n));
    // With the state verified, !dead_ (so our side never closed first), and n bounded by
    // the window, Send cannot refuse — anything else would lose the split bytes.
    Kassert(sent, "Messenger::Peer::Drain: Send refused after state/window check");
    // Advance the per-message ledger past every message boundary the sent bytes crossed,
    // so only messages that never fully reached TCP count as dropped on teardown.
    while (n > 0) {
      std::size_t need = backlog_lens_.front() - front_sent_;
      if (n < need) {
        front_sent_ += n;
        break;
      }
      n -= need;
      front_sent_ = 0;
      backlog_lens_.pop_front();
    }
  }
}

void Messenger::Peer::Established(TcpPcb) {
  established_ = true;
  Drain();
}

void Messenger::Peer::DropBacklog() {
  // A partially-sent front message counts as dropped too: the peer cannot reassemble it.
  messenger_.stats_.dropped += backlog_lens_.size();
  backlog_ = IOBufQueue();
  backlog_lens_.clear();
  front_sent_ = 0;
}

void Messenger::Peer::DialFailed() {
  dead_ = true;
  DropBacklog();
  messenger_.DropPeer(*this, /*was_established=*/false);
}

void Messenger::Peer::FailFraming() {
  messenger_.DropPeer(*this, established_);
  dead_ = true;
  DropBacklog();
  rx_ = IOBufQueue();  // whatever else is queued is unframeable by definition
  Pcb().Close();
}

void Messenger::Peer::Receive(std::unique_ptr<IOBuf> buf) {
  if (dead_) {
    return;  // already failed validation; late segments from the dying connection
  }
  rx_.Append(std::move(buf));
  // Header validation (the length word and target id are remote input — never trust
  // them). An oversize length means the framing itself is garbage: fail immediately,
  // nothing behind it can be parsed. An unknown target means the peer is talking to a
  // service this machine does not run: the frame is dropped and the peer closed too, but
  // the framing is still intact — so the rest of the already-received bytes are delivered
  // first (a stale frame corked into a segment must not discard its well-formed
  // neighbors). Both paths are a stat and a close, never an assert: a remote machine's
  // bytes must never be able to bring this one down.
  bool unknown_target = false;
  for (;;) {
    MsgHeader header;
    if (!rx_.Peek(&header, sizeof(header))) {
      break;  // incomplete header
    }
    std::size_t len = NetToHost32(header.length);
    if (len > kMaxMessageBytes) {
      messenger_.NoteBadFrame(addr_);
      FailFraming();
      return;
    }
    if (rx_.ChainLength() < sizeof(header) + len) {
      break;  // incomplete payload: wait for more segments
    }
    rx_.TrimStart(sizeof(header));
    std::unique_ptr<IOBuf> payload =
        len != 0 ? rx_.Split(len) : IOBuf::Create(0);
    if (!messenger_.Dispatch(addr_, NetToHost32(header.target), std::move(payload))) {
      messenger_.NoteBadFrame(addr_);
      unknown_target = true;  // keep carving: later frames in this queue still deliver
    }
  }
  if (unknown_target) {
    FailFraming();
  }
}

void Messenger::Peer::Close() {
  messenger_.DropPeer(*this, established_);
  dead_ = true;
  DropBacklog();
  Pcb().Close();
}

void Messenger::Peer::SendReady() { Drain(); }

void Messenger::Peer::Abort() {
  messenger_.DropPeer(*this, established_);
  dead_ = true;
  DropBacklog();
}

}  // namespace dist
}  // namespace ebbrt
