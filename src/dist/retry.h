// RetryPolicy — the one bounded-backoff schedule every dist-plane retry loop shares.
//
// Two layers retry independently and must not each grow their own arithmetic:
//
//   * GlobalIdMap::GetWithRetry re-polls a name that has not been announced yet (the
//     bring-up race), and
//   * RpcClient re-sends a call whose per-attempt deadline expired (the fault-tolerance
//     path; see rpc.h's CallOptions).
//
// Both take this struct. `NextBackoff` is the single doubling implementation: capped at
// `max_backoff_ns` and overflow-safe — a caller-supplied backoff near 2^63 doubles to the
// cap, never wraps to a zero-delay hot loop.
#ifndef EBBRT_SRC_DIST_RETRY_H_
#define EBBRT_SRC_DIST_RETRY_H_

#include <cstdint>

namespace ebbrt {
namespace dist {

struct RetryPolicy {
  int max_attempts = 10;
  std::uint64_t initial_backoff_ns = 250'000;  // doubling per retry
  std::uint64_t max_backoff_ns = 8'000'000;

  std::uint64_t NextBackoff(std::uint64_t current_ns) const {
    if (current_ns >= max_backoff_ns) {
      return max_backoff_ns;
    }
    // current*2 would exceed the cap exactly when current > max - current; comparing
    // against the difference never overflows.
    if (current_ns > max_backoff_ns - current_ns) {
      return max_backoff_ns;
    }
    return current_ns * 2;
  }
};

}  // namespace dist
}  // namespace ebbrt

#endif  // EBBRT_SRC_DIST_RETRY_H_
