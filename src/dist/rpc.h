// Function-shipping RPC on top of dist::Messenger (paper §4.3).
//
// A distributed Ebb's native representative doesn't execute generality locally — it marshals
// the call and ships it to the hosted frontend's representative, which executes it for real
// and ships the result back. This header is the one place the call/return machinery lives:
//
//   * RpcHeader — 16-byte request/response frame rode inside a Messenger message.
//   * RpcClient — the caller side: per-core request-id -> Promise tables; Call() returns a
//     Future that fulfills with the response (or throws the server's error — errors cross
//     the wire as flagged responses and surface as std::runtime_error through Future::Get,
//     so a caller's continuation chain handles remote failures exactly like local
//     exceptions, §3.5). Every call carries CallOptions{deadline_ns, RetryPolicy}: expired
//     attempts are re-sent with bounded backoff and finally fail with RpcTimeout; a dead
//     peer connection fails everything routed through it with RpcPeerLost.
//   * RpcServer — the callee side: dispatches requests to a subclass's HandleCall and sends
//     Reply/ReplyError back to the requesting machine.
//   * RpcDemuxRoot — the per-machine service table: service id -> (client, server) endpoint
//     pair, an RcuHashTable read lock-free on every received frame. Concurrent RPC fan-in
//     from many cores/machines demultiplexes without a shared lock; only endpoint
//     install/remove (object construction/destruction) serializes.
//
// Request-id plumbing is per-core: ids carry the issuing core in their top bits and each
// core owns its own id counter and RcuHashTable of pending promises, so two cores issuing
// calls on the same client never touch the same cache line, and a response (which arrives
// on the core whose connection carried it — normally the issuing core, by symmetric RSS)
// claims its promise with one uncontended bucket operation. Exactly-once completion comes
// from RcuHashTable::Extract: whoever unlinks the entry fulfills it; a duplicate or stale
// response finds nothing.
//
// The response body is carried as an IOBuf chain end-to-end: the server appends its result
// chain behind the header buffer, and the client receives the chain that Messenger carved
// straight out of the TCP segment stream. Small scalar arguments/results ride the header's
// `aux` field and cost no body at all.
//
// One client and/or one server per (machine, service id): both ends register the service id
// with the machine's Messenger, and the flags field says which direction a frame travels, so
// a machine may be client and server of the same service simultaneously.
#ifndef EBBRT_SRC_DIST_RPC_H_
#define EBBRT_SRC_DIST_RPC_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/dist/messenger.h"
#include "src/dist/retry.h"
#include "src/future/future.h"
#include "src/rcu/rcu_hash_table.h"

namespace ebbrt {

namespace obs {
enum class SpanStatus : std::uint8_t;
}  // namespace obs

namespace dist {

// Transport-failure taxonomy. A server-side exception still crosses as a flagged response
// and surfaces as plain std::runtime_error; these subclasses mean the TRANSPORT failed —
// no response will ever come — which is exactly the distinction a replicated router needs
// (fail over on transport loss, propagate application errors untouched).
class RpcTransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The per-attempt deadline expired with no response (and no retry budget left).
class RpcTimeout : public RpcTransportError {
 public:
  using RpcTransportError::RpcTransportError;
};

// The connection carrying the call died (peer close/abort/dial failure) or the client was
// torn down with the call outstanding.
class RpcPeerLost : public RpcTransportError {
 public:
  using RpcTransportError::RpcTransportError;
};

// Default per-attempt deadline (virtual ns). Generous against every in-tree round trip —
// whole discovery retry ladders finish well inside one deadline — while still bounded: no
// call outlives its peer silently.
inline constexpr std::uint64_t kDefaultRpcDeadlineNs = 50'000'000;

// Per-call deadline/retry contract. `deadline_ns` bounds each ATTEMPT; 0 disables expiry
// (the call still resolves on peer death or client teardown — nothing is ever pending
// forever). `retry.max_attempts` counts total sends: the default re-sends once, with the
// shared dist::RetryPolicy backoff schedule (retry.h), before failing with RpcTimeout.
// Retried attempts use fresh request ids, so a straggling response to an abandoned attempt
// is dropped (stats().late_drops), never double-resolved.
struct CallOptions {
  std::uint64_t deadline_ns = kDefaultRpcDeadlineNs;
  RetryPolicy retry{/*max_attempts=*/2, /*initial_backoff_ns=*/500'000,
                    /*max_backoff_ns=*/8'000'000};
};

inline constexpr std::uint8_t kRpcResponse = 0x1;  // frame is a response, not a request
inline constexpr std::uint8_t kRpcError = 0x2;     // response body is an error message

struct RpcHeader {
  std::uint64_t request_id;  // pairs a response to its caller's promise (network order)
  std::uint16_t opcode;      // service-defined operation (network order)
  std::uint8_t flags;        // kRpcResponse / kRpcError
  std::uint8_t reserved;
  std::uint32_t aux;         // service-defined scalar argument/result (network order)
  // Distributed-trace propagation (obs layer; all-zero when tracing is off). The trace id
  // names the end-to-end operation; span_id names THIS hop's span, which the receiving
  // server adopts as the parent of its own span — so a MultiGet fan-out that fails over
  // still stitches into one tree. Retries and failover re-issues travel under fresh
  // request ids but the SAME trace id (network order).
  std::uint64_t trace_id;
  std::uint32_t span_id;
  std::uint32_t parent_span;
} __attribute__((packed));
static_assert(sizeof(RpcHeader) == 32);

// Trace identifiers a frame carries (see RpcHeader). Default-constructed = untraced.
struct RpcTrace {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;
};

inline std::uint64_t HostToNet64(std::uint64_t v) { return __builtin_bswap64(v); }
inline std::uint64_t NetToHost64(std::uint64_t v) { return __builtin_bswap64(v); }

// Builds [RpcHeader | body...] with the body chained zero-copy behind the header buffer.
std::unique_ptr<IOBuf> BuildRpcFrame(std::uint64_t request_id, std::uint16_t opcode,
                                     std::uint8_t flags, std::uint32_t aux,
                                     std::unique_ptr<IOBuf> body,
                                     const RpcTrace& trace = RpcTrace{});

// Flattens an IOBuf chain into a std::string (marshalling convenience for string-valued
// results; the zero-copy representation stays available to callers that keep the chain).
std::string ChainToString(const IOBuf* chain);

// The services' shared two-string body marshal: [u32 head_len][head][rest...], network
// order. `rest` rides as its own chain element (never flattened into the head buffer).
std::unique_ptr<IOBuf> BuildLenPrefixedBody(std::string_view head, std::string_view rest);
// Splits a received body back into (head, rest). False on a malformed (truncated) body.
bool ParseLenPrefixedBody(const std::string& raw, std::string* head, std::string* rest);

// --- Vectored (batch) body marshaling ---------------------------------------------------------
//
// Batch ops ship many small records under ONE RpcHeader — the whole point of bulk RPC is
// that the 16-byte header and the per-frame dispatch are paid once per shard, not once per
// key. The request direction is a packed key vector (keys are tiny; one buffer, one copy is
// the marshal itself). The response direction is where zero-copy matters: a vectored reply
// is an IOBuf chain of [scalar word][payload view] pairs, and ChainSplitter lets the caller
// carve the payloads back out as shared views of the received segment — scalars are
// chain-copied out (they may straddle segment boundaries), payload bytes never are.

// A key count above this is malformed by definition (bad_frames discipline: bound every
// remote-supplied count before trusting it).
inline constexpr std::size_t kMaxVectorKeys = 4096;

// [u32 count][count x (u16 klen)(key bytes)], network order, packed into one buffer.
std::unique_ptr<IOBuf> BuildKeyVectorBody(const std::vector<std::string_view>& keys);
// Unpacks a received key-vector body. False when malformed: count above kMaxVectorKeys,
// truncated entries, or trailing bytes beyond the declared keys (an exact-consumption rule,
// so a corrupt length can't smuggle payload past validation).
bool ParseKeyVectorBody(const IOBuf* chain, std::vector<std::string>* keys);

// Consuming reader over an owned reply chain. Scalars are Peek-copied (headers, not
// payload); SplitBytes carves payload off as a zero-copy shared view (IOBufQueue::Split).
class ChainSplitter {
 public:
  explicit ChainSplitter(std::unique_ptr<IOBuf> chain) {
    if (chain != nullptr) {
      queue_.Append(std::move(chain));
    }
  }

  std::size_t Remaining() const { return queue_.ChainLength(); }

  // Network-order scalar reads; false when the chain is exhausted (truncated reply).
  bool ReadU32(std::uint32_t* out) {
    if (!queue_.Peek(out, sizeof(*out))) {
      return false;
    }
    queue_.TrimStart(sizeof(*out));
    *out = NetToHost32(*out);
    return true;
  }

  // The next `n` bytes as an owned zero-copy subchain (nullptr for n == 0 — an empty
  // payload has no bytes to view — or when fewer than `n` bytes remain, after which the
  // splitter is poisoned so a truncated record can't half-parse).
  std::unique_ptr<IOBuf> SplitBytes(std::size_t n) {
    if (n == 0 || n > queue_.ChainLength()) {
      return nullptr;
    }
    return queue_.Split(n);
  }

 private:
  IOBufQueue queue_;
};

class RpcClient;
class RpcServer;

// Per-machine service demultiplexer (Subsystem::kRpcDemux). One Messenger receiver per live
// service routes each frame here; the service -> endpoints lookup is a lock-free
// RcuHashTable read on the frame's arrival core. Values are tiny POD pairs replaced whole
// (InsertOrReplace) so readers always see a consistent (client, server) snapshot.
class RpcDemuxRoot {
 public:
  struct Endpoint {
    RpcClient* client = nullptr;
    RpcServer* server = nullptr;
  };

  static RpcDemuxRoot& For(Runtime& runtime);

  explicit RpcDemuxRoot(Runtime& runtime);

  RpcDemuxRoot(const RpcDemuxRoot&) = delete;
  RpcDemuxRoot& operator=(const RpcDemuxRoot&) = delete;

  // Endpoint registration (object construction/destruction — the control plane). The first
  // endpoint of a service registers the Messenger receiver; the last removal unregisters
  // it. Asserts on duplicate halves.
  void Install(EbbId service, RpcClient* client, RpcServer* server);
  void Remove(EbbId service, RpcClient* client, RpcServer* server);

  // Per-frame dispatch (lock-free read side; runs on the frame's arrival core).
  void DispatchFrame(EbbId service, Ipv4Addr from, std::unique_ptr<IOBuf> message);

 private:
  Runtime& runtime_;
  std::mutex control_mu_;  // serializes Install/Remove only; DispatchFrame never takes it
  RcuHashTable<EbbId, Endpoint> services_;
};

class RpcClient {
 public:
  struct Response {
    std::uint32_t aux = 0;          // scalar result from the header
    std::unique_ptr<IOBuf> body;    // result bytes (chain; may be empty)
  };

  // Registers this machine's client half of `service` with its Messenger. `server` is the
  // machine whose representative executes the calls (the hosted frontend).
  RpcClient(Runtime& runtime, EbbId service, Ipv4Addr server);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Ships opcode(aux, body) to the server; the future fulfills with the response or throws
  // the server's error as std::runtime_error. Requests issued in one event are auto-corked
  // into as few wire segments as fit (the Messenger's batching). Callable from any core;
  // the pending entry lands in the calling core's table.
  //
  // No call with a deadline can stay pending forever: exactly one of response, deadline
  // expiry (RpcTimeout, after `options.retry` re-sends), peer death (RpcPeerLost, via the
  // Messenger's peer-down observers), or client teardown resolves the promise. All four
  // paths claim the pending entry through RcuHashTable::Extract, so "exactly once" is the
  // table's unlink atomicity, not a convention.
  Future<Response> Call(std::uint16_t opcode, std::uint32_t aux, std::unique_ptr<IOBuf> body,
                        const CallOptions& options);
  Future<Response> Call(std::uint16_t opcode, std::uint32_t aux,
                        std::unique_ptr<IOBuf> body) {
    return Call(opcode, aux, std::move(body), CallOptions{});
  }

  Ipv4Addr server() const { return server_; }
  std::size_t pending_calls() const;

  // Fault-path observability (atomics: expiry sweeps run per issuing core, peer-down
  // fan-out on the dead connection's core).
  struct Stats {
    std::atomic<std::uint64_t> timeouts{0};       // attempts that expired undelivered
    std::atomic<std::uint64_t> retries{0};        // expired attempts re-sent
    std::atomic<std::uint64_t> late_drops{0};     // responses whose id was already claimed
    std::atomic<std::uint64_t> peer_failures{0};  // calls failed by peer-connection death
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class RpcDemuxRoot;
  void HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message);

  // A pending call, owned by the per-core table from issue to completion. Held by
  // shared_ptr so Extract's winner can fulfill it after the node is unlinked — and, across
  // a retry, by the backoff timer while the call is parked outside the table.
  struct PendingCall {
    Promise<Response> promise;
    std::uint16_t opcode = 0;
    std::uint32_t aux = 0;
    CallOptions options;
    int attempts = 1;                     // sends so far
    std::uint64_t backoff_ns = 0;         // delay before the NEXT re-send
    std::unique_ptr<IOBuf> retry_body;    // master copy, cloned per re-send (null: no retry)
    bool abandoned = false;               // set by teardown; a parked re-send must not fire
    // Trace identity of the LOGICAL call: one client span covers every attempt (the span's
    // `attempts` field says how many), so retries re-send under these same ids.
    RpcTrace trace;
    std::uint64_t span_start_ns = 0;      // first send time (span start, virtual ns)
  };
  // How many id bits the issuing core occupies. 16 bits of core leaves 48 bits of per-core
  // sequence — enough to never wrap in any run we could simulate.
  static constexpr unsigned kCoreShift = 48;

  // Deadline bookkeeping is core-local (like the id counter): expiries for calls issued on
  // a core are swept by a one-shot Timer on that same core. The lane is shared_ptr-anchored
  // so a sweep or parked re-send that fires after the client died locks a dead weak_ptr and
  // does nothing. Completed calls leave STALE heap entries behind; the sweep pops them at
  // their would-be deadline and finds the table entry already gone — lazy deletion, no
  // per-completion Timer::Stop (which would be illegal cross-core anyway).
  struct Expiry {
    std::uint64_t deadline;
    std::uint64_t request_id;
    friend bool operator>(const Expiry& a, const Expiry& b) {
      return a.deadline != b.deadline ? a.deadline > b.deadline
                                      : a.request_id > b.request_id;
    }
  };
  struct alignas(kCacheLineSize) CoreLane {
    std::uint64_t next_seq = 1;  // only this core's events advance it: no atomics
    std::unique_ptr<RcuHashTable<std::uint64_t, std::shared_ptr<PendingCall>>> pending;
    std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries;
    // Earliest virtual time an armed sweep will fire (kNoSweep: none armed). One sweep
    // covers every later deadline — calls with one deadline_ns expire in issue order, so
    // arming is ~once per deadline window, not per call (no per-call Timer allocation on
    // the steady-state path).
    std::uint64_t armed_until = kNoSweep;
    // Calls extracted on expiry and awaiting their backoff re-send; drained by teardown.
    std::vector<std::shared_ptr<PendingCall>> parked;
  };
  static constexpr std::uint64_t kNoSweep = ~std::uint64_t{0};

  void ScheduleExpiry(std::size_t core, std::uint64_t request_id, std::uint64_t deadline,
                      std::uint64_t now);
  void ArmSweep(std::size_t core, std::uint64_t deadline, std::uint64_t now);
  void Sweep(std::size_t core);
  void Resend(std::size_t core, const std::shared_ptr<PendingCall>& call);
  void OnPeerDown();
  std::uint64_t NowNs() const;
  // Writes the call's client span into the current core's ring (no-op when the call was
  // issued untraced). Every completion path — response, error, timeout, peer loss — funnels
  // through this; teardown skips it (the machine may have no event context).
  void RecordClientSpan(const PendingCall& call, obs::SpanStatus status);

  Runtime& runtime_;
  Messenger& messenger_;
  EbbId service_;
  Ipv4Addr server_;
  std::vector<std::shared_ptr<CoreLane>> cores_;
  std::uint64_t peer_observer_ = 0;
  Stats stats_;
};

class RpcServer {
 public:
  // Registers this machine's server half of `service` with its Messenger.
  RpcServer(Runtime& runtime, EbbId service);
  virtual ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

 protected:
  // Executes one shipped call; implementations answer with Reply or ReplyError (exactly one,
  // synchronously or from a later event). Runs on the core the request's connection owns.
  virtual void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                          std::uint32_t aux, std::unique_ptr<IOBuf> body) = 0;

  void Reply(Ipv4Addr to, std::uint64_t request_id, std::uint32_t aux,
             std::unique_ptr<IOBuf> body);
  void ReplyError(Ipv4Addr to, std::uint64_t request_id, std::string_view message);

  Messenger& messenger_;
  EbbId service_;

 private:
  friend class RpcDemuxRoot;
  void HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message);
};

}  // namespace dist
}  // namespace ebbrt

#endif  // EBBRT_SRC_DIST_RPC_H_
