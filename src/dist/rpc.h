// Function-shipping RPC on top of dist::Messenger (paper §4.3).
//
// A distributed Ebb's native representative doesn't execute generality locally — it marshals
// the call and ships it to the hosted frontend's representative, which executes it for real
// and ships the result back. This header is the one place the call/return machinery lives:
//
//   * RpcHeader — 16-byte request/response frame rode inside a Messenger message.
//   * RpcClient — the caller side: request-id -> Promise table; Call() returns a Future that
//     fulfills with the response (or throws the server's error — errors cross the wire as
//     flagged responses and surface as std::runtime_error through Future::Get, so a caller's
//     continuation chain handles remote failures exactly like local exceptions, §3.5).
//   * RpcServer — the callee side: dispatches requests to a subclass's HandleCall and sends
//     Reply/ReplyError back to the requesting machine.
//
// The response body is carried as an IOBuf chain end-to-end: the server appends its result
// chain behind the header buffer, and the client receives the chain that Messenger carved
// straight out of the TCP segment stream. Small scalar arguments/results ride the header's
// `aux` field and cost no body at all.
//
// One client and/or one server per (machine, service id): both ends register the service id
// with the machine's Messenger, and the flags field says which direction a frame travels, so
// a machine may be client and server of the same service simultaneously.
#ifndef EBBRT_SRC_DIST_RPC_H_
#define EBBRT_SRC_DIST_RPC_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/dist/messenger.h"
#include "src/future/future.h"

namespace ebbrt {
namespace dist {

inline constexpr std::uint8_t kRpcResponse = 0x1;  // frame is a response, not a request
inline constexpr std::uint8_t kRpcError = 0x2;     // response body is an error message

struct RpcHeader {
  std::uint64_t request_id;  // pairs a response to its caller's promise (network order)
  std::uint16_t opcode;      // service-defined operation (network order)
  std::uint8_t flags;        // kRpcResponse / kRpcError
  std::uint8_t reserved;
  std::uint32_t aux;         // service-defined scalar argument/result (network order)
} __attribute__((packed));
static_assert(sizeof(RpcHeader) == 16);

inline std::uint64_t HostToNet64(std::uint64_t v) { return __builtin_bswap64(v); }
inline std::uint64_t NetToHost64(std::uint64_t v) { return __builtin_bswap64(v); }

// Builds [RpcHeader | body...] with the body chained zero-copy behind the header buffer.
std::unique_ptr<IOBuf> BuildRpcFrame(std::uint64_t request_id, std::uint16_t opcode,
                                     std::uint8_t flags, std::uint32_t aux,
                                     std::unique_ptr<IOBuf> body);

// Flattens an IOBuf chain into a std::string (marshalling convenience for string-valued
// results; the zero-copy representation stays available to callers that keep the chain).
std::string ChainToString(const IOBuf* chain);

// The services' shared two-string body marshal: [u32 head_len][head][rest...], network
// order. `rest` rides as its own chain element (never flattened into the head buffer).
std::unique_ptr<IOBuf> BuildLenPrefixedBody(std::string_view head, std::string_view rest);
// Splits a received body back into (head, rest). False on a malformed (truncated) body.
bool ParseLenPrefixedBody(const std::string& raw, std::string* head, std::string* rest);

class RpcClient {
 public:
  struct Response {
    std::uint32_t aux = 0;          // scalar result from the header
    std::unique_ptr<IOBuf> body;    // result bytes (chain; may be empty)
  };

  // Registers this machine's client half of `service` with its Messenger. `server` is the
  // machine whose representative executes the calls (the hosted frontend).
  RpcClient(Runtime& runtime, EbbId service, Ipv4Addr server);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  // Ships opcode(aux, body) to the server; the future fulfills with the response or throws
  // the server's error as std::runtime_error. Requests issued in one event are auto-corked
  // into as few wire segments as fit (the Messenger's batching).
  Future<Response> Call(std::uint16_t opcode, std::uint32_t aux, std::unique_ptr<IOBuf> body);

  Ipv4Addr server() const { return server_; }
  std::size_t pending_calls() const;

 private:
  friend struct RpcDispatch;
  void HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message);

  Messenger& messenger_;
  EbbId service_;
  Ipv4Addr server_;

  mutable std::mutex mu_;
  std::uint64_t next_request_ = 1;
  std::unordered_map<std::uint64_t, Promise<Response>> pending_;
};

class RpcServer {
 public:
  // Registers this machine's server half of `service` with its Messenger.
  RpcServer(Runtime& runtime, EbbId service);
  virtual ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

 protected:
  // Executes one shipped call; implementations answer with Reply or ReplyError (exactly one,
  // synchronously or from a later event). Runs on the core the request's connection owns.
  virtual void HandleCall(Ipv4Addr from, std::uint64_t request_id, std::uint16_t opcode,
                          std::uint32_t aux, std::unique_ptr<IOBuf> body) = 0;

  void Reply(Ipv4Addr to, std::uint64_t request_id, std::uint32_t aux,
             std::unique_ptr<IOBuf> body);
  void ReplyError(Ipv4Addr to, std::uint64_t request_id, std::string_view message);

  Messenger& messenger_;
  EbbId service_;

 private:
  friend struct RpcDispatch;
  void HandleFrame(Ipv4Addr from, std::unique_ptr<IOBuf> message);
};

}  // namespace dist
}  // namespace ebbrt

#endif  // EBBRT_SRC_DIST_RPC_H_
