#include "src/sim/switch.h"

#include "src/sim/nic.h"

namespace ebbrt {
namespace sim {

std::size_t Switch::Attach(Nic* nic) {
  ports_.push_back(nic);
  tx_link_free_.push_back(0);
  return ports_.size() - 1;
}

void Switch::Transmit(std::size_t from_port, const IOBuf& frame) {
  Kassert(from_port < ports_.size(), "Switch: bad port");
  if (loss_rate_ > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) < loss_rate_) {
      ++frames_dropped_;
      return;
    }
  }
  std::size_t frame_len = frame.ComputeChainDataLength();
  if (frame_len < sizeof(EthernetHeader)) {
    ++frames_dropped_;
    return;
  }
  // Learn the source MAC, resolve the destination port.
  EthernetHeader eth;
  frame.CopyOut(&eth, sizeof(eth));
  mac_table_[eth.src] = from_port;

  // Serialize on the sender's link: the link is busy until the frame's bits are on the wire.
  std::uint64_t now = world_.Now();
  std::uint64_t start = std::max(now, tx_link_free_[from_port]);
  std::uint64_t done = start + link_.SerializationNs(frame_len);
  tx_link_free_[from_port] = done;
  std::uint64_t arrival = done + link_.propagation_ns;

  ++frames_forwarded_;
  if (!eth.dst.IsBroadcast()) {
    auto it = mac_table_.find(eth.dst);
    if (it != mac_table_.end()) {
      DeliverTo(it->second, frame, arrival);
      return;
    }
  }
  // Flood: broadcast or unknown destination.
  for (std::size_t port = 0; port < ports_.size(); ++port) {
    if (port != from_port) {
      DeliverTo(port, frame, arrival);
    }
  }
}

void Switch::DeliverTo(std::size_t port, const IOBuf& frame, std::uint64_t at) {
  // Copy at the fabric boundary: bytes physically leave the sender's memory. The destination
  // NIC writes them into its next driver-posted RX buffer (recycled pool memory, flattened —
  // receivers see one contiguous DMA buffer, as a real NIC would present), falling back to a
  // fresh DeepClone when nothing is posted yet. RSS steering is computed once and shared by
  // the copy (posted ring) and the delivery.
  Nic* nic = ports_[port];
  std::size_t queue = nic->QueueForFrame(frame);
  auto copy = nic->CopyForDelivery(frame, queue);
  // Shared-ptr shim: MoveFunction is movable but calendar entries are heap-managed anyway.
  auto shared = std::make_shared<std::unique_ptr<IOBuf>>(std::move(copy));
  world_.At(at, [nic, queue, shared] { nic->DeliverFrame(std::move(*shared), queue); });
}

}  // namespace sim
}  // namespace ebbrt
