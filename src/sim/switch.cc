#include "src/sim/switch.h"

#include "src/sim/nic.h"

namespace ebbrt {
namespace sim {

std::size_t Switch::Attach(Nic* nic) {
  ports_.push_back(nic);
  tx_link_free_.push_back(0);
  return ports_.size() - 1;
}

void Switch::SetLinkFault(std::size_t port, const FaultPlan& plan) {
  Kassert(port < ports_.size(), "Switch: bad port");
  LinkFault fault;
  fault.plan = plan;
  fault.rng.seed(plan.seed);
  link_faults_[port] = std::move(fault);
}

void Switch::ClearLinkFault(std::size_t port) { link_faults_.erase(port); }

bool Switch::FaultEats(std::size_t port) {
  auto it = link_faults_.find(port);
  if (it == link_faults_.end()) {
    return false;
  }
  LinkFault& fault = it->second;
  if (fault.plan.blackhole) {
    ++frames_dropped_;
    ++faults_injected_;
    return true;
  }
  if (fault.plan.drop_rate > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(fault.rng) < fault.plan.drop_rate) {
      ++frames_dropped_;
      ++faults_injected_;
      return true;
    }
  }
  return false;
}

std::uint64_t Switch::FaultDelay(std::size_t port) const {
  auto it = link_faults_.find(port);
  return it == link_faults_.end() ? 0 : it->second.plan.extra_delay_ns;
}

void Switch::Transmit(std::size_t from_port, const IOBuf& frame) {
  Kassert(from_port < ports_.size(), "Switch: bad port");
  if (loss_rate_ > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    if (dist(rng_) < loss_rate_) {
      ++frames_dropped_;
      return;
    }
  }
  if (FaultEats(from_port)) {
    return;  // egress fault on the sender's link
  }
  std::size_t frame_len = frame.ComputeChainDataLength();
  if (frame_len < sizeof(EthernetHeader)) {
    ++frames_dropped_;
    return;
  }
  // Learn the source MAC, resolve the destination port.
  EthernetHeader eth;
  frame.CopyOut(&eth, sizeof(eth));
  mac_table_[eth.src] = from_port;

  // Serialize on the sender's link: the link is busy until the frame's bits are on the wire.
  std::uint64_t now = world_.Now();
  std::uint64_t start = std::max(now, tx_link_free_[from_port]);
  std::uint64_t done = start + link_.SerializationNs(frame_len);
  tx_link_free_[from_port] = done;
  std::uint64_t arrival = done + link_.propagation_ns + FaultDelay(from_port);

  ++frames_forwarded_;
  if (!eth.dst.IsBroadcast()) {
    auto it = mac_table_.find(eth.dst);
    if (it != mac_table_.end()) {
      DeliverTo(it->second, frame, arrival);
      return;
    }
  }
  // Flood: broadcast or unknown destination.
  for (std::size_t port = 0; port < ports_.size(); ++port) {
    if (port != from_port) {
      DeliverTo(port, frame, arrival);
    }
  }
}

void Switch::DeliverTo(std::size_t port, const IOBuf& frame, std::uint64_t at) {
  // Ingress fault on the receiver's link, then killed-machine drop: a dead machine's NIC
  // neither fills posted descriptors nor raises interrupts, so the frame dies here without
  // consuming the posted ring (which must survive intact for revival).
  if (FaultEats(port)) {
    return;
  }
  Nic* nic = ports_[port];
  if (world_.MachineKilled(nic->runtime())) {
    ++frames_dropped_;
    ++killed_drops_;
    return;
  }
  at += FaultDelay(port);
  // Copy at the fabric boundary: bytes physically leave the sender's memory. The destination
  // NIC writes them into its next driver-posted RX buffer (recycled pool memory, flattened —
  // receivers see one contiguous DMA buffer, as a real NIC would present), falling back to a
  // fresh DeepClone when nothing is posted yet. RSS steering is computed once and shared by
  // the copy (posted ring) and the delivery.
  std::size_t queue = nic->QueueForFrame(frame);
  auto copy = nic->CopyForDelivery(frame, queue);
  // Shared-ptr shim: MoveFunction is movable but calendar entries are heap-managed anyway.
  auto shared = std::make_shared<std::unique_ptr<IOBuf>>(std::move(copy));
  world_.At(at, [nic, queue, shared] { nic->DeliverFrame(std::move(*shared), queue); });
}

}  // namespace sim
}  // namespace ebbrt
