#include "src/sim/nic.h"

#include <algorithm>

#include "src/mem/buffer_pool.h"

namespace ebbrt {
namespace sim {

Nic::Nic(SimWorld& world, Runtime& runtime, MacAddr mac, Switch& fabric)
    : Nic(world, runtime, mac, fabric, Config{}) {}

Nic::Nic(SimWorld& world, Runtime& runtime, MacAddr mac, Switch& fabric, Config config)
    : world_(world), runtime_(runtime), mac_(mac), fabric_(fabric), config_(config),
      kick_charged_(runtime.num_cores(), 0) {
  port_ = fabric.Attach(this);
  std::size_t queues = config.queues != 0 ? config.queues : runtime.num_cores();
  queues = std::min(queues, config.hv.max_queues);
  queues = std::max<std::size_t>(queues, 1);
  auto& em_root = runtime.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager);
  for (std::size_t i = 0; i < queues; ++i) {
    auto queue = std::make_unique<Queue>();
    queue->index = i;
    queue->target_core = i % runtime.num_cores();
    Queue* q = queue.get();
    // Allocate the queue's interrupt vector on its target core; the persistent handler
    // services the ring to completion (the paper's driver pattern).
    queue->vector = em_root.RepFor(queue->target_core)
                        .AllocateVector([this, q] { ServiceQueue(*q, /*from_interrupt=*/true); });
    queues_.push_back(std::move(queue));
  }
}

void Nic::Transmit(std::unique_ptr<IOBuf> frame) {
  ++frames_transmitted_;
  bytes_transmitted_ += frame->ComputeChainDataLength();
  // Per-frame TX work (descriptor setup + device descriptor fetch): the fixed cost each
  // wire segment pays, and exactly what event-scoped send batching amortizes.
  world_.Charge(config_.hv.tx_frame_ns);
  // Virtio kick, doorbell-batched: the first frame of an event dispatch traps to the host;
  // descriptors queued before the event ends ride the same kick (vhost drains the whole
  // available ring). The end-of-event hook reopens the doorbell for the next event.
  if (config_.hv.virtualized) {
    std::size_t core = CurrentContext().machine_core;
    if (!kick_charged_[core]) {
      kick_charged_[core] = 1;
      ++tx_kicks_;
      world_.Charge(config_.hv.tx_exit_ns);
      event::Local().QueueEndOfEvent([this, core] { kick_charged_[core] = 0; });
    }
  }
  fabric_.Transmit(port_, *frame);
  // The frame's ownership ends here; the fabric cloned what it needed.
}

std::size_t Nic::SteerFrame(const IOBuf& frame) const {
  if (queues_.size() == 1) {
    return 0;
  }
  // Peek ethertype + IPv4 flow fields for RSS; non-IP traffic lands on queue 0.
  if (frame.Length() < sizeof(EthernetHeader) + sizeof(Ipv4Header)) {
    return 0;
  }
  const auto& eth = frame.Get<EthernetHeader>();
  if (NetToHost16(eth.type) != kEthTypeIpv4) {
    return 0;
  }
  const auto& ip = frame.Get<Ipv4Header>(sizeof(EthernetHeader));
  if (ip.protocol != kIpProtoTcp && ip.protocol != kIpProtoUdp) {
    return 0;
  }
  std::size_t l4_off = sizeof(EthernetHeader) + ip.HeaderLength();
  if (frame.Length() < l4_off + 4) {
    return 0;
  }
  std::uint16_t src_port = NetToHost16(frame.Get<std::uint16_t>(l4_off));
  std::uint16_t dst_port = NetToHost16(frame.Get<std::uint16_t>(l4_off + 2));
  return QueueForFlow(ip.SrcAddr(), src_port, ip.DstAddr(), dst_port);
}

std::unique_ptr<IOBuf> Nic::CopyForDelivery(const IOBuf& frame, std::size_t queue_index) {
  Queue& queue = *queues_[queue_index];
  if (!queue.posted_rx.empty()) {
    std::unique_ptr<IOBuf> buf = std::move(queue.posted_rx.front());
    queue.posted_rx.pop_front();
    std::size_t len = frame.ComputeChainDataLength();
    if (len <= buf->Tailroom()) {
      frame.CopyOut(buf->WritableTail(), len);
      buf->Append(len);
      ++rx_posted_fills_;
      return buf;
    }
    // Frame larger than a posted buffer (not reachable with MTU-bounded traffic): repost and
    // take the clone path rather than dropping.
    queue.posted_rx.push_front(std::move(buf));
  }
  ++rx_clone_fallbacks_;
  return frame.DeepClone();
}

void Nic::ReplenishPostedRx(Queue& queue) {
  // Runs on the queue's target core (interrupt or poll context): the pool rep is this
  // core's, so replenishing is the per-core lock-free path.
  BufferPool* pool = BufferPool::Local();
  if (pool == nullptr) {
    return;
  }
  while (queue.posted_rx.size() < kPostedRxDepth) {
    queue.posted_rx.push_back(pool->Alloc());
  }
}

void Nic::DeliverFrame(std::unique_ptr<IOBuf> frame, std::size_t queue_index) {
  if (world_.MachineKilled(runtime_)) {
    // Kill-after-schedule race: the frame was already in flight (calendar action queued)
    // when the machine died. It dies at the device boundary — no ring push, no interrupt.
    ++rx_killed_drops_;
    return;
  }
  Queue& queue = *queues_[queue_index];
  queue.ring.push_back(std::move(frame));
  if (queue.interrupts_enabled && !queue.irq_pending) {
    queue.irq_pending = true;
    ++interrupts_raised_;
    runtime_.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
        .RepFor(queue.target_core)
        .RaiseVector(queue.vector);
  }
  // Polling mode: the idle callback will find the frame.
}

void Nic::ServiceQueue(Queue& queue, bool from_interrupt) {
  if (from_interrupt) {
    queue.irq_pending = false;
    if (config_.hv.virtualized) {
      world_.Charge(config_.hv.irq_inject_ns);
    } else {
      world_.Charge(config_.hv.irq_inject_ns);  // bare-metal MSI cost (smaller, see model)
    }
  }
  std::size_t handled = 0;
  while (!queue.ring.empty()) {
    std::unique_ptr<IOBuf> frame = std::move(queue.ring.front());
    queue.ring.pop_front();
    ++handled;
    ++frames_received_;
    if (config_.hv.virtualized && config_.hv.rx_copy) {
      // The hypervisor copies the packet into guest receive buffers: a real copy, plus the
      // modeled per-byte cost for fixed-time determinism. The guest buffer comes from this
      // core's pool, so the copy lands in recycled memory (zero-alloc steady state).
      std::size_t len = frame->ComputeChainDataLength();
      world_.Charge(config_.hv.rx_copy_fixed_ns +
                    static_cast<std::uint64_t>(config_.hv.rx_copy_ns_per_byte *
                                               static_cast<double>(len)));
      BufferPool* pool = BufferPool::Local();
      std::unique_ptr<IOBuf> guest = pool != nullptr ? pool->Alloc() : nullptr;
      if (guest != nullptr && len <= guest->Tailroom()) {
        frame->CopyOut(guest->WritableTail(), len);
        guest->Append(len);
        frame = std::move(guest);
      } else {
        frame = frame->DeepClone();
      }
    }
    if (!from_interrupt) {
      ++frames_polled_;
    }
    if (rx_handler_) {
      rx_handler_(std::move(frame));
    }
  }
  // Re-post RX descriptors for the buffers this pass consumed (the driver half of the
  // posted-ring lifecycle; frames freed by the application this event recycle right back).
  ReplenishPostedRx(queue);
  if (from_interrupt) {
    // Adaptive policy: a big batch behind one interrupt means the rate is high — switch to
    // polling (§3.2's driver example).
    if (handled >= config_.poll_enter_threshold && queue.poll_callback == nullptr) {
      EnterPolling(queue);
    }
  } else {
    if (handled == 0) {
      if (++queue.empty_polls >= config_.poll_exit_threshold) {
        LeavePolling(queue);
      }
    } else {
      queue.empty_polls = 0;
    }
  }
}

void Nic::EnterPolling(Queue& queue) {
  queue.interrupts_enabled = false;
  queue.empty_polls = 0;
  auto& em = runtime_.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
                 .RepFor(queue.target_core);
  Queue* q = &queue;
  queue.poll_callback = std::make_unique<EventManager::IdleCallback>(
      em, [this, q] { ServiceQueue(*q, /*from_interrupt=*/false); });
  queue.poll_callback->Start();
}

void Nic::LeavePolling(Queue& queue) {
  queue.interrupts_enabled = true;
  if (queue.poll_callback != nullptr) {
    queue.poll_callback->Stop();
    // Defer destruction: we are executing inside this very callback's invocation.
    EventManager::IdleCallback* raw = queue.poll_callback.release();
    runtime_.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
        .RepFor(queue.target_core)
        .Spawn([raw] { delete raw; });
  }
  // Frames that raced in while we were disabling: raise an interrupt for them.
  if (!queue.ring.empty() && !queue.irq_pending) {
    queue.irq_pending = true;
    ++interrupts_raised_;
    runtime_.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
        .RepFor(queue.target_core)
        .RaiseVector(queue.vector);
  }
}

}  // namespace sim
}  // namespace ebbrt
