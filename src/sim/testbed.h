// Testbed — convenience assembly of the paper's experimental setup: machines with NICs on a
// common fabric, each running the EbbRT stack. Used by the networked tests and by every bench
// harness (the client machine plays the role of the paper's 20-core load-generation server).
#ifndef EBBRT_SRC_SIM_TESTBED_H_
#define EBBRT_SRC_SIM_TESTBED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/event/sim_world.h"
#include "src/net/dhcp.h"
#include "src/net/network_manager.h"
#include "src/net/tcp.h"
#include "src/sim/cost_model.h"
#include "src/sim/nic.h"
#include "src/sim/switch.h"

namespace ebbrt {
namespace sim {

struct TestbedNode {
  Runtime* runtime = nullptr;
  Nic* nic = nullptr;
  NetworkManager* net = nullptr;
  Interface* iface = nullptr;

  // Queue work on one of this node's cores.
  void Spawn(std::size_t core, MoveFunction<void()> fn) {
    SimWorld::SpawnOn(*runtime, core, std::move(fn));
  }
};

class Testbed {
 public:
  explicit Testbed(SimWorld::CostMode mode = SimWorld::CostMode::kFixed,
                   std::uint64_t fixed_cost_ns = 500, LinkModel link = {})
      : world_(mode, fixed_cost_ns), fabric_(world_, link) {}

  SimWorld& world() { return world_; }
  Switch& fabric() { return fabric_; }

  // Adds a machine running the EbbRT stack with a statically configured interface.
  TestbedNode AddNode(const std::string& name, std::size_t cores, Ipv4Addr addr,
                      HypervisorModel hv = HypervisorModel::Kvm(),
                      RuntimeKind kind = RuntimeKind::kNative) {
    TestbedNode node;
    node.runtime = &world_.AddMachine(name, cores, kind);
    Nic::Config config;
    config.hv = hv;
    auto nic = std::make_unique<Nic>(world_, *node.runtime,
                                     MacAddr::FromIndex(next_mac_++), fabric_, config);
    node.nic = nic.get();
    nics_.push_back(std::move(nic));
    node.net = &NetworkManager::For(*node.runtime);
    Interface::IpConfig ip;
    ip.addr = addr;
    ip.netmask = Ipv4Addr::Of(255, 255, 255, 0);
    ip.gateway = Ipv4Addr::Of(10, 0, 0, 1);
    node.iface = &node.net->AddInterface(*node.nic, ip);
    return node;
  }

 private:
  SimWorld world_;
  Switch fabric_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::uint64_t next_mac_ = 1;
};

}  // namespace sim
}  // namespace ebbrt

#endif  // EBBRT_SRC_SIM_TESTBED_H_
