// Calibrated cost models for the hardware and hypervisor we cannot run (see DESIGN.md §2).
//
// Values approximate the paper's testbed: 2.6 GHz Xeons, QEMU/KVM with virtio-net + vhost,
// directly-connected 10GbE X520s. The *shape* of every experiment comes from real code-path
// work (copies are real memcpys, parsing is real parsing); these constants encode only the
// environment around it. They are deliberately centralized and documented so a skeptical
// reader can audit or re-calibrate them.
#ifndef EBBRT_SRC_SIM_COST_MODEL_H_
#define EBBRT_SRC_SIM_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace ebbrt {
namespace sim {

// Hypervisor/virtualization overheads applied by the NIC model.
struct HypervisorModel {
  bool virtualized = true;
  // Guest->host notification (virtio kick): one VM exit + vhost wakeup. Charged per
  // *doorbell*, not per frame: descriptors queued within one event dispatch share one kick
  // (virtio drivers ring once for the whole available-ring batch; vhost drains it all).
  // This is the batched-doorbell behavior the kernel-bypass literature leans on — and what
  // makes the per-segment cost accounting honest: a workload that emits one small segment
  // per event (memcached at pipeline depth 1) pays a kick per segment, while an
  // event-corked burst pays one kick for the whole chain.
  std::uint64_t tx_exit_ns = 1000;
  // Per-frame TX cost paid on EVERY transmitted frame regardless of virtualization:
  // descriptor setup + device descriptor/header DMA fetch. The per-segment overhead that
  // send-side aggregation amortizes (segments-per-op accounting), small enough that bulk
  // MSS-sized streams stay link-bound at 10GbE (~1190ns serialization per frame).
  std::uint64_t tx_frame_ns = 150;
  // Interrupt injection into the guest on RX.
  std::uint64_t irq_inject_ns = 800;
  // Hypervisor copies the packet into guest RX buffers (both systems pay this; §4.1.3:
  // "both systems must suffer a copy on packet reception due to the hypervisor").
  bool rx_copy = true;
  double rx_copy_ns_per_byte = 0.06;  // ~16 GB/s effective memcpy
  std::uint64_t rx_copy_fixed_ns = 150;
  std::size_t max_queues = 8;  // multiqueue virtio; OSv-sim gets 1

  static HypervisorModel Kvm() { return HypervisorModel{}; }
  static HypervisorModel Native() {
    HypervisorModel hv;
    hv.virtualized = false;
    hv.tx_exit_ns = 0;
    // Bare metal: the doorbell is a posted MMIO write the core does not wait on — the
    // native nodes (notably the load generators) keep blasting at wire rate, as the paper's
    // unvirtualized client machine does. The per-frame TX cost that batching amortizes is a
    // guest-side phenomenon here (descriptor + kick + vhost), modeled above.
    hv.tx_frame_ns = 0;
    hv.irq_inject_ns = 300;  // bare-metal MSI-X delivery
    hv.rx_copy = false;
    return hv;
  }
  static HypervisorModel KvmSingleQueue() {
    HypervisorModel hv;
    hv.max_queues = 1;  // the OSv virtio driver's missing multiqueue support (§4.2)
    return hv;
  }
};

// Link model: 10GbE, directly connected.
struct LinkModel {
  double bandwidth_gbps = 10.0;
  std::uint64_t propagation_ns = 500;  // cable + PHY + switch-less direct attach

  std::uint64_t SerializationNs(std::size_t bytes) const {
    // +24 bytes Ethernet overhead (preamble/IFG/FCS).
    return static_cast<std::uint64_t>(static_cast<double>((bytes + 24) * 8) /
                                      bandwidth_gbps);
  }
};

// General-purpose-OS costs paid by the baseline ("Linux") stack but not by EbbRT's
// library-OS paths. See src/baseline/ for where each is charged.
struct GeneralPurposeOsModel {
  std::uint64_t syscall_ns = 250;           // user->kernel crossing (one way ~125ns)
  std::uint64_t softirq_schedule_ns = 500;  // NAPI/softirq bounce before socket delivery
  std::uint64_t context_switch_ns = 1500;   // wakeup of the blocked reader thread
  double copy_ns_per_byte = 0.06;           // copy_to/from_user
  std::uint64_t timer_tick_period_ns = 4'000'000;  // CONFIG_HZ=250
  std::uint64_t timer_tick_cost_ns = 2000;         // tick + scheduler pollution
  std::size_t socket_buffer_bytes = 212'992;       // default rmem/wmem
  bool nagle = true;
};

}  // namespace sim
}  // namespace ebbrt

#endif  // EBBRT_SRC_SIM_COST_MODEL_H_
