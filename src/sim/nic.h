// Nic — multiqueue virtio-style NIC model plus its EbbRT driver.
//
// Device side (SimWorld action context): frames arriving from the switch are steered to a
// queue by symmetric RSS over the IP flow; each queue either raises its interrupt vector on
// its target core or, in polling mode, waits for the idle-loop poll.
//
// Driver side (machine core context): implements the paper's adaptive polling policy (§3.2):
// the interrupt handler processes the ring to completion; when the arrival rate (frames per
// interrupt) exceeds a threshold, it masks the interrupt and installs an IdleCallback that
// polls the ring each idle pass; when polls come up empty repeatedly, it re-enables the
// interrupt and stops polling.
//
// Cost accounting: the transmitting core is charged the virtio kick (VM exit) per
// notification; the receiving core is charged interrupt injection and, under virtualization,
// the hypervisor's RX copy (a real memcpy into a fresh buffer, plus modeled per-byte cost in
// fixed mode).
//
// RX buffers come from the driver's per-core BufferPool, exactly like a real driver posting
// receive descriptors: ServiceQueue (on the queue's target core) keeps a ring of
// pre-allocated MTU-class buffers posted per queue; the "DMA engine" (the switch's delivery
// copy) fills the next posted buffer, so in steady state every received frame lives in
// recycled memory and the RX path performs zero allocations. The hypervisor's RX copy also
// lands in a pool buffer. When no buffer is posted (startup, pool not installed), delivery
// falls back to a DeepClone — correct, just not recycled.
#ifndef EBBRT_SRC_SIM_NIC_H_
#define EBBRT_SRC_SIM_NIC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/event/event_manager.h"
#include "src/event/sim_world.h"
#include "src/iobuf/iobuf.h"
#include "src/net/net_types.h"
#include "src/sim/cost_model.h"
#include "src/sim/switch.h"

namespace ebbrt {
namespace sim {

class Nic {
 public:
  struct Config {
    HypervisorModel hv = HypervisorModel::Kvm();
    std::size_t queues = 0;  // 0 => min(cores, hv.max_queues)
    // Adaptive polling thresholds (frames handled per interrupt to enter polling; consecutive
    // empty polls to leave it).
    std::uint32_t poll_enter_threshold = 16;
    std::uint32_t poll_exit_threshold = 64;
  };

  using FrameHandler = MoveFunction<void(std::unique_ptr<IOBuf>)>;

  Nic(SimWorld& world, Runtime& runtime, MacAddr mac, Switch& fabric, Config config);
  // Default configuration (KVM hypervisor model, one queue per core).
  Nic(SimWorld& world, Runtime& runtime, MacAddr mac, Switch& fabric);

  MacAddr mac() const { return mac_; }
  std::size_t num_queues() const { return queues_.size(); }
  Runtime& runtime() { return runtime_; }
  // The switch port this NIC is attached to (the handle Switch::SetLinkFault wants).
  std::size_t port() const { return port_; }

  // --- Driver API ---------------------------------------------------------------------------
  // Installs the stack's receive entry point (invoked on the queue's target core with
  // ownership of the frame).
  void SetReceiveHandler(FrameHandler handler) { rx_handler_ = std::move(handler); }

  // Transmits a frame chain (called from a core of this machine). Charges the virtio kick.
  void Transmit(std::unique_ptr<IOBuf> frame);

  // The machine core that receives traffic for the given flow (RSS steering preview — used by
  // active connectors to pick a source port landing on the desired core).
  std::size_t CoreForFlow(Ipv4Addr a_ip, std::uint16_t a_port, Ipv4Addr b_ip,
                          std::uint16_t b_port) const {
    return QueueForFlow(a_ip, a_port, b_ip, b_port) % runtime_.num_cores();
  }
  std::size_t QueueForFlow(Ipv4Addr a_ip, std::uint16_t a_port, Ipv4Addr b_ip,
                           std::uint16_t b_port) const {
    return RssHash(a_ip, a_port, b_ip, b_port) % queues_.size();
  }

  // --- Device side (called by the switch in world-action context) ----------------------------
  // RSS steering for an incoming frame (non-IP traffic lands on queue 0). The switch
  // computes this once per frame and passes it to both calls below.
  std::size_t QueueForFrame(const IOBuf& frame) const { return SteerFrame(frame); }

  void DeliverFrame(std::unique_ptr<IOBuf> frame, std::size_t queue);

  // Copies `frame` into this NIC's next posted RX buffer for `queue` (the DMA write into a
  // driver-posted descriptor), falling back to a DeepClone when none is posted.
  // Single-threaded SimWorld: touching the posted ring from the sender's slice is safe.
  std::unique_ptr<IOBuf> CopyForDelivery(const IOBuf& frame, std::size_t queue);

  // --- Stats ----------------------------------------------------------------------------------
  std::uint64_t interrupts_raised() const { return interrupts_raised_; }
  std::uint64_t frames_polled() const { return frames_polled_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t frames_transmitted() const { return frames_transmitted_; }
  std::uint64_t bytes_transmitted() const { return bytes_transmitted_; }
  // Doorbell batching: kicks <= frames; the gap is the amortization TX batching buys.
  std::uint64_t tx_kicks() const { return tx_kicks_; }
  // RX frames delivered into a driver-posted pool buffer vs. heap-cloned (posted ring empty).
  std::uint64_t rx_posted_fills() const { return rx_posted_fills_; }
  std::uint64_t rx_clone_fallbacks() const { return rx_clone_fallbacks_; }
  // Frames that arrived after the machine was killed but were already scheduled for delivery
  // (the switch drops pre-schedule; this counts the in-flight race).
  std::uint64_t rx_killed_drops() const { return rx_killed_drops_; }

 private:
  struct Queue {
    std::size_t index = 0;
    std::size_t target_core = 0;
    std::uint32_t vector = 0;
    std::deque<std::unique_ptr<IOBuf>> ring;
    // Driver-posted RX buffers (pool-backed), filled by the device side in FIFO order and
    // replenished by ServiceQueue on the target core.
    std::deque<std::unique_ptr<IOBuf>> posted_rx;
    bool interrupts_enabled = true;
    bool irq_pending = false;  // raised but not yet serviced
    std::unique_ptr<EventManager::IdleCallback> poll_callback;
    std::uint32_t empty_polls = 0;
  };

  static constexpr std::size_t kPostedRxDepth = 32;  // descriptors kept posted per queue

  std::size_t SteerFrame(const IOBuf& frame) const;
  void ServiceQueue(Queue& queue, bool from_interrupt);
  void ReplenishPostedRx(Queue& queue);
  void EnterPolling(Queue& queue);
  void LeavePolling(Queue& queue);

  SimWorld& world_;
  Runtime& runtime_;
  MacAddr mac_;
  Switch& fabric_;
  std::size_t port_;
  Config config_;
  FrameHandler rx_handler_;
  std::vector<std::unique_ptr<Queue>> queues_;

  std::uint64_t interrupts_raised_ = 0;
  std::uint64_t frames_polled_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_transmitted_ = 0;
  std::uint64_t bytes_transmitted_ = 0;
  std::uint64_t tx_kicks_ = 0;
  std::uint64_t rx_posted_fills_ = 0;
  std::uint64_t rx_clone_fallbacks_ = 0;
  std::uint64_t rx_killed_drops_ = 0;
  // Per-core doorbell state: nonzero while this core's current event already kicked (reset
  // by an end-of-event hook). Single-threaded per core; plain bytes.
  std::vector<char> kick_charged_;
};

}  // namespace sim
}  // namespace ebbrt

#endif  // EBBRT_SRC_SIM_NIC_H_
