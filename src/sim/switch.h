// Switch — the simulated physical network fabric.
//
// Ports connect NICs; frames cross the fabric with per-link serialization (size/bandwidth,
// serialized on the sender's link) plus propagation delay. MAC learning forwards unicast
// frames; unknown/broadcast destinations flood. A deterministic loss rate can be injected for
// protocol robustness tests (retransmission, reordering under loss).
//
// The switch runs entirely in SimWorld action context — single-threaded, no locks. Frames are
// deep-copied at the fabric boundary: the wire is where payload bytes genuinely leave one
// machine's memory and appear in another's.
#ifndef EBBRT_SRC_SIM_SWITCH_H_
#define EBBRT_SRC_SIM_SWITCH_H_

#include <cstdint>
#include <memory>
#include <random>
#include <unordered_map>
#include <vector>

#include "src/event/sim_world.h"
#include "src/iobuf/iobuf.h"
#include "src/net/net_types.h"
#include "src/sim/cost_model.h"

namespace ebbrt {
namespace sim {

class Nic;

class Switch {
 public:
  Switch(SimWorld& world, LinkModel link = {}) : world_(world), link_(link) {}

  // Registers a NIC; returns its port number.
  std::size_t Attach(Nic* nic);

  // Called by a NIC's transmit path (during its machine's core slice). The frame is cloned
  // onto the fabric and delivered to the destination port(s) after link delays.
  void Transmit(std::size_t from_port, const IOBuf& frame);

  // Deterministic packet loss for robustness tests: drops each frame with probability
  // `rate` using the given seed.
  void SetLossRate(double rate, std::uint32_t seed = 1234) {
    loss_rate_ = rate;
    rng_.seed(seed);
  }

  // Per-link fault injection: a plan on a port applies to BOTH directions of that NIC's
  // link (frames it transmits and frames delivered to it), each independently. Drops use
  // the plan's own deterministic RNG so scripted failure scenarios replay bit-identically;
  // blackhole silently eats every frame (the classic partition: TCP sees nothing, only
  // timers); extra_delay_ns defers delivery (reordering/latency spikes). Severing live TCP
  // connections outright is the stack's job — TcpManager::SeverPeer — since the wire model
  // has no per-connection state.
  struct FaultPlan {
    double drop_rate = 0.0;
    std::uint64_t extra_delay_ns = 0;
    bool blackhole = false;
    std::uint32_t seed = 1;
  };
  void SetLinkFault(std::size_t port, const FaultPlan& plan);
  void ClearLinkFault(std::size_t port);

  std::uint64_t frames_forwarded() const { return frames_forwarded_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  // Frames eaten by a FaultPlan (subset of frames_dropped_) / by delivery to a killed
  // machine (also counted in frames_dropped_).
  std::uint64_t faults_injected() const { return faults_injected_; }
  std::uint64_t killed_drops() const { return killed_drops_; }

 private:
  struct MacHash {
    std::size_t operator()(const MacAddr& m) const {
      std::uint64_t v = 0;
      std::memcpy(&v, m.bytes.data(), 6);
      return std::hash<std::uint64_t>{}(v);
    }
  };

  struct LinkFault {
    FaultPlan plan;
    std::mt19937 rng;
  };

  void DeliverTo(std::size_t port, const IOBuf& frame, std::uint64_t at);
  // True when the plan says this frame dies on the link (ticks the fault counters).
  bool FaultEats(std::size_t port);
  std::uint64_t FaultDelay(std::size_t port) const;

  SimWorld& world_;
  LinkModel link_;
  std::vector<Nic*> ports_;
  std::unordered_map<MacAddr, std::size_t, MacHash> mac_table_;
  std::vector<std::uint64_t> tx_link_free_;  // per-port sender link availability
  double loss_rate_ = 0.0;
  std::mt19937 rng_{1234};
  std::unordered_map<std::size_t, LinkFault> link_faults_;
  std::uint64_t frames_forwarded_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t killed_drops_ = 0;
};

}  // namespace sim
}  // namespace ebbrt

#endif  // EBBRT_SRC_SIM_SWITCH_H_
