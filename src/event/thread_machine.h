// ThreadMachine — a machine whose cores are real OS threads (the "run on real parallel
// hardware" substrate).
//
// Each core is a pthread running the EventManager dispatch loop; halting parks the thread on
// a condition variable until a wake (interrupt/remote spawn) or timer deadline. Used by the
// allocator scalability experiments (Figure 3 needs genuine parallel cores), framework tests,
// and the examples. Networked experiments use SimWorld instead (virtual time).
#ifndef EBBRT_SRC_EVENT_THREAD_MACHINE_H_
#define EBBRT_SRC_EVENT_THREAD_MACHINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/event/event_manager.h"
#include "src/event/executor.h"
#include "src/event/timer.h"
#include "src/platform/clock.h"

namespace ebbrt {

class ThreadMachine : public Executor {
 public:
  explicit ThreadMachine(std::size_t num_cores, RuntimeKind kind = RuntimeKind::kNative,
                         std::string name = "machine");
  ~ThreadMachine() override;

  ThreadMachine(const ThreadMachine&) = delete;
  ThreadMachine& operator=(const ThreadMachine&) = delete;

  Runtime& runtime() { return *runtime_; }
  std::size_t num_cores() const { return cores_.size(); }

  // Launches the per-core loop threads. Idempotent.
  void Start();
  // Stops all loops and joins the threads. Called by the destructor if needed.
  void Shutdown();

  // Queues `fn` on machine core `core` (callable from any thread).
  void Spawn(std::size_t core, MoveFunction<void()> fn);
  // Queues `fn` and blocks the calling (external) thread until it completes.
  void RunSync(std::size_t core, MoveFunction<void()> fn);

  // --- Executor -----------------------------------------------------------------------------
  std::uint64_t Now() override { return WallNowNs() - epoch_ns_; }
  void WakeCore(std::size_t machine_core) override;
  void Halt(std::size_t machine_core, std::uint64_t wake_at) override;
  bool Stopped() const override { return stopped_.load(std::memory_order_acquire); }

 private:
  struct CoreState {
    std::mutex mu;
    std::condition_variable cv;
    bool wake_pending = false;
    std::thread thread;
  };

  void CoreMain(std::size_t machine_core);

  std::unique_ptr<Runtime> runtime_;
  EventManagerRoot* em_root_ = nullptr;  // owned by runtime root registry conventions
  TimerRoot* timer_root_ = nullptr;
  std::vector<std::unique_ptr<CoreState>> cores_;
  std::uint64_t epoch_ns_;
  std::atomic<bool> stopped_{false};
  bool started_ = false;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_THREAD_MACHINE_H_
