// EventManager — per-core, non-preemptive event dispatch (paper §2.3 / §3.2).
//
// One representative per core. A core's loop dispatches, in priority order:
//
//   1. due timer callbacks and pending interrupt vectors (the "enable then disable interrupts"
//      window of the paper's protocol),
//   2. remote spawns (our stand-in for IPIs),
//   3. exactly ONE synthetic event,
//   4. all registered IdleCallbacks,
//
// and restarts from the top whenever any step ran a handler, so interrupts and synthetic
// events always take priority over repeatedly-invoked idle handlers; only when a full pass
// runs nothing does the core "enable interrupts and halt" (Executor::Halt).
//
// Every handler runs on a pooled event stack (fiber). A handler that must wait for
// asynchronous work calls SaveContext(ctx) — its stack and callee-saved registers freeze
// inside ctx and the loop continues with other events on a fresh activation. ActivateContext
// re-queues the frozen context; the loop switches back into it as if the save had just
// returned. This is the paper's hybrid stack-ripping escape hatch, used to give ported
// software familiar blocking semantics.
//
// Because handlers are never preempted and never migrate, all per-core state in this class is
// plain (non-atomic); only the remote-spawn / interrupt mailboxes, which other cores push
// into, take a spinlock.
#ifndef EBBRT_SRC_EVENT_EVENT_MANAGER_H_
#define EBBRT_SRC_EVENT_EVENT_MANAGER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/event/executor.h"
#include "src/platform/fiber.h"
#include "src/platform/move_function.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

class EventManager;

// Frozen state of a blocked event (opaque to users; see SaveContext/ActivateContext).
class EventContext {
 public:
  EventContext() = default;
  EventContext(EventContext&& other) noexcept { *this = std::move(other); }
  EventContext& operator=(EventContext&& other) noexcept {
    sp_ = other.sp_;
    stack_ = std::move(other.stack_);
    other.sp_ = nullptr;
    return *this;
  }
  bool valid() const { return sp_ != nullptr; }

 private:
  friend class EventManager;
  void* sp_ = nullptr;
  std::unique_ptr<FiberStack> stack_;
};

class EventManagerRoot {
 public:
  EventManagerRoot(Executor& executor, std::size_t num_cores);
  ~EventManagerRoot();

  EventManager& RepFor(std::size_t machine_core);
  Executor& executor() { return executor_; }
  std::size_t num_cores() const { return reps_.size(); }

 private:
  Executor& executor_;
  std::vector<std::unique_ptr<EventManager>> reps_;
};

class EventManager {
 public:
  static EbbRef<EventManager> Instance() { return EbbRef<EventManager>(kEventManagerId); }
  // Resolves the current core's representative (installed at machine bring-up).
  static EventManager& HandleFault(EbbId id);

  EventManager(EventManagerRoot& root, Executor& executor, std::size_t machine_core);
  ~EventManager();

  // --- Spawning ---------------------------------------------------------------------------
  // Queues `fn` as a synthetic event on this core. Spawned events run exactly once.
  void Spawn(MoveFunction<void()> fn);
  void SpawnLocal(MoveFunction<void()> fn) { Spawn(std::move(fn)); }
  // Queues `fn` on another core of this machine (cross-core safe).
  void SpawnRemote(MoveFunction<void()> fn, std::size_t machine_core);

  // --- Interrupt vectors --------------------------------------------------------------------
  // Devices allocate a vector and bind a persistent handler (paper: "Devices can allocate a
  // hardware interrupt from the EventManager and then bind a handler to that interrupt").
  std::uint32_t AllocateVector(MoveFunction<void()> handler);
  void SetVectorHandler(std::uint32_t vector, MoveFunction<void()> handler);
  // Fires a vector on this core. Safe from any thread; the handler is invoked from the event
  // loop with interrupts (conceptually) disabled.
  void RaiseVector(std::uint32_t vector);

  // --- Idle callbacks -----------------------------------------------------------------------
  // Recurring handler invoked on every idle pass (adaptive polling builds on this).
  class IdleCallback {
   public:
    IdleCallback(EventManager& em, MoveFunction<void()> fn)
        : em_(em), fn_(std::move(fn)) {}
    ~IdleCallback();
    void Start();
    void Stop();
    bool started() const { return started_; }

   private:
    friend class EventManager;
    EventManager& em_;
    MoveFunction<void()> fn_;
    bool started_ = false;
  };

  // --- End-of-event hooks -------------------------------------------------------------------
  // Queues `fn` to run once, when the currently-dispatching event hands control back to this
  // core's loop (on completion or on SaveContext suspension) — after the handler, before the
  // next event and before any IdleCallback gets a turn. This is the event-boundary flush
  // point the TX batcher builds on: work accumulated during one event dispatch is emitted
  // exactly once, at its edge. Hooks run on the loop stack, not on an event stack, so they
  // must run to completion (no SaveContext). A hook queued by another hook runs in the same
  // boundary drain. Call from within an event on this core.
  void QueueEndOfEvent(MoveFunction<void()> fn);

  // --- Blocking support ---------------------------------------------------------------------
  // Freezes the current event into `ctx` and resumes the loop. Must be called from within an
  // event handler on this core. Returns when ActivateContext(ctx) runs.
  void SaveContext(EventContext& ctx);
  // Re-queues a frozen event; it resumes with interrupt priority. Cross-core safe.
  void ActivateContext(EventContext&& ctx);

  // --- Loop control ------------------------------------------------------------------------
  // Runs the dispatch protocol until Stop() (or executor shutdown). Called by the executor on
  // the core's base stack.
  void Loop();
  // Runs until `pred()` holds at a loop boundary (used by tests and machine bring-up).
  void LoopUntil(MoveFunction<bool()> pred);
  void Stop() { stopped_ = true; }

  std::size_t machine_core() const { return machine_core_; }
  Executor& executor() { return executor_; }

  // Timer integration (Timer rep registers its due-dispatch here; see timer.h). The poll
  // callback dispatches all due timer callbacks and reports the next pending deadline.
  struct TimerPollResult {
    std::uint64_t dispatched = 0;          // callbacks run during this poll
    std::uint64_t next_deadline = kNoWakeup;  // ns, kNoWakeup when no timer pending
  };
  void SetTimerPoll(MoveFunction<TimerPollResult(std::uint64_t)> poll) {
    timer_poll_ = std::move(poll);
  }
  // Lets the Timer rep tighten the halt deadline when a new timer is started mid-pass.
  void SetTimerDeadline(std::uint64_t deadline) { timer_deadline_ = deadline; }
  // Runs a due timer callback on an event stack (callable only from the timer poll, which
  // executes on this core's loop). Timer callbacks thereby get full event semantics,
  // including SaveContext blocking. One-shot callbacks (persistent=false) are moved onto the
  // fiber stack and survive suspension.
  void RunTimerHandler(MoveFunction<void()>* fn, bool persistent) {
    RunOnEventStack(fn, persistent);
  }

  // Statistics (exported for tests and the adaptive-polling policy).
  std::uint64_t interrupts_dispatched() const { return stats_.interrupts; }
  std::uint64_t events_dispatched() const { return stats_.synthetic; }
  std::uint64_t idle_passes() const { return stats_.idle_passes; }
  std::uint64_t end_of_event_hooks_run() const { return stats_.end_of_event; }

 private:
  struct QueueEntry {
    MoveFunction<void()> fn;  // synthetic event, or
    void* resume_sp = nullptr;  // frozen context to resume
    std::unique_ptr<FiberStack> resume_stack;
  };

  static void FiberTrampoline(void* arg);
  void FiberMain();
  // Dispatches one callable on an event stack; handles completion vs. suspension. One-shot
  // (non-persistent) callables are moved onto the fiber stack so they survive suspension.
  void RunOnEventStack(MoveFunction<void()>* fn, bool persistent = false);
  void ResumeContext(QueueEntry entry);
  // Drains end-of-event hooks on the loop stack after a handler completes or suspends.
  void RunEndOfEventHooks();

  bool DispatchPass();  // one pass of the §3.2 protocol; true if any handler ran
  bool DispatchTimers();
  bool DispatchInterrupts();
  bool DispatchRemote();
  bool DispatchOneSynthetic();
  bool DispatchIdle();

  EventManagerRoot& root_;
  Executor& executor_;
  std::size_t machine_core_;

  // Core-local synthetic event queue (paper: Spawn). Plain deque: single writer/reader.
  std::deque<QueueEntry> local_queue_;

  // Cross-core mailboxes.
  Spinlock remote_mu_;
  std::deque<QueueEntry> remote_queue_;
  Spinlock irq_mu_;
  std::deque<std::uint32_t> pending_vectors_;

  // Vector table. Handlers are persistent; table mutated only on this core.
  std::unordered_map<std::uint32_t, MoveFunction<void()>> vector_table_;
  std::uint32_t next_vector_ = 32;  // skip "reserved" vectors, flavor of x86

  std::vector<IdleCallback*> idle_callbacks_;

  // One-shot event-boundary hooks (see QueueEndOfEvent). Core-local: single writer/reader.
  std::deque<MoveFunction<void()>> end_of_event_queue_;

  MoveFunction<TimerPollResult(std::uint64_t)> timer_poll_;
  std::uint64_t timer_deadline_ = kNoWakeup;

  // Fiber dispatch state.
  StackPool stack_pool_;
  void* loop_sp_ = nullptr;               // loop context while a fiber runs
  MoveFunction<void()>* active_fn_ = nullptr;  // invocation for a fresh fiber
  bool active_persistent_ = false;             // invoke in place vs. move onto fiber stack
  std::unique_ptr<FiberStack> active_stack_;   // stack of the currently-running fiber
  bool fiber_suspended_ = false;          // current fiber called SaveContext
  EventContext* suspend_target_ = nullptr;
  void* fiber_sp_ = nullptr;              // save slot for the running fiber on switch-out

  bool stopped_ = false;
  bool in_loop_ = false;

  struct {
    std::uint64_t interrupts = 0;
    std::uint64_t synthetic = 0;
    std::uint64_t idle_passes = 0;
    std::uint64_t timers = 0;
    std::uint64_t end_of_event = 0;
  } stats_;
};

namespace event {
// The current core's EventManager representative.
inline EventManager& Local() { return *EventManager::Instance(); }
}  // namespace event

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_EVENT_MANAGER_H_
