// EventManager — per-core, non-preemptive event dispatch (paper §2.3 / §3.2).
//
// One representative per core. A core's loop dispatches, in priority order:
//
//   1. due timer callbacks (the "enable then disable interrupts" window of the paper's
//      protocol),
//   2. the cross-core interconnect batch — pending interrupt vectors, remote spawns, and
//      resumed contexts, in per-sender FIFO order (our stand-in for IPIs),
//   3. exactly ONE synthetic event,
//   4. all registered IdleCallbacks,
//
// and restarts from the top whenever any step ran a handler, so interrupts and synthetic
// events always take priority over repeatedly-invoked idle handlers; only when a full pass
// runs nothing does the core "enable interrupts and halt" (Executor::Halt) — after
// CAS-publishing the interconnect's idle sentinel, so a sender racing the halt either gets
// observed in one more pass or sees the sentinel and wakes the core.
//
// Every handler runs on a pooled event stack (fiber). A handler that must wait for
// asynchronous work calls SaveContext(ctx) — its stack and callee-saved registers freeze
// inside ctx and the loop continues with other events on a fresh activation. ActivateContext
// re-queues the frozen context; the loop switches back into it as if the save had just
// returned. This is the paper's hybrid stack-ripping escape hatch, used to give ported
// software familiar blocking semantics.
//
// Because handlers are never preempted and never migrate, all per-core state in this class is
// plain (non-atomic). Cross-core traffic arrives exclusively through the lock-free
// Interconnect — no spinlock is taken anywhere on the steady-state dispatch path.
#ifndef EBBRT_SRC_EVENT_EVENT_MANAGER_H_
#define EBBRT_SRC_EVENT_EVENT_MANAGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/event/executor.h"
#include "src/event/interconnect.h"
#include "src/obs/histogram.h"
#include "src/platform/fiber.h"
#include "src/platform/move_function.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

class EventManager;

// Frozen state of a blocked event (opaque to users; see SaveContext/ActivateContext).
class EventContext {
 public:
  EventContext() = default;
  EventContext(EventContext&& other) noexcept { *this = std::move(other); }
  EventContext& operator=(EventContext&& other) noexcept {
    sp_ = other.sp_;
    stack_ = std::move(other.stack_);
    other.sp_ = nullptr;
    return *this;
  }
  bool valid() const { return sp_ != nullptr; }

 private:
  friend class EventManager;
  void* sp_ = nullptr;
  std::unique_ptr<FiberStack> stack_;
};

class EventManagerRoot {
 public:
  EventManagerRoot(Executor& executor, std::size_t num_cores);
  ~EventManagerRoot();

  EventManager& RepFor(std::size_t machine_core);
  Executor& executor() { return executor_; }
  std::size_t num_cores() const { return reps_.size(); }
  // The machine's cross-core mesh. Subsystems with their own node types (BufferPool block
  // returns, RCU epoch markers) push here directly.
  Interconnect& interconnect() { return interconnect_; }

 private:
  Executor& executor_;
  std::vector<std::unique_ptr<EventManager>> reps_;
  // Declared last => destroyed first: the teardown drain Discards undelivered nodes while
  // the reps (whose vector entries are embedded nodes) are still alive.
  Interconnect interconnect_;
};

class EventManager {
 public:
  static EbbRef<EventManager> Instance() { return EbbRef<EventManager>(kEventManagerId); }
  // Resolves the current core's representative (installed at machine bring-up).
  static EventManager& HandleFault(EbbId id);

  EventManager(EventManagerRoot& root, Executor& executor, std::size_t machine_core);
  ~EventManager();

  // --- Spawning ---------------------------------------------------------------------------
  // Queues `fn` as a synthetic event on this core. Spawned events run exactly once.
  void Spawn(MoveFunction<void()> fn);
  void SpawnLocal(MoveFunction<void()> fn) { Spawn(std::move(fn)); }
  // Queues `fn` on another core of this machine (cross-core safe).
  void SpawnRemote(MoveFunction<void()> fn, std::size_t machine_core);

  // --- Interrupt vectors --------------------------------------------------------------------
  // Devices allocate a vector and bind a persistent handler (paper: "Devices can allocate a
  // hardware interrupt from the EventManager and then bind a handler to that interrupt").
  std::uint32_t AllocateVector(MoveFunction<void()> handler);
  void SetVectorHandler(std::uint32_t vector, MoveFunction<void()> handler);
  // Fires a vector on this core. Safe from any thread: the raiser bumps the entry's pending
  // count and only the 0->1 transition publishes the (embedded) node — no lock, no
  // allocation, coalesced redelivery. The handler is invoked from the event loop with
  // interrupts (conceptually) disabled.
  void RaiseVector(std::uint32_t vector);

  // x86-flavored fixed table: vectors 0-31 reserved, 32-255 allocatable.
  static constexpr std::uint32_t kNumVectors = 256;

  // --- Idle callbacks -----------------------------------------------------------------------
  // Recurring handler invoked on every idle pass (adaptive polling builds on this).
  class IdleCallback {
   public:
    IdleCallback(EventManager& em, MoveFunction<void()> fn)
        : em_(em), fn_(std::move(fn)) {}
    ~IdleCallback();
    void Start();
    void Stop();
    bool started() const { return started_; }

   private:
    friend class EventManager;
    EventManager& em_;
    MoveFunction<void()> fn_;
    bool started_ = false;
    std::size_t index_ = 0;  // position in em_.idle_callbacks_ while started (O(1) Stop)
  };

  // --- End-of-event hooks -------------------------------------------------------------------
  // Queues `fn` to run once, when the currently-dispatching event hands control back to this
  // core's loop (on completion or on SaveContext suspension) — after the handler, before the
  // next event and before any IdleCallback gets a turn. This is the event-boundary flush
  // point the TX batcher and the RCU epoch coalescer build on: work accumulated during one
  // event dispatch is emitted exactly once, at its edge. Hooks run on the loop stack, not on
  // an event stack, so they must run to completion (no SaveContext). A hook queued by
  // another hook runs in the same boundary drain. Call from within an event on this core.
  void QueueEndOfEvent(MoveFunction<void()> fn);

  // True while an event handler is running on this core's event stack (false on the loop
  // stack: end-of-event hooks, interconnect drains, bring-up). The RCU manager keys its
  // boundary batching off this.
  bool dispatching_event() const { return active_stack_ != nullptr; }

  // --- Blocking support ---------------------------------------------------------------------
  // Freezes the current event into `ctx` and resumes the loop. Must be called from within an
  // event handler on this core. Returns when ActivateContext(ctx) runs.
  void SaveContext(EventContext& ctx);
  // Re-queues a frozen event; it resumes with interrupt priority. Cross-core safe.
  void ActivateContext(EventContext&& ctx);

  // --- Loop control ------------------------------------------------------------------------
  // Runs the dispatch protocol until Stop() (or executor shutdown). Called by the executor on
  // the core's base stack.
  void Loop();
  // Runs until `pred()` holds at a loop boundary (used by tests and machine bring-up).
  void LoopUntil(MoveFunction<bool()> pred);
  void Stop() { stopped_ = true; }

  std::size_t machine_core() const { return machine_core_; }
  Executor& executor() { return executor_; }

  // Timer integration (Timer rep registers its due-dispatch here; see timer.h). The poll
  // callback dispatches all due timer callbacks and reports the next pending deadline.
  struct TimerPollResult {
    std::uint64_t dispatched = 0;          // callbacks run during this poll
    std::uint64_t next_deadline = kNoWakeup;  // ns, kNoWakeup when no timer pending
  };
  void SetTimerPoll(MoveFunction<TimerPollResult(std::uint64_t)> poll) {
    timer_poll_ = std::move(poll);
  }
  // Lets the Timer rep tighten the halt deadline when a new timer is started mid-pass.
  void SetTimerDeadline(std::uint64_t deadline) { timer_deadline_ = deadline; }
  // Runs a due timer callback on an event stack (callable only from the timer poll, which
  // executes on this core's loop). Timer callbacks thereby get full event semantics,
  // including SaveContext blocking. One-shot callbacks (persistent=false) are moved onto the
  // fiber stack and survive suspension.
  void RunTimerHandler(MoveFunction<void()>* fn, bool persistent) {
    RunOnEventStack(fn, persistent);
  }

  // Statistics (exported for tests, benches, and the adaptive-polling policy).
  std::uint64_t interrupts_dispatched() const { return stats_.interrupts; }
  std::uint64_t events_dispatched() const { return stats_.synthetic; }
  std::uint64_t idle_passes() const { return stats_.idle_passes; }
  std::uint64_t end_of_event_hooks_run() const { return stats_.end_of_event; }

  // Snapshot of this core's dispatch counters, including the interconnect's view of its
  // inbound cross-core traffic.
  struct Stats {
    std::uint64_t interrupts = 0;      // vector handler activations
    std::uint64_t synthetic = 0;       // spawned events run (local + cross-core)
    std::uint64_t idle_passes = 0;
    std::uint64_t timers = 0;
    std::uint64_t end_of_event = 0;
    std::uint64_t xcore_spawns = 0;    // spawn/activate nodes that arrived via the mesh
    std::uint64_t xcore_batches = 0;   // non-empty TakeBatch drains (one exchange each)
    std::uint64_t xcore_pushes = 0;    // nodes other cores/threads pushed at this core
    std::uint64_t xcore_wakeups = 0;   // pushes that displaced the idle sentinel (paid wake)
    std::uint64_t xcore_wakeups_elided = 0;  // pushes that needed no wake (core awake/pending)
    std::uint64_t control_locks = 0;   // spinlock acquisitions on the dispatch path:
                                       // structurally zero since the interconnect port
  };
  Stats stats() const;

  // --- Observability (obs::ObsRoot attaches at plane creation) -------------------------------
  // The obs plane's per-machine level switch. While it reads >= kMetrics, the loop records
  // per-event handler latency, end-of-event hook duration, interconnect batch size, and
  // queue residency into the inline histograms below — one Executor::Now() pair and a few
  // relaxed stores per event, no locks, no heap. Detached (nullptr) = everything off.
  void SetObsLevel(const std::atomic<std::uint8_t>* level) {
    obs_level_.store(level, std::memory_order_relaxed);
  }
  const obs::Histogram& handler_latency_hist() const { return handler_latency_hist_; }
  const obs::Histogram& end_of_event_hook_hist() const { return hook_duration_hist_; }
  const obs::Histogram& xcore_batch_size_hist() const { return xcore_batch_size_hist_; }
  const obs::Histogram& xcore_residency_hist() const { return xcore_residency_hist_; }
  // Local run-queue depth, refreshed once per dispatch pass (the autoscaler's queue signal).
  std::uint64_t run_queue_depth() const {
    return run_queue_depth_.load(std::memory_order_relaxed);
  }

 private:
  friend class EventManagerRoot;

  struct QueueEntry {
    MoveFunction<void()> fn;  // synthetic event, or
    void* resume_sp = nullptr;  // frozen context to resume
    std::unique_ptr<FiberStack> resume_stack;
  };

  // Cross-core message types (definitions in the .cc; nested so Fire can use privates).
  struct SpawnNode;     // a remote Spawn: carries the closure, runs as a synthetic event
  struct ActivateNode;  // a remote ActivateContext: carries the frozen fiber

  // One interrupt vector. The node is EMBEDDED: raising a vector never allocates, and a
  // vector raised N times before the owner drains runs its handler N times off one node
  // (pending counts the coalesced raises). Fire/Discard do not free — the entry is owned by
  // the vector table and lives until the rep dies.
  struct VectorEntry final : InterconnectNode {
    explicit VectorEntry(MoveFunction<void()> h) : handler(std::move(h)) {}
    void Fire(EventManager& em) override;
    void Discard() override { pending.store(0, std::memory_order_relaxed); }
    MoveFunction<void()> handler;       // invoked on the owner core only
    std::atomic<std::uint32_t> pending{0};  // raises since the last Fire
  };

  static void FiberTrampoline(void* arg);
  void FiberMain();
  // Dispatches one callable on an event stack; handles completion vs. suspension. One-shot
  // (non-persistent) callables are moved onto the fiber stack so they survive suspension.
  void RunOnEventStack(MoveFunction<void()>* fn, bool persistent = false);
  void ResumeContext(QueueEntry entry);
  // Drains end-of-event hooks on the loop stack after a handler completes or suspends.
  void RunEndOfEventHooks();
  // Halts via the executor after publishing the interconnect idle sentinel; a failed publish
  // means work arrived and the caller must run another pass.
  void IdleHalt();

  bool DispatchPass();  // one pass of the §3.2 protocol; true if any handler ran
  bool DispatchTimers();
  // Drains and fires this core's interconnect batch: interrupt vectors, remote spawns,
  // resumed contexts, pooled-block returns, RCU markers — whatever other cores sent.
  bool DispatchInterconnect();
  bool DispatchOneSynthetic();
  bool DispatchIdle();

  EventManagerRoot& root_;
  Executor& executor_;
  std::size_t machine_core_;

  // Core-local synthetic event queue (paper: Spawn). Plain deque: single writer/reader.
  std::deque<QueueEntry> local_queue_;

  // Vector table: fixed array of release-published entries, so a device thread can raise
  // concurrently with this core allocating new vectors (no map rehash to race with).
  // Entries are created on this core and live until the rep dies.
  std::array<std::atomic<VectorEntry*>, kNumVectors> vector_table_{};
  std::uint32_t next_vector_ = 32;  // skip "reserved" vectors, flavor of x86

  std::vector<IdleCallback*> idle_callbacks_;

  // One-shot event-boundary hooks (see QueueEndOfEvent). Core-local: single writer/reader.
  // A vector drained by index and clear()ed, NOT a deque: clear keeps the capacity, so the
  // steady state (one RCU-epoch hook per event, forever) re-queues into memory that was
  // allocated once — a deque's chunk map migrates forward and re-allocates every few
  // events, which shows up as a per-op generic-heap rate on write-heavy item-plane mixes.
  std::vector<MoveFunction<void()>> end_of_event_queue_;

  MoveFunction<TimerPollResult(std::uint64_t)> timer_poll_;
  std::uint64_t timer_deadline_ = kNoWakeup;

  // Fiber dispatch state.
  StackPool stack_pool_;
  void* loop_sp_ = nullptr;               // loop context while a fiber runs
  MoveFunction<void()>* active_fn_ = nullptr;  // invocation for a fresh fiber
  bool active_persistent_ = false;             // invoke in place vs. move onto fiber stack
  std::unique_ptr<FiberStack> active_stack_;   // stack of the currently-running fiber
  bool fiber_suspended_ = false;          // current fiber called SaveContext
  EventContext* suspend_target_ = nullptr;
  void* fiber_sp_ = nullptr;              // save slot for the running fiber on switch-out

  bool stopped_ = false;
  bool in_loop_ = false;

  // Observability plane hookup (see SetObsLevel). The pointer itself is atomic so the obs
  // root can attach/detach from a control-plane core while this core's loop runs.
  bool ObsMetricsOn() const {
    const std::atomic<std::uint8_t>* level = obs_level_.load(std::memory_order_relaxed);
    return level != nullptr && level->load(std::memory_order_relaxed) != 0;
  }
  std::atomic<const std::atomic<std::uint8_t>*> obs_level_{nullptr};
  obs::Histogram handler_latency_hist_;
  obs::Histogram hook_duration_hist_;
  obs::Histogram xcore_batch_size_hist_;
  obs::Histogram xcore_residency_hist_;
  std::atomic<std::uint64_t> run_queue_depth_{0};

  struct {
    std::uint64_t interrupts = 0;
    std::uint64_t synthetic = 0;
    std::uint64_t idle_passes = 0;
    std::uint64_t timers = 0;
    std::uint64_t end_of_event = 0;
    std::uint64_t xcore_spawns = 0;
    std::uint64_t xcore_batches = 0;
  } stats_;
};

namespace event {
// The current core's EventManager representative.
inline EventManager& Local() { return *EventManager::Instance(); }
}  // namespace event

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_EVENT_MANAGER_H_
