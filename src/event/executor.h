// Executor — the substrate a machine's cores run on.
//
// The paper's native environment boots one event loop per physical core; ours runs the same
// loop either on real threads (ThreadExecutor) or on a discrete-event calendar with virtual
// time (SimExecutor, used by the benchmark testbed). The EventManager only needs three things
// from its substrate: the clock, a way to wake a halted core, and a halt primitive that
// returns when there is (or may be) work.
#ifndef EBBRT_SRC_EVENT_EXECUTOR_H_
#define EBBRT_SRC_EVENT_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ebbrt {

inline constexpr std::uint64_t kNoWakeup = std::numeric_limits<std::uint64_t>::max();

class Executor {
 public:
  virtual ~Executor() = default;

  // Nanoseconds since executor start (virtual time under simulation).
  virtual std::uint64_t Now() = 0;

  // Ensures `machine_core`'s loop runs soon. Safe to call from any thread / any core
  // (device interrupt delivery, remote spawns, cross-core future fulfillment).
  virtual void WakeCore(std::size_t machine_core) = 0;

  // Called by a core's own loop when it has no work: "enables interrupts and halts". Returns
  // when the core is woken or `wake_at` (ns, kNoWakeup for none — e.g. a pending timer)
  // arrives. Must only be called from the loop of `machine_core`.
  virtual void Halt(std::size_t machine_core, std::uint64_t wake_at) = 0;

  // True once shutdown has been requested; loops exit at the next boundary.
  virtual bool Stopped() const = 0;

  // Notified by the event loop after each handler completes. The simulated executor uses this
  // to advance virtual time in fixed-cost mode; real executors ignore it.
  virtual void OnHandlerComplete() {}

  // Called by the loop between dispatch passes. The simulated executor parks the core here
  // when world events (e.g. packet deliveries) are scheduled earlier than the core's virtual
  // clock, so device activity interleaves with polling loops exactly as on real hardware.
  // Real executors (true concurrency) need nothing.
  virtual void MaybeYield(std::size_t machine_core) {}
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_EXECUTOR_H_
