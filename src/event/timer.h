// Timer — per-core timeout dispatch Ebb.
//
// Timeouts are core-local (started, fired, and stopped on one core), so the wheel needs no
// synchronization. The representative registers a poll hook with its core's EventManager; the
// event loop invokes it at the top of each dispatch pass ("timer completions" are interrupt
// sources in the paper's model), and uses the reported next deadline to bound Halt.
#ifndef EBBRT_SRC_EVENT_TIMER_H_
#define EBBRT_SRC_EVENT_TIMER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/core/ebb_id.h"
#include "src/core/ebb_ref.h"
#include "src/core/runtime.h"
#include "src/event/event_manager.h"
#include "src/platform/move_function.h"

namespace ebbrt {

class Timer;

class TimerRoot {
 public:
  TimerRoot(Executor& executor, EventManagerRoot& em_root, std::size_t num_cores);
  Timer& RepFor(std::size_t machine_core);
  Executor& executor() { return executor_; }
  EventManagerRoot& em_root() { return em_root_; }

 private:
  Executor& executor_;
  EventManagerRoot& em_root_;
  std::vector<std::unique_ptr<Timer>> reps_;
  Spinlock mu_;  // guards lazy rep construction (first touch can race across cores)
};

class Timer {
 public:
  static EbbRef<Timer> Instance() { return EbbRef<Timer>(kTimerId); }
  static Timer& HandleFault(EbbId id);

  Timer(TimerRoot& root, std::size_t machine_core);

  // Arms a timeout `delay_ns` from now on the current core; returns a handle for Stop().
  // Periodic timers re-arm with the same period until stopped.
  std::uint64_t Start(std::uint64_t delay_ns, MoveFunction<void()> fn, bool periodic = false);
  void Stop(std::uint64_t handle);

  std::size_t pending() const { return entries_.size(); }

  // Invoked by the event loop: runs all due callbacks, returns count + next deadline.
  EventManager::TimerPollResult Poll(std::uint64_t now);

 private:
  struct Entry {
    MoveFunction<void()> fn;
    std::uint64_t period_ns;  // 0 => one-shot
    bool cancelled;
  };
  struct QueueItem {
    std::uint64_t deadline;
    std::uint64_t handle;
    friend bool operator>(const QueueItem& a, const QueueItem& b) {
      return a.deadline != b.deadline ? a.deadline > b.deadline : a.handle > b.handle;
    }
  };

  TimerRoot& root_;
  std::size_t machine_core_;
  std::uint64_t next_handle_ = 1;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_TIMER_H_
