#include "src/event/event_manager.h"

#include <utility>

namespace ebbrt {

// --- Root -----------------------------------------------------------------------------------

EventManagerRoot::EventManagerRoot(Executor& executor, std::size_t num_cores)
    : executor_(executor), interconnect_(executor, num_cores) {
  reps_.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    reps_.push_back(std::make_unique<EventManager>(*this, executor, i));
  }
}

EventManagerRoot::~EventManagerRoot() = default;

EventManager& EventManagerRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "EventManagerRoot: bad core");
  return *reps_[machine_core];
}

EventManager& EventManager::HandleFault(EbbId id) {
  Context& ctx = CurrentContext();
  auto* root = static_cast<EventManagerRoot*>(ctx.runtime->FindRoot(id));
  Kbugon(root == nullptr, "EventManager: no root installed for machine '%s'",
         ctx.runtime->name().c_str());
  EventManager& rep = root->RepFor(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

// --- Cross-core message nodes ----------------------------------------------------------------

// A remote Spawn. Fire moves the closure out, frees the node (the slab slot is available
// again before the handler even runs), then dispatches a normal synthetic event.
struct EventManager::SpawnNode final : InterconnectNode {
  explicit SpawnNode(MoveFunction<void()> f) : fn(std::move(f)) {}
  void Fire(EventManager& em) override {
    MoveFunction<void()> f = std::move(fn);
    Interconnect::Delete(this);
    ++em.stats_.xcore_spawns;
    ++em.stats_.synthetic;
    // Safe: RunOnEventStack moves one-shot closures onto the fiber stack before any
    // suspension, and this loop-stack frame outlives the dispatch either way.
    em.RunOnEventStack(&f);
  }
  void Discard() override { Interconnect::Delete(this); }  // closure dropped unrun
  MoveFunction<void()> fn;
};

// A remote ActivateContext: re-adopts the frozen fiber on its home core.
struct EventManager::ActivateNode final : InterconnectNode {
  ActivateNode(void* sp, std::unique_ptr<FiberStack> s) : resume_sp(sp), stack(std::move(s)) {}
  void Fire(EventManager& em) override {
    QueueEntry entry;
    entry.resume_sp = resume_sp;
    entry.resume_stack = std::move(stack);
    Interconnect::Delete(this);
    ++em.stats_.xcore_spawns;
    em.ResumeContext(std::move(entry));
  }
  void Discard() override {
    // The frozen event never resumes; its stack unwinds with the pool. (Teardown only.)
    Interconnect::Delete(this);
  }
  void* resume_sp;
  std::unique_ptr<FiberStack> stack;
};

void EventManager::VectorEntry::Fire(EventManager& em) {
  // Coalesced redelivery: every raise since the last Fire runs the handler once. The
  // exchange closes the race with a concurrent raiser — a raise that lands after it sees
  // pending==0 and re-publishes this node for the next pass.
  std::uint32_t raises = pending.exchange(0, std::memory_order_acq_rel);
  for (std::uint32_t i = 0; i < raises; ++i) {
    ++em.stats_.interrupts;
    em.RunOnEventStack(&handler, /*persistent=*/true);
  }
}

// --- Rep ------------------------------------------------------------------------------------

EventManager::EventManager(EventManagerRoot& root, Executor& executor,
                           std::size_t machine_core)
    : root_(root), executor_(executor), machine_core_(machine_core) {}

EventManager::~EventManager() {
  // The root's interconnect (destroyed before the reps) has already discarded any pending
  // nodes, so the embedded vector entries are no longer reachable from any list.
  for (auto& slot : vector_table_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

void EventManager::Spawn(MoveFunction<void()> fn) {
  if (HaveContext() && CurrentContext().machine_core == machine_core_ && in_loop_) {
    QueueEntry entry;
    entry.fn = std::move(fn);
    local_queue_.push_back(std::move(entry));
    return;
  }
  // Not on this core's loop (bring-up, another core, or a device thread): publish a
  // continuation node on the interconnect. Lock-free; wakes the core only if it halted.
  root_.interconnect().Push(machine_core_, Interconnect::New<SpawnNode>(std::move(fn)));
}

void EventManager::SpawnRemote(MoveFunction<void()> fn, std::size_t machine_core) {
  root_.RepFor(machine_core).Spawn(std::move(fn));
}

std::uint32_t EventManager::AllocateVector(MoveFunction<void()> handler) {
  std::uint32_t vector = next_vector_++;
  Kbugon(vector >= kNumVectors, "EventManager: interrupt vectors exhausted");
  // Release-publish so a device thread that learns the vector number afterward reads a
  // fully-constructed entry.
  vector_table_[vector].store(new VectorEntry(std::move(handler)),
                              std::memory_order_release);
  return vector;
}

void EventManager::SetVectorHandler(std::uint32_t vector, MoveFunction<void()> handler) {
  Kbugon(vector >= kNumVectors, "EventManager: bad vector %u", vector);
  VectorEntry* entry = vector_table_[vector].load(std::memory_order_acquire);
  if (entry == nullptr) {
    vector_table_[vector].store(new VectorEntry(std::move(handler)),
                                std::memory_order_release);
    return;
  }
  // Handler replacement happens on the owner core (where Fire also runs), so the swap
  // cannot race an invocation; raisers only touch `pending`.
  entry->handler = std::move(handler);
}

void EventManager::RaiseVector(std::uint32_t vector) {
  Kbugon(vector >= kNumVectors, "EventManager: bad vector %u", vector);
  VectorEntry* entry = vector_table_[vector].load(std::memory_order_acquire);
  Kbugon(entry == nullptr, "EventManager: spurious vector %u", vector);
  // Only the 0->1 transition publishes the embedded node; further raises before the owner
  // drains just bump the count (coalesced, allocation-free, lock-free).
  if (entry->pending.fetch_add(1, std::memory_order_acq_rel) == 0) {
    root_.interconnect().Push(machine_core_, entry);
  }
}

// --- Idle callbacks --------------------------------------------------------------------------

EventManager::IdleCallback::~IdleCallback() {
  if (started_) {
    Stop();
  }
}

void EventManager::IdleCallback::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  index_ = em_.idle_callbacks_.size();
  em_.idle_callbacks_.push_back(this);
  em_.executor_.WakeCore(em_.machine_core_);
}

void EventManager::IdleCallback::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  // O(1) swap-and-pop: each callback remembers its slot, the displaced tail is re-indexed.
  auto& cbs = em_.idle_callbacks_;
  Kassert(index_ < cbs.size() && cbs[index_] == this, "IdleCallback: index out of sync");
  IdleCallback* tail = cbs.back();
  cbs[index_] = tail;
  tail->index_ = index_;
  cbs.pop_back();
}

// --- End-of-event hooks ----------------------------------------------------------------------

void EventManager::QueueEndOfEvent(MoveFunction<void()> fn) {
  Kassert(HaveContext() && CurrentContext().machine_core == machine_core_,
          "QueueEndOfEvent: wrong core");
  end_of_event_queue_.push_back(std::move(fn));
}

void EventManager::RunEndOfEventHooks() {
  if (end_of_event_queue_.empty()) {
    return;
  }
  // Boundary-work duration: how long the TX flush / RCU epoch / pool decay machinery holds
  // the loop at each event edge. Only non-empty drains record, so the histogram measures
  // actual boundary work rather than a spike of zeros.
  bool measure = ObsMetricsOn();
  std::uint64_t t0 = measure ? executor_.Now() : 0;
  // Hooks queued by a running hook drain in the same boundary (the index re-checks size();
  // the callable is moved out before invocation, so a push_back-triggered reallocation
  // during fn() invalidates nothing we still hold).
  for (std::size_t i = 0; i < end_of_event_queue_.size(); ++i) {
    MoveFunction<void()> fn = std::move(end_of_event_queue_[i]);
    ++stats_.end_of_event;
    fn();
  }
  end_of_event_queue_.clear();  // keeps capacity: the steady state never re-allocates
  if (measure) {
    hook_duration_hist_.Record(executor_.Now() - t0);
  }
}

// --- Fiber dispatch --------------------------------------------------------------------------

void EventManager::FiberTrampoline(void* arg) {
  auto* self = static_cast<EventManager*>(arg);
  self->FiberMain();
  // FiberMain switches away and never returns here.
  Kabort("EventManager: fiber fell through");
}

void EventManager::FiberMain() {
  // One-shot events MOVE their closure onto this fiber's stack before invocation: if the
  // handler suspends (SaveContext), the loop-frame QueueEntry that carried the closure dies
  // while the fiber is frozen, so the closure must live here. Persistent handlers (interrupt
  // vectors, idle callbacks) are invoked in place — they are re-fired repeatedly and their
  // storage (the vector table / callback object) outlives any single activation.
  if (active_persistent_) {
    MoveFunction<void()>* fn = active_fn_;
    active_fn_ = nullptr;
    (*fn)();
  } else {
    MoveFunction<void()> fn = std::move(*active_fn_);
    active_fn_ = nullptr;
    fn();
  }
  // Completed: mark done (not suspended) and return to the loop. Our stack is recycled by the
  // loop after the switch completes.
  fiber_suspended_ = false;
  ebbrt_context_switch(&fiber_sp_, loop_sp_);
}

void EventManager::RunOnEventStack(MoveFunction<void()>* fn, bool persistent) {
  // Handler latency brackets exactly the fiber's occupancy of this core (the switch in to
  // the switch out — completion or suspension), in executor time: virtual ns under SimWorld
  // (so the distribution is deterministic), wall ns on real threads. Reading the clock has
  // no side effects, so measurement cannot perturb the simulated schedule.
  bool measure = ObsMetricsOn();
  std::uint64_t t0 = measure ? executor_.Now() : 0;
  active_fn_ = fn;
  active_persistent_ = persistent;
  active_stack_ = stack_pool_.Get();
  fiber_suspended_ = false;
  void* sp = active_stack_->InitialSp(&FiberTrampoline, this);
  ebbrt_context_switch(&loop_sp_, sp);
  // Back on the loop stack: the fiber either completed or suspended into suspend_target_.
  if (fiber_suspended_) {
    Kassert(suspend_target_ != nullptr, "EventManager: suspended without target");
    suspend_target_->sp_ = fiber_sp_;
    suspend_target_->stack_ = std::move(active_stack_);
    suspend_target_ = nullptr;
  } else {
    stack_pool_.Put(std::move(active_stack_));
  }
  if (measure) {
    handler_latency_hist_.Record(executor_.Now() - t0);
  }
  RunEndOfEventHooks();
  executor_.OnHandlerComplete();
}

void EventManager::ResumeContext(QueueEntry entry) {
  bool measure = ObsMetricsOn();
  std::uint64_t t0 = measure ? executor_.Now() : 0;
  // Adopt the frozen stack as the active fiber and switch into it.
  active_stack_ = std::move(entry.resume_stack);
  fiber_suspended_ = false;
  ebbrt_context_switch(&loop_sp_, entry.resume_sp);
  if (fiber_suspended_) {
    Kassert(suspend_target_ != nullptr, "EventManager: suspended without target");
    suspend_target_->sp_ = fiber_sp_;
    suspend_target_->stack_ = std::move(active_stack_);
    suspend_target_ = nullptr;
  } else {
    stack_pool_.Put(std::move(active_stack_));
  }
  if (measure) {
    handler_latency_hist_.Record(executor_.Now() - t0);
  }
  RunEndOfEventHooks();
  executor_.OnHandlerComplete();
}

void EventManager::SaveContext(EventContext& ctx) {
  Kassert(active_stack_ != nullptr, "SaveContext: not inside an event handler");
  Kassert(CurrentContext().machine_core == machine_core_, "SaveContext: wrong core");
  fiber_suspended_ = true;
  suspend_target_ = &ctx;
  ebbrt_context_switch(&fiber_sp_, loop_sp_);
  // Resumed via ActivateContext: execution continues here, back inside the original event.
}

void EventManager::ActivateContext(EventContext&& ctx) {
  Kassert(ctx.valid(), "ActivateContext: invalid context");
  void* sp = ctx.sp_;
  std::unique_ptr<FiberStack> stack = std::move(ctx.stack_);
  ctx.sp_ = nullptr;
  if (HaveContext() && CurrentContext().machine_core == machine_core_ && in_loop_) {
    QueueEntry entry;
    entry.resume_sp = sp;
    entry.resume_stack = std::move(stack);
    local_queue_.push_back(std::move(entry));
    return;
  }
  root_.interconnect().Push(machine_core_,
                            Interconnect::New<ActivateNode>(sp, std::move(stack)));
}

// --- Dispatch protocol (§3.2) ----------------------------------------------------------------

bool EventManager::DispatchTimers() {
  if (!timer_poll_) {
    return false;
  }
  // The poll runs due timer callbacks (each on an event stack, via this EventManager) and
  // returns the next pending deadline for the halt decision.
  TimerPollResult result = timer_poll_(executor_.Now());
  stats_.timers += result.dispatched;
  timer_deadline_ = result.next_deadline;
  return result.dispatched != 0;
}

bool EventManager::DispatchInterconnect() {
  InterconnectNode* node = root_.interconnect().TakeBatch(machine_core_);
  if (node == nullptr) {
    return false;
  }
  ++stats_.xcore_batches;
  // Queue residency: time the OLDEST node of this batch waited between its push (to an
  // empty list) and this drain. Always consumed, so a stale timestamp from a measurement-off
  // window cannot leak into a later record.
  std::uint64_t oldest = root_.interconnect().TakeOldestPushNs(machine_core_);
  bool measure = ObsMetricsOn();
  if (measure && oldest != 0) {
    std::uint64_t now = executor_.Now();
    if (now >= oldest) {
      xcore_residency_hist_.Record(now - oldest);
    }
  }
  std::uint64_t batch = 0;
  while (node != nullptr) {
    // Read the link BEFORE firing: Fire disposes the node (and an embedded node may be
    // re-published by a concurrent raiser the moment its pending count is consumed).
    InterconnectNode* next = node->next();
    node->Fire(*this);
    node = next;
    ++batch;
  }
  if (measure) {
    xcore_batch_size_hist_.Record(batch);
  }
  return true;
}

bool EventManager::DispatchOneSynthetic() {
  if (local_queue_.empty()) {
    return false;
  }
  QueueEntry entry = std::move(local_queue_.front());
  local_queue_.pop_front();
  if (entry.resume_sp != nullptr) {
    ResumeContext(std::move(entry));
  } else {
    ++stats_.synthetic;
    RunOnEventStack(&entry.fn);
  }
  return true;
}

bool EventManager::DispatchIdle() {
  if (idle_callbacks_.empty()) {
    return false;
  }
  ++stats_.idle_passes;
  // Callbacks may Start/Stop callbacks while running; iterate over a snapshot.
  std::vector<IdleCallback*> snapshot = idle_callbacks_;
  bool any = false;
  for (IdleCallback* cb : snapshot) {
    if (!cb->started_) {
      continue;  // stopped by an earlier callback this pass
    }
    any = true;
    RunOnEventStack(&cb->fn_, /*persistent=*/true);
  }
  return any;
}

bool EventManager::DispatchPass() {
  // Refresh the run-queue depth gauge once per pass: a cross-core-readable signal without
  // putting a store on every queue mutation.
  run_queue_depth_.store(local_queue_.size(), std::memory_order_relaxed);
  bool did = false;
  did |= DispatchTimers();
  did |= DispatchInterconnect();
  did |= DispatchOneSynthetic();
  if (did) {
    // Hardware interrupts and synthetic events take priority: restart the protocol before
    // giving idle handlers another turn only if nothing else ran.
    return true;
  }
  return DispatchIdle();
}

void EventManager::IdleHalt() {
  // Publish "I am halting" on the interconnect before actually halting. If the CAS loses —
  // a node landed since this pass's TakeBatch — skip the halt and dispatch again; the next
  // TakeBatch clears a sentinel left behind by a timer/shutdown (non-push) wake.
  if (root_.interconnect().MarkIdle(machine_core_)) {
    executor_.Halt(machine_core_, timer_deadline_);
  }
}

void EventManager::Loop() {
  Kassert(CurrentContext().machine_core == machine_core_, "Loop: wrong core");
  in_loop_ = true;
  while (!stopped_ && !executor_.Stopped()) {
    if (!DispatchPass()) {
      // Nothing ran: enable interrupts and halt until a wake or the next timer deadline.
      IdleHalt();
    } else {
      executor_.MaybeYield(machine_core_);
    }
  }
  in_loop_ = false;
}

void EventManager::LoopUntil(MoveFunction<bool()> pred) {
  Kassert(CurrentContext().machine_core == machine_core_, "LoopUntil: wrong core");
  bool was_in_loop = in_loop_;
  in_loop_ = true;
  while (!pred() && !stopped_ && !executor_.Stopped()) {
    if (!DispatchPass()) {
      IdleHalt();
    } else {
      executor_.MaybeYield(machine_core_);
    }
  }
  in_loop_ = was_in_loop;
}

EventManager::Stats EventManager::stats() const {
  Stats s;
  s.interrupts = stats_.interrupts;
  s.synthetic = stats_.synthetic;
  s.idle_passes = stats_.idle_passes;
  s.timers = stats_.timers;
  s.end_of_event = stats_.end_of_event;
  s.xcore_spawns = stats_.xcore_spawns;
  s.xcore_batches = stats_.xcore_batches;
  const Interconnect& ic = root_.interconnect();
  s.xcore_pushes = ic.pushes(machine_core_);
  s.xcore_wakeups = ic.wakeups(machine_core_);
  s.xcore_wakeups_elided = s.xcore_pushes - s.xcore_wakeups;
  s.control_locks = 0;  // no spinlock exists on the dispatch path to count
  return s;
}

}  // namespace ebbrt
