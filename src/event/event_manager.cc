#include "src/event/event_manager.h"

#include <utility>

namespace ebbrt {

// --- Root -----------------------------------------------------------------------------------

EventManagerRoot::EventManagerRoot(Executor& executor, std::size_t num_cores)
    : executor_(executor) {
  reps_.reserve(num_cores);
  for (std::size_t i = 0; i < num_cores; ++i) {
    reps_.push_back(std::make_unique<EventManager>(*this, executor, i));
  }
}

EventManagerRoot::~EventManagerRoot() = default;

EventManager& EventManagerRoot::RepFor(std::size_t machine_core) {
  Kassert(machine_core < reps_.size(), "EventManagerRoot: bad core");
  return *reps_[machine_core];
}

EventManager& EventManager::HandleFault(EbbId id) {
  Context& ctx = CurrentContext();
  auto* root = static_cast<EventManagerRoot*>(ctx.runtime->FindRoot(id));
  Kbugon(root == nullptr, "EventManager: no root installed for machine '%s'",
         ctx.runtime->name().c_str());
  EventManager& rep = root->RepFor(ctx.machine_core);
  Runtime::CacheRep(id, &rep);
  return rep;
}

// --- Rep ------------------------------------------------------------------------------------

EventManager::EventManager(EventManagerRoot& root, Executor& executor,
                           std::size_t machine_core)
    : root_(root), executor_(executor), machine_core_(machine_core) {}

EventManager::~EventManager() = default;

void EventManager::Spawn(MoveFunction<void()> fn) {
  QueueEntry entry;
  entry.fn = std::move(fn);
  if (HaveContext() && CurrentContext().machine_core == machine_core_ && in_loop_) {
    local_queue_.push_back(std::move(entry));
    return;
  }
  // Not on this core's loop (bring-up, another core, or a device thread): use the mailbox.
  {
    std::lock_guard<Spinlock> lock(remote_mu_);
    remote_queue_.push_back(std::move(entry));
  }
  executor_.WakeCore(machine_core_);
}

void EventManager::SpawnRemote(MoveFunction<void()> fn, std::size_t machine_core) {
  root_.RepFor(machine_core).Spawn(std::move(fn));
}

std::uint32_t EventManager::AllocateVector(MoveFunction<void()> handler) {
  std::uint32_t vector = next_vector_++;
  vector_table_[vector] = std::move(handler);
  return vector;
}

void EventManager::SetVectorHandler(std::uint32_t vector, MoveFunction<void()> handler) {
  vector_table_[vector] = std::move(handler);
}

void EventManager::RaiseVector(std::uint32_t vector) {
  {
    std::lock_guard<Spinlock> lock(irq_mu_);
    pending_vectors_.push_back(vector);
  }
  executor_.WakeCore(machine_core_);
}

// --- Idle callbacks --------------------------------------------------------------------------

EventManager::IdleCallback::~IdleCallback() {
  if (started_) {
    Stop();
  }
}

void EventManager::IdleCallback::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  em_.idle_callbacks_.push_back(this);
  em_.executor_.WakeCore(em_.machine_core_);
}

void EventManager::IdleCallback::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  auto& cbs = em_.idle_callbacks_;
  for (auto it = cbs.begin(); it != cbs.end(); ++it) {
    if (*it == this) {
      cbs.erase(it);
      break;
    }
  }
}

// --- End-of-event hooks ----------------------------------------------------------------------

void EventManager::QueueEndOfEvent(MoveFunction<void()> fn) {
  Kassert(HaveContext() && CurrentContext().machine_core == machine_core_,
          "QueueEndOfEvent: wrong core");
  end_of_event_queue_.push_back(std::move(fn));
}

void EventManager::RunEndOfEventHooks() {
  // Hooks queued by a running hook drain in the same boundary (the while re-checks).
  while (!end_of_event_queue_.empty()) {
    MoveFunction<void()> fn = std::move(end_of_event_queue_.front());
    end_of_event_queue_.pop_front();
    ++stats_.end_of_event;
    fn();
  }
}

// --- Fiber dispatch --------------------------------------------------------------------------

void EventManager::FiberTrampoline(void* arg) {
  auto* self = static_cast<EventManager*>(arg);
  self->FiberMain();
  // FiberMain switches away and never returns here.
  Kabort("EventManager: fiber fell through");
}

void EventManager::FiberMain() {
  // One-shot events MOVE their closure onto this fiber's stack before invocation: if the
  // handler suspends (SaveContext), the loop-frame QueueEntry that carried the closure dies
  // while the fiber is frozen, so the closure must live here. Persistent handlers (interrupt
  // vectors, idle callbacks) are invoked in place — they are re-fired repeatedly and their
  // storage (the vector table / callback object) outlives any single activation.
  if (active_persistent_) {
    MoveFunction<void()>* fn = active_fn_;
    active_fn_ = nullptr;
    (*fn)();
  } else {
    MoveFunction<void()> fn = std::move(*active_fn_);
    active_fn_ = nullptr;
    fn();
  }
  // Completed: mark done (not suspended) and return to the loop. Our stack is recycled by the
  // loop after the switch completes.
  fiber_suspended_ = false;
  ebbrt_context_switch(&fiber_sp_, loop_sp_);
}

void EventManager::RunOnEventStack(MoveFunction<void()>* fn, bool persistent) {
  active_fn_ = fn;
  active_persistent_ = persistent;
  active_stack_ = stack_pool_.Get();
  fiber_suspended_ = false;
  void* sp = active_stack_->InitialSp(&FiberTrampoline, this);
  ebbrt_context_switch(&loop_sp_, sp);
  // Back on the loop stack: the fiber either completed or suspended into suspend_target_.
  if (fiber_suspended_) {
    Kassert(suspend_target_ != nullptr, "EventManager: suspended without target");
    suspend_target_->sp_ = fiber_sp_;
    suspend_target_->stack_ = std::move(active_stack_);
    suspend_target_ = nullptr;
  } else {
    stack_pool_.Put(std::move(active_stack_));
  }
  RunEndOfEventHooks();
  executor_.OnHandlerComplete();
}

void EventManager::ResumeContext(QueueEntry entry) {
  // Adopt the frozen stack as the active fiber and switch into it.
  active_stack_ = std::move(entry.resume_stack);
  fiber_suspended_ = false;
  ebbrt_context_switch(&loop_sp_, entry.resume_sp);
  if (fiber_suspended_) {
    Kassert(suspend_target_ != nullptr, "EventManager: suspended without target");
    suspend_target_->sp_ = fiber_sp_;
    suspend_target_->stack_ = std::move(active_stack_);
    suspend_target_ = nullptr;
  } else {
    stack_pool_.Put(std::move(active_stack_));
  }
  RunEndOfEventHooks();
  executor_.OnHandlerComplete();
}

void EventManager::SaveContext(EventContext& ctx) {
  Kassert(active_stack_ != nullptr, "SaveContext: not inside an event handler");
  Kassert(CurrentContext().machine_core == machine_core_, "SaveContext: wrong core");
  fiber_suspended_ = true;
  suspend_target_ = &ctx;
  ebbrt_context_switch(&fiber_sp_, loop_sp_);
  // Resumed via ActivateContext: execution continues here, back inside the original event.
}

void EventManager::ActivateContext(EventContext&& ctx) {
  Kassert(ctx.valid(), "ActivateContext: invalid context");
  QueueEntry entry;
  entry.resume_sp = ctx.sp_;
  entry.resume_stack = std::move(ctx.stack_);
  ctx.sp_ = nullptr;
  if (HaveContext() && CurrentContext().machine_core == machine_core_ && in_loop_) {
    local_queue_.push_back(std::move(entry));
    return;
  }
  {
    std::lock_guard<Spinlock> lock(remote_mu_);
    remote_queue_.push_back(std::move(entry));
  }
  executor_.WakeCore(machine_core_);
}

// --- Dispatch protocol (§3.2) ----------------------------------------------------------------

bool EventManager::DispatchTimers() {
  if (!timer_poll_) {
    return false;
  }
  // The poll runs due timer callbacks (each on an event stack, via this EventManager) and
  // returns the next pending deadline for the halt decision.
  TimerPollResult result = timer_poll_(executor_.Now());
  stats_.timers += result.dispatched;
  timer_deadline_ = result.next_deadline;
  return result.dispatched != 0;
}

bool EventManager::DispatchInterrupts() {
  bool any = false;
  for (;;) {
    std::uint32_t vector;
    {
      std::lock_guard<Spinlock> lock(irq_mu_);
      if (pending_vectors_.empty()) {
        break;
      }
      vector = pending_vectors_.front();
      pending_vectors_.pop_front();
    }
    auto it = vector_table_.find(vector);
    Kbugon(it == vector_table_.end(), "EventManager: spurious vector %u", vector);
    ++stats_.interrupts;
    any = true;
    // The persistent handler runs on an event stack with interrupts conceptually masked.
    RunOnEventStack(&it->second, /*persistent=*/true);
  }
  return any;
}

bool EventManager::DispatchRemote() {
  bool any = false;
  for (;;) {
    QueueEntry entry;
    {
      std::lock_guard<Spinlock> lock(remote_mu_);
      if (remote_queue_.empty()) {
        break;
      }
      entry = std::move(remote_queue_.front());
      remote_queue_.pop_front();
    }
    any = true;
    if (entry.resume_sp != nullptr) {
      ResumeContext(std::move(entry));
    } else {
      ++stats_.synthetic;
      RunOnEventStack(&entry.fn);
    }
  }
  return any;
}

bool EventManager::DispatchOneSynthetic() {
  if (local_queue_.empty()) {
    return false;
  }
  QueueEntry entry = std::move(local_queue_.front());
  local_queue_.pop_front();
  if (entry.resume_sp != nullptr) {
    ResumeContext(std::move(entry));
  } else {
    ++stats_.synthetic;
    RunOnEventStack(&entry.fn);
  }
  return true;
}

bool EventManager::DispatchIdle() {
  if (idle_callbacks_.empty()) {
    return false;
  }
  ++stats_.idle_passes;
  // Callbacks may Start/Stop callbacks while running; iterate over a snapshot.
  std::vector<IdleCallback*> snapshot = idle_callbacks_;
  bool any = false;
  for (IdleCallback* cb : snapshot) {
    if (!cb->started_) {
      continue;  // stopped by an earlier callback this pass
    }
    any = true;
    RunOnEventStack(&cb->fn_, /*persistent=*/true);
  }
  return any;
}

bool EventManager::DispatchPass() {
  bool did = false;
  did |= DispatchTimers();
  did |= DispatchInterrupts();
  did |= DispatchRemote();
  did |= DispatchOneSynthetic();
  if (did) {
    // Hardware interrupts and synthetic events take priority: restart the protocol before
    // giving idle handlers another turn only if nothing else ran.
    return true;
  }
  return DispatchIdle();
}

void EventManager::Loop() {
  Kassert(CurrentContext().machine_core == machine_core_, "Loop: wrong core");
  in_loop_ = true;
  while (!stopped_ && !executor_.Stopped()) {
    if (!DispatchPass()) {
      // Nothing ran: enable interrupts and halt until a wake or the next timer deadline.
      executor_.Halt(machine_core_, timer_deadline_);
    } else {
      executor_.MaybeYield(machine_core_);
    }
  }
  in_loop_ = false;
}

void EventManager::LoopUntil(MoveFunction<bool()> pred) {
  Kassert(CurrentContext().machine_core == machine_core_, "LoopUntil: wrong core");
  bool was_in_loop = in_loop_;
  in_loop_ = true;
  while (!pred() && !stopped_ && !executor_.Stopped()) {
    if (!DispatchPass()) {
      executor_.Halt(machine_core_, timer_deadline_);
    } else {
      executor_.MaybeYield(machine_core_);
    }
  }
  in_loop_ = was_in_loop;
}

}  // namespace ebbrt
