#include "src/event/sim_world.h"

#include "src/mem/buffer_pool.h"
#include "src/mem/gp_allocator.h"

namespace ebbrt {

SimWorld::SimWorld(CostMode mode, std::uint64_t fixed_event_cost_ns)
    : mode_(mode), fixed_event_cost_ns_(fixed_event_cost_ns) {}

SimWorld::~SimWorld() { Shutdown(); }

Runtime& SimWorld::AddMachine(std::string name, std::size_t cores, RuntimeKind kind) {
  auto runtime = std::make_unique<Runtime>(kind, std::move(name));
  Runtime& rt = *runtime;
  rt.AddCores(cores);

  auto executor = std::make_unique<MachineExecutor>(*this);
  auto em_root = std::make_unique<EventManagerRoot>(*executor, cores);
  rt.InstallRoot(kEventManagerId, em_root.get());
  rt.SetSubsystem(Subsystem::kEventManager, em_root.get());
  auto timer_root = std::make_unique<TimerRoot>(*executor, *em_root, cores);
  rt.InstallRoot(kTimerId, timer_root.get());
  rt.SetSubsystem(Subsystem::kTimer, timer_root.get());

  // Every simulated machine runs the full memory subsystem: per-NUMA buddy pages, per-core
  // slab caches, the GP allocator, and the datapath buffer pool. This is what makes IOBuf
  // storage (and the NIC RX ring / TCP TX segments) slab-backed and malloc-free in steady
  // state — the paper's per-application-LibOS memory story, on by default.
  mem::Config mem_config;
  mem_config.arena_bytes = 128ull << 20;
  mem::Install(rt, cores, mem_config);
  BufferPoolRoot::Install(rt, cores);

  for (std::size_t i = 0; i < cores; ++i) {
    auto core = std::make_unique<SimCore>();
    core->runtime = &rt;
    core->executor = executor.get();
    core->machine_core = i;
    core->global_core = rt.global_core(i);
    executor->cores_.push_back(core.get());
    cores_.push_back(std::move(core));
  }

  runtimes_.push_back(std::move(runtime));
  executors_.push_back(std::move(executor));
  em_roots_.push_back(std::move(em_root));
  timer_roots_.push_back(std::move(timer_root));
  return rt;
}

void SimWorld::SpawnOn(Runtime& runtime, std::size_t core, MoveFunction<void()> fn) {
  runtime.GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
      .RepFor(core)
      .Spawn(std::move(fn));
}

void SimWorld::At(std::uint64_t t, MoveFunction<void()> fn) {
  CalendarEntry entry;
  entry.time = std::max(t, Now());
  entry.seq = next_seq_++;
  entry.core = nullptr;
  entry.action = std::move(fn);
  PushEntry(std::move(entry));
}

void SimWorld::After(std::uint64_t dt, MoveFunction<void()> fn) {
  At(Now() + dt, std::move(fn));
}

std::uint64_t SimWorld::Now() const {
  if (current_ != nullptr) {
    return SliceNow();
  }
  return now_;
}

std::uint64_t SimWorld::SliceNow() const {
  if (mode_ == CostMode::kMeasured) {
    std::uint64_t cycles = ReadCycles() - slice_start_cycles_;
    return slice_start_clock_ + CyclesToNs(cycles) + slice_charge_;
  }
  return slice_start_clock_ + slice_charge_;
}

void SimWorld::Charge(std::uint64_t ns) { slice_charge_ += ns; }

void SimWorld::OnHandlerComplete() {
  if (mode_ == CostMode::kFixed && current_ != nullptr) {
    slice_charge_ += fixed_event_cost_ns_;
  }
}

void SimWorld::PushEntry(CalendarEntry entry) {
  calendar_.push_back(std::move(entry));
  std::push_heap(calendar_.begin(), calendar_.end(), EntryLater{});
}

SimWorld::CalendarEntry SimWorld::PopEntry() {
  std::pop_heap(calendar_.begin(), calendar_.end(), EntryLater{});
  CalendarEntry entry = std::move(calendar_.back());
  calendar_.pop_back();
  return entry;
}

void SimWorld::PushWake(SimCore* core, std::uint64_t t) {
  if (core->wake_scheduled_at <= t) {
    return;  // an existing wake at or before `t` already covers this request
  }
  core->wake_scheduled_at = t;
  CalendarEntry entry;
  entry.time = t;
  entry.seq = next_seq_++;
  entry.core = core;
  PushEntry(std::move(entry));
}

void SimWorld::WakeSimCore(SimCore* core) {
  if (core == current_) {
    // A handler on this very core produced more local work; the loop will find it.
    core->wake_pending = true;
    return;
  }
  PushWake(core, Now());
}

void SimWorld::HaltCore(SimCore* core, std::uint64_t wake_at) {
  Kassert(core == current_, "HaltCore: not the running core");
  if (core->wake_pending) {
    core->wake_pending = false;
    return;  // work arrived during this slice; don't park
  }
  // Finalize this slice's virtual time, schedule the timer wake, park the fiber.
  core->clock = SliceNow();
  if (wake_at != kNoWakeup) {
    PushWake(core, std::max(wake_at, core->clock));
  }
  ebbrt_context_switch(&core->fiber_sp, calendar_sp_);
  // Woken by RunSlice: slice state has been re-armed; resume the loop.
}

void SimWorld::YieldCore(SimCore* core) {
  if (core != current_ || stopped_ || calendar_.empty()) {
    return;
  }
  std::uint64_t slice_now = SliceNow();
  if (calendar_.front().time >= slice_now) {
    return;  // nothing the core's progress would miss
  }
  // Park with an immediate self-wake at the core's clock: earlier calendar entries (packet
  // deliveries, other cores) run first, then this core resumes exactly where it yielded.
  ++stats_.yields;
  core->clock = slice_now;
  PushWake(core, slice_now);
  ebbrt_context_switch(&core->fiber_sp, calendar_sp_);
}

void SimWorld::CoreFiberEntry(void* arg) {
  auto* core = static_cast<SimCore*>(arg);
  core->runtime->GetSubsystem<EventManagerRoot>(Subsystem::kEventManager)
      .RepFor(core->machine_core)
      .Loop();
  // Loop exited (world shutdown): park permanently.
  core->loop_exited = true;
  void* dummy;
  ebbrt_context_switch(&dummy, core->executor->world_.calendar_sp_);
  Kabort("SimWorld: exited core resumed");
}

void SimWorld::RunSlice(SimCore* core, std::uint64_t t) {
  if (core->loop_exited) {
    return;
  }
  ++stats_.slices;
  core->clock = std::max(core->clock, t);
  current_ = core;
  slice_start_clock_ = core->clock;
  slice_charge_ = 0;
  slice_start_cycles_ = ReadCycles();

  Context cctx;
  cctx.runtime = core->runtime;
  cctx.core = core->global_core;
  cctx.machine_core = core->machine_core;
  InstallContext(cctx, core->runtime->hosted());

  if (!core->fiber_started) {
    core->fiber_started = true;
    core->stack = std::make_unique<FiberStack>();
    void* sp = core->stack->InitialSp(&CoreFiberEntry, core);
    ebbrt_context_switch(&calendar_sp_, sp);
  } else {
    ebbrt_context_switch(&calendar_sp_, core->fiber_sp);
  }

  // Core parked again (or exited).
  Context none;
  InstallContext(none, false);
  current_ = nullptr;
}

bool SimWorld::DispatchEntry(CalendarEntry entry) {
  now_ = std::max(now_, entry.time);
  ++stats_.entries_dispatched;
  if (entry.core == nullptr) {
    ++stats_.actions;
    entry.action();
    return true;
  }
  SimCore* core = entry.core;
  if (entry.time != core->wake_scheduled_at) {
    return false;  // stale duplicate: a tighter wake superseded this entry
  }
  core->wake_scheduled_at = kNoWakeup;
  if (core->killed) {
    // Killed machine: the wake is consumed and discarded. Work (timers, interconnect
    // nodes) stays queued in the machine's own state; ReviveMachine re-wakes the core so
    // it drains everything it missed.
    ++stats_.entries_dropped_killed;
    return false;
  }
  // A core whose virtual clock is ahead of the calendar is logically still busy: defer the
  // wake to its clock so work arriving "while busy" queues up behind it. This is what makes
  // interrupt coalescing, adaptive polling, and queueing delay emerge correctly in the DES.
  if (core->clock > entry.time && !stopped_) {
    ++stats_.entries_deferred;
    PushWake(core, core->clock);
    return false;
  }
  RunSlice(core, now_);
  return true;
}

void SimWorld::Run() {
  Kassert(!in_run_, "SimWorld: reentrant Run");
  in_run_ = true;
  while (!stopped_ && !calendar_.empty()) {
    DispatchEntry(PopEntry());
  }
  in_run_ = false;
}

bool SimWorld::RunUntil(std::uint64_t t) {
  Kassert(!in_run_, "SimWorld: reentrant Run");
  in_run_ = true;
  bool quiescent = true;
  while (!stopped_) {
    if (calendar_.empty()) {
      break;
    }
    if (calendar_.front().time > t) {
      quiescent = false;
      break;
    }
    DispatchEntry(PopEntry());
  }
  now_ = std::max(now_, t);
  in_run_ = false;
  return quiescent;
}

void SimWorld::KillMachine(Runtime& runtime) {
  Kassert(current_ == nullptr || current_->runtime != &runtime,
          "KillMachine: a machine cannot kill itself from its own core slice");
  if (!killed_.insert(&runtime).second) {
    return;  // already dead
  }
  ++stats_.kills;
  for (auto& core : cores_) {
    if (core->runtime == &runtime) {
      core->killed = true;
      core->wake_pending = false;
    }
  }
}

void SimWorld::ReviveMachine(Runtime& runtime) {
  Kassert(current_ == nullptr || current_->runtime != &runtime,
          "ReviveMachine: not from the machine's own core slice");
  if (killed_.erase(&runtime) == 0) {
    return;  // not dead
  }
  ++stats_.revives;
  for (auto& core : cores_) {
    if (core->runtime == &runtime) {
      core->killed = false;
      // Unconditional wake: anything that queued during the outage (overdue timers,
      // interconnect pushes whose WakeCore was elided or dropped, posted frames) gets
      // drained now. A core with nothing to do just parks again.
      PushWake(core.get(), Now());
    }
  }
}

void SimWorld::Shutdown() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  // Resume every started core once so its loop observes Stopped() and exits, unwinding the
  // parked fiber to a terminal park (loop_exited).
  for (auto& core : cores_) {
    if (core->fiber_started && !core->loop_exited) {
      RunSlice(core.get(), now_);
    }
  }
  calendar_.clear();
  // The event loops are gone, but the EventManagerRoots die BEFORE the runtimes (member
  // order), so each runtime's kEventManager slot is about to dangle. Clear it now: teardown
  // paths that consult it — RCU grace periods issued from adopted destructors, e.g. an
  // RpcClient unregistering its Messenger receiver — then take CallRcu's no-event-loops
  // immediate path instead of spawning onto a freed root.
  for (auto& runtime : runtimes_) {
    runtime->SetSubsystem(Subsystem::kEventManager,
                          static_cast<EventManagerRoot*>(nullptr));
  }
}

}  // namespace ebbrt
