#include "src/event/interconnect.h"

namespace ebbrt {

Interconnect::Interconnect(Executor& executor, std::size_t num_cores)
    : executor_(executor), lists_(num_cores) {
  // Cores are born halted: a core that has never entered its dispatch loop behaves exactly
  // like one parked in Halt — the first push to it must pay for the wake or the loop never
  // gets scheduled at all (SimWorld cores only run when a wake lands on the calendar). The
  // loop's first TakeBatch clears the sentinel. (IdleTag() is a reinterpret_cast, so it
  // cannot be a constexpr default member initializer on ExchangeList::head.)
  for (auto& list : lists_) {
    list.head.store(IdleTag(), std::memory_order_relaxed);
  }
}

Interconnect::~Interconnect() {
  // Discard every undelivered node. A Discard may itself publish new nodes (an RCU epoch
  // completing at teardown can start a chained grace period), so sweep until a full pass
  // over the mesh finds nothing.
  bool any;
  do {
    any = false;
    for (auto& list : lists_) {
      InterconnectNode* node = list.head.exchange(nullptr, std::memory_order_acquire);
      if (node == IdleTag()) {
        continue;
      }
      while (node != nullptr) {
        InterconnectNode* next = node->next_;  // Discard frees (or re-pushes) the node
        node->Discard();
        node = next;
        any = true;
      }
    }
  } while (any);
}

void Interconnect::Push(std::size_t target_core, InterconnectNode* node) {
  Kassert(target_core < lists_.size(), "Interconnect::Push: bad core");
  ExchangeList& list = lists_[target_core];
  InterconnectNode* head = list.head.load(std::memory_order_acquire);
  for (;;) {
    if (head == IdleTag()) {
      // Receiver is halted with nothing pending: our push is the one that must wake it.
      node->next_ = nullptr;
      if (list.head.compare_exchange_weak(head, node, std::memory_order_release,
                                          std::memory_order_acquire)) {
        list.pushes.fetch_add(1, std::memory_order_relaxed);
        list.wakeups.fetch_add(1, std::memory_order_relaxed);
        // This push starts a fresh batch: stamp it for the queue-residency histogram.
        list.oldest_push_ns.store(executor_.Now(), std::memory_order_relaxed);
        executor_.WakeCore(target_core);
        return;
      }
    } else {
      // Receiver is awake (nullptr) or a wake is already owed by an earlier pending node:
      // just link in. No wake, no lock — the whole batch drains on one exchange.
      node->next_ = head;
      if (list.head.compare_exchange_weak(head, node, std::memory_order_release,
                                          std::memory_order_acquire)) {
        list.pushes.fetch_add(1, std::memory_order_relaxed);
        if (head != nullptr) {
          list.batched.fetch_add(1, std::memory_order_relaxed);
        } else {
          list.oldest_push_ns.store(executor_.Now(), std::memory_order_relaxed);
        }
        return;
      }
    }
  }
}

InterconnectNode* Interconnect::TakeBatch(std::size_t core) {
  Kassert(core < lists_.size(), "Interconnect::TakeBatch: bad core");
  ExchangeList& list = lists_[core];
  if (list.head.load(std::memory_order_acquire) == nullptr) {
    return nullptr;  // common idle-loop case: don't write the shared line
  }
  InterconnectNode* head = list.head.exchange(nullptr, std::memory_order_acquire);
  if (head == IdleTag() || head == nullptr) {
    // A spurious wake left our own sentinel behind (timer deadline, shutdown): the exchange
    // just cleared it — the receiver is demonstrably awake again.
    return nullptr;
  }
  // The chain is LIFO by construction; reverse once so delivery is FIFO per sender.
  InterconnectNode* fifo = nullptr;
  while (head != nullptr) {
    InterconnectNode* next = head->next_;
    head->next_ = fifo;
    fifo = head;
    head = next;
  }
  return fifo;
}

bool Interconnect::MarkIdle(std::size_t core) {
  Kassert(core < lists_.size(), "Interconnect::MarkIdle: bad core");
  ExchangeList& list = lists_[core];
  InterconnectNode* expected = nullptr;
  // Success publishes the sentinel; failure means a node landed since our TakeBatch and the
  // caller must dispatch again instead of halting. All sender/receiver races serialize on
  // this one atomic: a push either precedes the CAS (we see it and stay awake) or follows it
  // (the pusher sees the sentinel and wakes us).
  return list.head.compare_exchange_strong(expected, IdleTag(), std::memory_order_acq_rel,
                                           std::memory_order_acquire);
}

}  // namespace ebbrt
