// SimWorld — deterministic discrete-event substrate for the benchmark testbed.
//
// The paper's evaluation ran on a 24-core Xeon server wired to a 20-core client over 10GbE,
// with EbbRT instances booted inside KVM. None of that hardware exists here, so SimWorld
// substitutes *time and hardware* while the framework and protocol code execute for real:
//
//   * Machines are Runtimes whose cores run the genuine EventManager loop, one core at a time
//     on a single host thread, each inside its own fiber.
//   * A calendar orders wakeups (interrupt deliveries, timer deadlines, device completions)
//     by virtual time; cores advance their own virtual clocks while they run.
//   * Virtual time during a handler comes from either (a) measured host cycles scaled to the
//     paper's 2.6 GHz clock — so code that does less work earns proportionally less virtual
//     time — or (b) a fixed per-handler cost for bitwise-deterministic tests.
//   * Device models (sim::Nic, sim::Wire) schedule calendar actions and Charge() explicit
//     costs (VM exits, wire transit, copies) that we cannot execute natively.
//
// Single-threaded by construction: no locks are needed anywhere in the world, and runs are
// reproducible in fixed-cost mode.
#ifndef EBBRT_SRC_EVENT_SIM_WORLD_H_
#define EBBRT_SRC_EVENT_SIM_WORLD_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/runtime.h"
#include "src/event/event_manager.h"
#include "src/event/executor.h"
#include "src/event/timer.h"
#include "src/platform/clock.h"
#include "src/platform/fiber.h"

namespace ebbrt {

class SimWorld {
 public:
  enum class CostMode {
    kMeasured,  // handler virtual time = measured host cycles scaled to 2.6 GHz
    kFixed,     // handler virtual time = fixed_event_cost_ns (deterministic)
  };

  explicit SimWorld(CostMode mode = CostMode::kFixed, std::uint64_t fixed_event_cost_ns = 500);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  // Creates a machine with `cores` simulated cores. Event manager and timer roots are
  // installed; the runtime is owned by the world.
  Runtime& AddMachine(std::string name, std::size_t cores,
                      RuntimeKind kind = RuntimeKind::kNative);

  // Queues `fn` on (runtime, machine core); it runs when the world does.
  static void SpawnOn(Runtime& runtime, std::size_t core, MoveFunction<void()> fn);

  // Schedules a world action (device model callback) at absolute virtual time `t` / after
  // `dt` from Now(). Actions run on the calendar context, not on any core.
  void At(std::uint64_t t, MoveFunction<void()> fn);
  void After(std::uint64_t dt, MoveFunction<void()> fn);

  // Current virtual time: slice-relative while a core runs, calendar time otherwise.
  std::uint64_t Now() const;

  // Adds `ns` of modeled cost to the running core's clock (device models: VM exit, copy,
  // interrupt delivery). Must be called during a core slice or world action.
  void Charge(std::uint64_t ns);

  // Runs until the calendar drains (all cores halted, no pending actions).
  void Run();
  // Runs until virtual time `t` (or quiescence). Returns true if quiescent.
  bool RunUntil(std::uint64_t t);

  // Requests shutdown: all core loops exit, parked fibers unwind. Idempotent; also invoked by
  // the destructor.
  void Shutdown();

  // --- Fault injection ------------------------------------------------------------------------
  // Kills a machine: its cores stop being scheduled (their calendar wakes are dropped on
  // pop) and the sim NICs drop deliveries to it. This models a PAUSE/partition, not state
  // destruction — memory, timer wheels, and TCP state survive, so ReviveMachine resumes the
  // machine exactly where it stopped (overdue timers fire late, retransmits heal
  // connections). Crash-with-amnesia semantics would need state migration on top; the
  // failover machinery built on this (suspect marking, replica reads) is agnostic to the
  // difference while the machine is down. Callable from tests, world actions, or another
  // machine's core slice — never from a core of the machine being killed.
  void KillMachine(Runtime& runtime);
  void ReviveMachine(Runtime& runtime);
  bool MachineKilled(const Runtime& runtime) const {
    return killed_.count(&runtime) != 0;
  }

  bool stopped() const { return stopped_; }

  // Diagnostics: calendar pressure and scheduling behaviour (used to validate bench setups).
  struct WorldStats {
    std::uint64_t entries_dispatched = 0;
    std::uint64_t entries_deferred = 0;
    std::uint64_t slices = 0;
    std::uint64_t yields = 0;
    std::uint64_t actions = 0;
    std::uint64_t kills = 0;
    std::uint64_t revives = 0;
    std::uint64_t entries_dropped_killed = 0;  // core wakes discarded while killed
  };
  const WorldStats& world_stats() const { return stats_; }

 private:
  struct SimCore;

  // Executor facade handed to one machine's EventManager/Timer roots.
  class MachineExecutor : public Executor {
   public:
    MachineExecutor(SimWorld& world) : world_(world) {}
    std::uint64_t Now() override { return world_.Now(); }
    void WakeCore(std::size_t machine_core) override {
      world_.WakeSimCore(cores_[machine_core]);
    }
    void Halt(std::size_t machine_core, std::uint64_t wake_at) override {
      world_.HaltCore(cores_[machine_core], wake_at);
    }
    bool Stopped() const override { return world_.stopped_; }
    void OnHandlerComplete() override { world_.OnHandlerComplete(); }
    void MaybeYield(std::size_t machine_core) override {
      world_.YieldCore(cores_[machine_core]);
    }

   private:
    friend class SimWorld;
    SimWorld& world_;
    std::vector<SimCore*> cores_;
  };

  struct SimCore {
    Runtime* runtime = nullptr;
    MachineExecutor* executor = nullptr;
    std::size_t machine_core = 0;
    std::size_t global_core = 0;
    std::uint64_t clock = 0;  // core-local virtual time
    bool fiber_started = false;
    bool loop_exited = false;
    bool wake_pending = false;
    bool killed = false;  // machine kill: wakes are dropped until revival
    // Earliest outstanding calendar wake for this core (kNoWakeup when none). Maintained so
    // each core has at most ONE live wake entry; later-scheduled duplicates are dropped on
    // pop. Without this, every halt adds an entry and the calendar grows with traffic.
    std::uint64_t wake_scheduled_at = kNoWakeup;
    std::unique_ptr<FiberStack> stack;
    void* fiber_sp = nullptr;
  };

  struct CalendarEntry {
    std::uint64_t time;
    std::uint64_t seq;
    SimCore* core;                // non-null => core wake
    MoveFunction<void()> action;  // else world action
  };
  struct EntryLater {
    bool operator()(const CalendarEntry& a, const CalendarEntry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  static void CoreFiberEntry(void* arg);
  // Dispatches one calendar entry; returns false when the entry was deferred (core busy).
  bool DispatchEntry(CalendarEntry entry);
  void RunSlice(SimCore* core, std::uint64_t t);
  void WakeSimCore(SimCore* core);
  void HaltCore(SimCore* core, std::uint64_t wake_at);
  void YieldCore(SimCore* core);
  // Schedules (or tightens) the core's single outstanding wake to time `t`.
  void PushWake(SimCore* core, std::uint64_t t);
  void OnHandlerComplete();
  void PushEntry(CalendarEntry entry);
  CalendarEntry PopEntry();
  std::uint64_t SliceNow() const;

  CostMode mode_;
  std::uint64_t fixed_event_cost_ns_;
  WorldStats stats_;

  std::vector<CalendarEntry> calendar_;  // heap ordered by EntryLater
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_ = 0;
  bool stopped_ = false;
  bool in_run_ = false;

  // Slice state (valid while current_ != nullptr).
  SimCore* current_ = nullptr;
  std::uint64_t slice_start_clock_ = 0;
  std::uint64_t slice_start_cycles_ = 0;
  std::uint64_t slice_charge_ = 0;
  void* calendar_sp_ = nullptr;

  std::unordered_set<const Runtime*> killed_;

  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::vector<std::unique_ptr<MachineExecutor>> executors_;
  std::vector<std::unique_ptr<EventManagerRoot>> em_roots_;
  std::vector<std::unique_ptr<TimerRoot>> timer_roots_;
  std::vector<std::unique_ptr<SimCore>> cores_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_SIM_WORLD_H_
