// Interconnect — lock-free per-core exchange-list mesh for cross-core dispatch.
//
// tab3 of the paper argues a library OS only beats a general-purpose stack if moving work
// between cores costs about as much as a virtual call. Our cross-core paths used to funnel
// through spinlocked mailboxes (the EventManager remote/irq queues, the BufferPool remote-free
// magazine); this replaces all of them with one primitive, modeled on rabid's exchange-list
// interconnect:
//
//   * Messages are intrusive, directly-executable continuation nodes: `Fire(em)` runs the
//     work AND disposes the node, so delivery is one virtual call — no queue entry, no
//     closure copy, no second allocation.
//   * Each core owns one cache-line-aligned MPSC list head. Senders CAS-publish the node onto
//     the head (Treiber push); the receiver detaches the entire pending batch with a single
//     unconditional `exchange(nullptr)` and reverses it so delivery is FIFO per sender.
//   * A pointer-tagged sentinel (`kIdleTag`) encodes "receiver halted": the receiver
//     CAS-installs it just before Executor::Halt, and only the sender whose push displaces
//     the tag pays for a WakeCore. Every other push rides for free — the receiver is either
//     awake or already has a wake in flight. The receiver's next drain clears the tag as a
//     side effect of the exchange, so a spurious wake self-heals.
//
// Node memory comes from the per-core GeneralPurposeAllocator when the caller has a machine
// context (a compile-time size-class pop — 0 heap allocs on the steady-state path) and falls
// back to the global heap otherwise (world actions, bring-up). Nodes embedded in long-lived
// objects (interrupt-vector entries, RCU epoch markers, dead pooled blocks) bypass the
// allocator entirely: the message IS the object.
#ifndef EBBRT_SRC_EVENT_INTERCONNECT_H_
#define EBBRT_SRC_EVENT_INTERCONNECT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/core/runtime.h"
#include "src/event/executor.h"
#include "src/mem/gp_allocator.h"
#include "src/platform/debug.h"
#include "src/platform/spinlock.h"

namespace ebbrt {

class EventManager;
class Interconnect;

// One cross-core message: an intrusive list link plus two delivery verbs. Subclasses decide
// their own storage discipline — `Fire` executes on the target core and must dispose the
// node before (or as) it runs user work; `Discard` disposes without executing (teardown of a
// machine with undelivered nodes). Nodes allocated through Interconnect::New are returned to
// their slab/heap by Interconnect::Delete; embedded nodes make both verbs no-op on storage.
class InterconnectNode {
 public:
  virtual void Fire(EventManager& em) = 0;
  virtual void Discard() = 0;

  InterconnectNode* next() const { return next_; }

 protected:
  InterconnectNode() = default;
  ~InterconnectNode() = default;  // non-virtual: disposal is each subclass's job

 private:
  friend class Interconnect;
  InterconnectNode* next_ = nullptr;
  bool slab_carved_ = false;  // set by Interconnect::New; read by Interconnect::Delete
};

class Interconnect {
 public:
  Interconnect(Executor& executor, std::size_t num_cores);
  ~Interconnect();  // discards any undelivered nodes (repeatedly — a Discard may re-push)

  Interconnect(const Interconnect&) = delete;
  Interconnect& operator=(const Interconnect&) = delete;

  std::size_t num_cores() const { return lists_.size(); }

  // Publishes `node` onto `target_core`'s list. Callable from any thread/context. Wakes the
  // target only when the push displaced the idle sentinel; otherwise the receiver is awake
  // (or a wake is already in flight) and the node just joins the pending batch.
  void Push(std::size_t target_core, InterconnectNode* node);

  // Owner core only: detaches the whole pending batch in FIFO order (oldest first), or
  // nullptr when empty. Clears a leftover idle sentinel as a side effect, so it must run at
  // least once per dispatch pass before MarkIdle is attempted again.
  InterconnectNode* TakeBatch(std::size_t core);

  // Owner core only, immediately before Executor::Halt: declares the core idle. Returns
  // false when work arrived since the last TakeBatch — the caller must run another dispatch
  // pass instead of halting.
  bool MarkIdle(std::size_t core);

  // Per-core telemetry (relaxed counters; exact under SimWorld, monotonic under threads).
  std::uint64_t pushes(std::size_t core) const {
    return lists_[core].pushes.load(std::memory_order_relaxed);
  }
  // Pushes that displaced the idle sentinel and paid for a WakeCore.
  std::uint64_t wakeups(std::size_t core) const {
    return lists_[core].wakeups.load(std::memory_order_relaxed);
  }
  // Pushes that landed behind an already-pending node (the batch grew; wake elided).
  std::uint64_t batched(std::size_t core) const {
    return lists_[core].batched.load(std::memory_order_relaxed);
  }

  // Owner core only, after TakeBatch returned a batch: the push timestamp of the batch's
  // OLDEST node (the push that found the list empty), consumed on read (0 when unset). The
  // EventManager turns `drain time - this` into the queue-residency histogram.
  std::uint64_t TakeOldestPushNs(std::size_t core) {
    return lists_[core].oldest_push_ns.exchange(0, std::memory_order_relaxed);
  }

  // Allocates a node of concrete type T. Per-core slab pop when the calling context has a
  // GP allocator installed (the steady-state path: 0 heap allocs); ::operator new fallback
  // otherwise, counted in mem::stats().heap_fallback_allocs.
  template <typename T, typename... Args>
  static T* New(Args&&... args) {
    void* p = nullptr;
    bool slab = false;
    if (HaveContext() &&
        CurrentRuntime().TryGetSubsystem<GeneralPurposeAllocatorRoot>(
            Subsystem::kGeneralPurposeAllocator) != nullptr) {
      p = GeneralPurposeAllocator::Instance()->AllocFor<sizeof(T)>();
      slab = (p != nullptr);
    }
    if (p == nullptr) {
      p = ::operator new(sizeof(T));
      mem::stats().heap_fallback_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    T* node = new (p) T(std::forward<Args>(args)...);
    static_cast<InterconnectNode*>(node)->slab_carved_ = slab;
    return node;
  }

  // Destroys and frees a node obtained from New. Safe from any context: slab-carved nodes
  // route home through mem::FindOwningRoot/FreeAnywhere (per-core fast path when the caller
  // is a core of the owning machine).
  template <typename T>
  static void Delete(T* node) {
    bool slab = static_cast<InterconnectNode*>(node)->slab_carved_;
    node->~T();
    if (slab) {
      GeneralPurposeAllocatorRoot* owner = mem::FindOwningRoot(node);
      Kassert(owner != nullptr, "Interconnect::Delete: slab node without owning arena");
      owner->FreeAnywhere(node);
    } else {
      ::operator delete(node);
    }
  }

 private:
  // The tag is an address no node can have (misaligned, page 0).
  static InterconnectNode* IdleTag() { return reinterpret_cast<InterconnectNode*>(1); }

  // Head states: IdleTag() = receiver halted, nothing pending (a push must wake);
  // nullptr = receiver active, nothing pending; anything else = pending LIFO chain.
  // The ctor stores IdleTag() into every head — cores are born halted (see interconnect.cc).
  struct alignas(kCacheLineSize) ExchangeList {
    std::atomic<InterconnectNode*> head{nullptr};
    std::atomic<std::uint64_t> pushes{0};
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::uint64_t> batched{0};
    // Executor timestamp of the push that started the current pending batch (found the
    // list empty/idle); cleared by the receiver via TakeOldestPushNs. Best-effort under
    // real threads, exact under SimWorld.
    std::atomic<std::uint64_t> oldest_push_ns{0};
  };

  Executor& executor_;
  std::vector<ExchangeList> lists_;
};

}  // namespace ebbrt

#endif  // EBBRT_SRC_EVENT_INTERCONNECT_H_
